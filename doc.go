// Package spampsm is a from-scratch Go reproduction of
//
//	Harvey, Kalp, Tambe, McKeown, Newell.
//	"The Effectiveness of Task-Level Parallelism for High-Level Vision."
//	PPoPP 1990.
//
// The library contains a complete OPS5 production-system engine on a
// Rete match network, the SPAM aerial-image interpretation system
// (RTF/LCC/FA/MODEL phases over synthetic airport and suburban scenes),
// the SPAM/PSM task-level-parallelism runtime, ParaOPS5-style match
// parallelism, a virtual-time multiprocessor standing in for the
// 16-processor Encore Multimax, and a two-node shared-virtual-memory
// simulator — plus a harness (cmd/spambench, bench_test.go) that
// regenerates every table and figure of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and the
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results.
package spampsm
