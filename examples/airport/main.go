// Airport scene analysis — the paper's primary domain.
//
// Generates the San Francisco International dataset, runs the full
// four-phase interpretation (RTF → LCC → FA → MODEL) with task-level
// parallelism on a real goroutine pool, then reports what SPAM found:
// the classified fragments, the consistency structure, the functional
// areas, and the final scene model.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"spampsm/internal/machine"
	"spampsm/internal/scene"
	"spampsm/internal/spam"
)

func main() {
	workers := flag.Int("workers", 4, "task processes")
	flag.Parse()

	d, err := spam.NewDataset(scene.SF)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d.Scene.Stats())

	in, err := d.Interpret(spam.InterpretOptions{
		Workers: *workers,
		Level:   spam.Level3,
		ReEntry: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Classification summary by class.
	byType := map[scene.Kind]int{}
	for _, f := range in.Fragments {
		byType[f.Type]++
	}
	var kinds []scene.Kind
	for k := range byType {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	fmt.Println("\nfragment hypotheses by class:")
	for _, k := range kinds {
		fmt.Printf("  %-18s %4d\n", k, byType[k])
	}

	// Classification accuracy against the generator's ground truth.
	fmt.Println()
	fmt.Print(spam.EvaluateRTF(d.Scene, in.Fragments).Report())

	consistent := 0
	for _, o := range in.Outcomes {
		if o.Status == "consistent" {
			consistent++
		}
	}
	fmt.Printf("LCC: %d consistent objects of %d, %d consistent pairs\n",
		consistent, len(in.Outcomes), len(in.Pairs))

	fmt.Println("\nfunctional areas:")
	byFA := map[string]int{}
	for _, fa := range in.FAs {
		byFA[fa.Type]++
	}
	for t, n := range byFA {
		fmt.Printf("  %-26s %3d\n", t, n)
	}
	fmt.Printf("predictions issued by contexts: %d\n", len(in.Predictions))

	if in.ModelFound {
		fmt.Printf("\nscene model: score=%d over %d functional areas\n", in.Model.Score, in.Model.NFAs)
	}

	fmt.Println("\nper-phase cost (simulated NS32332 seconds):")
	for _, ph := range in.Phases {
		fmt.Printf("  %-6s %8.1f s  (%5.1f%% match, %d firings)\n",
			ph.Phase, machine.InstrToSec(ph.Instr), 100*ph.MatchFraction(), ph.Firings)
	}
}
