// Suburban housing scene analysis — SPAM's second task area.
//
// Builds a suburban development (streets, houses, driveways, yards),
// interprets it with the suburban knowledge base, and checks the
// structural constraints the domain knowledge encodes: houses are
// adjacent to driveways, driveways connect to streets, yards surround
// houses.
package main

import (
	"flag"
	"fmt"
	"log"

	"spampsm/internal/scene"
	"spampsm/internal/spam"
)

func main() {
	blocks := flag.Int("blocks", 6, "city blocks")
	houses := flag.Int("houses", 6, "houses per block")
	workers := flag.Int("workers", 4, "task processes")
	flag.Parse()

	d, err := spam.NewSuburbanDataset(scene.SuburbanParams{
		Name: "elm-heights", Seed: 1990,
		Blocks: *blocks, HousesPerBlock: *houses, Verts: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d.Scene.Stats())

	in, err := d.Interpret(spam.InterpretOptions{Workers: *workers, Level: spam.Level3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nfragments: %d, consistent pairs: %d\n", len(in.Fragments), len(in.Pairs))

	// How many house hypotheses found their driveway?
	houseIDs := map[int]bool{}
	for _, f := range in.Fragments {
		if f.Type == scene.House {
			houseIDs[f.ID] = true
		}
	}
	fragByID := map[int]*spam.Fragment{}
	for _, f := range in.Fragments {
		fragByID[f.ID] = f
	}
	housesWithDriveway := map[int]bool{}
	for _, p := range in.Pairs {
		if houseIDs[p.Object] && p.Relation == spam.RelAdjacent {
			if pf := fragByID[p.Partner]; pf != nil && pf.Type == scene.Driveway {
				housesWithDriveway[p.Object] = true
			}
		}
	}
	fmt.Printf("house hypotheses with an adjacent driveway: %d of %d\n",
		len(housesWithDriveway), len(houseIDs))

	fmt.Println("\nfunctional areas:")
	for _, fa := range in.FAs {
		if fa.Status == "closed" && fa.NMembers > 0 {
			fmt.Printf("  %-14s seed %-5d members %d\n", fa.Type, fa.Seed, fa.NMembers)
		}
	}
	if in.ModelFound {
		fmt.Printf("\nscene model: score=%d over %d functional areas\n", in.Model.Score, in.Model.NFAs)
	}
}
