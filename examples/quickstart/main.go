// Quickstart: the three layers of the library in one page.
//
//  1. Write and run an OPS5 production system.
//  2. Split independent work into tasks and run them on a SPAM/PSM-style
//     task-process pool (task-level parallelism).
//  3. Replay the measured cost logs on the virtual-time multiprocessor
//     to see the speedup a 14-processor Encore Multimax would give.
package main

import (
	"fmt"
	"log"
	"os"

	"spampsm/internal/machine"
	"spampsm/internal/ops5"
	"spampsm/internal/symtab"
	"spampsm/internal/tlp"
)

// A miniature classification system: score numbers as small/large.
const src = `
(literalize sample id value label)
(literalize summary small large)

(p classify-small
   { <s> (sample ^value <= 50 ^label none) }
  -->
   (modify <s> ^label small))

(p classify-large
   { <s> (sample ^value > 50 ^label none) }
  -->
   (modify <s> ^label large))

(p tally-small
   { <s> (sample ^label small) }
   { <t> (summary ^small <n>) }
  -->
   (remove <s>)
   (modify <t> ^small (compute <n> + 1)))

(p tally-large
   { <s> (sample ^label large) }
   { <t> (summary ^large <n>) }
  -->
   (remove <s>)
   (modify <t> ^large (compute <n> + 1)))
`

// buildTask returns a task classifying one batch of samples. Each task
// is a complete, independent OPS5 engine — that is SPAM/PSM's
// working-memory distribution.
func buildTask(id int, values []int64) *tlp.Task {
	return &tlp.Task{
		ID:      fmt.Sprintf("batch-%d", id),
		EstSize: float64(len(values)),
		Build: func() (*ops5.Engine, error) {
			prog, err := ops5.Parse(src)
			if err != nil {
				return nil, err
			}
			e, err := ops5.NewEngine(prog)
			if err != nil {
				return nil, err
			}
			if _, err := e.Assert("summary", map[string]symtab.Value{
				"small": symtab.Int(0), "large": symtab.Int(0),
			}); err != nil {
				return nil, err
			}
			for i, v := range values {
				if _, err := e.Assert("sample", map[string]symtab.Value{
					"id":    symtab.Int(int64(i)),
					"value": symtab.Int(v),
					"label": symtab.Sym("none"),
				}); err != nil {
					return nil, err
				}
			}
			return e, nil
		},
	}
}

func main() {
	// 1. One engine, run to quiescence.
	single := buildTask(0, []int64{10, 80, 42, 99})
	eng, err := single.Build()
	if err != nil {
		log.Fatal(err)
	}
	fired, err := eng.Run(0)
	if err != nil {
		log.Fatal(err)
	}
	sum := eng.WMEs("summary")[0]
	fmt.Printf("single engine: %d firings, small=%v large=%v\n",
		fired, sum.Get("small"), sum.Get("large"))

	// 2. A queue of independent tasks on a task-process pool.
	var tasks []*tlp.Task
	for i := 0; i < 40; i++ {
		vals := make([]int64, 25)
		for j := range vals {
			vals[j] = int64((i*31 + j*17) % 100)
		}
		tasks = append(tasks, buildTask(i, vals))
	}
	pool := &tlp.Pool{Workers: 4}
	results, err := pool.Run(tasks)
	if err != nil {
		log.Fatal(err)
	}
	if err := tlp.FirstError(results); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task pool: %d tasks, %d total firings on %d workers\n",
		len(results), tlp.TotalFirings(results), pool.Workers)

	// 3. Replay the cost logs on the simulated multiprocessor.
	var mtasks []machine.Task
	for _, r := range results {
		mtasks = append(mtasks, machine.Task{ID: r.TaskID, Log: r.Log})
	}
	exp := machine.NewExperiment(mtasks)
	fmt.Println("simulated Encore Multimax speedups (task-level parallelism):")
	for _, p := range []int{1, 2, 4, 8, 14} {
		s := exp.Speedup(machine.Config{TaskProcs: p})
		fmt.Printf("  %2d task processes: %5.2fx\n", p, s)
	}
	os.Exit(0)
}
