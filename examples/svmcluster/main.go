// Two-Encore shared-virtual-memory execution of an LCC phase.
//
// Measures the SF LCC Level-3 task queue once, then schedules it on a
// simulated two-node cluster joined by a network shared-memory server
// (50 ms page-fault service), sweeping processor placements and
// showing the translational cost of crossing the node boundary — the
// paper's Section 7 experiment.
package main

import (
	"flag"
	"fmt"
	"log"

	"spampsm/internal/core"
	"spampsm/internal/machine"
	"spampsm/internal/spam"
	"spampsm/internal/svm"
)

func main() {
	node0 := flag.Int("node0", 13, "task processes on the home Encore")
	total := flag.Int("total", 22, "total task processes across both Encores")
	falseSharing := flag.Bool("false-sharing", false,
		"simulate the system before data-structure layout was fixed")
	flag.Parse()

	d, err := core.LoadDataset("SF")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("measuring SF LCC Level 3 baseline...")
	m, err := core.NewSystem(d, core.LCC, spam.Level3).Measure(false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("queue: %d tasks, baseline %.0f simulated seconds\n\n",
		m.NumTasks(), machine.InstrToSec(m.BaselineInstr()))

	cfg := svm.DefaultConfig()
	cfg.FalseSharing = *falseSharing
	durs := machine.Durations(m.Exp.Tasks, 0, m.Exp.Model)
	base := machine.Run(durs, 1, m.Exp.Overheads).Makespan

	fmt.Printf("%-6s %-8s %-8s %-10s %s\n", "procs", "node0", "remote", "speedup", "pure-TLP")
	for p := 1; p <= *total; p++ {
		cl := svm.Cluster{Node0Procs: p}
		if p > *node0 {
			cl = svm.Cluster{Node0Procs: *node0, RemoteProcs: p - *node0}
		}
		t := svm.Run(durs, cl, cfg, m.Exp.Overheads).Makespan
		pure := machine.Run(durs, p, m.Exp.Overheads).Makespan
		marker := ""
		if cl.RemoteProcs > 0 {
			marker = "  <- spans both Encores"
		}
		fmt.Printf("%-6d %-8d %-8d %-10.2f %.2f%s\n",
			p, cl.Node0Procs, cl.RemoteProcs, base/t, base/pure, marker)
	}

	if cl := (svm.Cluster{Node0Procs: *node0, RemoteProcs: *total - *node0}); cl.RemoteProcs > 0 {
		loss := svm.TranslationLoss(durs, cl, cfg, m.Exp.Overheads)
		fmt.Printf("\ntranslational effect: the cluster of %d behaves like %.1f pure-TLP processors (loss %.1f)\n",
			cl.Total(), float64(cl.Total())-loss, loss)
	}
}
