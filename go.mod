module spampsm

go 1.24
