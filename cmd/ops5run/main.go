// Command ops5run is a standalone OPS5 interpreter: it loads a
// production-system source file, optionally an initial working memory,
// runs the recognize-act loop, and reports statistics.
//
// Usage:
//
//	ops5run [-wm FILE] [-max N] [-strategy lex|mea] [-dump CLASS] program.ops5
//
// The working-memory file contains "(class ^attr value ...)" forms.
package main

import (
	"flag"
	"fmt"
	"os"

	"spampsm/internal/machine"
	"spampsm/internal/ops5"
)

func main() {
	wmFile := flag.String("wm", "", "initial working-memory file")
	maxFirings := flag.Int("max", 0, "maximum production firings (0 = unlimited)")
	dump := flag.String("dump", "", "print the final WMEs of this class")
	interactive := flag.Bool("i", false, "start an interactive shell instead of running to quiescence")
	trace := flag.Bool("trace", false, "trace firings and working-memory changes")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ops5run [flags] program.ops5")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ops5run:", err)
		os.Exit(1)
	}
	prog, err := ops5.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ops5run:", err)
		os.Exit(1)
	}
	opts := []ops5.Option{ops5.WithOutput(os.Stdout)}
	if *trace {
		opts = append(opts, ops5.WithTrace(os.Stderr))
	}
	e, err := ops5.NewEngine(prog, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ops5run:", err)
		os.Exit(1)
	}
	if *wmFile != "" {
		wmSrc, err := os.ReadFile(*wmFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ops5run:", err)
			os.Exit(1)
		}
		specs, err := ops5.ParseWMEList(string(wmSrc))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ops5run:", err)
			os.Exit(1)
		}
		if err := e.AssertAll(specs); err != nil {
			fmt.Fprintln(os.Stderr, "ops5run:", err)
			os.Exit(1)
		}
	}
	if *interactive {
		sh := &ops5.Shell{Engine: e}
		if err := sh.Run(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "ops5run:", err)
			os.Exit(1)
		}
		return
	}
	fired, err := e.Run(*maxFirings)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ops5run:", err)
		os.Exit(1)
	}
	st := e.Stats()
	fmt.Printf("\n%d productions, %d firings, %d cycles, halted=%v\n",
		len(prog.Productions), fired, st.Cycles, st.Halted)
	fmt.Printf("simulated time %.3f s (match %.0f%%)\n",
		machine.InstrToSec(st.TotalInstr()), 100*st.MatchFraction())
	if *dump != "" {
		for _, w := range e.WMEs(*dump) {
			fmt.Println(w)
		}
	}
}
