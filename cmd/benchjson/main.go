// Command benchjson runs the repository's Go benchmarks and writes a
// machine-readable BENCH_<n>.json snapshot: per-benchmark ns/op,
// allocs/op and throughput metrics (tokens/s, firings/s), plus
// paired baseline-vs-optimized comparisons where a benchmark provides
// both variants. Five pairings are recognised:
//
//   - <base>/naive vs <base>/indexed — the unindexed reference matcher
//     against the equality-hash-indexed default (the pre-indexing
//     baseline),
//   - <base>/recompile vs <base>/instantiate — per-engine Rete
//     recompilation against O(nodes) instantiation from the Program's
//     shared compiled template (the pre-template baseline),
//   - <base>/unbatched vs <base>/batched — per-WME seed assertion
//     against batched seed distribution with memoized alpha routing
//     (the pre-batching baseline),
//   - <base>/exact vs <base>/fast — exact Hypot geometry kernels with
//     no caches against squared-distance kernels, decisive-bound
//     threshold predicates, the derived-geometry cache and the
//     spatial-predicate memo (the pre-fast-path baseline), and
//   - <base>/scan vs <base>/grid — the linear partner-search scan
//     against the kind-partitioned uniform-grid fragment index.
//
// Each comparison records the optimisation's wall-clock win inside the
// same file.
//
// With -compare OLD.json the freshly measured report is checked
// against a previous snapshot: any matching benchmark whose ns/op
// regressed by more than 10%, or whose pairing speedup dropped by more
// than 10%, is reported as a warning on stderr. Warnings are non-fatal
// — benchmark noise must never break a build — but they make a
// regression visible in the log before the snapshot is committed.
//
// -compare also understands the spampsm-cluster-bench schema
// (BENCH_9/BENCH_10.json): paired with -cluster NEW.json it skips the
// Go benchmark matrix and diffs the two cluster documents instead —
// matching (dataset, procs) points whose wire bytes per modeled seed
// byte grew by more than 10%, or whose worker-side continuation share
// dropped, are warned about, and a recovery block that lost the
// exactly-once property is an error. Wall-clock columns are
// host-dependent and deliberately not compared. This is how the CI
// bench-radar watches the cluster snapshots instead of skipping them.
//
// Each benchmark is run -count times (default 3) and the fastest
// repetition is kept — interference on a shared machine only ever adds
// time, so min-of-N is the closest observable to the code's true cost.
//
// Usage:
//
//	benchjson [-out BENCH_5.json] [-benchtime 1s] [-count 3] [-compare BENCH_4.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"spampsm/internal/bench"
)

// clusterSchemaPrefix identifies spampsm-cluster-bench documents of
// any version; v1 (BENCH_9.json) and v2 (BENCH_10.json) share the
// ship-share column the radar keys on.
const clusterSchemaPrefix = "spampsm-cluster-bench/"

// suite is the fixed benchmark matrix: package × bench filter. A
// non-empty benchtime overrides the -benchtime flag for that entry:
// the end-to-end interpretation benchmarks run ~175 ms/op, so a
// 1s benchtime gives them too few iterations to average out noise —
// they get a fixed iteration count instead.
var suite = []struct {
	pkg       string
	pattern   string
	benchtime string
}{
	{"./internal/rete", "BenchmarkJoinChurn|BenchmarkWideEqJoin", ""},
	{"./internal/ops5", "BenchmarkRecognizeActCycle|BenchmarkJoinHeavyMatch|BenchmarkCompile|BenchmarkEngineBuild|BenchmarkSeedLoad", ""},
	{"./internal/tlp", "BenchmarkPoolDispatch", ""},
	{"./internal/machine", "BenchmarkSchedulerPolicies", ""},
	{"./internal/matchbench", "BenchmarkRubik|BenchmarkWeaver|BenchmarkTourney", ""},
	{"./internal/geom", "BenchmarkGeomPredicates", ""},
	{"./internal/spam", "BenchmarkPartnerSearch", ""},
	{"./internal/spam", "BenchmarkInterpretDC|BenchmarkInterpretDCSeed|BenchmarkInterpretDCGeo", "10x"},
}

// pairings maps a benchmark's baseline sub-variant to its optimized
// counterpart; compare() emits one comparison per <base> that reports
// both.
var pairings = []struct{ baseline, optimized string }{
	{"naive", "indexed"},
	{"recompile", "instantiate"},
	{"unbatched", "batched"},
	{"exact", "fast"},
	{"scan", "grid"},
}

type result struct {
	Package    string             `json:"package"`
	Name       string             `json:"name"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type comparison struct {
	Benchmark       string  `json:"benchmark"`
	Package         string  `json:"package"`
	Baseline        string  `json:"baseline_variant"`
	Optimized       string  `json:"optimized_variant"`
	BaselineNsOp    float64 `json:"baseline_ns_op"`
	OptimizedNsOp   float64 `json:"optimized_ns_op"`
	Speedup         float64 `json:"speedup"`
	BaselineAllocs  float64 `json:"baseline_allocs_op,omitempty"`
	OptimizedAllocs float64 `json:"optimized_allocs_op,omitempty"`
}

type report struct {
	Schema      string       `json:"schema"`
	Issue       int          `json:"issue"`
	Date        string       `json:"date"`
	GoVersion   string       `json:"go"`
	Benchtime   string       `json:"benchtime"`
	Baseline    string       `json:"baseline"`
	Results     []result     `json:"results"`
	Comparisons []comparison `json:"comparisons"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

func parseMetrics(s string) map[string]float64 {
	m := map[string]float64{}
	fields := strings.Fields(s)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		m[fields[i+1]] = v
	}
	return m
}

func run(pkg, pattern, benchtime string, count int) ([]result, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
		"-benchmem", "-benchtime", benchtime,
		"-count", strconv.Itoa(count), pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("benchjson: %s: %v\n%s", pkg, err, out)
	}
	var rs []result
	pkgName := ""
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "pkg: ") {
			pkgName = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		}
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.Atoi(m[2])
		rs = append(rs, result{
			Package:    pkgName,
			Name:       m[1],
			Iterations: iters,
			Metrics:    parseMetrics(m[3]),
		})
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("benchjson: %s: no benchmark results parsed:\n%s", pkg, out)
	}
	return bestOf(rs), nil
}

// bestOf collapses the -count repetitions of each benchmark to the
// repetition with the lowest ns/op. Minimum-of-N is the standard way
// to read benchmarks on a shared machine: interference only ever adds
// time, so the fastest repetition is the closest to the code's true
// cost. Order of first appearance is preserved.
func bestOf(rs []result) []result {
	best := map[string]int{}
	var out []result
	for _, r := range rs {
		k := r.Package + "." + r.Name
		i, ok := best[k]
		if !ok {
			best[k] = len(out)
			out = append(out, r)
			continue
		}
		if r.Metrics["ns/op"] < out[i].Metrics["ns/op"] {
			out[i] = r
		}
	}
	return out
}

// procSuffix strips the trailing "-N" GOMAXPROCS marker.
func procSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// compare pairs each benchmark's baseline sub-variant with its
// optimized counterpart (see pairings).
func compare(rs []result) []comparison {
	type variant struct{ baseline, optimized *result }
	type key struct {
		base string
		pair int
	}
	byKey := map[key]*variant{}
	order := []key{}
	for i := range rs {
		name := procSuffix(rs[i].Name)
		for pi, p := range pairings {
			var base string
			var opt bool
			switch {
			case strings.HasSuffix(name, "/"+p.baseline):
				base = strings.TrimSuffix(name, "/"+p.baseline)
			case strings.HasSuffix(name, "/"+p.optimized):
				base, opt = strings.TrimSuffix(name, "/"+p.optimized), true
			default:
				continue
			}
			k := key{base, pi}
			v := byKey[k]
			if v == nil {
				v = &variant{}
				byKey[k] = v
				order = append(order, k)
			}
			if opt {
				v.optimized = &rs[i]
			} else {
				v.baseline = &rs[i]
			}
		}
	}
	var cs []comparison
	for _, k := range order {
		v := byKey[k]
		if v.baseline == nil || v.optimized == nil {
			continue
		}
		bn, on := v.baseline.Metrics["ns/op"], v.optimized.Metrics["ns/op"]
		if bn == 0 || on == 0 {
			continue
		}
		cs = append(cs, comparison{
			Benchmark:       k.base,
			Package:         v.optimized.Package,
			Baseline:        pairings[k.pair].baseline,
			Optimized:       pairings[k.pair].optimized,
			BaselineNsOp:    bn,
			OptimizedNsOp:   on,
			Speedup:         bn / on,
			BaselineAllocs:  v.baseline.Metrics["allocs/op"],
			OptimizedAllocs: v.optimized.Metrics["allocs/op"],
		})
	}
	return cs
}

// warnClusterRegressions diffs two cluster-bench documents: matching
// (dataset, procs) points are compared on the machine-independent
// wire-accounting columns. Ship-share growth beyond tolerance and a
// shrinking worker-side continuation share are warnings (same
// non-fatal contract as the Go-bench radar); a recovery block that is
// no longer exactly-once is returned as an error — that is a
// correctness property, not a performance number.
func warnClusterRegressions(old, fresh *bench.ClusterReport, tolerance float64) (int, error) {
	type key struct {
		dataset string
		procs   int
	}
	oldPts := map[key]bench.ClusterPoint{}
	for _, pt := range old.Points {
		oldPts[key{pt.Dataset, pt.Procs}] = pt
	}
	warned := 0
	for _, pt := range fresh.Points {
		prev, ok := oldPts[key{pt.Dataset, pt.Procs}]
		if !ok {
			continue
		}
		if prev.ShipShare > 0 && pt.ShipShare > prev.ShipShare*(1+tolerance) {
			fmt.Fprintf(os.Stderr, "benchjson: WARNING: cluster %s/procs=%d ship share grew %.1f%% (%.3f -> %.3f wire bytes per seed byte)\n",
				pt.Dataset, pt.Procs, 100*(pt.ShipShare/prev.ShipShare-1), prev.ShipShare, pt.ShipShare)
			warned++
		}
		// Continuation share only exists where both documents ran
		// re-entry tasks; a v1 snapshot (all-zero columns) matches
		// nothing here and the ship-share diff above carries the radar.
		if prev.ContinuationTasks > 0 && pt.ContinuationTasks > 0 {
			prevShare := float64(prev.Continuations) / float64(prev.ContinuationTasks)
			share := float64(pt.Continuations) / float64(pt.ContinuationTasks)
			if share < prevShare*(1-tolerance) {
				fmt.Fprintf(os.Stderr, "benchjson: WARNING: cluster %s/procs=%d worker-side continuation share dropped (%.0f%% -> %.0f%%)\n",
					pt.Dataset, pt.Procs, 100*prevShare, 100*share)
				warned++
			}
		}
	}
	if old.Recovery.ExactlyOnce && !fresh.Recovery.ExactlyOnce {
		return warned, fmt.Errorf("cluster recovery lost the exactly-once property (%d tasks, %d completed)",
			fresh.Recovery.Tasks, fresh.Recovery.Completed)
	}
	return warned, nil
}

// compareCluster is the -compare path for cluster-bench snapshots:
// both sides come from disk (the documents are expensive multi-process
// runs regenerated by make bench-cluster, not by this command).
func compareCluster(oldPath string, oldBuf []byte, freshPath string) {
	var old bench.ClusterReport
	if err := json.Unmarshal(oldBuf, &old); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", oldPath, err)
		os.Exit(1)
	}
	buf, err := os.ReadFile(freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var fresh bench.ClusterReport
	if err := json.Unmarshal(buf, &fresh); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", freshPath, err)
		os.Exit(1)
	}
	if !strings.HasPrefix(fresh.Schema, clusterSchemaPrefix) {
		fmt.Fprintf(os.Stderr, "benchjson: %s has schema %q, want a %s* document\n",
			freshPath, fresh.Schema, clusterSchemaPrefix)
		os.Exit(1)
	}
	n, err := warnClusterRegressions(&old, &fresh, 0.10)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: ERROR:", err)
		os.Exit(1)
	}
	if n == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no >10%% cluster regressions in %s vs %s\n", freshPath, oldPath)
	}
}

// warnRegressions compares a fresh report against a previous snapshot
// and prints a warning for every matching benchmark whose ns/op grew
// by more than tolerance, and every pairing whose speedup shrank by
// more than tolerance. Non-fatal by design: benchmark noise must never
// break a build.
func warnRegressions(old, fresh *report, tolerance float64) int {
	oldNs := map[string]float64{}
	for _, r := range old.Results {
		oldNs[r.Package+"."+procSuffix(r.Name)] = r.Metrics["ns/op"]
	}
	warned := 0
	for _, r := range fresh.Results {
		key := r.Package + "." + procSuffix(r.Name)
		prev, ok := oldNs[key]
		now := r.Metrics["ns/op"]
		if !ok || prev == 0 || now == 0 {
			continue
		}
		if now > prev*(1+tolerance) {
			fmt.Fprintf(os.Stderr, "benchjson: WARNING: %s regressed %.1f%% (%.0f -> %.0f ns/op)\n",
				key, 100*(now/prev-1), prev, now)
			warned++
		}
	}
	oldSpeed := map[string]float64{}
	for _, c := range old.Comparisons {
		oldSpeed[c.Package+"."+c.Benchmark+":"+c.Baseline] = c.Speedup
	}
	for _, c := range fresh.Comparisons {
		key := c.Package + "." + c.Benchmark + ":" + c.Baseline
		prev, ok := oldSpeed[key]
		if !ok || prev == 0 {
			continue
		}
		if c.Speedup < prev*(1-tolerance) {
			fmt.Fprintf(os.Stderr, "benchjson: WARNING: %s speedup dropped %.1f%% (%.2fx -> %.2fx)\n",
				key, 100*(1-c.Speedup/prev), prev, c.Speedup)
			warned++
		}
	}
	return warned
}

func main() {
	out := flag.String("out", "BENCH_5.json", "output file")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value")
	count := flag.Int("count", 3, "repetitions per benchmark; the fastest is kept (min-of-N)")
	compareWith := flag.String("compare", "", "previous BENCH_<n>.json snapshot to warn against (non-fatal, >10% regressions)")
	clusterFresh := flag.String("cluster", "", "fresh cluster-bench document to diff against a cluster -compare snapshot (skips the Go benchmark matrix)")
	flag.Parse()

	// Schema dispatch: a cluster-bench baseline switches the command
	// into document-diff mode — both sides come from disk, nothing is
	// measured here.
	if *compareWith != "" {
		oldBuf, err := os.ReadFile(*compareWith)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var sniff struct {
			Schema string `json:"schema"`
		}
		if err := json.Unmarshal(oldBuf, &sniff); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *compareWith, err)
			os.Exit(1)
		}
		if strings.HasPrefix(sniff.Schema, clusterSchemaPrefix) {
			if *clusterFresh == "" {
				fmt.Fprintf(os.Stderr, "benchjson: %s is a cluster-bench document; pass the fresh snapshot via -cluster NEW.json\n", *compareWith)
				os.Exit(1)
			}
			compareCluster(*compareWith, oldBuf, *clusterFresh)
			return
		}
		if *clusterFresh != "" {
			fmt.Fprintf(os.Stderr, "benchjson: -cluster needs a cluster-bench -compare baseline, got schema %q\n", sniff.Schema)
			os.Exit(1)
		}
	}

	rep := report{
		Schema:    "spampsm-bench/v2",
		Issue:     5,
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		Benchtime: *benchtime,
		Baseline: "naive: unindexed full-scan matcher (the pre-indexing Rete, " +
			"selectable via SetIndexing(false)/WithNaiveMatch/-naive); " +
			"indexed: equality-hash-indexed memories (the default). " +
			"recompile: per-engine Rete compilation (the pre-template NewEngine, " +
			"selectable via WithFreshCompile/UseFreshCompile); " +
			"instantiate: O(nodes) instantiation of the Program's shared compiled " +
			"template (the default). " +
			"unbatched: per-WME seed assertion walking every constant test " +
			"(the pre-batching path, selectable via WithPerWMEAssert/" +
			"UseUnbatchedSeed/-no-seed-cache); " +
			"batched: AssertBatch with memoized alpha routing (the default). " +
			"exact: exact Hypot geometry kernels without the predicate memo, " +
			"derived-geometry cache or partner grid (the pre-fast-path " +
			"geometry, selectable via geom.UseExactOnly/UseUncachedGeo/" +
			"-naive-geom); " +
			"fast: squared-distance kernels with decisive-bound threshold " +
			"predicates and store-level caches (the default). " +
			"scan: linear all-fragments partner search; " +
			"grid: kind-partitioned uniform-grid fragment index (the default). " +
			"Simulated instruction Counters are byte-identical across all variants.",
	}
	for _, s := range suite {
		bt := *benchtime
		if s.benchtime != "" {
			bt = s.benchtime
		}
		fmt.Fprintf(os.Stderr, "benchjson: running %s (%s, benchtime %s)\n", s.pkg, s.pattern, bt)
		rs, err := run(s.pkg, s.pattern, bt, *count)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep.Results = append(rep.Results, rs...)
	}
	rep.Comparisons = compare(rep.Results)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d results, %d comparisons)\n",
		*out, len(rep.Results), len(rep.Comparisons))
	for _, c := range rep.Comparisons {
		fmt.Fprintf(os.Stderr, "  %-40s %s->%s %6.2fx\n", c.Benchmark, c.Baseline, c.Optimized, c.Speedup)
	}

	if *compareWith != "" {
		buf, err := os.ReadFile(*compareWith)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var old report
		if err := json.Unmarshal(buf, &old); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *compareWith, err)
			os.Exit(1)
		}
		// A baseline with a foreign schema (e.g. a serve- or
		// memsched-bench document) would match nothing and the radar
		// would silently go blind; refuse it instead. (Cluster-bench
		// baselines were dispatched to the document-diff path above.)
		if old.Schema != rep.Schema {
			fmt.Fprintf(os.Stderr, "benchjson: %s has schema %q, want %q — not a comparable snapshot\n",
				*compareWith, old.Schema, rep.Schema)
			os.Exit(1)
		}
		if n := warnRegressions(&old, &rep, 0.10); n == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: no >10%% regressions vs %s\n", *compareWith)
		}
	}
}
