// Command benchjson runs the repository's Go benchmarks and writes a
// machine-readable BENCH_<n>.json snapshot: per-benchmark ns/op,
// allocs/op and throughput metrics (tokens/s, firings/s), plus
// paired baseline-vs-optimized comparisons where a benchmark provides
// both variants. Two pairings are recognised:
//
//   - <base>/naive vs <base>/indexed — the unindexed reference matcher
//     against the equality-hash-indexed default (the pre-indexing
//     baseline), and
//   - <base>/recompile vs <base>/instantiate — per-engine Rete
//     recompilation against O(nodes) instantiation from the Program's
//     shared compiled template (the pre-template baseline).
//
// Each comparison records the optimisation's wall-clock win inside the
// same file.
//
// Usage:
//
//	benchjson [-out BENCH_3.json] [-benchtime 1s]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// suite is the fixed benchmark matrix: package × bench filter.
var suite = []struct {
	pkg     string
	pattern string
}{
	{"./internal/rete", "BenchmarkJoinChurn|BenchmarkWideEqJoin"},
	{"./internal/ops5", "BenchmarkRecognizeActCycle|BenchmarkJoinHeavyMatch|BenchmarkCompile|BenchmarkEngineBuild"},
	{"./internal/tlp", "BenchmarkPoolDispatch"},
	{"./internal/matchbench", "BenchmarkRubik|BenchmarkWeaver|BenchmarkTourney"},
	{"./internal/spam", "BenchmarkInterpretDC"},
}

// pairings maps a benchmark's baseline sub-variant to its optimized
// counterpart; compare() emits one comparison per <base> that reports
// both.
var pairings = []struct{ baseline, optimized string }{
	{"naive", "indexed"},
	{"recompile", "instantiate"},
}

type result struct {
	Package    string             `json:"package"`
	Name       string             `json:"name"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type comparison struct {
	Benchmark       string  `json:"benchmark"`
	Package         string  `json:"package"`
	Baseline        string  `json:"baseline_variant"`
	Optimized       string  `json:"optimized_variant"`
	BaselineNsOp    float64 `json:"baseline_ns_op"`
	OptimizedNsOp   float64 `json:"optimized_ns_op"`
	Speedup         float64 `json:"speedup"`
	BaselineAllocs  float64 `json:"baseline_allocs_op,omitempty"`
	OptimizedAllocs float64 `json:"optimized_allocs_op,omitempty"`
}

type report struct {
	Schema      string       `json:"schema"`
	Issue       int          `json:"issue"`
	Date        string       `json:"date"`
	GoVersion   string       `json:"go"`
	Benchtime   string       `json:"benchtime"`
	Baseline    string       `json:"baseline"`
	Results     []result     `json:"results"`
	Comparisons []comparison `json:"comparisons"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

func parseMetrics(s string) map[string]float64 {
	m := map[string]float64{}
	fields := strings.Fields(s)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		m[fields[i+1]] = v
	}
	return m
}

func run(pkg, pattern, benchtime string) ([]result, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
		"-benchmem", "-benchtime", benchtime, pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("benchjson: %s: %v\n%s", pkg, err, out)
	}
	var rs []result
	pkgName := ""
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "pkg: ") {
			pkgName = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		}
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.Atoi(m[2])
		rs = append(rs, result{
			Package:    pkgName,
			Name:       m[1],
			Iterations: iters,
			Metrics:    parseMetrics(m[3]),
		})
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("benchjson: %s: no benchmark results parsed:\n%s", pkg, out)
	}
	return rs, nil
}

// procSuffix strips the trailing "-N" GOMAXPROCS marker.
func procSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// compare pairs each benchmark's baseline sub-variant with its
// optimized counterpart (see pairings).
func compare(rs []result) []comparison {
	type variant struct{ baseline, optimized *result }
	type key struct {
		base string
		pair int
	}
	byKey := map[key]*variant{}
	order := []key{}
	for i := range rs {
		name := procSuffix(rs[i].Name)
		for pi, p := range pairings {
			var base string
			var opt bool
			switch {
			case strings.HasSuffix(name, "/"+p.baseline):
				base = strings.TrimSuffix(name, "/"+p.baseline)
			case strings.HasSuffix(name, "/"+p.optimized):
				base, opt = strings.TrimSuffix(name, "/"+p.optimized), true
			default:
				continue
			}
			k := key{base, pi}
			v := byKey[k]
			if v == nil {
				v = &variant{}
				byKey[k] = v
				order = append(order, k)
			}
			if opt {
				v.optimized = &rs[i]
			} else {
				v.baseline = &rs[i]
			}
		}
	}
	var cs []comparison
	for _, k := range order {
		v := byKey[k]
		if v.baseline == nil || v.optimized == nil {
			continue
		}
		bn, on := v.baseline.Metrics["ns/op"], v.optimized.Metrics["ns/op"]
		if bn == 0 || on == 0 {
			continue
		}
		cs = append(cs, comparison{
			Benchmark:       k.base,
			Package:         v.optimized.Package,
			Baseline:        pairings[k.pair].baseline,
			Optimized:       pairings[k.pair].optimized,
			BaselineNsOp:    bn,
			OptimizedNsOp:   on,
			Speedup:         bn / on,
			BaselineAllocs:  v.baseline.Metrics["allocs/op"],
			OptimizedAllocs: v.optimized.Metrics["allocs/op"],
		})
	}
	return cs
}

func main() {
	out := flag.String("out", "BENCH_3.json", "output file")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value")
	flag.Parse()

	rep := report{
		Schema:    "spampsm-bench/v2",
		Issue:     3,
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		Benchtime: *benchtime,
		Baseline: "naive: unindexed full-scan matcher (the pre-indexing Rete, " +
			"selectable via SetIndexing(false)/WithNaiveMatch/-naive); " +
			"indexed: equality-hash-indexed memories (the default). " +
			"recompile: per-engine Rete compilation (the pre-template NewEngine, " +
			"selectable via WithFreshCompile/UseFreshCompile); " +
			"instantiate: O(nodes) instantiation of the Program's shared compiled " +
			"template (the default). Simulated instruction Counters are " +
			"byte-identical across all variants.",
	}
	for _, s := range suite {
		fmt.Fprintf(os.Stderr, "benchjson: running %s (%s)\n", s.pkg, s.pattern)
		rs, err := run(s.pkg, s.pattern, *benchtime)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep.Results = append(rep.Results, rs...)
	}
	rep.Comparisons = compare(rep.Results)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d results, %d comparisons)\n",
		*out, len(rep.Results), len(rep.Comparisons))
	for _, c := range rep.Comparisons {
		fmt.Fprintf(os.Stderr, "  %-40s %s->%s %6.2fx\n", c.Benchmark, c.Baseline, c.Optimized, c.Speedup)
	}
}
