// Command benchjson runs the repository's Go benchmarks and writes a
// machine-readable BENCH_<n>.json snapshot: per-benchmark ns/op,
// allocs/op and throughput metrics (tokens/s, firings/s), plus
// indexed-vs-naive comparisons where a benchmark provides both
// variants. The naive variant is the unindexed reference matcher —
// i.e. the pre-indexing baseline — so each comparison records the
// optimisation's wall-clock win inside the same file.
//
// Usage:
//
//	benchjson [-out BENCH_2.json] [-benchtime 1s] [-short]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// suite is the fixed benchmark matrix: package × bench filter.
var suite = []struct {
	pkg     string
	pattern string
}{
	{"./internal/rete", "BenchmarkJoinChurn|BenchmarkWideEqJoin"},
	{"./internal/ops5", "BenchmarkRecognizeActCycle|BenchmarkJoinHeavyMatch|BenchmarkCompile"},
	{"./internal/matchbench", "BenchmarkRubik|BenchmarkWeaver|BenchmarkTourney"},
	{"./internal/spam", "BenchmarkInterpretDC"},
}

type result struct {
	Package    string             `json:"package"`
	Name       string             `json:"name"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type comparison struct {
	Benchmark    string  `json:"benchmark"`
	Package      string  `json:"package"`
	NaiveNsOp    float64 `json:"naive_ns_op"`
	IndexedNsOp  float64 `json:"indexed_ns_op"`
	Speedup      float64 `json:"speedup"`
	NaiveAllocs  float64 `json:"naive_allocs_op,omitempty"`
	IndexedAlloc float64 `json:"indexed_allocs_op,omitempty"`
}

type report struct {
	Schema      string       `json:"schema"`
	Issue       int          `json:"issue"`
	Date        string       `json:"date"`
	GoVersion   string       `json:"go"`
	Benchtime   string       `json:"benchtime"`
	Baseline    string       `json:"baseline"`
	Results     []result     `json:"results"`
	Comparisons []comparison `json:"comparisons"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

func parseMetrics(s string) map[string]float64 {
	m := map[string]float64{}
	fields := strings.Fields(s)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		m[fields[i+1]] = v
	}
	return m
}

func run(pkg, pattern, benchtime string) ([]result, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
		"-benchmem", "-benchtime", benchtime, pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("benchjson: %s: %v\n%s", pkg, err, out)
	}
	var rs []result
	pkgName := ""
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "pkg: ") {
			pkgName = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		}
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.Atoi(m[2])
		rs = append(rs, result{
			Package:    pkgName,
			Name:       m[1],
			Iterations: iters,
			Metrics:    parseMetrics(m[3]),
		})
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("benchjson: %s: no benchmark results parsed:\n%s", pkg, out)
	}
	return rs, nil
}

// procSuffix strips the trailing "-N" GOMAXPROCS marker.
func procSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// compare pairs <base>/indexed with <base>/naive results.
func compare(rs []result) []comparison {
	type variant struct{ indexed, naive *result }
	byBase := map[string]*variant{}
	order := []string{}
	for i := range rs {
		name := procSuffix(rs[i].Name)
		var base, kind string
		switch {
		case strings.HasSuffix(name, "/indexed"):
			base, kind = strings.TrimSuffix(name, "/indexed"), "indexed"
		case strings.HasSuffix(name, "/naive"):
			base, kind = strings.TrimSuffix(name, "/naive"), "naive"
		default:
			continue
		}
		v := byBase[base]
		if v == nil {
			v = &variant{}
			byBase[base] = v
			order = append(order, base)
		}
		if kind == "indexed" {
			v.indexed = &rs[i]
		} else {
			v.naive = &rs[i]
		}
	}
	var cs []comparison
	for _, base := range order {
		v := byBase[base]
		if v.indexed == nil || v.naive == nil {
			continue
		}
		ni, ii := v.naive.Metrics["ns/op"], v.indexed.Metrics["ns/op"]
		if ni == 0 || ii == 0 {
			continue
		}
		cs = append(cs, comparison{
			Benchmark:    base,
			Package:      v.indexed.Package,
			NaiveNsOp:    ni,
			IndexedNsOp:  ii,
			Speedup:      ni / ii,
			NaiveAllocs:  v.naive.Metrics["allocs/op"],
			IndexedAlloc: v.indexed.Metrics["allocs/op"],
		})
	}
	return cs
}

func main() {
	out := flag.String("out", "BENCH_2.json", "output file")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value")
	flag.Parse()

	rep := report{
		Schema:    "spampsm-bench/v1",
		Issue:     2,
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		Benchtime: *benchtime,
		Baseline: "naive: unindexed full-scan matcher (the pre-indexing Rete, " +
			"selectable via SetIndexing(false)/WithNaiveMatch/-naive); " +
			"indexed: equality-hash-indexed memories (the default). " +
			"Simulated instruction Counters are byte-identical between the two.",
	}
	for _, s := range suite {
		fmt.Fprintf(os.Stderr, "benchjson: running %s (%s)\n", s.pkg, s.pattern)
		rs, err := run(s.pkg, s.pattern, *benchtime)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep.Results = append(rep.Results, rs...)
	}
	rep.Comparisons = compare(rep.Results)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d results, %d comparisons)\n",
		*out, len(rep.Results), len(rep.Comparisons))
	for _, c := range rep.Comparisons {
		fmt.Fprintf(os.Stderr, "  %-40s %6.2fx\n", c.Benchmark, c.Speedup)
	}
}
