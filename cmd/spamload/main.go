// Command spamload drives load against the interpretation service and
// reports throughput and latency percentiles, optionally writing the
// BENCH_6.json serving snapshot.
//
// Usage:
//
//	spamload [-url http://host:8641 | -self-serve] [-requests N]
//	         [-concurrency C] [-rate R] [-datasets SF,DC,MOFF]
//	         [-scenarios clean,faults,updates,cluster] [-fault-seed N]
//	         [-build-fail-rate P] [-panic-rate P] [-permanent-fraction P]
//	         [-session-updates K] [-churn F] [-cluster-workers N]
//	         [-max-retries K] [-cancel-every N] [-out BENCH_6.json]
//	         [-check]
//
// With -self-serve it starts an in-process server (no external process
// management needed), fires the scenarios at it, and drains it — the
// single-command smoke path used by `make serve-smoke`. Every scenario
// is bracketed by /healthz probes; -check exits non-zero unless all
// health checks passed and the written benchmark document is
// well-formed.
//
// The updates scenario drives the incremental session API instead of
// one-shot /interpret: each request opens a session (POST /session),
// folds in -session-updates churn deltas (-churn fraction each, POST
// /update), and closes it (DELETE /session/{id}); the latency sample
// is the whole open-update-close cycle. Sessions from concurrent
// clients coexist under the server's LRU session cap, so the scenario
// also exercises eviction under load.
//
// The cluster scenario fires clean named-scene traffic at a server
// whose /interpret requests execute across worker processes, and
// records the wire bytes the server shipped (from /stats deltas).
// With -self-serve it brings up the cluster backend itself
// (-cluster-workers processes); against -url the target must have
// been started with spamserve -cluster-workers.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"spampsm/internal/bench"
	"spampsm/internal/cluster"
	"spampsm/internal/core"
	"spampsm/internal/serve"
)

type cli struct {
	url         string
	requests    int
	concurrency int
	rate        float64
	datasets    []string
	tenants     int
	maxRetries  int
	cancelEvery int
	faultSeed   int64
	buildFail   float64
	panicRate   float64
	permanent   float64

	sessionUpdates int
	churn          float64

	client       *http.Client
	healthFailed int
	healthProbes int
}

func main() {
	cluster.MaybeWorker()
	os.Exit(realMain())
}

func realMain() int {
	urlFlag := flag.String("url", "", "target server base URL (empty with -self-serve)")
	selfServe := flag.Bool("self-serve", false, "start an in-process server and load it")
	workers := flag.Int("workers", 4, "self-served pool task processes")
	requests := flag.Int("requests", 24, "requests per scenario")
	concurrency := flag.Int("concurrency", 6, "concurrent load-generator clients")
	rate := flag.Float64("rate", 0, "arrival rate in requests/second (0 = closed loop)")
	datasets := flag.String("datasets", "SF,DC,MOFF", "comma-separated dataset mix")
	tenants := flag.Int("tenants", 3, "distinct tenants to rotate across requests")
	scenarios := flag.String("scenarios", "clean,faults", "scenarios to run: clean, faults, updates, cluster")
	faultSeed := flag.Int64("fault-seed", 1990, "fault-plan seed for the faults scenario")
	buildFail := flag.Float64("build-fail-rate", 0.2, "faults scenario: task build-failure probability")
	panicRate := flag.Float64("panic-rate", 0.05, "faults scenario: task panic probability")
	permanent := flag.Float64("permanent-fraction", 0.25, "faults scenario: fraction of faults that are permanent")
	maxRetries := flag.Int("max-retries", 2, "faults scenario: per-task retries before quarantine")
	sessionUpdates := flag.Int("session-updates", 3, "updates scenario: incremental churn updates per session")
	churnFrac := flag.Float64("churn", 0.05, "updates scenario: churn fraction per update delta")
	clusterWorkers := flag.Int("cluster-workers", 2, "cluster scenario: worker processes behind the self-served backend")
	cancelEvery := flag.Int("cancel-every", 0, "abort every Nth request mid-flight (0 = never)")
	out := flag.String("out", "", "write the serve-bench JSON document to this file")
	issue := flag.Int("issue", 6, "issue number recorded in the document")
	check := flag.Bool("check", false, "fail unless health checks all passed and the document is well-formed")
	flag.Parse()

	c := &cli{
		url:         *urlFlag,
		requests:    *requests,
		concurrency: *concurrency,
		rate:        *rate,
		datasets:    strings.Split(*datasets, ","),
		tenants:     *tenants,
		maxRetries:  *maxRetries,
		cancelEvery: *cancelEvery,
		faultSeed:   *faultSeed,
		buildFail:   *buildFail,
		panicRate:   *panicRate,
		permanent:   *permanent,

		sessionUpdates: *sessionUpdates,
		churn:          *churnFrac,

		client: &http.Client{Timeout: 5 * time.Minute},
	}

	// -self-serve: an in-process server on an ephemeral port, drained
	// on the way out. The smoke path needs no shell process management.
	var srv *serve.Server
	if *selfServe {
		if c.url != "" {
			fmt.Fprintln(os.Stderr, "spamload: -url and -self-serve are mutually exclusive")
			return 2
		}
		// The cluster scenario needs a server whose named-scene requests
		// execute across worker processes; bring the backend up only when
		// asked, since it spawns real processes.
		var clusterBackend serve.ClusterBackend
		if strings.Contains(*scenarios, "cluster") {
			co, err := cluster.Start(cluster.Config{
				Workers:      *clusterWorkers,
				LocalWorkers: *workers,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "spamload:", err)
				return 1
			}
			defer co.Close()
			for _, name := range c.datasets {
				spec, err := core.ClusterSpec(strings.TrimSpace(name))
				if err == nil {
					err = co.RegisterDataset(spec)
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "spamload:", err)
					return 1
				}
			}
			clusterBackend = co
		}
		srv = serve.New(serve.Config{
			Workers:     *workers,
			AllowFaults: true,
			// Chaos scenarios quarantine tasks on purpose, but those
			// quarantines are drawn from each request's own fault plan,
			// which the shared pool class-splits out of this budget —
			// so a real budget here still passes the health probes.
			QuarantineBudget: 32,
			Cluster:          clusterBackend,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "spamload:", err)
			return 1
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		c.url = "http://" + ln.Addr().String()
		defer func() {
			httpSrv.Shutdown(context.Background())
			srv.Close()
		}()
	}
	if c.url == "" {
		fmt.Fprintln(os.Stderr, "spamload: need -url or -self-serve")
		return 2
	}

	doc := &bench.ServeBench{
		Schema: "spampsm-serve-bench/v1",
		Issue:  *issue,
		Date:   time.Now().Format("2006-01-02"),
		Go:     runtime.Version(),
		Server: fmt.Sprintf("workers=%d self-serve=%v", *workers, *selfServe),
		Workload: fmt.Sprintf("%d requests x %d clients, rate=%g/s, datasets=%s, tenants=%d",
			c.requests, c.concurrency, c.rate, *datasets, c.tenants),
	}

	c.probeHealth()
	for _, name := range strings.Split(*scenarios, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		sc, err := c.runScenario(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spamload:", err)
			return 1
		}
		doc.Scenarios = append(doc.Scenarios, *sc)
		c.probeHealth()
		shipped := ""
		if sc.ShippedBytes > 0 {
			shipped = fmt.Sprintf("  %.1f KB shipped", float64(sc.ShippedBytes)/1024)
		}
		fmt.Printf("%-8s %3d req  %3d ok (%d degraded)  %2d shed  %2d failed  %2d cancelled  %6.2f req/s  p50 %.0fms  p95 %.0fms  p99 %.0fms%s\n",
			name, sc.Requests, sc.Succeeded, sc.Degraded, sc.Shed, sc.Failed, sc.Cancelled,
			sc.Throughput, sc.LatencyMs.P50, sc.LatencyMs.P95, sc.LatencyMs.P99, shipped)
		if name == "cluster" {
			c.printClusterStats()
		}
	}
	fmt.Printf("health checks: %d/%d passed\n", c.healthProbes-c.healthFailed, c.healthProbes)

	if *out != "" {
		b, err := doc.Render()
		if err != nil {
			fmt.Fprintln(os.Stderr, "spamload:", err)
			return 1
		}
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "spamload:", err)
			return 1
		}
		fmt.Printf("wrote %s (%d scenarios)\n", *out, len(doc.Scenarios))
	}

	if *check {
		if c.healthFailed > 0 {
			fmt.Fprintf(os.Stderr, "spamload: %d health checks failed\n", c.healthFailed)
			return 1
		}
		// The full Check gate demands clean AND faulted coverage, which
		// only a run that requested the faults scenario can satisfy;
		// partial runs (e.g. -scenarios updates) gate on per-scenario
		// consistency alone.
		validate := doc.CheckScenarios
		if strings.Contains(*scenarios, "faults") {
			validate = doc.Check
		}
		if err := validate(); err != nil {
			fmt.Fprintln(os.Stderr, "spamload:", err)
			return 1
		}
		fmt.Println("check: ok")
	}
	return 0
}

func (c *cli) probeHealth() {
	c.healthProbes++
	resp, err := c.client.Get(c.url + "/healthz")
	if err != nil {
		c.healthFailed++
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.healthFailed++
	}
}

// body builds the i-th request of a scenario.
func (c *cli) body(scenario string, i int) string {
	ds := c.datasets[i%len(c.datasets)]
	req := map[string]any{"scene": ds}
	if scenario == "faults" {
		req["degraded"] = true
		req["maxRetries"] = c.maxRetries
		req["faults"] = map[string]any{
			// Per-request seeds: each request draws its own deterministic
			// chaos, like distinct tenants would.
			"seed":              c.faultSeed + int64(i),
			"buildFailRate":     c.buildFail,
			"panicRate":         c.panicRate,
			"permanentFraction": c.permanent,
		}
	}
	b, _ := json.Marshal(req)
	return string(b)
}

func (c *cli) runScenario(name string) (*bench.ServeScenario, error) {
	switch name {
	case "clean", "faults", "updates", "cluster":
	default:
		return nil, fmt.Errorf("unknown scenario %q (want clean, faults, updates or cluster)", name)
	}
	sc := &bench.ServeScenario{Name: name}
	if name == "faults" {
		sc.Faults = fmt.Sprintf("seed=%d buildFail=%g panic=%g permanent=%g retries=%d",
			c.faultSeed, c.buildFail, c.panicRate, c.permanent, c.maxRetries)
	}

	shippedBefore := c.statsShipped()

	// Arrivals: closed-loop when rate is 0, else spaced at 1/rate.
	arrivals := make(chan int, c.requests)
	go func() {
		for i := 0; i < c.requests; i++ {
			if c.rate > 0 && i > 0 {
				time.Sleep(time.Duration(float64(time.Second) / c.rate))
			}
			arrivals <- i
		}
		close(arrivals)
	}()

	var mu sync.Mutex
	var latencies []float64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < c.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range arrivals {
				outcome, ms := c.fire(name, i)
				mu.Lock()
				sc.Requests++
				switch outcome {
				case "ok":
					sc.Succeeded++
					latencies = append(latencies, ms)
				case "degraded":
					sc.Succeeded++
					sc.Degraded++
					latencies = append(latencies, ms)
				case "shed":
					sc.Shed++
				case "cancelled":
					sc.Cancelled++
				default:
					sc.Failed++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	sc.ElapsedSec = time.Since(start).Seconds()
	if sc.ElapsedSec > 0 {
		sc.Throughput = float64(sc.Succeeded) / sc.ElapsedSec
	}
	sc.LatencyMs = bench.NewServeLatency(latencies)
	if after := c.statsShipped(); shippedBefore >= 0 && after >= shippedBefore {
		sc.ShippedBytes = after - shippedBefore
	}
	return sc, nil
}

// printClusterStats dumps the server's cluster-coordinator accounting
// from /stats after the cluster scenario: the wire-locality summary
// plus one line per worker slot, mirroring spamrun's report so the two
// tools read the same way.
func (c *cli) printClusterStats() {
	resp, err := c.client.Get(c.url + "/stats")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var st struct {
		Cluster *cluster.Stats `json:"cluster"`
	}
	if json.NewDecoder(resp.Body).Decode(&st) != nil || st.Cluster == nil {
		return
	}
	cs := st.Cluster
	fmt.Printf("cluster: %d procs (wire v%d), %d tasks shipped, %d chunks (%d hits), %d/%d continuations worker-side, %d steals\n",
		cs.Workers, cs.WireVersion, cs.TasksShipped, cs.ChunksShipped, cs.ChunkHits,
		cs.Continuations, cs.ContinuationTasks, cs.Steals)
	for _, ws := range cs.PerWorker {
		fmt.Printf("cluster worker %d: %d tasks, %.1f KB shipped, %d steals, %d continuations, %d resident chunks (%.1f KB)\n",
			ws.Slot, ws.Tasks, float64(ws.ShippedBytes)/1024,
			ws.Steals, ws.Continuations, ws.ResidentChunks, float64(ws.ResidentBytes)/1024)
	}
}

// statsShipped reads the server's cumulative shipped-wire-bytes
// counter from /stats (-1 when unreadable); scenario deltas of it are
// the per-scenario cluster wire volume.
func (c *cli) statsShipped() int64 {
	resp, err := c.client.Get(c.url + "/stats")
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	var st struct {
		ShippedBytes int64 `json:"shippedBytes"`
	}
	if json.NewDecoder(resp.Body).Decode(&st) != nil {
		return -1
	}
	return st.ShippedBytes
}

// fire issues one request and classifies its outcome.
func (c *cli) fire(scenario string, i int) (outcome string, ms float64) {
	ctx := context.Background()
	doomed := c.cancelEvery > 0 && i%c.cancelEvery == c.cancelEvery-1
	if doomed {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		time.AfterFunc(25*time.Millisecond, cancel)
		defer cancel()
	}
	if scenario == "updates" {
		return c.fireSession(ctx, i, doomed)
	}
	req, err := http.NewRequestWithContext(ctx, "POST", c.url+"/interpret",
		strings.NewReader(c.body(scenario, i)))
	if err != nil {
		return "failed", 0
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", fmt.Sprintf("t%d", i%max(1, c.tenants)))
	start := time.Now()
	resp, err := c.client.Do(req)
	ms = float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		if doomed {
			return "cancelled", ms
		}
		return "failed", ms
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	io.Copy(&buf, resp.Body)
	switch {
	case resp.StatusCode == http.StatusOK:
		var body struct {
			Completeness struct {
				Complete bool `json:"complete"`
			} `json:"completeness"`
		}
		if json.Unmarshal(buf.Bytes(), &body) == nil && !body.Completeness.Complete {
			return "degraded", ms
		}
		return "ok", ms
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		return "shed", ms
	default:
		return "failed", ms
	}
}

// fireSession runs one updates-scenario cycle: open a session on the
// i-th dataset, fold in sessionUpdates churn deltas, close it. The
// latency sample is the whole cycle; the outcome is the worst
// individual response (any shed response sheds the cycle, any other
// failure fails it).
func (c *cli) fireSession(ctx context.Context, i int, doomed bool) (outcome string, ms float64) {
	ds := c.datasets[i%len(c.datasets)]
	tenant := fmt.Sprintf("t%d", i%max(1, c.tenants))
	start := time.Now()
	done := func(o string) (string, float64) {
		return o, float64(time.Since(start)) / float64(time.Millisecond)
	}
	post := func(path, body string) (int, []byte, error) {
		req, err := http.NewRequestWithContext(ctx, "POST", c.url+path, strings.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", tenant)
		resp, err := c.client.Do(req)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		io.Copy(&buf, resp.Body)
		return resp.StatusCode, buf.Bytes(), nil
	}
	classify := func(status int, err error) string {
		switch {
		case err != nil && doomed:
			return "cancelled"
		case err != nil:
			return "failed"
		case status == http.StatusOK:
			return "ok"
		case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
			return "shed"
		default:
			return "failed"
		}
	}

	status, body, err := post("/session", fmt.Sprintf(`{"scene":%q}`, ds))
	if o := classify(status, err); o != "ok" {
		return done(o)
	}
	var opened struct {
		Session string `json:"session"`
	}
	if json.Unmarshal(body, &opened) != nil || opened.Session == "" {
		return done("failed")
	}
	// Best-effort close on every exit path: an evicted or failed
	// session answers 404, which is fine — the cycle's outcome is
	// decided by the open and update responses.
	defer func() {
		req, err := http.NewRequest("DELETE", c.url+"/session/"+opened.Session, nil)
		if err != nil {
			return
		}
		if resp, err := c.client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	for u := 0; u < c.sessionUpdates; u++ {
		// Per-cycle, per-update seeds: distinct deterministic churn, as
		// distinct imagery refreshes would be.
		body := fmt.Sprintf(`{"session":%q,"churn":{"seed":%d,"fraction":%g}}`,
			opened.Session, c.faultSeed+int64(i*97+u), c.churn)
		status, respBody, err := post("/update", body)
		if o := classify(status, err); o != "ok" {
			// 404 mid-cycle means the LRU cap evicted this session under
			// concurrent load — shed, not a failure.
			if err == nil && status == http.StatusNotFound {
				return done("shed")
			}
			return done(o)
		}
		var upd struct {
			Report struct {
				Tasks int `json:"tasks"`
			} `json:"report"`
		}
		if json.Unmarshal(respBody, &upd) != nil || upd.Report.Tasks == 0 {
			return done("failed")
		}
	}
	return done("ok")
}
