// Command spamserve runs the interpretation service: a persistent
// multi-tenant HTTP server executing SPAM scene interpretations over
// one shared task-process pool, with per-request isolation, admission
// control and graceful drain (see docs/SERVING.md).
//
// Usage:
//
//	spamserve [-addr :8641] [-workers N] [-max-concurrent N]
//	          [-max-queued N] [-per-tenant N] [-deadline D]
//	          [-cache-regions N] [-quarantine-budget N] [-allow-faults]
//	          [-sched fifo|largest|postorder] [-mem-budget BYTES]
//	          [-max-sessions N] [-cluster-workers N]
//
// -cluster-workers N backs named-scene /interpret requests with N
// worker processes over the cluster runtime (-workers becomes each
// process's local pool size; see docs/CLUSTER.md); inline scenes and
// sessions stay on the in-process shared pool. /stats then reports
// total and per-request shipped wire bytes.
//
// Endpoints:
//
//	POST   /interpret     one interpretation (named or inline scene)
//	POST   /session       open an incremental session (interpret + keep warm)
//	POST   /update        apply a scene delta to a session
//	DELETE /session/{id}  close a session
//	GET    /healthz       liveness + shared-pool quarantine budget
//	GET    /stats         counters, cache/eviction/session stats, recent requests
//
// SIGINT/SIGTERM starts a graceful drain: new requests are refused
// with 503, in-flight interpretations run to completion, then the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spampsm/internal/cluster"
	"spampsm/internal/core"
	"spampsm/internal/serve"
	"spampsm/internal/tlp"
)

func main() {
	cluster.MaybeWorker()
	os.Exit(realMain())
}

func realMain() int {
	addr := flag.String("addr", ":8641", "listen address")
	workers := flag.Int("workers", 4, "shared pool task processes")
	maxConcurrent := flag.Int("max-concurrent", 0, "in-flight interpretation limit (0 = 2x workers)")
	maxQueued := flag.Int("max-queued", 0, "admission wait-queue bound before shedding (0 = 4x max-concurrent)")
	perTenant := flag.Int("per-tenant", 0, "per-tenant in-flight cap (0 = unlimited)")
	deadline := flag.Duration("deadline", time.Minute, "default per-request deadline")
	cacheRegions := flag.Int("cache-regions", 4096, "inline-scene cache size cap (total regions)")
	quarantine := flag.Int("quarantine-budget", 32, "quarantined tasks from live uninjected runs tolerated before /healthz degrades (0 = unlimited)")
	allowFaults := flag.Bool("allow-faults", false, "accept per-request fault-injection plans (chaos testing)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "maximum graceful-drain wait on shutdown")
	sched := flag.String("sched", "fifo", "task scheduling policy: fifo, largest or postorder")
	memBudget := flag.Float64("mem-budget", 0, "aggregate in-flight task footprint budget in simulated bytes (0 = unbounded)")
	maxSessions := flag.Int("max-sessions", 0, "live incremental-session bound, LRU-evicted (0 = default 8)")
	clusterWorkers := flag.Int("cluster-workers", 0, "execute named-scene requests across N worker processes (0 = in-process pool)")
	flag.Parse()

	policy, err := tlp.ParseQueuePolicy(*sched)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spamserve:", err)
		return 2
	}

	var clusterBackend serve.ClusterBackend
	if *clusterWorkers > 0 {
		co, err := cluster.Start(cluster.Config{
			Workers:      *clusterWorkers,
			LocalWorkers: *workers,
			MemBudget:    *memBudget,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "spamserve:", err)
			return 1
		}
		defer co.Close()
		for _, name := range []string{"SF", "DC", "MOFF"} {
			spec, err := core.ClusterSpec(name)
			if err == nil {
				err = co.RegisterDataset(spec)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "spamserve:", err)
				return 1
			}
		}
		clusterBackend = co
		fmt.Fprintf(os.Stderr, "spamserve: cluster backend up: %d worker processes x %d local workers\n",
			*clusterWorkers, *workers)
	}

	srv := serve.New(serve.Config{
		Workers:           *workers,
		MaxConcurrent:     *maxConcurrent,
		MaxQueued:         *maxQueued,
		PerTenantMax:      *perTenant,
		DefaultDeadline:   *deadline,
		SceneCacheRegions: *cacheRegions,
		QuarantineBudget:  *quarantine,
		AllowFaults:       *allowFaults,
		Sched:             policy,
		MemBudget:         *memBudget,
		MaxSessions:       *maxSessions,
		Cluster:           clusterBackend,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "spamserve: listening on %s (%d workers)\n", *addr, *workers)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "spamserve:", err)
		return 1
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "spamserve: %v: draining\n", sig)
	}

	// Graceful drain: stop admitting (both at the listener and at the
	// admission gate), let in-flight interpretations finish, then shut
	// the shared pool down.
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "spamserve: shutdown:", err)
	}
	srv.Close()
	fmt.Fprintln(os.Stderr, "spamserve: drained")
	return 0
}
