// Command scenegen generates the synthetic aerial-scene datasets and
// inspects them: region statistics to stdout and, optionally, an SVG
// rendering of the segmentation.
//
// Usage:
//
//	scenegen [-dataset SF|DC|MOFF|suburban] [-scale F] [-seed N] [-svg FILE]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"spampsm/internal/scene"
)

func main() {
	dataset := flag.String("dataset", "DC", "dataset: SF, DC, MOFF or suburban")
	scale := flag.Float64("scale", 1, "scene scale factor")
	seed := flag.Uint64("seed", 0, "override the dataset's seed (0 = keep)")
	svgOut := flag.String("svg", "", "write the segmentation to this SVG file")
	flag.Parse()

	var sc *scene.Scene
	if *dataset == "suburban" {
		p := scene.SuburbanParams{Name: "suburban", Seed: 1990,
			Blocks: int(8 * *scale), HousesPerBlock: 6, Verts: 12}
		if *seed != 0 {
			p.Seed = *seed
		}
		sc = scene.GenerateSuburban(p)
	} else {
		params := map[string]scene.Params{"SF": scene.SF, "DC": scene.DC, "MOFF": scene.MOFF}
		p, ok := params[*dataset]
		if !ok {
			fmt.Fprintf(os.Stderr, "scenegen: unknown dataset %q\n", *dataset)
			os.Exit(2)
		}
		if *scale != 1 {
			p = p.Scale(*scale)
		}
		if *seed != 0 {
			p.Seed = *seed
		}
		sc = scene.Generate(p)
	}

	fmt.Println(sc.Stats())
	// Per-class geometry statistics.
	kinds := map[scene.Kind][]*scene.Region{}
	for _, r := range sc.Regions {
		kinds[r.TrueKind] = append(kinds[r.TrueKind], r)
	}
	var names []scene.Kind
	for k := range kinds {
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	fmt.Printf("%-20s %5s %12s %8s %8s %8s\n", "class", "n", "mean area", "elong", "intens", "verts")
	for _, k := range names {
		rs := kinds[k]
		var area, elong, intens, verts float64
		for _, r := range rs {
			area += r.Poly.Area()
			elong += r.Poly.Elongation()
			intens += r.Intensity
			verts += float64(len(r.Poly))
		}
		n := float64(len(rs))
		fmt.Printf("%-20s %5d %12.0f %8.1f %8.0f %8.1f\n", k, len(rs), area/n, elong/n, intens/n, verts/n)
	}

	if *svgOut != "" {
		f, err := os.Create(*svgOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scenegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := sc.WriteSVG(f, nil); err != nil {
			fmt.Fprintln(os.Stderr, "scenegen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *svgOut)
	}
}
