// Command spambench regenerates the paper's tables and figures.
//
// Usage:
//
//	spambench [-experiment NAME] [-full-scale F] [-subset-scale F]
//	          [-task-procs N] [-match-procs N]
//	          [-sched fifo|largest|postorder] [-json FILE]
//	          [-fault-seed N] [-crash-rate P]
//	          [-cpuprofile FILE] [-memprofile FILE]
//
// NAME is one of: tables123, table4, tables567, table8, fig3, fig6,
// fig7, table9, fig8, fig9, an extension experiment (ext-levels,
// ext-sched, ext-sync, ext-queues, ext-msgpass, ext-suburban,
// ext-scale, ext-faults, ext-memsched, ext-incremental, ext-cluster),
// or "all" (the default).
//
// -sched picks the task scheduling policy for the real
// interpretations the harness runs (results are byte-identical across
// policies). -json writes the experiment's machine-readable document
// to FILE: with -experiment ext-incremental the incremental
// re-interpretation churn ladder (the BENCH_8.json document), with
// ext-cluster the multi-process scale-out report (BENCH_10.json),
// otherwise the memory-aware scheduling experiment's
// makespan-vs-memory-budget curves (the BENCH_7.json document).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"spampsm/internal/bench"
	"spampsm/internal/cluster"
	"spampsm/internal/prof"
	"spampsm/internal/tlp"
)

func main() {
	cluster.MaybeWorker()
	os.Exit(realMain())
}

func realMain() int {
	experiment := flag.String("experiment", "all",
		"experiment to run: all, "+strings.Join(append(bench.Names(), bench.ExtNames()...), ", "))
	fullScale := flag.Float64("full-scale", 3,
		"scene scale factor for the full-dataset runs of Tables 1-3")
	subsetScale := flag.Float64("subset-scale", 1,
		"scale factor for the representative subsets (1 = calibrated paper scale)")
	taskProcs := flag.Int("task-procs", 14, "maximum task processes (paper: 14)")
	matchProcs := flag.Int("match-procs", 13, "maximum dedicated match processes (paper: 13)")
	csvDir := flag.String("csv", "", "also write the figure experiments' data series as CSV files into this directory")
	sched := flag.String("sched", "fifo", "task scheduling policy for real interpretations: fifo, largest or postorder")
	jsonOut := flag.String("json", "", "write the memory-aware scheduling experiment's curves to this JSON file")
	faultSeed := flag.Int64("fault-seed", 1990, "seed for the ext-faults chaos experiment")
	crashRate := flag.Float64("crash-rate", 0.1, "per-processor death rate for ext-faults' plan-driven row")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	policy, err := tlp.ParseQueuePolicy(*sched)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spambench:", err)
		return 2
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spambench:", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "spambench:", err)
		}
	}()

	opt := bench.Options{
		FullScale:     *fullScale,
		SubsetScale:   *subsetScale,
		MaxTaskProcs:  *taskProcs,
		MaxMatchProcs: *matchProcs,
		FaultSeed:     *faultSeed,
		CrashRate:     *crashRate,
		Sched:         policy,
	}
	suite := bench.NewSuite(opt)
	var out string
	if *experiment == "all" {
		out, err = suite.RunAll()
	} else {
		out, err = suite.Run(*experiment)
	}
	fmt.Print(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spambench:", err)
		return 1
	}
	if *jsonOut != "" {
		// Which document -json emits follows the experiment:
		// ext-incremental writes its churn-ladder report (BENCH_8.json),
		// ext-cluster the multi-process scale-out report (BENCH_10.json);
		// everything else writes the memory-aware scheduling curves
		// (BENCH_7.json), the historical default.
		var rep interface{ Check() error }
		switch *experiment {
		case "ext-incremental":
			rep, err = suite.Incremental()
		case "ext-cluster":
			rep, err = suite.Cluster()
		default:
			rep, err = suite.Memsched()
		}
		if err == nil {
			err = rep.Check()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "spambench:", err)
			return 1
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "spambench:", err)
			return 1
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "spambench:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
	if *csvDir != "" {
		names := []string{*experiment}
		if *experiment == "all" {
			names = bench.Names()
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "spambench:", err)
			return 1
		}
		for _, n := range names {
			files, err := suite.CSVFor(n)
			if err != nil {
				fmt.Fprintln(os.Stderr, "spambench:", err)
				return 1
			}
			for fname, content := range files {
				path := filepath.Join(*csvDir, fname)
				if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "spambench:", err)
					return 1
				}
				fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			}
		}
	}
	return 0
}
