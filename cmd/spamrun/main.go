// Command spamrun performs a full four-phase SPAM interpretation of a
// dataset and prints per-phase statistics in the style of the paper's
// Tables 1-3.
//
// Usage:
//
//	spamrun [-dataset SF|DC|MOFF|suburban] [-workers N] [-level 1..4]
//	        [-reentry] [-scale F] [-lisp]
package main

import (
	"flag"
	"fmt"
	"os"

	"spampsm/internal/machine"
	"spampsm/internal/scene"
	"spampsm/internal/spam"
	"spampsm/internal/stats"
)

func main() {
	dataset := flag.String("dataset", "DC", "dataset: SF, DC, MOFF or suburban")
	workers := flag.Int("workers", 1, "task processes (real goroutine pool)")
	level := flag.Int("level", 3, "LCC decomposition level (1-4)")
	reentry := flag.Bool("reentry", false, "enable FA->LCC re-entry")
	scale := flag.Float64("scale", 1, "scene scale factor")
	lisp := flag.Bool("lisp", false, "report times at the original Lisp system's speed")
	svgOut := flag.String("svg", "", "write the scene segmentation (with best hypotheses) to this SVG file")
	flag.Parse()

	var d *spam.Dataset
	var err error
	if *dataset == "suburban" {
		d, err = spam.NewSuburbanDataset(scene.SuburbanParams{
			Name: "suburban", Seed: 1990, Blocks: int(8 * *scale), HousesPerBlock: 6, Verts: 12,
		})
	} else {
		params := map[string]scene.Params{"SF": scene.SF, "DC": scene.DC, "MOFF": scene.MOFF}
		p, ok := params[*dataset]
		if !ok {
			fmt.Fprintf(os.Stderr, "spamrun: unknown dataset %q\n", *dataset)
			os.Exit(2)
		}
		if *scale != 1 {
			p = p.Scale(*scale)
		}
		d, err = spam.NewDataset(p)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "spamrun:", err)
		os.Exit(1)
	}

	fmt.Println(d.Scene.Stats())
	fmt.Printf("production memory: %d productions\n\n", d.Progs.NumProductions())

	in, err := d.Interpret(spam.InterpretOptions{
		Workers: *workers,
		Level:   spam.Level(*level),
		ReEntry: *reentry,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "spamrun:", err)
		os.Exit(1)
	}

	factor := 1.0
	unit := "sec (simulated, C/ParaOPS5 baseline)"
	if *lisp {
		factor = spam.LispFactor
		unit = "sec (simulated, original Lisp system)"
	}
	tb := stats.Table{
		Title: fmt.Sprintf("Interpretation of %s — times in %s", d.Name, unit),
		Headers: []string{"Phase", "Tasks", "Firings", "RHS actions",
			"CPU time", "Prods/sec", "Match %", "Hypotheses"},
	}
	for _, ph := range in.Phases {
		sec := machine.InstrToSec(ph.Instr) * factor
		pps := 0.0
		if sec > 0 {
			pps = float64(ph.Firings) / sec
		}
		tb.AddRow(ph.Phase, ph.Tasks, ph.Firings, ph.RHSActions,
			sec, pps, 100*ph.MatchFraction(), ph.Hypotheses)
	}
	fmt.Println(tb.String())
	fmt.Printf("fragments=%d consistent-pairs=%d functional-areas=%d predictions=%d\n",
		len(in.Fragments), len(in.Pairs), len(in.FAs), len(in.Predictions))
	if in.ModelFound {
		fmt.Printf("scene model: score=%d functional-areas=%d\n", in.Model.Score, in.Model.NFAs)
	} else {
		fmt.Println("no scene model produced")
	}

	if *svgOut != "" {
		labels := map[int]string{}
		best := map[int]int{}
		for _, f := range in.Fragments {
			if f.Conf > best[f.RegionID] {
				best[f.RegionID] = f.Conf
				labels[f.RegionID] = string(f.Type)
			}
		}
		out, err := os.Create(*svgOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spamrun:", err)
			os.Exit(1)
		}
		defer out.Close()
		if err := d.Scene.WriteSVG(out, labels); err != nil {
			fmt.Fprintln(os.Stderr, "spamrun:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *svgOut)
	}
}
