// Command spamrun performs a full four-phase SPAM interpretation of a
// dataset and prints per-phase statistics in the style of the paper's
// Tables 1-3.
//
// Usage:
//
//	spamrun [-dataset SF|DC|MOFF|suburban] [-workers N] [-level 1..4]
//	        [-reentry] [-scale F] [-lisp] [-naive] [-no-seed-cache]
//	        [-naive-geom] [-prebuild]
//	        [-update N] [-churn F] [-churn-seed N]
//	        [-sched fifo|largest|postorder] [-mem-budget BYTES]
//	        [-fault-seed N] [-crash-rate P] [-task-timeout D] [-max-retries K]
//	        [-cluster-workers N] [-cluster-addr HOST:PORT] [-cluster-check]
//	        [-cpuprofile FILE] [-memprofile FILE]
//
// -cluster-workers N executes each phase's task queue across N worker
// processes instead of an in-process pool: the coordinator ships task
// specs (seed working memories and run knobs) over unix sockets — or
// TCP with -cluster-addr — and -workers becomes each process's local
// pool size (see docs/CLUSTER.md). -cluster-check additionally runs
// the single-process interpretation and verifies the cluster produced
// byte-identical outputs.
//
// -sched orders each phase's task queue (per-task results are
// byte-identical across policies) and -mem-budget throttles how much
// modeled task footprint may run concurrently (simulated bytes, see
// docs/PERFORMANCE.md "Task scheduling and memory").
//
// The fault flags run the interpretation under deterministic chaos
// (see docs/ROBUSTNESS.md): a fixed -fault-seed reproduces the exact
// same failures and the exact same recovery report. If any task still
// fails after its retries, spamrun prints a per-task error summary and
// exits non-zero.
//
// -update N interprets through a long-lived session instead of a
// one-shot run: after the initial interpretation it applies N
// generated churn deltas (-churn fraction of the regions each,
// deterministic from -churn-seed) and re-interprets incrementally —
// cached tasks reused, changed tasks re-run on their retained warm
// Rete engines — printing one update-report row per delta (see
// docs/PERFORMANCE.md "Incremental re-interpretation"). The phase
// table then describes the final updated interpretation.
//
// -naive selects the unindexed reference matcher (identical results
// and simulated costs, slower wall-clock; see docs/PERFORMANCE.md),
// -no-seed-cache loads each task's seed working memory per-WME without
// the template route memo (same results, slower task loading),
// -naive-geom evaluates every spatial predicate with the exact Hypot
// kernels, no predicate memo, no derived-geometry cache and linear
// partner scans (same results and simulated costs, slower wall-clock),
// -prebuild constructs each phase's task engines in parallel before
// the pool runs them (identical results, less wall-clock), and the
// profile flags write standard pprof files.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"spampsm/internal/cluster"
	"spampsm/internal/faults"
	"spampsm/internal/geom"
	"spampsm/internal/machine"
	"spampsm/internal/prof"
	"spampsm/internal/scene"
	"spampsm/internal/spam"
	"spampsm/internal/stats"
	"spampsm/internal/tlp"
)

func main() {
	cluster.MaybeWorker()
	os.Exit(realMain())
}

func realMain() int {
	dataset := flag.String("dataset", "DC", "dataset: SF, DC, MOFF or suburban")
	workers := flag.Int("workers", 1, "task processes (real goroutine pool)")
	level := flag.Int("level", 3, "LCC decomposition level (1-4)")
	reentry := flag.Bool("reentry", false, "enable FA->LCC re-entry")
	scale := flag.Float64("scale", 1, "scene scale factor")
	lisp := flag.Bool("lisp", false, "report times at the original Lisp system's speed")
	naive := flag.Bool("naive", false, "use the unindexed reference matcher (same results, slower wall-clock)")
	noSeedCache := flag.Bool("no-seed-cache", false, "load seed working memories per-WME without the route memo (same results, slower wall-clock)")
	naiveGeom := flag.Bool("naive-geom", false, "exact geometry kernels without the predicate memo, derived cache or partner grid (same results, slower wall-clock)")
	prebuild := flag.Bool("prebuild", false, "build each phase's task engines in parallel before running them")
	updates := flag.Int("update", 0, "apply N incremental churn updates through an interpretation session after the initial run")
	churn := flag.Float64("churn", 0.05, "churn fraction per -update delta (regions touched / scene regions)")
	churnSeed := flag.Uint64("churn-seed", 1990, "deterministic seed for the -update churn deltas")
	sched := flag.String("sched", "fifo", "task scheduling policy: fifo, largest or postorder")
	memBudget := flag.Float64("mem-budget", 0, "aggregate in-flight task footprint budget in simulated bytes (0 = unbounded)")
	svgOut := flag.String("svg", "", "write the scene segmentation (with best hypotheses) to this SVG file")
	faultSeed := flag.Int64("fault-seed", 0, "seed for deterministic fault injection (with -crash-rate)")
	crashRate := flag.Float64("crash-rate", 0, "probability a task's worker crashes mid-task (0 disables injection)")
	taskTimeout := flag.Duration("task-timeout", 0, "per-attempt wall-clock deadline (0 = none)")
	maxRetries := flag.Int("max-retries", 2, "failed-task re-executions before quarantine")
	clusterWorkers := flag.Int("cluster-workers", 0, "run phases across N worker processes instead of an in-process pool (0 disables)")
	clusterAddr := flag.String("cluster-addr", "", "TCP listen address for the cluster coordinator (default: a private unix socket)")
	clusterCheck := flag.Bool("cluster-check", false, "with -cluster-workers, also interpret single-process and verify identical outputs")
	clusterWireV1 := flag.Bool("cluster-wire-v1", false, "speak wire protocol v1 to the workers (no chunk shipping, no worker-side continuations)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	policy, err := tlp.ParseQueuePolicy(*sched)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spamrun:", err)
		return 2
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spamrun:", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "spamrun:", err)
		}
	}()

	spam.UseNaiveMatch(*naive)
	spam.UseUnbatchedSeed(*noSeedCache)
	geom.UseExactOnly(*naiveGeom)
	spam.UseUncachedGeo(*naiveGeom)

	var d *spam.Dataset
	var dspec cluster.DatasetSpec
	if *dataset == "suburban" {
		sp := scene.SuburbanParams{
			Name: "suburban", Seed: 1990, Blocks: int(8 * *scale), HousesPerBlock: 6, Verts: 12,
		}
		dspec = cluster.SuburbanSpec(sp)
		d, err = spam.NewSuburbanDataset(sp)
	} else {
		params := map[string]scene.Params{"SF": scene.SF, "DC": scene.DC, "MOFF": scene.MOFF}
		p, ok := params[*dataset]
		if !ok {
			fmt.Fprintf(os.Stderr, "spamrun: unknown dataset %q\n", *dataset)
			return 2
		}
		if *scale != 1 {
			p = p.Scale(*scale)
		}
		dspec = cluster.AirportSpec(p)
		d, err = spam.NewDataset(p)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "spamrun:", err)
		return 1
	}

	fmt.Println(d.Scene.Stats())
	fmt.Printf("production memory: %d productions\n\n", d.Progs.NumProductions())

	var plan *faults.Plan
	if *crashRate > 0 {
		// PermanentFraction stays 0: injected crashes are transient, so a
		// retried task recovers and the run completes despite the chaos.
		plan = faults.New(faults.Config{Seed: *faultSeed, CrashRate: *crashRate})
	}
	iopt := spam.InterpretOptions{
		Workers:      *workers,
		Level:        spam.Level(*level),
		ReEntry:      *reentry,
		Prebuild:     *prebuild,
		Sched:        policy,
		MemBudget:    *memBudget,
		Faults:       plan,
		MaxRetries:   *maxRetries,
		TaskTimeout:  *taskTimeout,
		RetryBackoff: time.Millisecond,
	}
	if *clusterWorkers > 0 {
		if *updates > 0 {
			fmt.Fprintln(os.Stderr, "spamrun: -update sessions keep warm engines in-process; combine with -workers, not -cluster-workers")
			return 2
		}
		ccfg := cluster.Config{
			Workers:      *clusterWorkers,
			LocalWorkers: *workers,
			MemBudget:    *memBudget,
			Prebuild:     *prebuild,
			Toggles: cluster.Toggles{
				NaiveMatch:    *naive,
				UnbatchedSeed: *noSeedCache,
				UncachedGeo:   *naiveGeom,
				ExactGeom:     *naiveGeom,
			},
		}
		if *clusterAddr != "" {
			ccfg.Network, ccfg.Addr = "tcp", *clusterAddr
		}
		if *clusterWireV1 {
			ccfg.WireVersion = 1
		}
		co, err := cluster.Start(ccfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spamrun:", err)
			return 1
		}
		defer co.Close()
		if err := co.RegisterDataset(dspec); err != nil {
			fmt.Fprintln(os.Stderr, "spamrun:", err)
			return 1
		}
		iopt.Runner = cluster.NewRunner(co, iopt)
		defer func() {
			st := co.Stats()
			fmt.Printf("cluster: %d procs × %d local workers (wire v%d), %d tasks shipped (%s on the wire, %s of it results), %d steals, %d requeued, %d worker deaths\n",
				st.Workers, *workers, st.WireVersion, st.TasksShipped, stats.FormatBytes(float64(st.ShippedBytes)),
				stats.FormatBytes(float64(st.ResultBytes)), st.Steals, st.Requeued, st.WorkerDeaths)
			if st.WireVersion >= 2 {
				fmt.Printf("cluster wire locality: %d chunks shipped (%s), %d resident hits (%s saved), %d evictions, %d/%d continuations worker-side, v1 task frames would have been %s\n",
					st.ChunksShipped, stats.FormatBytes(float64(st.ChunkBytes)),
					st.ChunkHits, stats.FormatBytes(float64(st.ChunkSavedBytes)),
					st.Evictions, st.Continuations, st.ContinuationTasks,
					stats.FormatBytes(float64(st.V1TaskBytes)))
			}
			for _, ws := range st.PerWorker {
				fmt.Printf("cluster worker %d: %d tasks, %s shipped, %d steals, %d continuations, %d resident chunks (%s)\n",
					ws.Slot, ws.Tasks, stats.FormatBytes(float64(ws.ShippedBytes)),
					ws.Steals, ws.Continuations, ws.ResidentChunks, stats.FormatBytes(float64(ws.ResidentBytes)))
			}
		}()
	}
	var in *spam.Interpretation
	if *updates > 0 {
		// Session path: the initial interpretation plus -update churn
		// deltas folded in incrementally. The phase table below then
		// describes the final updated interpretation.
		sess := spam.NewSession(d, iopt)
		utb := stats.Table{
			Title: fmt.Sprintf("Incremental updates of %s — %d deltas at %.0f%% churn (seed %d)",
				d.Name, *updates, 100**churn, *churnSeed),
			Headers: []string{"Update", "Δregions", "Tasks", "Reused", "Rerun", "Fresh",
				"Dropped", "Retracted WMEs", "Charged (sec)", "Wall (ms)"},
		}
		var rep *spam.UpdateReport
		in, rep, err = sess.Interpret(context.Background())
		for i := 1; err == nil && i <= *updates; i++ {
			utb.AddRow(rep.Update, rep.DeltaSize, rep.Tasks, rep.Reused, rep.Rerun, rep.Fresh,
				rep.Dropped, rep.RetractedWMEs, machine.InstrToSec(rep.UpdateInstr),
				float64(rep.Wall)/float64(time.Millisecond))
			delta := sess.Scene().Churn(scene.DefaultChurn(*churnSeed+uint64(i-1), *churn))
			in, rep, err = sess.Update(context.Background(), delta)
		}
		if err == nil {
			utb.AddRow(rep.Update, rep.DeltaSize, rep.Tasks, rep.Reused, rep.Rerun, rep.Fresh,
				rep.Dropped, rep.RetractedWMEs, machine.InstrToSec(rep.UpdateInstr),
				float64(rep.Wall)/float64(time.Millisecond))
			fmt.Println(utb.String())
		}
	} else {
		in, err = d.Interpret(iopt)
	}
	if err != nil {
		// The error aggregates every failed task; the reports break the
		// failures down attempt by attempt.
		fmt.Fprintln(os.Stderr, "spamrun:", err)
		if in != nil {
			printReports(in)
		}
		return 1
	}
	printReports(in)

	if *clusterWorkers > 0 && *clusterCheck {
		localOpt := iopt
		localOpt.Runner = nil
		lin, lerr := d.Interpret(localOpt)
		if lerr != nil {
			fmt.Fprintln(os.Stderr, "spamrun: cluster check reference run:", lerr)
			return 1
		}
		if !spam.SameOutputs(lin, in) {
			fmt.Fprintln(os.Stderr, "spamrun: cluster check FAILED: cluster outputs differ from the single-process run")
			return 1
		}
		fmt.Println("cluster check: cluster outputs identical to single-process run")
	}

	factor := 1.0
	unit := "sec (simulated, C/ParaOPS5 baseline)"
	if *lisp {
		factor = spam.LispFactor
		unit = "sec (simulated, original Lisp system)"
	}
	tb := stats.Table{
		Title: fmt.Sprintf("Interpretation of %s — times in %s", d.Name, unit),
		Headers: []string{"Phase", "Tasks", "Firings", "RHS actions",
			"CPU time", "Prods/sec", "Match %", "Hypotheses"},
	}
	for _, ph := range in.Phases {
		sec := machine.InstrToSec(ph.Instr) * factor
		pps := 0.0
		if sec > 0 {
			pps = float64(ph.Firings) / sec
		}
		tb.AddRow(ph.Phase, ph.Tasks, ph.Firings, ph.RHSActions,
			sec, pps, 100*ph.MatchFraction(), ph.Hypotheses)
	}
	fmt.Println(tb.String())
	fmt.Printf("fragments=%d consistent-pairs=%d functional-areas=%d predictions=%d\n",
		len(in.Fragments), len(in.Pairs), len(in.FAs), len(in.Predictions))
	if in.ModelFound {
		fmt.Printf("scene model: score=%d functional-areas=%d\n", in.Model.Score, in.Model.NFAs)
	} else {
		fmt.Println("no scene model produced")
	}

	var peakTask, seedBytes float64
	for _, ph := range in.Phases {
		if ph.PeakTaskBytes > peakTask {
			peakTask = ph.PeakTaskBytes
		}
		seedBytes += ph.SeedBytes
	}
	fmt.Printf("memory (modeled): largest task peak %s, total seed WM %s\n",
		stats.FormatBytes(peakTask), stats.FormatBytes(seedBytes))
	if ms := in.MemSched; ms.Budget > 0 {
		fmt.Printf("mem-sched [%s]: budget %s, peak reserved %s, throttle waits %d\n",
			policy, stats.FormatBytes(ms.Budget), stats.FormatBytes(ms.PeakReserved), ms.ThrottleWaits)
	}

	if rec := in.Recovery(); rec.Retries > 0 {
		fmt.Printf("recovery: %d retries, %d recovered, %d quarantined, %.3f sec wasted\n",
			rec.Retries, rec.Recovered, rec.Quarantined, machine.InstrToSec(rec.WastedInstr))
	}

	if *svgOut != "" {
		labels := map[int]string{}
		best := map[int]int{}
		for _, f := range in.Fragments {
			if f.Conf > best[f.RegionID] {
				best[f.RegionID] = f.Conf
				labels[f.RegionID] = string(f.Type)
			}
		}
		out, err := os.Create(*svgOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spamrun:", err)
			return 1
		}
		defer out.Close()
		if err := d.Scene.WriteSVG(out, labels); err != nil {
			fmt.Fprintln(os.Stderr, "spamrun:", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *svgOut)
	}
	return 0
}

// printReports prints each phase's fault-handling report to stderr —
// only the phases that actually needed recovery.
func printReports(in *spam.Interpretation) {
	for _, ph := range in.Phases {
		if ph.Report != nil && !ph.Report.Clean() {
			fmt.Fprintf(os.Stderr, "%s %s", ph.Phase, ph.Report)
		}
	}
}
