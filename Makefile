GO ?= go

.PHONY: build test vet race bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x .

# check is the full verification gate: the tier-1 build and tests,
# static analysis, and the race detector over every package.
check: build test vet race
