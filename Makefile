GO ?= go

# BENCH_BASELINE is the perf-trajectory snapshot regressions are
# warned against: the latest committed spampsm-bench/v2 document
# (BENCH_6+ are serve/memsched/incremental/cluster documents with
# their own schemas, which benchjson refuses to compare). Both
# bench-json and CI's bench-radar route through this variable, so a
# future snapshot bump edits one line here instead of hardcoded paths.
BENCH_BASELINE ?= BENCH_5.json

# The cluster radar's pair: the wire-v1 snapshot the v2 wire was
# measured against, and the committed v2 document. benchjson diffs the
# machine-independent wire-accounting columns (ship share,
# continuation share, exactly-once recovery) between the two — no
# benchmarks are run, so this is cheap enough for CI.
CLUSTER_BASELINE ?= BENCH_9.json
CLUSTER_CURRENT ?= BENCH_10.json

.PHONY: build test vet race bench bench-quick bench-json bench-radar serve-smoke bench-serve bench-memsched bench-incremental incremental-smoke bench-cluster cluster-smoke oracle check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x .

# bench-quick is the CI smoke benchmark: the seed-load,
# engine-construction, geometry-predicate, partner-search and
# task-scheduler microbenchmarks at a short benchtime, well under
# 60 s. It exists to catch gross wall-clock regressions (an optimized
# variant suddenly slower than its baseline) without the cost of the
# full bench-json matrix.
bench-quick:
	$(GO) test -run '^$$' -bench 'BenchmarkSeedLoad|BenchmarkEngineBuild' \
		-benchtime 0.3s ./internal/ops5/
	$(GO) test -run '^$$' -bench 'BenchmarkGeomPredicates' \
		-benchtime 0.3s ./internal/geom/
	$(GO) test -run '^$$' -bench 'BenchmarkPartnerSearch' \
		-benchtime 0.3s ./internal/spam/
	$(GO) test -run '^$$' -bench 'BenchmarkSchedulerPolicies' \
		-benchtime 0.3s ./internal/machine/

# bench-json regenerates the perf-trajectory snapshot: Go benchmarks
# over internal/rete, internal/ops5, internal/tlp, internal/matchbench,
# internal/geom and an end-to-end scaled-down interpretation, with
# indexed-vs-naive matcher, instantiate-vs-recompile engine
# construction, batched-vs-unbatched seed-load, fast-vs-exact geometry
# and grid-vs-scan partner-search comparisons, written to BENCH_5.json
# and checked (non-fatally) against the previous snapshot (see
# docs/PERFORMANCE.md).
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_5.json -compare BENCH_4.json

# bench-radar is CI's wall-clock regression radar: one fast min-of-1
# pass over the benchjson matrix compared against $(BENCH_BASELINE).
# Warnings are non-fatal by design — short benchtimes on shared CI
# runners are noisy — but land in the log for review.
bench-radar:
	$(GO) run ./cmd/benchjson -out /tmp/BENCH.ci.json -benchtime 0.2s -count 1 \
		-compare $(BENCH_BASELINE)
	$(GO) run ./cmd/benchjson -compare $(CLUSTER_BASELINE) -cluster $(CLUSTER_CURRENT)

# serve-smoke is the CI smoke test for the interpretation service
# (cmd/spamserve, docs/SERVING.md): it starts the server in-process,
# fires a small mixed clean + fault-injected + incremental-session
# workload at it through the load generator, and fails unless every
# /healthz probe passed and the resulting serve-bench summary is
# well-formed. The document goes to a scratch path so the committed
# BENCH_6.json snapshot is untouched.
serve-smoke:
	$(GO) run ./cmd/spamload -self-serve -requests 6 -concurrency 3 \
		-datasets DC,MOFF -scenarios clean,faults,updates \
		-session-updates 2 -out /tmp/BENCH_6.smoke.json -check

# bench-serve regenerates the committed BENCH_6.json serving snapshot:
# the full default workload (24 requests x 6 clients over SF/DC/MOFF,
# clean and fault-injected scenarios) against an in-process server.
bench-serve:
	$(GO) run ./cmd/spamload -self-serve -out BENCH_6.json -check

# oracle runs the differential oracles — indexed vs naive matcher,
# template-instantiated vs fresh-compiled engines, fast-vs-exact
# geometry, the scheduling policies (simulator vs Run anchor, pool
# policies and memory budgets vs the serial FIFO baseline), and the
# incremental-update path (retract/reassert vs fresh load, warm-engine
# reset, session updates vs from-scratch re-interpretation, at the
# engine, spam and serve layers) — at every level (rete scripts, ops5
# engines, geometry kernels, the scheduler, the task-process pool,
# full-SPAM interpretations, the HTTP session surface), under the race
# detector. These are the byte-identity guarantees of
# docs/PERFORMANCE.md; everything here also runs as part of `race`,
# but this target names the contract and fails fast on it.
oracle:
	$(GO) test -race \
		-run 'Differential|Template|Concurrent|MatcherToggles|VariantCache' \
		./internal/rete/ ./internal/ops5/ ./internal/geom/ ./internal/spam/ \
		./internal/tlp/ ./internal/machine/ ./internal/serve/ ./internal/cluster/

# bench-memsched regenerates the committed BENCH_7.json snapshot: the
# memory-aware scheduling experiment's makespan-vs-memory-budget
# curves (every policy at P=1..64 over SF/DC/MOFF) plus the 10x-scale
# stress scene where the bounded policy fits a budget FIFO's peak
# exceeds. The report is invariant-checked before it is written.
bench-memsched:
	$(GO) run ./cmd/spambench -experiment ext-memsched -json BENCH_7.json

# bench-incremental regenerates the committed BENCH_8.json snapshot:
# the incremental re-interpretation churn ladder (1/5/20% scene churn
# over SF/DC/MOFF at calibrated scale, update cost vs a timed
# from-scratch re-interpretation). The report is invariant-checked —
# including byte-identity of every updated result and the calibrated
# DC@1% proportionality bound — before it is written.
bench-incremental:
	$(GO) run ./cmd/spambench -experiment ext-incremental -json BENCH_8.json

# incremental-smoke is the CI smoke version of bench-incremental: the
# same ladder at reduced subset scale (where the proportionality bound
# is deliberately not enforced — absolute constraint radii make small
# scenes non-local) to a scratch path, leaving the committed
# BENCH_8.json untouched. Identity and diff accounting are still
# checked on every point.
incremental-smoke:
	$(GO) run ./cmd/spambench -experiment ext-incremental \
		-subset-scale 0.35 -json /tmp/BENCH_8.smoke.json

# bench-cluster regenerates the committed BENCH_10.json snapshot: the
# multi-process cluster scale-out experiment (SF/DC/MOFF and the
# 10x-scale stress scene at 1/2/4 worker processes, content-addressed
# wire-v2 volume accounting with the v1 counterfactual and the
# worker-side continuation share, against the simulated svm/msgpass
# projections) plus the worker-kill recovery run with re-entry
# enabled, at the subset scale the snapshot was calibrated at. The
# report is invariant-checked before it is written — including the
# shipped-bytes budget (wire bytes per modeled seed byte must hold a
# 3x reduction over BENCH_9.json's v1 wire on SF/DC/MOFF); wall-clock
# columns are host-dependent and deliberately ungated.
bench-cluster:
	$(GO) run ./cmd/spambench -experiment ext-cluster -subset-scale 0.4 -json BENCH_10.json

# cluster-smoke is the CI smoke test for the multi-process cluster
# runtime (internal/cluster, docs/CLUSTER.md): a real scaled-down DC
# interpretation over two worker processes, then the same scene
# re-interpreted single-process in-process, failing unless the outputs
# are byte-identical and the run shipped its whole task queue over the
# wire. It runs twice: once on the default content-addressed wire v2,
# once pinned to -cluster-wire-v1, so the version-negotiation path and
# the inline-seed compatibility wire keep their own byte-identity
# coverage.
cluster-smoke:
	$(GO) run ./cmd/spamrun -dataset DC -scale 0.4 -workers 2 \
		-cluster-workers 2 -cluster-check
	$(GO) run ./cmd/spamrun -dataset DC -scale 0.4 -workers 2 \
		-cluster-workers 2 -cluster-check -cluster-wire-v1

# check is the full verification gate: the tier-1 build and tests,
# static analysis, the differential oracles, and the race detector
# over every package.
check: build test vet oracle race
