GO ?= go

.PHONY: build test vet race bench bench-json check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x .

# bench-json regenerates the perf-trajectory snapshot: Go benchmarks
# over internal/rete, internal/ops5, internal/matchbench and an
# end-to-end scaled-down interpretation, with indexed-vs-naive matcher
# comparisons, written to BENCH_2.json (see docs/PERFORMANCE.md).
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_2.json

# check is the full verification gate: the tier-1 build and tests,
# static analysis, and the race detector over every package.
check: build test vet race
