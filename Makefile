GO ?= go

.PHONY: build test vet race bench bench-quick bench-json oracle check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x .

# bench-quick is the CI smoke benchmark: the seed-load,
# engine-construction, geometry-predicate and partner-search
# microbenchmarks at a short benchtime, well under 60 s. It exists to
# catch gross wall-clock regressions (an optimized variant suddenly
# slower than its baseline) without the cost of the full bench-json
# matrix.
bench-quick:
	$(GO) test -run '^$$' -bench 'BenchmarkSeedLoad|BenchmarkEngineBuild' \
		-benchtime 0.3s ./internal/ops5/
	$(GO) test -run '^$$' -bench 'BenchmarkGeomPredicates' \
		-benchtime 0.3s ./internal/geom/
	$(GO) test -run '^$$' -bench 'BenchmarkPartnerSearch' \
		-benchtime 0.3s ./internal/spam/

# bench-json regenerates the perf-trajectory snapshot: Go benchmarks
# over internal/rete, internal/ops5, internal/tlp, internal/matchbench,
# internal/geom and an end-to-end scaled-down interpretation, with
# indexed-vs-naive matcher, instantiate-vs-recompile engine
# construction, batched-vs-unbatched seed-load, fast-vs-exact geometry
# and grid-vs-scan partner-search comparisons, written to BENCH_5.json
# and checked (non-fatally) against the previous snapshot (see
# docs/PERFORMANCE.md).
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_5.json -compare BENCH_4.json

# oracle runs the differential oracles — indexed vs naive matcher,
# template-instantiated vs fresh-compiled engines, and fast-vs-exact
# geometry — at all four levels (rete scripts, ops5 engines, geometry
# kernels, full-SPAM interpretations), under the race detector. These
# are the byte-identity guarantees of docs/PERFORMANCE.md; everything
# here also runs as part of `race`, but this target names the contract
# and fails fast on it.
oracle:
	$(GO) test -race \
		-run 'Differential|Template|Concurrent|MatcherToggles|VariantCache' \
		./internal/rete/ ./internal/ops5/ ./internal/geom/ ./internal/spam/

# check is the full verification gate: the tier-1 build and tests,
# static analysis, the differential oracles, and the race detector
# over every package.
check: build test vet oracle race
