package spampsm

// One testing.B benchmark per table and figure of the paper's
// evaluation. Each benchmark builds a fresh suite and regenerates its
// experiment; -bench runtimes stay reasonable by running the subsets
// at a reduced scale (cmd/spambench regenerates everything at the
// calibrated paper scale).

import (
	"testing"

	"spampsm/internal/bench"
)

func benchOptions() bench.Options {
	opt := bench.DefaultOptions()
	opt.SubsetScale = 0.5
	opt.FullScale = 1
	return opt
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		suite := bench.NewSuite(benchOptions())
		out, err := suite.Run(name)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatalf("experiment %s produced no output", name)
		}
	}
}

// BenchmarkTable123 regenerates the full-run phase statistics of
// Tables 1, 2 and 3 (San Francisco, Washington National, Moffett).
func BenchmarkTable123(b *testing.B) { runExperiment(b, "tables123") }

// BenchmarkTable4 reprints the task-level-parallelism taxonomy.
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkTables567 regenerates the decomposition-level measurements
// (average, standard deviation, coefficient of variance, task counts).
func BenchmarkTables567(b *testing.B) { runExperiment(b, "tables567") }

// BenchmarkTable8 regenerates the uniprocessor baseline measurements.
func BenchmarkTable8(b *testing.B) { runExperiment(b, "table8") }

// BenchmarkFig3 regenerates the ParaOPS5 match-parallelism curves for
// the match-intensive systems (Rubik / Weaver / Tourney).
func BenchmarkFig3(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig6 regenerates the LCC task-level-parallelism speedup
// curves at Levels 2 and 3.
func BenchmarkFig6(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7 regenerates the LCC match-parallelism speedup curves
// with their asymptotic limits.
func BenchmarkFig7(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkTable9 regenerates the multiplicative task × match speedup
// grid for SF Level 2.
func BenchmarkTable9(b *testing.B) { runExperiment(b, "table9") }

// BenchmarkFig8 regenerates the RTF-phase speedup curves.
func BenchmarkFig8(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9 regenerates the shared-virtual-memory experiment.
func BenchmarkFig9(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkExtFaults regenerates the fault-injection recovery tables:
// processor deaths on the Encore and message loss on the SVM cluster
// and the message-passing machine (see docs/ROBUSTNESS.md). Fault
// scenarios are skipped under -short.
func BenchmarkExtFaults(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping fault scenarios in short mode")
	}
	runExperiment(b, "ext-faults")
}
