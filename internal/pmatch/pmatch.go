// Package pmatch models ParaOPS5-style match parallelism: within each
// recognize-act cycle, the node activations triggered by the cycle's
// working-memory changes are scheduled onto M dedicated match processes.
//
// The model is structural, which is what gives the paper's saturation
// behaviour: match parallelism is bounded per cycle (a cycle only
// touches a few node activations, each ~100 instructions) and a
// synchronization barrier ends every cycle, so the speedup asymptote is
// governed by the match fraction (Amdahl) and the per-cycle activation
// forest's critical path — not by the number of processes thrown at it.
package pmatch

import (
	"container/heap"

	"spampsm/internal/ops5"
	"spampsm/internal/rete"
)

// Model holds the synchronization-cost parameters of the parallel
// matcher (simulated instructions).
type Model struct {
	// SyncBase is the per-cycle barrier cost paid once dedicated match
	// processes are present.
	SyncBase float64
	// SyncPerProc is the additional per-cycle cost of each match
	// process (work distribution, contention on the activation queue).
	SyncPerProc float64
	// OverlapFrac is the fraction of the act phase that dedicated match
	// processes overlap with: RHS actions stream their working-memory
	// changes to the match processes as they execute, so part of the
	// match is hidden behind the act. This is why even ONE dedicated
	// match process speeds a task up (the paper's Table 9 shows 1.21×
	// with a single match process).
	OverlapFrac float64
}

// DefaultModel matches the ParaOPS5 measurements: a modest per-cycle
// barrier plus per-process distribution overhead, with partial
// act/match overlap. With typical SPAM cycles these constants put the
// match-speedup peak at about 6 processes, as the paper reports.
var DefaultModel = Model{SyncBase: 60, SyncPerProc: 130, OverlapFrac: 0.35}

// finishHeap is a min-heap of running activation finish events.
type finishEvent struct {
	at   float64
	act  *rete.Activation
	tidx int // tiebreak: submission order, keeps the schedule deterministic
}

type finishHeap []finishEvent

func (h finishHeap) Len() int { return len(h) }
func (h finishHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].tidx < h[j].tidx
}
func (h finishHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *finishHeap) Push(x interface{}) { *h = append(*h, x.(finishEvent)) }
func (h *finishHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Makespan list-schedules an activation forest onto m workers,
// respecting spawn order (a child activation becomes ready when its
// parent completes) and returns the completion time in instructions.
// With m <= 1 it returns the serial sum.
func Makespan(roots []*rete.Activation, m int) float64 {
	if m <= 1 {
		var sum float64
		for _, r := range roots {
			sum += r.TotalCost()
		}
		return sum
	}
	ready := append([]*rete.Activation(nil), roots...)
	var running finishHeap
	free := m
	now := 0.0
	seq := 0
	for len(ready) > 0 || running.Len() > 0 {
		for free > 0 && len(ready) > 0 {
			a := ready[0]
			ready = ready[1:]
			seq++
			heap.Push(&running, finishEvent{at: now + a.Cost, act: a, tidx: seq})
			free--
		}
		if running.Len() == 0 {
			break
		}
		ev := heap.Pop(&running).(finishEvent)
		now = ev.at
		free++
		ready = append(ready, ev.act.Children...)
	}
	return now
}

// CriticalPath returns the forest's critical-path length: the lower
// bound on match time with unlimited match processes.
func CriticalPath(roots []*rete.Activation) float64 {
	var longest float64
	for _, r := range roots {
		if cp := pathLen(r); cp > longest {
			longest = cp
		}
	}
	return longest
}

func pathLen(a *rete.Activation) float64 {
	var deepest float64
	for _, c := range a.Children {
		if d := pathLen(c); d > deepest {
			deepest = d
		}
	}
	return a.Cost + deepest
}

// CycleTime returns the duration of one recognize-act cycle under m
// dedicated match processes. m == 0 is the baseline: the task process
// performs the match itself, serially, with no handoff overhead.
func (mo Model) CycleTime(c ops5.CycleCost, m int) float64 {
	if m <= 0 {
		return c.Resolve + c.Act + c.Match
	}
	match := Makespan(c.MatchRoots, m)
	if len(c.MatchRoots) == 0 {
		// No capture available: fall back to serial match cost (the
		// schedule cannot be reconstructed).
		match = c.Match
	}
	// Part of the match hides behind the act: the RHS streams its WM
	// changes to the match processes as it runs.
	match -= mo.OverlapFrac * c.Act
	if match < 0 {
		match = 0
	}
	return c.Resolve + c.Act + match + mo.SyncBase + mo.SyncPerProc*float64(m)
}

// TaskInstr returns the full duration of a task (one engine run) under
// m dedicated match processes, including initialization (the loading of
// the task's working memory through the network, which the match
// processes also parallelize).
func (mo Model) TaskInstr(log *ops5.CostLog, m int) float64 {
	var total float64
	if m <= 0 {
		total = log.Init
	} else {
		init := Makespan(log.InitRoots, m)
		if len(log.InitRoots) == 0 {
			init = log.Init
		}
		total = init + mo.SyncBase + mo.SyncPerProc*float64(m)
	}
	for _, c := range log.Cycles {
		total += mo.CycleTime(c, m)
	}
	return total
}

// Speedup returns serial-time / m-process-time for one task log.
func (mo Model) Speedup(log *ops5.CostLog, m int) float64 {
	base := mo.TaskInstr(log, 0)
	par := mo.TaskInstr(log, m)
	if par <= 0 {
		return 0
	}
	return base / par
}

// AmdahlLimit returns the theoretical match-parallel speedup limit of a
// task: total / (total - match), i.e. the speedup with an infinitely
// fast match.
func AmdahlLimit(log *ops5.CostLog) float64 {
	total := log.TotalInstr()
	match := log.MatchInstr()
	rest := total - match
	if rest <= 0 {
		return 0
	}
	return total / rest
}
