package pmatch

import (
	"math"
	"testing"
	"testing/quick"

	"spampsm/internal/ops5"
	"spampsm/internal/rete"
)

func leaf(c float64) *rete.Activation { return &rete.Activation{Cost: c} }

func node(c float64, kids ...*rete.Activation) *rete.Activation {
	return &rete.Activation{Cost: c, Children: kids}
}

func TestMakespanSerial(t *testing.T) {
	roots := []*rete.Activation{leaf(10), leaf(20), leaf(30)}
	if got := Makespan(roots, 1); got != 60 {
		t.Errorf("serial makespan = %v, want 60", got)
	}
	if got := Makespan(roots, 0); got != 60 {
		t.Errorf("m=0 makespan = %v, want 60", got)
	}
}

func TestMakespanIndependent(t *testing.T) {
	roots := []*rete.Activation{leaf(10), leaf(10), leaf(10), leaf(10)}
	if got := Makespan(roots, 2); got != 20 {
		t.Errorf("2 workers = %v, want 20", got)
	}
	if got := Makespan(roots, 4); got != 10 {
		t.Errorf("4 workers = %v, want 10", got)
	}
	if got := Makespan(roots, 100); got != 10 {
		t.Errorf("100 workers = %v, want 10 (bounded by task size)", got)
	}
}

func TestMakespanPrecedence(t *testing.T) {
	// A chain is not parallelizable.
	chain := node(10, node(10, node(10, leaf(10))))
	if got := Makespan([]*rete.Activation{chain}, 8); got != 40 {
		t.Errorf("chain makespan = %v, want 40", got)
	}
	// A root spawning 3 children: root first, then children in parallel.
	tree := node(10, leaf(10), leaf(10), leaf(10))
	if got := Makespan([]*rete.Activation{tree}, 3); got != 20 {
		t.Errorf("tree makespan = %v, want 20", got)
	}
	if got := Makespan([]*rete.Activation{tree}, 2); got != 30 {
		t.Errorf("tree on 2 = %v, want 30", got)
	}
}

func TestCriticalPath(t *testing.T) {
	tree := node(10, leaf(5), node(3, leaf(20)))
	if got := CriticalPath([]*rete.Activation{tree}); got != 33 {
		t.Errorf("critical path = %v, want 33", got)
	}
	if CriticalPath(nil) != 0 {
		t.Error("empty critical path should be 0")
	}
}

func TestMakespanNeverBelowCriticalPath(t *testing.T) {
	f := func(seed uint8) bool {
		// Build a deterministic random-ish forest from the seed.
		var roots []*rete.Activation
		s := uint64(seed) + 1
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s%97) + 1
		}
		for i := 0; i < 5; i++ {
			r := node(next(), node(next(), leaf(next())), leaf(next()))
			roots = append(roots, r)
		}
		serial := Makespan(roots, 1)
		cp := CriticalPath(roots)
		for m := 2; m <= 8; m++ {
			ms := Makespan(roots, m)
			if ms < cp-1e-9 || ms > serial+1e-9 {
				return false
			}
		}
		// Monotone: more workers never hurt.
		return Makespan(roots, 4) <= Makespan(roots, 2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func buildLog(t *testing.T) *ops5.CostLog {
	t.Helper()
	// Synthesize a log with wide match forests so parallelism helps.
	// Cycle sizes are SPAM-like (tens of thousands of instructions) so
	// the model's per-process sync costs are realistic in proportion.
	log := &ops5.CostLog{Init: 1000}
	for i := 0; i < 20; i++ {
		var roots []*rete.Activation
		var match float64
		for j := 0; j < 12; j++ {
			a := node(400, leaf(600))
			roots = append(roots, a)
			match += a.TotalCost()
		}
		log.Cycles = append(log.Cycles, ops5.CycleCost{
			Resolve: 500, Act: 9000, Match: match, MatchRoots: roots,
		})
	}
	return log
}

func TestTaskInstrBaselineMatchesLog(t *testing.T) {
	log := buildLog(t)
	mo := DefaultModel
	if got, want := mo.TaskInstr(log, 0), log.TotalInstr(); math.Abs(got-want) > 1e-9 {
		t.Errorf("baseline task time %v != log total %v", got, want)
	}
}

func TestMatchSpeedupSaturates(t *testing.T) {
	log := buildLog(t)
	mo := DefaultModel
	limit := AmdahlLimit(log)
	if limit <= 1 {
		t.Fatalf("limit = %v", limit)
	}
	s2 := mo.Speedup(log, 2)
	s6 := mo.Speedup(log, 6)
	s12 := mo.Speedup(log, 12)
	if s2 <= 1.0 {
		t.Errorf("2-process speedup = %v, want > 1", s2)
	}
	if s6 < s2 {
		t.Errorf("speedup should grow to ~6 processes: s2=%v s6=%v", s2, s6)
	}
	for _, s := range []float64{s2, s6, s12} {
		if s > limit {
			t.Errorf("speedup %v exceeds Amdahl limit %v", s, limit)
		}
	}
	// Far past the useful range, per-process sync overhead should stop
	// or reverse the gains.
	if s12 > s6+0.05 {
		t.Errorf("speedup should be flat/declining past saturation: s6=%v s12=%v", s6, s12)
	}
}

func TestAmdahlLimit(t *testing.T) {
	log := &ops5.CostLog{Init: 0, Cycles: []ops5.CycleCost{{Resolve: 0, Act: 50, Match: 50}}}
	if got := AmdahlLimit(log); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("limit = %v, want 2 (50%% match)", got)
	}
}

func TestCycleTimeNoCaptureFallsBack(t *testing.T) {
	c := ops5.CycleCost{Resolve: 10, Act: 20, Match: 30} // no roots captured
	mo := DefaultModel
	serial := mo.CycleTime(c, 0)
	if serial != 60 {
		t.Errorf("serial cycle = %v", serial)
	}
	par := mo.CycleTime(c, 4)
	if par <= serial {
		// Without captured roots the match cannot be parallelized, so
		// dedicated processes only add overhead.
		t.Errorf("uncaptured parallel cycle %v should exceed serial %v", par, serial)
	}
}

func TestMakespanDeterministic(t *testing.T) {
	roots := []*rete.Activation{node(7, leaf(3), leaf(9)), leaf(11), node(2, leaf(5))}
	a := Makespan(roots, 3)
	for i := 0; i < 10; i++ {
		if b := Makespan(roots, 3); b != a {
			t.Fatalf("nondeterministic makespan: %v vs %v", a, b)
		}
	}
}
