package ops5

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"spampsm/internal/symtab"
)

func mustEngine(t *testing.T, src string, opts ...Option) *Engine {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(prog, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCounterLoop(t *testing.T) {
	e := mustEngine(t, `
(literalize count n limit)
(p step
   (count ^n <n> ^limit <l>)
   (count ^n < <l>)
  -->
   (modify 1 ^n (compute <n> + 1)))
`)
	// Simpler: single WME counting to its limit.
	_ = e
	e2 := mustEngine(t, `
(literalize count n limit)
(p step
   (count ^n <n> ^limit > <n>)
  -->
   (modify 1 ^n (compute <n> + 1)))
`)
	if _, err := e2.Assert("count", map[string]symtab.Value{
		"n": symtab.Int(0), "limit": symtab.Int(10),
	}); err != nil {
		t.Fatal(err)
	}
	fired, err := e2.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 10 {
		t.Errorf("firings = %d, want 10", fired)
	}
	ws := e2.WMEs("count")
	if len(ws) != 1 || !ws[0].Get("n").Equal(symtab.Int(10)) {
		t.Errorf("final count = %v", ws)
	}
	st := e2.Stats()
	if st.Firings != 10 || st.Cycles != 11 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRefraction(t *testing.T) {
	// Without refraction this would loop forever: the rule does not
	// change working memory.
	e := mustEngine(t, `
(literalize fact v)
(p note (fact ^v <v>) --> (bind <x> <v>))
`)
	e.Assert("fact", map[string]symtab.Value{"v": symtab.Int(1)})
	e.Assert("fact", map[string]symtab.Value{"v": symtab.Int(2)})
	fired, err := e.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Errorf("firings = %d, want 2 (refraction)", fired)
	}
}

func TestHalt(t *testing.T) {
	e := mustEngine(t, `
(literalize fact v)
(p stop (fact) --> (halt) (make fact ^v never))
`)
	e.Assert("fact", map[string]symtab.Value{"v": symtab.Int(1)})
	fired, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 1 || !e.Halted() {
		t.Errorf("fired=%d halted=%v", fired, e.Halted())
	}
	// Actions after halt in the same RHS are skipped.
	if n := len(e.WMEs("fact")); n != 1 {
		t.Errorf("fact count = %d, want 1 (make after halt skipped)", n)
	}
}

func TestQuiescence(t *testing.T) {
	e := mustEngine(t, `
(literalize fact v)
(p fire (fact ^v go) --> (remove 1))
`)
	e.Assert("fact", map[string]symtab.Value{"v": symtab.Sym("stay")})
	fired, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Errorf("fired = %d, want 0 (no match)", fired)
	}
}

func TestLEXRecency(t *testing.T) {
	// Two rules match different WMEs; the more recent WME wins under LEX.
	var out bytes.Buffer
	e := mustEngine(t, `
(literalize a v)
(literalize b v)
(p on-a (a ^v <v>) --> (write a-fired) (remove 1))
(p on-b (b ^v <v>) --> (write b-fired) (remove 1))
`, WithOutput(&out))
	e.Assert("a", map[string]symtab.Value{"v": symtab.Int(1)}) // timetag 1
	e.Assert("b", map[string]symtab.Value{"v": symtab.Int(2)}) // timetag 2
	if _, err := e.Run(1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "b-fired") {
		t.Errorf("LEX should fire on the more recent WME; output = %q", out.String())
	}
}

func TestLEXSpecificity(t *testing.T) {
	// Same WME matched by two rules: the more specific rule wins.
	var out bytes.Buffer
	e := mustEngine(t, `
(literalize a v kind)
(p general (a ^v <v>) --> (write general) (remove 1))
(p specific (a ^v <v> ^kind special) --> (write specific) (remove 1))
`, WithOutput(&out))
	e.Assert("a", map[string]symtab.Value{"v": symtab.Int(1), "kind": symtab.Sym("special")})
	if _, err := e.Run(1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "specific") {
		t.Errorf("specificity should break the tie; output = %q", out.String())
	}
}

func TestMEAFirstCE(t *testing.T) {
	// Under MEA the first CE's recency dominates; under LEX the overall
	// recency would pick the other instantiation.
	var out bytes.Buffer
	e := mustEngine(t, `
(literalize ctx phase)
(literalize item v)
(strategy mea)
(p old-ctx (ctx ^phase one) (item ^v <v>) --> (write one) (remove 2))
(p new-ctx (ctx ^phase two) (item ^v <v>) --> (write two) (remove 2))
`, WithOutput(&out))
	e.Assert("ctx", map[string]symtab.Value{"phase": symtab.Sym("one")}) // tag 1
	e.Assert("ctx", map[string]symtab.Value{"phase": symtab.Sym("two")}) // tag 2
	e.Assert("item", map[string]symtab.Value{"v": symtab.Int(9)})        // tag 3
	if _, err := e.Run(1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "two") {
		t.Errorf("MEA should prefer the rule whose first CE matches the newer context; output = %q", out.String())
	}
}

func TestModifySemantics(t *testing.T) {
	e := mustEngine(t, `
(literalize frag id status score)
(p promote { <f> (frag ^status candidate) } --> (modify <f> ^status confirmed))
`)
	w, _ := e.Assert("frag", map[string]symtab.Value{
		"id": symtab.Int(7), "status": symtab.Sym("candidate"), "score": symtab.Float(0.8),
	})
	oldTag := w.TimeTag
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	ws := e.WMEs("frag")
	if len(ws) != 1 {
		t.Fatalf("frag count = %d", len(ws))
	}
	nw := ws[0]
	if !nw.Get("status").Equal(symtab.Sym("confirmed")) {
		t.Errorf("status = %v", nw.Get("status"))
	}
	// Unmentioned attributes preserved; timetag is fresh.
	if !nw.Get("id").Equal(symtab.Int(7)) || !nw.Get("score").Equal(symtab.Float(0.8)) {
		t.Errorf("modify dropped attributes: %v", nw)
	}
	if nw.TimeTag == oldTag {
		t.Error("modify must assign a new timetag")
	}
}

func TestNegationDrivenRule(t *testing.T) {
	if _, err := Parse("(litera1ize never x)"); err == nil {
		t.Fatal("typo class decl should fail")
	}
	e2 := mustEngine(t, `
(literalize task id)
(literalize result count)
(p finish
   (result ^count <> done)
 - (task)
  -->
   (modify 1 ^count done))
(p consume
   (result)
   { <t> (task ^id <i>) }
  -->
   (remove <t>))
`)
	e2.Assert("result", map[string]symtab.Value{"count": symtab.Int(0)})
	e2.Assert("task", map[string]symtab.Value{"id": symtab.Int(1)})
	e2.Assert("task", map[string]symtab.Value{"id": symtab.Int(2)})
	if _, err := e2.Run(0); err != nil {
		t.Fatal(err)
	}
	ws := e2.WMEs("result")
	if len(ws) != 1 || !ws[0].Get("count").Equal(symtab.Sym("done")) {
		t.Errorf("finish should fire after tasks consumed: %v", ws)
	}
	if len(e2.WMEs("task")) != 0 {
		t.Error("tasks should be consumed")
	}
}

func TestExternalFunctions(t *testing.T) {
	e := mustEngine(t, `
(literalize pair a b sum)
(external add-up log-it)
(p sum-it
   (pair ^a <a> ^b <b> ^sum nil-yet)
  -->
   (call log-it <a> <b>)
   (modify 1 ^sum (add-up <a> <b>)))
`)
	var logged []symtab.Value
	e.Register("log-it", func(args []symtab.Value) (symtab.Value, float64, error) {
		logged = append(logged, args...)
		return symtab.Nil, 100, nil
	})
	e.Register("add-up", func(args []symtab.Value) (symtab.Value, float64, error) {
		return symtab.Int(args[0].IntVal() + args[1].IntVal()), 500, nil
	})
	e.Assert("pair", map[string]symtab.Value{
		"a": symtab.Int(3), "b": symtab.Int(4), "sum": symtab.Sym("nil-yet"),
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	ws := e.WMEs("pair")
	if !ws[0].Get("sum").Equal(symtab.Int(7)) {
		t.Errorf("sum = %v", ws[0].Get("sum"))
	}
	if len(logged) != 2 {
		t.Errorf("logged = %v", logged)
	}
	// External cost must appear in act cost.
	if e.Stats().ActInstr < 600 {
		t.Errorf("act cost %v should include external costs", e.Stats().ActInstr)
	}
}

func TestMissingExternal(t *testing.T) {
	e := mustEngine(t, `
(literalize a x)
(external mystery)
(p r (a) --> (call mystery))
`)
	e.Assert("a", nil)
	if _, err := e.Run(0); err == nil || !strings.Contains(err.Error(), "mystery") {
		t.Errorf("expected missing-external error, got %v", err)
	}
}

func TestExternalFailureMidRun(t *testing.T) {
	// An external that fails partway through a run must abort the run
	// with a descriptive error, leaving earlier work committed.
	e := mustEngine(t, `
(literalize item id score)
(external score-it)
(p score { <i> (item ^score nil-yet ^id <n>) } -->
   (modify <i> ^score (score-it <n>)))
`)
	calls := 0
	e.Register("score-it", func(args []symtab.Value) (symtab.Value, float64, error) {
		calls++
		if calls == 3 {
			return symtab.Nil, 0, fmt.Errorf("sensor offline")
		}
		return symtab.Int(args[0].IntVal() * 2), 10, nil
	})
	for i := 1; i <= 5; i++ {
		e.Assert("item", map[string]symtab.Value{
			"id": symtab.Int(int64(i)), "score": symtab.Sym("nil-yet"),
		})
	}
	fired, err := e.Run(0)
	if err == nil || !strings.Contains(err.Error(), "sensor offline") {
		t.Fatalf("want external error, got %v", err)
	}
	if fired != 2 {
		t.Errorf("fired = %d before the failure, want 2", fired)
	}
	// Two items scored, the rest untouched.
	scored := 0
	for _, w := range e.WMEs("item") {
		if w.Get("score").Kind() == symtab.KindInt {
			scored++
		}
	}
	if scored != 2 {
		t.Errorf("scored = %d, want 2", scored)
	}
}

func TestWriteOutput(t *testing.T) {
	var out bytes.Buffer
	e := mustEngine(t, `
(literalize msg text n)
(p say (msg ^text <t> ^n <n>) --> (write <t> (crlf) value <n>) (remove 1))
`, WithOutput(&out))
	e.Assert("msg", map[string]symtab.Value{"text": symtab.Sym("hello"), "n": symtab.Int(42)})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "hello") || !strings.Contains(got, "42") || !strings.Contains(got, "\n") {
		t.Errorf("write output = %q", got)
	}
}

func TestCostLogShape(t *testing.T) {
	e := mustEngine(t, `
(literalize count n limit)
(p step (count ^n <n> ^limit > <n>) --> (modify 1 ^n (compute <n> + 1)))
`, WithCapture())
	e.Assert("count", map[string]symtab.Value{"n": symtab.Int(0), "limit": symtab.Int(5)})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	log := e.Log()
	if len(log.Cycles) != 5 {
		t.Fatalf("cycles = %d, want 5", len(log.Cycles))
	}
	if log.Init <= 0 {
		t.Error("init cost should be positive")
	}
	for i, c := range log.Cycles {
		if c.Match <= 0 || c.Act <= 0 {
			t.Errorf("cycle %d costs: %+v", i, c)
		}
		if len(c.MatchRoots) == 0 {
			t.Errorf("cycle %d: no captured match roots", i)
		}
		var rootCost float64
		for _, r := range c.MatchRoots {
			rootCost += r.TotalCost()
		}
		if rootCost <= 0 || rootCost > c.Match+1e-9 {
			t.Errorf("cycle %d: root cost %v vs match %v", i, rootCost, c.Match)
		}
	}
	if log.TotalInstr() <= 0 || log.MatchInstr() <= 0 {
		t.Error("log totals should be positive")
	}
	st := e.Stats()
	if st.MatchFraction() <= 0 || st.MatchFraction() >= 1 {
		t.Errorf("match fraction = %v", st.MatchFraction())
	}
}

func TestRunLimit(t *testing.T) {
	e := mustEngine(t, `
(literalize count n limit)
(p step (count ^n <n> ^limit > <n>) --> (modify 1 ^n (compute <n> + 1)))
`)
	e.Assert("count", map[string]symtab.Value{"n": symtab.Int(0), "limit": symtab.Int(1000)})
	fired, err := e.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 7 {
		t.Errorf("fired = %d, want 7", fired)
	}
	// Resume.
	fired, err = e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 993 {
		t.Errorf("resumed fired = %d, want 993", fired)
	}
}

func TestArithmeticSemantics(t *testing.T) {
	e := mustEngine(t, `
(literalize r a b iq im fsum)
(p go (r ^a <a> ^b <b>)
  -->
  (modify 1 ^iq (compute <a> // <b>) ^im (compute <a> \\ <b>) ^fsum (compute <a> + 0.5)))
`)
	e.Assert("r", map[string]symtab.Value{"a": symtab.Int(17), "b": symtab.Int(5)})
	if _, err := e.Run(1); err != nil {
		t.Fatal(err)
	}
	w := e.WMEs("r")[0]
	if !w.Get("iq").Equal(symtab.Int(3)) {
		t.Errorf("integer quotient = %v", w.Get("iq"))
	}
	if !w.Get("im").Equal(symtab.Int(2)) {
		t.Errorf("integer modulus = %v", w.Get("im"))
	}
	if !w.Get("fsum").Equal(symtab.Float(17.5)) {
		t.Errorf("float sum = %v", w.Get("fsum"))
	}
}

func TestDivisionByZeroError(t *testing.T) {
	e := mustEngine(t, `
(literalize r a)
(p go (r ^a <a>) --> (modify 1 ^a (compute 1 // 0)))
`)
	e.Assert("r", map[string]symtab.Value{"a": symtab.Int(1)})
	if _, err := e.Run(0); err == nil {
		t.Error("division by zero should error")
	}
}

func TestAssertDuringRunRejected(t *testing.T) {
	e := mustEngine(t, `
(literalize a x)
(p r (a) --> (halt))
`)
	if _, err := e.Assert("a", nil); err != nil {
		t.Fatal(err)
	}
	// Assert from inside an external would be a bug; simulate by flag.
	// (Run itself is synchronous, so call after Run finishes is fine.)
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Assert("a", nil); err != nil {
		t.Errorf("assert after run should succeed: %v", err)
	}
}

func TestDisjunctionMatching(t *testing.T) {
	e := mustEngine(t, `
(literalize region kind)
(p linear (region ^kind << runway taxiway road >>) --> (remove 1))
`)
	e.Assert("region", map[string]symtab.Value{"kind": symtab.Sym("runway")})
	e.Assert("region", map[string]symtab.Value{"kind": symtab.Sym("grass")})
	e.Assert("region", map[string]symtab.Value{"kind": symtab.Sym("road")})
	fired, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
	if left := e.WMEs("region"); len(left) != 1 || !left[0].Get("kind").Equal(symtab.Sym("grass")) {
		t.Errorf("remaining = %v", left)
	}
}

func TestConjunctionRangeMatching(t *testing.T) {
	e := mustEngine(t, `
(literalize m v)
(p mid (m ^v { > 10 < 20 }) --> (remove 1))
`)
	e.Assert("m", map[string]symtab.Value{"v": symtab.Int(5)})
	e.Assert("m", map[string]symtab.Value{"v": symtab.Int(15)})
	e.Assert("m", map[string]symtab.Value{"v": symtab.Int(25)})
	fired, _ := e.Run(0)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if len(e.WMEs("m")) != 2 {
		t.Errorf("remaining = %d", len(e.WMEs("m")))
	}
}

func TestFibonacciProgram(t *testing.T) {
	// A multi-rule program computing Fibonacci numbers through WM.
	e := mustEngine(t, `
(literalize fib i val prev limit)
(p extend
   (fib ^i <i> ^val <v> ^prev <p> ^limit > <i>)
  -->
   (modify 1 ^i (compute <i> + 1) ^val (compute <v> + <p>) ^prev <v>))
`)
	e.Assert("fib", map[string]symtab.Value{
		"i": symtab.Int(2), "val": symtab.Int(1), "prev": symtab.Int(1), "limit": symtab.Int(10),
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	w := e.WMEs("fib")[0]
	if !w.Get("val").Equal(symtab.Int(55)) {
		t.Errorf("fib(10) = %v, want 55", w.Get("val"))
	}
}

func TestSameTypePredicate(t *testing.T) {
	e := mustEngine(t, `
(literalize a x y)
(p same (a ^x <v> ^y <=> <v>) --> (remove 1))
`)
	e.Assert("a", map[string]symtab.Value{"x": symtab.Int(1), "y": symtab.Int(99)})
	e.Assert("a", map[string]symtab.Value{"x": symtab.Int(1), "y": symtab.Sym("one")})
	fired, _ := e.Run(0)
	if fired != 1 {
		t.Errorf("fired = %d, want 1 (only the int/int pair)", fired)
	}
}
