package ops5

import (
	"bytes"
	"testing"

	"spampsm/internal/rete"
	"spampsm/internal/symtab"
)

// Engine-level differential oracle: the same program and working
// memory run under the indexed (default) and naive (WithNaiveMatch)
// matchers must produce the identical firing trace, identical final
// working memory, and byte-identical match counters.

// diffPrograms are join- and negation-heavy programs whose conflict
// sets are contested enough that any activation-order divergence
// between the matchers would change the firing trace.
var diffPrograms = []struct {
	name string
	src  string
}{
	{
		name: "transitive-links",
		src: `
(literalize node id color)
(literalize link from to)
(literalize path from to hops)
(p start
   (link ^from <a> ^to <b>)
  -(path ^from <a> ^to <b>)
  -->
   (make path ^from <a> ^to <b> ^hops 1))
(p extend
   (path ^from <a> ^to <b> ^hops <h>)
   (link ^from <b> ^to <c>)
  -(path ^from <a> ^to <c>)
   (node ^id <a> ^color blue)
  -->
   (make path ^from <a> ^to <c> ^hops (compute <h> + 1)))
`,
	},
	{
		name: "color-pairs",
		src: `
(literalize node id color)
(literalize pair a b)
(p pair-same-color
   (node ^id <a> ^color <c>)
   (node ^id <b> ^color <c>)
   (node ^id > <a>)
  -(pair ^a <a> ^b <b>)
  -->
   (make pair ^a <a> ^b <b>))
`,
	},
}

func seedDiffWM(t *testing.T, e *Engine) {
	t.Helper()
	colors := []string{"blue", "red", "blue", "green", "blue", "red"}
	for i := 0; i < 6; i++ {
		if _, err := e.Assert("node", map[string]symtab.Value{
			"id": symtab.Int(int64(i)), "color": symtab.Sym(colors[i]),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if e.Classes().Lookup("link") != nil {
		for _, l := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {1, 4}, {2, 0}} {
			if _, err := e.Assert("link", map[string]symtab.Value{
				"from": symtab.Int(int64(l[0])), "to": symtab.Int(int64(l[1])),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func runDiff(t *testing.T, src string, naive bool) (string, string, rete.Counters, RunStats) {
	t.Helper()
	opts := []Option{}
	if naive {
		opts = append(opts, WithNaiveMatch())
	}
	var trace bytes.Buffer
	opts = append(opts, WithTrace(&trace))
	e := mustEngine(t, src, opts...)
	seedDiffWM(t, e)
	if _, err := e.Run(5000); err != nil {
		t.Fatal(err)
	}
	var dump bytes.Buffer
	e.DumpWM(&dump)
	return trace.String(), dump.String(), e.MatchCounters(), e.Stats()
}

func TestEngineDifferentialIndexedVsNaive(t *testing.T) {
	for _, tc := range diffPrograms {
		t.Run(tc.name, func(t *testing.T) {
			iTrace, iWM, iCtr, iStats := runDiff(t, tc.src, false)
			nTrace, nWM, nCtr, nStats := runDiff(t, tc.src, true)
			if iTrace != nTrace {
				t.Errorf("firing traces differ:\nindexed:\n%s\nnaive:\n%s", iTrace, nTrace)
			}
			if iWM != nWM {
				t.Errorf("final working memories differ:\nindexed:\n%s\nnaive:\n%s", iWM, nWM)
			}
			if iCtr != nCtr {
				t.Errorf("match counters differ:\nindexed: %+v\nnaive:   %+v", iCtr, nCtr)
			}
			if iStats != nStats {
				t.Errorf("run stats differ:\nindexed: %+v\nnaive:   %+v", iStats, nStats)
			}
			if iTrace == "" {
				t.Fatal("trace empty: program did not fire")
			}
		})
	}
}
