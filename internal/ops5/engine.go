package ops5

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"

	"spampsm/internal/rete"
	"spampsm/internal/symtab"
	"spampsm/internal/wm"
)

// ErrInterrupted is returned by Run when Interrupt stops the
// recognize-act loop before quiescence (e.g. a task-process deadline).
var ErrInterrupted = errors.New("ops5: run interrupted")

// Instruction costs of interpreter operations outside the match
// (simulated NS32332 instructions).
const (
	CostResolveCompare = 30  // one conflict-resolution comparison
	CostActionBase     = 240 // dispatch of one RHS action
	CostWriteArg       = 45  // formatting one write argument
	CostBindOp         = 60  // one RHS bind
	CostComputeOp      = 36  // one arithmetic operation in compute
	CostExternalBase   = 150 // calling out to an external function
)

// ExternalFn is a task-related computation invoked from the RHS: it
// receives evaluated arguments and returns a value plus its own cost in
// simulated instructions. This is how SPAM's geometric computation
// (performed outside OPS5 in the original system) is metered.
type ExternalFn func(args []symtab.Value) (symtab.Value, float64, error)

// CycleCost is the cost breakdown of one recognize-act cycle: the
// conflict-resolution cost, the act cost, and the match work triggered
// by the act's working-memory changes. MatchRoots is the forest of node
// activations (present only when capture is enabled) that the
// match-parallelism simulation schedules.
type CycleCost struct {
	Resolve    float64
	Act        float64
	Match      float64
	MatchRoots []*rete.Activation
}

// Total returns the cycle's total instruction cost.
func (c CycleCost) Total() float64 { return c.Resolve + c.Act + c.Match }

// CostLog is the complete cost record of one engine run: the
// initialization cost (loading the initial working memory through the
// match network), one CycleCost per production firing, and the task's
// modeled memory footprint.
type CostLog struct {
	Init      float64
	InitRoots []*rete.Activation
	Cycles    []CycleCost
	Mem       MemStats
}

// MemStats is the modeled memory record of one engine run, in the
// same simulated units as the instruction cost model (wm.WMEBytes,
// rete.TokenBytes). It is observational only: recording it never
// perturbs Counters or charges, so the differential oracles' byte
// identity is preserved — and because the token create/delete sequence
// is itself proven identical across matcher variants, so are the peaks.
type MemStats struct {
	// SeedWMEs / SeedBytes count the initial working memory asserted
	// into the engine before the run (the task's distributed seed).
	SeedWMEs  int
	SeedBytes float64
	// RetractedWMEs / RetractedBytes count working memory retracted
	// through RetractBatch before the run — the unloading half of an
	// incremental update, symmetric to the seed counters above.
	RetractedWMEs  int
	RetractedBytes float64
	// PeakWMEs / PeakTokens are high-water marks of simultaneously-live
	// WMEs and beta tokens over the whole engine lifetime.
	PeakWMEs   int
	PeakTokens int
	// PeakBytes is the modeled footprint the scheduler budgets against:
	// peak WME bytes plus peak token bytes. The two peaks need not
	// coincide in time, so this is a (tight, monotone) upper bound on
	// the true combined instantaneous peak.
	PeakBytes float64
}

// TotalInstr returns the run's total instruction count.
func (l *CostLog) TotalInstr() float64 {
	t := l.Init
	for _, c := range l.Cycles {
		t += c.Total()
	}
	return t
}

// MatchInstr returns the total match instructions (including init).
func (l *CostLog) MatchInstr() float64 {
	t := l.Init
	for _, c := range l.Cycles {
		t += c.Match
	}
	return t
}

// RunStats aggregates the statistics of one engine run.
type RunStats struct {
	Firings      int
	Cycles       int
	RHSActions   int
	MatchInstr   float64
	ResolveInstr float64
	ActInstr     float64
	InitInstr    float64
	Halted       bool
}

// TotalInstr returns the run's total simulated instructions.
func (s RunStats) TotalInstr() float64 {
	return s.MatchInstr + s.ResolveInstr + s.ActInstr + s.InitInstr
}

// MatchFraction returns the fraction of total time spent in match
// (init counts as match: it is alpha/beta network loading).
func (s RunStats) MatchFraction() float64 {
	t := s.TotalInstr()
	if t == 0 {
		return 0
	}
	return (s.MatchInstr + s.InitInstr) / t
}

// Option configures an Engine.
type Option func(*Engine)

// WithOutput directs (write ...) output; the default discards it.
func WithOutput(w io.Writer) Option { return func(e *Engine) { e.out = w } }

// WithCapture enables per-activation cost capture for the parallel
// match simulation. Without it only aggregate costs are recorded.
func WithCapture() Option { return func(e *Engine) { e.capture = true } }

// WithTrace enables the OPS5 "watch" facility: each firing is printed
// with its instantiation's timetags, and each working-memory change is
// logged as it happens.
func WithTrace(w io.Writer) Option { return func(e *Engine) { e.trace = w } }

// WithNaiveMatch disables the Rete network's equality-indexed memories
// so every join scans its full memories. This is the reference matcher
// the differential oracle compares against (the indexed matcher must
// reproduce its Counters and firing sequence byte-for-byte); it also
// serves as the pre-indexing wall-clock baseline in benchmarks.
func WithNaiveMatch() Option { return func(e *Engine) { e.naiveMatch = true } }

// WithFreshCompile forces NewEngine to compile the program privately,
// bypassing the Program's compiled-variant cache. The template/instance
// differential oracle uses it to compare fresh-compiled engines against
// template-instantiated ones.
func WithFreshCompile() Option { return func(e *Engine) { e.freshCompile = true } }

// WithScratch seeds the engine's internal free lists from s (emptying
// it); pair with Engine.Reclaim to recycle allocations across the
// short-lived engines of a drop-after-run task worker. A Scratch is
// single-owner and not safe for concurrent use.
func WithScratch(s *Scratch) Option { return func(e *Engine) { e.scratch = s } }

// Engine is one OPS5 interpreter instance: a production memory compiled
// into a Rete network, a working memory, and a conflict set. Engines
// are deliberately self-contained — the SPAM/PSM task processes each
// own a full engine (working-memory distribution).
type Engine struct {
	prog         *Program
	classes      *wm.Classes
	mem          *wm.Memory
	net          *rete.Network
	cs           *conflictSet
	strategy     Strategy
	compiled     map[string]*compiledProd
	externals    map[string]ExternalFn
	out          io.Writer
	trace        io.Writer
	capture      bool
	naiveMatch   bool
	freshCompile bool
	// scratch seeds the network's free lists at construction; consumed
	// (and cleared) by finish.
	scratch *Scratch
	// perWMEAssert makes AssertBatch take the reference per-WME path
	// (WithPerWMEAssert); batchWMEs/batchDigests are its staging
	// buffers, recycled through Scratch across a worker's engines.
	perWMEAssert bool
	batchWMEs    []*wm.WME
	batchDigests []string
	halted       bool
	running      bool
	// interrupted is set asynchronously by Interrupt and polled once
	// per recognize-act cycle, so a wall-clock watchdog can stop a
	// runaway task without killing its goroutine.
	interrupted atomic.Bool
	stats       RunStats
	// log is allocated separately from the Engine so that callers can
	// retain the cost log while the engine itself (its Rete network and
	// working memory) is garbage collected.
	log *CostLog
}

// NewEngine returns a ready engine over the program. The compilation
// (production lowering and Rete template construction) is memoized on
// the Program per (naive-match, capture) variant: the first engine of
// a variant pays the full compile, every later one is O(nodes)
// instantiation of the shared template. WithFreshCompile bypasses the
// cache.
func NewEngine(prog *Program, opts ...Option) (*Engine, error) {
	e := newEngineShell(prog)
	for _, opt := range opts {
		opt(e)
	}
	var cp *CompiledProgram
	var err error
	if e.freshCompile {
		cp, err = compileVariant(prog, e.naiveMatch, e.capture)
	} else {
		cp, err = prog.compiledVariant(e.naiveMatch, e.capture)
	}
	if err != nil {
		return nil, err
	}
	return cp.finish(e)
}

// Register installs an external function. Functions must be registered
// for every name in the program's external declaration before Run.
func (e *Engine) Register(name string, fn ExternalFn) { e.externals[name] = fn }

// Classes exposes the engine's class registry.
func (e *Engine) Classes() *wm.Classes { return e.classes }

// Assert adds a WME to working memory from outside the rule system
// (initial task loading). Its match cost is accounted as
// initialization.
func (e *Engine) Assert(class string, sets map[string]symtab.Value) (*wm.WME, error) {
	if e.running {
		return nil, fmt.Errorf("ops5: Assert during Run")
	}
	w, err := e.mem.Make(class, sets)
	if err != nil {
		return nil, err
	}
	before := e.net.Totals().Cost
	e.net.Add(w)
	e.log.Init += e.net.Totals().Cost - before
	e.log.Mem.SeedWMEs++
	e.log.Mem.SeedBytes += wm.WMEBytes(len(w.Vals))
	e.syncMem()
	return w, nil
}

// AssertValues is Assert with a parallel attribute/value list, a
// convenience for generated workloads.
func (e *Engine) AssertValues(class string, attrs []string, vals []symtab.Value) (*wm.WME, error) {
	sets := make(map[string]symtab.Value, len(attrs))
	for i, a := range attrs {
		sets[a] = vals[i]
	}
	return e.Assert(class, sets)
}

// Stats returns the run statistics so far.
func (e *Engine) Stats() RunStats {
	s := e.stats
	s.InitInstr = e.log.Init
	return s
}

// Log returns the engine's cost log.
func (e *Engine) Log() *CostLog { return e.log }

// syncMem copies the working memory's and network's occupancy
// high-water marks into the cost log. Called after every assertion
// entry point and (deferred) from Run, so the log carries the task's
// peak even when the run is interrupted or errors out — a failed
// attempt's footprint still informs the scheduler.
func (e *Engine) syncMem() {
	m := &e.log.Mem
	m.PeakWMEs = e.mem.PeakSize()
	m.PeakTokens = e.net.PeakTokens()
	m.PeakBytes = e.mem.PeakBytes() + float64(m.PeakTokens)*rete.TokenBytes
}

// MatchCounters returns the Rete network's aggregate match counters
// (simulated instruction accounting). The differential oracle asserts
// these are byte-identical between the indexed and naive matchers.
func (e *Engine) MatchCounters() rete.Counters { return e.net.Totals() }

// Memory exposes the working memory (for result extraction).
func (e *Engine) Memory() *wm.Memory { return e.mem }

// WMEs returns the live WMEs of a class ordered by timetag.
func (e *Engine) WMEs(class string) []*wm.WME { return e.mem.OfClass(class) }

// ConflictSetSize returns the number of live instantiations.
func (e *Engine) ConflictSetSize() int { return e.cs.Size() }

// ConflictSet lists the live unfired instantiations as
// "production-name [timetags]" strings, sorted — the OPS5 "cs" command.
func (e *Engine) ConflictSet() []string {
	var out []string
	for _, in := range e.cs.insts {
		if in.fired {
			continue
		}
		out = append(out, fmt.Sprintf("%s %v", in.cp.prod.Name, in.tags))
	}
	sort.Strings(out)
	return out
}

// DumpWM writes the live working memory to w in timetag order — the
// OPS5 "wm" command.
func (e *Engine) DumpWM(w io.Writer) {
	for _, el := range e.mem.Snapshot() {
		fmt.Fprintf(w, "%d: %s\n", el.TimeTag, el)
	}
}

// ProductionNames returns the production memory's names in definition
// order — the OPS5 "pm" command.
func (e *Engine) ProductionNames() []string {
	names := make([]string, len(e.prog.Productions))
	for i, p := range e.prog.Productions {
		names[i] = p.Name
	}
	return names
}

// Halted reports whether a (halt) action stopped the run.
func (e *Engine) Halted() bool { return e.halted }

// Interrupt asynchronously stops a running engine: the recognize-act
// loop polls the flag between cycles and returns ErrInterrupted. Safe
// to call from any goroutine; a subsequent Run clears the flag.
func (e *Engine) Interrupt() { e.interrupted.Store(true) }

// Run executes the recognize-act loop until quiescence, halt, or
// maxFirings productions have fired (0 means no limit). It returns the
// number of firings performed by this call.
func (e *Engine) Run(maxFirings int) (int, error) {
	if missing := e.missingExternals(); len(missing) > 0 {
		return 0, fmt.Errorf("ops5: externals not registered: %s", strings.Join(missing, ", "))
	}
	e.running = true
	defer func() { e.running = false }()
	defer e.syncMem()
	e.interrupted.Store(false)
	// Collect any activations pending from initialization.
	initRoots := e.net.TakeBatch()
	if len(initRoots) > 0 {
		e.log.InitRoots = append(e.log.InitRoots, initRoots...)
	}
	fired := 0
	for !e.halted && (maxFirings == 0 || fired < maxFirings) {
		if e.interrupted.Load() {
			e.stats.Halted = e.halted
			return fired, ErrInterrupted
		}
		e.stats.Cycles++
		// Resolve.
		inst := e.cs.Resolve(e.strategy)
		resolveCost := float64(e.cs.takeCompares()) * CostResolveCompare
		e.stats.ResolveInstr += resolveCost
		if inst == nil {
			// Quiescence: no unfired instantiation.
			break
		}
		inst.fired = true
		if e.trace != nil {
			fmt.Fprintf(e.trace, "%d. %s %v\n", e.stats.Firings+1, inst.cp.prod.Name, inst.tags)
		}
		// Act.
		e.net.StartBatch()
		matchBefore := e.net.Totals().Cost
		actCost, err := e.fire(inst)
		if err != nil {
			return fired, fmt.Errorf("ops5: firing %s: %w", inst.cp.prod.Name, err)
		}
		matchCost := e.net.Totals().Cost - matchBefore
		roots := e.net.TakeBatch()
		e.stats.ActInstr += actCost
		e.stats.MatchInstr += matchCost
		e.stats.Firings++
		fired++
		e.log.Cycles = append(e.log.Cycles, CycleCost{
			Resolve:    resolveCost,
			Act:        actCost,
			Match:      matchCost,
			MatchRoots: roots,
		})
	}
	e.stats.Halted = e.halted
	return fired, nil
}

func (e *Engine) missingExternals() []string {
	var missing []string
	for _, name := range e.prog.Externals {
		if _, ok := e.externals[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	return missing
}

// rhsEnv is the environment of one firing.
type rhsEnv struct {
	inst  *instantiation
	binds map[string]symtab.Value
	cost  float64
}

func (e *Engine) fire(inst *instantiation) (float64, error) {
	env := &rhsEnv{inst: inst, binds: map[string]symtab.Value{}}
	for _, a := range inst.cp.prod.RHS {
		env.cost += CostActionBase
		e.stats.RHSActions++
		if err := e.execute(a, env); err != nil {
			return env.cost, err
		}
		if e.halted {
			break
		}
	}
	return env.cost, nil
}

func (e *Engine) execute(a Action, env *rhsEnv) error {
	switch act := a.(type) {
	case MakeAction:
		sets, err := e.evalSets(act.Sets, env)
		if err != nil {
			return err
		}
		w, err := e.mem.Make(act.Class, sets)
		if err != nil {
			return err
		}
		e.net.Add(w)
		e.traceWM("=>WM", w)
	case ModifyAction:
		old, err := e.resolveRef(act.Ref, env)
		if err != nil {
			return err
		}
		sets, err := e.evalSets(act.Sets, env)
		if err != nil {
			return err
		}
		// OPS5 modify = remove + make with a fresh timetag.
		if err := e.mem.Remove(old); err != nil {
			return err
		}
		e.net.Remove(old)
		e.traceWM("<=WM", old)
		full := make(map[string]symtab.Value, len(old.Vals))
		for i, attr := range old.Class.Attrs {
			if v := old.Vals[i]; !v.IsNil() {
				full[attr] = v
			}
		}
		for k, v := range sets {
			full[k] = v
		}
		w, err := e.mem.Make(old.Class.Name, full)
		if err != nil {
			return err
		}
		e.net.Add(w)
		e.traceWM("=>WM", w)
	case RemoveAction:
		w, err := e.resolveRef(act.Ref, env)
		if err != nil {
			return err
		}
		if err := e.mem.Remove(w); err != nil {
			return err
		}
		e.net.Remove(w)
		e.traceWM("<=WM", w)
	case BindAction:
		v, err := e.eval(act.Expr, env)
		if err != nil {
			return err
		}
		env.cost += CostBindOp
		env.binds[act.Var] = v
	case WriteAction:
		var parts []string
		for _, arg := range act.Args {
			env.cost += CostWriteArg
			if _, isCrlf := arg.(CrlfExpr); isCrlf {
				parts = append(parts, "\n")
				continue
			}
			v, err := e.eval(arg, env)
			if err != nil {
				return err
			}
			parts = append(parts, v.String())
		}
		fmt.Fprint(e.out, strings.Join(parts, " "))
	case CallAction:
		fn, ok := e.externals[act.Fn]
		if !ok {
			return fmt.Errorf("external %s not registered", act.Fn)
		}
		args := make([]symtab.Value, len(act.Args))
		for i, arg := range act.Args {
			v, err := e.eval(arg, env)
			if err != nil {
				return err
			}
			args[i] = v
		}
		_, cost, err := fn(args)
		if err != nil {
			return fmt.Errorf("external %s: %w", act.Fn, err)
		}
		env.cost += CostExternalBase + cost
	case HaltAction:
		e.halted = true
	default:
		return fmt.Errorf("unknown action %T", a)
	}
	return nil
}

// traceWM logs one working-memory change when tracing is on.
func (e *Engine) traceWM(dir string, w *wm.WME) {
	if e.trace != nil {
		fmt.Fprintf(e.trace, "%s: %d %s\n", dir, w.TimeTag, w)
	}
}

func (e *Engine) evalSets(sets []AttrSet, env *rhsEnv) (map[string]symtab.Value, error) {
	out := make(map[string]symtab.Value, len(sets))
	for _, s := range sets {
		v, err := e.eval(s.Expr, env)
		if err != nil {
			return nil, err
		}
		out[s.Attr] = v
	}
	return out, nil
}

func (e *Engine) resolveRef(r ElemRef, env *rhsEnv) (*wm.WME, error) {
	level := -1
	if r.Var != "" {
		l, ok := env.inst.cp.elemLevels[r.Var]
		if !ok {
			return nil, fmt.Errorf("unknown element variable <%s>", r.Var)
		}
		level = l
	} else {
		level = r.Index - 1
	}
	w := env.inst.token.WMEAt(level)
	if w == nil {
		return nil, fmt.Errorf("element reference %s matches no WME (negated CE?)", r)
	}
	return w, nil
}

func (e *Engine) eval(x Expr, env *rhsEnv) (symtab.Value, error) {
	switch ex := x.(type) {
	case LitExpr:
		return ex.Val, nil
	case VarExpr:
		if v, ok := env.binds[ex.Name]; ok {
			return v, nil
		}
		if loc, ok := env.inst.cp.varLocs[ex.Name]; ok {
			w := env.inst.token.WMEAt(loc.ce)
			if w == nil {
				return symtab.Nil, fmt.Errorf("variable <%s> bound at a retracted level", ex.Name)
			}
			return w.GetAt(loc.attr), nil
		}
		return symtab.Nil, fmt.Errorf("unbound variable <%s>", ex.Name)
	case ComputeExpr:
		acc, err := e.eval(ex.Operands[0], env)
		if err != nil {
			return symtab.Nil, err
		}
		for i, op := range ex.Ops {
			rhs, err := e.eval(ex.Operands[i+1], env)
			if err != nil {
				return symtab.Nil, err
			}
			env.cost += CostComputeOp
			acc, err = arith(acc, op, rhs)
			if err != nil {
				return symtab.Nil, err
			}
		}
		return acc, nil
	case CallExpr:
		fn, ok := e.externals[ex.Fn]
		if !ok {
			return symtab.Nil, fmt.Errorf("external %s not registered", ex.Fn)
		}
		args := make([]symtab.Value, len(ex.Args))
		for i, a := range ex.Args {
			v, err := e.eval(a, env)
			if err != nil {
				return symtab.Nil, err
			}
			args[i] = v
		}
		v, cost, err := fn(args)
		if err != nil {
			return symtab.Nil, fmt.Errorf("external %s: %w", ex.Fn, err)
		}
		env.cost += CostExternalBase + cost
		return v, nil
	case CrlfExpr:
		return symtab.Sym("\n"), nil
	default:
		return symtab.Nil, fmt.Errorf("unknown expression %T", x)
	}
}

func arith(a symtab.Value, op byte, b symtab.Value) (symtab.Value, error) {
	if !a.IsNumber() || !b.IsNumber() {
		return symtab.Nil, fmt.Errorf("compute on non-number (%s %c %s)", a, op, b)
	}
	bothInt := a.Kind() == symtab.KindInt && b.Kind() == symtab.KindInt
	if bothInt {
		x, y := a.IntVal(), b.IntVal()
		switch op {
		case '+':
			return symtab.Int(x + y), nil
		case '-':
			return symtab.Int(x - y), nil
		case '*':
			return symtab.Int(x * y), nil
		case '/':
			if y == 0 {
				return symtab.Nil, fmt.Errorf("division by zero")
			}
			return symtab.Int(x / y), nil
		case '%':
			if y == 0 {
				return symtab.Nil, fmt.Errorf("modulus by zero")
			}
			return symtab.Int(x % y), nil
		}
	}
	x, y := a.FloatVal(), b.FloatVal()
	switch op {
	case '+':
		return symtab.Float(x + y), nil
	case '-':
		return symtab.Float(x - y), nil
	case '*':
		return symtab.Float(x * y), nil
	case '/':
		if y == 0 {
			return symtab.Nil, fmt.Errorf("division by zero")
		}
		return symtab.Float(x / y), nil
	case '%':
		return symtab.Nil, fmt.Errorf("modulus on floats")
	}
	return symtab.Nil, fmt.Errorf("unknown operator %c", op)
}
