package ops5

import (
	"fmt"
)

// Analyze performs semantic analysis over a parsed program: class and
// attribute references resolve, variable binding is consistent, element
// references are legal, and external calls are declared. Parse calls
// this automatically; it is exported for programmatically-built
// programs (SPAM generates rule sets from its knowledge base).
func Analyze(prog *Program) error {
	classes := map[string]map[string]bool{}
	for _, c := range prog.Classes {
		if _, dup := classes[c.Name]; dup {
			return fmt.Errorf("ops5: class %s declared twice", c.Name)
		}
		attrs := map[string]bool{}
		for _, a := range c.Attrs {
			if attrs[a] {
				return fmt.Errorf("ops5: class %s: duplicate attribute %s", c.Name, a)
			}
			attrs[a] = true
		}
		classes[c.Name] = attrs
	}
	externals := map[string]bool{}
	for _, e := range prog.Externals {
		externals[e] = true
	}
	names := map[string]bool{}
	for _, p := range prog.Productions {
		if names[p.Name] {
			return fmt.Errorf("ops5: production %s defined twice", p.Name)
		}
		names[p.Name] = true
		if err := analyzeProduction(p, classes, externals); err != nil {
			return err
		}
	}
	return nil
}

func analyzeProduction(p *Production, classes map[string]map[string]bool, externals map[string]bool) error {
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("ops5: production %s: %s", p.Name, fmt.Sprintf(format, args...))
	}
	if p.LHS[0].Negated {
		return fail("first condition element may not be negated")
	}

	bound := map[string]bool{}   // value variables bound by positive CEs
	elemVars := map[string]int{} // element variable -> CE index (0-based)

	for i, ce := range p.LHS {
		attrs, ok := classes[ce.Class]
		if !ok {
			return fail("condition %d: undeclared class %s", i+1, ce.Class)
		}
		if ce.ElemVar != "" {
			if ce.Negated {
				return fail("condition %d: element variable on a negated condition", i+1)
			}
			if _, dup := elemVars[ce.ElemVar]; dup {
				return fail("element variable <%s> bound twice", ce.ElemVar)
			}
			if bound[ce.ElemVar] {
				return fail("variable <%s> used as both value and element variable", ce.ElemVar)
			}
			elemVars[ce.ElemVar] = i
		}
		// Variables local to a negated CE: legal if their first occurrence
		// is an EQ term within this CE (consistency is local to the CE).
		localBound := map[string]bool{}
		for _, at := range ce.Tests {
			if !attrs[at.Attr] {
				return fail("condition %d: class %s has no attribute %s", i+1, ce.Class, at.Attr)
			}
			for _, tm := range at.Terms {
				if !tm.IsVar() {
					continue
				}
				v := tm.Var
				if _, isElem := elemVars[v]; isElem {
					return fail("element variable <%s> used as a value", v)
				}
				switch {
				case bound[v] || localBound[v]:
					// consistency test; any predicate is fine
				case tm.Pred == PredEQ:
					// first occurrence binds
					if ce.Negated {
						localBound[v] = true
					} else {
						bound[v] = true
					}
				default:
					return fail("condition %d: variable <%s> used with %s before being bound", i+1, v, tm.Pred)
				}
			}
		}
	}

	// RHS: track variables bound so far (LHS values + successive binds).
	rhsBound := map[string]bool{}
	for v := range bound {
		rhsBound[v] = true
	}
	var checkExpr func(e Expr) error
	checkExpr = func(e Expr) error {
		switch x := e.(type) {
		case VarExpr:
			if !rhsBound[x.Name] {
				if _, isElem := elemVars[x.Name]; isElem {
					return fail("element variable <%s> used in value position", x.Name)
				}
				return fail("unbound variable <%s> on RHS", x.Name)
			}
		case ComputeExpr:
			for _, op := range x.Operands {
				if err := checkExpr(op); err != nil {
					return err
				}
			}
		case CallExpr:
			if !externals[x.Fn] {
				return fail("call of undeclared external function %s", x.Fn)
			}
			for _, a := range x.Args {
				if err := checkExpr(a); err != nil {
					return err
				}
			}
		}
		return nil
	}
	checkRef := func(r ElemRef, action string) error {
		if r.Var != "" {
			if _, ok := elemVars[r.Var]; !ok {
				return fail("%s references unknown element variable <%s>", action, r.Var)
			}
			return nil
		}
		if r.Index < 1 || r.Index > len(p.LHS) {
			return fail("%s references condition %d of %d", action, r.Index, len(p.LHS))
		}
		if p.LHS[r.Index-1].Negated {
			return fail("%s references negated condition %d", action, r.Index)
		}
		return nil
	}
	checkSets := func(class string, sets []AttrSet) error {
		attrs := classes[class]
		for _, s := range sets {
			if !attrs[s.Attr] {
				return fail("class %s has no attribute %s", class, s.Attr)
			}
			if err := checkExpr(s.Expr); err != nil {
				return err
			}
		}
		return nil
	}

	for _, a := range p.RHS {
		switch act := a.(type) {
		case MakeAction:
			if _, ok := classes[act.Class]; !ok {
				return fail("make of undeclared class %s", act.Class)
			}
			if err := checkSets(act.Class, act.Sets); err != nil {
				return err
			}
		case ModifyAction:
			if err := checkRef(act.Ref, "modify"); err != nil {
				return err
			}
			var class string
			if act.Ref.Var != "" {
				class = p.LHS[elemVars[act.Ref.Var]].Class
			} else {
				class = p.LHS[act.Ref.Index-1].Class
			}
			if err := checkSets(class, act.Sets); err != nil {
				return err
			}
		case RemoveAction:
			if err := checkRef(act.Ref, "remove"); err != nil {
				return err
			}
		case BindAction:
			if err := checkExpr(act.Expr); err != nil {
				return err
			}
			rhsBound[act.Var] = true
		case WriteAction:
			for _, e := range act.Args {
				if err := checkExpr(e); err != nil {
					return err
				}
			}
		case CallAction:
			if !externals[act.Fn] {
				return fail("call of undeclared external function %s", act.Fn)
			}
			for _, e := range act.Args {
				if err := checkExpr(e); err != nil {
					return err
				}
			}
		case HaltAction:
			// nothing to check
		}
	}
	return nil
}
