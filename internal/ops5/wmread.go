package ops5

import (
	"fmt"

	"spampsm/internal/symtab"
)

// WMESpec is one initial working-memory element read from text form:
// "(class ^attr value ...)".
type WMESpec struct {
	Class string
	Sets  map[string]symtab.Value
}

// ParseWMEList reads a sequence of "(class ^attr value ...)" forms —
// the format of an initial working-memory file for the ops5run tool.
func ParseWMEList(src string) ([]WMESpec, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	var out []WMESpec
	i := 0
	cur := func() token { return toks[i] }
	for cur().kind != tokEOF {
		if cur().kind != tokLParen {
			return nil, fmt.Errorf("ops5: line %d: expected ( to start a WME, found %s", cur().line, cur())
		}
		i++
		if cur().kind != tokAtom {
			return nil, fmt.Errorf("ops5: line %d: expected class name, found %s", cur().line, cur())
		}
		spec := WMESpec{Class: cur().text, Sets: map[string]symtab.Value{}}
		i++
		for cur().kind == tokCaret {
			i++
			if cur().kind != tokAtom {
				return nil, fmt.Errorf("ops5: line %d: expected attribute name, found %s", cur().line, cur())
			}
			attr := cur().text
			i++
			if cur().kind != tokAtom {
				return nil, fmt.Errorf("ops5: line %d: expected value for ^%s, found %s", cur().line, attr, cur())
			}
			spec.Sets[attr] = symtab.Parse(cur().text)
			i++
		}
		if cur().kind != tokRParen {
			return nil, fmt.Errorf("ops5: line %d: expected ) to close WME, found %s", cur().line, cur())
		}
		i++
		out = append(out, spec)
	}
	return out, nil
}

// AssertAll asserts a list of WME specs into the engine.
func (e *Engine) AssertAll(specs []WMESpec) error {
	for _, s := range specs {
		if _, err := e.Assert(s.Class, s.Sets); err != nil {
			return err
		}
	}
	return nil
}
