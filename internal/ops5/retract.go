// Batched seed-WM retraction: the unloading half of an incremental
// update. RetractBatch is the inverse of AssertBatch — it removes a set
// of live WMEs from working memory and the Rete network with the same
// accounting discipline (the network's retract charges land in the cost
// log's Init, the unloaded volume in MemStats.Retracted*), and it
// recycles the token graveyard afterwards, since outside Run nothing
// holds a fired instantiation's bindings. ResetForUpdate builds on it to
// return a quiesced engine to the empty-WM state so a delta re-run is
// accounted — and matches — like a freshly loaded task.
package ops5

import (
	"fmt"

	"spampsm/internal/wm"
)

// RetractBatch retracts a set of live WMEs from working memory and the
// match network, semantically identical to the engine firing a remove
// for each in order. The match cost of the retraction is accounted as
// initialization (network unloading), symmetric to AssertBatch;
// MemStats.RetractedWMEs/RetractedBytes record the unloaded volume.
// Deleted tokens are recycled immediately: outside Run no caller holds
// a retracted instantiation's bindings, so the graveyard need not wait
// for the next recognize-act cycle.
func (e *Engine) RetractBatch(wmes []*wm.WME) error {
	if e.running {
		return fmt.Errorf("ops5: RetractBatch during Run")
	}
	for _, w := range wmes {
		if err := e.mem.Remove(w); err != nil {
			return err
		}
		before := e.net.Totals().Cost
		e.net.Remove(w)
		e.log.Init += e.net.Totals().Cost - before
		e.log.Mem.RetractedWMEs++
		e.log.Mem.RetractedBytes += wm.WMEBytes(len(w.Vals))
	}
	e.net.RecycleGraveyard()
	e.syncMem()
	return nil
}

// ResetForUpdate returns a quiesced engine to the empty-working-memory
// state so it can be reloaded and re-run as if freshly instantiated:
// it starts a fresh cost log and run statistics (the retract charge is
// the first cost of the new record), restarts the memory high-water
// marks from the live population, retracts the entire live working
// memory through RetractBatch, and clears the halt latch. After a
// successful reset the conflict set is empty and the Rete memories
// hold only what the compiled template holds at instantiation, so a
// subsequent AssertBatch+Run produces byte-identical results to a
// fresh engine loaded with the same seeds — the property the
// incremental-update differential oracles enforce.
//
// The reset requires every production to anchor at least one positive
// condition element (true of the SPAM knowledge base): a production
// matching on negations alone would keep a live instantiation across
// the wipe, and its fired latch would diverge from a fresh engine.
// ResetForUpdate detects that case and reports it as an error.
func (e *Engine) ResetForUpdate() error {
	if e.running {
		return fmt.Errorf("ops5: ResetForUpdate during Run")
	}
	e.log = &CostLog{}
	e.stats = RunStats{}
	e.halted = false
	e.mem.ResetPeaks()
	e.net.ResetPeaks()
	if err := e.RetractBatch(e.mem.Snapshot()); err != nil {
		return err
	}
	if n := len(e.cs.insts); n != 0 {
		return fmt.Errorf("ops5: ResetForUpdate left %d live instantiations (production with no positive condition element?)", n)
	}
	return nil
}
