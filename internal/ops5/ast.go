// Package ops5 implements the OPS5 production-system language and its
// recognize-act interpreter: lexer, parser, semantic analysis, LEX and
// MEA conflict resolution, RHS actions with external (task-related)
// function calls, and per-cycle cost accounting for the parallelism
// studies.
//
// The subset implemented is the one SPAM's knowledge base uses:
// literalize declarations with scalar attributes, productions with
// positive and negated condition elements, variables, relational
// predicates, disjunctive (<< ... >>) and conjunctive ({ ... }) tests,
// element variables, and RHS make/modify/remove/bind/write/call/halt.
package ops5

import (
	"fmt"
	"strings"
	"sync"

	"spampsm/internal/symtab"
)

// Pred is an OPS5 predicate in an attribute test.
type Pred uint8

const (
	// PredEQ is equality (the default when no predicate is written).
	PredEQ Pred = iota
	// PredNE is <>.
	PredNE
	// PredLT is <.
	PredLT
	// PredLE is <=.
	PredLE
	// PredGT is >.
	PredGT
	// PredGE is >=.
	PredGE
	// PredSame is <=>, the same-type test.
	PredSame
)

func (p Pred) String() string {
	switch p {
	case PredEQ:
		return "="
	case PredNE:
		return "<>"
	case PredLT:
		return "<"
	case PredLE:
		return "<="
	case PredGT:
		return ">"
	case PredGE:
		return ">="
	case PredSame:
		return "<=>"
	}
	return "?"
}

// Apply evaluates the predicate over two values with OPS5 semantics:
// relational predicates fail (rather than error) on non-numbers.
func (p Pred) Apply(a, b symtab.Value) bool {
	switch p {
	case PredEQ:
		return a.Equal(b)
	case PredNE:
		return !a.Equal(b)
	case PredSame:
		return a.SameType(b)
	}
	c, ok := a.Compare(b)
	if !ok {
		return false
	}
	switch p {
	case PredLT:
		return c < 0
	case PredLE:
		return c <= 0
	case PredGT:
		return c > 0
	case PredGE:
		return c >= 0
	}
	return false
}

// TestTerm is one term of an attribute test: a predicate applied to a
// constant, a variable, or (for EQ only) a disjunction of constants.
type TestTerm struct {
	Pred Pred
	// Exactly one of the following is active.
	Var  string         // variable reference, e.g. <x>
	Val  symtab.Value   // constant
	Disj []symtab.Value // << a b c >> one-of set
}

// IsVar reports whether the term references a variable.
func (t TestTerm) IsVar() bool { return t.Var != "" }

func (t TestTerm) String() string {
	var core string
	switch {
	case t.Disj != nil:
		parts := make([]string, len(t.Disj))
		for i, d := range t.Disj {
			parts[i] = d.String()
		}
		core = "<< " + strings.Join(parts, " ") + " >>"
	case t.IsVar():
		core = "<" + t.Var + ">"
	default:
		core = t.Val.String()
	}
	if t.Pred == PredEQ {
		return core
	}
	return t.Pred.String() + " " + core
}

// AttrTest is the conjunction of terms applied to one attribute of a
// condition element. A bare value is a single EQ term; { ... } groups
// several terms.
type AttrTest struct {
	Attr  string
	Terms []TestTerm
}

// CondElem is one condition element (CE) of a production LHS.
type CondElem struct {
	Negated bool
	ElemVar string // element variable from { <x> (class ...) }, or ""
	Class   string
	Tests   []AttrTest
}

func (ce *CondElem) String() string {
	var b strings.Builder
	if ce.Negated {
		b.WriteString("- ")
	}
	if ce.ElemVar != "" {
		fmt.Fprintf(&b, "{ <%s> ", ce.ElemVar)
	}
	fmt.Fprintf(&b, "(%s", ce.Class)
	for _, at := range ce.Tests {
		fmt.Fprintf(&b, " ^%s", at.Attr)
		for _, tm := range at.Terms {
			if len(at.Terms) > 1 {
				b.WriteString(" {")
			}
			fmt.Fprintf(&b, " %s", tm)
			if len(at.Terms) > 1 {
				b.WriteString(" }")
			}
		}
	}
	b.WriteString(")")
	if ce.ElemVar != "" {
		b.WriteString(" }")
	}
	return b.String()
}

// Expr is an RHS value expression.
type Expr interface {
	exprNode()
	String() string
}

// LitExpr is a constant.
type LitExpr struct{ Val symtab.Value }

// VarExpr references an LHS-bound or RHS-bound variable.
type VarExpr struct{ Name string }

// ComputeExpr is OPS5 (compute a op b op c ...), evaluated left to
// right. Ops holds len(Operands)-1 operators from "+-*//\\" (\\ is mod).
type ComputeExpr struct {
	Operands []Expr
	Ops      []byte
}

// CallExpr invokes a registered external function in value position.
type CallExpr struct {
	Fn   string
	Args []Expr
}

// CrlfExpr is the (crlf) write directive.
type CrlfExpr struct{}

func (LitExpr) exprNode()     {}
func (VarExpr) exprNode()     {}
func (ComputeExpr) exprNode() {}
func (CallExpr) exprNode()    {}
func (CrlfExpr) exprNode()    {}

func (e LitExpr) String() string { return e.Val.String() }
func (e VarExpr) String() string { return "<" + e.Name + ">" }
func (e ComputeExpr) String() string {
	var b strings.Builder
	b.WriteString("(compute")
	for i, op := range e.Operands {
		if i > 0 {
			fmt.Fprintf(&b, " %c", e.Ops[i-1])
		}
		fmt.Fprintf(&b, " %s", op)
	}
	b.WriteString(")")
	return b.String()
}
func (e CallExpr) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(%s", e.Fn)
	for _, a := range e.Args {
		fmt.Fprintf(&b, " %s", a)
	}
	b.WriteString(")")
	return b.String()
}
func (CrlfExpr) String() string { return "(crlf)" }

// AttrSet assigns one attribute in a make/modify action.
type AttrSet struct {
	Attr string
	Expr Expr
}

// ElemRef names a matched CE on the RHS: by 1-based position or by
// element variable.
type ElemRef struct {
	Index int    // 1-based CE index; 0 when Var is used
	Var   string // element variable name
}

func (r ElemRef) String() string {
	if r.Var != "" {
		return "<" + r.Var + ">"
	}
	return fmt.Sprintf("%d", r.Index)
}

// Action is an RHS action.
type Action interface {
	actionNode()
	String() string
}

// MakeAction asserts a new WME.
type MakeAction struct {
	Class string
	Sets  []AttrSet
}

// ModifyAction retracts a matched WME and re-asserts it with changed
// attributes (a new timetag, per OPS5 semantics).
type ModifyAction struct {
	Ref  ElemRef
	Sets []AttrSet
}

// RemoveAction retracts a matched WME.
type RemoveAction struct{ Ref ElemRef }

// BindAction binds an RHS variable to the value of an expression.
type BindAction struct {
	Var  string
	Expr Expr
}

// WriteAction prints its arguments.
type WriteAction struct{ Args []Expr }

// CallAction invokes a registered external function for effect; this
// is how SPAM performs its task-related geometric computation.
type CallAction struct {
	Fn   string
	Args []Expr
}

// HaltAction stops the recognize-act loop.
type HaltAction struct{}

func (MakeAction) actionNode()   {}
func (ModifyAction) actionNode() {}
func (RemoveAction) actionNode() {}
func (BindAction) actionNode()   {}
func (WriteAction) actionNode()  {}
func (CallAction) actionNode()   {}
func (HaltAction) actionNode()   {}

func setsString(sets []AttrSet) string {
	var b strings.Builder
	for _, s := range sets {
		fmt.Fprintf(&b, " ^%s %s", s.Attr, s.Expr)
	}
	return b.String()
}

func (a MakeAction) String() string { return fmt.Sprintf("(make %s%s)", a.Class, setsString(a.Sets)) }
func (a ModifyAction) String() string {
	return fmt.Sprintf("(modify %s%s)", a.Ref, setsString(a.Sets))
}
func (a RemoveAction) String() string { return fmt.Sprintf("(remove %s)", a.Ref) }
func (a BindAction) String() string   { return fmt.Sprintf("(bind <%s> %s)", a.Var, a.Expr) }
func (a WriteAction) String() string {
	var b strings.Builder
	b.WriteString("(write")
	for _, e := range a.Args {
		fmt.Fprintf(&b, " %s", e)
	}
	b.WriteString(")")
	return b.String()
}
func (a CallAction) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(call %s", a.Fn)
	for _, e := range a.Args {
		fmt.Fprintf(&b, " %s", e)
	}
	b.WriteString(")")
	return b.String()
}
func (HaltAction) String() string { return "(halt)" }

// Production is one if-then rule.
type Production struct {
	Name string
	LHS  []*CondElem
	RHS  []Action
	// Specificity is the total number of attribute test terms plus class
	// tests, used by conflict resolution.
	Specificity int
}

func (p *Production) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(p %s", p.Name)
	for _, ce := range p.LHS {
		fmt.Fprintf(&b, "\n   %s", ce)
	}
	b.WriteString("\n  -->")
	for _, a := range p.RHS {
		fmt.Fprintf(&b, "\n   %s", a)
	}
	b.WriteString(")")
	return b.String()
}

// ClassDecl is a literalize declaration.
type ClassDecl struct {
	Name  string
	Attrs []string
}

// Program is a parsed OPS5 source unit.
//
// A Program memoizes its compiled variants (see CompiledProgram), so
// it must not be copied by value once engines have been built from it;
// the parser and all call sites handle Programs by pointer.
type Program struct {
	Classes     []ClassDecl
	Productions []*Production
	Strategy    string   // "lex" (default) or "mea"
	Externals   []string // declared external function names

	// Compiled-variant cache, keyed on the compile-time switches
	// (naive match, capture). Guarded by compileMu; see compiled.go.
	compileMu sync.Mutex
	variants  map[compileKey]*CompiledProgram

	// Seed-class cache (seed.go): attribute->slot maps for batched
	// seed construction, built once per class name.
	seedMu      sync.Mutex
	seedClasses map[string]*SeedClass
}

// Production looks up a production by name, or nil.
func (pr *Program) Production(name string) *Production {
	for _, p := range pr.Productions {
		if p.Name == name {
			return p
		}
	}
	return nil
}
