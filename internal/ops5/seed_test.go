package ops5

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"spampsm/internal/symtab"
)

// Engine-level seed-load oracle: AssertBatch — batched, per-WME via
// WithPerWMEAssert, or freely interleaved with Assert — must leave the
// engine in the identical state as asserting every row with Assert:
// same working-memory snapshot and timetags, same conflict set, same
// match counters and Init charge, and the same subsequent run.

// seedRow is one seed WM row in both spellings: the Assert argument
// map and the prebuilt Seed.
type seedRow struct {
	class string
	sets  map[string]symtab.Value
	seed  Seed
}

// diffSeedRows builds the diffPrograms seed WM as rows. Node rows are
// built as shared seeds (digest + memoized routing), link rows as
// plain ones, so both insertion paths are exercised in every batch.
func diffSeedRows(t *testing.T, prog *Program) []seedRow {
	t.Helper()
	var rows []seedRow
	add := func(class string, shared bool, sets map[string]symtab.Value) {
		sc, err := prog.SeedClass(class)
		if err != nil {
			t.Fatal(err)
		}
		var s Seed
		if shared {
			s, err = sc.SharedSeed(sets)
		} else {
			s, err = sc.Seed(sets)
		}
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, seedRow{class: class, sets: sets, seed: s})
	}
	colors := []string{"blue", "red", "blue", "green", "blue", "red"}
	for i := 0; i < 6; i++ {
		add("node", true, map[string]symtab.Value{
			"id": symtab.Int(int64(i)), "color": symtab.Sym(colors[i]),
		})
	}
	if hasClass(prog, "link") {
		for _, l := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {1, 4}, {2, 0}} {
			add("link", false, map[string]symtab.Value{
				"from": symtab.Int(int64(l[0])), "to": symtab.Int(int64(l[1])),
			})
		}
	}
	return rows
}

func hasClass(prog *Program, name string) bool {
	for _, c := range prog.Classes {
		if c.Name == name {
			return true
		}
	}
	return false
}

// engineState snapshots everything the oracle compares.
type engineState struct {
	dump     string
	conflict []string
	counters string
	init     float64
	timetags []int
}

func snapshot(e *Engine) engineState {
	var dump bytes.Buffer
	e.DumpWM(&dump)
	var tags []int
	for _, w := range e.WMEs("node") {
		tags = append(tags, w.TimeTag)
	}
	return engineState{
		dump:     dump.String(),
		conflict: e.ConflictSet(),
		counters: fmt.Sprintf("%+v", e.MatchCounters()),
		init:     e.Log().Init,
		timetags: tags,
	}
}

func statesEqual(t *testing.T, label string, ref, got engineState) {
	t.Helper()
	if ref.dump != got.dump {
		t.Errorf("%s: WM snapshot differs:\nref:\n%s\ngot:\n%s", label, ref.dump, got.dump)
	}
	if !reflect.DeepEqual(ref.conflict, got.conflict) {
		t.Errorf("%s: conflict set differs:\nref: %v\ngot: %v", label, ref.conflict, got.conflict)
	}
	if ref.counters != got.counters {
		t.Errorf("%s: match counters differ:\nref: %s\ngot: %s", label, ref.counters, got.counters)
	}
	if ref.init != got.init {
		t.Errorf("%s: Init charge differs: ref=%g got=%g", label, ref.init, got.init)
	}
	if !reflect.DeepEqual(ref.timetags, got.timetags) {
		t.Errorf("%s: timetags differ: ref=%v got=%v", label, ref.timetags, got.timetags)
	}
}

// TestDifferentialAssertBatchVsAssert loads the same seed set four
// ways — per-row Assert, AssertBatch cold, AssertBatch warm (template
// route memo already populated), and AssertBatch under
// WithPerWMEAssert — then runs each engine to quiescence. All four
// must agree on WM, conflict set, counters, Init, firing trace and run
// statistics.
func TestDifferentialAssertBatchVsAssert(t *testing.T) {
	for _, tc := range diffPrograms {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := Parse(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			rows := diffSeedRows(t, prog)

			load := func(name string, opts ...Option) (*Engine, *bytes.Buffer, engineState) {
				var trace bytes.Buffer
				e, err := NewEngine(prog, append(opts, WithTrace(&trace))...)
				if err != nil {
					t.Fatal(err)
				}
				switch name {
				case "assert":
					for _, r := range rows {
						if _, err := e.Assert(r.class, r.sets); err != nil {
							t.Fatal(err)
						}
					}
				default:
					seeds := make([]Seed, len(rows))
					for i, r := range rows {
						seeds[i] = r.seed
					}
					if err := e.AssertBatch(seeds); err != nil {
						t.Fatal(err)
					}
				}
				return e, &trace, snapshot(e)
			}

			refEng, refTrace, ref := load("assert")
			if _, err := refEng.Run(5000); err != nil {
				t.Fatal(err)
			}
			refStats := refEng.Stats()
			for _, variant := range []struct {
				name string
				opts []Option
			}{
				{"batched-cold", nil},
				{"batched-warm", nil},
				{"per-wme", []Option{WithPerWMEAssert()}},
			} {
				e, trace, got := load(variant.name, variant.opts...)
				statesEqual(t, variant.name, ref, got)
				if _, err := e.Run(5000); err != nil {
					t.Fatal(err)
				}
				if trace.String() != refTrace.String() {
					t.Errorf("%s: firing trace differs from Assert reference", variant.name)
				}
				if sgot := e.Stats(); refStats != sgot {
					t.Errorf("%s: run stats differ:\nref: %+v\ngot: %+v", variant.name, refStats, sgot)
				}
			}
		})
	}
}

// TestDifferentialInterleavedAssertBatch is the property-style oracle
// for interleaved Assert/AssertBatch: for random permutations of the
// seed set split into random runs of Assert calls and AssertBatch
// chunks, the working-memory snapshot, WME timetags, conflict set,
// match counters and Init charge must equal the all-Assert reference
// for the same permutation.
func TestDifferentialInterleavedAssertBatch(t *testing.T) {
	for _, tc := range diffPrograms {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := Parse(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			rows := diffSeedRows(t, prog)
			rng := rand.New(rand.NewSource(1990))
			for trial := 0; trial < 25; trial++ {
				perm := rng.Perm(len(rows))

				ref, err := NewEngine(prog)
				if err != nil {
					t.Fatal(err)
				}
				for _, i := range perm {
					if _, err := ref.Assert(rows[i].class, rows[i].sets); err != nil {
						t.Fatal(err)
					}
				}

				mixed, err := NewEngine(prog)
				if err != nil {
					t.Fatal(err)
				}
				for at := 0; at < len(perm); {
					n := 1 + rng.Intn(4)
					if at+n > len(perm) {
						n = len(perm) - at
					}
					chunk := perm[at : at+n]
					at += n
					if rng.Intn(2) == 0 {
						for _, i := range chunk {
							if _, err := mixed.Assert(rows[i].class, rows[i].sets); err != nil {
								t.Fatal(err)
							}
						}
					} else {
						seeds := make([]Seed, len(chunk))
						for k, i := range chunk {
							seeds[k] = rows[i].seed
						}
						if err := mixed.AssertBatch(seeds); err != nil {
							t.Fatal(err)
						}
					}
				}
				statesEqual(t, fmt.Sprintf("trial %d", trial), snapshot(ref), snapshot(mixed))
			}
		})
	}
}
