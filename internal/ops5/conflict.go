package ops5

import (
	"sort"

	"spampsm/internal/rete"
)

// Strategy selects the OPS5 conflict-resolution strategy.
type Strategy uint8

const (
	// LEX orders by recency of all timetags, then specificity.
	LEX Strategy = iota
	// MEA orders by the recency of the WME matching the first condition
	// element, then as LEX.
	MEA
)

// ParseStrategy converts a strategy name ("lex" or "mea").
func ParseStrategy(s string) Strategy {
	if s == "mea" {
		return MEA
	}
	return LEX
}

// instantiation is one conflict-set entry: a production matched by a
// specific token.
type instantiation struct {
	cp    *compiledProd
	token *rete.Token
	tags  []int // timetags of the positive-CE WMEs, sorted descending
	first int   // timetag of the first CE's WME (for MEA)
	seq   int   // creation order, for deterministic tie-breaking
	fired bool
}

// conflictSet holds the live instantiations. It implements rete.Agenda.
type conflictSet struct {
	insts map[*rete.Token]*instantiation
	seq   int
	// compares counts conflict-resolution comparisons for cost
	// accounting; the engine reads and resets it each cycle.
	compares int
}

func newConflictSet() *conflictSet {
	return &conflictSet{insts: map[*rete.Token]*instantiation{}}
}

// Activate implements rete.Agenda.
func (cs *conflictSet) Activate(p *rete.PNode, t *rete.Token) {
	cp := p.Data.(*compiledProd)
	wmes := t.WMEs()
	tags := make([]int, len(wmes))
	for i, w := range wmes {
		tags[i] = w.TimeTag
	}
	first := 0
	if len(tags) > 0 {
		first = tags[0]
	}
	sort.Sort(sort.Reverse(sort.IntSlice(tags)))
	cs.seq++
	cs.insts[t] = &instantiation{cp: cp, token: t, tags: tags, first: first, seq: cs.seq}
}

// Deactivate implements rete.Agenda.
func (cs *conflictSet) Deactivate(p *rete.PNode, t *rete.Token) {
	delete(cs.insts, t)
}

// Size returns the number of live instantiations (fired or not).
func (cs *conflictSet) Size() int { return len(cs.insts) }

// lexLess reports whether a's tag list is less recent than b's under
// the LEX ordering: compare descending-sorted timetags pairwise; the
// first larger tag wins; if one list is a prefix of the other, the
// longer list wins.
func lexLess(a, b []int) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// better reports whether x dominates y under the strategy.
func better(x, y *instantiation, strat Strategy) bool {
	if strat == MEA && x.first != y.first {
		return x.first > y.first
	}
	xt, yt := x.tags, y.tags
	if lexLess(xt, yt) {
		return false
	}
	if lexLess(yt, xt) {
		return true
	}
	// Equal recency: specificity.
	if x.cp.prod.Specificity != y.cp.prod.Specificity {
		return x.cp.prod.Specificity > y.cp.prod.Specificity
	}
	// Arbitrary in OPS5; deterministic here: earliest activation wins.
	return x.seq < y.seq
}

// Resolve picks the dominant unfired instantiation, or nil when the
// conflict set offers nothing (quiescence).
func (cs *conflictSet) Resolve(strat Strategy) *instantiation {
	var best *instantiation
	for _, in := range cs.insts {
		if in.fired {
			continue
		}
		cs.compares++
		if best == nil || better(in, best, strat) {
			best = in
		}
	}
	return best
}

// takeCompares returns and resets the comparison counter.
func (cs *conflictSet) takeCompares() int {
	c := cs.compares
	cs.compares = 0
	return c
}
