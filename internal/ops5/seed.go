// Batched seed-WM distribution. A task runtime loads every engine
// with a seed working memory before Run; Assert pays a map-backed
// wm.Make plus a full alpha-network walk per WME. AssertBatch instead
// takes prebuilt Seed values — slot-ordered vectors the caller
// constructs once and shares across every engine that needs them — and
// hands the whole set to rete.Network.InsertBatch, which routes shared
// seeds through the compiled template's memoized acceptance sets. The
// simulated cost accounting is unchanged (the batch's Init charge is
// the sum of the per-Assert charges; the differential oracles prove
// byte equality).
package ops5

import (
	"fmt"

	"spampsm/internal/rete"
	"spampsm/internal/symtab"
	"spampsm/internal/wm"
)

// WithPerWMEAssert makes AssertBatch fall back to the per-WME Assert
// path (individual wm.Make + Network.Add, no route memoization): the
// escape hatch the batched-vs-unbatched differential oracle and the
// seed-load benchmark baseline select.
func WithPerWMEAssert() Option { return func(e *Engine) { e.perWMEAssert = true } }

// A Seed is one prebuilt seed WME: a class and its slot-ordered value
// vector. Vals is immutable once built — it is adopted directly by
// every engine the seed is asserted into (wm.Memory.MakeVals), so one
// vector backs the WME in all of them. A non-empty Digest (SharedSeed)
// declares the seed reusable across engines and routes it through the
// compiled template's memoized alpha acceptance sets; a plain Seed
// (empty Digest) is asserted by an ordinary alpha-network walk and
// never populates the route cache.
type Seed struct {
	Class  string
	Vals   []symtab.Value
	Digest string
}

// SeedClass is the slot layout of one declared class, cached on the
// Program so builders resolve attribute names to slots once per class
// rather than once per assertion.
type SeedClass struct {
	name  string
	slots map[string]int
	nAttr int
}

// Name returns the declared class name.
func (sc *SeedClass) Name() string { return sc.name }

// SeedClass returns the (cached) slot layout of the named declared
// class. Safe for concurrent use.
func (pr *Program) SeedClass(name string) (*SeedClass, error) {
	pr.seedMu.Lock()
	defer pr.seedMu.Unlock()
	if sc, ok := pr.seedClasses[name]; ok {
		return sc, nil
	}
	for _, c := range pr.Classes {
		if c.Name != name {
			continue
		}
		sc := &SeedClass{name: name, slots: make(map[string]int, len(c.Attrs)), nAttr: len(c.Attrs)}
		for i, a := range c.Attrs {
			sc.slots[a] = i
		}
		if pr.seedClasses == nil {
			pr.seedClasses = map[string]*SeedClass{}
		}
		pr.seedClasses[name] = sc
		return sc, nil
	}
	return nil, fmt.Errorf("ops5: seed of undeclared class %s", name)
}

// Seed builds a plain (per-task) seed: unset attributes are Nil, as in
// Assert. Use SharedSeed for values that recur across engines.
func (sc *SeedClass) Seed(sets map[string]symtab.Value) (Seed, error) {
	vals := make([]symtab.Value, sc.nAttr)
	for a, v := range sets {
		i, ok := sc.slots[a]
		if !ok {
			return Seed{}, fmt.Errorf("ops5: class %s has no attribute %s", sc.name, a)
		}
		vals[i] = v
	}
	return Seed{Class: sc.name, Vals: vals}, nil
}

// SharedSeed builds a seed declared shareable across engines: its
// routing digest is computed here, once, so every engine that asserts
// it replays the template's memoized alpha acceptance set instead of
// re-running the constant tests.
func (sc *SeedClass) SharedSeed(sets map[string]symtab.Value) (Seed, error) {
	s, err := sc.Seed(sets)
	if err != nil {
		return Seed{}, err
	}
	s.Digest = rete.RouteDigest(s.Class, s.Vals)
	return s, nil
}

// AssertBatch asserts a seed set into working memory, semantically
// identical to asserting each seed in order with Assert: same WMEs and
// timetags, same conflict set, same Counters, same Init charge. The
// batch path builds the WMEs without per-assertion attribute maps and
// lets shared seeds (non-empty Digest) skip the constant-test walk via
// the template route memo; WithPerWMEAssert selects the reference
// per-WME path instead.
func (e *Engine) AssertBatch(seeds []Seed) error {
	if e.running {
		return fmt.Errorf("ops5: AssertBatch during Run")
	}
	if e.perWMEAssert {
		for _, s := range seeds {
			w, err := e.mem.MakeVals(s.Class, s.Vals)
			if err != nil {
				return err
			}
			before := e.net.Totals().Cost
			e.net.Add(w)
			e.log.Init += e.net.Totals().Cost - before
			e.log.Mem.SeedWMEs++
			e.log.Mem.SeedBytes += wm.WMEBytes(len(w.Vals))
		}
		e.syncMem()
		return nil
	}
	wmes := e.batchWMEs[:0]
	digests := e.batchDigests[:0]
	for _, s := range seeds {
		w, err := e.mem.MakeVals(s.Class, s.Vals)
		if err != nil {
			return err
		}
		wmes = append(wmes, w)
		digests = append(digests, s.Digest)
		e.log.Mem.SeedWMEs++
		e.log.Mem.SeedBytes += wm.WMEBytes(len(s.Vals))
	}
	before := e.net.Totals().Cost
	e.net.InsertBatch(wmes, digests)
	e.log.Init += e.net.Totals().Cost - before
	e.batchWMEs = wmes[:0]
	e.batchDigests = digests[:0]
	e.syncMem()
	return nil
}
