package ops5

import (
	"fmt"
	"strconv"

	"spampsm/internal/symtab"
)

// Parse parses OPS5 source text into a Program and runs semantic
// analysis over it.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	if err := Analyze(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse parses source that is known to be valid (generated rule
// sets); it panics on error.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) peek() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("ops5: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokKind) (token, error) {
	if p.cur().kind != k {
		return token{}, p.errf("expected %s, found %s", k, p.cur())
	}
	return p.advance(), nil
}

func (p *parser) expectAtom(what string) (string, error) {
	if p.cur().kind != tokAtom {
		return "", p.errf("expected %s, found %s", what, p.cur())
	}
	return p.advance().text, nil
}

func (p *parser) program() (*Program, error) {
	prog := &Program{Strategy: "lex"}
	for p.cur().kind != tokEOF {
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		head, err := p.expectAtom("declaration head")
		if err != nil {
			return nil, err
		}
		switch head {
		case "literalize":
			name, err := p.expectAtom("class name")
			if err != nil {
				return nil, err
			}
			var attrs []string
			for p.cur().kind == tokAtom {
				attrs = append(attrs, p.advance().text)
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			prog.Classes = append(prog.Classes, ClassDecl{Name: name, Attrs: attrs})
		case "strategy":
			s, err := p.expectAtom("strategy name")
			if err != nil {
				return nil, err
			}
			if s != "lex" && s != "mea" {
				return nil, p.errf("unknown strategy %q (want lex or mea)", s)
			}
			prog.Strategy = s
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
		case "external":
			for p.cur().kind == tokAtom {
				prog.Externals = append(prog.Externals, p.advance().text)
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
		case "p":
			prod, err := p.production()
			if err != nil {
				return nil, err
			}
			prog.Productions = append(prog.Productions, prod)
		default:
			return nil, p.errf("unknown top-level form %q", head)
		}
	}
	return prog, nil
}

func (p *parser) production() (*Production, error) {
	name, err := p.expectAtom("production name")
	if err != nil {
		return nil, err
	}
	prod := &Production{Name: name}
	for p.cur().kind != tokArrow {
		ce, err := p.condElem()
		if err != nil {
			return nil, fmt.Errorf("%w (in production %s)", err, name)
		}
		prod.LHS = append(prod.LHS, ce)
	}
	p.advance() // -->
	for p.cur().kind != tokRParen {
		acts, err := p.action()
		if err != nil {
			return nil, fmt.Errorf("%w (in production %s)", err, name)
		}
		prod.RHS = append(prod.RHS, acts...)
	}
	p.advance() // )
	if len(prod.LHS) == 0 {
		return nil, fmt.Errorf("ops5: production %s has an empty LHS", name)
	}
	prod.Specificity = specificity(prod)
	return prod, nil
}

func specificity(prod *Production) int {
	n := 0
	for _, ce := range prod.LHS {
		n++ // the class test
		for _, at := range ce.Tests {
			n += len(at.Terms)
		}
	}
	return n
}

func (p *parser) condElem() (*CondElem, error) {
	negated := false
	if p.cur().kind == tokMinus {
		negated = true
		p.advance()
	}
	switch p.cur().kind {
	case tokLBrace:
		p.advance()
		var elemVar string
		var ce *CondElem
		var err error
		// { <x> (class ...) } or { (class ...) <x> }
		if p.cur().kind == tokVar {
			elemVar = p.advance().text
			ce, err = p.pattern()
			if err != nil {
				return nil, err
			}
		} else {
			ce, err = p.pattern()
			if err != nil {
				return nil, err
			}
			if p.cur().kind != tokVar {
				return nil, p.errf("expected element variable in { } condition, found %s", p.cur())
			}
			elemVar = p.advance().text
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return nil, err
		}
		ce.ElemVar = elemVar
		ce.Negated = negated
		return ce, nil
	case tokLParen:
		ce, err := p.pattern()
		if err != nil {
			return nil, err
		}
		ce.Negated = negated
		return ce, nil
	default:
		return nil, p.errf("expected condition element, found %s", p.cur())
	}
}

// pattern parses "(class ^attr test ...)".
func (p *parser) pattern() (*CondElem, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	class, err := p.expectAtom("class name")
	if err != nil {
		return nil, err
	}
	ce := &CondElem{Class: class}
	for p.cur().kind == tokCaret {
		p.advance()
		attr, err := p.expectAtom("attribute name")
		if err != nil {
			return nil, err
		}
		terms, err := p.attrTerms()
		if err != nil {
			return nil, err
		}
		ce.Tests = append(ce.Tests, AttrTest{Attr: attr, Terms: terms})
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return ce, nil
}

// attrTerms parses the value position of ^attr: a single term or a
// conjunctive { term ... } group.
func (p *parser) attrTerms() ([]TestTerm, error) {
	if p.cur().kind == tokLBrace {
		p.advance()
		var terms []TestTerm
		for p.cur().kind != tokRBrace {
			t, err := p.term()
			if err != nil {
				return nil, err
			}
			terms = append(terms, t)
		}
		p.advance() // }
		if len(terms) == 0 {
			return nil, p.errf("empty { } test group")
		}
		return terms, nil
	}
	t, err := p.term()
	if err != nil {
		return nil, err
	}
	return []TestTerm{t}, nil
}

// term parses one test term: [pred] value | << constants >>.
func (p *parser) term() (TestTerm, error) {
	pred := PredEQ
	if p.cur().kind == tokPred {
		switch p.advance().text {
		case "=":
			pred = PredEQ
		case "<>":
			pred = PredNE
		case "<":
			pred = PredLT
		case "<=":
			pred = PredLE
		case ">":
			pred = PredGT
		case ">=":
			pred = PredGE
		case "<=>":
			pred = PredSame
		}
	}
	switch p.cur().kind {
	case tokDLAngle:
		if pred != PredEQ {
			return TestTerm{}, p.errf("disjunction << >> allows only equality")
		}
		p.advance()
		var disj []symtab.Value
		for p.cur().kind == tokAtom {
			disj = append(disj, symtab.Parse(p.advance().text))
		}
		if _, err := p.expect(tokDRAngle); err != nil {
			return TestTerm{}, err
		}
		if len(disj) == 0 {
			return TestTerm{}, p.errf("empty << >> disjunction")
		}
		return TestTerm{Pred: PredEQ, Disj: disj}, nil
	case tokVar:
		return TestTerm{Pred: pred, Var: p.advance().text}, nil
	case tokAtom:
		return TestTerm{Pred: pred, Val: symtab.Parse(p.advance().text)}, nil
	default:
		return TestTerm{}, p.errf("expected test value, found %s", p.cur())
	}
}

// action parses one RHS action form. It returns a slice because a
// single (remove a b c) form expands to one action per reference.
func (p *parser) action() ([]Action, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	head, err := p.expectAtom("action name")
	if err != nil {
		return nil, err
	}
	one := func(a Action) []Action { return []Action{a} }
	switch head {
	case "make":
		class, err := p.expectAtom("class name")
		if err != nil {
			return nil, err
		}
		sets, err := p.attrSets()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return one(MakeAction{Class: class, Sets: sets}), nil
	case "modify":
		ref, err := p.elemRef()
		if err != nil {
			return nil, err
		}
		sets, err := p.attrSets()
		if err != nil {
			return nil, err
		}
		if len(sets) == 0 {
			return nil, p.errf("modify with no attribute changes")
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return one(ModifyAction{Ref: ref, Sets: sets}), nil
	case "remove":
		// OPS5 allows several element references in one remove; they
		// are parsed into one action per reference.
		var refs []ElemRef
		for p.cur().kind != tokRParen {
			ref, err := p.elemRef()
			if err != nil {
				return nil, err
			}
			refs = append(refs, ref)
		}
		p.advance()
		if len(refs) == 0 {
			return nil, p.errf("remove with no element references")
		}
		acts := make([]Action, len(refs))
		for i, r := range refs {
			acts[i] = RemoveAction{Ref: r}
		}
		return acts, nil
	case "bind":
		if p.cur().kind != tokVar {
			return nil, p.errf("bind expects a variable, found %s", p.cur())
		}
		name := p.advance().text
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return one(BindAction{Var: name, Expr: e}), nil
	case "write":
		var args []Expr
		for p.cur().kind != tokRParen {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, e)
		}
		p.advance()
		return one(WriteAction{Args: args}), nil
	case "call":
		fn, err := p.expectAtom("function name")
		if err != nil {
			return nil, err
		}
		var args []Expr
		for p.cur().kind != tokRParen {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, e)
		}
		p.advance()
		return one(CallAction{Fn: fn, Args: args}), nil
	case "halt":
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return one(HaltAction{}), nil
	default:
		return nil, p.errf("unknown action %q", head)
	}
}

func (p *parser) attrSets() ([]AttrSet, error) {
	var sets []AttrSet
	for p.cur().kind == tokCaret {
		p.advance()
		attr, err := p.expectAtom("attribute name")
		if err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		sets = append(sets, AttrSet{Attr: attr, Expr: e})
	}
	return sets, nil
}

func (p *parser) elemRef() (ElemRef, error) {
	switch p.cur().kind {
	case tokVar:
		return ElemRef{Var: p.advance().text}, nil
	case tokAtom:
		t := p.advance()
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 1 {
			return ElemRef{}, p.errf("element reference must be a positive integer or element variable, found %q", t.text)
		}
		return ElemRef{Index: n}, nil
	default:
		return ElemRef{}, p.errf("expected element reference, found %s", p.cur())
	}
}

// isComputeOp reports whether an action/expr token is a compute operator.
func isComputeOp(t token) (byte, bool) {
	if t.kind == tokMinus {
		return '-', true
	}
	if t.kind == tokAtom {
		switch t.text {
		case "+":
			return '+', true
		case "*":
			return '*', true
		case "//":
			return '/', true
		case "\\\\", "\\":
			return '%', true
		}
	}
	return 0, false
}

func (p *parser) expr() (Expr, error) {
	switch p.cur().kind {
	case tokVar:
		return VarExpr{Name: p.advance().text}, nil
	case tokAtom:
		return LitExpr{Val: symtab.Parse(p.advance().text)}, nil
	case tokLParen:
		p.advance()
		head, err := p.expectAtom("expression head")
		if err != nil {
			return nil, err
		}
		switch head {
		case "crlf":
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return CrlfExpr{}, nil
		case "compute":
			first, err := p.expr()
			if err != nil {
				return nil, err
			}
			ce := ComputeExpr{Operands: []Expr{first}}
			for p.cur().kind != tokRParen {
				op, ok := isComputeOp(p.cur())
				if !ok {
					return nil, p.errf("expected compute operator, found %s", p.cur())
				}
				p.advance()
				operand, err := p.expr()
				if err != nil {
					return nil, err
				}
				ce.Ops = append(ce.Ops, op)
				ce.Operands = append(ce.Operands, operand)
			}
			p.advance()
			return ce, nil
		default:
			// External function in value position.
			var args []Expr
			for p.cur().kind != tokRParen {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, e)
			}
			p.advance()
			return CallExpr{Fn: head, Args: args}, nil
		}
	default:
		return nil, p.errf("expected expression, found %s", p.cur())
	}
}
