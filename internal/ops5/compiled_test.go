package ops5

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"spampsm/internal/rete"
	"spampsm/internal/symtab"
)

// Differential oracle for the compile-once template path: an engine
// instantiated from a Program's cached CompiledProgram must be
// byte-identical — firing trace, final working memory, match counters
// and run statistics — to an engine that recompiles the program from
// scratch (WithFreshCompile), for both matchers.

// runDiffOn builds one engine on prog with the given options, seeds
// the differential working memory, runs it to quiescence and returns
// the observables.
func runDiffOn(t *testing.T, prog *Program, opts ...Option) (string, string, rete.Counters, RunStats) {
	t.Helper()
	var trace bytes.Buffer
	opts = append(opts, WithTrace(&trace))
	e, err := NewEngine(prog, opts...)
	if err != nil {
		t.Fatal(err)
	}
	seedDiffWM(t, e)
	if _, err := e.Run(5000); err != nil {
		t.Fatal(err)
	}
	var dump bytes.Buffer
	e.DumpWM(&dump)
	return trace.String(), dump.String(), e.MatchCounters(), e.Stats()
}

func TestEngineDifferentialTemplateVsFreshCompile(t *testing.T) {
	for _, tc := range diffPrograms {
		for _, naive := range []bool{false, true} {
			name := tc.name + "/indexed"
			if naive {
				name = tc.name + "/naive"
			}
			t.Run(name, func(t *testing.T) {
				prog, err := Parse(tc.src)
				if err != nil {
					t.Fatal(err)
				}
				matcher := func(extra ...Option) []Option {
					if naive {
						return append(extra, WithNaiveMatch())
					}
					return extra
				}
				fTrace, fWM, fCtr, fStats := runDiffOn(t, prog, matcher(WithFreshCompile())...)
				if fTrace == "" {
					t.Fatal("trace empty: program did not fire")
				}
				// Two successive instantiations of the same cached template:
				// both must match the fresh compile — the second also proves
				// the first run left no state behind in the shared template.
				for inst := 0; inst < 2; inst++ {
					cTrace, cWM, cCtr, cStats := runDiffOn(t, prog, matcher()...)
					if cTrace != fTrace {
						t.Errorf("instance %d: firing traces differ:\ntemplate:\n%s\nfresh:\n%s", inst, cTrace, fTrace)
					}
					if cWM != fWM {
						t.Errorf("instance %d: final working memories differ:\ntemplate:\n%s\nfresh:\n%s", inst, cWM, fWM)
					}
					if cCtr != fCtr {
						t.Errorf("instance %d: match counters differ:\ntemplate: %+v\nfresh:    %+v", inst, cCtr, fCtr)
					}
					if cStats != fStats {
						t.Errorf("instance %d: run stats differ:\ntemplate: %+v\nfresh:    %+v", inst, cStats, fStats)
					}
				}
			})
		}
	}
}

// TestCompiledProgramVariantCache checks that NewEngine reuses one
// compiled variant per (naive, capture) combination instead of
// recompiling, and that WithFreshCompile bypasses the cache.
func TestCompiledProgramVariantCache(t *testing.T) {
	prog, err := Parse(diffPrograms[0].src)
	if err != nil {
		t.Fatal(err)
	}
	combos := [][]Option{
		nil,
		{WithNaiveMatch()},
		{WithCapture()},
		{WithNaiveMatch(), WithCapture()},
	}
	for _, opts := range combos {
		a := mustNewEngine(t, prog, opts...)
		b := mustNewEngine(t, prog, opts...)
		if a.net.Template() != b.net.Template() {
			t.Errorf("opts %v: two engines did not share one template", opts)
		}
		fresh := mustNewEngine(t, prog, append([]Option{WithFreshCompile()}, opts...)...)
		if fresh.net.Template() == a.net.Template() {
			t.Errorf("opts %v: WithFreshCompile reused the cached template", opts)
		}
	}
	if len(prog.variants) != len(combos) {
		t.Errorf("program caches %d variants, want %d", len(prog.variants), len(combos))
	}
	indexed := mustNewEngine(t, prog)
	naive := mustNewEngine(t, prog, WithNaiveMatch())
	if indexed.net.Template() == naive.net.Template() {
		t.Error("indexed and naive engines share one template; keys must separate them")
	}
}

func mustNewEngine(t *testing.T, prog *Program, opts ...Option) *Engine {
	t.Helper()
	e, err := NewEngine(prog, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestConcurrentEngineInstantiation hammers one shared Program from
// many goroutines — mixed matchers, so both cached variants are
// instantiated concurrently — and checks every run reproduces the
// single-threaded reference byte for byte. Run under -race this also
// proves templates are data-race-free across instances.
func TestConcurrentEngineInstantiation(t *testing.T) {
	prog, err := Parse(diffPrograms[0].src)
	if err != nil {
		t.Fatal(err)
	}
	type obs struct {
		trace, wm string
		ctr       rete.Counters
		stats     RunStats
	}
	ref := map[bool]obs{}
	for _, naive := range []bool{false, true} {
		opts := []Option{}
		if naive {
			opts = append(opts, WithNaiveMatch())
		}
		trace, wm, ctr, stats := runDiffOn(t, prog, opts...)
		ref[naive] = obs{trace, wm, ctr, stats}
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		naive := g%2 == 1
		wg.Add(1)
		go func() {
			defer wg.Done()
			opts := []Option{}
			if naive {
				opts = append(opts, WithNaiveMatch())
			}
			var trace bytes.Buffer
			e, err := NewEngine(prog, append(opts, WithTrace(&trace))...)
			if err != nil {
				errs <- err
				return
			}
			colors := []string{"blue", "red", "blue", "green", "blue", "red"}
			for i := 0; i < 6; i++ {
				if _, err := e.Assert("node", map[string]symtab.Value{
					"id": symtab.Int(int64(i)), "color": symtab.Sym(colors[i]),
				}); err != nil {
					errs <- err
					return
				}
			}
			for _, l := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {1, 4}, {2, 0}} {
				if _, err := e.Assert("link", map[string]symtab.Value{
					"from": symtab.Int(int64(l[0])), "to": symtab.Int(int64(l[1])),
				}); err != nil {
					errs <- err
					return
				}
			}
			if _, err := e.Run(5000); err != nil {
				errs <- err
				return
			}
			var dump bytes.Buffer
			e.DumpWM(&dump)
			want := ref[naive]
			if trace.String() != want.trace || dump.String() != want.wm ||
				e.MatchCounters() != want.ctr || e.Stats() != want.stats {
				errs <- fmt.Errorf("naive=%v: concurrent run diverged from reference", naive)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
