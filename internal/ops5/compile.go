package ops5

import (
	"fmt"
	"sort"
	"strings"

	"spampsm/internal/rete"
	"spampsm/internal/symtab"
	"spampsm/internal/wm"
)

// varLoc is where an LHS variable is bound: condition element index
// (0-based, counting all CEs) and attribute slot.
type varLoc struct {
	ce   int
	attr int
}

// compiledProd is a production lowered to Rete patterns plus the
// variable-binding map the RHS evaluator uses.
type compiledProd struct {
	prod     *Production
	patterns []rete.Pattern
	varLocs  map[string]varLoc
	// elemLevels maps element variables to their CE index.
	elemLevels map[string]int
	pnode      *rete.PNode
}

// constTest is one constant test of an alpha filter.
type constTest struct {
	attr int
	pred Pred
	val  symtab.Value
	disj []symtab.Value
}

// intraTest compares two attributes of the same WME (a variable used
// twice within one CE).
type intraTest struct {
	attrA int
	pred  Pred
	attrB int
}

func predFn(p Pred) rete.PredFn {
	return func(own, bound symtab.Value) bool { return p.Apply(own, bound) }
}

// compileProduction lowers a production to Rete patterns. classes must
// already contain every class the production references (sema
// guarantees this for parsed programs).
func compileProduction(p *Production, classes *wm.Classes) (*compiledProd, error) {
	cp := &compiledProd{
		prod:       p,
		varLocs:    map[string]varLoc{},
		elemLevels: map[string]int{},
	}
	for i, ce := range p.LHS {
		cd := classes.Lookup(ce.Class)
		if cd == nil {
			return nil, fmt.Errorf("ops5: production %s: class %s not declared", p.Name, ce.Class)
		}
		if ce.ElemVar != "" {
			cp.elemLevels[ce.ElemVar] = i
		}
		var consts []constTest
		var intras []intraTest
		var joins []rete.JoinTest
		localLocs := map[string]varLoc{}
		for _, at := range ce.Tests {
			ai := cd.AttrIndex(at.Attr)
			if ai < 0 {
				return nil, fmt.Errorf("ops5: production %s: class %s has no attribute %s", p.Name, ce.Class, at.Attr)
			}
			for _, tm := range at.Terms {
				switch {
				case tm.Disj != nil:
					consts = append(consts, constTest{attr: ai, pred: PredEQ, disj: tm.Disj})
				case !tm.IsVar():
					consts = append(consts, constTest{attr: ai, pred: tm.Pred, val: tm.Val})
				default:
					v := tm.Var
					if loc, ok := localLocs[v]; ok {
						// Bound earlier within this CE: intra-element test.
						intras = append(intras, intraTest{attrA: ai, pred: tm.Pred, attrB: loc.attr})
					} else if loc, ok := cp.varLocs[v]; ok && loc.ce < i {
						joins = append(joins, rete.JoinTest{
							OwnAttr: ai, TokenLevel: loc.ce, TokenAttr: loc.attr,
							Pred: predFn(tm.Pred),
							// Equality joins are index-accelerated by the
							// network; the cost model is unaffected.
							Eq: tm.Pred == PredEQ,
						})
					} else if tm.Pred == PredEQ {
						// First occurrence binds.
						localLocs[v] = varLoc{ce: i, attr: ai}
						if !ce.Negated {
							cp.varLocs[v] = varLoc{ce: i, attr: ai}
						}
					} else {
						return nil, fmt.Errorf("ops5: production %s: variable <%s> used with %s before binding", p.Name, v, tm.Pred)
					}
				}
			}
		}
		cp.patterns = append(cp.patterns, buildPattern(ce, cd, consts, intras, joins))
	}
	return cp, nil
}

// buildPattern assembles the alpha filter, its cost and dedup
// signature, and the join tests for one CE.
func buildPattern(ce *CondElem, cd *wm.ClassDef, consts []constTest, intras []intraTest, joins []rete.JoinTest) rete.Pattern {
	nTests := len(consts) + len(intras)
	filter := func(w *wm.WME) bool {
		for _, ct := range consts {
			v := w.GetAt(ct.attr)
			if ct.disj != nil {
				ok := false
				for _, d := range ct.disj {
					if v.Equal(d) {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
				continue
			}
			if !ct.pred.Apply(v, ct.val) {
				return false
			}
		}
		for _, it := range intras {
			if !it.pred.Apply(w.GetAt(it.attrA), w.GetAt(it.attrB)) {
				return false
			}
		}
		return true
	}
	var filterFn func(*wm.WME) bool
	if nTests > 0 {
		filterFn = filter
	}
	return rete.Pattern{
		Negated:    ce.Negated,
		Class:      ce.Class,
		Signature:  patternSignature(ce.Class, consts, intras),
		Filter:     filterFn,
		FilterCost: float64(max(1, nTests)) * rete.CostAlphaFilterTerm,
		Tests:      joins,
	}
}

// patternSignature canonically names a CE's constant tests so that
// equivalent CEs across productions share one alpha memory.
func patternSignature(class string, consts []constTest, intras []intraTest) string {
	parts := make([]string, 0, len(consts)+len(intras))
	for _, ct := range consts {
		if ct.disj != nil {
			ds := make([]string, len(ct.disj))
			for i, d := range ct.disj {
				ds[i] = d.String()
			}
			parts = append(parts, fmt.Sprintf("%d<<%s", ct.attr, strings.Join(ds, ",")))
			continue
		}
		parts = append(parts, fmt.Sprintf("%d%s%s", ct.attr, ct.pred, ct.val))
	}
	for _, it := range intras {
		parts = append(parts, fmt.Sprintf("%d%s@%d", it.attrA, it.pred, it.attrB))
	}
	sort.Strings(parts)
	return class + "|" + strings.Join(parts, ";")
}
