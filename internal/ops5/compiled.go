package ops5

import (
	"fmt"
	"io"

	"spampsm/internal/rete"
	"spampsm/internal/wm"
)

// Compile-once engine instantiation. A CompiledProgram is the
// immutable compiled form of one Program variant: the class registry,
// the shared Rete template, and the lowered productions. Building one
// pays the full compilation (compileProduction + template
// construction) once; every engine created from it afterwards is
// O(nodes) pointer setup — fresh working memory, conflict set and
// per-instance network state over the shared topology.
//
// Variants are keyed on the two compile-time switches: the matcher
// mode (WithNaiveMatch selects the full-scan reference matcher, which
// changes the compiled node strategy) and activation capture. Each
// Program memoizes its variants, so the ~1k task builds of a full
// SPAM interpretation share one compile per variant in use.

// compileKey identifies one compiled variant of a Program.
type compileKey struct {
	naive   bool
	capture bool
}

// CompiledProgram is an immutable compiled Program variant. It is
// safe for concurrent use: any number of goroutines may call NewEngine
// on the same CompiledProgram simultaneously.
type CompiledProgram struct {
	prog     *Program
	classes  *wm.Classes
	tmpl     *rete.Template
	compiled map[string]*compiledProd
	naive    bool
	capture  bool
}

// Scratch holds recyclable engine allocations; see WithScratch and
// Engine.Reclaim. It is rete.Scratch re-exported at the engine layer
// so runtime code need not import internal/rete.
type Scratch = rete.Scratch

// compileVariant performs the full compilation of one Program variant,
// bypassing the cache.
func compileVariant(prog *Program, naive, capture bool) (*CompiledProgram, error) {
	classes := wm.NewClasses()
	for _, c := range prog.Classes {
		if _, err := classes.Declare(c.Name, c.Attrs...); err != nil {
			return nil, err
		}
	}
	tmpl := rete.NewTemplate()
	tmpl.SetIndexing(!naive)
	compiled := make(map[string]*compiledProd, len(prog.Productions))
	for _, p := range prog.Productions {
		cp, err := compileProduction(p, classes)
		if err != nil {
			return nil, err
		}
		pn, err := tmpl.AddProduction(p.Name, cp.patterns, cp)
		if err != nil {
			return nil, err
		}
		cp.pnode = pn
		compiled[p.Name] = cp
	}
	// Freeze before the template escapes the compiler, so concurrent
	// first instantiations never race on the freeze flag.
	tmpl.Freeze()
	return &CompiledProgram{
		prog:     prog,
		classes:  classes,
		tmpl:     tmpl,
		compiled: compiled,
		naive:    naive,
		capture:  capture,
	}, nil
}

// CompileProgram compiles a Program into a reusable CompiledProgram,
// bypassing the Program's variant cache (ops5.NewEngine consults the
// cache; use WithFreshCompile there to force a private compile). Only
// the compile-time options matter here: WithNaiveMatch and
// WithCapture select the variant; others are ignored.
func CompileProgram(prog *Program, opts ...Option) (*CompiledProgram, error) {
	probe := &Engine{}
	for _, opt := range opts {
		opt(probe)
	}
	return compileVariant(prog, probe.naiveMatch, probe.capture)
}

// compiledVariant returns the Program's memoized compiled variant,
// compiling it on first use. Concurrent callers serialize on the
// compile; all receive the same CompiledProgram.
func (pr *Program) compiledVariant(naive, capture bool) (*CompiledProgram, error) {
	key := compileKey{naive: naive, capture: capture}
	pr.compileMu.Lock()
	defer pr.compileMu.Unlock()
	if cp, ok := pr.variants[key]; ok {
		return cp, nil
	}
	cp, err := compileVariant(pr, naive, capture)
	if err != nil {
		return nil, err
	}
	if pr.variants == nil {
		pr.variants = map[compileKey]*CompiledProgram{}
	}
	pr.variants[key] = cp
	return cp, nil
}

// NewEngine instantiates an engine over the compiled program in
// O(nodes): no production is recompiled. Options selecting a different
// compile-time variant (WithNaiveMatch or WithCapture disagreeing with
// the compile) are an error; use ops5.NewEngine to pick a variant by
// option.
func (cp *CompiledProgram) NewEngine(opts ...Option) (*Engine, error) {
	e := newEngineShell(cp.prog)
	e.naiveMatch = cp.naive
	e.capture = cp.capture
	for _, opt := range opts {
		opt(e)
	}
	return cp.finish(e)
}

// newEngineShell builds an Engine with everything that is per-engine
// and option-independent; finish wires in the compiled parts.
func newEngineShell(prog *Program) *Engine {
	return &Engine{
		prog:      prog,
		cs:        newConflictSet(),
		strategy:  ParseStrategy(prog.Strategy),
		externals: map[string]ExternalFn{},
		out:       io.Discard,
		log:       &CostLog{},
	}
}

// finish instantiates the compiled program into an option-applied
// engine shell.
func (cp *CompiledProgram) finish(e *Engine) (*Engine, error) {
	if e.naiveMatch != cp.naive {
		return nil, fmt.Errorf("ops5: engine requests naive=%v but program was compiled with naive=%v", e.naiveMatch, cp.naive)
	}
	if e.capture != cp.capture {
		return nil, fmt.Errorf("ops5: engine requests capture=%v but program was compiled with capture=%v", e.capture, cp.capture)
	}
	e.classes = cp.classes
	e.compiled = cp.compiled
	e.mem = wm.NewMemory(cp.classes)
	if e.scratch != nil {
		e.batchWMEs, e.batchDigests = e.scratch.TakeSeedBuffers()
	}
	e.net = cp.tmpl.NewNetworkScratch(e.cs, e.scratch)
	e.scratch = nil
	e.net.SetCapture(cp.capture)
	e.net.StartBatch()
	return e, nil
}

// Reclaim moves the engine's recyclable allocations into s for reuse
// by the next engine built with WithScratch(s). Call only when
// discarding an engine that finished running normally; the engine must
// not be used afterwards.
func (e *Engine) Reclaim(s *Scratch) {
	e.net.Reclaim(s)
	s.PutSeedBuffers(e.batchWMEs, e.batchDigests)
	e.batchWMEs, e.batchDigests = nil, nil
}
