package ops5

import (
	"testing"
)

func kinds(t *testing.T, src string) []tokKind {
	t.Helper()
	toks, err := lexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]tokKind, len(toks))
	for i, tk := range toks {
		out[i] = tk.kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks, err := lexAll("(p rule1 (goal ^want <x>) --> (make result ^v <x>))")
	if err != nil {
		t.Fatal(err)
	}
	want := []tokKind{
		tokLParen, tokAtom, tokAtom, tokLParen, tokAtom, tokCaret, tokAtom, tokVar, tokRParen,
		tokArrow, tokLParen, tokAtom, tokAtom, tokCaret, tokAtom, tokVar, tokRParen,
		tokRParen, tokEOF,
	}
	if len(toks) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(toks), len(want), toks)
	}
	for i, k := range want {
		if toks[i].kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].kind, k)
		}
	}
}

func TestLexPredicates(t *testing.T) {
	toks, err := lexAll("<> <= >= < > <=> =")
	if err != nil {
		t.Fatal(err)
	}
	wantText := []string{"<>", "<=", ">=", "<", ">", "<=>", "="}
	for i, wt := range wantText {
		if toks[i].kind != tokPred || toks[i].text != wt {
			t.Errorf("token %d = %v %q, want pred %q", i, toks[i].kind, toks[i].text, wt)
		}
	}
}

func TestLexAngles(t *testing.T) {
	ks := kinds(t, "<< a b >> <x> <long-name.2>")
	want := []tokKind{tokDLAngle, tokAtom, tokAtom, tokDRAngle, tokVar, tokVar, tokEOF}
	for i, k := range want {
		if ks[i] != k {
			t.Fatalf("kinds = %v, want %v", ks, want)
		}
	}
}

func TestLexNumbersAndMinus(t *testing.T) {
	toks, _ := lexAll("-5 -0.5 - --> 3.25")
	if toks[0].kind != tokAtom || toks[0].text != "-5" {
		t.Errorf("-5 lexed as %v %q", toks[0].kind, toks[0].text)
	}
	if toks[1].kind != tokAtom || toks[1].text != "-0.5" {
		t.Errorf("-0.5 lexed as %v %q", toks[1].kind, toks[1].text)
	}
	if toks[2].kind != tokMinus {
		t.Errorf("bare - lexed as %v", toks[2].kind)
	}
	if toks[3].kind != tokArrow {
		t.Errorf("--> lexed as %v", toks[3].kind)
	}
	if toks[4].kind != tokAtom || toks[4].text != "3.25" {
		t.Errorf("3.25 lexed as %v %q", toks[4].kind, toks[4].text)
	}
}

func TestLexComments(t *testing.T) {
	ks := kinds(t, "abc ; this is a comment ( ) < >\ndef")
	want := []tokKind{tokAtom, tokAtom, tokEOF}
	if len(ks) != len(want) {
		t.Fatalf("kinds = %v", ks)
	}
}

func TestLexQuotedAtom(t *testing.T) {
	toks, err := lexAll("|hello world (1)|")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokAtom || toks[0].text != "hello world (1)" {
		t.Errorf("quoted atom = %v %q", toks[0].kind, toks[0].text)
	}
	if _, err := lexAll("|unterminated"); err == nil {
		t.Error("unterminated quoted atom must error")
	}
}

func TestLexLineNumbers(t *testing.T) {
	toks, _ := lexAll("a\nb\n\nc")
	if toks[0].line != 1 || toks[1].line != 2 || toks[2].line != 4 {
		t.Errorf("lines = %d,%d,%d", toks[0].line, toks[1].line, toks[2].line)
	}
}

func TestLexBraces(t *testing.T) {
	ks := kinds(t, "{ <x> (c) }")
	want := []tokKind{tokLBrace, tokVar, tokLParen, tokAtom, tokRParen, tokRBrace, tokEOF}
	for i, k := range want {
		if ks[i] != k {
			t.Fatalf("kinds = %v, want %v", ks, want)
		}
	}
}

func TestLexCaretAttachment(t *testing.T) {
	// ^attr<var> without spaces: caret, atom, var.
	toks, _ := lexAll("^status<s>")
	if toks[0].kind != tokCaret || toks[1].kind != tokAtom || toks[1].text != "status" || toks[2].kind != tokVar {
		t.Errorf("tokens = %v", toks)
	}
}
