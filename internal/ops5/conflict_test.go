package ops5

import (
	"sort"
	"testing"
	"testing/quick"

	"spampsm/internal/rete"
)

// genInst builds an instantiation with the given descending tags.
func genInst(tags []int, spec int, seq int) *instantiation {
	sorted := append([]int(nil), tags...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	first := 0
	if len(tags) > 0 {
		first = tags[0]
	}
	return &instantiation{
		cp:    &compiledProd{prod: &Production{Name: "p", Specificity: spec}},
		tags:  sorted,
		first: first,
		seq:   seq,
	}
}

func TestLexLessBasics(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{[]int{3, 2}, []int{4, 1}, true},  // 3 < 4
		{[]int{4, 1}, []int{3, 2}, false}, // 4 > 3
		{[]int{4, 2}, []int{4, 3}, true},  // tie on 4, 2 < 3
		{[]int{4}, []int{4, 1}, true},     // prefix: shorter loses
		{[]int{4, 1}, []int{4}, false},    // longer wins
		{[]int{4, 1}, []int{4, 1}, false}, // equal
		{nil, []int{1}, true},             // empty loses
	}
	for _, c := range cases {
		if got := lexLess(c.a, c.b); got != c.want {
			t.Errorf("lexLess(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// tagsFrom derives a small random tag list from quick's raw values.
func tagsFrom(raw []uint8) []int {
	n := int(len(raw)%4) + 1
	tags := make([]int, 0, n)
	for i := 0; i < n && i < len(raw); i++ {
		tags = append(tags, int(raw[i]%10)+1)
	}
	if len(tags) == 0 {
		tags = []int{1}
	}
	return tags
}

func TestQuickBetterAntisymmetric(t *testing.T) {
	f := func(ra, rb []uint8, sa, sb uint8) bool {
		a := genInst(tagsFrom(ra), int(sa%5), 1)
		b := genInst(tagsFrom(rb), int(sb%5), 2)
		ab := better(a, b, LEX)
		ba := better(b, a, LEX)
		return ab != ba // a strict total order: exactly one direction wins
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickBetterTransitive(t *testing.T) {
	for _, strat := range []Strategy{LEX, MEA} {
		f := func(ra, rb, rc []uint8, sa, sb, sc uint8) bool {
			a := genInst(tagsFrom(ra), int(sa%5), 1)
			b := genInst(tagsFrom(rb), int(sb%5), 2)
			c := genInst(tagsFrom(rc), int(sc%5), 3)
			if better(a, b, strat) && better(b, c, strat) {
				return better(a, c, strat)
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("strategy %v: %v", strat, err)
		}
	}
}

func TestResolvePicksMaximum(t *testing.T) {
	cs := newConflictSet()
	// Build instantiations by hand and verify Resolve returns the one
	// that better() prefers over all others.
	insts := []*instantiation{
		genInst([]int{5, 2}, 3, 1),
		genInst([]int{7, 1}, 2, 2),
		genInst([]int{7, 3}, 2, 3),
		genInst([]int{7, 3}, 4, 4),
	}
	for _, in := range insts {
		cs.insts[new(rete.Token)] = in
	}
	got := cs.Resolve(LEX)
	for _, in := range insts {
		if in != got && better(in, got, LEX) {
			t.Errorf("Resolve returned a dominated instantiation")
		}
	}
	// Firing removes it from contention.
	got.fired = true
	second := cs.Resolve(LEX)
	if second == got {
		t.Error("fired instantiation must not be re-selected")
	}
}

func TestMEAFirstDominates(t *testing.T) {
	// Under MEA, a larger first-CE timetag beats any overall recency.
	a := genInst([]int{3, 99, 98}, 1, 1) // first=3
	b := genInst([]int{5, 1}, 1, 2)      // first=5
	if !better(b, a, MEA) {
		t.Error("MEA should prefer the newer first-CE match")
	}
	if better(b, a, LEX) {
		// LEX compares sorted tags: [99,98,3] vs [5,1] — a wins.
		t.Error("LEX should prefer the higher overall recency")
	}
}

func TestParseStrategy(t *testing.T) {
	if ParseStrategy("mea") != MEA || ParseStrategy("lex") != LEX || ParseStrategy("") != LEX {
		t.Error("strategy parsing wrong")
	}
}
