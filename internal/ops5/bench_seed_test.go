package ops5

import (
	"fmt"
	"testing"

	"spampsm/internal/symtab"
)

// seedProgram returns a 40-rule program whose rules carry 40 distinct
// constant-test signatures over one class, so every seed WME must be
// routed through 40 alpha memories — the alpha-network shape that
// makes seed distribution expensive.
func seedProgram() *Program {
	src := `
(literalize item kind size flag)
(literalize out n)
`
	for i := 0; i < 40; i++ {
		src += fmt.Sprintf("(p r%d (item ^kind k%d ^size > %d) --> (make out ^n %d))\n",
			i, i%8, i*10, i)
	}
	return MustParse(src)
}

// BenchmarkSeedLoad contrasts the two ways a task engine's seed
// working memory is loaded: "unbatched" asserts each WME with Assert
// (per-assertion attribute map, full constant-test walk — the
// pre-batching behavior, kept reachable through WithPerWMEAssert),
// while "batched" asserts prebuilt shared seeds with AssertBatch,
// replaying the template's memoized alpha acceptance sets. The ratio
// is the per-task seed-distribution saving; the simulated Counters are
// byte-identical either way (see the seed differential oracles).
func BenchmarkSeedLoad(b *testing.B) {
	prog := seedProgram()
	sc, err := prog.SeedClass("item")
	if err != nil {
		b.Fatal(err)
	}
	// Mostly-rejected seeds — the realistic shape: a task's fragments
	// are relevant to a handful of its rules, but the per-WME path
	// still walks every rule's constant tests for every one of them.
	var seeds []Seed
	var sets []map[string]symtab.Value
	for i := 0; i < 64; i++ {
		m := map[string]symtab.Value{
			"kind": symtab.Sym(fmt.Sprintf("k%d", i%8)),
			"size": symtab.Int(int64(i % 13)),
			"flag": symtab.Sym("t"),
		}
		s, err := sc.SharedSeed(m)
		if err != nil {
			b.Fatal(err)
		}
		seeds = append(seeds, s)
		sets = append(sets, m)
	}

	b.Run("unbatched", func(b *testing.B) {
		if _, err := NewEngine(prog); err != nil { // warm the variant cache
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e, err := NewEngine(prog)
			if err != nil {
				b.Fatal(err)
			}
			for _, m := range sets {
				if _, err := e.Assert("item", m); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		e, err := NewEngine(prog) // warm the variant cache and route memo
		if err != nil {
			b.Fatal(err)
		}
		if err := e.AssertBatch(seeds); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e, err := NewEngine(prog)
			if err != nil {
				b.Fatal(err)
			}
			if err := e.AssertBatch(seeds); err != nil {
				b.Fatal(err)
			}
		}
	})
}
