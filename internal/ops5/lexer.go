package ops5

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokDLAngle // <<
	tokDRAngle // >>
	tokCaret   // ^
	tokArrow   // -->
	tokMinus   // - (CE negation)
	tokPred    // <> < <= > >= <=> = (predicate position)
	tokVar     // <name>
	tokAtom    // symbol or number
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokLParen:
		return "("
	case tokRParen:
		return ")"
	case tokLBrace:
		return "{"
	case tokRBrace:
		return "}"
	case tokDLAngle:
		return "<<"
	case tokDRAngle:
		return ">>"
	case tokCaret:
		return "^"
	case tokArrow:
		return "-->"
	case tokMinus:
		return "-"
	case tokPred:
		return "predicate"
	case tokVar:
		return "variable"
	case tokAtom:
		return "atom"
	}
	return "?"
}

type token struct {
	kind tokKind
	text string // atom text, variable name (without <>), or predicate symbol
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokAtom, tokPred:
		return fmt.Sprintf("%q", t.text)
	case tokVar:
		return fmt.Sprintf("<%s>", t.text)
	default:
		return t.kind.String()
	}
}

// lexer tokenizes OPS5 source. ';' starts a comment to end of line.
// |...| quotes an atom verbatim.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) errf(format string, args ...interface{}) error {
	return fmt.Errorf("ops5: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) at(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == ';':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

// atomChar reports whether c can continue a bare atom. Angle brackets
// are excluded so "^status<s>" lexes as an attribute followed by a
// variable; |quoted atoms| may contain anything.
func atomChar(c byte) bool {
	switch c {
	case 0, ' ', '\t', '\r', '\n', '(', ')', '{', '}', ';', '^', '<', '>', '|':
		return false
	}
	return true
}

// identChar reports whether c can appear in a variable name between < >.
func identChar(c byte) bool {
	return c != 0 && (unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) ||
		c == '-' || c == '_' || c == '.' || c == '*')
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	line := l.line
	c := l.src[l.pos]
	switch c {
	case '(':
		l.pos++
		return token{kind: tokLParen, line: line}, nil
	case ')':
		l.pos++
		return token{kind: tokRParen, line: line}, nil
	case '{':
		l.pos++
		return token{kind: tokLBrace, line: line}, nil
	case '}':
		l.pos++
		return token{kind: tokRBrace, line: line}, nil
	case '^':
		l.pos++
		return token{kind: tokCaret, line: line}, nil
	case '|':
		// Quoted atom.
		end := strings.IndexByte(l.src[l.pos+1:], '|')
		if end < 0 {
			return token{}, l.errf("unterminated |atom|")
		}
		text := l.src[l.pos+1 : l.pos+1+end]
		l.pos += end + 2
		return token{kind: tokAtom, text: text, line: line}, nil
	}

	if c == '<' {
		switch {
		case l.at(1) == '=' && l.at(2) == '>':
			l.pos += 3
			return token{kind: tokPred, text: "<=>", line: line}, nil
		case l.at(1) == '=':
			l.pos += 2
			return token{kind: tokPred, text: "<=", line: line}, nil
		case l.at(1) == '>':
			l.pos += 2
			return token{kind: tokPred, text: "<>", line: line}, nil
		case l.at(1) == '<':
			l.pos += 2
			return token{kind: tokDLAngle, line: line}, nil
		default:
			// Either a variable <name> or the bare < predicate.
			j := l.pos + 1
			for j < len(l.src) && identChar(l.src[j]) {
				j++
			}
			if j > l.pos+1 && j < len(l.src) && l.src[j] == '>' {
				name := l.src[l.pos+1 : j]
				l.pos = j + 1
				return token{kind: tokVar, text: name, line: line}, nil
			}
			l.pos++
			return token{kind: tokPred, text: "<", line: line}, nil
		}
	}

	if c == '>' {
		switch {
		case l.at(1) == '>':
			l.pos += 2
			return token{kind: tokDRAngle, line: line}, nil
		case l.at(1) == '=':
			l.pos += 2
			return token{kind: tokPred, text: ">=", line: line}, nil
		default:
			l.pos++
			return token{kind: tokPred, text: ">", line: line}, nil
		}
	}

	if c == '=' {
		l.pos++
		return token{kind: tokPred, text: "=", line: line}, nil
	}

	if c == '-' {
		// '-->' arrow, negation '-', or a negative number atom.
		if l.at(1) == '-' && l.at(2) == '>' {
			l.pos += 3
			return token{kind: tokArrow, line: line}, nil
		}
		if d := l.at(1); d >= '0' && d <= '9' || d == '.' {
			// falls through to atom scan below
		} else {
			l.pos++
			return token{kind: tokMinus, line: line}, nil
		}
	}

	// Bare atom (symbol or number).
	j := l.pos
	for j < len(l.src) && atomChar(l.src[j]) {
		j++
	}
	if j == l.pos {
		return token{}, l.errf("unexpected character %q", string(c))
	}
	text := l.src[l.pos:j]
	l.pos = j
	return token{kind: tokAtom, text: text, line: line}, nil
}

// lexAll tokenizes the entire source (used by the parser, which wants
// lookahead).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
