package ops5

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func shellFixture(t *testing.T) *Shell {
	t.Helper()
	e := mustEngine(t, `
(literalize count n limit)
(p step (count ^n <n> ^limit > <n>) --> (modify 1 ^n (compute <n> + 1)))
(p done (count ^n <n> ^limit <n>) --> (halt))
`)
	return &Shell{Engine: e}
}

func exec(t *testing.T, sh *Shell, cmd string) string {
	t.Helper()
	var b bytes.Buffer
	if err := sh.Exec(cmd, &b); err != nil && err != io.EOF {
		t.Fatalf("%q: %v", cmd, err)
	}
	return b.String()
}

func TestShellMakeRunWM(t *testing.T) {
	sh := shellFixture(t)
	out := exec(t, sh, "make (count ^n 0 ^limit 3)")
	if !strings.Contains(out, "asserted 1") {
		t.Errorf("make output = %q", out)
	}
	out = exec(t, sh, "run 2")
	if !strings.Contains(out, "2 firings") {
		t.Errorf("run output = %q", out)
	}
	out = exec(t, sh, "wm count")
	if !strings.Contains(out, "^n 2") {
		t.Errorf("wm output = %q", out)
	}
	out = exec(t, sh, "run 0")
	if !strings.Contains(out, "halted") {
		t.Errorf("run-to-halt output = %q", out)
	}
	out = exec(t, sh, "stats")
	if !strings.Contains(out, "firings 4") {
		t.Errorf("stats output = %q", out)
	}
}

func TestShellCSAndPM(t *testing.T) {
	sh := shellFixture(t)
	out := exec(t, sh, "cs")
	if !strings.Contains(out, "(empty)") {
		t.Errorf("empty cs = %q", out)
	}
	exec(t, sh, "make (count ^n 0 ^limit 5)")
	out = exec(t, sh, "cs")
	if !strings.Contains(out, "step") {
		t.Errorf("cs = %q", out)
	}
	out = exec(t, sh, "pm")
	if !strings.Contains(out, "step") || !strings.Contains(out, "done") {
		t.Errorf("pm = %q", out)
	}
}

func TestShellErrors(t *testing.T) {
	sh := shellFixture(t)
	var b bytes.Buffer
	if err := sh.Exec("frobnicate", &b); err == nil {
		t.Error("unknown command must error")
	}
	if err := sh.Exec("run minus-one", &b); err == nil {
		t.Error("bad run count must error")
	}
	if err := sh.Exec("make (zork)", &b); err != nil {
		t.Error("engine errors should be reported, not returned")
	} else if !strings.Contains(b.String(), "error:") {
		t.Errorf("expected reported error, got %q", b.String())
	}
	if err := sh.Exec("", &b); err != nil {
		t.Error("blank line is a no-op")
	}
}

func TestShellExit(t *testing.T) {
	sh := shellFixture(t)
	var b bytes.Buffer
	if err := sh.Exec("quit", &b); err != io.EOF {
		t.Errorf("quit should return EOF, got %v", err)
	}
}

func TestShellRunLoop(t *testing.T) {
	sh := shellFixture(t)
	in := strings.NewReader("make (count ^n 0 ^limit 2)\nrun 0\nwm\nhelp\nexit\n")
	var out bytes.Buffer
	if err := sh.Run(in, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if strings.Count(s, "ops5>") < 5 {
		t.Errorf("prompts missing:\n%s", s)
	}
	if !strings.Contains(s, "halted") || !strings.Contains(s, "commands:") {
		t.Errorf("session output incomplete:\n%s", s)
	}
}
