package ops5

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Shell is a small interactive debugging console over an engine,
// modeled on the OPS5 top level: run the recognize-act loop in steps,
// inspect working memory, the conflict set and production memory, and
// assert WMEs.
type Shell struct {
	Engine *Engine
}

// Exec executes one shell command, writing its output to w. It returns
// io.EOF for the exit command and an error for malformed input; the
// engine's own errors are reported to w, not returned, so a session
// survives them.
func (sh *Shell) Exec(line string, w io.Writer) error {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 {
		return nil
	}
	switch fields[0] {
	case "help", "?":
		fmt.Fprint(w, `commands:
  run [n]        fire n productions (default 1; 0 = to quiescence)
  wm [class]     print working memory (optionally one class)
  cs             print the conflict set
  pm             print production names
  make (c ^a v)  assert a working memory element
  stats          print run statistics
  exit | quit    leave the shell
`)
	case "run":
		n := 1
		if len(fields) > 1 {
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 {
				return fmt.Errorf("ops5: run wants a non-negative count, got %q", fields[1])
			}
			n = v
		}
		fired, err := sh.Engine.Run(n)
		if err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
			return nil
		}
		fmt.Fprintf(w, "%d firings", fired)
		if sh.Engine.Halted() {
			fmt.Fprint(w, " (halted)")
		} else if fired < n || n == 0 {
			fmt.Fprint(w, " (quiescent)")
		}
		fmt.Fprintln(w)
	case "wm":
		if len(fields) > 1 {
			for _, el := range sh.Engine.WMEs(fields[1]) {
				fmt.Fprintf(w, "%d: %s\n", el.TimeTag, el)
			}
			return nil
		}
		sh.Engine.DumpWM(w)
	case "cs":
		entries := sh.Engine.ConflictSet()
		if len(entries) == 0 {
			fmt.Fprintln(w, "(empty)")
		}
		for _, e := range entries {
			fmt.Fprintln(w, e)
		}
	case "pm":
		for _, name := range sh.Engine.ProductionNames() {
			fmt.Fprintln(w, name)
		}
	case "make":
		rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "make"))
		specs, err := ParseWMEList(rest)
		if err != nil {
			return err
		}
		if err := sh.Engine.AssertAll(specs); err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
			return nil
		}
		fmt.Fprintf(w, "asserted %d element(s)\n", len(specs))
	case "stats":
		st := sh.Engine.Stats()
		fmt.Fprintf(w, "firings %d, cycles %d, rhs actions %d, match %.0f%%, halted %v\n",
			st.Firings, st.Cycles, st.RHSActions, 100*st.MatchFraction(), st.Halted)
	case "exit", "quit":
		return io.EOF
	default:
		return fmt.Errorf("ops5: unknown command %q (try help)", fields[0])
	}
	return nil
}

// Run reads commands from r until EOF or the exit command, echoing a
// prompt to w.
func (sh *Shell) Run(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	for {
		fmt.Fprint(w, "ops5> ")
		if !sc.Scan() {
			fmt.Fprintln(w)
			return sc.Err()
		}
		if err := sh.Exec(sc.Text(), w); err != nil {
			if err == io.EOF {
				return nil
			}
			fmt.Fprintf(w, "%v\n", err)
		}
	}
}
