package ops5

import (
	"strings"
	"testing"

	"spampsm/internal/symtab"
)

const sampleSrc = `
; a small program
(literalize goal want status)
(literalize block id color size on)
(strategy mea)
(external log-it measure)

(p find-block
   (goal ^want <c> ^status active)
   { <b> (block ^color <c> ^size > 3 ^id <i>) }
  -->
   (write found <i> (crlf))
   (modify 1 ^status done)
   (make goal ^want <c> ^status (compute <i> + 1)))

(p no-block
   (goal ^want <c>)
 - (block ^color <c>)
  -->
   (remove 1))
`

func TestParseProgram(t *testing.T) {
	prog, err := Parse(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Classes) != 2 {
		t.Fatalf("classes = %d", len(prog.Classes))
	}
	if prog.Classes[1].Name != "block" || len(prog.Classes[1].Attrs) != 4 {
		t.Errorf("block decl = %+v", prog.Classes[1])
	}
	if prog.Strategy != "mea" {
		t.Errorf("strategy = %s", prog.Strategy)
	}
	if len(prog.Externals) != 2 {
		t.Errorf("externals = %v", prog.Externals)
	}
	if len(prog.Productions) != 2 {
		t.Fatalf("productions = %d", len(prog.Productions))
	}

	p := prog.Production("find-block")
	if p == nil {
		t.Fatal("find-block missing")
	}
	if len(p.LHS) != 2 {
		t.Fatalf("LHS size = %d", len(p.LHS))
	}
	if p.LHS[1].ElemVar != "b" {
		t.Errorf("element variable = %q", p.LHS[1].ElemVar)
	}
	// ^size > 3 parsed with GT predicate.
	var sizeTest *AttrTest
	for i := range p.LHS[1].Tests {
		if p.LHS[1].Tests[i].Attr == "size" {
			sizeTest = &p.LHS[1].Tests[i]
		}
	}
	if sizeTest == nil || sizeTest.Terms[0].Pred != PredGT || !sizeTest.Terms[0].Val.Equal(symtab.Int(3)) {
		t.Errorf("size test = %+v", sizeTest)
	}
	if len(p.RHS) != 3 {
		t.Fatalf("RHS size = %d", len(p.RHS))
	}
	if _, ok := p.RHS[0].(WriteAction); !ok {
		t.Errorf("RHS[0] = %T", p.RHS[0])
	}
	mod, ok := p.RHS[1].(ModifyAction)
	if !ok || mod.Ref.Index != 1 {
		t.Errorf("RHS[1] = %+v", p.RHS[1])
	}
	mk, ok := p.RHS[2].(MakeAction)
	if !ok || mk.Class != "goal" {
		t.Errorf("RHS[2] = %+v", p.RHS[2])
	}
	if _, ok := mk.Sets[1].Expr.(ComputeExpr); !ok {
		t.Errorf("compute expr = %T", mk.Sets[1].Expr)
	}

	n := prog.Production("no-block")
	if !n.LHS[1].Negated {
		t.Error("second CE of no-block should be negated")
	}
	if prog.Production("nope") != nil {
		t.Error("lookup of unknown production must be nil")
	}
}

func TestParseDisjunctionAndConjunction(t *testing.T) {
	src := `
(literalize r kind n)
(p pick
   (r ^kind << runway taxiway >> ^n { > 2 < 10 })
  -->
   (make r ^kind chosen))
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ce := prog.Productions[0].LHS[0]
	if len(ce.Tests) != 2 {
		t.Fatalf("tests = %d", len(ce.Tests))
	}
	if ce.Tests[0].Terms[0].Disj == nil || len(ce.Tests[0].Terms[0].Disj) != 2 {
		t.Errorf("disjunction = %+v", ce.Tests[0].Terms[0])
	}
	if len(ce.Tests[1].Terms) != 2 {
		t.Fatalf("conjunction terms = %d", len(ce.Tests[1].Terms))
	}
	if ce.Tests[1].Terms[0].Pred != PredGT || ce.Tests[1].Terms[1].Pred != PredLT {
		t.Errorf("conjunction preds = %+v", ce.Tests[1].Terms)
	}
}

func TestSpecificity(t *testing.T) {
	src := `
(literalize a x y)
(p one (a ^x 1) --> (halt))
(p two (a ^x 1 ^y 2) (a ^x 2) --> (halt))
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Production("one").Specificity; got != 2 {
		t.Errorf("one specificity = %d, want 2", got)
	}
	if got := prog.Production("two").Specificity; got != 5 {
		t.Errorf("two specificity = %d, want 5", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown top form", "(zap foo)"},
		{"bad strategy", "(strategy fifo)"},
		{"empty lhs", "(literalize a x)(p r --> (halt))"},
		{"negated first", "(literalize a x)(p r - (a) --> (halt))"},
		{"unknown action", "(literalize a x)(p r (a) --> (explode))"},
		{"bad elem ref", "(literalize a x)(p r (a) --> (remove 0))"},
		{"out of range ref", "(literalize a x)(p r (a) --> (remove 2))"},
		{"modify no sets", "(literalize a x)(p r (a) --> (modify 1))"},
		{"empty conj", "(literalize a x)(p r (a ^x { }) --> (halt))"},
		{"empty disj", "(literalize a x)(p r (a ^x << >>) --> (halt))"},
		{"disj with pred", "(literalize a x)(p r (a ^x > << 1 2 >>) --> (halt))"},
		{"undeclared class in CE", "(literalize a x)(p r (b) --> (halt))"},
		{"undeclared attr in CE", "(literalize a x)(p r (a ^zap 1) --> (halt))"},
		{"undeclared class in make", "(literalize a x)(p r (a) --> (make b))"},
		{"undeclared attr in make", "(literalize a x)(p r (a) --> (make a ^zap 1))"},
		{"unbound rhs var", "(literalize a x)(p r (a) --> (make a ^x <v>))"},
		{"unbound pred var", "(literalize a x)(p r (a ^x > <v>) --> (halt))"},
		{"undeclared external", "(literalize a x)(p r (a) --> (call zap 1))"},
		{"dup production", "(literalize a x)(p r (a) --> (halt))(p r (a) --> (halt))"},
		{"dup class", "(literalize a x)(literalize a y)"},
		{"elemvar on negated", "(literalize a x)(p r (a) - { <e> (a) } --> (halt))"},
		{"remove negated ce", "(literalize a x)(p r (a) - (a ^x 1) --> (remove 2))"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected parse/sema error", c.name)
		}
	}
}

func TestSemaAllowsLocalNegatedVars(t *testing.T) {
	// A variable whose only occurrences are inside one negated CE is
	// legal (local consistency).
	src := `
(literalize a x y)
(p r (a ^x 1) - (a ^x <v> ^y <v>) --> (halt))
`
	if _, err := Parse(src); err != nil {
		t.Errorf("local negated variable should be legal: %v", err)
	}
}

func TestProductionStringRoundTrip(t *testing.T) {
	prog, err := Parse(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	// The pretty-printed production must re-parse to the same structure.
	p := prog.Production("find-block")
	src2 := "(literalize goal want status)(literalize block id color size on)(external log-it measure)" + p.String()
	prog2, err := Parse(src2)
	if err != nil {
		t.Fatalf("pretty-printed production failed to re-parse: %v\n%s", err, p)
	}
	p2 := prog2.Production("find-block")
	if p2.Specificity != p.Specificity || len(p2.LHS) != len(p.LHS) || len(p2.RHS) != len(p.RHS) {
		t.Errorf("round trip changed structure:\n%s\n%s", p, p2)
	}
}

func TestParseElemVarBothOrders(t *testing.T) {
	src := `
(literalize a x)
(p r1 { <e> (a ^x 1) } --> (remove <e>))
(p r2 { (a ^x 1) <e> } --> (remove <e>))
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Productions[0].LHS[0].ElemVar != "e" || prog.Productions[1].LHS[0].ElemVar != "e" {
		t.Error("element variable not captured in both orders")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad source")
		}
	}()
	MustParse("(p broken")
}

func TestParseComputeOperators(t *testing.T) {
	src := `
(literalize a x)
(p r (a ^x <v>)
  -->
  (make a ^x (compute <v> + 1 - 2 * 3 // 4 \\ 5)))
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	mk := prog.Productions[0].RHS[0].(MakeAction)
	ce := mk.Sets[0].Expr.(ComputeExpr)
	if len(ce.Operands) != 6 || len(ce.Ops) != 5 {
		t.Fatalf("compute arity: %d operands, %d ops", len(ce.Operands), len(ce.Ops))
	}
	if string(ce.Ops) != "+-*/%" {
		t.Errorf("ops = %q", ce.Ops)
	}
}

func TestParserReportsProductionName(t *testing.T) {
	_, err := Parse("(literalize a x)(p myrule (a ^zap 1) --> (halt))")
	if err == nil || !strings.Contains(err.Error(), "myrule") {
		t.Errorf("error should mention production name: %v", err)
	}
}
