package ops5

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"spampsm/internal/rete"
)

// Engine-level incremental-update oracles: RetractBatch and
// ResetForUpdate must leave a warm engine observably identical to a
// fresh one loaded with the surviving seed set. Absolute timetags are
// the one legitimate difference — a warm engine's tag counter never
// rewinds — so the oracles compare tag-normalized projections: every
// timetag is replaced by its rank in the engine's own sorted tag
// population, which is invariant across the warm/fresh divide exactly
// when the engines created and destroyed corresponding WMEs in the
// same order.

var (
	fireLineRE = regexp.MustCompile(`^(\d+\. .+ )\[([0-9 ]*)\]$`)
	wmLineRE   = regexp.MustCompile(`^((?:=>|<=)WM: )(\d+)( .*)$`)
)

// traceTags records every timetag a firing trace mentions.
func traceTags(trace string, tags map[int]bool) {
	for _, line := range strings.Split(trace, "\n") {
		if m := fireLineRE.FindStringSubmatch(line); m != nil {
			for _, f := range strings.Fields(m[2]) {
				n, _ := strconv.Atoi(f)
				tags[n] = true
			}
		} else if m := wmLineRE.FindStringSubmatch(line); m != nil {
			n, _ := strconv.Atoi(m[2])
			tags[n] = true
		}
	}
}

// remapTrace rewrites the timetag fields of a firing trace through the
// rank map, leaving WME bodies untouched.
func remapTrace(trace string, rank map[int]int) string {
	var b strings.Builder
	for _, line := range strings.Split(trace, "\n") {
		if m := fireLineRE.FindStringSubmatch(line); m != nil {
			fields := strings.Fields(m[2])
			for i, f := range fields {
				n, _ := strconv.Atoi(f)
				fields[i] = strconv.Itoa(rank[n])
			}
			b.WriteString(m[1] + "[" + strings.Join(fields, " ") + "]")
		} else if m := wmLineRE.FindStringSubmatch(line); m != nil {
			n, _ := strconv.Atoi(m[2])
			b.WriteString(m[1] + strconv.Itoa(rank[n]) + m[3])
		} else {
			b.WriteString(line)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// normState is the tag-normalized engine projection the incremental
// oracles compare: firing trace, live WM, unfired conflict set, and
// run statistics, with every timetag replaced by its rank.
type normState struct {
	trace    string
	dump     string
	conflict []string
	stats    RunStats
}

func normalizedState(e *Engine, trace string) normState {
	tags := map[int]bool{}
	traceTags(trace, tags)
	for _, w := range e.Memory().Snapshot() {
		tags[w.TimeTag] = true
	}
	for _, in := range e.cs.insts {
		for _, tg := range in.tags {
			tags[tg] = true
		}
	}
	sorted := make([]int, 0, len(tags))
	for tg := range tags {
		sorted = append(sorted, tg)
	}
	sort.Ints(sorted)
	rank := make(map[int]int, len(sorted))
	for i, tg := range sorted {
		rank[tg] = i + 1
	}

	var dump bytes.Buffer
	for _, w := range e.Memory().Snapshot() {
		fmt.Fprintf(&dump, "%d: %s\n", rank[w.TimeTag], w)
	}
	var cs []string
	for _, in := range e.cs.insts {
		if in.fired {
			continue
		}
		rtags := make([]int, len(in.tags))
		for i, tg := range in.tags {
			rtags[i] = rank[tg]
		}
		cs = append(cs, fmt.Sprintf("%s %v", in.cp.prod.Name, rtags))
	}
	sort.Strings(cs)
	return normState{
		trace:    remapTrace(trace, rank),
		dump:     dump.String(),
		conflict: cs,
		stats:    e.Stats(),
	}
}

func normStatesEqual(t *testing.T, label string, ref, got normState) {
	t.Helper()
	if ref.trace != got.trace {
		t.Errorf("%s: firing traces differ:\nref:\n%s\ngot:\n%s", label, ref.trace, got.trace)
	}
	if ref.dump != got.dump {
		t.Errorf("%s: WM snapshots differ:\nref:\n%s\ngot:\n%s", label, ref.dump, got.dump)
	}
	if !reflect.DeepEqual(ref.conflict, got.conflict) {
		t.Errorf("%s: conflict sets differ:\nref: %v\ngot: %v", label, ref.conflict, got.conflict)
	}
	// InitInstr legitimately differs: a warm engine is charged for the
	// retraction (network unloading) on top of the reload, where the
	// fresh reference pays for its load alone. Everything else must be
	// byte-identical; the extra init charge must never be negative.
	refStats, gotStats := ref.stats, got.stats
	refStats.InitInstr, gotStats.InitInstr = 0, 0
	if refStats != gotStats {
		t.Errorf("%s: run stats differ:\nref: %+v\ngot: %+v", label, ref.stats, got.stats)
	}
	if got.stats.InitInstr < ref.stats.InitInstr {
		t.Errorf("%s: warm init charge %v below fresh %v — retract work uncharged?",
			label, got.stats.InitInstr, ref.stats.InitInstr)
	}
}

func subCounters(a, b rete.Counters) rete.Counters {
	return rete.Counters{
		ConstTests:    a.ConstTests - b.ConstTests,
		JoinTests:     a.JoinTests - b.JoinTests,
		TokensCreated: a.TokensCreated - b.TokensCreated,
		TokensDeleted: a.TokensDeleted - b.TokensDeleted,
		Activations:   a.Activations - b.Activations,
		Cost:          a.Cost - b.Cost,
	}
}

// TestDifferentialResetForUpdateVsFresh is the warm-engine oracle the
// session layer's engine retention relies on: after a full
// load-and-run cycle, ResetForUpdate + AssertBatch + Run must replay
// the identical interpretation a fresh engine produces — same
// normalized firing trace, WM, conflict set and run statistics, and
// the same match-counter delta over the load+run window (token
// creation included, proving the wiped network held no residue).
func TestDifferentialResetForUpdateVsFresh(t *testing.T) {
	for _, tc := range diffPrograms {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := Parse(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			rows := diffSeedRows(t, prog)
			seeds := make([]Seed, len(rows))
			for i, r := range rows {
				seeds[i] = r.seed
			}

			var freshTrace bytes.Buffer
			fresh, err := NewEngine(prog, WithTrace(&freshTrace))
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.AssertBatch(seeds); err != nil {
				t.Fatal(err)
			}
			if _, err := fresh.Run(5000); err != nil {
				t.Fatal(err)
			}
			ref := normalizedState(fresh, freshTrace.String())
			freshTotals := fresh.MatchCounters()

			var warmTrace bytes.Buffer
			warm, err := NewEngine(prog, WithTrace(&warmTrace))
			if err != nil {
				t.Fatal(err)
			}
			if err := warm.AssertBatch(seeds); err != nil {
				t.Fatal(err)
			}
			if _, err := warm.Run(5000); err != nil {
				t.Fatal(err)
			}
			if err := warm.ResetForUpdate(); err != nil {
				t.Fatal(err)
			}
			if n := warm.Memory().Size(); n != 0 {
				t.Fatalf("reset left %d live WMEs", n)
			}
			if n := warm.ConflictSetSize(); n != 0 {
				t.Fatalf("reset left %d live instantiations", n)
			}
			base := warm.MatchCounters()
			warmTrace.Reset()
			if err := warm.AssertBatch(seeds); err != nil {
				t.Fatal(err)
			}
			if _, err := warm.Run(5000); err != nil {
				t.Fatal(err)
			}
			normStatesEqual(t, tc.name, ref, normalizedState(warm, warmTrace.String()))
			if delta := subCounters(warm.MatchCounters(), base); delta != freshTotals {
				t.Errorf("match-counter delta differs from fresh totals:\nfresh: %+v\ndelta: %+v",
					freshTotals, delta)
			}
			if ref.trace == "" {
				t.Fatal("trace empty: program did not fire")
			}
		})
	}
}

// TestDifferentialRetractReassertChurn is the property-style churn
// oracle (and the graveyard-reclamation regression test — make oracle
// runs it under -race): for random seed subsets, loading everything,
// retracting the subset and re-asserting it must be observably
// identical to a fresh engine that asserted the kept rows followed by
// the subset — before and after running to quiescence.
func TestDifferentialRetractReassertChurn(t *testing.T) {
	for _, tc := range diffPrograms {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := Parse(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			rows := diffSeedRows(t, prog)
			rng := rand.New(rand.NewSource(1990))
			for trial := 0; trial < 12; trial++ {
				inSubset := make([]bool, len(rows))
				n := 0
				for n == 0 || n == len(rows) {
					n = 0
					for i := range rows {
						inSubset[i] = rng.Intn(3) == 0
						if inSubset[i] {
							n++
						}
					}
				}
				var kept, subset []Seed
				for i, r := range rows {
					if inSubset[i] {
						subset = append(subset, r.seed)
					} else {
						kept = append(kept, r.seed)
					}
				}

				var churnTrace bytes.Buffer
				churn, err := NewEngine(prog, WithTrace(&churnTrace))
				if err != nil {
					t.Fatal(err)
				}
				all := make([]Seed, len(rows))
				for i, r := range rows {
					all[i] = r.seed
				}
				if err := churn.AssertBatch(all); err != nil {
					t.Fatal(err)
				}
				// Seeds were asserted in row order into an empty memory,
				// so snapshot position i is row i.
				wmes := churn.Memory().Snapshot()
				victims := wmes[:0:0]
				for i, w := range wmes {
					if inSubset[i] {
						victims = append(victims, w)
					}
				}
				if err := churn.RetractBatch(victims); err != nil {
					t.Fatal(err)
				}
				if err := churn.AssertBatch(subset); err != nil {
					t.Fatal(err)
				}

				var refTrace bytes.Buffer
				ref, err := NewEngine(prog, WithTrace(&refTrace))
				if err != nil {
					t.Fatal(err)
				}
				if err := ref.AssertBatch(kept); err != nil {
					t.Fatal(err)
				}
				if err := ref.AssertBatch(subset); err != nil {
					t.Fatal(err)
				}

				label := fmt.Sprintf("trial %d (churn %d/%d)", trial, n, len(rows))
				normStatesEqual(t, label+" preRun", normalizedState(ref, ""), normalizedState(churn, ""))
				if _, err := churn.Run(5000); err != nil {
					t.Fatal(err)
				}
				if _, err := ref.Run(5000); err != nil {
					t.Fatal(err)
				}
				normStatesEqual(t, label, normalizedState(ref, refTrace.String()),
					normalizedState(churn, churnTrace.String()))
			}
		})
	}
}
