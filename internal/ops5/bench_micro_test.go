package ops5

import (
	"testing"

	"spampsm/internal/symtab"
)

// BenchmarkRecognizeActCycle measures raw engine throughput on the
// counter loop (one modify per firing).
func BenchmarkRecognizeActCycle(b *testing.B) {
	prog := MustParse(`
(literalize count n limit)
(p step (count ^n <n> ^limit > <n>) --> (modify 1 ^n (compute <n> + 1)))
`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := NewEngine(prog)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Assert("count", map[string]symtab.Value{
			"n": symtab.Int(0), "limit": symtab.Int(1000),
		}); err != nil {
			b.Fatal(err)
		}
		fired, err := e.Run(0)
		if err != nil || fired != 1000 {
			b.Fatalf("fired %d err %v", fired, err)
		}
	}
}

// BenchmarkJoinHeavyMatch measures a join-heavy workload: each firing
// re-matches a three-way join over a populated working memory.
func BenchmarkJoinHeavyMatch(b *testing.B) {
	prog := MustParse(`
(literalize tick n limit)
(literalize item id group val)
(p drive (tick ^n <n> ^limit > <n>) --> (modify 1 ^n (compute <n> + 1)))
`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := NewEngine(prog)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 200; j++ {
			e.Assert("item", map[string]symtab.Value{
				"id": symtab.Int(int64(j)), "group": symtab.Int(int64(j % 8)),
				"val": symtab.Int(int64(-j)),
			})
		}
		e.Assert("tick", map[string]symtab.Value{"n": symtab.Int(0), "limit": symtab.Int(200)})
		if _, err := e.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}

// benchProgram returns the mid-sized 40-rule program used by the
// engine-construction benchmarks.
func benchProgram() *Program {
	src := `
(literalize a x y z)
(literalize b u v w)
`
	for i := 0; i < 40; i++ {
		src += `
(p rule` + string(rune('a'+i%26)) + string(rune('0'+i/26)) + `
   (a ^x <x> ^y > 3)
   (b ^u <x> ^v <> <x>)
 - (b ^w <x>)
  -->
   (make a ^x (compute <x> + 1)))
`
	}
	return MustParse(src)
}

// BenchmarkCompile measures production-memory compilation (Rete
// template construction) for a mid-sized program. WithFreshCompile
// bypasses the Program's compiled-variant cache, so every iteration
// pays the full compile — the pre-template cost of NewEngine.
func BenchmarkCompile(b *testing.B) {
	prog := benchProgram()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewEngine(prog, WithFreshCompile()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineBuild contrasts the two ways a task engine comes into
// existence: "recompile" builds the Rete network from scratch per
// engine (the pre-template behavior, kept reachable through
// WithFreshCompile), while "instantiate" reuses the Program's cached
// compiled template and pays only O(nodes) state setup. The ratio is
// the per-task saving of the compile-once design.
func BenchmarkEngineBuild(b *testing.B) {
	prog := benchProgram()
	b.Run("recompile", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := NewEngine(prog, WithFreshCompile()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("instantiate", func(b *testing.B) {
		if _, err := NewEngine(prog); err != nil { // warm the variant cache
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := NewEngine(prog); err != nil {
				b.Fatal(err)
			}
		}
	})
}
