package ops5

import (
	"bytes"
	"strings"
	"testing"

	"spampsm/internal/symtab"
)

func TestMultipleRemoveRefs(t *testing.T) {
	e := mustEngine(t, `
(literalize a x)
(literalize b y)
(p sweep (a) (b) --> (remove 1 2))
`)
	e.Assert("a", nil)
	e.Assert("b", nil)
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(e.WMEs("a")) != 0 || len(e.WMEs("b")) != 0 {
		t.Error("both elements should be removed by one remove form")
	}
}

func TestRemoveNoRefsRejected(t *testing.T) {
	if _, err := Parse("(literalize a x)(p r (a) --> (remove))"); err == nil {
		t.Error("remove with no references must fail to parse")
	}
}

func TestTraceOutput(t *testing.T) {
	var tr bytes.Buffer
	e := mustEngine(t, `
(literalize count n limit)
(p step (count ^n <n> ^limit > <n>) --> (modify 1 ^n (compute <n> + 1)))
`, WithTrace(&tr))
	e.Assert("count", map[string]symtab.Value{"n": symtab.Int(0), "limit": symtab.Int(2)})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	out := tr.String()
	if !strings.Contains(out, "1. step") || !strings.Contains(out, "2. step") {
		t.Errorf("trace missing firing lines:\n%s", out)
	}
	if !strings.Contains(out, "=>WM") || !strings.Contains(out, "<=WM") {
		t.Errorf("trace missing WM changes:\n%s", out)
	}
}

func TestIntrospection(t *testing.T) {
	e := mustEngine(t, `
(literalize a x)
(p one (a ^x 1) --> (halt))
(p two (a ^x <v>) --> (halt))
`)
	names := e.ProductionNames()
	if len(names) != 2 || names[0] != "one" || names[1] != "two" {
		t.Errorf("production names = %v", names)
	}
	e.Assert("a", map[string]symtab.Value{"x": symtab.Int(1)})
	cs := e.ConflictSet()
	if len(cs) != 2 {
		t.Fatalf("conflict set = %v", cs)
	}
	for _, entry := range cs {
		if !strings.Contains(entry, "[1]") {
			t.Errorf("entry %q should cite timetag 1", entry)
		}
	}
	var buf bytes.Buffer
	e.DumpWM(&buf)
	if !strings.Contains(buf.String(), "(a ^x 1)") {
		t.Errorf("WM dump = %q", buf.String())
	}
}

func TestParseWMEList(t *testing.T) {
	specs, err := ParseWMEList(`
; initial working memory
(count ^n 0 ^limit 10)
(goal ^want runway ^score 0.5)
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("specs = %d", len(specs))
	}
	if specs[0].Class != "count" || !specs[0].Sets["limit"].Equal(symtab.Int(10)) {
		t.Errorf("spec 0 = %+v", specs[0])
	}
	if !specs[1].Sets["want"].Equal(symtab.Sym("runway")) ||
		!specs[1].Sets["score"].Equal(symtab.Float(0.5)) {
		t.Errorf("spec 1 = %+v", specs[1])
	}
}

func TestParseWMEListErrors(t *testing.T) {
	for _, src := range []string{
		"count ^n 0)",       // missing (
		"(^n 0)",            // missing class
		"(count ^ 0)",       // missing attr name
		"(count ^n)",        // missing value
		"(count ^n 0",       // unterminated
		"(count ^n (deep))", // nested form
	} {
		if _, err := ParseWMEList(src); err == nil {
			t.Errorf("%q should fail", src)
		}
	}
}

func TestAssertAll(t *testing.T) {
	e := mustEngine(t, `(literalize count n limit)`)
	specs, _ := ParseWMEList("(count ^n 1)(count ^n 2)")
	if err := e.AssertAll(specs); err != nil {
		t.Fatal(err)
	}
	if len(e.WMEs("count")) != 2 {
		t.Error("AssertAll should add both WMEs")
	}
	bad, _ := ParseWMEList("(zork ^n 1)")
	if err := e.AssertAll(bad); err == nil {
		t.Error("AssertAll of undeclared class must fail")
	}
}

// TestMonkeyAndBananas runs a classic OPS5 planning program end to end:
// a monkey must push a ladder beneath the bananas, climb it, and grab
// them. Exercises MEA control, negations, element variables and
// multi-step state modification.
func TestMonkeyAndBananas(t *testing.T) {
	var out bytes.Buffer
	e := mustEngine(t, `
(strategy mea)
(literalize goal status task)
(literalize monkey at on holds)
(literalize object name at weight on)

; If the monkey should grab something that hangs from the ceiling and
; the ladder is not beneath it, push the ladder there.
(p push-ladder
   (goal ^status active ^task grab)
   (object ^name bananas ^at <place> ^on ceiling)
 - (object ^name ladder ^at <place>)
   { <l> (object ^name ladder) }
   { <m> (monkey ^on floor) }
  -->
   (modify <l> ^at <place>)
   (modify <m> ^at <place>))

; With the ladder in place, climb it.
(p climb-ladder
   (goal ^status active ^task grab)
   (object ^name bananas ^at <place> ^on ceiling)
   (object ^name ladder ^at <place>)
   { <m> (monkey ^at <place> ^on floor) }
  -->
   (modify <m> ^on ladder))

; On the ladder beneath the bananas: grab them.
(p grab-bananas
   { <g> (goal ^status active ^task grab) }
   (object ^name bananas ^at <place>)
   (object ^name ladder ^at <place>)
   { <m> (monkey ^at <place> ^on ladder ^holds nil-thing) }
  -->
   (modify <m> ^holds bananas)
   (modify <g> ^status done)
   (write the monkey has the bananas (crlf)))
`, WithOutput(&out))
	e.Assert("goal", map[string]symtab.Value{"status": symtab.Sym("active"), "task": symtab.Sym("grab")})
	e.Assert("monkey", map[string]symtab.Value{"at": symtab.Sym("door"), "on": symtab.Sym("floor"), "holds": symtab.Sym("nil-thing")})
	e.Assert("object", map[string]symtab.Value{"name": symtab.Sym("bananas"), "at": symtab.Sym("window"), "on": symtab.Sym("ceiling")})
	e.Assert("object", map[string]symtab.Value{"name": symtab.Sym("ladder"), "at": symtab.Sym("corner"), "on": symtab.Sym("floor")})
	fired, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 3 {
		t.Errorf("plan length = %d firings, want 3 (push, climb, grab)", fired)
	}
	monkey := e.WMEs("monkey")[0]
	if !monkey.Get("holds").Equal(symtab.Sym("bananas")) {
		t.Errorf("monkey holds %v", monkey.Get("holds"))
	}
	if !strings.Contains(out.String(), "bananas") {
		t.Errorf("output = %q", out.String())
	}
	goal := e.WMEs("goal")[0]
	if !goal.Get("status").Equal(symtab.Sym("done")) {
		t.Error("goal should be done")
	}
}
