package ops5_test

import (
	"fmt"
	"os"

	"spampsm/internal/ops5"
	"spampsm/internal/symtab"
)

// Example runs a two-rule production system to quiescence.
func Example() {
	prog, err := ops5.Parse(`
(literalize box size label)
(p label-big
   { <b> (box ^size > 10 ^label none) }
  -->
   (modify <b> ^label big))
(p label-small
   { <b> (box ^size <= 10 ^label none) }
  -->
   (modify <b> ^label small))
`)
	if err != nil {
		panic(err)
	}
	e, err := ops5.NewEngine(prog)
	if err != nil {
		panic(err)
	}
	for _, size := range []int64{5, 25} {
		e.Assert("box", map[string]symtab.Value{
			"size": symtab.Int(size), "label": symtab.Sym("none"),
		})
	}
	fired, _ := e.Run(0)
	fmt.Println("firings:", fired)
	for _, w := range e.WMEs("box") {
		fmt.Printf("size %v -> %v\n", w.Get("size"), w.Get("label"))
	}
	// The 25-box is more recent, so LEX fires it first and its modified
	// WME carries the earlier new timetag.
	// Output:
	// firings: 2
	// size 25 -> big
	// size 5 -> small
}

// ExampleEngine_Register shows an external function metering its own
// simulated cost — how SPAM's geometry is attached to rules.
func ExampleEngine_Register() {
	prog := ops5.MustParse(`
(literalize reading v doubled)
(external double)
(p go { <r> (reading ^v <v> ^doubled none) } -->
   (modify <r> ^doubled (double <v>)))
`)
	e, _ := ops5.NewEngine(prog)
	e.Register("double", func(args []symtab.Value) (symtab.Value, float64, error) {
		return symtab.Int(2 * args[0].IntVal()), 1000, nil // 1000 simulated instructions
	})
	e.Assert("reading", map[string]symtab.Value{"v": symtab.Int(21), "doubled": symtab.Sym("none")})
	e.Run(0)
	fmt.Println(e.WMEs("reading")[0].Get("doubled"))
	// Output: 42
}

// ExampleShell drives the interactive top level programmatically.
func ExampleShell() {
	prog := ops5.MustParse(`
(literalize count n limit)
(p step (count ^n <n> ^limit > <n>) --> (modify 1 ^n (compute <n> + 1)))
`)
	e, _ := ops5.NewEngine(prog)
	sh := &ops5.Shell{Engine: e}
	sh.Exec("make (count ^n 0 ^limit 2)", os.Stdout)
	sh.Exec("run 0", os.Stdout)
	sh.Exec("wm count", os.Stdout)
	// Output:
	// asserted 1 element(s)
	// 2 firings (quiescent)
	// 3: (count ^n 2 ^limit 2)
}
