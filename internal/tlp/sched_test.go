package tlp

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// memTask builds a count task with a modeled footprint and group.
func memTask(id string, n int, mem float64, group string) *Task {
	t := countTask(id, n)
	t.MemEst = mem
	t.Group = group
	return t
}

// schedTaskSet is the differential workload: a dozen tasks over three
// groups with distinct sizes and footprints. Built fresh per run so
// every configuration executes its own engines.
func schedTaskSet() []*Task {
	var tasks []*Task
	for i := 0; i < 12; i++ {
		tasks = append(tasks, memTask(
			fmt.Sprintf("t%d", i),
			2+i%5,
			float64(1+i%4)*1024,
			[]string{"b", "rd", "rs"}[i%3],
		))
	}
	return tasks
}

// TestDifferentialSchedulingPolicies is the runtime scheduling oracle:
// the same task set must produce byte-identical per-task results —
// firing statistics and full cost logs, memory records included —
// under every policy, every memory budget and both serial and parallel
// worker counts. Policies and budgets may only permute and delay
// execution, never change it.
func TestDifferentialSchedulingPolicies(t *testing.T) {
	type key struct{ id string }
	baselinePool := &Pool{Workers: 1, Policy: FIFO}
	base, err := baselinePool.Run(schedTaskSet())
	if err != nil {
		t.Fatal(err)
	}
	want := map[key]*Result{}
	for _, r := range base {
		want[key{r.TaskID}] = r
	}
	for _, pol := range []QueuePolicy{FIFO, LargestFirst, PostOrder} {
		for _, budget := range []float64{0, 1, 2048, 1 << 20} {
			for _, workers := range []int{1, 4} {
				name := fmt.Sprintf("%v/B=%g/w=%d", pol, budget, workers)
				p := &Pool{Workers: workers, Policy: pol, MemBudget: budget}
				results, err := p.Run(schedTaskSet())
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if len(results) != len(base) {
					t.Fatalf("%s: %d results, want %d", name, len(results), len(base))
				}
				for _, r := range results {
					w := want[key{r.TaskID}]
					if w == nil {
						t.Fatalf("%s: unexpected task %q", name, r.TaskID)
					}
					if !reflect.DeepEqual(r.Stats, w.Stats) {
						t.Errorf("%s: task %s stats diverge: %+v vs %+v", name, r.TaskID, r.Stats, w.Stats)
					}
					if !reflect.DeepEqual(r.Log, w.Log) {
						t.Errorf("%s: task %s cost log diverges (memory records included)", name, r.TaskID)
					}
				}
			}
		}
	}
}

// TestPostOrderQueueGrouping: with one worker, PostOrder must execute
// whole groups contiguously, groups in decreasing aggregate footprint,
// larger tasks first within each group.
func TestPostOrderQueueGrouping(t *testing.T) {
	tasks := []*Task{
		memTask("a1", 2, 100, "a"), memTask("b1", 2, 500, "b"),
		memTask("a2", 2, 300, "a"), memTask("b2", 2, 200, "b"),
	}
	p := &Pool{Workers: 1, Policy: PostOrder}
	results, err := p.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range results {
		got = append(got, r.TaskID)
	}
	// Group b aggregates 700 vs a's 400; within groups footprint descends.
	want := []string{"b1", "b2", "a2", "a1"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("postorder queue = %v, want %v", got, want)
	}
}

func TestMemGateBudgetNeverExceeded(t *testing.T) {
	const budget = 300
	g := newMemGate(budget)
	var mu sync.Mutex
	var inUse, peak float64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		amt := float64(100 + 50*(i%3))
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := g.acquire(context.Background(), amt)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			inUse += got
			if inUse > peak {
				peak = inUse
			}
			if inUse > budget {
				t.Errorf("aggregate reservation %v exceeds budget", inUse)
			}
			mu.Unlock()
			mu.Lock()
			inUse -= got
			mu.Unlock()
			g.release(got)
		}()
	}
	wg.Wait()
	st := g.stats()
	if st.Budget != budget {
		t.Errorf("stats budget = %v", st.Budget)
	}
	if st.PeakReserved > budget {
		t.Errorf("peak reserved %v exceeds budget", st.PeakReserved)
	}
	if peak > budget {
		t.Errorf("observed peak %v exceeds budget", peak)
	}
}

// TestMemGateOversizedClamped: a reservation larger than the whole
// budget is clamped, so it admits once the gate is empty instead of
// deadlocking.
func TestMemGateOversizedClamped(t *testing.T) {
	g := newMemGate(100)
	got, err := g.acquire(context.Background(), 250)
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Errorf("oversized reservation = %v, want clamped 100", got)
	}
	g.release(got)
}

func TestMemGateNilAdmitsEverything(t *testing.T) {
	var g *memGate // MemBudget 0
	got, err := g.acquire(context.Background(), 1e9)
	if got != 0 || err != nil {
		t.Errorf("nil gate acquire = %v, %v", got, err)
	}
	g.release(got)
	if st := g.stats(); st != (MemSchedStats{}) {
		t.Errorf("nil gate stats = %+v", st)
	}
}

// TestMemGateCancelledWhileThrottled: a waiter blocked on the budget
// must be released by context cancellation with the context's error.
func TestMemGateCancelledWhileThrottled(t *testing.T) {
	g := newMemGate(100)
	held, err := g.acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := g.acquire(ctx, 50)
		errc <- err
	}()
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Errorf("throttled acquire returned %v, want context.Canceled", err)
	}
	g.release(held)
	if st := g.stats(); st.ThrottleWaits != 1 {
		t.Errorf("throttle waits = %d, want 1", st.ThrottleWaits)
	}
}

// TestPoolMemSchedAccumulates: one pool's gate spans its runs, so the
// budget and the throttle accounting cover a whole multi-phase
// interpretation.
func TestPoolMemSchedAccumulates(t *testing.T) {
	p := &Pool{Workers: 4, MemBudget: 1500}
	for run := 0; run < 2; run++ {
		if _, err := p.Run(schedTaskSet()); err != nil {
			t.Fatal(err)
		}
	}
	st := p.MemSched()
	if st.Budget != 1500 {
		t.Errorf("budget = %v", st.Budget)
	}
	if st.PeakReserved <= 0 || st.PeakReserved > 1500 {
		t.Errorf("peak reserved = %v, want in (0, 1500]", st.PeakReserved)
	}
}

// TestSharedPoolMemBudget: the shared pool's gate throttles across
// submissions and surfaces its accounting in Counters.
func TestSharedPoolMemBudget(t *testing.T) {
	sp := NewSharedPool(4, 64)
	sp.MemBudget = 2048
	defer sp.Close()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results, err := sp.Submit(context.Background(), &Pool{}, schedTaskSet())
			if err != nil {
				t.Error(err)
				return
			}
			for _, r := range results {
				if r.Err != nil {
					t.Errorf("task %s: %v", r.TaskID, r.Err)
				}
			}
		}()
	}
	wg.Wait()
	st := sp.Stats()
	if st.MemBudget != 2048 {
		t.Errorf("counters budget = %v", st.MemBudget)
	}
	if st.PeakMemEst <= 0 || st.PeakMemEst > 2048 {
		t.Errorf("counters peak = %v, want in (0, 2048]", st.PeakMemEst)
	}
}
