package tlp

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"spampsm/internal/faults"
	"spampsm/internal/ops5"
	"spampsm/internal/symtab"
)

// failTask builds a task whose Build always fails — the cheapest way
// to drive the retry loop without engine work.
func failTask(id string) *Task {
	return &Task{
		ID:    id,
		Build: func() (*ops5.Engine, error) { return nil, errors.New("induced") },
	}
}

// blockingTask builds a task that never quiesces: its external blocks
// on release the first time through (so a test can hold the attempt
// in-flight deterministically) and each firing re-arms the next, so
// once released the engine keeps cycling until it observes an
// interrupt. started is closed when the external is first entered.
func blockingTask(id string, started chan<- struct{}, release <-chan struct{}) *Task {
	var once sync.Once
	return &Task{
		ID: id,
		Build: func() (*ops5.Engine, error) {
			prog, err := ops5.Parse(`
(literalize count n)
(external block)
(p spin (count ^n <n>) --> (call block) (modify 1 ^n (compute <n> + 1)))
`)
			if err != nil {
				return nil, err
			}
			e, err := ops5.NewEngine(prog)
			if err != nil {
				return nil, err
			}
			e.Register("block", func(args []symtab.Value) (symtab.Value, float64, error) {
				once.Do(func() { close(started) })
				<-release
				return symtab.Nil, 0, nil
			})
			_, err = e.Assert("count", map[string]symtab.Value{"n": symtab.Int(0)})
			return e, err
		},
	}
}

// A pre-cancelled context skips every task: nothing is built or run,
// every Result carries ErrCancelled, and nothing is quarantined.
func TestRunContextPreCancelledSkipsTasks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tasks := []*Task{countTask("a", 3), countTask("b", 3)}
	results, err := (&Pool{Workers: 2}).RunContext(ctx, tasks)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !errors.Is(r.Err, ErrCancelled) {
			t.Errorf("task %s: err = %v, want ErrCancelled", r.TaskID, r.Err)
		}
		if !r.Cancelled {
			t.Errorf("task %s: Cancelled flag not set", r.TaskID)
		}
		if r.Quarantined {
			t.Errorf("task %s: cancelled task must not be quarantined", r.TaskID)
		}
		if r.Attempts != 0 {
			t.Errorf("task %s: attempts = %d, want 0", r.TaskID, r.Attempts)
		}
	}
	rep := Report(results)
	if rep.Cancelled != 2 || rep.Quarantined != 0 || rep.Retries != 0 {
		t.Errorf("report: cancelled=%d quarantined=%d retries=%d, want 2/0/0",
			rep.Cancelled, rep.Quarantined, rep.Retries)
	}
}

// Cancelling mid-attempt interrupts the engine cooperatively and the
// task fails with ErrCancelled, not ErrTimeout.
func TestRunContextCancelsInFlightAttempt(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	var results []*Result
	var runErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		results, runErr = (&Pool{Workers: 1}).RunContext(ctx, []*Task{blockingTask("blk", started, release)})
	}()
	<-started
	cancel()
	// The external is blocking inside the engine; release it so the
	// recognize-act loop can observe the interrupt flag.
	close(release)
	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	r := results[0]
	if !errors.Is(r.Err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", r.Err)
	}
	if errors.Is(r.Err, ErrTimeout) {
		t.Error("cancellation misclassified as timeout")
	}
	if r.Quarantined {
		t.Error("cancelled task must not be quarantined")
	}
}

// A cancelled run must not sit out its retry backoff: with a huge
// backoff configured, cancellation during the sleep returns promptly.
func TestRetryBackoffRespectsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		Workers:      1,
		MaxRetries:   3,
		RetryBackoff: time.Hour, // the test fails by timeout if slept
	}
	done := make(chan []*Result, 1)
	go func() {
		results, err := p.RunContext(ctx, []*Task{failTask("f")})
		if err != nil {
			t.Error(err)
		}
		done <- results
	}()
	// Give the first attempt a moment to fail and enter the backoff,
	// then cancel; the run must return long before the hour is up.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case results := <-done:
		r := results[0]
		if !errors.Is(r.Err, ErrCancelled) {
			t.Fatalf("err = %v, want ErrCancelled", r.Err)
		}
		if r.Quarantined {
			t.Error("cancelled-in-backoff task must not be quarantined")
		}
		if len(r.AttemptErrs) == 0 {
			t.Error("the failed attempt before the backoff was not recorded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after cancellation during backoff")
	}
}

// RunContext with a live context behaves exactly like Run.
func TestRunContextLiveMatchesRun(t *testing.T) {
	tasks := []*Task{countTask("a", 3), countTask("b", 5)}
	results, err := (&Pool{Workers: 2}).RunContext(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if got := TotalFirings(results); got != 8 {
		t.Errorf("firings = %d, want 8", got)
	}
}

// SharedPool interleaves independent submissions and keeps their
// results separate; a cancelled submission doesn't disturb the others.
func TestSharedPoolIsolatesSubmissions(t *testing.T) {
	sp := NewSharedPool(4, 0)
	defer sp.Close()

	ctxLive := context.Background()
	ctxDead, cancel := context.WithCancel(context.Background())
	cancel()

	var wg sync.WaitGroup
	var live1, live2, dead []*Result
	var err1, err2, err3 error
	wg.Add(3)
	go func() {
		defer wg.Done()
		live1, err1 = sp.Submit(ctxLive, &Pool{}, []*Task{countTask("a", 3), countTask("b", 5)})
	}()
	go func() { defer wg.Done(); live2, err2 = sp.Submit(ctxLive, &Pool{}, []*Task{countTask("c", 7)}) }()
	go func() { defer wg.Done(); dead, err3 = sp.Submit(ctxDead, &Pool{}, []*Task{countTask("d", 9)}) }()
	wg.Wait()
	if err1 != nil || err2 != nil || err3 != nil {
		t.Fatal(err1, err2, err3)
	}
	if got := TotalFirings(live1); got != 8 {
		t.Errorf("submission 1 firings = %d, want 8", got)
	}
	if got := TotalFirings(live2); got != 7 {
		t.Errorf("submission 2 firings = %d, want 7", got)
	}
	if !errors.Is(dead[0].Err, ErrCancelled) {
		t.Errorf("cancelled submission err = %v, want ErrCancelled", dead[0].Err)
	}
	st := sp.Stats()
	if st.Cancelled != 1 {
		t.Errorf("pool cancelled = %d, want 1", st.Cancelled)
	}
}

// Quarantines from cancelled submissions must not count against the
// shared pool's quarantine budget.
func TestSharedPoolQuarantineBudgetExcludesCancelled(t *testing.T) {
	sp := NewSharedPool(2, 0)
	sp.QuarantineBudget = 1
	defer sp.Close()

	// A genuinely failing task (no injection plan) on a live run: counts.
	live, err := sp.Submit(context.Background(), &Pool{MaxRetries: 0}, []*Task{failTask("poison")})
	if err != nil {
		t.Fatal(err)
	}
	if !live[0].Quarantined {
		t.Fatal("failing task on live run did not quarantine")
	}
	if !sp.Healthy() {
		t.Fatal("one quarantine within budget should stay healthy")
	}

	// The same poison on cancelled runs: skipped (or abandoned), never
	// budgeted — the pool stays healthy no matter how many arrive.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 5; i++ {
		if _, err := sp.Submit(ctx, &Pool{MaxRetries: 0}, []*Task{failTask("poison")}); err != nil {
			t.Fatal(err)
		}
	}
	if !sp.Healthy() {
		t.Error("cancelled runs' failures counted against the quarantine budget")
	}

	// A second live poison exceeds the budget of 1.
	if _, err := sp.Submit(context.Background(), &Pool{MaxRetries: 0}, []*Task{failTask("poison2")}); err != nil {
		t.Fatal(err)
	}
	if sp.Healthy() {
		t.Error("second live quarantine should exceed the budget")
	}
}

// Quarantines drawn from a run's own injected fault plan must not
// count against the shared pool's quarantine budget: one tenant
// chaos-testing itself is not evidence the shared workload is
// poisoned, and its plan must not flip /healthz for everyone else.
func TestSharedPoolQuarantineBudgetExcludesInjected(t *testing.T) {
	sp := NewSharedPool(2, 0)
	sp.QuarantineBudget = 1
	defer sp.Close()

	plan := faults.New(faults.Config{Seed: 7, BuildFailRate: 1, PermanentFraction: 1})
	for i := 0; i < 5; i++ {
		res, err := sp.Submit(context.Background(), &Pool{Faults: plan, MaxRetries: 2}, []*Task{countTask("chaos", 3)})
		if err != nil {
			t.Fatal(err)
		}
		if !res[0].Quarantined {
			t.Fatal("permanent injected fault did not quarantine")
		}
	}
	if !sp.Healthy() {
		t.Error("injected-fault quarantines counted against the shared budget")
	}
	st := sp.Stats()
	if st.InjectedQuarantines != 5 || st.Quarantined != 0 {
		t.Errorf("injected=%d budgeted=%d, want 5/0", st.InjectedQuarantines, st.Quarantined)
	}
}

// Submit after Close fails cleanly.
func TestSharedPoolClosedSubmit(t *testing.T) {
	sp := NewSharedPool(1, 0)
	sp.Close()
	if _, err := sp.Submit(context.Background(), &Pool{}, []*Task{countTask("x", 1)}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("err = %v, want ErrPoolClosed", err)
	}
}
