package tlp

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"spampsm/internal/ops5"
	"spampsm/internal/symtab"
)

// countTask builds a task whose engine counts to n.
func countTask(id string, n int) *Task {
	return &Task{
		ID:      id,
		EstSize: float64(n),
		Build: func() (*ops5.Engine, error) {
			prog, err := ops5.Parse(`
(literalize count n limit)
(p step (count ^n <n> ^limit > <n>) --> (modify 1 ^n (compute <n> + 1)))
`)
			if err != nil {
				return nil, err
			}
			e, err := ops5.NewEngine(prog)
			if err != nil {
				return nil, err
			}
			_, err = e.Assert("count", map[string]symtab.Value{
				"n": symtab.Int(0), "limit": symtab.Int(int64(n)),
			})
			return e, err
		},
	}
}

func TestSerialExecution(t *testing.T) {
	tasks := []*Task{countTask("a", 3), countTask("b", 5), countTask("c", 7)}
	results, err := RunSerial(tasks, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if got := TotalFirings(results); got != 15 {
		t.Errorf("total firings = %d, want 15", got)
	}
	if err := FirstError(results); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
	for _, r := range results {
		if r.Worker != 0 {
			t.Errorf("serial run must use worker 0, got %d", r.Worker)
		}
	}
}

func TestParallelExecution(t *testing.T) {
	var tasks []*Task
	for i := 0; i < 20; i++ {
		tasks = append(tasks, countTask(fmt.Sprintf("t%d", i), 10))
	}
	p := &Pool{Workers: 4}
	results, err := p.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if got := TotalFirings(results); got != 200 {
		t.Errorf("total firings = %d, want 200", got)
	}
	// Results are independent engines: all succeeded.
	for i, r := range results {
		if r == nil || r.Err != nil {
			t.Fatalf("result %d: %+v", i, r)
		}
		if r.Engine == nil || len(r.Engine.WMEs("count")) != 1 {
			t.Errorf("result %d: engine state wrong", i)
		}
	}
}

func TestLargestFirstOrdering(t *testing.T) {
	tasks := []*Task{countTask("small", 1), countTask("big", 50), countTask("mid", 10)}
	p := &Pool{Workers: 1, Policy: LargestFirst}
	results, err := p.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].TaskID != "big" || results[1].TaskID != "mid" || results[2].TaskID != "small" {
		t.Errorf("LPT order wrong: %s %s %s", results[0].TaskID, results[1].TaskID, results[2].TaskID)
	}
}

func TestFIFOPreservesOrder(t *testing.T) {
	tasks := []*Task{countTask("x", 2), countTask("y", 2), countTask("z", 2)}
	p := &Pool{Workers: 1, Policy: FIFO}
	results, _ := p.Run(tasks)
	if results[0].TaskID != "x" || results[2].TaskID != "z" {
		t.Error("FIFO must preserve submission order")
	}
}

func TestBuildErrorReported(t *testing.T) {
	boom := &Task{ID: "boom", Build: func() (*ops5.Engine, error) {
		return nil, errors.New("no dataset")
	}}
	results, err := (&Pool{Workers: 2}).Run([]*Task{countTask("ok", 2), boom})
	if err != nil {
		t.Fatal(err)
	}
	ferr := FirstError(results)
	if ferr == nil || !errors.Is(ferr, ferr) {
		t.Fatal("expected task error")
	}
	// The failing task must not abort the healthy one.
	var okSeen bool
	for _, r := range results {
		if r.TaskID == "ok" && r.Err == nil {
			okSeen = true
		}
	}
	if !okSeen {
		t.Error("healthy task should still complete")
	}
}

func TestRunErrorReported(t *testing.T) {
	// A task whose engine errors during Run is reported in its Result;
	// the rest of the queue still completes.
	bad := &Task{ID: "bad", Build: func() (*ops5.Engine, error) {
		prog, err := ops5.Parse(`
(literalize a x)
(external boom)
(p r (a) --> (call boom))
`)
		if err != nil {
			return nil, err
		}
		e, err := ops5.NewEngine(prog)
		if err != nil {
			return nil, err
		}
		e.Register("boom", func(args []symtab.Value) (symtab.Value, float64, error) {
			return symtab.Nil, 0, errors.New("kaboom")
		})
		_, err = e.Assert("a", nil)
		return e, err
	}}
	results, err := (&Pool{Workers: 2}).Run([]*Task{countTask("fine", 3), bad, countTask("also-fine", 3)})
	if err != nil {
		t.Fatal(err)
	}
	var badErr error
	completed := 0
	for _, r := range results {
		if r.TaskID == "bad" {
			badErr = r.Err
		} else if r.Err == nil {
			completed++
		}
	}
	if badErr == nil || !strings.Contains(badErr.Error(), "kaboom") {
		t.Errorf("bad task error = %v", badErr)
	}
	if completed != 2 {
		t.Errorf("healthy tasks completed = %d, want 2", completed)
	}
	// Satellite: the failed task's partial cost must not be discarded —
	// the engine fired its production before the external errored.
	for _, r := range results {
		if r.TaskID == "bad" {
			if r.Log == nil || r.Stats.RHSActions == 0 {
				t.Errorf("failed task lost its partial stats/log: stats=%+v log=%v", r.Stats, r.Log)
			}
		}
	}
}

func TestLargestFirstStableOnEqualEstSize(t *testing.T) {
	// Ties on EstSize must preserve submission order (stable sort), so
	// schedules are reproducible.
	tasks := []*Task{
		countTask("big", 50),
		countTask("tie-a", 10), countTask("tie-b", 10), countTask("tie-c", 10),
		countTask("small", 1),
	}
	for _, t2 := range tasks[1:4] {
		t2.EstSize = 10
	}
	p := &Pool{Workers: 1, Policy: LargestFirst}
	results, err := p.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	got := []string{results[1].TaskID, results[2].TaskID, results[3].TaskID}
	want := []string{"tie-a", "tie-b", "tie-c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("equal-EstSize order not stable: got %v, want %v", got, want)
		}
	}
}

func TestErrorsAggregation(t *testing.T) {
	bad1 := &Task{ID: "bad1", Build: func() (*ops5.Engine, error) { return nil, errors.New("e1") }}
	bad2 := &Task{ID: "bad2", Build: func() (*ops5.Engine, error) { return nil, errors.New("e2") }}
	results, err := (&Pool{Workers: 2}).Run([]*Task{bad1, countTask("ok", 2), bad2})
	if err != nil {
		t.Fatal(err)
	}
	errs := Errors(results)
	if len(errs) != 2 {
		t.Fatalf("Errors() = %d errors, want 2", len(errs))
	}
	if !strings.Contains(errs[0].Error(), "bad1") || !strings.Contains(errs[1].Error(), "bad2") {
		t.Errorf("errors not in queue order: %v", errs)
	}
	if Errors(results[1:2]) != nil {
		t.Error("clean results must aggregate to nil")
	}
}

func TestEmptyQueueRejected(t *testing.T) {
	if _, err := (&Pool{Workers: 1}).Run(nil); err == nil {
		t.Error("empty queue must be an error")
	}
}

func TestMaxFiringsLimit(t *testing.T) {
	p := &Pool{Workers: 1, MaxFirings: 3}
	results, _ := p.Run([]*Task{countTask("limited", 100)})
	if results[0].Stats.Firings != 3 {
		t.Errorf("firings = %d, want 3", results[0].Stats.Firings)
	}
}

func TestWorkersDefault(t *testing.T) {
	p := &Pool{} // zero workers → 1
	results, err := p.Run([]*Task{countTask("one", 2)})
	if err != nil || results[0].Err != nil {
		t.Fatalf("defaulted pool failed: %v %v", err, results[0].Err)
	}
}

func TestAsynchronousIndependence(t *testing.T) {
	// Task processes must not share engine state: run many tasks that
	// would collide if working memory were shared.
	var built int32
	var tasks []*Task
	for i := 0; i < 16; i++ {
		id := fmt.Sprintf("iso%d", i)
		base := countTask(id, 4)
		tasks = append(tasks, &Task{
			ID: id,
			Build: func() (*ops5.Engine, error) {
				atomic.AddInt32(&built, 1)
				return base.Build()
			},
		})
	}
	results, err := (&Pool{Workers: 8}).Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&built) != 16 {
		t.Errorf("each task must build its own engine; built = %d", built)
	}
	for _, r := range results {
		if r.Stats.Firings != 4 {
			t.Errorf("task %s fired %d, want 4", r.TaskID, r.Stats.Firings)
		}
	}
}

func TestTotalInstrPositive(t *testing.T) {
	results, _ := RunSerial([]*Task{countTask("a", 5)}, 0)
	if TotalInstr(results) <= 0 {
		t.Error("total instructions should be positive")
	}
}
