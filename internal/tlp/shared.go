package tlp

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrPoolClosed is returned by SharedPool.Submit after Close.
var ErrPoolClosed = errors.New("tlp: shared pool closed")

// SharedPool multiplexes many concurrent runs onto one fixed set of
// task processes — the serving configuration, where every in-flight
// interpretation's tasks interleave on the same workers instead of
// each run spawning its own pool. Isolation between runs is the
// paper's independence property plus two pieces of machinery:
//
//   - Each submission carries its own context and its own Pool
//     configuration (fault plan, retries, timeouts, budgets), so one
//     run's cancellation, deadline, or chaos plan never touches
//     another run's tasks.
//   - Quarantines are accounted per class: poison tasks from live
//     runs count against the pool's quarantine budget (Healthy),
//     while tasks quarantined only because their run was cancelled,
//     or under a run's own injected fault plan, do not — a client
//     hanging up or chaos-testing itself is not evidence the shared
//     workload is poisoned.
//
// Tasks are interleaved fairly by construction: workers drain one
// shared FIFO of task-granular work items, so a run with many tasks
// cannot monopolize the workers ahead of a small run submitted while
// it executes.
type SharedPool struct {
	// QuarantineBudget is the number of non-cancelled quarantined
	// tasks the pool tolerates before reporting itself unhealthy.
	// 0 means no budget (always healthy). The budget is advisory —
	// the pool keeps executing — so serving layers can drain and
	// restart on a poisoned process without dropping in-flight work.
	QuarantineBudget int

	// MemBudget bounds the aggregate modeled footprint of the tasks
	// in flight across ALL submissions (simulated bytes; 0 disables).
	// The budget belongs to the pool because the workers do: one
	// tenant's per-run Pool.MemBudget is ignored here. Set it before
	// the first Submit.
	MemBudget float64

	queue chan *workItem
	wg    sync.WaitGroup // worker goroutines

	mu     sync.Mutex
	closed bool
	subs   sync.WaitGroup // in-flight submissions
	gate   *memGate       // lazily built from MemBudget on first use

	tasksRun    atomic.Int64
	quarantined atomic.Int64 // live, uninjected runs' quarantines only
	cancQuar    atomic.Int64 // quarantine-grade failures on cancelled runs
	injQuar     atomic.Int64 // quarantines under a run's own fault plan
	cancelled   atomic.Int64 // tasks abandoned to cancellation
}

// workItem is one task of one submission.
type workItem struct {
	sub *submission
	idx int
}

// submission is one run's task queue entering the shared pool.
type submission struct {
	ctx     context.Context
	cfg     *Pool
	queue   []*Task
	results []*Result
	done    sync.WaitGroup
}

// NewSharedPool starts a shared pool with the given number of task
// processes. queueDepth bounds the task backlog channel; submissions
// beyond it block in Submit until workers drain (admission control for
// whole runs belongs to the caller). workers and queueDepth default to
// 1 and 64× workers.
func NewSharedPool(workers, queueDepth int) *SharedPool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 64 * workers
	}
	sp := &SharedPool{queue: make(chan *workItem, queueDepth)}
	for w := 0; w < workers; w++ {
		sp.wg.Add(1)
		go func(worker int) {
			defer sp.wg.Done()
			for item := range sp.queue {
				sp.runItem(item, worker)
			}
		}(w)
	}
	return sp
}

// runItem executes one queued task under its submission's context and
// configuration, and settles the pool-level accounting.
func (sp *SharedPool) runItem(item *workItem, worker int) {
	sub := item.sub
	defer sub.done.Done()
	t := sub.queue[item.idx]
	var r *Result
	if err := sub.ctx.Err(); err != nil {
		// The run is already dead; skip the task without building it.
		r = cancelledResult(t, item.idx, 0, nil, err)
	} else if got, err := sp.memGate().acquire(sub.ctx, t.MemEst); err != nil {
		// The run died while the task waited for memory; same outcome
		// as any other pre-attempt cancellation.
		r = cancelledResult(t, item.idx, 0, nil, err)
	} else {
		r = sub.cfg.runOne(sub.ctx, t, worker, item.idx, nil)
		sp.memGate().release(got)
	}
	sp.tasksRun.Add(1)
	if r.Cancelled {
		sp.cancelled.Add(1)
	}
	if r.Quarantined {
		// Quarantines on a cancelled run don't count against the
		// budget: the task may have failed only because its run's
		// context pulled resources out from under it, and its run no
		// longer cares either way. Quarantines under a run's own
		// injected fault plan don't either — one tenant's chaos test
		// must not flip the shared pool's health for everyone else.
		switch {
		case sub.ctx.Err() != nil:
			sp.cancQuar.Add(1)
		case sub.cfg.Faults != nil:
			sp.injQuar.Add(1)
		default:
			sp.quarantined.Add(1)
		}
	}
	sub.results[item.idx] = r
}

// memGate returns the pool-wide memory gate, built from MemBudget on
// first use (nil — admit everything — when no budget is set).
func (sp *SharedPool) memGate() *memGate {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.gate == nil && sp.MemBudget > 0 {
		sp.gate = newMemGate(sp.MemBudget)
	}
	return sp.gate
}

// Submit runs one queue of tasks on the shared workers under the
// given context and per-run configuration (cfg.Workers is ignored —
// parallelism belongs to the pool). It blocks until every task has a
// Result (executed, failed, or cancelled) and returns them in queue
// order. Submissions from different goroutines interleave at task
// granularity.
func (sp *SharedPool) Submit(ctx context.Context, cfg *Pool, tasks []*Task) ([]*Result, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("tlp: empty task queue")
	}
	if cfg == nil {
		cfg = &Pool{}
	}
	sp.mu.Lock()
	if sp.closed {
		sp.mu.Unlock()
		return nil, ErrPoolClosed
	}
	sp.subs.Add(1)
	sp.mu.Unlock()
	defer sp.subs.Done()

	sub := &submission{
		ctx:   ctx,
		cfg:   cfg,
		queue: cfg.order(tasks),
	}
	sub.results = make([]*Result, len(sub.queue))
	sub.done.Add(len(sub.queue))
	for i := range sub.queue {
		sp.queue <- &workItem{sub: sub, idx: i}
	}
	sub.done.Wait()
	return sub.results, nil
}

// Close stops accepting submissions, waits for in-flight ones to
// finish, and shuts the workers down. Safe to call once; later Submits
// fail with ErrPoolClosed.
func (sp *SharedPool) Close() {
	sp.mu.Lock()
	if sp.closed {
		sp.mu.Unlock()
		sp.wg.Wait()
		return
	}
	sp.closed = true
	sp.mu.Unlock()
	sp.subs.Wait()
	close(sp.queue)
	sp.wg.Wait()
}

// Healthy reports whether the pool is within its quarantine budget.
func (sp *SharedPool) Healthy() bool {
	return sp.QuarantineBudget <= 0 || sp.quarantined.Load() <= int64(sp.QuarantineBudget)
}

// Counters is a snapshot of the pool's lifetime task accounting.
type Counters struct {
	TasksRun             int64 // every task that got a Result
	Quarantined          int64 // poison tasks from live uninjected runs (budgeted)
	CancelledQuarantines int64 // quarantine-grade failures on cancelled runs
	InjectedQuarantines  int64 // quarantines under a run's own fault plan
	Cancelled            int64 // tasks abandoned to cancellation

	// Memory-gate accounting (zero when the pool runs unbounded).
	MemBudget     float64 // configured footprint budget, simulated bytes
	PeakMemEst    float64 // reservation high-water mark across all submissions
	ThrottleWaits int64   // dispatches the budget blocked at least once
}

// Stats returns a snapshot of the pool's lifetime counters.
func (sp *SharedPool) Stats() Counters {
	ms := sp.memGate().stats()
	return Counters{
		TasksRun:             sp.tasksRun.Load(),
		Quarantined:          sp.quarantined.Load(),
		CancelledQuarantines: sp.cancQuar.Load(),
		InjectedQuarantines:  sp.injQuar.Load(),
		Cancelled:            sp.cancelled.Load(),
		MemBudget:            ms.Budget,
		PeakMemEst:           ms.PeakReserved,
		ThrottleWaits:        ms.ThrottleWaits,
	}
}
