package tlp

import (
	"fmt"
	"math"
	"testing"
	"time"

	"spampsm/internal/ops5"
	"spampsm/internal/symtab"
)

// Regression test for the retry-backoff overflow: the delay used to be
// computed as RetryBackoff << (attempt-1), which for large MaxRetries
// shifted past 63 bits into negative (therefore zero-length) or absurd
// sleeps. retryDelay must double monotonically, cap the exponent, and
// saturate at maxRetryDelay.
func TestRetryDelayCapsAndSaturates(t *testing.T) {
	base := 10 * time.Millisecond
	prev := time.Duration(0)
	for attempt := 1; attempt <= 128; attempt++ {
		d := retryDelay(base, attempt)
		if d < 0 {
			t.Fatalf("attempt %d: negative delay %v", attempt, d)
		}
		if d < prev {
			t.Fatalf("attempt %d: delay %v < previous %v (not monotonic)", attempt, d, prev)
		}
		if d > maxRetryDelay {
			t.Fatalf("attempt %d: delay %v exceeds cap %v", attempt, d, maxRetryDelay)
		}
		prev = d
	}
	if got := retryDelay(base, 1); got != base {
		t.Errorf("attempt 1: got %v, want %v", got, base)
	}
	if got := retryDelay(base, 3); got != base<<2 {
		t.Errorf("attempt 3: got %v, want %v", got, base<<2)
	}
	// Attempt 65 shifted by 64 before the fix: the delay wrapped to 0.
	if got := retryDelay(base, 65); got != maxRetryDelay {
		t.Errorf("attempt 65: got %v, want saturated %v", got, maxRetryDelay)
	}
	if got := retryDelay(0, 5); got != 0 {
		t.Errorf("zero base: got %v, want 0", got)
	}
	// A base near the Duration limit must saturate, not overflow.
	if got := retryDelay(time.Duration(math.MaxInt64/2), 10); got != maxRetryDelay {
		t.Errorf("huge base: got %v, want %v", got, maxRetryDelay)
	}
}

// TestLargeMaxRetriesTerminates drives the real retry loop through
// attempt counts that previously overflowed the shift; with a 1 ns
// base every backoff stays microscopic, so the run must finish almost
// immediately rather than sleeping for wrapped durations.
func TestLargeMaxRetriesTerminates(t *testing.T) {
	fail := &Task{ID: "always-fails", Build: func() (*ops5.Engine, error) {
		return nil, fmt.Errorf("nope")
	}}
	p := &Pool{Workers: 1, MaxRetries: 80, RetryBackoff: time.Nanosecond}
	start := time.Now()
	results, err := p.Run([]*Task{fail})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Quarantined || results[0].Attempts != 81 {
		t.Fatalf("want quarantine after 81 attempts, got %+v", results[0])
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("retry loop took %v; backoff overflow suspected", elapsed)
	}
}

// TestPrebuildMatchesInRunBuild verifies that prebuilt engines produce
// the same results as in-run builds, and that every prebuilt engine is
// consumed.
func TestPrebuildMatchesInRunBuild(t *testing.T) {
	mkTasks := func() []*Task {
		return []*Task{countTask("a", 3), countTask("b", 5), countTask("c", 7)}
	}
	plain := &Pool{Workers: 2}
	want, err := plain.Run(mkTasks())
	if err != nil {
		t.Fatal(err)
	}
	pre := &Pool{Workers: 2}
	tasks := mkTasks()
	pre.Prebuild(tasks, 2)
	if len(pre.prebuilt) != 3 {
		t.Fatalf("prebuilt %d engines, want 3", len(pre.prebuilt))
	}
	got, err := pre.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(pre.prebuilt) != 0 {
		t.Fatalf("%d prebuilt engines left unconsumed", len(pre.prebuilt))
	}
	if TotalFirings(got) != TotalFirings(want) {
		t.Fatalf("prebuilt firings %d != in-run %d", TotalFirings(got), TotalFirings(want))
	}
	for i := range got {
		if got[i].Stats != want[i].Stats {
			t.Fatalf("task %s: prebuilt stats %+v != in-run %+v", got[i].TaskID, got[i].Stats, want[i].Stats)
		}
	}
}

// TestScratchReuseUnderDropEngines runs a DropEngines pool whose tasks
// build through BuildWith (worker-scratch recycling) and checks the
// results equal a plain engine-retaining run.
func TestScratchReuseUnderDropEngines(t *testing.T) {
	prog, err := ops5.Parse(`
(literalize count n limit)
(p step (count ^n <n> ^limit > <n>) --> (modify 1 ^n (compute <n> + 1)))
`)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id string, n int) *Task {
		load := func(e *ops5.Engine, err error) (*ops5.Engine, error) {
			if err != nil {
				return nil, err
			}
			_, err = e.Assert("count", map[string]symtab.Value{
				"n": symtab.Int(0), "limit": symtab.Int(int64(n)),
			})
			return e, err
		}
		return &Task{
			ID:    id,
			Build: func() (*ops5.Engine, error) { return load(ops5.NewEngine(prog)) },
			BuildWith: func(s *ops5.Scratch) (*ops5.Engine, error) {
				if s == nil {
					return load(ops5.NewEngine(prog))
				}
				return load(ops5.NewEngine(prog, ops5.WithScratch(s)))
			},
		}
	}
	mkTasks := func() []*Task {
		tasks := make([]*Task, 12)
		for i := range tasks {
			tasks[i] = mk(fmt.Sprintf("t%d", i), 3+i)
		}
		return tasks
	}
	keep := &Pool{Workers: 1}
	want, err := keep.Run(mkTasks())
	if err != nil {
		t.Fatal(err)
	}
	drop := &Pool{Workers: 2, DropEngines: true}
	got, err := drop.Run(mkTasks())
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Engine != nil {
			t.Fatalf("task %s: DropEngines retained an engine", got[i].TaskID)
		}
		if got[i].Stats != want[i].Stats {
			t.Fatalf("task %s: scratch-reuse stats %+v != reference %+v", got[i].TaskID, got[i].Stats, want[i].Stats)
		}
	}
}

// BenchmarkPoolDispatch measures queue-dispatch overhead: many trivial
// tasks (one shared CompiledProgram, O(nodes) engine instantiation,
// one firing each) across worker counts, so the atomic fetch-add
// cursor is the dominant shared operation.
func BenchmarkPoolDispatch(b *testing.B) {
	prog, err := ops5.Parse(`
(literalize tick x)
(p once (tick ^x 1) --> (remove 1))
`)
	if err != nil {
		b.Fatal(err)
	}
	cp, err := ops5.CompileProgram(prog)
	if err != nil {
		b.Fatal(err)
	}
	const nTasks = 512
	mkTasks := func() []*Task {
		tasks := make([]*Task, nTasks)
		for i := range tasks {
			tasks[i] = &Task{
				ID: fmt.Sprintf("t%d", i),
				BuildWith: func(s *ops5.Scratch) (*ops5.Engine, error) {
					var opts []ops5.Option
					if s != nil {
						opts = append(opts, ops5.WithScratch(s))
					}
					e, err := cp.NewEngine(opts...)
					if err != nil {
						return nil, err
					}
					_, err = e.Assert("tick", map[string]symtab.Value{"x": symtab.Int(1)})
					return e, err
				},
			}
		}
		return tasks
	}
	for _, workers := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			tasks := mkTasks()
			pool := &Pool{Workers: workers, DropEngines: true}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pool.Run(tasks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
