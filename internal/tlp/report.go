package tlp

import (
	"errors"
	"fmt"
	"runtime/debug"
	"strings"

	"spampsm/internal/faults"
	"spampsm/internal/stats"
)

// stack captures the current goroutine's stack for PanicError. It is
// kept out of the error message so reports stay deterministic.
func stack() []byte { return debug.Stack() }

// TaskReport is the attempt accounting of one non-clean task (a task
// that failed at least one attempt).
type TaskReport struct {
	TaskID      string
	SeqInQ      int
	Attempts    int
	Recovered   bool // failed, then a retry succeeded
	Quarantined bool // failed every allowed attempt (or permanently)
	// Errs holds the failed attempts' error messages in attempt order.
	Errs []string
	// WastedInstr is the simulated-instruction cost of the final
	// attempt if it failed (earlier attempts' engines are released
	// before their stats can be aggregated here; the machine simulator
	// models full wasted-work accounting).
	WastedInstr float64
}

// RunReport summarizes the fault-handling of one Pool.Run: every
// attempt, retry and quarantine, with failures classified. With a
// fixed fault seed the report is byte-identical across runs — worker
// identities and wall-clock times are deliberately excluded.
type RunReport struct {
	Tasks       int
	Succeeded   int
	Recovered   int // succeeded after at least one failed attempt
	Quarantined int
	Cancelled   int // abandoned because the run's context was cancelled
	Attempts    int // total attempts across all tasks
	Retries     int // attempts beyond each task's first

	// Failure classification over all failed attempts.
	Panics        int
	Timeouts      int
	BudgetExceeds int
	WorkerCrashes int
	BuildFailures int
	Cancels       int // attempts abandoned to context cancellation
	Injected      int // failed attempts caused by the fault plan

	// PerTask lists every non-clean task in queue order.
	PerTask []TaskReport
}

// Report builds the run's attempt accounting from its results. It is a
// pure function of the results; the Pool method of the same name exists
// for callers that already hold the pool.
func Report(results []*Result) *RunReport {
	rep := &RunReport{}
	for _, r := range results {
		if r == nil {
			continue
		}
		rep.Tasks++
		rep.Attempts += r.Attempts
		// A task cancelled before its first attempt has Attempts == 0;
		// it contributed no retries.
		if r.Attempts > 0 {
			rep.Retries += r.Attempts - 1
		}
		if r.Err == nil {
			rep.Succeeded++
		}
		if r.Quarantined {
			rep.Quarantined++
		}
		if r.Cancelled {
			rep.Cancelled++
		}
		if r.Recovered() {
			rep.Recovered++
		}
		for _, err := range r.AttemptErrs {
			rep.classify(err)
		}
		if len(r.AttemptErrs) == 0 {
			continue
		}
		tr := TaskReport{
			TaskID:      r.TaskID,
			SeqInQ:      r.SeqInQ,
			Attempts:    r.Attempts,
			Recovered:   r.Recovered(),
			Quarantined: r.Quarantined,
		}
		for _, err := range r.AttemptErrs {
			tr.Errs = append(tr.Errs, err.Error())
		}
		if r.Err != nil {
			tr.WastedInstr = r.Stats.TotalInstr()
		}
		rep.PerTask = append(rep.PerTask, tr)
	}
	return rep
}

// Report builds the run's attempt accounting from its results.
func (p *Pool) Report(results []*Result) *RunReport { return Report(results) }

func (rep *RunReport) classify(err error) {
	var pe *PanicError
	var re *RemoteError
	switch {
	case errors.As(err, &pe):
		rep.Panics++
	// A panic recovered in a worker process crosses the wire as a
	// RemoteError carrying the panic mark; it keeps panic precedence so
	// cluster and single-process reports classify identically.
	case errors.As(err, &re) && re.Marks&MarkPanic != 0:
		rep.Panics++
	case errors.Is(err, ErrCancelled):
		rep.Cancels++
	case errors.Is(err, ErrTimeout):
		rep.Timeouts++
	case errors.Is(err, ErrBudgetExceeded):
		rep.BudgetExceeds++
	case errors.Is(err, ErrWorkerCrash):
		rep.WorkerCrashes++
	default:
		rep.BuildFailures++ // build errors and other pre-run failures
	}
	if errors.Is(err, faults.ErrInjected) {
		rep.Injected++
	}
}

// Clean reports whether the run needed no recovery at all.
func (rep *RunReport) Clean() bool {
	return rep.Retries == 0 && rep.Quarantined == 0 && rep.Succeeded == rep.Tasks
}

// Recovery converts the report to the recovery-overhead columns shared
// with the simulators' fault experiments.
func (rep *RunReport) Recovery() stats.Recovery {
	rec := stats.Recovery{
		Attempts:    rep.Attempts,
		Retries:     rep.Retries,
		Recovered:   rep.Recovered,
		Quarantined: rep.Quarantined,
	}
	for _, t := range rep.PerTask {
		rec.WastedInstr += t.WastedInstr
	}
	return rec
}

// String renders the report deterministically: a summary line, the
// failure classification, and one line per non-clean task in queue
// order.
func (rep *RunReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run report: %d tasks, %d attempts (%d retries); %d succeeded (%d recovered), %d quarantined",
		rep.Tasks, rep.Attempts, rep.Retries, rep.Succeeded, rep.Recovered, rep.Quarantined)
	// Cancellation is only mentioned when it happened, keeping clean
	// and chaos reports byte-identical to their pre-cancellation form.
	if rep.Cancelled > 0 {
		fmt.Fprintf(&b, ", %d cancelled", rep.Cancelled)
	}
	b.WriteByte('\n')
	if rep.Clean() {
		return b.String()
	}
	fmt.Fprintf(&b, "failed attempts: %d panics, %d timeouts, %d budget-exceeded, %d worker crashes, %d build/other (%d injected)\n",
		rep.Panics, rep.Timeouts, rep.BudgetExceeds, rep.WorkerCrashes, rep.BuildFailures, rep.Injected)
	for _, t := range rep.PerTask {
		status := "recovered"
		if t.Quarantined {
			status = "quarantined"
		}
		fmt.Fprintf(&b, "  task %s (queue #%d): %s after %d attempts\n", t.TaskID, t.SeqInQ, status, t.Attempts)
		for i, msg := range t.Errs {
			fmt.Fprintf(&b, "    attempt %d: %s\n", i+1, msg)
		}
	}
	return b.String()
}
