// The memory-budget gate: memory-bounded list scheduling for the real
// runtime. Each task carries a modeled footprint (Task.MemEst, in the
// same simulated-byte units as ops5.MemStats); a pool with a MemBudget
// makes every worker reserve its next task's footprint before building
// the engine and release it when the task settles. When the aggregate
// reservation would exceed the budget the worker blocks — concurrency
// is throttled exactly when, and only when, memory demands it, the
// admission rule of Eyraud-Dubois et al.'s memory-bounded scheduling.
//
// The gate never deadlocks: a reservation is clamped to the budget, so
// a task larger than the whole budget simply waits for every in-flight
// reservation to drain and then runs alone. Waiters are also released
// by context cancellation, preserving the pool's cancellation
// semantics (the abandoned task gets a cancelledResult like any other
// pre-attempt cancellation).
package tlp

import (
	"context"
	"sync"

	"spampsm/internal/ops5"
)

// memGate is a weighted semaphore with broadcast wakeup and throttle
// accounting. A nil gate is valid and admits everything.
type memGate struct {
	budget float64

	mu     sync.Mutex
	inUse  float64
	waitCh chan struct{} // closed and replaced on every release
	waits  int64         // dispatches that had to block at least once
	peak   float64       // high-water mark of aggregate reservations
}

func newMemGate(budget float64) *memGate {
	if budget <= 0 {
		return nil
	}
	return &memGate{budget: budget, waitCh: make(chan struct{})}
}

// acquire reserves amt (clamped to the budget) once it fits, returning
// the reserved amount for the matching release. It blocks while the
// aggregate reservation would overflow the budget, and returns ctx's
// error if the run dies first.
func (g *memGate) acquire(ctx context.Context, amt float64) (float64, error) {
	if g == nil || amt <= 0 {
		return 0, nil
	}
	if amt > g.budget {
		amt = g.budget
	}
	waited := false
	g.mu.Lock()
	for g.inUse+amt > g.budget {
		if !waited {
			waited = true
			g.waits++
		}
		ch := g.waitCh
		g.mu.Unlock()
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-ch:
		}
		g.mu.Lock()
	}
	g.inUse += amt
	if g.inUse > g.peak {
		g.peak = g.inUse
	}
	g.mu.Unlock()
	return amt, nil
}

// release returns a reservation and wakes every waiter (broadcast:
// several small tasks may fit in the space one big task vacated).
func (g *memGate) release(amt float64) {
	if g == nil || amt <= 0 {
		return
	}
	g.mu.Lock()
	g.inUse -= amt
	ch := g.waitCh
	g.waitCh = make(chan struct{})
	g.mu.Unlock()
	close(ch)
}

// MemSchedStats is a snapshot of one gate's throttle accounting.
type MemSchedStats struct {
	Budget        float64 // configured budget (simulated bytes); 0 = unbounded
	PeakReserved  float64 // high-water mark of aggregate reservations
	ThrottleWaits int64   // dispatches the budget blocked at least once
}

func (g *memGate) stats() MemSchedStats {
	if g == nil {
		return MemSchedStats{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return MemSchedStats{Budget: g.budget, PeakReserved: g.peak, ThrottleWaits: g.waits}
}

// runGated is runOne behind the gate: the reservation covers the whole
// task — engine build, run, and every retry attempt — so a retrying
// task cannot stack additional footprint on top of its own.
func (p *Pool) runGated(ctx context.Context, g *memGate, t *Task, worker, seq int, scratch *ops5.Scratch) *Result {
	got, err := g.acquire(ctx, t.MemEst)
	if err != nil {
		return cancelledResult(t, seq, 0, nil, err)
	}
	defer g.release(got)
	return p.runOne(ctx, t, worker, seq, scratch)
}
