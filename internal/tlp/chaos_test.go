package tlp

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"spampsm/internal/faults"
	"spampsm/internal/ops5"
	"spampsm/internal/symtab"
)

// panicTask builds a task whose engine panics mid-run via an external.
func panicTask(id string) *Task {
	return &Task{
		ID: id,
		Build: func() (*ops5.Engine, error) {
			prog, err := ops5.Parse(`
(literalize a x)
(external blow)
(p r (a) --> (call blow))
`)
			if err != nil {
				return nil, err
			}
			e, err := ops5.NewEngine(prog)
			if err != nil {
				return nil, err
			}
			e.Register("blow", func(args []symtab.Value) (symtab.Value, float64, error) {
				panic("rhs bug: " + id)
			})
			_, err = e.Assert("a", nil)
			return e, err
		},
	}
}

// runawayTask builds a task that never quiesces: each firing re-arms
// the next.
func runawayTask(id string) *Task {
	return &Task{
		ID: id,
		Build: func() (*ops5.Engine, error) {
			prog, err := ops5.Parse(`
(literalize count n)
(p spin (count ^n <n>) --> (modify 1 ^n (compute <n> + 1)))
`)
			if err != nil {
				return nil, err
			}
			e, err := ops5.NewEngine(prog)
			if err != nil {
				return nil, err
			}
			_, err = e.Assert("count", map[string]symtab.Value{"n": symtab.Int(0)})
			return e, err
		},
	}
}

func TestPanicRecoveredIntoResult(t *testing.T) {
	tasks := []*Task{countTask("ok1", 3), panicTask("bomb"), countTask("ok2", 3)}
	results, err := (&Pool{Workers: 2}).Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	var pe *PanicError
	for _, r := range results {
		if r.TaskID != "bomb" {
			if r.Err != nil {
				t.Errorf("healthy task %s failed: %v", r.TaskID, r.Err)
			}
			continue
		}
		if r.Err == nil {
			t.Fatal("panicking task reported no error")
		}
		if !errors.As(r.Err, &pe) {
			t.Fatalf("error is not a PanicError: %v", r.Err)
		}
		if len(pe.Stack) == 0 {
			t.Error("panic stack not captured")
		}
		if !r.Quarantined {
			t.Error("failed task with no retries must be quarantined")
		}
	}
	if pe == nil {
		t.Fatal("no result for the panicking task")
	}
}

func TestBuildPanicRecovered(t *testing.T) {
	boom := &Task{ID: "build-bomb", Build: func() (*ops5.Engine, error) {
		panic("builder bug")
	}}
	results, err := (&Pool{Workers: 1}).Run([]*Task{boom})
	if err != nil {
		t.Fatal(err)
	}
	var pe *PanicError
	if !errors.As(results[0].Err, &pe) {
		t.Fatalf("build panic not recovered: %v", results[0].Err)
	}
}

func TestTaskTimeoutInterruptsRunaway(t *testing.T) {
	p := &Pool{Workers: 1, TaskTimeout: 30 * time.Millisecond}
	results, err := p.Run([]*Task{runawayTask("spin")})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if !errors.Is(r.Err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", r.Err)
	}
	// Satellite: partial stats must be attached to the failed result.
	if r.Stats.Firings == 0 || r.Log == nil || len(r.Log.Cycles) == 0 {
		t.Errorf("partial stats/log missing from timed-out task: firings=%d log=%v", r.Stats.Firings, r.Log)
	}
}

func TestFiringBudgetExceeded(t *testing.T) {
	p := &Pool{Workers: 1, FiringBudget: 5}
	results, err := p.Run([]*Task{runawayTask("spin"), countTask("small", 3)})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err, ErrBudgetExceeded) {
		t.Fatalf("runaway err = %v, want ErrBudgetExceeded", results[0].Err)
	}
	if results[0].Stats.Firings != 5 {
		t.Errorf("runaway fired %d, want 5", results[0].Stats.Firings)
	}
	// A task that quiesces under the budget is unaffected.
	if results[1].Err != nil {
		t.Errorf("small task failed: %v", results[1].Err)
	}
}

func TestTransientFaultsRecoverOnRetry(t *testing.T) {
	plan := faults.New(faults.Config{Seed: 1990, CrashRate: 0.5, PanicRate: 0.25, BuildFailRate: 0.25})
	var tasks []*Task
	for i := 0; i < 24; i++ {
		tasks = append(tasks, countTask(fmt.Sprintf("t%d", i), 6))
	}
	p := &Pool{Workers: 4, Faults: plan, MaxRetries: 2}
	results, rep, err := p.RunWithReport(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if err := FirstError(results); err != nil {
		t.Fatalf("transient faults must all recover: %v", err)
	}
	if rep.Recovered == 0 || rep.Retries == 0 {
		t.Fatalf("expected recoveries at 100%% injection: %+v", rep)
	}
	if rep.Recovered != rep.Retries {
		t.Errorf("transient faults need exactly one retry each: recovered=%d retries=%d",
			rep.Recovered, rep.Retries)
	}
	if rep.Injected == 0 {
		t.Error("injected failures not classified")
	}
	if got := TotalFirings(results); got != 24*6 {
		t.Errorf("total firings = %d, want %d", got, 24*6)
	}
}

func TestPermanentFaultQuarantinedWithoutRetryBurn(t *testing.T) {
	plan := faults.New(faults.Config{Seed: 7, PanicRate: 1, PermanentFraction: 1})
	p := &Pool{Workers: 2, Faults: plan, MaxRetries: 5}
	results, rep, err := p.RunWithReport([]*Task{countTask("poison", 3)})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if !r.Quarantined || r.Err == nil {
		t.Fatalf("poison task not quarantined: %+v", r)
	}
	if r.Attempts != 1 {
		t.Errorf("permanent fault burned %d attempts, want 1", r.Attempts)
	}
	if rep.Quarantined != 1 || rep.Panics != 1 {
		t.Errorf("report = %+v", rep)
	}
}

func TestQuarantineAfterRetryLimit(t *testing.T) {
	fails := &Task{ID: "always", Build: func() (*ops5.Engine, error) {
		return nil, errors.New("disk on fire")
	}}
	p := &Pool{Workers: 1, MaxRetries: 3}
	results, rep, err := p.RunWithReport([]*Task{fails})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Attempts != 4 || !r.Quarantined {
		t.Fatalf("attempts=%d quarantined=%v, want 4/true", r.Attempts, r.Quarantined)
	}
	if len(r.AttemptErrs) != 4 {
		t.Errorf("attempt errors = %d, want 4", len(r.AttemptErrs))
	}
	if rep.Attempts != 4 || rep.Retries != 3 || rep.Quarantined != 1 {
		t.Errorf("report = %+v", rep)
	}
}

// TestChaosReportDeterminism is the acceptance check: with a fixed
// fault seed, two chaos runs — even with different worker counts and
// goroutine interleavings — produce byte-identical reports.
func TestChaosReportDeterminism(t *testing.T) {
	build := func() []*Task {
		var tasks []*Task
		for i := 0; i < 40; i++ {
			tasks = append(tasks, countTask(fmt.Sprintf("task-%02d", i), 4+i%5))
		}
		return tasks
	}
	run := func(workers int) string {
		plan := faults.New(faults.Config{
			Seed: 1990, CrashRate: 0.2, PanicRate: 0.1, BuildFailRate: 0.1, PermanentFraction: 0.25,
		})
		p := &Pool{Workers: workers, Faults: plan, MaxRetries: 2}
		_, rep, err := p.RunWithReport(build())
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	a, b, c := run(8), run(8), run(3)
	if a != b {
		t.Errorf("same seed, same workers: reports differ\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if a != c {
		t.Errorf("same seed, different workers: reports differ\n--- a ---\n%s--- c ---\n%s", a, c)
	}
	if rep := run(8); len(rep) == 0 {
		t.Error("empty report")
	}
}

func TestChaosUnderRaceWithManyWorkers(t *testing.T) {
	// Exercised with -race in CI: panics, crashes and retries across
	// more workers than tasks.
	plan := faults.New(faults.Config{Seed: 3, CrashRate: 0.3, PanicRate: 0.3})
	tasks := []*Task{countTask("a", 5), panicTask("b"), countTask("c", 5)}
	p := &Pool{Workers: 16, Faults: plan, MaxRetries: 1}
	results, rep, err := p.RunWithReport(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || rep.Tasks != 3 {
		t.Fatalf("results=%d report tasks=%d", len(results), rep.Tasks)
	}
	if results[1].Err == nil {
		t.Error("panicking task must fail even under injection")
	}
}

func TestReportRecoveryColumns(t *testing.T) {
	plan := faults.New(faults.Config{Seed: 21, CrashRate: 1})
	p := &Pool{Workers: 2, Faults: plan, MaxRetries: 1}
	_, rep, err := p.RunWithReport([]*Task{countTask("x", 4), countTask("y", 4)})
	if err != nil {
		t.Fatal(err)
	}
	rec := rep.Recovery()
	if rec.Retries != 2 || rec.Recovered != 2 || rec.Quarantined != 0 {
		t.Errorf("recovery columns = %+v", rec)
	}
}
