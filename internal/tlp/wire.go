// Wire-level support for the multi-process cluster runtime
// (internal/cluster). The cluster coordinator ships tasks to worker
// processes and collects Result-equivalent replies; this file defines
// the pieces of that exchange that belong to the task runtime itself:
//
//   - WireSpec, the shippable description of a task (its seed working
//     memory and what to extract from the final one), attached lazily
//     to a Task so purely local runs never pay for it;
//   - Snapshot, the remotely-extracted working memory attached to a
//     Result in place of a live Engine, with Result.WMEs hiding the
//     difference from result extractors;
//   - RemoteError, an error that crossed a process boundary as a
//     message string plus classification marks, so the coordinator's
//     RunReport classifies remote failures exactly as local ones;
//   - OrderTasks and Pool.RunOne, the queue-ordering and
//     single-task-execution entry points the coordinator and the
//     worker loop drive directly.
package tlp

import (
	"context"
	"errors"

	"spampsm/internal/faults"
	"spampsm/internal/ops5"
	"spampsm/internal/wm"
)

// WireSpec is the shippable description of one task: which dataset's
// knowledge it runs against, which phase program to instantiate, the
// seed working memory to assert (shared seeds carry their routing
// digest discipline through the Digest field — an empty digest ships
// as a plain seed, a non-empty one is recomputed on the worker), and
// which WME classes to snapshot from the final working memory for
// result extraction.
type WireSpec struct {
	Dataset string
	Phase   string   // rtf | lcc | fa | model
	Seeds   []ops5.Seed
	Extract []string // WME classes snapshotted into the Result
}

// SharedSeedIndexes returns the indexes of the spec's shared
// (digest-carrying) seeds — the recurring cross-task state the cluster
// runtime chunks and content-addresses. Plain seeds (empty digest) are
// task-private rows and always ship inline.
func (s *WireSpec) SharedSeedIndexes() []int {
	var idx []int
	for i, seed := range s.Seeds {
		if seed.Digest != "" {
			idx = append(idx, i)
		}
	}
	return idx
}

// Snapshot is the working memory extracted from a remotely-executed
// task's final state: the WMEs of each requested class, in timetag
// order. It stands in for Result.Engine across a process boundary.
type Snapshot map[string][]*wm.WME

// WMEs returns the result's final WMEs of a class, from the live
// engine when the task ran in-process or from the shipped snapshot
// when it ran on a cluster worker. Extractors that only read final
// working memory see no difference.
func (r *Result) WMEs(class string) []*wm.WME {
	if r.Engine != nil {
		return r.Engine.WMEs(class)
	}
	return r.Snapshot[class]
}

// Error classification marks. A worker process reduces each attempt
// error to its message plus these bits; the coordinator rebuilds a
// RemoteError that classifies identically in RunReport and behaves
// identically under the pool's retry/quarantine rules.
const (
	MarkCancelled uint32 = 1 << iota
	MarkTimeout
	MarkBudget
	MarkCrash
	MarkInjected
	MarkPermanent
	MarkPanic
)

// ErrorMarks reduces an error to its classification bits, using the
// same sentinel checks the RunReport classifier applies.
func ErrorMarks(err error) uint32 {
	if err == nil {
		return 0
	}
	var m uint32
	var pe *PanicError
	if errors.As(err, &pe) {
		m |= MarkPanic
	}
	var re *RemoteError
	if errors.As(err, &re) {
		m |= re.Marks
	}
	if errors.Is(err, ErrCancelled) {
		m |= MarkCancelled
	}
	if errors.Is(err, ErrTimeout) {
		m |= MarkTimeout
	}
	if errors.Is(err, ErrBudgetExceeded) {
		m |= MarkBudget
	}
	if errors.Is(err, ErrWorkerCrash) {
		m |= MarkCrash
	}
	if errors.Is(err, faults.ErrInjected) {
		m |= MarkInjected
	}
	if errors.Is(err, faults.ErrPermanent) {
		m |= MarkPermanent
	}
	return m
}

// RemoteError is an error reconstructed from the wire: the original
// message (so reports stay byte-identical to an in-process run) plus
// the classification marks the worker computed before serializing.
type RemoteError struct {
	Msg   string
	Marks uint32
}

func (e *RemoteError) Error() string { return e.Msg }

// Is resurrects the sentinel relationships the marks encode, so
// errors.Is on a shipped error answers exactly as it would have on the
// original.
func (e *RemoteError) Is(target error) bool {
	switch target {
	case ErrCancelled:
		return e.Marks&MarkCancelled != 0
	case ErrTimeout:
		return e.Marks&MarkTimeout != 0
	case ErrBudgetExceeded:
		return e.Marks&MarkBudget != 0
	case ErrWorkerCrash:
		return e.Marks&MarkCrash != 0
	case faults.ErrInjected:
		return e.Marks&MarkInjected != 0
	case faults.ErrPermanent:
		return e.Marks&MarkPermanent != 0
	}
	return false
}

// OrderTasks returns the queue order of the tasks under a policy —
// the same ordering Pool.Run applies, exported so the cluster
// coordinator orders its shipping queue identically and per-task
// SeqInQ values match a single-process run byte for byte.
func OrderTasks(policy QueuePolicy, tasks []*Task) []*Task {
	p := &Pool{Policy: policy}
	return p.order(tasks)
}

// RunOne executes a single task under the pool's configuration —
// memory gate, fault plan, retries, quarantine — starting the attempt
// counter at startAttempt (1 for a fresh task; higher when earlier
// attempts were charged elsewhere, e.g. to a worker process that died
// mid-task and whose loss the coordinator already recorded). The
// attempt budget stays global: the task is quarantined once its
// attempt number reaches 1+MaxRetries regardless of where earlier
// attempts ran. This is the cluster worker loop's execution entry
// point; batch runs should use Run/RunContext.
func (p *Pool) RunOne(ctx context.Context, t *Task, worker, seq, startAttempt int) *Result {
	if startAttempt < 1 {
		startAttempt = 1
	}
	p.gateMu.Lock()
	if p.lastGate == nil {
		p.lastGate = newMemGate(p.MemBudget)
	}
	gate := p.lastGate
	p.gateMu.Unlock()
	got, err := gate.acquire(ctx, t.MemEst)
	if err != nil {
		return cancelledResult(t, seq, startAttempt-1, nil, err)
	}
	defer gate.release(got)
	return p.runOneFrom(ctx, t, worker, seq, startAttempt, nil)
}
