package tlp

import (
	"context"
	"testing"

	"spampsm/internal/faults"
	"spampsm/internal/ops5"
	"spampsm/internal/symtab"
)

// negTask builds a task whose engine deletes a beta token during seed
// assertion (a negative condition invalidated by a later seed WME), so
// even a freshly built engine that never ran holds recyclable objects
// in its graveyard — the observable a scratch-reclaim test needs.
func negTask(id string) *Task {
	build := func(s *ops5.Scratch) (*ops5.Engine, error) {
		prog, err := ops5.Parse(`
(literalize item n)
(literalize blocker n)
(literalize out n)
(p blocked (item ^n <n>) - (blocker ^n <n>) --> (make out ^n <n>))
`)
		if err != nil {
			return nil, err
		}
		var opts []ops5.Option
		if s != nil {
			opts = append(opts, ops5.WithScratch(s))
		}
		e, err := ops5.NewEngine(prog, opts...)
		if err != nil {
			return nil, err
		}
		if _, err := e.Assert("item", map[string]symtab.Value{"n": symtab.Int(1)}); err != nil {
			return nil, err
		}
		if _, err := e.Assert("blocker", map[string]symtab.Value{"n": symtab.Int(1)}); err != nil {
			return nil, err
		}
		return e, nil
	}
	return &Task{
		ID:        id,
		EstSize:   1,
		Build:     func() (*ops5.Engine, error) { return build(nil) },
		BuildWith: build,
	}
}

// TestBuildFailReclaimsPrebuiltScratch is the regression test for the
// prebuilt-engine scratch leak: when a task's first attempt draws an
// injected build fault, the already-prebuilt engine is discarded — its
// recyclable allocations must flow into the worker's scratch rather
// than being stranded with the dead engine.
func TestBuildFailReclaimsPrebuiltScratch(t *testing.T) {
	task := negTask("leak")
	p := &Pool{
		Workers:     1,
		DropEngines: true,
		Faults:      faults.New(faults.Config{Seed: 11, BuildFailRate: 1}),
	}
	p.Prebuild([]*Task{task}, 1)
	if p.prebuilt[task] == nil {
		t.Fatal("Prebuild did not produce an engine")
	}

	scratch := &ops5.Scratch{}
	r := p.attempt(context.Background(), task, 0, 0, 0, scratch)
	if r.Err == nil {
		t.Fatal("attempt under BuildFailRate=1 should fail")
	}
	if p.prebuilt[task] != nil {
		t.Error("prebuilt engine not consumed by the failed attempt")
	}
	if got := scratch.Pooled(); got == 0 {
		t.Error("prebuilt engine's allocations were stranded: scratch.Pooled() = 0 after BuildFail")
	}
}
