// Package tlp is the task-level-parallelism runtime of SPAM/PSM: a
// control process, a shared task queue, and a set of task processes,
// each a complete and independent OPS5 engine (working-memory
// distribution). Production firing is asynchronous: task processes
// never synchronize with each other, only with the queue.
//
// This package provides the *real* concurrent execution (goroutine
// task processes pulling from a shared queue), used by the examples
// and for correctness; the deterministic speedup measurements run the
// same task logs through internal/machine, because reproducing the
// paper's 14-processor curves requires more processors than the host
// may have.
package tlp

import (
	"fmt"
	"sort"
	"sync"

	"spampsm/internal/ops5"
)

// Task is one independent unit of SPAM work: Build constructs a fresh
// engine loaded with the task's working memory (the task itself is
// "just a working memory element, which initializes the production
// system of the process").
type Task struct {
	ID    string
	Label string
	// Group names the task's aggregation unit (for SPAM: the focal
	// object's class), used to roll task statistics up to coarser
	// decomposition levels.
	Group string
	// EstSize is the scheduler's size estimate (SPAM "can provide the
	// necessary information to identify the sizes of the tasks");
	// LargestFirst uses it to fight the tail-end effect.
	EstSize float64
	Build   func() (*ops5.Engine, error)
}

// Result is the outcome of one executed task.
type Result struct {
	TaskID string
	Stats  ops5.RunStats
	Log    *ops5.CostLog
	Engine *ops5.Engine // retained for result extraction
	Err    error
	Worker int // which task process executed it
	SeqInQ int // position in the executed queue order
}

// QueuePolicy orders the task queue.
type QueuePolicy uint8

const (
	// FIFO executes tasks in submission order (the paper's setup).
	FIFO QueuePolicy = iota
	// LargestFirst puts big tasks at the head of the queue, the
	// scheduling improvement the paper proposes as future work to
	// remove the tail-end effect.
	LargestFirst
)

// Pool runs tasks on a fixed number of task processes.
type Pool struct {
	Workers    int
	Policy     QueuePolicy
	MaxFirings int // per-task firing limit; 0 = none
	// DropEngines releases each task's engine (its Rete network and
	// working memory) as soon as its statistics and cost log have been
	// collected. Measurement runs over large queues use this to avoid
	// pinning thousands of engines; leave it false when results are
	// extracted from final working memories.
	DropEngines bool
}

// order returns the queue order under the pool's policy.
func (p *Pool) order(tasks []*Task) []*Task {
	q := append([]*Task(nil), tasks...)
	if p.Policy == LargestFirst {
		sort.SliceStable(q, func(i, j int) bool { return q[i].EstSize > q[j].EstSize })
	}
	return q
}

// Run executes the tasks and returns results in queue order. Task
// failures are reported in the Result, not as a Run error; Run fails
// only on structural problems (no tasks, bad worker count).
func (p *Pool) Run(tasks []*Task) ([]*Result, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("tlp: empty task queue")
	}
	workers := p.Workers
	if workers < 1 {
		workers = 1
	}
	queue := p.order(tasks)
	results := make([]*Result, len(queue))
	var mu sync.Mutex
	next := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= len(queue) {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				results[i] = p.runOne(queue[i], worker, i)
			}
		}(w)
	}
	wg.Wait()
	return results, nil
}

func (p *Pool) runOne(t *Task, worker, seq int) *Result {
	r := &Result{TaskID: t.ID, Worker: worker, SeqInQ: seq}
	eng, err := t.Build()
	if err != nil {
		r.Err = fmt.Errorf("tlp: build %s: %w", t.ID, err)
		return r
	}
	if _, err := eng.Run(p.MaxFirings); err != nil {
		r.Err = fmt.Errorf("tlp: run %s: %w", t.ID, err)
		return r
	}
	r.Stats = eng.Stats()
	r.Log = eng.Log()
	if !p.DropEngines {
		r.Engine = eng
	}
	return r
}

// RunSerial executes the tasks on a single worker (the BASELINE
// configuration of the paper's measurements).
func RunSerial(tasks []*Task, maxFirings int) ([]*Result, error) {
	p := &Pool{Workers: 1, MaxFirings: maxFirings}
	return p.Run(tasks)
}

// TotalInstr sums the simulated instruction cost over results.
func TotalInstr(results []*Result) float64 {
	var t float64
	for _, r := range results {
		if r != nil && r.Err == nil {
			t += r.Stats.TotalInstr()
		}
	}
	return t
}

// TotalFirings sums production firings over results.
func TotalFirings(results []*Result) int {
	n := 0
	for _, r := range results {
		if r != nil && r.Err == nil {
			n += r.Stats.Firings
		}
	}
	return n
}

// FirstError returns the first task error, or nil.
func FirstError(results []*Result) error {
	for _, r := range results {
		if r != nil && r.Err != nil {
			return r.Err
		}
	}
	return nil
}
