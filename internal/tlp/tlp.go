// Package tlp is the task-level-parallelism runtime of SPAM/PSM: a
// control process, a shared task queue, and a set of task processes,
// each a complete and independent OPS5 engine (working-memory
// distribution). Production firing is asynchronous: task processes
// never synchronize with each other, only with the queue.
//
// This package provides the *real* concurrent execution (goroutine
// task processes pulling from a shared queue), used by the examples
// and for correctness; the deterministic speedup measurements run the
// same task logs through internal/machine, because reproducing the
// paper's 14-processor curves requires more processors than the host
// may have.
//
// The runtime is fault-tolerant (see docs/ROBUSTNESS.md). The paper's
// independence property — tasks share nothing and synchronize only
// with the queue — makes recovery trivial by construction: a failed or
// panicking task loses only its own working memory, and because
// Task.Build constructs a fresh engine, re-execution is idempotent.
// Pool therefore recovers panics into Result.Err, enforces per-task
// firing budgets and wall-clock deadlines, retries transient failures
// with exponential backoff, quarantines poison tasks after the retry
// budget, and accounts for every attempt in a RunReport.
package tlp

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spampsm/internal/faults"
	"spampsm/internal/ops5"
)

// Sentinel errors classifying task failures.
var (
	// ErrTimeout marks a task that exceeded the pool's wall-clock
	// deadline and was interrupted.
	ErrTimeout = errors.New("tlp: task deadline exceeded")
	// ErrBudgetExceeded marks a task that hit the pool's firing budget
	// without reaching quiescence or halting.
	ErrBudgetExceeded = errors.New("tlp: firing budget exceeded")
	// ErrWorkerCrash marks a task whose worker (simulated) crashed
	// mid-execution; the partial work is lost.
	ErrWorkerCrash = errors.New("tlp: worker crashed")
	// ErrCancelled marks a task abandoned because its run's context was
	// cancelled or timed out: skipped before starting, interrupted
	// mid-attempt, or aborted during a retry backoff. A cancelled task
	// is never quarantined — cancellation says nothing about whether
	// the task itself is poison.
	ErrCancelled = errors.New("tlp: task cancelled")
)

// PanicError is a recovered task panic. Its message deliberately
// excludes the stack trace so chaos-run reports are byte-identical
// across runs; the stack is retained separately for debugging.
type PanicError struct {
	TaskID string
	Value  interface{}
	Stack  []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("tlp: task %s panicked: %v", e.TaskID, e.Value)
}

// Unwrap exposes an error panic value, so markers like
// faults.ErrPermanent survive the recovery.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Task is one independent unit of SPAM work: Build constructs a fresh
// engine loaded with the task's working memory (the task itself is
// "just a working memory element, which initializes the production
// system of the process").
type Task struct {
	ID    string
	Label string
	// Group names the task's aggregation unit (for SPAM: the focal
	// object's class), used to roll task statistics up to coarser
	// decomposition levels.
	Group string
	// EstSize is the scheduler's size estimate (SPAM "can provide the
	// necessary information to identify the sizes of the tasks");
	// LargestFirst uses it to fight the tail-end effect.
	EstSize float64
	// MemEst is the task's modeled memory footprint in simulated bytes
	// (seed working memory plus expected match state, see wm.WMEBytes).
	// The PostOrder policy orders subtrees by it and the pool's
	// MemBudget gate throttles dispatch against it.
	MemEst float64
	Build  func() (*ops5.Engine, error)
	// BuildWith, when set, is preferred over Build and receives the
	// worker's allocation scratch (nil when the pool keeps engines):
	// task builders thread it to ops5.NewEngine via WithScratch so the
	// short-lived engines of a DropEngines run recycle tokens and list
	// entries worker-locally instead of reallocating per task.
	BuildWith func(s *ops5.Scratch) (*ops5.Engine, error)
	// Wire, when set, produces the task's shippable description for the
	// cluster runtime (internal/cluster). It is lazy — a local run never
	// calls it — and must be a pure function of the task: the worker
	// process rebuilds an engine from the WireSpec that is byte-identical
	// to what Build constructs here.
	Wire func() (*WireSpec, error)
	// Continues marks a follow-on task of an earlier phase over the same
	// working set (SPAM's LCC re-entry after focus-of-attention): its
	// shared seeds are a superset of state some worker already holds. The
	// cluster runtime pushes marked tasks straight to the worker with the
	// most resident chunks instead of queueing them through the shard
	// striping; the local Pool ignores the flag.
	Continues bool
}

// build constructs the task's engine, preferring BuildWith.
func (t *Task) build(s *ops5.Scratch) (*ops5.Engine, error) {
	if t.BuildWith != nil {
		return t.BuildWith(s)
	}
	return t.Build()
}

// Result is the outcome of one executed task (its final attempt).
type Result struct {
	TaskID string
	Stats  ops5.RunStats
	Log    *ops5.CostLog
	Engine *ops5.Engine // retained for result extraction
	Err    error
	Worker int // which task process executed it (last attempt)
	SeqInQ int // position in the executed queue order

	// Attempts is the number of times the task was executed (1 for a
	// clean first run). Stats/Log describe the final attempt; earlier
	// attempts' costs are wasted work, visible in the RunReport.
	Attempts int
	// AttemptErrs records the error of every failed attempt in order
	// (the final entry equals Err when the task ultimately failed).
	AttemptErrs []error
	// Quarantined marks a poison task: it failed every allowed attempt
	// (or failed permanently) and was removed from further retrying.
	Quarantined bool
	// Cancelled marks a task abandoned because the run's context was
	// cancelled (Err wraps ErrCancelled). Cancelled tasks are not
	// quarantined and carry no verdict on the task itself.
	Cancelled bool

	// Snapshot holds the final working memory a cluster worker
	// extracted before dropping its engine; Engine is nil for such
	// results. Use WMEs to read final working memory either way.
	Snapshot Snapshot
	// ShipBytes is the wire cost of this task when it ran on a cluster
	// worker: encoded task frame plus encoded result frame, in bytes.
	// Zero for in-process execution.
	ShipBytes int
}

// Recovered reports whether the task failed at least once but
// ultimately succeeded.
func (r *Result) Recovered() bool { return r.Err == nil && len(r.AttemptErrs) > 0 }

// QueuePolicy orders the task queue.
type QueuePolicy uint8

const (
	// FIFO executes tasks in submission order (the paper's setup).
	FIFO QueuePolicy = iota
	// LargestFirst puts big tasks at the head of the queue, the
	// scheduling improvement the paper proposes as future work to
	// remove the tail-end effect.
	LargestFirst
	// PostOrder emits the queue one decomposition subtree (Group) at a
	// time — subtrees by decreasing aggregate MemEst, larger tasks
	// first within a subtree — the memory-peak-minimizing traversal of
	// Marchal et al. (see machine.PolicyPostOrder; the two packages
	// share one policy vocabulary and one flag surface).
	PostOrder
)

var queuePolicyNames = map[QueuePolicy]string{
	FIFO:         "fifo",
	LargestFirst: "largest",
	PostOrder:    "postorder",
}

func (qp QueuePolicy) String() string {
	if s, ok := queuePolicyNames[qp]; ok {
		return s
	}
	return fmt.Sprintf("policy(%d)", uint8(qp))
}

// ParseQueuePolicy parses the shared policy vocabulary: "fifo",
// "largest", "postorder" — the -sched flag of spamrun/spambench and
// the spamserve scheduler config.
func ParseQueuePolicy(s string) (QueuePolicy, error) {
	for qp, name := range queuePolicyNames {
		if s == name {
			return qp, nil
		}
	}
	return FIFO, fmt.Errorf("tlp: unknown scheduling policy %q (want fifo, largest or postorder)", s)
}

// Pool runs tasks on a fixed number of task processes.
type Pool struct {
	Workers    int
	Policy     QueuePolicy
	MaxFirings int // per-task firing limit; 0 = none (not an error to hit)
	// DropEngines releases each task's engine (its Rete network and
	// working memory) as soon as its statistics and cost log have been
	// collected. Measurement runs over large queues use this to avoid
	// pinning thousands of engines; leave it false when results are
	// extracted from final working memories.
	DropEngines bool

	// FiringBudget is the per-task deadline in production firings: a
	// task still short of quiescence when the budget runs out fails
	// with ErrBudgetExceeded. 0 disables the budget. Unlike MaxFirings
	// (a benign cap), exceeding the budget is a fault.
	FiringBudget int
	// TaskTimeout is the per-attempt wall-clock deadline; an attempt
	// still running when it expires is interrupted and fails with
	// ErrTimeout. 0 disables the deadline.
	TaskTimeout time.Duration
	// MaxRetries is how many times a failed task is re-executed (the
	// engine is rebuilt from scratch each time, so re-execution is
	// idempotent). After 1+MaxRetries failed attempts the task is
	// quarantined. Failures wrapping faults.ErrPermanent skip retries
	// and quarantine immediately.
	MaxRetries int
	// RetryBackoff is the wall-clock delay before the first retry;
	// each further retry doubles it. 0 retries immediately.
	RetryBackoff time.Duration
	// Faults optionally injects deterministic failures (chaos runs);
	// nil injects nothing.
	Faults *faults.Plan

	// MemBudget bounds the aggregate modeled footprint (sum of running
	// tasks' MemEst, simulated bytes) the pool lets in flight at once;
	// 0 disables the gate. Workers block before building an engine
	// whose reservation would overflow the budget — memory-bounded
	// list scheduling on the real runtime. In SharedPool submissions
	// this per-run field is ignored; the budget belongs to the shared
	// pool (SharedPool.MemBudget), which owns the workers.
	MemBudget float64

	// gateMu guards lastGate, the pool's memory gate — built on the
	// first run, shared by all runs so MemBudget spans them and
	// MemSched reporting accumulates.
	gateMu   sync.Mutex
	lastGate *memGate

	// prebuilt holds engines constructed ahead of Run by Prebuild,
	// keyed by task. An entry is consumed by the task's first attempt
	// (if that attempt draws an injected build fault the engine is
	// discarded, with its allocations reclaimed into the worker's
	// scratch); retries always rebuild from scratch, preserving the
	// idempotent re-execution property.
	prebuiltMu sync.Mutex
	prebuilt   map[*Task]*ops5.Engine
}

// order returns the queue order under the pool's policy. Every policy
// permutes the same task set, so per-task results are byte-identical
// across policies (the differential scheduling oracle); only queue
// positions and wall-clock interleaving differ.
func (p *Pool) order(tasks []*Task) []*Task {
	q := append([]*Task(nil), tasks...)
	switch p.Policy {
	case LargestFirst:
		sort.SliceStable(q, func(i, j int) bool { return q[i].EstSize > q[j].EstSize })
	case PostOrder:
		// Aggregate footprint per subtree; subtrees keep their
		// first-appearance rank so ties stay deterministic.
		rank := map[string]int{}
		var mem []float64
		for _, t := range q {
			r, ok := rank[t.Group]
			if !ok {
				r = len(mem)
				rank[t.Group] = r
				mem = append(mem, 0)
			}
			mem[r] += t.MemEst
		}
		sort.SliceStable(q, func(i, j int) bool {
			ri, rj := rank[q[i].Group], rank[q[j].Group]
			if ri != rj {
				if mem[ri] != mem[rj] {
					return mem[ri] > mem[rj]
				}
				return ri < rj
			}
			return q[i].MemEst > q[j].MemEst
		})
	}
	return q
}

// Run executes the tasks and returns results in queue order. Task
// failures — including recovered panics, timeouts, and injected
// faults — are reported in the Result, not as a Run error; Run fails
// only on structural problems (no tasks, bad worker count).
func (p *Pool) Run(tasks []*Task) ([]*Result, error) {
	return p.RunContext(context.Background(), tasks)
}

// RunContext is Run under a context: cancelling ctx aborts the run's
// remaining work without failing RunContext itself. Tasks not yet
// started are skipped, in-flight attempts are cooperatively
// interrupted (ops5.Engine.Interrupt), and retry backoffs are cut
// short; every abandoned task still gets a Result, with Err wrapping
// ErrCancelled and Cancelled set, so callers can account for exactly
// what was and was not executed.
func (p *Pool) RunContext(ctx context.Context, tasks []*Task) ([]*Result, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("tlp: empty task queue")
	}
	workers := p.Workers
	if workers < 1 {
		workers = 1
	}
	queue := p.order(tasks)
	results := make([]*Result, len(queue))
	// The gate is built once per pool and shared by every run, so its
	// budget spans concurrent runs and its throttle accounting
	// accumulates across a multi-phase interpretation.
	p.gateMu.Lock()
	if p.lastGate == nil {
		p.lastGate = newMemGate(p.MemBudget)
	}
	gate := p.lastGate
	p.gateMu.Unlock()
	// Task dispatch is a single atomic fetch-add on a shared cursor —
	// the queue itself is immutable after ordering, so workers never
	// contend on a lock to claim work.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Under DropEngines each worker keeps a private allocation
			// scratch: every discarded engine's token and entry pools
			// seed the next engine built on this worker.
			var scratch *ops5.Scratch
			if p.DropEngines {
				scratch = &ops5.Scratch{}
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queue) {
					return
				}
				results[i] = p.runGated(ctx, gate, queue[i], worker, i, scratch)
			}
		}(w)
	}
	wg.Wait()
	return results, nil
}

// MemSched returns the memory-gate accounting of the pool's most
// recent run: the configured budget, the reservation high-water mark,
// and how many dispatches the budget blocked. Zero when the pool runs
// unbounded.
func (p *Pool) MemSched() MemSchedStats {
	p.gateMu.Lock()
	defer p.gateMu.Unlock()
	return p.lastGate.stats()
}

// RunWithReport executes the tasks and additionally returns the
// attempt/retry/quarantine accounting of the whole run.
func (p *Pool) RunWithReport(tasks []*Task) ([]*Result, *RunReport, error) {
	results, err := p.Run(tasks)
	if err != nil {
		return nil, nil, err
	}
	return results, p.Report(results), nil
}

const (
	// maxBackoffShift caps the number of retry-backoff doublings. An
	// uncapped shift overflowed time.Duration for large MaxRetries
	// (attempt 65 shifted RetryBackoff past 63 bits), producing
	// negative — i.e. zero — or absurd sleeps.
	maxBackoffShift = 16
	// maxRetryDelay saturates the backoff: a task runtime gains
	// nothing from sleeping longer between re-executions.
	maxRetryDelay = time.Minute
)

// retryDelay returns the backoff before re-running a task whose
// attempt'th attempt (1-based) just failed: base doubled per failed
// attempt, with the exponent capped and the result saturating at
// maxRetryDelay instead of overflowing.
func retryDelay(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift < 0 {
		shift = 0
	}
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	// Comparing against the pre-shifted cap avoids overflow entirely:
	// maxRetryDelay>>shift is exact (no low bits lost at these
	// magnitudes), so base exceeds it iff base<<shift would exceed
	// maxRetryDelay.
	if base > maxRetryDelay>>shift {
		return maxRetryDelay
	}
	return base << shift
}

// cancelledResult builds the Result of a task abandoned to
// cancellation before (or between) attempts.
func cancelledResult(t *Task, seq, attempts int, attemptErrs []error, cause error) *Result {
	err := fmt.Errorf("tlp: task %s: %w: %w", t.ID, ErrCancelled, cause)
	return &Result{
		TaskID: t.ID, SeqInQ: seq, Err: err, Cancelled: true,
		Attempts: attempts, AttemptErrs: append(attemptErrs, err),
	}
}

// runOne executes one task with bounded retries: a failed attempt is
// re-run on a freshly built engine after an exponential backoff, up to
// 1+MaxRetries attempts; permanent faults and exhausted budgets
// quarantine the task. Cancellation of ctx ends the loop wherever it
// is — before an attempt, mid-attempt (via engine interrupt), or
// during a backoff sleep — without quarantining the task.
func (p *Pool) runOne(ctx context.Context, t *Task, worker, seq int, scratch *ops5.Scratch) *Result {
	return p.runOneFrom(ctx, t, worker, seq, 1, scratch)
}

// runOneFrom is runOne with the attempt counter starting at
// startAttempt instead of 1. The attempt budget stays global — the
// task quarantines once the attempt number reaches 1+MaxRetries — so
// a caller that already charged earlier attempts elsewhere (the
// cluster coordinator, after losing a worker process mid-task)
// resumes the retry loop rather than restarting it.
func (p *Pool) runOneFrom(ctx context.Context, t *Task, worker, seq, startAttempt int, scratch *ops5.Scratch) *Result {
	maxAttempts := 1 + p.MaxRetries
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	if startAttempt < 1 {
		startAttempt = 1
	}
	if maxAttempts < startAttempt {
		maxAttempts = startAttempt
	}
	var attemptErrs []error
	for attempt := startAttempt; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return cancelledResult(t, seq, attempt-1, attemptErrs, err)
		}
		r := p.attempt(ctx, t, worker, seq, attempt, scratch)
		r.Attempts = attempt
		if r.Err == nil {
			r.AttemptErrs = attemptErrs
			return r
		}
		attemptErrs = append(attemptErrs, r.Err)
		r.AttemptErrs = attemptErrs
		// A cancelled attempt is not a verdict on the task: stop
		// retrying, skip quarantine.
		if errors.Is(r.Err, ErrCancelled) {
			r.Cancelled = true
			return r
		}
		// Permanent faults cannot succeed on retry; don't burn the
		// budget re-proving it.
		if attempt >= maxAttempts || errors.Is(r.Err, faults.ErrPermanent) {
			r.Quarantined = true
			return r
		}
		if p.RetryBackoff > 0 {
			// A cancelled run must not sit out its backoff: the sleep
			// races the context.
			timer := time.NewTimer(retryDelay(p.RetryBackoff, attempt))
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return cancelledResult(t, seq, attempt, attemptErrs, ctx.Err())
			}
		}
	}
}

// attempt executes a single attempt of the task. Panics — whether from
// Build, the engine, or injected — are recovered into Result.Err so a
// poison task can never take down the worker or the process. Whatever
// statistics and cost log the engine accumulated before failing are
// attached to the Result, so failed-task cost stays visible in reports.
//
// Cancelling ctx mid-attempt cooperatively interrupts the engine, and
// the attempt fails with ErrCancelled. The check is best-effort at the
// edges: a cancellation landing in the hair's breadth between the
// pre-run check and the engine clearing its interrupt flag lets the
// attempt run to completion — wasted work, never a wrong result.
func (p *Pool) attempt(ctx context.Context, t *Task, worker, seq, attempt int, scratch *ops5.Scratch) (r *Result) {
	r = &Result{TaskID: t.ID, Worker: worker, SeqInQ: seq}
	var eng *ops5.Engine
	defer func() {
		if v := recover(); v != nil {
			if eng != nil {
				r.Stats = eng.Stats()
				r.Log = eng.Log()
			}
			r.Engine = nil
			r.Err = &PanicError{TaskID: t.ID, Value: v, Stack: stack()}
		}
	}()

	f := p.Faults.TaskFault(t.ID, attempt)
	// A prebuilt engine (Prebuild) is consumed here whether or not it
	// is used: if this attempt draws an injected build fault, the
	// engine is discarded so the retry rebuilds from scratch, exactly
	// as if the original build had failed.
	prebuilt := p.takePrebuilt(t)
	if f.Kind == faults.BuildFail {
		if prebuilt != nil && scratch != nil {
			// The discarded engine finished building normally and never
			// ran, so its pools alias nothing live: reclaim them for
			// the rebuild instead of stranding them with the engine.
			prebuilt.Reclaim(scratch)
		}
		r.Err = f.Err(fmt.Sprintf("tlp: build %s: attempt %d", t.ID, attempt))
		return r
	}
	var err error
	if prebuilt != nil {
		eng = prebuilt
	} else {
		eng, err = t.build(scratch)
		if err != nil {
			r.Err = fmt.Errorf("tlp: build %s: %w", t.ID, err)
			return r
		}
	}
	if f.Kind == faults.Panic {
		panic(f.Err(fmt.Sprintf("tlp: task %s: attempt %d", t.ID, attempt)))
	}

	limit := p.MaxFirings
	if p.FiringBudget > 0 && (limit == 0 || p.FiringBudget < limit) {
		limit = p.FiringBudget
	}

	if f.Kind == faults.Crash {
		// The worker dies mid-task after a deterministic number of
		// firings: partial work is charged, then lost.
		n := p.Faults.CrashAfterFirings(t.ID, 8)
		if limit > 0 && n > limit {
			n = limit
		}
		_, _ = eng.Run(n)
		r.Stats = eng.Stats()
		r.Log = eng.Log()
		r.Err = fmt.Errorf("%w after %d firings: %w", ErrWorkerCrash, r.Stats.Firings,
			f.Err(fmt.Sprintf("task %s: attempt %d", t.ID, attempt)))
		return r
	}

	if p.TaskTimeout > 0 {
		timer := time.AfterFunc(p.TaskTimeout, eng.Interrupt)
		defer timer.Stop()
	}
	// A context cancelled mid-run interrupts the engine the same way a
	// timeout does; Run clears the interrupt flag when it starts, so
	// an already-cancelled context must be caught here instead.
	stopWatch := context.AfterFunc(ctx, eng.Interrupt)
	defer stopWatch()
	if ctxErr := ctx.Err(); ctxErr != nil {
		r.Err = fmt.Errorf("tlp: run %s: %w: %w", t.ID, ErrCancelled, ctxErr)
		return r
	}
	_, err = eng.Run(limit)
	// Attach whatever the engine accumulated, even on failure: the
	// cost of failed attempts is real work the reports must account.
	r.Stats = eng.Stats()
	r.Log = eng.Log()
	if err != nil {
		switch {
		case errors.Is(err, ops5.ErrInterrupted) && ctx.Err() != nil:
			r.Err = fmt.Errorf("tlp: run %s: %w after %d firings: %w",
				t.ID, ErrCancelled, r.Stats.Firings, ctx.Err())
		case errors.Is(err, ops5.ErrInterrupted):
			r.Err = fmt.Errorf("tlp: run %s: %w after %v (%d firings)",
				t.ID, ErrTimeout, p.TaskTimeout, r.Stats.Firings)
		default:
			r.Err = fmt.Errorf("tlp: run %s: %w", t.ID, err)
		}
		return r
	}
	if p.FiringBudget > 0 && r.Stats.Firings >= p.FiringBudget &&
		!eng.Halted() && eng.ConflictSetSize() > 0 {
		r.Err = fmt.Errorf("tlp: run %s: %w (%d firings without quiescence)",
			t.ID, ErrBudgetExceeded, p.FiringBudget)
		return r
	}
	if !p.DropEngines {
		r.Engine = eng
	} else if scratch != nil {
		// Clean success and the engine is being dropped: recycle its
		// allocation pools into the worker's scratch. Failed or
		// panicked attempts never reclaim — their engines may be
		// mid-operation, and their pools could alias live structures.
		eng.Reclaim(scratch)
	}
	return r
}

// Prebuild constructs the tasks' engines ahead of Run on up to
// `workers` parallel builders, overlapping the (formerly serial)
// engine construction. Prebuilt engines are consumed by each task's
// first attempt; tasks whose prebuild fails or panics simply fall back
// to the in-run build path, which reports the error through the usual
// retry machinery. Call before Run; the pool must not be running.
func (p *Pool) Prebuild(tasks []*Task, workers int) {
	if workers < 1 {
		workers = 1
	}
	engines := make([]*ops5.Engine, len(tasks))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				func() {
					defer func() { _ = recover() }() // fall back to in-run build
					if eng, err := tasks[i].build(nil); err == nil {
						engines[i] = eng
					}
				}()
			}
		}()
	}
	wg.Wait()
	p.prebuiltMu.Lock()
	defer p.prebuiltMu.Unlock()
	if p.prebuilt == nil {
		p.prebuilt = make(map[*Task]*ops5.Engine, len(tasks))
	}
	for i, t := range tasks {
		if engines[i] != nil {
			p.prebuilt[t] = engines[i]
		}
	}
}

// takePrebuilt pops the task's prebuilt engine, if any.
func (p *Pool) takePrebuilt(t *Task) *ops5.Engine {
	if p.prebuilt == nil {
		return nil
	}
	p.prebuiltMu.Lock()
	defer p.prebuiltMu.Unlock()
	eng := p.prebuilt[t]
	if eng != nil {
		delete(p.prebuilt, t)
	}
	return eng
}

// RunSerial executes the tasks on a single worker (the BASELINE
// configuration of the paper's measurements).
func RunSerial(tasks []*Task, maxFirings int) ([]*Result, error) {
	p := &Pool{Workers: 1, MaxFirings: maxFirings}
	return p.Run(tasks)
}

// TotalInstr sums the simulated instruction cost over results.
func TotalInstr(results []*Result) float64 {
	var t float64
	for _, r := range results {
		if r != nil && r.Err == nil {
			t += r.Stats.TotalInstr()
		}
	}
	return t
}

// TotalFirings sums production firings over results.
func TotalFirings(results []*Result) int {
	n := 0
	for _, r := range results {
		if r != nil && r.Err == nil {
			n += r.Stats.Firings
		}
	}
	return n
}

// FirstError returns the first task error, or nil.
func FirstError(results []*Result) error {
	for _, r := range results {
		if r != nil && r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// Errors returns every task error in queue order (empty if the run was
// clean). Each error is the task's final-attempt failure; per-attempt
// detail lives in Result.AttemptErrs and the RunReport.
func Errors(results []*Result) []error {
	var errs []error
	for _, r := range results {
		if r != nil && r.Err != nil {
			errs = append(errs, fmt.Errorf("task %s (after %d attempts): %w", r.TaskID, r.Attempts, r.Err))
		}
	}
	return errs
}
