package msgpass

import (
	"math"
	"testing"
	"testing/quick"

	"spampsm/internal/faults"
	"spampsm/internal/machine"
	"spampsm/internal/stats"
)

func varied(n int, meanSec float64, seed uint64) []float64 {
	out := make([]float64, n)
	s := seed
	for i := range out {
		s = s*6364136223846793005 + 1442695040888963407
		frac := float64(s>>11) / float64(1<<53)
		out[i] = machine.SecToInstr(meanSec * (0.2 + 1.6*frac))
	}
	return out
}

func uniform(n int, sec float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = machine.SecToInstr(sec)
	}
	return out
}

func TestPolicyNames(t *testing.T) {
	if StaticRoundRobin.String() != "static-round-robin" ||
		StaticBalanced.String() != "static-balanced" ||
		Dynamic.String() != "dynamic" {
		t.Error("policy names wrong")
	}
	if Policy(99).String() != "unknown" {
		t.Error("unknown policy name")
	}
}

func TestSingleNodeNearSerial(t *testing.T) {
	durs := uniform(20, 2)
	cfg := DefaultConfig(1)
	for _, p := range []Policy{StaticRoundRobin, StaticBalanced, Dynamic} {
		s := Speedup(durs, cfg, p)
		if s > 1.0 || s < 0.9 {
			t.Errorf("%v: single-node speedup = %v, want just under 1 (message overhead)", p, s)
		}
	}
}

func TestDynamicBeatsStaticUnderVariance(t *testing.T) {
	// The package's headline: with SPAM-like task-duration variance,
	// dynamic distribution beats static round-robin despite message
	// costs — the queue absorbs the variance.
	durs := varied(300, 3, 7)
	cfg := DefaultConfig(14)
	dyn := Speedup(durs, cfg, Dynamic)
	rr := Speedup(durs, cfg, StaticRoundRobin)
	if dyn <= rr {
		t.Errorf("dynamic (%v) should beat static round-robin (%v) under variance", dyn, rr)
	}
	if dyn < 10 {
		t.Errorf("dynamic speedup %v too low for 14 nodes", dyn)
	}
}

func TestStaticBalancedNeedsOracle(t *testing.T) {
	// Balanced static partitioning (with perfect size knowledge) is
	// competitive with dynamic; round-robin is not.
	durs := varied(300, 3, 11)
	cfg := DefaultConfig(14)
	bal := Speedup(durs, cfg, StaticBalanced)
	rr := Speedup(durs, cfg, StaticRoundRobin)
	if bal <= rr {
		t.Errorf("balanced (%v) should beat round-robin (%v)", bal, rr)
	}
}

func TestMessageCostsMatter(t *testing.T) {
	durs := uniform(100, 0.02) // tiny tasks: 20 ms each
	cheap := DefaultConfig(8)
	costly := cheap
	costly.MsgLatencyInstr *= 20
	costly.TaskShipInstr *= 20
	sCheap := Speedup(durs, cheap, Dynamic)
	sCostly := Speedup(durs, costly, Dynamic)
	if sCostly >= sCheap {
		t.Errorf("fine-grain tasks must suffer from message cost: %v vs %v", sCostly, sCheap)
	}
}

func TestWorkConservedAcrossPolicies(t *testing.T) {
	durs := varied(60, 2, 3)
	var want float64
	for _, d := range durs {
		want += d
	}
	cfg := DefaultConfig(6)
	for _, p := range []Policy{StaticRoundRobin, StaticBalanced, Dynamic} {
		sched := Run(durs, cfg, p)
		var busy float64
		for _, b := range sched.Busy {
			busy += b
		}
		if busy < want {
			t.Errorf("%v: busy time %v below task work %v", p, busy, want)
		}
		if len(sched.PerTask) != len(durs) {
			t.Errorf("%v: per-task records = %d", p, len(sched.PerTask))
		}
	}
}

func TestQuickDynamicBounded(t *testing.T) {
	f := func(seed uint64, nodes8 uint8) bool {
		nodes := int(nodes8%16) + 1
		durs := varied(50, 1, seed|1)
		var serial float64
		for _, d := range durs {
			serial += d
		}
		sched := Run(durs, DefaultConfig(nodes), Dynamic)
		// Makespan within [serial/nodes, serial + overheads].
		perFetch := 2*DefaultConfig(nodes).MsgLatencyInstr +
			DefaultConfig(nodes).TaskShipInstr + DefaultConfig(nodes).ResultShipInstr
		upper := serial + float64(len(durs))*perFetch
		return sched.Makespan >= serial/float64(nodes)-1e-6 && sched.Makespan <= upper+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDeterministic(t *testing.T) {
	durs := varied(80, 2, 5)
	cfg := DefaultConfig(10)
	for _, p := range []Policy{StaticRoundRobin, StaticBalanced, Dynamic} {
		a := Run(durs, cfg, p).Makespan
		b := Run(durs, cfg, p).Makespan
		if a != b {
			t.Errorf("%v: nondeterministic makespan", p)
		}
	}
}

func TestZeroNodesClamped(t *testing.T) {
	durs := uniform(5, 1)
	sched := Run(durs, Config{Nodes: 0}, Dynamic)
	if sched.Makespan <= 0 || len(sched.Busy) != 1 {
		t.Errorf("zero nodes should clamp to 1: %+v", sched)
	}
}

func TestSpeedupMonotoneInNodes(t *testing.T) {
	durs := varied(200, 3, 13)
	prev := 0.0
	for _, n := range []int{1, 2, 4, 8, 16} {
		s := Speedup(durs, DefaultConfig(n), Dynamic)
		if s < prev-1e-9 {
			t.Errorf("speedup decreased at %d nodes: %v -> %v", n, prev, s)
		}
		prev = s
	}
	if math.IsNaN(prev) {
		t.Error("NaN speedup")
	}
}

func TestLossyNetworkCostsAndDeterminism(t *testing.T) {
	durs := varied(100, 5, 42)
	cfg := DefaultConfig(14)
	lossy := cfg
	lossy.LossRate = 0.10
	lossy.RetransmitTimeoutInstr = 4 * cfg.MsgLatencyInstr
	lossy.FaultPlan = faults.New(faults.Config{Seed: 1990})

	for _, pol := range []Policy{StaticRoundRobin, StaticBalanced, Dynamic} {
		clean := Run(durs, cfg, pol)
		s1, r1 := RunFaulty(durs, lossy, pol)
		s2, r2 := RunFaulty(durs, lossy, pol)
		if s1.Makespan != s2.Makespan || r1 != r2 {
			t.Errorf("%v: lossy run not deterministic", pol)
		}
		if r1.Retransmits == 0 || r1.WastedInstr <= 0 {
			t.Errorf("%v: retransmissions not accounted: %+v", pol, r1)
		}
		// Work conservation: the retransmission bill lands in busy time
		// exactly (makespan may shift either way under list-scheduling
		// anomalies, but the total work cannot).
		if got, want := sum(s1.Busy)-sum(clean.Busy), r1.WastedInstr; math.Abs(got-want) > 1 {
			t.Errorf("%v: lossy busy grew by %v, want wasted %v", pol, got, want)
		}
	}
}

func TestPoliciesPaySameRetransmissionBill(t *testing.T) {
	// Losses are charged per task before dispatch, so every policy sees
	// the same retransmit count and wasted instructions — the policies
	// remain comparable under identical fault plans.
	durs := varied(80, 5, 7)
	cfg := DefaultConfig(8)
	cfg.LossRate = 0.15
	cfg.RetransmitTimeoutInstr = 4 * cfg.MsgLatencyInstr
	cfg.FaultPlan = faults.New(faults.Config{Seed: 3})
	_, rRR := RunFaulty(durs, cfg, StaticRoundRobin)
	_, rLPT := RunFaulty(durs, cfg, StaticBalanced)
	_, rDyn := RunFaulty(durs, cfg, Dynamic)
	if rRR != rLPT || rLPT != rDyn {
		t.Errorf("retransmission bills differ: %+v / %+v / %+v", rRR, rLPT, rDyn)
	}
}

func TestZeroLossMatchesReliableNetwork(t *testing.T) {
	durs := varied(50, 5, 9)
	cfg := DefaultConfig(6)
	noPlan := cfg
	noPlan.LossRate = 0.3
	noPlan.RetransmitTimeoutInstr = 4 * cfg.MsgLatencyInstr
	zeroRate := noPlan
	zeroRate.LossRate = 0
	zeroRate.FaultPlan = faults.New(faults.Config{Seed: 1})
	for _, pol := range []Policy{StaticRoundRobin, StaticBalanced, Dynamic} {
		base := Run(durs, cfg, pol).Makespan
		s1, r1 := RunFaulty(durs, noPlan, pol)
		s2, r2 := RunFaulty(durs, zeroRate, pol)
		if s1.Makespan != base || s2.Makespan != base {
			t.Errorf("%v: disabled loss must match reliable run", pol)
		}
		if (r1 != stats.Recovery{}) || (r2 != stats.Recovery{}) {
			t.Errorf("%v: phantom recovery: %+v %+v", pol, r1, r2)
		}
	}
}

func sum(xs []float64) float64 {
	var t float64
	for _, x := range xs {
		t += x
	}
	return t
}
