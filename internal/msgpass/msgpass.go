// Package msgpass models task-level parallelism on a message-passing
// multicomputer — the paper's Section 9 future work ("we are currently
// investigating implementations on message-passing computers", citing
// Acharya & Tambe's simulation study).
//
// Unlike the shared-memory Encore, a message-passing machine has no
// shared task queue: tasks must either be partitioned statically among
// the nodes up front, or fetched dynamically from a coordinator at the
// cost of a request/reply message round-trip plus shipping the task's
// working memory. The interesting question — the one the paper's
// variance discussion (Mohan) predicts the answer to — is whether the
// message overhead of dynamic distribution outweighs its resistance to
// task-duration variance. For SPAM-like task sizes the messages are
// tiny next to a multi-second task, so dynamic distribution wins on
// variance alone — with one caveat the experiments surface: a FIFO
// dynamic queue still suffers the tail-end effect when the outlier
// tasks sit late in the queue, so the full win needs the largest-first
// ordering the paper proposes (see bench's ext-msgpass).
package msgpass

import (
	"container/heap"
	"sort"

	"spampsm/internal/faults"
	"spampsm/internal/machine"
	"spampsm/internal/stats"
)

// Config parameterizes the message-passing machine.
type Config struct {
	// Nodes is the number of compute nodes (one task process each).
	Nodes int
	// MsgLatencyInstr is the one-way latency of a small control message
	// in simulated instructions.
	MsgLatencyInstr float64
	// TaskShipInstr is the cost of shipping one task's working memory
	// to a node.
	TaskShipInstr float64
	// ResultShipInstr is the cost of shipping a task's results back.
	ResultShipInstr float64

	// LossRate is the probability one task-carrying message is lost in
	// the interconnect and must be retransmitted after a timeout. 0
	// models a reliable network.
	LossRate float64
	// RetransmitTimeoutInstr is the loss-detection timeout before a
	// message is resent, in simulated instructions.
	RetransmitTimeoutInstr float64
	// FaultPlan drives the deterministic loss draws; nil disables loss
	// regardless of LossRate, keeping chaos runs reproducible.
	FaultPlan *faults.Plan
}

// lossOverhead returns the retransmission cost charged to task i (a
// lost shipment costs the timeout plus a fresh message round), and the
// number of lost transmissions.
func (c Config) lossOverhead(i int) (float64, int) {
	if c.FaultPlan == nil || c.LossRate <= 0 {
		return 0, 0
	}
	n := c.FaultPlan.LossCount("msgpass", i, c.LossRate, 8)
	return float64(n) * (c.RetransmitTimeoutInstr + c.MsgLatencyInstr), n
}

// DefaultConfig models a mid-80s multicomputer interconnect: ~5 ms
// per message and ~20 ms to ship a task's working memory.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:           nodes,
		MsgLatencyInstr: machine.SecToInstr(0.005),
		TaskShipInstr:   machine.SecToInstr(0.020),
		ResultShipInstr: machine.SecToInstr(0.010),
	}
}

// Policy selects how tasks reach the nodes.
type Policy uint8

const (
	// StaticRoundRobin deals tasks to nodes in order, up front.
	StaticRoundRobin Policy = iota
	// StaticBalanced partitions tasks up front balancing the *known*
	// total duration per node (LPT into bins) — the best a static
	// scheme can do, and it requires perfect size predictions.
	StaticBalanced
	// Dynamic keeps the queue on a coordinator node; each node requests
	// a task when free, paying a message round-trip plus task shipping.
	Dynamic
)

func (p Policy) String() string {
	switch p {
	case StaticRoundRobin:
		return "static-round-robin"
	case StaticBalanced:
		return "static-balanced"
	case Dynamic:
		return "dynamic"
	}
	return "unknown"
}

// Run schedules the task durations (in queue order) onto the
// message-passing machine under the given policy and returns the
// simulated schedule.
func Run(durations []float64, cfg Config, policy Policy) machine.Schedule {
	sched, _ := RunFaulty(durations, cfg, policy)
	return sched
}

// RunFaulty is Run with recovery accounting: when the config carries a
// loss rate and fault plan, each task's shipment may be lost and
// resent after a timeout, and the recovery columns report the cost.
// Losses are charged per task (by queue index) before dispatch, so
// every distribution policy pays the same retransmission bill and the
// policies stay comparable under identical fault plans.
func RunFaulty(durations []float64, cfg Config, policy Policy) (machine.Schedule, stats.Recovery) {
	var rec stats.Recovery
	if cfg.FaultPlan != nil && cfg.LossRate > 0 {
		costed := make([]float64, len(durations))
		for i, d := range durations {
			extra, lost := cfg.lossOverhead(i)
			costed[i] = d + extra
			rec.Retransmits += lost
			rec.WastedInstr += extra
		}
		durations = costed
	}
	return run(durations, cfg, policy), rec
}

func run(durations []float64, cfg Config, policy Policy) machine.Schedule {
	n := cfg.Nodes
	if n < 1 {
		n = 1
	}
	switch policy {
	case StaticRoundRobin:
		parts := make([][]float64, n)
		for i, d := range durations {
			parts[i%n] = append(parts[i%n], d)
		}
		return runStatic(parts, cfg, len(durations))
	case StaticBalanced:
		// LPT binning: biggest task to the least-loaded node. This
		// assumes the scheduler knows every duration in advance.
		idx := make([]int, len(durations))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return durations[idx[a]] > durations[idx[b]] })
		parts := make([][]float64, n)
		loads := make([]float64, n)
		for _, i := range idx {
			best := 0
			for j := 1; j < n; j++ {
				if loads[j] < loads[best] {
					best = j
				}
			}
			parts[best] = append(parts[best], durations[i])
			loads[best] += durations[i]
		}
		return runStatic(parts, cfg, len(durations))
	default:
		return runDynamic(durations, cfg, n)
	}
}

// runStatic executes pre-partitioned tasks: each node first receives
// its whole partition (pipelined shipping), then runs it serially.
func runStatic(parts [][]float64, cfg Config, total int) machine.Schedule {
	busy := make([]float64, len(parts))
	var makespan float64
	per := make([]float64, 0, total)
	for node, part := range parts {
		// The coordinator ships the partition; shipping overlaps with
		// execution after the first task arrives.
		t := cfg.MsgLatencyInstr + cfg.TaskShipInstr
		for _, d := range part {
			t += d
			per = append(per, t)
		}
		t += cfg.ResultShipInstr
		busy[node] = t
		if t > makespan {
			makespan = t
		}
	}
	return machine.Schedule{Makespan: makespan, Busy: busy, PerTask: per}
}

type nodeEvent struct {
	free float64
	idx  int
}
type nodeHeap []nodeEvent

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].free != h[j].free {
		return h[i].free < h[j].free
	}
	return h[i].idx < h[j].idx
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeEvent)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// runDynamic executes tasks from a coordinator-held queue: each fetch
// costs a request/reply round-trip plus task and result shipping.
func runDynamic(durations []float64, cfg Config, n int) machine.Schedule {
	h := make(nodeHeap, n)
	busy := make([]float64, n)
	for i := range h {
		h[i] = nodeEvent{idx: i}
	}
	heap.Init(&h)
	per := make([]float64, len(durations))
	perFetch := 2*cfg.MsgLatencyInstr + cfg.TaskShipInstr + cfg.ResultShipInstr
	var makespan float64
	for i, d := range durations {
		nd := heap.Pop(&h).(nodeEvent)
		cost := d + perFetch
		nd.free += cost
		busy[nd.idx] += cost
		per[i] = nd.free
		if nd.free > makespan {
			makespan = nd.free
		}
		heap.Push(&h, nd)
	}
	return machine.Schedule{Makespan: makespan, Busy: busy, PerTask: per}
}

// Speedup returns single-node time (no messaging) over the policy's
// makespan.
func Speedup(durations []float64, cfg Config, policy Policy) float64 {
	var serial float64
	for _, d := range durations {
		serial += d
	}
	t := Run(durations, cfg, policy).Makespan
	if t <= 0 {
		return 0
	}
	return serial / t
}
