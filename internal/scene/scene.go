// Package scene generates the synthetic aerial imagery segmentations
// that stand in for the paper's proprietary airport datasets (San
// Francisco International, Washington National, and NASA Ames Moffett
// Field, SPAM logs #63, #405 and #415).
//
// The parallelism experiments depend on the *statistics* of the scene —
// how many objects of each class exist, how many candidate partners
// each constraint must check, how heavy the geometry is — not on
// pixels. The generator lays out a plausible airport (runways,
// taxiways, terminals, aprons, hangars, grass, tarmac, access roads,
// parking lots) plus segmentation noise, deterministically from a
// seed, with per-dataset scale calibrated to the paper's task counts.
// A suburban-housing generator covers SPAM's second task domain.
package scene

import (
	"fmt"
	"math"

	"spampsm/internal/geom"
)

// Kind is the ground-truth class of a region.
type Kind string

// Airport-domain kinds.
const (
	Runway   Kind = "runway"
	Taxiway  Kind = "taxiway"
	Terminal Kind = "terminal-building"
	Apron    Kind = "parking-apron"
	Hangar   Kind = "hangar"
	Grass    Kind = "grassy-area"
	Tarmac   Kind = "tarmac"
	Road     Kind = "access-road"
	Lot      Kind = "parking-lot"
	Noise    Kind = "noise"
)

// Suburban-domain kinds.
const (
	House    Kind = "house"
	Driveway Kind = "driveway"
	Street   Kind = "street"
	Yard     Kind = "yard"
)

// Region is one segmented image region.
type Region struct {
	ID        int
	Poly      geom.Polygon
	TrueKind  Kind    // ground truth, used only for evaluation
	Intensity float64 // mean gray level 0..255
	Texture   float64 // 0..1 (0 smooth, 1 busy)
}

// Area returns the polygon area.
func (r *Region) Area() float64 { return r.Poly.Area() }

// Domain is the scene's task domain.
type Domain string

// Domains.
const (
	Airport  Domain = "airport"
	Suburban Domain = "suburban"
)

// Scene is one segmented image.
type Scene struct {
	Name    string
	Domain  Domain
	W, H    float64
	Regions []*Region
}

// ByKind returns the regions whose ground truth is k.
func (s *Scene) ByKind(k Kind) []*Region {
	var out []*Region
	for _, r := range s.Regions {
		if r.TrueKind == k {
			out = append(out, r)
		}
	}
	return out
}

// Region returns the region with the given ID, or nil.
func (s *Scene) Region(id int) *Region {
	for _, r := range s.Regions {
		if r.ID == id {
			return r
		}
	}
	return nil
}

// rng is a small deterministic splitmix64 generator; the module is
// offline and the experiments must be reproducible, so no math/rand.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform float in [0,1).
func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// rangef returns a uniform float in [lo,hi).
func (r *rng) rangef(lo, hi float64) float64 { return lo + (hi-lo)*r.float() }

// intn returns a uniform int in [0,n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Params sizes an airport scene.
type Params struct {
	Name        string
	Seed        uint64
	W, H        float64
	Runways     int
	Taxiways    int // per runway
	Terminals   int
	Hangars     int
	GrassAreas  int
	TarmacAreas int
	Roads       int
	Lots        int
	NoiseBlobs  int
	// Infields is the number of very large grass expanses (the airfield
	// infield between runways). Their regions are an order of magnitude
	// bigger and more detailed than typical regions; the LCC tasks they
	// seed are the paper's tail-end outliers ("a few tasks ... have
	// execution times that are an order of magnitude larger than the
	// average"), and they sit late in the task queue.
	Infields int
	// Verts is the polygon vertex budget: higher values make the
	// geometric RHS evaluation more expensive relative to match (the
	// knob behind the per-dataset match fractions the paper reports).
	Verts int
}

// The three calibrated datasets. Region counts are tuned so that the
// LCC Level-3 decomposition produces approximately the paper's task
// counts (SF 283, DC 151, MOFF 209 tasks on the representative
// subsets).
var (
	// SF is San Francisco International (log #63): the largest scene,
	// relatively simple region outlines.
	SF = Params{
		Name: "SF", Seed: 63, W: 12000, H: 9000,
		Runways: 4, Taxiways: 9, Terminals: 8, Hangars: 14,
		GrassAreas: 36, TarmacAreas: 32, Roads: 18, Lots: 17, NoiseBlobs: 30,
		Infields: 3, Verts: 12,
	}
	// DC is Washington National (log #405): a compact scene with
	// complex shorelines — heavier geometry per region.
	DC = Params{
		Name: "DC", Seed: 405, W: 8000, H: 6000,
		Runways: 3, Taxiways: 7, Terminals: 4, Hangars: 8,
		GrassAreas: 20, TarmacAreas: 16, Roads: 11, Lots: 10, NoiseBlobs: 16,
		Infields: 2, Verts: 34,
	}
	// MOFF is NASA Ames Moffett Field (log #415): mid-sized, moderate
	// complexity.
	MOFF = Params{
		Name: "MOFF", Seed: 415, W: 10000, H: 7000,
		Runways: 3, Taxiways: 8, Terminals: 5, Hangars: 13,
		GrassAreas: 27, TarmacAreas: 23, Roads: 15, Lots: 13, NoiseBlobs: 22,
		Infields: 2, Verts: 22,
	}
)

// Scale returns a copy of p with all object counts multiplied by f
// (at least 1 each). The full datasets of Tables 1-3 are the subsets
// scaled up; the parallelism analysis runs on the subsets, as the
// paper's footnote 4 describes.
func (p Params) Scale(f float64) Params {
	q := p
	mul := func(n int) int {
		m := int(math.Round(float64(n) * f))
		if m < 1 {
			m = 1
		}
		return m
	}
	q.Runways = mul(p.Runways)
	q.Taxiways = mul(p.Taxiways)
	q.Terminals = mul(p.Terminals)
	q.Hangars = mul(p.Hangars)
	q.GrassAreas = mul(p.GrassAreas)
	q.TarmacAreas = mul(p.TarmacAreas)
	q.Roads = mul(p.Roads)
	q.Lots = mul(p.Lots)
	q.NoiseBlobs = mul(p.NoiseBlobs)
	q.Infields = mul(p.Infields)
	q.W = p.W * math.Sqrt(f)
	q.H = p.H * math.Sqrt(f)
	return q
}

// intensity profiles per kind: mean gray level and texture.
var profiles = map[Kind]struct{ intensity, texture float64 }{
	Runway:   {190, 0.10},
	Taxiway:  {170, 0.12},
	Terminal: {120, 0.35},
	Apron:    {150, 0.20},
	Hangar:   {110, 0.30},
	Grass:    {70, 0.55},
	Tarmac:   {160, 0.15},
	Road:     {140, 0.18},
	Lot:      {130, 0.25},
	Noise:    {100, 0.70},
	House:    {115, 0.32},
	Driveway: {145, 0.15},
	Street:   {150, 0.12},
	Yard:     {75, 0.50},
}

// Generate builds an airport scene from the parameters.
func Generate(p Params) *Scene {
	rnd := newRng(p.Seed)
	s := &Scene{Name: p.Name, Domain: Airport, W: p.W, H: p.H}
	nextID := 1
	add := func(k Kind, poly geom.Polygon) *Region {
		prof := profiles[k]
		r := &Region{
			ID:        nextID,
			Poly:      poly,
			TrueKind:  k,
			Intensity: prof.intensity + rnd.rangef(-12, 12),
			Texture:   math.Max(0, math.Min(1, prof.texture+rnd.rangef(-0.06, 0.06))),
		}
		nextID++
		s.Regions = append(s.Regions, r)
		return r
	}
	roughen := func(poly geom.Polygon) geom.Polygon {
		return roughenPoly(poly, p.Verts, rnd)
	}

	// Runways: long parallel strips with slight angle jitter, spread
	// vertically through the scene.
	baseAngle := rnd.rangef(-0.2, 0.2)
	var runways []*Region
	for i := 0; i < p.Runways; i++ {
		cy := p.H * (0.25 + 0.5*float64(i)/math.Max(1, float64(p.Runways-1)))
		if p.Runways == 1 {
			cy = p.H * 0.5
		}
		c := geom.Point{X: p.W * rnd.rangef(0.4, 0.6), Y: cy}
		length := p.W * rnd.rangef(0.55, 0.8)
		width := rnd.rangef(45, 60)
		angle := baseAngle + rnd.rangef(-0.05, 0.05)
		r := add(Runway, roughen(geom.RectPoly(c, length, width, angle)))
		runways = append(runways, r)
	}

	// Taxiways: strips crossing or joining runways at an angle.
	for _, rw := range runways {
		for j := 0; j < p.Taxiways; j++ {
			t := rnd.rangef(0.15, 0.85)
			bb := rw.Poly.BBox()
			anchor := geom.Point{
				X: bb.Min.X + t*bb.W(),
				Y: bb.Min.Y + t*bb.H(),
			}
			angle := baseAngle + math.Pi/2 + rnd.rangef(-0.6, 0.6)
			length := rnd.rangef(500, 1600)
			width := rnd.rangef(20, 32)
			// Offset the center so the taxiway touches the runway.
			off := geom.Point{X: math.Cos(angle), Y: math.Sin(angle)}.Scale(length * 0.45)
			c := anchor.Add(off)
			add(Taxiway, roughen(geom.RectPoly(c, length, width, angle)))
		}
	}

	// Terminals along the lower edge, each with an adjacent apron and
	// an access road leading to it.
	for i := 0; i < p.Terminals; i++ {
		cx := p.W * (0.1 + 0.8*float64(i)/math.Max(1, float64(p.Terminals)))
		c := geom.Point{X: cx, Y: p.H * rnd.rangef(0.08, 0.16)}
		tw := rnd.rangef(180, 380)
		th := rnd.rangef(90, 160)
		term := add(Terminal, roughen(geom.RectPoly(c, tw, th, rnd.rangef(-0.1, 0.1))))
		// Apron adjacent (just above) the terminal.
		ac := c.Add(geom.Point{X: rnd.rangef(-40, 40), Y: th/2 + rnd.rangef(60, 120)})
		add(Apron, roughen(geom.RectPoly(ac, tw*rnd.rangef(1.1, 1.6), rnd.rangef(140, 240), rnd.rangef(-0.08, 0.08))))
		// Access road from the edge to the terminal.
		rc := c.Add(geom.Point{X: rnd.rangef(-30, 30), Y: -(th/2 + rnd.rangef(150, 260))})
		add(Road, roughen(geom.RectPoly(rc, rnd.rangef(300, 600), rnd.rangef(12, 20), math.Pi/2+rnd.rangef(-0.15, 0.15))))
		_ = term
	}

	// Hangars cluster near the aprons.
	for i := 0; i < p.Hangars; i++ {
		c := geom.Point{X: p.W * rnd.rangef(0.05, 0.95), Y: p.H * rnd.rangef(0.12, 0.3)}
		add(Hangar, roughen(geom.RectPoly(c, rnd.rangef(80, 160), rnd.rangef(60, 110), rnd.rangef(-0.3, 0.3))))
	}

	// Grass between runways; tarmac patches near taxiways.
	for i := 0; i < p.GrassAreas; i++ {
		c := geom.Point{X: p.W * rnd.rangef(0.1, 0.9), Y: p.H * rnd.rangef(0.3, 0.85)}
		add(Grass, geom.Blob(c, rnd.rangef(150, 500), p.Verts+rnd.intn(6), 0.35, rnd.next()))
	}
	for i := 0; i < p.TarmacAreas; i++ {
		c := geom.Point{X: p.W * rnd.rangef(0.1, 0.9), Y: p.H * rnd.rangef(0.2, 0.7)}
		add(Tarmac, geom.Blob(c, rnd.rangef(100, 300), p.Verts+rnd.intn(4), 0.25, rnd.next()))
	}

	// Extra roads and parking lots in the landside strip.
	for i := 0; i < p.Roads; i++ {
		c := geom.Point{X: p.W * rnd.rangef(0.05, 0.95), Y: p.H * rnd.rangef(0.02, 0.12)}
		add(Road, roughen(geom.RectPoly(c, rnd.rangef(400, 900), rnd.rangef(10, 18), rnd.rangef(-0.4, 0.4))))
	}
	for i := 0; i < p.Lots; i++ {
		c := geom.Point{X: p.W * rnd.rangef(0.05, 0.95), Y: p.H * rnd.rangef(0.02, 0.14)}
		add(Lot, roughen(geom.RectPoly(c, rnd.rangef(120, 260), rnd.rangef(80, 160), rnd.rangef(-0.2, 0.2))))
	}

	// Infields: the huge grass expanses between and around the runways.
	// Late in generation order (and so late in the task queue), with
	// far more boundary detail than typical regions.
	for i := 0; i < p.Infields; i++ {
		c := geom.Point{X: p.W * rnd.rangef(0.3, 0.7), Y: p.H * rnd.rangef(0.4, 0.7)}
		add(Grass, geom.Blob(c, rnd.rangef(1200, 2000), p.Verts*7, 0.3, rnd.next()))
	}

	// Segmentation noise: irregular blobs anywhere.
	for i := 0; i < p.NoiseBlobs; i++ {
		c := geom.Point{X: p.W * rnd.float(), Y: p.H * rnd.float()}
		add(Noise, geom.Blob(c, rnd.rangef(30, 140), 5+rnd.intn(6), 0.6, rnd.next()))
	}
	return s
}

// roughenPoly resamples a rectangle outline to ~verts vertices with
// small perturbations, simulating segmentation boundaries.
func roughenPoly(rect geom.Polygon, verts int, rnd *rng) geom.Polygon {
	if verts <= 4 {
		return rect
	}
	per := rect.Perimeter()
	step := per / float64(verts)
	var out geom.Polygon
	// Walk the boundary, emitting jittered points.
	for i := 0; i < len(rect); i++ {
		a := rect[i]
		b := rect[(i+1)%len(rect)]
		edge := b.Sub(a)
		elen := edge.Norm()
		n := int(elen / step)
		if n < 1 {
			n = 1
		}
		for k := 0; k < n; k++ {
			t := float64(k) / float64(n)
			pt := a.Add(edge.Scale(t))
			// Perpendicular jitter of up to 1.5% of the edge length.
			perp := geom.Point{X: -edge.Y / elen, Y: edge.X / elen}
			pt = pt.Add(perp.Scale(rnd.rangef(-0.015, 0.015) * elen))
			out = append(out, pt)
		}
	}
	if len(out) < 3 {
		return rect
	}
	return out
}

// SuburbanParams sizes a suburban housing scene.
type SuburbanParams struct {
	Name           string
	Seed           uint64
	Blocks         int // city blocks; each block has houses along a street
	HousesPerBlock int
	Verts          int
}

// GenerateSuburban builds a suburban housing development scene: streets
// in a grid, houses with driveways connecting to the street, yards
// around houses — SPAM's second task area.
func GenerateSuburban(p SuburbanParams) *Scene {
	rnd := newRng(p.Seed)
	blockW, blockH := 800.0, 500.0
	cols := int(math.Ceil(math.Sqrt(float64(p.Blocks))))
	if cols < 1 {
		cols = 1
	}
	rows := (p.Blocks + cols - 1) / cols
	s := &Scene{
		Name: p.Name, Domain: Suburban,
		W: float64(cols) * blockW, H: float64(rows) * blockH,
	}
	nextID := 1
	add := func(k Kind, poly geom.Polygon) *Region {
		prof := profiles[k]
		r := &Region{
			ID: nextID, Poly: poly, TrueKind: k,
			Intensity: prof.intensity + rnd.rangef(-10, 10),
			Texture:   math.Max(0, math.Min(1, prof.texture+rnd.rangef(-0.05, 0.05))),
		}
		nextID++
		s.Regions = append(s.Regions, r)
		return r
	}
	for b := 0; b < p.Blocks; b++ {
		bx := float64(b%cols) * blockW
		by := float64(b/cols) * blockH
		// Street along the bottom of the block.
		street := geom.RectPoly(geom.Point{X: bx + blockW/2, Y: by + 30}, blockW*0.95, 24, 0)
		add(Street, street)
		for h := 0; h < p.HousesPerBlock; h++ {
			hx := bx + blockW*(0.1+0.8*float64(h)/math.Max(1, float64(p.HousesPerBlock)))
			hy := by + rnd.rangef(180, 320)
			house := geom.RectPoly(geom.Point{X: hx, Y: hy}, rnd.rangef(60, 110), rnd.rangef(45, 75), rnd.rangef(-0.15, 0.15))
			add(House, house)
			// Driveway from the house toward the street.
			dLen := hy - (by + 42)
			dc := geom.Point{X: hx + rnd.rangef(-20, 20), Y: by + 42 + dLen/2}
			add(Driveway, geom.RectPoly(dc, dLen, rnd.rangef(8, 14), math.Pi/2))
			// Yard blob behind the house.
			yc := geom.Point{X: hx + rnd.rangef(-40, 40), Y: hy + rnd.rangef(60, 120)}
			add(Yard, geom.Blob(yc, rnd.rangef(50, 110), p.Verts, 0.4, rnd.next()))
		}
	}
	return s
}

// Stats summarizes a scene for diagnostics.
func (s *Scene) Stats() string {
	counts := map[Kind]int{}
	for _, r := range s.Regions {
		counts[r.TrueKind]++
	}
	return fmt.Sprintf("%s: %d regions %v", s.Name, len(s.Regions), counts)
}
