// Scene deltas: the update representation behind incremental
// re-interpretation. A Delta lists the regions a fresh segmentation of
// known imagery removed, replaced, or introduced; Churn generates
// realistic deltas deterministically (new cloud/shadow occlusions, the
// segmenter re-drawing boundaries it mis-segmented last pass, objects
// drifting between acquisitions, emergent blobs), and Apply folds a
// delta into a scene in place, preserving the untouched regions'
// identity and order so the interpretation layer can re-run only what
// changed.
package scene

import (
	"fmt"
	"math"
	"sort"

	"spampsm/internal/geom"
)

// Delta is one scene update: the difference between two segmentations
// of the same site. Removed lists region IDs no longer present
// (occluded or merged away), Moved lists replacement regions that keep
// their IDs but changed geometrically or photometrically, and Added
// lists new regions under previously-unused IDs.
type Delta struct {
	// Base names the scene the delta was generated against (diagnostic
	// only; Apply does not check it).
	Base    string    `json:"base,omitempty"`
	Removed []int     `json:"removed,omitempty"`
	Moved   []*Region `json:"moved,omitempty"`
	Added   []*Region `json:"added,omitempty"`
}

// Empty reports whether the delta changes nothing.
func (d *Delta) Empty() bool {
	return d == nil || len(d.Removed)+len(d.Moved)+len(d.Added) == 0
}

// Size returns the number of region changes the delta carries.
func (d *Delta) Size() int {
	if d == nil {
		return 0
	}
	return len(d.Removed) + len(d.Moved) + len(d.Added)
}

// ChangedIDs returns the sorted union of every region ID the delta
// touches.
func (d *Delta) ChangedIDs() []int {
	if d == nil {
		return nil
	}
	ids := make([]int, 0, d.Size())
	ids = append(ids, d.Removed...)
	for _, r := range d.Moved {
		ids = append(ids, r.ID)
	}
	for _, r := range d.Added {
		ids = append(ids, r.ID)
	}
	sort.Ints(ids)
	return ids
}

// Churn parameterizes delta generation: which fraction of the scene a
// re-acquisition disturbs and how the disturbance splits between the
// physical mechanisms.
type Churn struct {
	// Seed makes the delta deterministic, independent of the scene's
	// own generation seed.
	Seed uint64
	// Fraction of the scene's regions affected (0..1). A non-zero
	// fraction always affects at least one region.
	Fraction float64
	// Occlusion is the share of affected regions that vanish outright —
	// cloud shadow, sensor dropout, or a merge into a neighbour.
	Occlusion float64
	// MisSeg is the share of affected regions whose boundary the
	// segmenter re-draws in place (the mis-segmentation knob): same
	// object, jittered outline and photometry.
	MisSeg float64
	// The remaining share (1 − Occlusion − MisSeg) drifts: same shape
	// translated, as parked aircraft, vehicles and shadows move
	// between acquisitions.

	// Emergent is the number of newly-appearing regions, as a fraction
	// of the affected count — uncovered objects and fresh noise blobs.
	Emergent float64
}

// DefaultChurn is the standard update mix used by the experiments:
// a quarter of the affected regions occluded, half re-segmented in
// place, the rest drifting, plus one emergent region for every four
// affected (so region counts stay roughly stable as removals are
// offset).
func DefaultChurn(seed uint64, fraction float64) Churn {
	return Churn{Seed: seed, Fraction: fraction, Occlusion: 0.25, MisSeg: 0.5, Emergent: 0.25}
}

// Churn generates a deterministic delta against the scene. The scene
// itself is not modified.
func (s *Scene) Churn(c Churn) *Delta {
	d := &Delta{Base: s.Name}
	if c.Fraction <= 0 || len(s.Regions) == 0 {
		return d
	}
	rnd := newRng(c.Seed ^ 0xd1ce5eed)
	n := int(math.Round(c.Fraction * float64(len(s.Regions))))
	if n < 1 {
		n = 1
	}
	if n > len(s.Regions) {
		n = len(s.Regions)
	}
	maxID := 0
	for _, r := range s.Regions {
		if r.ID > maxID {
			maxID = r.ID
		}
	}
	// Pick n distinct regions.
	picked := make(map[int]bool, n)
	var affected []*Region
	for len(affected) < n {
		i := rnd.intn(len(s.Regions))
		if picked[i] {
			continue
		}
		picked[i] = true
		affected = append(affected, s.Regions[i])
	}
	for _, r := range affected {
		switch u := rnd.float(); {
		case u < c.Occlusion:
			d.Removed = append(d.Removed, r.ID)
		case u < c.Occlusion+c.MisSeg:
			d.Moved = append(d.Moved, resegment(r, rnd))
		default:
			d.Moved = append(d.Moved, drift(r, s, rnd))
		}
	}
	// Emergent regions get fresh IDs past the current maximum.
	k := int(math.Round(c.Emergent * float64(n)))
	for i := 0; i < k; i++ {
		maxID++
		d.Added = append(d.Added, emergent(maxID, s, rnd))
	}
	return d
}

// resegment re-draws a region's boundary in place: every vertex is
// jittered by up to 2.5% of the bbox diagonal, and the photometry
// shifts slightly — the segmenter correcting (or re-committing) a
// mis-segmentation.
func resegment(r *Region, rnd *rng) *Region {
	bb := r.Poly.BBox()
	mag := 0.025 * math.Hypot(bb.W(), bb.H())
	poly := make(geom.Polygon, len(r.Poly))
	for i, p := range r.Poly {
		poly[i] = geom.Point{
			X: p.X + rnd.rangef(-mag, mag),
			Y: p.Y + rnd.rangef(-mag, mag),
		}
	}
	return &Region{
		ID:        r.ID,
		Poly:      poly,
		TrueKind:  r.TrueKind,
		Intensity: r.Intensity + rnd.rangef(-6, 6),
		Texture:   math.Max(0, math.Min(1, r.Texture+rnd.rangef(-0.04, 0.04))),
	}
}

// drift translates a region rigidly by up to 3% of the scene extent —
// objects (and their shadows) moving between acquisitions.
func drift(r *Region, s *Scene, rnd *rng) *Region {
	dx := rnd.rangef(-0.03, 0.03) * s.W
	dy := rnd.rangef(-0.03, 0.03) * s.H
	poly := make(geom.Polygon, len(r.Poly))
	for i, p := range r.Poly {
		poly[i] = geom.Point{X: p.X + dx, Y: p.Y + dy}
	}
	out := *r
	out.Poly = poly
	return &out
}

// emergent builds a newly-appearing region: a blob of one of the
// transient kinds at a random position.
func emergent(id int, s *Scene, rnd *rng) *Region {
	kinds := []Kind{Noise, Tarmac, Grass, Lot}
	if s.Domain == Suburban {
		kinds = []Kind{Yard, Driveway}
	}
	k := kinds[rnd.intn(len(kinds))]
	prof := profiles[k]
	c := geom.Point{X: s.W * rnd.float(), Y: s.H * rnd.float()}
	return &Region{
		ID:        id,
		Poly:      geom.Blob(c, rnd.rangef(60, 220), 7+rnd.intn(6), 0.45, rnd.next()),
		TrueKind:  k,
		Intensity: prof.intensity + rnd.rangef(-12, 12),
		Texture:   math.Max(0, math.Min(1, prof.texture+rnd.rangef(-0.06, 0.06))),
	}
}

// Apply folds a delta into the scene in place: removed regions leave
// the slice (their IDs become holes), moved regions are replaced at
// their existing position, added regions append in delta order.
// Untouched *Region pointers are preserved, so region identity — and
// everything derived from it — survives the update. Unknown removed or
// moved IDs and colliding added IDs are errors, applied atomically
// (the scene is untouched on error).
func (s *Scene) Apply(d *Delta) error {
	if d.Empty() {
		return nil
	}
	byID := make(map[int]int, len(s.Regions))
	for i, r := range s.Regions {
		byID[r.ID] = i
	}
	for _, id := range d.Removed {
		if _, ok := byID[id]; !ok {
			return fmt.Errorf("scene: delta removes unknown region %d", id)
		}
	}
	for _, r := range d.Moved {
		if _, ok := byID[r.ID]; !ok {
			return fmt.Errorf("scene: delta moves unknown region %d", r.ID)
		}
	}
	for _, r := range d.Added {
		if _, ok := byID[r.ID]; ok {
			return fmt.Errorf("scene: delta adds region %d which already exists", r.ID)
		}
	}
	removed := make(map[int]bool, len(d.Removed))
	for _, id := range d.Removed {
		removed[id] = true
	}
	for _, r := range d.Moved {
		s.Regions[byID[r.ID]] = r
	}
	out := s.Regions[:0]
	for _, r := range s.Regions {
		if !removed[r.ID] {
			out = append(out, r)
		}
	}
	s.Regions = append(out, d.Added...)
	return nil
}

// Clone returns a deep copy of the scene: private Region records (the
// polygons, being immutable by convention, are shared). Sessions that
// apply deltas clone first so the original — often a shared, pinned
// dataset — is never mutated.
func (s *Scene) Clone() *Scene {
	out := *s
	out.Regions = make([]*Region, len(s.Regions))
	for i, r := range s.Regions {
		cp := *r
		out.Regions[i] = &cp
	}
	return &out
}
