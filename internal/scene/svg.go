package scene

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// kindColors give each region class a fill for the SVG rendering.
var kindColors = map[Kind]string{
	Runway:   "#9aa0a6",
	Taxiway:  "#b8bcc2",
	Terminal: "#8d6e63",
	Apron:    "#cfd2d6",
	Hangar:   "#795548",
	Grass:    "#7cb342",
	Tarmac:   "#c5c9cd",
	Road:     "#a1887f",
	Lot:      "#90a4ae",
	Noise:    "#e0c2cc",
	House:    "#8d6e63",
	Driveway: "#bcaaa4",
	Street:   "#9aa0a6",
	Yard:     "#7cb342",
}

// WriteSVG renders the scene's segmentation as an SVG document: one
// polygon per region, colored by ground-truth class, with a legend.
// Optional labels (e.g. classification results) can be drawn at region
// centroids via the labels map (region ID → text).
func (s *Scene) WriteSVG(w io.Writer, labels map[int]string) error {
	const margin = 40.0
	scale := 1000.0 / s.W
	width := s.W*scale + 2*margin
	height := s.H*scale + 2*margin + 60 // legend strip

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%.0f" height="%.0f" fill="#30343a"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%.0f" y="24" fill="#eceff1" font-family="sans-serif" font-size="18">%s (%d regions)</text>`+"\n",
		margin, s.Name, len(s.Regions))

	// Regions, largest first so small ones stay visible.
	regions := append([]*Region(nil), s.Regions...)
	sort.SliceStable(regions, func(i, j int) bool {
		return regions[i].Poly.Area() > regions[j].Poly.Area()
	})
	for _, r := range regions {
		color, ok := kindColors[r.TrueKind]
		if !ok {
			color = "#ff00ff"
		}
		var pts []string
		for _, p := range r.Poly {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", margin+p.X*scale, margin+p.Y*scale))
		}
		fmt.Fprintf(&b, `<polygon points="%s" fill="%s" fill-opacity="0.85" stroke="#1c1f24" stroke-width="0.6"><title>#%d %s</title></polygon>`+"\n",
			strings.Join(pts, " "), color, r.ID, r.TrueKind)
	}
	// Labels at centroids.
	var labelIDs []int
	for id := range labels {
		labelIDs = append(labelIDs, id)
	}
	sort.Ints(labelIDs)
	for _, id := range labelIDs {
		r := s.Region(id)
		if r == nil {
			continue
		}
		c := r.Poly.Centroid()
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" fill="#fffde7" font-family="sans-serif" font-size="9" text-anchor="middle">%s</text>`+"\n",
			margin+c.X*scale, margin+c.Y*scale, xmlEscape(labels[id]))
	}

	// Legend: the classes present, in stable order.
	present := map[Kind]bool{}
	for _, r := range s.Regions {
		present[r.TrueKind] = true
	}
	var kinds []Kind
	for k := range present {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	x := margin
	y := s.H*scale + margin + 30
	for _, k := range kinds {
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="12" height="12" fill="%s"/>`+"\n", x, y-10, kindColors[k])
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" fill="#eceff1" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			x+16, y, k)
		x += float64(len(k))*6.5 + 40
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
