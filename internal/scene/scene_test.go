package scene

import (
	"testing"

	"spampsm/internal/geom"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(SF)
	b := Generate(SF)
	if len(a.Regions) != len(b.Regions) {
		t.Fatalf("region counts differ: %d vs %d", len(a.Regions), len(b.Regions))
	}
	for i := range a.Regions {
		ra, rb := a.Regions[i], b.Regions[i]
		if ra.TrueKind != rb.TrueKind || ra.Intensity != rb.Intensity || len(ra.Poly) != len(rb.Poly) {
			t.Fatalf("region %d differs between runs", i)
		}
	}
}

func TestDatasetsDiffer(t *testing.T) {
	sf, dc := Generate(SF), Generate(DC)
	if len(sf.Regions) <= len(dc.Regions) {
		t.Errorf("SF (%d) should be larger than DC (%d)", len(sf.Regions), len(dc.Regions))
	}
}

func TestRegionCountsMatchParams(t *testing.T) {
	p := SF
	s := Generate(p)
	if got := len(s.ByKind(Runway)); got != p.Runways {
		t.Errorf("runways = %d, want %d", got, p.Runways)
	}
	if got := len(s.ByKind(Taxiway)); got != p.Runways*p.Taxiways {
		t.Errorf("taxiways = %d, want %d", got, p.Runways*p.Taxiways)
	}
	if got := len(s.ByKind(Terminal)); got != p.Terminals {
		t.Errorf("terminals = %d, want %d", got, p.Terminals)
	}
	// Each terminal brings an apron and a road.
	if got := len(s.ByKind(Apron)); got != p.Terminals {
		t.Errorf("aprons = %d, want %d", got, p.Terminals)
	}
	total := p.Runways + p.Runways*p.Taxiways + 3*p.Terminals + p.Hangars +
		p.GrassAreas + p.TarmacAreas + p.Roads + p.Lots + p.NoiseBlobs + p.Infields
	if len(s.Regions) != total {
		t.Errorf("total regions = %d, want %d", len(s.Regions), total)
	}
	if got := len(s.ByKind(Grass)); got != p.GrassAreas+p.Infields {
		t.Errorf("grass regions = %d, want %d", got, p.GrassAreas+p.Infields)
	}
}

func TestRegionsValidPolygons(t *testing.T) {
	for _, p := range []Params{SF, DC, MOFF} {
		s := Generate(p)
		for _, r := range s.Regions {
			if !r.Poly.Valid() {
				t.Errorf("%s region %d (%s): invalid polygon (%d verts, area %v)",
					p.Name, r.ID, r.TrueKind, len(r.Poly), r.Poly.Area())
			}
			if r.Intensity < 0 || r.Intensity > 255 {
				t.Errorf("%s region %d: intensity %v out of range", p.Name, r.ID, r.Intensity)
			}
			if r.Texture < 0 || r.Texture > 1 {
				t.Errorf("%s region %d: texture %v out of range", p.Name, r.ID, r.Texture)
			}
		}
	}
}

func TestRunwaysAreElongated(t *testing.T) {
	s := Generate(SF)
	for _, r := range s.ByKind(Runway) {
		if e := r.Poly.Elongation(); e < 8 {
			t.Errorf("runway %d elongation = %v, want >= 8", r.ID, e)
		}
	}
	for _, r := range s.ByKind(Terminal) {
		if e := r.Poly.Elongation(); e > 6 {
			t.Errorf("terminal %d elongation = %v, want compact", r.ID, e)
		}
	}
}

func TestTaxiwaysTouchRunways(t *testing.T) {
	s := Generate(SF)
	runways := s.ByKind(Runway)
	touching := 0
	for _, tw := range s.ByKind(Taxiway) {
		for _, rw := range runways {
			if tw.Poly.Intersects(rw.Poly) || tw.Poly.Adjacent(rw.Poly, 50) {
				touching++
				break
			}
		}
	}
	if frac := float64(touching) / float64(len(s.ByKind(Taxiway))); frac < 0.7 {
		t.Errorf("only %.0f%% of taxiways touch a runway; the airport grammar is broken", frac*100)
	}
}

func TestApronsNearTerminals(t *testing.T) {
	s := Generate(DC)
	terms := s.ByKind(Terminal)
	for _, ap := range s.ByKind(Apron) {
		near := false
		for _, tm := range terms {
			if ap.Poly.Adjacent(tm.Poly, 250) {
				near = true
				break
			}
		}
		if !near {
			t.Errorf("apron %d is not near any terminal", ap.ID)
		}
	}
}

func TestIntensitySeparatesGrassFromRunway(t *testing.T) {
	s := Generate(MOFF)
	for _, g := range s.ByKind(Grass) {
		for _, rw := range s.ByKind(Runway) {
			if g.Intensity >= rw.Intensity {
				t.Fatalf("grass (%v) should be darker than runway (%v)", g.Intensity, rw.Intensity)
			}
		}
	}
}

func TestScale(t *testing.T) {
	small := DC
	big := small.Scale(3)
	sb := Generate(big)
	ss := Generate(small)
	if len(sb.Regions) < 2*len(ss.Regions) {
		t.Errorf("scaled scene should be much bigger: %d vs %d", len(sb.Regions), len(ss.Regions))
	}
	if big.W <= small.W {
		t.Error("scaled scene should be wider")
	}
	// Scale(1) is identity on counts.
	if Generate(small.Scale(1)).Regions[0].ID != ss.Regions[0].ID {
		t.Error("Scale(1) should be identity")
	}
}

func TestRegionLookup(t *testing.T) {
	s := Generate(DC)
	r := s.Regions[5]
	if s.Region(r.ID) != r {
		t.Error("Region lookup wrong")
	}
	if s.Region(-1) != nil {
		t.Error("missing region should be nil")
	}
}

func TestSuburbanScene(t *testing.T) {
	s := GenerateSuburban(SuburbanParams{Name: "sub", Seed: 7, Blocks: 4, HousesPerBlock: 5, Verts: 10})
	if s.Domain != Suburban {
		t.Error("domain should be suburban")
	}
	houses := s.ByKind(House)
	if len(houses) != 20 {
		t.Errorf("houses = %d, want 20", len(houses))
	}
	if len(s.ByKind(Street)) != 4 {
		t.Errorf("streets = %d, want 4", len(s.ByKind(Street)))
	}
	// Driveways connect houses toward streets: each driveway should be
	// adjacent to at least one house or street.
	streets := s.ByKind(Street)
	for _, d := range s.ByKind(Driveway) {
		ok := false
		for _, h := range houses {
			if d.Poly.Adjacent(h.Poly, 60) {
				ok = true
				break
			}
		}
		if !ok {
			for _, st := range streets {
				if d.Poly.Adjacent(st.Poly, 60) {
					ok = true
					break
				}
			}
		}
		if !ok {
			t.Errorf("driveway %d floats unconnected", d.ID)
		}
	}
	for _, r := range s.Regions {
		if !r.Poly.Valid() {
			t.Errorf("region %d invalid", r.ID)
		}
	}
}

func TestVertexBudgetAffectsComplexity(t *testing.T) {
	// DC is configured with more vertices per region than SF: its
	// geometry work per constraint check is higher.
	sf := Generate(SF)
	dc := Generate(DC)
	avg := func(s *Scene) float64 {
		var v int
		for _, r := range s.Regions {
			v += len(r.Poly)
		}
		return float64(v) / float64(len(s.Regions))
	}
	if avg(dc) <= avg(sf) {
		t.Errorf("DC polygons (%v verts avg) should be more complex than SF (%v)", avg(dc), avg(sf))
	}
}

func TestStatsString(t *testing.T) {
	s := Generate(DC)
	if got := s.Stats(); got == "" {
		t.Error("stats should be non-empty")
	}
}

func TestBBoxWithinScene(t *testing.T) {
	s := Generate(SF)
	outer := geom.Rect{Min: geom.Point{X: -s.W, Y: -s.H}, Max: geom.Point{X: 2 * s.W, Y: 2 * s.H}}
	for _, r := range s.Regions {
		bb := r.Poly.BBox()
		if !outer.Contains(bb.Min) || !outer.Contains(bb.Max) {
			t.Errorf("region %d wildly out of bounds: %+v", r.ID, bb)
		}
	}
}
