package scene

import (
	"strings"
	"testing"
)

func TestWriteSVG(t *testing.T) {
	s := Generate(DC)
	var b strings.Builder
	if err := s.WriteSVG(&b, map[int]string{1: "runway?", 2: `<&"label>`}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Error("not a complete SVG document")
	}
	if got := strings.Count(out, "<polygon"); got != len(s.Regions) {
		t.Errorf("polygons = %d, want %d", got, len(s.Regions))
	}
	for _, want := range []string{"runway", "grassy-area", "DC", "legend", "&lt;&amp;&quot;label&gt;"} {
		if want == "legend" {
			continue
		}
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Contains(out, `<&"label>`) {
		t.Error("labels must be XML-escaped")
	}
	// Every present class appears in the legend text.
	for k := range map[Kind]bool{Runway: true, Grass: true, Terminal: true} {
		if !strings.Contains(out, string(k)) {
			t.Errorf("legend missing %s", k)
		}
	}
}

func TestWriteSVGSuburban(t *testing.T) {
	s := GenerateSuburban(SuburbanParams{Name: "sub", Seed: 3, Blocks: 2, HousesPerBlock: 3, Verts: 8})
	var b strings.Builder
	if err := s.WriteSVG(&b, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "house") {
		t.Error("suburban SVG missing house polygons")
	}
}
