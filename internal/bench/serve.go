package bench

import (
	"encoding/json"
	"fmt"
	"sort"

	"spampsm/internal/stats"
)

// ServeBench is the BENCH_6.json document: the serving benchmark's
// throughput and latency percentiles under clean and fault-injected
// traffic, produced by cmd/spamload.
type ServeBench struct {
	Schema   string `json:"schema"` // "spampsm-serve-bench/v1"
	Issue    int    `json:"issue"`
	Date     string `json:"date"`
	Go       string `json:"go"`
	Server   string `json:"server"` // server configuration summary
	Workload string `json:"workload"`

	Scenarios []ServeScenario `json:"scenarios"`
}

// ServeScenario is one load-generation run against the server.
type ServeScenario struct {
	Name string `json:"name"`
	// Faults notes the injected chaos ("" = clean traffic).
	Faults string `json:"faults,omitempty"`

	Requests  int `json:"requests"`
	Succeeded int `json:"succeeded"` // 200s, including degraded-but-valid
	Degraded  int `json:"degraded"`  // 200s with partial completeness
	Shed      int `json:"shed"`      // 429/503 by admission control
	Failed    int `json:"failed"`    // transport errors and 5xx
	Cancelled int `json:"cancelled"` // aborted by the generator

	ElapsedSec float64 `json:"elapsedSec"`
	Throughput float64 `json:"throughputRps"` // succeeded / elapsed

	// ShippedBytes is the wire volume the server shipped to cluster
	// worker processes during this scenario (from /stats deltas; 0 for
	// in-process execution or servers without a cluster backend).
	ShippedBytes int64 `json:"shippedBytes,omitempty"`

	LatencyMs ServeLatency `json:"latencyMs"`
}

// ServeLatency is the scenario's latency distribution over succeeded
// requests, in milliseconds.
type ServeLatency struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// NewServeLatency summarizes a sample of per-request latencies
// (milliseconds; the slice is not modified).
func NewServeLatency(ms []float64) ServeLatency {
	if len(ms) == 0 {
		return ServeLatency{}
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	sum := stats.Summarize(sorted)
	return ServeLatency{
		P50:  stats.Percentile(sorted, 50),
		P95:  stats.Percentile(sorted, 95),
		P99:  stats.Percentile(sorted, 99),
		Mean: sum.Mean,
		Max:  sorted[len(sorted)-1],
	}
}

// Render writes the document as indented JSON.
func (sb *ServeBench) Render() ([]byte, error) {
	b, err := json.MarshalIndent(sb, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Check validates a ServeBench for the smoke gate: a well-formed
// schema, at least one clean and one faulted scenario, and every
// scenario with successes carrying a full latency distribution.
func (sb *ServeBench) Check() error {
	if err := sb.CheckScenarios(); err != nil {
		return err
	}
	var clean, faulted bool
	for _, sc := range sb.Scenarios {
		if sc.Faults == "" {
			clean = true
		} else {
			faulted = true
		}
	}
	if !clean {
		return fmt.Errorf("bench: no clean-traffic scenario")
	}
	if !faulted {
		return fmt.Errorf("bench: no fault-injected scenario")
	}
	return nil
}

// CheckScenarios validates the schema and each scenario's internal
// consistency without demanding the full clean+faulted smoke
// coverage. Partial runs (e.g. spamload -scenarios updates) gate on
// this instead of Check.
func (sb *ServeBench) CheckScenarios() error {
	if sb.Schema != "spampsm-serve-bench/v1" {
		return fmt.Errorf("bench: bad schema %q", sb.Schema)
	}
	if len(sb.Scenarios) == 0 {
		return fmt.Errorf("bench: document has no scenarios")
	}
	for _, sc := range sb.Scenarios {
		if sc.Requests == 0 {
			return fmt.Errorf("bench: scenario %q ran no requests", sc.Name)
		}
		if sc.Succeeded > 0 {
			if sc.LatencyMs.P50 <= 0 || sc.LatencyMs.P95 < sc.LatencyMs.P50 ||
				sc.LatencyMs.P99 < sc.LatencyMs.P95 {
				return fmt.Errorf("bench: scenario %q has malformed percentiles %+v",
					sc.Name, sc.LatencyMs)
			}
			if sc.Throughput <= 0 {
				return fmt.Errorf("bench: scenario %q succeeded but reports no throughput", sc.Name)
			}
		}
		if sc.Succeeded+sc.Shed+sc.Failed+sc.Cancelled != sc.Requests {
			return fmt.Errorf("bench: scenario %q outcomes do not sum to requests", sc.Name)
		}
	}
	return nil
}
