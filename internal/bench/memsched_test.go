package bench

import (
	"encoding/json"
	"testing"
)

// TestMemschedReport builds the full report at test scale, checks its
// invariants, and makes sure the BENCH_7.json document round-trips
// with every curve family present.
func TestMemschedReport(t *testing.T) {
	s := quickSuite()
	rep, err := s.Memsched()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back MemschedReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Check(); err != nil {
		t.Fatalf("after round-trip: %v", err)
	}
	seen := map[string]bool{}
	for _, c := range rep.Curves {
		seen[c.Dataset+"/"+c.Policy] = true
	}
	for _, ds := range Datasets {
		for _, pol := range []string{"fifo", "largest", "postorder"} {
			if !seen[ds+"/"+pol] {
				t.Errorf("no curves for %s under %s", ds, pol)
			}
		}
	}
	if rep.Stress.BoundedWaits == 0 {
		t.Error("stress scene never throttled: budget not binding")
	}
}
