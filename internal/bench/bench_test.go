package bench

import (
	"strings"
	"testing"

	"spampsm/internal/core"
	"spampsm/internal/spam"
)

// quickSuite returns a suite over reduced subsets for fast tests.
func quickSuite() *Suite {
	opt := DefaultOptions()
	opt.SubsetScale = 0.4
	opt.FullScale = 0.6
	return NewSuite(opt)
}

func TestNamesAndDispatch(t *testing.T) {
	s := quickSuite()
	names := Names()
	if len(names) != 10 {
		t.Errorf("names = %v", names)
	}
	if _, err := s.Run("table42"); err == nil {
		t.Error("unknown experiment must fail")
	}
}

func TestTable4Static(t *testing.T) {
	out := Table4()
	for _, want := range []string{"SPAM/PSM :: WME", "Soar :: None", "Implicit", "Explicit"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 4 missing %q", want)
		}
	}
}

func TestFig3Output(t *testing.T) {
	s := quickSuite()
	out, err := s.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rubik", "weaver", "tourney", "match procs"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig3 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable8AndFig6(t *testing.T) {
	s := quickSuite()
	out, err := s.Table8()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SF Level 3", "MOFF Level 2", "Prods fired"} {
		if !strings.Contains(out, want) {
			t.Errorf("table8 missing %q", want)
		}
	}
	out, err = s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Level 3") || !strings.Contains(out, "Level 2") {
		t.Errorf("fig6 missing levels:\n%s", out)
	}
}

func TestFig9Output(t *testing.T) {
	s := quickSuite()
	out, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"svm", "pure-tlp", "Translational effect", "false contention"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig9 missing %q", want)
		}
	}
}

func TestPaperExperimentsQuick(t *testing.T) {
	// Run the heavier paper experiments once at reduced scale and check
	// their structural content.
	opt := DefaultOptions()
	opt.SubsetScale = 0.25
	opt.FullScale = 0.35
	s := NewSuite(opt)

	out, err := s.Tables123()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"log #63", "log #405", "log #415", "Total CPU Time", "Effective Productions/Second"} {
		if !strings.Contains(out, want) {
			t.Errorf("tables123 missing %q", want)
		}
	}

	out, err = s.Tables567()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "Level 4") != 3 || strings.Count(out, "Level 1") != 3 {
		t.Errorf("tables567 should have all levels for all datasets:\n%s", out)
	}

	out, err = s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Asymptotic limits") || !strings.Contains(out, "peak") {
		t.Errorf("fig7 missing limits/peaks:\n%s", out)
	}

	out, err = s.Table9()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Task7") || !strings.Contains(out, "*") || !strings.Contains(out, "(") {
		t.Errorf("table9 missing grid structure:\n%s", out)
	}

	out, err = s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 8a") || !strings.Contains(out, "Figure 8b") {
		t.Errorf("fig8 missing panels:\n%s", out)
	}
}

func TestMeasurementCaching(t *testing.T) {
	s := quickSuite()
	m1, err := s.Measurement("DC", core.LCC, spam.Level3, false)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.Measurement("DC", core.LCC, spam.Level3, false)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("measurement should be cached")
	}
	m3, err := s.Measurement("DC", core.LCC, spam.Level2, false)
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m1 {
		t.Error("different level must be a different measurement")
	}
}

func TestSubsetScaleApplied(t *testing.T) {
	small := quickSuite()
	d1, err := small.Dataset("DC")
	if err != nil {
		t.Fatal(err)
	}
	full := NewSuite(DefaultOptions())
	d2, err := full.Dataset("DC")
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.Scene.Regions) >= len(d2.Scene.Regions) {
		t.Errorf("scaled subset (%d regions) should be smaller than full (%d)",
			len(d1.Scene.Regions), len(d2.Scene.Regions))
	}
}

func TestExtensionExperiments(t *testing.T) {
	s := quickSuite()
	for _, name := range ExtNames() {
		if name == "ext-cluster" {
			// Spawns real worker processes by re-exec'ing the binary,
			// which a test binary without cluster.MaybeWorker in its
			// TestMain cannot host, and costs minutes of wall clock.
			// The multi-process path is covered by internal/cluster's
			// differential and chaos tests, `make cluster-smoke`, and
			// `make bench-cluster`; the report validation by
			// TestClusterReportCheck.
			continue
		}
		out, err := s.Run(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out) < 200 || !strings.Contains(out, "\n") {
			t.Errorf("%s output looks empty:\n%s", name, out)
		}
	}
}

func TestExtSchedShowsGain(t *testing.T) {
	s := quickSuite()
	out, err := s.ExtSched()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Largest-first") {
		t.Errorf("missing LPT column:\n%s", out)
	}
}

func TestCSVFor(t *testing.T) {
	s := quickSuite()
	files, err := s.CSVFor("fig6")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("fig6 CSV files = %v", files)
	}
	for name, content := range files {
		if !strings.HasPrefix(content, "task_procs,SF,DC,MOFF") {
			t.Errorf("%s header wrong: %q", name, strings.SplitN(content, "\n", 2)[0])
		}
		if strings.Count(content, "\n") < 10 {
			t.Errorf("%s too short", name)
		}
	}
	// Table experiments yield no CSV.
	files, err = s.CSVFor("table8")
	if err != nil || len(files) != 0 {
		t.Errorf("table8 CSV = %v, %v", files, err)
	}
}

func TestDefaultsFilled(t *testing.T) {
	s := NewSuite(Options{})
	if s.Opt.MaxTaskProcs != 14 || s.Opt.MaxMatchProcs != 13 || s.Opt.FullScale != 3 {
		t.Errorf("defaults not applied: %+v", s.Opt)
	}
}
