// The incremental re-interpretation experiment: update cost vs churn
// fraction for the three datasets, against full re-interpretation of
// the same updated scene. Each dataset gets one long-lived
// interpretation session (internal/spam Session) that folds in churn
// deltas at 1%, 5% and 20% of the regions; every update's charged cost
// and wall clock are compared with a from-scratch interpretation, and
// the outputs are required to be identical (spam.SameOutputs). The
// document is emitted as BENCH_8.json by cmd/spambench -json; the
// byte-identity itself is enforced by the differential oracles in
// internal/spam and internal/serve (`make oracle`).
package bench

import (
	"context"
	"fmt"
	"time"

	"spampsm/internal/scene"
	"spampsm/internal/spam"
	"spampsm/internal/stats"
)

// IncrementalSchema versions the BENCH_8.json document.
const IncrementalSchema = "spampsm-incremental-bench/v1"

// incrementalFractions is the churn ladder, applied to each dataset's
// session in sequence (the session accumulates the churn, as a live
// monitoring deployment would).
var incrementalFractions = []float64{0.01, 0.05, 0.20}

// incrementalSeed derives each delta's churn seed deterministically so
// the document is reproducible.
const incrementalSeed = 1990

// incrementalWorkers is the fixed task-process count for both the
// session and its from-scratch reference — the session oracle's
// configuration. The experiment measures work avoided, not
// parallelism: a high worker count hides the full run's cost behind
// parallel task execution while the update's fixed per-run overhead
// (seed reassembly and signature diffing are proportional to scene
// size) parallelizes far less, which would bias the wall ratio
// against the update without changing either side's charged cost.
const incrementalWorkers = 4

// IncrementalBase is one dataset's initial (update-0) session run:
// everything fresh, the cost a full interpretation pays.
type IncrementalBase struct {
	Dataset string  `json:"dataset"`
	Regions int     `json:"regions"`
	Tasks   int     `json:"tasks"`
	Instr   float64 `json:"instr"`
	WallMs  float64 `json:"wallMs"`
}

// IncrementalPoint is one churn update against its from-scratch
// reference. Instr figures are charged simulated cost (the machine
// model's currency); wall figures are real elapsed time on the host.
type IncrementalPoint struct {
	Dataset   string  `json:"dataset"`
	Update    int     `json:"update"`   // 1-based delta index in the session
	Fraction  float64 `json:"fraction"` // requested churn fraction
	DeltaSize int     `json:"deltaSize"`

	Tasks   int `json:"tasks"`
	Reused  int `json:"reused"`
	Rerun   int `json:"rerun"`
	Fresh   int `json:"fresh"`
	Dropped int `json:"dropped"`

	SeedsDiffed   int     `json:"seedsDiffed"`
	DiffInstr     float64 `json:"diffInstr"`
	RetractedWMEs int     `json:"retractedWMEs"`

	UpdateInstr  float64 `json:"updateInstr"` // charged cost of the incremental update
	FullInstr    float64 `json:"fullInstr"`   // charged cost of from-scratch on the same scene
	ChargedRatio float64 `json:"chargedRatio"`

	UpdateWallMs float64 `json:"updateWallMs"`
	FullWallMs   float64 `json:"fullWallMs"`
	WallRatio    float64 `json:"wallRatio"`

	// Identical is spam.SameOutputs of the incremental and from-scratch
	// interpretations — the experiment's correctness column.
	Identical bool `json:"identical"`
}

// IncrementalReport is the BENCH_8.json document.
type IncrementalReport struct {
	Schema  string  `json:"schema"`
	Scale   float64 `json:"scale"` // subset scale (1 = calibrated paper scale)
	Workers int     `json:"workers"`
	Seed    uint64  `json:"seed"`

	Initial []IncrementalBase  `json:"initial"`
	Points  []IncrementalPoint `json:"points"`
}

// incrementalReps is how many times each dataset's session ladder is
// run for wall-clock purposes. Charged costs and outputs are
// deterministic across repetitions; wall times are not — an update is
// tens of milliseconds, where one GC pause doubles the sample — so
// each point keeps the minimum observed wall (interference only ever
// adds time; min-of-N is the closest observable to the true cost, as
// in cmd/benchjson).
const incrementalReps = 3

// incrementalLadder runs one dataset's full session ladder once:
// initial interpretation, then the churn fractions in sequence, each
// raced against a from-scratch interpretation of the updated scene.
func (s *Suite) incrementalLadder(name string, opt spam.InterpretOptions) (IncrementalBase, []IncrementalPoint, error) {
	ctx := context.Background()
	d, err := s.Dataset(name)
	if err != nil {
		return IncrementalBase{}, nil, err
	}
	sess := spam.NewSession(d, opt)
	_, rep0, err := sess.Interpret(ctx)
	if err != nil {
		return IncrementalBase{}, nil, fmt.Errorf("bench: incremental %s initial: %w", name, err)
	}
	base := IncrementalBase{
		Dataset: name,
		Regions: len(sess.Scene().Regions),
		Tasks:   rep0.Tasks,
		Instr:   rep0.UpdateInstr,
		WallMs:  float64(rep0.Wall) / float64(time.Millisecond),
	}
	var points []IncrementalPoint
	for i, frac := range incrementalFractions {
		delta := sess.Scene().Churn(scene.DefaultChurn(incrementalSeed+uint64(i), frac))
		in, ur, err := sess.Update(ctx, delta)
		if err != nil {
			return base, nil, fmt.Errorf("bench: incremental %s churn %.2f: %w", name, frac, err)
		}
		// From-scratch reference on the updated scene: fresh dataset
		// (shared KB and compiled programs), classic interpretation.
		ref := spam.NewDatasetWith(sess.Scene().Clone(), d.KB, d.Progs)
		t0 := time.Now()
		full, err := ref.Interpret(opt)
		fullWall := time.Since(t0)
		if err != nil {
			return base, nil, fmt.Errorf("bench: incremental %s scratch %.2f: %w", name, frac, err)
		}
		pt := IncrementalPoint{
			Dataset:       name,
			Update:        ur.Update,
			Fraction:      frac,
			DeltaSize:     ur.DeltaSize,
			Tasks:         ur.Tasks,
			Reused:        ur.Reused,
			Rerun:         ur.Rerun,
			Fresh:         ur.Fresh,
			Dropped:       ur.Dropped,
			SeedsDiffed:   ur.SeedsDiffed,
			DiffInstr:     ur.DiffInstr,
			RetractedWMEs: ur.RetractedWMEs,
			UpdateInstr:   ur.UpdateInstr,
			FullInstr:     full.TotalInstr(),
			UpdateWallMs:  float64(ur.Wall) / float64(time.Millisecond),
			FullWallMs:    float64(fullWall) / float64(time.Millisecond),
			Identical:     spam.SameOutputs(in, full),
		}
		points = append(points, pt)
	}
	return base, points, nil
}

// Incremental runs the experiment: per dataset, one session's initial
// interpretation followed by the churn ladder, each update raced
// against a from-scratch interpretation of the updated scene;
// repeated incrementalReps times with min-of-N wall clocks. The report
// is cached on the suite so text rendering and -json emission share
// one run.
func (s *Suite) Incremental() (*IncrementalReport, error) {
	if s.incr != nil {
		return s.incr, nil
	}
	scale := s.Opt.SubsetScale
	if scale == 0 {
		scale = 1
	}
	opt := spam.InterpretOptions{Workers: incrementalWorkers, Sched: s.Opt.Sched}
	rep := &IncrementalReport{
		Schema:  IncrementalSchema,
		Scale:   scale,
		Workers: opt.Workers,
		Seed:    incrementalSeed,
	}
	for _, name := range Datasets {
		var base IncrementalBase
		var points []IncrementalPoint
		for r := 0; r < incrementalReps; r++ {
			b, pts, err := s.incrementalLadder(name, opt)
			if err != nil {
				return nil, err
			}
			if r == 0 {
				base, points = b, pts
				continue
			}
			// Charged figures and outputs are deterministic; keep the
			// first repetition and fold in only the faster wall samples.
			if b.WallMs < base.WallMs {
				base.WallMs = b.WallMs
			}
			for i := range points {
				if pts[i].UpdateWallMs < points[i].UpdateWallMs {
					points[i].UpdateWallMs = pts[i].UpdateWallMs
				}
				if pts[i].FullWallMs < points[i].FullWallMs {
					points[i].FullWallMs = pts[i].FullWallMs
				}
			}
		}
		for i := range points {
			if points[i].FullInstr > 0 {
				points[i].ChargedRatio = points[i].UpdateInstr / points[i].FullInstr
			}
			if points[i].FullWallMs > 0 {
				points[i].WallRatio = points[i].UpdateWallMs / points[i].FullWallMs
			}
		}
		rep.Initial = append(rep.Initial, base)
		rep.Points = append(rep.Points, points...)
	}
	s.incr = rep
	return rep, nil
}

// Check validates the report's invariants: the full churn ladder on
// every dataset, every update's outputs identical to from-scratch,
// genuine reuse and genuine re-running at every point, and the diff
// charge honestly included. At the calibrated scale (>= 1) it also
// enforces the headline proportionality bound — a 1% churn update on
// DC under 15% of the full re-interpretation's charged cost. The bound
// is scale-conditional because small subset scenes have pathological
// locality: constraint radii are absolute while Scale shrinks the
// scene extent, so at small scales one moved region genuinely partners
// with much of the scene and the re-runs are semantically required.
func (r *IncrementalReport) Check() error {
	if r.Schema != IncrementalSchema {
		return fmt.Errorf("incremental: schema %q, want %q", r.Schema, IncrementalSchema)
	}
	base := map[string]IncrementalBase{}
	for _, b := range r.Initial {
		if b.Tasks == 0 || b.Instr <= 0 {
			return fmt.Errorf("incremental: %s initial run is vacuous: %+v", b.Dataset, b)
		}
		base[b.Dataset] = b
	}
	points := map[string][]IncrementalPoint{}
	for _, p := range r.Points {
		points[p.Dataset] = append(points[p.Dataset], p)
	}
	for _, ds := range Datasets {
		if _, ok := base[ds]; !ok {
			return fmt.Errorf("incremental: dataset %s has no initial run", ds)
		}
		pts := points[ds]
		if len(pts) != len(incrementalFractions) {
			return fmt.Errorf("incremental: dataset %s has %d points, want %d",
				ds, len(pts), len(incrementalFractions))
		}
		for i, p := range pts {
			if p.Fraction != incrementalFractions[i] {
				return fmt.Errorf("incremental: %s point %d churn %g, want %g",
					ds, i, p.Fraction, incrementalFractions[i])
			}
			if !p.Identical {
				return fmt.Errorf("incremental: %s churn %g outputs differ from from-scratch",
					ds, p.Fraction)
			}
			if p.DeltaSize == 0 {
				return fmt.Errorf("incremental: %s churn %g produced an empty delta", ds, p.Fraction)
			}
			// Reuse is only guaranteed at low churn: a removal shifts every
			// later RTF position batch (the identical-decomposition
			// contract), and at 20% churn the confidence cascade can touch
			// every downstream task.
			if p.Reused == 0 && p.Fraction < 0.1 {
				return fmt.Errorf("incremental: %s churn %g reused nothing: %+v", ds, p.Fraction, p)
			}
			if p.Rerun+p.Fresh == 0 {
				return fmt.Errorf("incremental: %s churn %g re-ran nothing: %+v", ds, p.Fraction, p)
			}
			if p.DiffInstr <= 0 || p.UpdateInstr < p.DiffInstr {
				return fmt.Errorf("incremental: %s churn %g diff charge unaccounted: %+v", ds, p.Fraction, p)
			}
			// No universal upper bound on the ratio: at high churn the
			// retract+reload charge on warm engines plus the diff scan can
			// (honestly) exceed a from-scratch batch load, especially on
			// small subset scenes. The proportionality claim lives in the
			// calibrated-scale low-churn gate below.
			if p.ChargedRatio <= 0 {
				return fmt.Errorf("incremental: %s churn %g charged ratio %g not positive",
					ds, p.Fraction, p.ChargedRatio)
			}
		}
	}
	if r.Scale >= 1 {
		for _, p := range points["DC"] {
			if p.Fraction == 0.01 {
				if p.ChargedRatio >= 0.15 {
					return fmt.Errorf("incremental: DC 1%% churn charged %.1f%% of full re-interpretation, want < 15%%",
						100*p.ChargedRatio)
				}
				if p.WallRatio >= 0.15 {
					return fmt.Errorf("incremental: DC 1%% churn took %.1f%% of full re-interpretation wall clock, want < 15%%",
						100*p.WallRatio)
				}
			}
		}
	}
	return nil
}

// ExtIncremental renders the experiment as text: one table per
// dataset. The full document ships in BENCH_8.json (spambench -json).
func (s *Suite) ExtIncremental() (string, error) {
	rep, err := s.Incremental()
	if err != nil {
		return "", err
	}
	if err := rep.Check(); err != nil {
		return "", err
	}
	base := map[string]IncrementalBase{}
	for _, b := range rep.Initial {
		base[b.Dataset] = b
	}
	var out string
	for _, ds := range Datasets {
		b := base[ds]
		tb := stats.Table{
			Title: fmt.Sprintf("Extension: incremental update cost vs churn, %s (%d regions, %d tasks, initial %s sec)",
				ds, b.Regions, b.Tasks, stats.FormatFloat(b.WallMs/1000)),
			Headers: []string{"Churn", "Δregions", "Reused", "Rerun", "Fresh", "Dropped",
				"Charged %", "Wall %", "Identical"},
		}
		for _, p := range rep.Points {
			if p.Dataset != ds {
				continue
			}
			tb.AddRow(fmt.Sprintf("%.0f%%", 100*p.Fraction), p.DeltaSize,
				p.Reused, p.Rerun, p.Fresh, p.Dropped,
				100*p.ChargedRatio, 100*p.WallRatio, p.Identical)
		}
		out += tb.String() + "\n"
	}
	out += fmt.Sprintf("Every update's outputs are byte-identical to from-scratch interpretation "+
		"(spam.SameOutputs over %d updates; the differential oracles enforce the same bar under -race).\n",
		len(rep.Points))
	return out, nil
}
