// The cluster scale-out benchmark: real wall-clock interpretation
// across worker processes over the message-passing runtime
// (internal/cluster), emitted as BENCH_9.json by cmd/spambench -json.
// Each point runs a full interpretation with the task queue sharded
// over N processes and records what actually crossed the wire; the
// simulated columns place the same task population on the Section 9
// projection machines (shared virtual memory, message-passing
// multicomputer) for comparison. A recovery run SIGKILLs workers
// mid-interpretation and demonstrates exactly-once result delivery.
//
// Wall-clock figures are machine- and load-dependent, so Check gates
// only on structure and on the accounting invariants (everything
// shipped, exactly-once under crashes), never on observed speedups.
package bench

import (
	"context"
	"fmt"
	"time"

	"spampsm/internal/cluster"
	"spampsm/internal/core"
	"spampsm/internal/faults"
	"spampsm/internal/machine"
	"spampsm/internal/msgpass"
	"spampsm/internal/scene"
	"spampsm/internal/spam"
	"spampsm/internal/stats"
	"spampsm/internal/svm"
	"spampsm/internal/tlp"
)

// ClusterSchema versions the BENCH_9.json document.
const ClusterSchema = "spampsm-cluster-bench/v1"

// clusterProcs is the worker-process axis: every dataset interpreted
// at each of these process counts.
var clusterProcs = []int{1, 2, 4}

// clusterLocalWorkers is each worker process's local pool size.
const clusterLocalWorkers = 2

// ClusterPoint is one (dataset, worker processes) interpretation run.
type ClusterPoint struct {
	Dataset      string  `json:"dataset"`
	Procs        int     `json:"procs"`        // worker processes
	LocalWorkers int     `json:"localWorkers"` // task processes per worker
	WallMS       float64 `json:"wallMs"`
	Speedup      float64 `json:"speedup"` // vs this dataset's 1-process point

	Tasks        int     `json:"tasks"`        // tasks across all phases
	TasksShipped int     `json:"tasksShipped"` // task frames sent (incl. re-ships)
	ShippedBytes int64   `json:"shippedBytes"` // task + result frames on the wire
	ShipShare    float64 `json:"shipShare"`    // wire bytes per modeled seed WM byte
	Steals       int     `json:"steals"`

	// Simulated counterparts on the Section 9 projection machines,
	// same processor placement: speedup over one uniprocessor.
	SVMSpeedup     float64 `json:"svmSpeedup"`
	MsgpassSpeedup float64 `json:"msgpassSpeedup"`
}

// ClusterRecovery is the crash-recovery demonstration: deterministic
// process-level chaos SIGKILLs workers mid-run; the coordinator
// requeues, respawns, and still merges exactly one result per task.
type ClusterRecovery struct {
	Dataset      string  `json:"dataset"`
	Procs        int     `json:"procs"`
	CrashSeed    int64   `json:"crashSeed"`
	CrashRate    float64 `json:"crashRate"`
	Tasks        int     `json:"tasks"`
	Completed    int     `json:"completed"` // results merged by the coordinator
	WorkerDeaths int     `json:"workerDeaths"`
	Respawns     int     `json:"respawns"`
	Requeued     int     `json:"requeued"`
	ExactlyOnce  bool    `json:"exactlyOnce"` // one non-nil result per task, no duplicates
}

// ClusterReport is the BENCH_9.json document.
type ClusterReport struct {
	Schema       string          `json:"schema"`
	LocalWorkers int             `json:"localWorkers"`
	Points       []ClusterPoint  `json:"points"`
	Recovery     ClusterRecovery `json:"recovery"`
}

// clusterParams returns the generator parameters for one dataset at
// the suite's subset scale — the same parameters the local Suite
// dataset was built from, so coordinator and workers agree bytewise.
func (s *Suite) clusterParams(name string) (scene.Params, error) {
	base := map[string]scene.Params{"SF": scene.SF, "DC": scene.DC, "MOFF": scene.MOFF}
	p, ok := base[name]
	if !ok {
		return scene.Params{}, fmt.Errorf("bench: unknown dataset %q", name)
	}
	if s.Opt.SubsetScale != 0 && s.Opt.SubsetScale != 1 {
		p = p.Scale(s.Opt.SubsetScale)
		p.Name = name
	}
	return p, nil
}

// clusterStressParams is the scale demonstration scene: SF at 10x the
// suite's subset scale, the memsched stress convention.
func (s *Suite) clusterStressParams() scene.Params {
	factor := 10.0
	if s.Opt.SubsetScale != 0 {
		factor *= s.Opt.SubsetScale
	}
	p := scene.SF.Scale(factor)
	p.Name = "SF-x10"
	return p
}

// clusterRun interprets one dataset over a fresh procs-process
// cluster and returns the wall time and the coordinator's wire
// accounting for the timed run (warmup excluded).
func clusterRun(d *spam.Dataset, params scene.Params, procs int) (*spam.Interpretation, float64, cluster.Stats, error) {
	co, err := cluster.Start(cluster.Config{Workers: procs, LocalWorkers: clusterLocalWorkers})
	if err != nil {
		return nil, 0, cluster.Stats{}, err
	}
	defer co.Close()
	if err := co.RegisterDataset(cluster.AirportSpec(params)); err != nil {
		return nil, 0, cluster.Stats{}, err
	}

	opt := spam.InterpretOptions{Workers: clusterLocalWorkers, ReEntry: true}
	opt.Runner = cluster.NewRunner(co, opt)

	// Warmup: push the RTF queue through once so every worker has
	// regenerated the dataset (workers build it inline in their frame
	// loop) before the clock starts.
	warm := spam.BuildRTFTasks(d.KB, d.Store, d.Progs.RTF, 3, false)
	if _, err := co.RunTasks(context.Background(), tlp.FIFO, cluster.RunConfig{}, warm); err != nil {
		return nil, 0, cluster.Stats{}, err
	}
	before := co.Stats()

	start := time.Now()
	in, err := d.Interpret(opt)
	wallMS := float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		return nil, 0, cluster.Stats{}, err
	}
	after := co.Stats()
	return in, wallMS, cluster.Stats{
		Workers:      after.Workers,
		TasksShipped: after.TasksShipped - before.TasksShipped,
		ShippedBytes: after.ShippedBytes - before.ShippedBytes,
		Steals:       after.Steals - before.Steals,
		Requeued:     after.Requeued - before.Requeued,
	}, nil
}

// clusterRecovery runs DC under deterministic process chaos: workers
// SIGKILL themselves on fated (task, attempt) draws, the coordinator
// requeues the dead process's in-flight tasks and respawns within the
// budget, and the merged result set is still exactly-once.
func (s *Suite) clusterRecovery() (ClusterRecovery, error) {
	const (
		procs     = 2
		crashSeed = 7
		crashRate = 0.05
	)
	d, err := s.Dataset("DC")
	if err != nil {
		return ClusterRecovery{}, err
	}
	params, err := s.clusterParams("DC")
	if err != nil {
		return ClusterRecovery{}, err
	}
	co, err := cluster.Start(cluster.Config{
		Workers:      procs,
		LocalWorkers: 1,
		ShipWindow:   1, // minimal pipelining: fewer in-flight casualties per death
		MaxRespawns:  8,
		ProcFaults:   faults.Config{Seed: crashSeed, CrashRate: crashRate},
	})
	if err != nil {
		return ClusterRecovery{}, err
	}
	defer co.Close()
	if err := co.RegisterDataset(cluster.AirportSpec(params)); err != nil {
		return ClusterRecovery{}, err
	}

	opt := spam.InterpretOptions{Workers: procs, MaxRetries: 2}
	opt.Runner = cluster.NewRunner(co, opt)
	in, err := d.Interpret(opt)
	if err != nil {
		return ClusterRecovery{}, err
	}

	seen := map[string]bool{}
	exactly := true
	for _, ph := range in.Phases {
		for _, r := range ph.Results {
			if r == nil || seen[r.TaskID] {
				exactly = false
				continue
			}
			seen[r.TaskID] = true
		}
	}
	if len(seen) != in.Completeness.Tasks {
		exactly = false
	}
	st := co.Stats()
	return ClusterRecovery{
		Dataset:      "DC",
		Procs:        procs,
		CrashSeed:    crashSeed,
		CrashRate:    crashRate,
		Tasks:        in.Completeness.Tasks,
		Completed:    st.TasksCompleted,
		WorkerDeaths: st.WorkerDeaths,
		Respawns:     st.Respawns,
		Requeued:     st.Requeued,
		ExactlyOnce:  exactly,
	}, nil
}

// Cluster runs the full experiment: the three datasets plus the
// 10x-scale stress scene at each worker-process count, then the
// crash-recovery run. Expensive (every point is a real multi-process
// interpretation), so the report is built once per suite.
func (s *Suite) Cluster() (*ClusterReport, error) {
	if s.clus != nil {
		return s.clus, nil
	}
	rep := &ClusterReport{Schema: ClusterSchema, LocalWorkers: clusterLocalWorkers}

	type target struct {
		name   string
		d      *spam.Dataset
		params scene.Params
		m      *core.Measurement
	}
	var targets []target
	for _, ds := range Datasets {
		d, err := s.Dataset(ds)
		if err != nil {
			return nil, err
		}
		params, err := s.clusterParams(ds)
		if err != nil {
			return nil, err
		}
		m, err := s.Measurement(ds, core.LCC, spam.Level3, false)
		if err != nil {
			return nil, err
		}
		targets = append(targets, target{ds, d, params, m})
	}
	stressParams := s.clusterStressParams()
	stressD, err := spam.NewDataset(stressParams)
	if err != nil {
		return nil, err
	}
	stressM, err := core.NewSystem(stressD, core.LCC, spam.Level3).Measure(false)
	if err != nil {
		return nil, err
	}
	targets = append(targets, target{stressParams.Name, stressD, stressParams, stressM})

	for _, tg := range targets {
		durs := machine.Durations(tg.m.Exp.Tasks, 0, tg.m.Exp.Model)
		ov := tg.m.Exp.Overheads
		var base float64
		for _, procs := range clusterProcs {
			in, wallMS, st, err := clusterRun(tg.d, tg.params, procs)
			if err != nil {
				return nil, fmt.Errorf("bench: cluster %s procs=%d: %w", tg.name, procs, err)
			}
			if procs == clusterProcs[0] {
				base = wallMS
			}
			var seedBytes float64
			tasks := 0
			for _, ph := range in.Phases {
				seedBytes += ph.SeedBytes
				tasks += ph.Tasks
			}
			pt := ClusterPoint{
				Dataset:      tg.name,
				Procs:        procs,
				LocalWorkers: clusterLocalWorkers,
				WallMS:       wallMS,
				Tasks:        tasks,
				TasksShipped: st.TasksShipped,
				ShippedBytes: st.ShippedBytes,
				Steals:       st.Steals,
				SVMSpeedup: svm.Speedup(durs, svm.Cluster{
					Node0Procs:  clusterLocalWorkers,
					RemoteProcs: (procs - 1) * clusterLocalWorkers,
				}, svm.DefaultConfig(), ov),
				MsgpassSpeedup: msgpass.Speedup(durs, msgpass.DefaultConfig(procs*clusterLocalWorkers), msgpass.Dynamic),
			}
			if wallMS > 0 && base > 0 {
				pt.Speedup = base / wallMS
			}
			if seedBytes > 0 {
				pt.ShipShare = float64(st.ShippedBytes) / seedBytes
			}
			rep.Points = append(rep.Points, pt)
		}
	}

	rec, err := s.clusterRecovery()
	if err != nil {
		return nil, fmt.Errorf("bench: cluster recovery: %w", err)
	}
	rep.Recovery = rec
	s.clus = rep
	return rep, nil
}

// Check validates the report's structure and accounting invariants:
// full (dataset x procs) coverage, every point a real run with its
// whole task population shipped over the wire, and the recovery run
// demonstrating exactly-once delivery through at least one worker
// death. Observed wall-clock speedups are recorded, not gated — they
// depend on the host.
func (r *ClusterReport) Check() error {
	if r.Schema != ClusterSchema {
		return fmt.Errorf("cluster: schema %q, want %q", r.Schema, ClusterSchema)
	}
	want := map[string]map[int]bool{}
	for _, ds := range append(append([]string{}, Datasets...), "SF-x10") {
		want[ds] = map[int]bool{}
		for _, p := range clusterProcs {
			want[ds][p] = true
		}
	}
	for _, pt := range r.Points {
		if want[pt.Dataset] == nil || !want[pt.Dataset][pt.Procs] {
			return fmt.Errorf("cluster: unexpected point %s/procs=%d", pt.Dataset, pt.Procs)
		}
		delete(want[pt.Dataset], pt.Procs)
		if pt.WallMS <= 0 || pt.Tasks <= 0 {
			return fmt.Errorf("cluster: point %s/procs=%d is not a real run (wall=%g tasks=%d)",
				pt.Dataset, pt.Procs, pt.WallMS, pt.Tasks)
		}
		if pt.TasksShipped < pt.Tasks || pt.ShippedBytes <= 0 {
			return fmt.Errorf("cluster: point %s/procs=%d shipped %d tasks / %d bytes, want >= %d tasks",
				pt.Dataset, pt.Procs, pt.TasksShipped, pt.ShippedBytes, pt.Tasks)
		}
		if pt.Procs == clusterProcs[0] && pt.Speedup != 1 {
			return fmt.Errorf("cluster: point %s base speedup %g, want 1", pt.Dataset, pt.Speedup)
		}
	}
	for ds, procs := range want {
		if len(procs) > 0 {
			return fmt.Errorf("cluster: dataset %s missing %d points", ds, len(procs))
		}
	}
	rec := r.Recovery
	if rec.WorkerDeaths < 1 {
		return fmt.Errorf("cluster: recovery saw no worker deaths")
	}
	if !rec.ExactlyOnce || rec.Tasks <= 0 {
		return fmt.Errorf("cluster: recovery not exactly-once (%d tasks)", rec.Tasks)
	}
	if rec.Requeued < 1 || rec.Completed < rec.Tasks {
		return fmt.Errorf("cluster: recovery requeued=%d completed=%d tasks=%d",
			rec.Requeued, rec.Completed, rec.Tasks)
	}
	return nil
}

// ExtCluster renders the experiment as text: one table over the
// (dataset, procs) grid, then the recovery summary. The full document
// ships in BENCH_9.json (spambench -json).
func (s *Suite) ExtCluster() (string, error) {
	rep, err := s.Cluster()
	if err != nil {
		return "", err
	}
	if err := rep.Check(); err != nil {
		return "", err
	}
	tb := stats.Table{
		Title: fmt.Sprintf("Extension: multi-process cluster interpretation (%d local workers per process)",
			rep.LocalWorkers),
		Headers: []string{"Dataset", "Procs", "Wall (ms)", "Speedup", "Tasks", "Shipped",
			"Wire bytes", "Steals", "SVM (sim)", "Msgpass (sim)"},
	}
	for _, pt := range rep.Points {
		tb.AddRow(pt.Dataset, pt.Procs, pt.WallMS, pt.Speedup, pt.Tasks, pt.TasksShipped,
			stats.FormatBytes(float64(pt.ShippedBytes)), pt.Steals, pt.SVMSpeedup, pt.MsgpassSpeedup)
	}
	rec := rep.Recovery
	out := tb.String() + "\n"
	out += fmt.Sprintf("Recovery: %s over %d procs, crash seed %d rate %g — %d worker deaths, "+
		"%d respawns, %d tasks requeued; %d tasks merged exactly-once\n",
		rec.Dataset, rec.Procs, rec.CrashSeed, rec.CrashRate, rec.WorkerDeaths,
		rec.Respawns, rec.Requeued, rec.Tasks)
	return out, nil
}
