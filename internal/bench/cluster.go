// The cluster scale-out benchmark: real wall-clock interpretation
// across worker processes over the message-passing runtime
// (internal/cluster), emitted as BENCH_10.json by cmd/spambench -json.
// Each point runs a full interpretation with the task queue sharded
// over N processes and records what actually crossed the wire — task,
// chunk and result frames under the content-addressed wire v2, plus
// the counterfactual cost the same task frames would have had under
// wire v1 (every seed inline) — and how many LCC re-entry tasks
// continued worker-side without a coordinator round-trip. The
// simulated columns place the same task population on the Section 9
// projection machines (shared virtual memory, message-passing
// multicomputer) for comparison. A recovery run SIGKILLs workers
// mid-interpretation, with re-entry enabled so spawned continuations
// are among the casualties, and demonstrates exactly-once result
// delivery.
//
// Wall-clock figures are machine- and load-dependent, so Check gates
// only on structure and on the accounting invariants (everything
// shipped, the wire-locality budget, exactly-once under crashes),
// never on observed speedups.
package bench

import (
	"context"
	"fmt"
	"time"

	"spampsm/internal/cluster"
	"spampsm/internal/core"
	"spampsm/internal/faults"
	"spampsm/internal/machine"
	"spampsm/internal/msgpass"
	"spampsm/internal/scene"
	"spampsm/internal/spam"
	"spampsm/internal/stats"
	"spampsm/internal/svm"
	"spampsm/internal/tlp"
)

// ClusterSchema versions the BENCH_10.json document. v2 added the
// wire-locality columns (chunk shipping, resident hits, the v1
// counterfactual) and the continuation accounting.
const ClusterSchema = "spampsm-cluster-bench/v2"

// clusterV1ShipShare pins what the v1 wire measured on the base
// datasets (BENCH_9.json shipShare, procs-independent: every seed
// shipped inline, deterministically). The Check gate demands the
// content-addressed wire hold at least a 3x reduction against these.
// The stress scene is deliberately absent — its seed population (and
// thus its share) moves with the stress factor, so it is recorded but
// not budgeted.
var clusterV1ShipShare = map[string]float64{"SF": 0.496, "DC": 0.513, "MOFF": 0.497}

// clusterProcs is the worker-process axis: every dataset interpreted
// at each of these process counts.
var clusterProcs = []int{1, 2, 4}

// clusterLocalWorkers is each worker process's local pool size.
const clusterLocalWorkers = 2

// ClusterPoint is one (dataset, worker processes) interpretation run.
type ClusterPoint struct {
	Dataset      string  `json:"dataset"`
	Procs        int     `json:"procs"`        // worker processes
	LocalWorkers int     `json:"localWorkers"` // task processes per worker
	WallMS       float64 `json:"wallMs"`
	Speedup      float64 `json:"speedup"` // vs this dataset's 1-process point

	Tasks        int     `json:"tasks"`        // tasks across all phases
	TasksShipped int     `json:"tasksShipped"` // task frames sent (incl. re-ships)
	ShippedBytes int64   `json:"shippedBytes"` // task + chunk + result frames on the wire
	ResultBytes  int64   `json:"resultBytes"`  // result-frame share of ShippedBytes
	ShipShare    float64 `json:"shipShare"`    // wire bytes per modeled seed WM byte
	Steals       int     `json:"steals"`

	// Wire-locality accounting (zero on v1 runs). V1TaskBytes is the
	// counterfactual: what the same task frames would have cost under
	// wire v1 with every seed inline — an understatement of the full
	// v1 wire (v1 result frames are also larger), so the reduction it
	// implies is conservative.
	WireVersion     int   `json:"wireVersion"`
	ChunksShipped   int   `json:"chunksShipped"`
	ChunkHits       int64 `json:"chunkHits"`       // seed refs resolved against resident chunks
	ChunkSavedBytes int64 `json:"chunkSavedBytes"` // encoded seed bytes the hits avoided re-shipping
	V1TaskBytes     int64 `json:"v1TaskBytes"`

	// Continuation accounting: how many re-entry tasks there were and
	// how many continued worker-side without a coordinator round-trip.
	ContinuationTasks int `json:"continuationTasks"`
	Continuations     int `json:"continuations"`

	// Simulated counterparts on the Section 9 projection machines,
	// same processor placement: speedup over one uniprocessor.
	SVMSpeedup     float64 `json:"svmSpeedup"`
	MsgpassSpeedup float64 `json:"msgpassSpeedup"`
}

// ClusterRecovery is the crash-recovery demonstration: deterministic
// process-level chaos SIGKILLs workers mid-run; the coordinator
// requeues, respawns, and still merges exactly one result per task.
type ClusterRecovery struct {
	Dataset      string  `json:"dataset"`
	Procs        int     `json:"procs"`
	CrashSeed    int64   `json:"crashSeed"`
	CrashRate    float64 `json:"crashRate"`
	Tasks        int     `json:"tasks"`
	Completed    int     `json:"completed"` // results merged by the coordinator
	WorkerDeaths int     `json:"workerDeaths"`
	Respawns     int     `json:"respawns"`
	Requeued     int     `json:"requeued"`
	// The run interprets with re-entry enabled so worker-side spawned
	// continuations are exposed to the crash chaos too; requeues of
	// spawned tasks are counted separately.
	ContinuationTasks int  `json:"continuationTasks"`
	Continuations     int  `json:"continuations"`
	SpawnedRequeued   int  `json:"spawnedRequeued"`
	ExactlyOnce       bool `json:"exactlyOnce"` // one non-nil result per task, no duplicates
}

// ClusterReport is the BENCH_10.json document.
type ClusterReport struct {
	Schema       string          `json:"schema"`
	LocalWorkers int             `json:"localWorkers"`
	Points       []ClusterPoint  `json:"points"`
	Recovery     ClusterRecovery `json:"recovery"`
}

// clusterParams returns the generator parameters for one dataset at
// the suite's subset scale — the same parameters the local Suite
// dataset was built from, so coordinator and workers agree bytewise.
func (s *Suite) clusterParams(name string) (scene.Params, error) {
	base := map[string]scene.Params{"SF": scene.SF, "DC": scene.DC, "MOFF": scene.MOFF}
	p, ok := base[name]
	if !ok {
		return scene.Params{}, fmt.Errorf("bench: unknown dataset %q", name)
	}
	if s.Opt.SubsetScale != 0 && s.Opt.SubsetScale != 1 {
		p = p.Scale(s.Opt.SubsetScale)
		p.Name = name
	}
	return p, nil
}

// clusterStressParams is the scale demonstration scene: SF at 10x the
// suite's subset scale, the memsched stress convention.
func (s *Suite) clusterStressParams() scene.Params {
	factor := 10.0
	if s.Opt.SubsetScale != 0 {
		factor *= s.Opt.SubsetScale
	}
	p := scene.SF.Scale(factor)
	p.Name = "SF-x10"
	return p
}

// clusterRun interprets one dataset over a fresh procs-process
// cluster and returns the wall time and the coordinator's wire
// accounting for the timed run (warmup excluded).
func clusterRun(d *spam.Dataset, params scene.Params, procs int) (*spam.Interpretation, float64, cluster.Stats, error) {
	co, err := cluster.Start(cluster.Config{Workers: procs, LocalWorkers: clusterLocalWorkers})
	if err != nil {
		return nil, 0, cluster.Stats{}, err
	}
	defer co.Close()
	if err := co.RegisterDataset(cluster.AirportSpec(params)); err != nil {
		return nil, 0, cluster.Stats{}, err
	}

	opt := spam.InterpretOptions{Workers: clusterLocalWorkers, ReEntry: true}
	opt.Runner = cluster.NewRunner(co, opt)

	// Warmup: push the RTF queue through once so every worker has
	// regenerated the dataset (workers build it inline in their frame
	// loop) before the clock starts.
	warm := spam.BuildRTFTasks(d.KB, d.Store, d.Progs.RTF, 3, false)
	if _, err := co.RunTasks(context.Background(), tlp.FIFO, cluster.RunConfig{}, warm); err != nil {
		return nil, 0, cluster.Stats{}, err
	}
	before := co.Stats()

	start := time.Now()
	in, err := d.Interpret(opt)
	wallMS := float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		return nil, 0, cluster.Stats{}, err
	}
	after := co.Stats()
	return in, wallMS, cluster.Stats{
		Workers:           after.Workers,
		WireVersion:       after.WireVersion,
		TasksShipped:      after.TasksShipped - before.TasksShipped,
		ShippedBytes:      after.ShippedBytes - before.ShippedBytes,
		ResultBytes:       after.ResultBytes - before.ResultBytes,
		V1TaskBytes:       after.V1TaskBytes - before.V1TaskBytes,
		ChunksShipped:     after.ChunksShipped - before.ChunksShipped,
		ChunkHits:         after.ChunkHits - before.ChunkHits,
		ChunkSavedBytes:   after.ChunkSavedBytes - before.ChunkSavedBytes,
		ContinuationTasks: after.ContinuationTasks - before.ContinuationTasks,
		Continuations:     after.Continuations - before.Continuations,
		Steals:            after.Steals - before.Steals,
		Requeued:          after.Requeued - before.Requeued,
	}, nil
}

// clusterRecovery runs DC under deterministic process chaos: workers
// SIGKILL themselves on fated (task, attempt) draws, the coordinator
// requeues the dead process's in-flight tasks and respawns within the
// budget, and the merged result set is still exactly-once.
func (s *Suite) clusterRecovery() (ClusterRecovery, error) {
	const (
		procs     = 2
		crashSeed = 7
		crashRate = 0.05
	)
	d, err := s.Dataset("DC")
	if err != nil {
		return ClusterRecovery{}, err
	}
	params, err := s.clusterParams("DC")
	if err != nil {
		return ClusterRecovery{}, err
	}
	co, err := cluster.Start(cluster.Config{
		Workers:      procs,
		LocalWorkers: 1,
		ShipWindow:   1, // minimal pipelining: fewer in-flight casualties per death
		MaxRespawns:  8,
		ProcFaults:   faults.Config{Seed: crashSeed, CrashRate: crashRate},
	})
	if err != nil {
		return ClusterRecovery{}, err
	}
	defer co.Close()
	if err := co.RegisterDataset(cluster.AirportSpec(params)); err != nil {
		return ClusterRecovery{}, err
	}

	// Re-entry on: worker-side spawned continuations are in flight
	// when workers die, so the requeue path for spawned tasks is
	// exercised, not just the coordinator-shipped one.
	opt := spam.InterpretOptions{Workers: procs, MaxRetries: 2, ReEntry: true}
	opt.Runner = cluster.NewRunner(co, opt)
	in, err := d.Interpret(opt)
	if err != nil {
		return ClusterRecovery{}, err
	}

	// The exactly-once witness: a crash-free in-process run of the
	// same dataset defines the expected result population. With
	// re-entry, task IDs legitimately repeat across an LCC phase's
	// passes, so ID-set uniqueness is not the invariant — per-phase
	// multiset equality with the reference is. A lost merge removes a
	// result from the multiset; a duplicated merge adds one; either
	// breaks the equality.
	ref, err := d.Interpret(spam.InterpretOptions{Workers: procs, ReEntry: true})
	if err != nil {
		return ClusterRecovery{}, err
	}
	exactly := len(in.Phases) == len(ref.Phases) &&
		in.Completeness.Tasks == ref.Completeness.Tasks
	for pi := 0; exactly && pi < len(in.Phases); pi++ {
		got, want := map[string]int{}, map[string]int{}
		for _, r := range in.Phases[pi].Results {
			if r == nil {
				exactly = false
			} else {
				got[r.TaskID]++
			}
		}
		for _, r := range ref.Phases[pi].Results {
			want[r.TaskID]++
		}
		if len(got) != len(want) {
			exactly = false
		}
		for id, n := range want {
			if got[id] != n {
				exactly = false
			}
		}
	}
	st := co.Stats()
	return ClusterRecovery{
		Dataset:           "DC",
		Procs:             procs,
		CrashSeed:         crashSeed,
		CrashRate:         crashRate,
		Tasks:             in.Completeness.Tasks,
		Completed:         st.TasksCompleted,
		WorkerDeaths:      st.WorkerDeaths,
		Respawns:          st.Respawns,
		Requeued:          st.Requeued,
		ContinuationTasks: st.ContinuationTasks,
		Continuations:     st.Continuations,
		SpawnedRequeued:   st.SpawnedRequeued,
		ExactlyOnce:       exactly,
	}, nil
}

// Cluster runs the full experiment: the three datasets plus the
// 10x-scale stress scene at each worker-process count, then the
// crash-recovery run. Expensive (every point is a real multi-process
// interpretation), so the report is built once per suite.
func (s *Suite) Cluster() (*ClusterReport, error) {
	if s.clus != nil {
		return s.clus, nil
	}
	rep := &ClusterReport{Schema: ClusterSchema, LocalWorkers: clusterLocalWorkers}

	type target struct {
		name   string
		d      *spam.Dataset
		params scene.Params
		m      *core.Measurement
	}
	var targets []target
	for _, ds := range Datasets {
		d, err := s.Dataset(ds)
		if err != nil {
			return nil, err
		}
		params, err := s.clusterParams(ds)
		if err != nil {
			return nil, err
		}
		m, err := s.Measurement(ds, core.LCC, spam.Level3, false)
		if err != nil {
			return nil, err
		}
		targets = append(targets, target{ds, d, params, m})
	}
	stressParams := s.clusterStressParams()
	stressD, err := spam.NewDataset(stressParams)
	if err != nil {
		return nil, err
	}
	stressM, err := core.NewSystem(stressD, core.LCC, spam.Level3).Measure(false)
	if err != nil {
		return nil, err
	}
	targets = append(targets, target{stressParams.Name, stressD, stressParams, stressM})

	for _, tg := range targets {
		durs := machine.Durations(tg.m.Exp.Tasks, 0, tg.m.Exp.Model)
		ov := tg.m.Exp.Overheads
		var base float64
		for _, procs := range clusterProcs {
			in, wallMS, st, err := clusterRun(tg.d, tg.params, procs)
			if err != nil {
				return nil, fmt.Errorf("bench: cluster %s procs=%d: %w", tg.name, procs, err)
			}
			if procs == clusterProcs[0] {
				base = wallMS
			}
			var seedBytes float64
			tasks := 0
			for _, ph := range in.Phases {
				seedBytes += ph.SeedBytes
				tasks += ph.Tasks
			}
			pt := ClusterPoint{
				Dataset:           tg.name,
				Procs:             procs,
				LocalWorkers:      clusterLocalWorkers,
				WallMS:            wallMS,
				Tasks:             tasks,
				TasksShipped:      st.TasksShipped,
				ShippedBytes:      st.ShippedBytes,
				ResultBytes:       st.ResultBytes,
				WireVersion:       st.WireVersion,
				ChunksShipped:     st.ChunksShipped,
				ChunkHits:         st.ChunkHits,
				ChunkSavedBytes:   st.ChunkSavedBytes,
				V1TaskBytes:       st.V1TaskBytes,
				ContinuationTasks: st.ContinuationTasks,
				Continuations:     st.Continuations,
				Steals:            st.Steals,
				SVMSpeedup: svm.Speedup(durs, svm.Cluster{
					Node0Procs:  clusterLocalWorkers,
					RemoteProcs: (procs - 1) * clusterLocalWorkers,
				}, svm.DefaultConfig(), ov),
				MsgpassSpeedup: msgpass.Speedup(durs, msgpass.DefaultConfig(procs*clusterLocalWorkers), msgpass.Dynamic),
			}
			if wallMS > 0 && base > 0 {
				pt.Speedup = base / wallMS
			}
			if seedBytes > 0 {
				pt.ShipShare = float64(st.ShippedBytes) / seedBytes
			}
			rep.Points = append(rep.Points, pt)
		}
	}

	rec, err := s.clusterRecovery()
	if err != nil {
		return nil, fmt.Errorf("bench: cluster recovery: %w", err)
	}
	rep.Recovery = rec
	s.clus = rep
	return rep, nil
}

// Check validates the report's structure and accounting invariants:
// full (dataset x procs) coverage, every point a real run with its
// whole task population shipped over the wire, and the recovery run
// demonstrating exactly-once delivery through at least one worker
// death. Observed wall-clock speedups are recorded, not gated — they
// depend on the host.
func (r *ClusterReport) Check() error {
	if r.Schema != ClusterSchema {
		return fmt.Errorf("cluster: schema %q, want %q", r.Schema, ClusterSchema)
	}
	want := map[string]map[int]bool{}
	for _, ds := range append(append([]string{}, Datasets...), "SF-x10") {
		want[ds] = map[int]bool{}
		for _, p := range clusterProcs {
			want[ds][p] = true
		}
	}
	for _, pt := range r.Points {
		if want[pt.Dataset] == nil || !want[pt.Dataset][pt.Procs] {
			return fmt.Errorf("cluster: unexpected point %s/procs=%d", pt.Dataset, pt.Procs)
		}
		delete(want[pt.Dataset], pt.Procs)
		if pt.WallMS <= 0 || pt.Tasks <= 0 {
			return fmt.Errorf("cluster: point %s/procs=%d is not a real run (wall=%g tasks=%d)",
				pt.Dataset, pt.Procs, pt.WallMS, pt.Tasks)
		}
		// Every task crosses the wire as its own frame — except a
		// continuation the worker ran locally before the coordinator's
		// push went out, which never needs one. That slack is bounded
		// by the worker-side continuation count.
		if pt.TasksShipped+pt.Continuations < pt.Tasks || pt.ShippedBytes <= 0 {
			return fmt.Errorf("cluster: point %s/procs=%d shipped %d tasks / %d bytes (%d worker-side continuations), want >= %d tasks",
				pt.Dataset, pt.Procs, pt.TasksShipped, pt.ShippedBytes, pt.Continuations, pt.Tasks)
		}
		if pt.Procs == clusterProcs[0] && pt.Speedup != 1 {
			return fmt.Errorf("cluster: point %s base speedup %g, want 1", pt.Dataset, pt.Speedup)
		}
		if pt.WireVersion >= 2 {
			if pt.ChunksShipped <= 0 || pt.ChunkHits <= 0 {
				return fmt.Errorf("cluster: point %s/procs=%d shipped %d chunks with %d hits — content-addressed shipping is not engaging",
					pt.Dataset, pt.Procs, pt.ChunksShipped, pt.ChunkHits)
			}
			if taskBytes := pt.ShippedBytes - pt.ResultBytes; pt.V1TaskBytes <= taskBytes {
				return fmt.Errorf("cluster: point %s/procs=%d v1 counterfactual %d bytes <= actual non-result wire %d — chunking saved nothing",
					pt.Dataset, pt.Procs, pt.V1TaskBytes, taskBytes)
			}
			if pt.ContinuationTasks > 0 && 10*pt.Continuations < 9*pt.ContinuationTasks {
				return fmt.Errorf("cluster: point %s/procs=%d continued %d/%d re-entry tasks worker-side, want >= 90%%",
					pt.Dataset, pt.Procs, pt.Continuations, pt.ContinuationTasks)
			}
			// The shipped-bytes budget on the three base datasets:
			// wire bytes per modeled seed byte must hold the 3x
			// reduction over what the v1 wire measured there.
			if v1, ok := clusterV1ShipShare[pt.Dataset]; ok && 3*pt.ShipShare > v1 {
				return fmt.Errorf("cluster: point %s/procs=%d ship share %.3f exceeds the wire-locality budget (v1 measured %.3f, want at least 3x under it)",
					pt.Dataset, pt.Procs, pt.ShipShare, v1)
			}
		}
	}
	for ds, procs := range want {
		if len(procs) > 0 {
			return fmt.Errorf("cluster: dataset %s missing %d points", ds, len(procs))
		}
	}
	rec := r.Recovery
	if rec.WorkerDeaths < 1 {
		return fmt.Errorf("cluster: recovery saw no worker deaths")
	}
	if rec.ContinuationTasks < 1 {
		return fmt.Errorf("cluster: recovery ran no re-entry tasks — spawned continuations were not exposed to the crash chaos")
	}
	if !rec.ExactlyOnce || rec.Tasks <= 0 {
		return fmt.Errorf("cluster: recovery not exactly-once (%d tasks)", rec.Tasks)
	}
	if rec.Requeued < 1 || rec.Completed < rec.Tasks {
		return fmt.Errorf("cluster: recovery requeued=%d completed=%d tasks=%d",
			rec.Requeued, rec.Completed, rec.Tasks)
	}
	return nil
}

// ExtCluster renders the experiment as text: one table over the
// (dataset, procs) grid, then the recovery summary. The full document
// ships in BENCH_10.json (spambench -json).
func (s *Suite) ExtCluster() (string, error) {
	rep, err := s.Cluster()
	if err != nil {
		return "", err
	}
	if err := rep.Check(); err != nil {
		return "", err
	}
	tb := stats.Table{
		Title: fmt.Sprintf("Extension: multi-process cluster interpretation (%d local workers per process, wire v%d)",
			rep.LocalWorkers, cluster.Version),
		Headers: []string{"Dataset", "Procs", "Wall (ms)", "Speedup", "Tasks", "Shipped",
			"Wire bytes", "Chunks", "Hits", "Cont", "Steals", "SVM (sim)", "Msgpass (sim)"},
	}
	for _, pt := range rep.Points {
		tb.AddRow(pt.Dataset, pt.Procs, pt.WallMS, pt.Speedup, pt.Tasks, pt.TasksShipped,
			stats.FormatBytes(float64(pt.ShippedBytes)), pt.ChunksShipped, pt.ChunkHits,
			fmt.Sprintf("%d/%d", pt.Continuations, pt.ContinuationTasks),
			pt.Steals, pt.SVMSpeedup, pt.MsgpassSpeedup)
	}
	rec := rep.Recovery
	out := tb.String() + "\n"
	out += fmt.Sprintf("Recovery: %s over %d procs, crash seed %d rate %g — %d worker deaths, "+
		"%d respawns, %d tasks requeued (%d of them spawned continuations); "+
		"%d tasks merged exactly-once\n",
		rec.Dataset, rec.Procs, rec.CrashSeed, rec.CrashRate, rec.WorkerDeaths,
		rec.Respawns, rec.Requeued, rec.SpawnedRequeued, rec.Tasks)
	return out, nil
}
