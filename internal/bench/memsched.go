// The memory-aware scheduling experiment: makespan-vs-memory-budget
// curves for every policy on the simulated machine, plus a stress
// scene demonstrating that the memory-bounded list scheduler completes
// within a budget that FIFO's natural peak exceeds. The machine-level
// data is emitted as BENCH_7.json by cmd/spambench -json; the real
// runtime's equivalent policies are proven byte-identical by the
// differential oracles in internal/tlp and internal/spam.
package bench

import (
	"fmt"

	"spampsm/internal/core"
	"spampsm/internal/machine"
	"spampsm/internal/scene"
	"spampsm/internal/spam"
	"spampsm/internal/stats"
)

// MemschedSchema versions the BENCH_7.json document.
const MemschedSchema = "spampsm-memsched-bench/v1"

// MemschedPoint is one (procs → makespan, peak memory) sample of a
// curve. Memory figures are simulated model bytes (wm.WMEBytes and
// rete.TokenBytes units), not heap measurements.
type MemschedPoint struct {
	Procs         int     `json:"procs"`
	MakespanSec   float64 `json:"makespanSec"`
	PeakMem       float64 `json:"peakMem"`
	ThrottleWaits int     `json:"throttleWaits"`
}

// MemschedCurve is one (dataset, policy, budget) sweep over the
// task-process axis. Budget 0 means unbounded.
type MemschedCurve struct {
	Dataset string          `json:"dataset"`
	Policy  string          `json:"policy"`
	Budget  float64         `json:"budget"`
	Points  []MemschedPoint `json:"points"`
}

// MemschedStress records the 10x-scale demonstration: a scene whose
// unbounded FIFO schedule peaks above the budget, which the
// memory-bounded policy nonetheless completes within.
type MemschedStress struct {
	Scene              string  `json:"scene"`
	Tasks              int     `json:"tasks"`
	Procs              int     `json:"procs"`
	Budget             float64 `json:"budget"`
	FIFOPeak           float64 `json:"fifoPeak"`
	FIFOMakespanSec    float64 `json:"fifoMakespanSec"`
	BoundedPolicy      string  `json:"boundedPolicy"`
	BoundedPeak        float64 `json:"boundedPeak"`
	BoundedMakespanSec float64 `json:"boundedMakespanSec"`
	BoundedWaits       int     `json:"boundedWaits"`
}

// MemschedReport is the BENCH_7.json document.
type MemschedReport struct {
	Schema   string          `json:"schema"`
	MaxProcs int             `json:"maxProcs"`
	Curves   []MemschedCurve `json:"curves"`
	Stress   MemschedStress  `json:"stress"`
}

// memschedMaxProcs is the task-process axis bound for the curves (the
// projection machines of Section 9, not the Encore's 14).
const memschedMaxProcs = 64

// memschedBudgets derives the experiment's budget ladder for one task
// set: three distinct budgets strictly between the largest single
// task's footprint (below which no schedule can stay) and the
// unbounded FIFO peak at full parallelism (above which the budget
// never binds).
func memschedBudgets(specs []machine.TaskSpec, ov machine.Overheads) []float64 {
	var maxTask float64
	for _, s := range specs {
		if s.Mem > maxTask {
			maxTask = s.Mem
		}
	}
	refPeak := machine.RunPolicy(specs, memschedMaxProcs, ov, machine.PolicyFIFO, 0).PeakMem
	if refPeak <= maxTask {
		// Degenerate queue (never two tasks in flight): spread budgets
		// above the single-task floor instead.
		return []float64{maxTask, 2 * maxTask, 3 * maxTask}
	}
	out := make([]float64, 0, 3)
	for _, f := range []float64{0.25, 0.5, 0.75} {
		out = append(out, maxTask+f*(refPeak-maxTask))
	}
	return out
}

// memschedCurves sweeps one task set: every policy at budget 0
// (unbounded) and at each budget of the ladder, P = 1..memschedMaxProcs.
func memschedCurves(ds string, specs []machine.TaskSpec, ov machine.Overheads) []MemschedCurve {
	budgets := append([]float64{0}, memschedBudgets(specs, ov)...)
	var out []MemschedCurve
	for _, pol := range machine.Policies() {
		order := machine.Order(specs, pol)
		for _, budget := range budgets {
			c := MemschedCurve{Dataset: ds, Policy: pol.String(), Budget: budget}
			for p := 1; p <= memschedMaxProcs; p++ {
				sched := machine.RunSpecs(specs, order, p, ov, budget)
				c.Points = append(c.Points, MemschedPoint{
					Procs:         p,
					MakespanSec:   machine.InstrToSec(sched.Makespan),
					PeakMem:       sched.PeakMem,
					ThrottleWaits: sched.ThrottleWaits,
				})
			}
			out = append(out, c)
		}
	}
	return out
}

// memschedStress builds the 10x-scale SF scene, picks the budget
// halfway between the largest task and the unbounded FIFO peak, and
// schedules both ways.
func (s *Suite) memschedStress() (MemschedStress, error) {
	factor := 10.0
	if s.Opt.SubsetScale != 0 {
		factor *= s.Opt.SubsetScale
	}
	p := scene.SF.Scale(factor)
	p.Name = "SF-x10"
	d, err := spam.NewDataset(p)
	if err != nil {
		return MemschedStress{}, err
	}
	m, err := core.NewSystem(d, core.LCC, spam.Level3).Measure(false)
	if err != nil {
		return MemschedStress{}, err
	}
	specs := m.Exp.Specs(0)
	ov := m.Exp.Overheads
	const procs = 32
	fifo := machine.RunPolicy(specs, procs, ov, machine.PolicyFIFO, 0)
	var maxTask float64
	for _, sp := range specs {
		if sp.Mem > maxTask {
			maxTask = sp.Mem
		}
	}
	budget := maxTask + 0.5*(fifo.PeakMem-maxTask)
	bounded := machine.RunPolicy(specs, procs, ov, machine.PolicyPostOrder, budget)
	return MemschedStress{
		Scene:              p.Name,
		Tasks:              len(specs),
		Procs:              procs,
		Budget:             budget,
		FIFOPeak:           fifo.PeakMem,
		FIFOMakespanSec:    machine.InstrToSec(fifo.Makespan),
		BoundedPolicy:      machine.PolicyPostOrder.String(),
		BoundedPeak:        bounded.PeakMem,
		BoundedMakespanSec: machine.InstrToSec(bounded.Makespan),
		BoundedWaits:       bounded.ThrottleWaits,
	}, nil
}

// Memsched runs the full experiment: curves for the three datasets'
// LCC Level-3 queues, then the stress scene.
func (s *Suite) Memsched() (*MemschedReport, error) {
	rep := &MemschedReport{Schema: MemschedSchema, MaxProcs: memschedMaxProcs}
	for _, ds := range Datasets {
		m, err := s.Measurement(ds, core.LCC, spam.Level3, false)
		if err != nil {
			return nil, err
		}
		rep.Curves = append(rep.Curves, memschedCurves(ds, m.Exp.Specs(0), m.Exp.Overheads)...)
	}
	stress, err := s.memschedStress()
	if err != nil {
		return nil, err
	}
	rep.Stress = stress
	return rep, nil
}

// Check validates the report's invariants: every dataset swept with at
// least three distinct bounded budgets over the full processor axis,
// every bounded curve within its budget, and the stress scene's
// bounded schedule fitting a budget the FIFO peak exceeds.
func (r *MemschedReport) Check() error {
	if r.Schema != MemschedSchema {
		return fmt.Errorf("memsched: schema %q, want %q", r.Schema, MemschedSchema)
	}
	budgets := map[string]map[float64]bool{}
	for _, c := range r.Curves {
		if len(c.Points) != r.MaxProcs {
			return fmt.Errorf("memsched: curve %s/%s/B=%g has %d points, want %d",
				c.Dataset, c.Policy, c.Budget, len(c.Points), r.MaxProcs)
		}
		if c.Budget > 0 {
			if budgets[c.Dataset] == nil {
				budgets[c.Dataset] = map[float64]bool{}
			}
			budgets[c.Dataset][c.Budget] = true
			for _, pt := range c.Points {
				if pt.PeakMem > c.Budget {
					return fmt.Errorf("memsched: curve %s/%s/B=%g peaks at %g (procs=%d), above budget",
						c.Dataset, c.Policy, c.Budget, pt.PeakMem, pt.Procs)
				}
			}
		}
	}
	for _, ds := range Datasets {
		if len(budgets[ds]) < 3 {
			return fmt.Errorf("memsched: dataset %s has %d distinct bounded budgets, want >= 3", ds, len(budgets[ds]))
		}
	}
	st := r.Stress
	if st.FIFOPeak <= st.Budget {
		return fmt.Errorf("memsched: stress FIFO peak %g does not exceed budget %g", st.FIFOPeak, st.Budget)
	}
	if st.BoundedPeak > st.Budget {
		return fmt.Errorf("memsched: stress bounded peak %g exceeds budget %g", st.BoundedPeak, st.Budget)
	}
	return nil
}

// ExtMemsched renders the experiment as text: one table per dataset
// at full parallelism, then the stress-scene summary. The complete
// curves ship in BENCH_7.json (spambench -json).
func (s *Suite) ExtMemsched() (string, error) {
	rep, err := s.Memsched()
	if err != nil {
		return "", err
	}
	if err := rep.Check(); err != nil {
		return "", err
	}
	byDS := map[string][]MemschedCurve{}
	for _, c := range rep.Curves {
		byDS[c.Dataset] = append(byDS[c.Dataset], c)
	}
	var out string
	for _, ds := range Datasets {
		tb := stats.Table{
			Title: fmt.Sprintf("Extension: makespan vs memory budget, %s LCC Level 3 at %d task processes",
				ds, memschedMaxProcs),
			Headers: []string{"Policy", "Budget", "Makespan (sec)", "Peak mem", "Throttle waits"},
		}
		for _, c := range byDS[ds] {
			pt := c.Points[len(c.Points)-1]
			budget := "unbounded"
			if c.Budget > 0 {
				budget = stats.FormatBytes(c.Budget)
			}
			tb.AddRow(c.Policy, budget, pt.MakespanSec, stats.FormatBytes(pt.PeakMem), pt.ThrottleWaits)
		}
		out += tb.String() + "\n"
	}
	st := rep.Stress
	out += fmt.Sprintf("Stress: %s (%d tasks, %d procs), budget %s — FIFO peaks at %s (over budget); "+
		"%s stays at %s with %d throttle waits, makespan %s vs %s sec\n",
		st.Scene, st.Tasks, st.Procs, stats.FormatBytes(st.Budget), stats.FormatBytes(st.FIFOPeak),
		st.BoundedPolicy, stats.FormatBytes(st.BoundedPeak), st.BoundedWaits,
		stats.FormatFloat(st.BoundedMakespanSec), stats.FormatFloat(st.FIFOMakespanSec))
	return out, nil
}
