package bench

import (
	"strings"
	"testing"

	"spampsm/internal/scene"
)

// validClusterReport hand-builds a report satisfying every Check
// invariant: full (dataset x procs) coverage, real-run wall times,
// whole queues shipped, exactly-once recovery through worker deaths.
func validClusterReport() *ClusterReport {
	rep := &ClusterReport{Schema: ClusterSchema, LocalWorkers: clusterLocalWorkers}
	for _, ds := range append(append([]string{}, Datasets...), "SF-x10") {
		for _, procs := range clusterProcs {
			pt := ClusterPoint{
				Dataset: ds, Procs: procs, LocalWorkers: clusterLocalWorkers,
				WallMS: 100, Tasks: 40, TasksShipped: 41, ShippedBytes: 50_000,
				ShipShare: 0.5, SVMSpeedup: 2, MsgpassSpeedup: 2,
			}
			if procs == clusterProcs[0] {
				pt.Speedup = 1
			} else {
				pt.Speedup = 0.9
			}
			rep.Points = append(rep.Points, pt)
		}
	}
	rep.Recovery = ClusterRecovery{
		Dataset: "DC", Procs: 2, CrashSeed: 7, CrashRate: 0.05,
		Tasks: 85, Completed: 85, WorkerDeaths: 4, Respawns: 4,
		Requeued: 4, ExactlyOnce: true,
	}
	return rep
}

func TestClusterReportCheck(t *testing.T) {
	if err := validClusterReport().Check(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}

	breaks := []struct {
		name    string
		mutate  func(*ClusterReport)
		wantErr string
	}{
		{"wrong schema", func(r *ClusterReport) { r.Schema = "nope" }, "schema"},
		{"missing point", func(r *ClusterReport) { r.Points = r.Points[1:] }, "missing"},
		{"duplicate point", func(r *ClusterReport) { r.Points = append(r.Points, r.Points[0]) }, "unexpected point"},
		{"foreign dataset", func(r *ClusterReport) { r.Points[0].Dataset = "LAX" }, "unexpected point"},
		{"zero wall", func(r *ClusterReport) { r.Points[0].WallMS = 0 }, "not a real run"},
		{"under-shipped", func(r *ClusterReport) { r.Points[0].TasksShipped = r.Points[0].Tasks - 1 }, "shipped"},
		{"no wire bytes", func(r *ClusterReport) { r.Points[0].ShippedBytes = 0 }, "shipped"},
		{"base speedup", func(r *ClusterReport) { r.Points[0].Speedup = 1.2 }, "base speedup"},
		{"no deaths", func(r *ClusterReport) { r.Recovery.WorkerDeaths = 0 }, "no worker deaths"},
		{"duplicated result", func(r *ClusterReport) { r.Recovery.ExactlyOnce = false }, "exactly-once"},
		{"lost result", func(r *ClusterReport) { r.Recovery.Completed = r.Recovery.Tasks - 1 }, "requeued"},
		{"no requeue", func(r *ClusterReport) { r.Recovery.Requeued = 0 }, "requeued"},
	}
	for _, br := range breaks {
		rep := validClusterReport()
		br.mutate(rep)
		err := rep.Check()
		if err == nil {
			t.Errorf("%s: Check passed, want error", br.name)
			continue
		}
		if !strings.Contains(err.Error(), br.wantErr) {
			t.Errorf("%s: error %q does not mention %q", br.name, err, br.wantErr)
		}
	}
}

// TestClusterParamsMatchSuiteDatasets pins the identity the cluster
// experiment rests on: the generator parameters shipped to workers
// must describe exactly the dataset the coordinator-side suite built,
// or the differential guarantee is void.
func TestClusterParamsMatchSuiteDatasets(t *testing.T) {
	s := quickSuite()
	for _, ds := range Datasets {
		d, err := s.Dataset(ds)
		if err != nil {
			t.Fatal(err)
		}
		p, err := s.clusterParams(ds)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != ds {
			t.Errorf("%s: params name %q", ds, p.Name)
		}
		// Scene generation is deterministic in its parameters, so a
		// scene regenerated from the shipped params (exactly what a
		// worker does) must reproduce the suite dataset's scene.
		regen := scene.Generate(p)
		if regen.Name != d.Scene.Name || len(regen.Regions) != len(d.Scene.Regions) {
			t.Errorf("%s: regenerated scene %s/%d regions, suite dataset %s/%d",
				ds, regen.Name, len(regen.Regions), d.Scene.Name, len(d.Scene.Regions))
		}
	}
	if name := s.clusterStressParams().Name; name != "SF-x10" {
		t.Errorf("stress scene name %q", name)
	}
}
