package bench

import (
	"strings"
	"testing"

	"spampsm/internal/scene"
)

// validClusterReport hand-builds a report satisfying every Check
// invariant: full (dataset x procs) coverage, real-run wall times,
// whole queues shipped, exactly-once recovery through worker deaths.
func validClusterReport() *ClusterReport {
	rep := &ClusterReport{Schema: ClusterSchema, LocalWorkers: clusterLocalWorkers}
	for _, ds := range append(append([]string{}, Datasets...), "SF-x10") {
		for _, procs := range clusterProcs {
			pt := ClusterPoint{
				Dataset: ds, Procs: procs, LocalWorkers: clusterLocalWorkers,
				WallMS: 100, Tasks: 40, TasksShipped: 41, ShippedBytes: 50_000,
				ResultBytes: 20_000, ShipShare: 0.12, SVMSpeedup: 2, MsgpassSpeedup: 2,
				WireVersion: 2, ChunksShipped: 30, ChunkHits: 200, ChunkSavedBytes: 90_000,
				V1TaskBytes: 120_000, ContinuationTasks: 10, Continuations: 10,
			}
			if ds == "SF-x10" {
				// The stress scene's share is recorded, not budgeted.
				pt.ShipShare = 0.3
			}
			if procs == clusterProcs[0] {
				pt.Speedup = 1
			} else {
				pt.Speedup = 0.9
			}
			rep.Points = append(rep.Points, pt)
		}
	}
	rep.Recovery = ClusterRecovery{
		Dataset: "DC", Procs: 2, CrashSeed: 7, CrashRate: 0.05,
		Tasks: 85, Completed: 85, WorkerDeaths: 4, Respawns: 4,
		Requeued: 4, ContinuationTasks: 6, Continuations: 5,
		SpawnedRequeued: 1, ExactlyOnce: true,
	}
	return rep
}

func TestClusterReportCheck(t *testing.T) {
	if err := validClusterReport().Check(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}

	breaks := []struct {
		name    string
		mutate  func(*ClusterReport)
		wantErr string
	}{
		{"wrong schema", func(r *ClusterReport) { r.Schema = "nope" }, "schema"},
		{"missing point", func(r *ClusterReport) { r.Points = r.Points[1:] }, "missing"},
		{"duplicate point", func(r *ClusterReport) { r.Points = append(r.Points, r.Points[0]) }, "unexpected point"},
		{"foreign dataset", func(r *ClusterReport) { r.Points[0].Dataset = "LAX" }, "unexpected point"},
		{"zero wall", func(r *ClusterReport) { r.Points[0].WallMS = 0 }, "not a real run"},
		{"under-shipped", func(r *ClusterReport) {
			pt := &r.Points[0]
			pt.TasksShipped = pt.Tasks - pt.Continuations - 1
		}, "shipped"},
		{"no wire bytes", func(r *ClusterReport) { r.Points[0].ShippedBytes = 0 }, "shipped"},
		{"base speedup", func(r *ClusterReport) { r.Points[0].Speedup = 1.2 }, "base speedup"},
		{"no chunks", func(r *ClusterReport) { r.Points[0].ChunksShipped = 0 }, "content-addressed"},
		{"no hits", func(r *ClusterReport) { r.Points[0].ChunkHits = 0 }, "content-addressed"},
		{"chunking saved nothing", func(r *ClusterReport) { r.Points[0].V1TaskBytes = 25_000 }, "saved nothing"},
		{"coordinator round-trips", func(r *ClusterReport) { r.Points[0].Continuations = 8 }, "worker-side"},
		{"over ship budget", func(r *ClusterReport) { r.Points[0].ShipShare = 0.4 }, "budget"},
		{"no deaths", func(r *ClusterReport) { r.Recovery.WorkerDeaths = 0 }, "no worker deaths"},
		{"no re-entry in recovery", func(r *ClusterReport) { r.Recovery.ContinuationTasks = 0 }, "re-entry"},
		{"duplicated result", func(r *ClusterReport) { r.Recovery.ExactlyOnce = false }, "exactly-once"},
		{"lost result", func(r *ClusterReport) { r.Recovery.Completed = r.Recovery.Tasks - 1 }, "requeued"},
		{"no requeue", func(r *ClusterReport) { r.Recovery.Requeued = 0 }, "requeued"},
	}
	for _, br := range breaks {
		rep := validClusterReport()
		br.mutate(rep)
		err := rep.Check()
		if err == nil {
			t.Errorf("%s: Check passed, want error", br.name)
			continue
		}
		if !strings.Contains(err.Error(), br.wantErr) {
			t.Errorf("%s: error %q does not mention %q", br.name, err, br.wantErr)
		}
	}
}

// TestClusterParamsMatchSuiteDatasets pins the identity the cluster
// experiment rests on: the generator parameters shipped to workers
// must describe exactly the dataset the coordinator-side suite built,
// or the differential guarantee is void.
func TestClusterParamsMatchSuiteDatasets(t *testing.T) {
	s := quickSuite()
	for _, ds := range Datasets {
		d, err := s.Dataset(ds)
		if err != nil {
			t.Fatal(err)
		}
		p, err := s.clusterParams(ds)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != ds {
			t.Errorf("%s: params name %q", ds, p.Name)
		}
		// Scene generation is deterministic in its parameters, so a
		// scene regenerated from the shipped params (exactly what a
		// worker does) must reproduce the suite dataset's scene.
		regen := scene.Generate(p)
		if regen.Name != d.Scene.Name || len(regen.Regions) != len(d.Scene.Regions) {
			t.Errorf("%s: regenerated scene %s/%d regions, suite dataset %s/%d",
				ds, regen.Name, len(regen.Regions), d.Scene.Name, len(d.Scene.Regions))
		}
	}
	if name := s.clusterStressParams().Name; name != "SF-x10" {
		t.Errorf("stress scene name %q", name)
	}
}
