package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestIncrementalReport runs the churn-ladder experiment on the
// reduced subsets, validates its invariants, and round-trips the
// BENCH_8 document through JSON. At subset scale the headline 15%
// proportionality bound is (deliberately) not enforced by Check —
// absolute constraint radii make small scenes pathologically
// non-local — but identity, reuse and diff accounting are.
func TestIncrementalReport(t *testing.T) {
	s := quickSuite()
	rep, err := s.Incremental()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
	if rep.Scale >= 1 {
		t.Fatalf("quick suite should run below calibrated scale, got %g", rep.Scale)
	}
	if again, err := s.Incremental(); err != nil || again != rep {
		t.Errorf("report must be cached on the suite: %v %v", again, err)
	}

	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back IncrementalReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Check(); err != nil {
		t.Errorf("decoded document fails its own invariants: %v", err)
	}

	out, err := s.ExtIncremental()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"incremental update cost vs churn", "SF", "DC", "MOFF", "byte-identical"} {
		if !strings.Contains(out, want) {
			t.Errorf("ext-incremental output missing %q", want)
		}
	}
}
