// Package bench regenerates every table and figure of the paper's
// evaluation: the phase statistics of Tables 1-3, the taxonomy of
// Table 4, the decomposition measurements of Tables 5-7, the baseline
// of Table 8, the multiplicative grid of Table 9, and Figures 3
// (ParaOPS5 match speedups), 6 (LCC task-level speedups), 7 (LCC match
// speedups), 8 (RTF speedups) and 9 (shared virtual memory).
//
// A Suite caches datasets and measurements so one invocation can
// produce several experiments without re-running SPAM.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"spampsm/internal/core"
	"spampsm/internal/faults"
	"spampsm/internal/machine"
	"spampsm/internal/matchbench"
	"spampsm/internal/msgpass"
	"spampsm/internal/pmatch"
	"spampsm/internal/scene"
	"spampsm/internal/spam"
	"spampsm/internal/stats"
	"spampsm/internal/svm"
	"spampsm/internal/tlp"
)

// Datasets is the evaluation's dataset order.
var Datasets = []string{"SF", "DC", "MOFF"}

// Options scope the harness.
type Options struct {
	// FullScale is the scene scale factor for the full-dataset runs of
	// Tables 1-3 (the parallelism experiments use the representative
	// subsets, per the paper's footnote 4).
	FullScale float64
	// MaxTaskProcs is the task-process axis bound (paper: 14 of the 16
	// Encore processors, after the control process and the OS).
	MaxTaskProcs int
	// MaxMatchProcs is the match-process axis bound (paper: 13).
	MaxMatchProcs int
	// SubsetScale scales the representative subsets themselves; 1.0 is
	// the calibrated paper scale. Tests use smaller values.
	SubsetScale float64
	// FaultSeed seeds the ext-faults chaos experiment's deterministic
	// injection plan (0 picks the default seed).
	FaultSeed int64
	// CrashRate is the per-processor death probability for ext-faults'
	// plan-driven processor-failure row.
	CrashRate float64
	// Sched orders the task queue of every real interpretation the
	// harness runs (the shared policy vocabulary; results are
	// byte-identical across policies).
	Sched tlp.QueuePolicy
}

// DefaultOptions mirror the paper's experimental setup.
func DefaultOptions() Options {
	return Options{FullScale: 3, MaxTaskProcs: 14, MaxMatchProcs: 13}
}

// Suite lazily builds and caches datasets and measurements.
type Suite struct {
	Opt      Options
	datasets map[string]*spam.Dataset
	meas     map[string]*core.Measurement
	incr     *IncrementalReport // ext-incremental is expensive; run once per suite
	clus     *ClusterReport     // ext-cluster spawns real processes; run once per suite
}

// NewSuite builds an empty suite.
func NewSuite(opt Options) *Suite {
	if opt.FullScale <= 0 {
		opt.FullScale = 3
	}
	if opt.MaxTaskProcs <= 0 {
		opt.MaxTaskProcs = 14
	}
	if opt.MaxMatchProcs <= 0 {
		opt.MaxMatchProcs = 13
	}
	return &Suite{Opt: opt, datasets: map[string]*spam.Dataset{}, meas: map[string]*core.Measurement{}}
}

// Dataset returns the cached subset dataset.
func (s *Suite) Dataset(name string) (*spam.Dataset, error) {
	if d, ok := s.datasets[name]; ok {
		return d, nil
	}
	var d *spam.Dataset
	var err error
	if s.Opt.SubsetScale != 0 && s.Opt.SubsetScale != 1 {
		params := map[string]scene.Params{"SF": scene.SF, "DC": scene.DC, "MOFF": scene.MOFF}
		p, ok := params[name]
		if !ok {
			return nil, fmt.Errorf("bench: unknown dataset %q", name)
		}
		p = p.Scale(s.Opt.SubsetScale)
		p.Name = name
		d, err = spam.NewDataset(p)
	} else {
		d, err = core.LoadDataset(name)
	}
	if err != nil {
		return nil, err
	}
	s.datasets[name] = d
	return d, nil
}

// Measurement returns the measurement of one configuration.
// Capture-free measurements are cached across experiments;
// capture-enabled ones (whose activation forests occupy hundreds of
// megabytes) are never shared between experiments, so they are
// rebuilt on demand and left to the garbage collector afterwards.
func (s *Suite) Measurement(ds string, phase core.Phase, level spam.Level, capture bool) (*core.Measurement, error) {
	key := fmt.Sprintf("%s/%s/%d/%v", ds, phase, level, capture)
	if m, ok := s.meas[key]; ok {
		return m, nil
	}
	d, err := s.Dataset(ds)
	if err != nil {
		return nil, err
	}
	m, err := core.NewSystem(d, phase, level).Measure(capture)
	if err != nil {
		return nil, err
	}
	if !capture {
		s.meas[key] = m
	}
	return m, nil
}

// ---------------------------------------------------------------------------
// Tables 1-3: full-run phase statistics

// Tables123 reproduces the per-phase statistics of the three full
// datasets: total CPU time (in hours of the original Lisp system),
// production firings, effective productions/second, and hypothesis
// counts.
func (s *Suite) Tables123() (string, error) {
	var b strings.Builder
	params := map[string]scene.Params{"SF": scene.SF, "DC": scene.DC, "MOFF": scene.MOFF}
	logs := map[string]string{"SF": "log #63", "DC": "log #405", "MOFF": "log #415"}
	for _, name := range Datasets {
		p := params[name].Scale(s.Opt.FullScale)
		p.Name = name + "-full"
		d, err := spam.NewDataset(p)
		if err != nil {
			return "", err
		}
		in, err := d.Interpret(spam.InterpretOptions{Workers: 1, ReEntry: true, Prebuild: true, Sched: s.Opt.Sched})
		if err != nil {
			return "", err
		}
		tb := stats.Table{
			Title:   fmt.Sprintf("Table 1-3 row: %s (%s), full dataset at scale %.1f", name, logs[name], s.Opt.FullScale),
			Headers: []string{"SPAM Phase", "RTF", "LCC", "FA", "MODEL", "Total"},
		}
		row := func(label string, f func(spam.PhaseRun) string, total string) {
			cells := []interface{}{label}
			for _, ph := range []string{"RTF", "LCC", "FA", "MODEL"} {
				cells = append(cells, f(*in.Phase(ph)))
			}
			cells = append(cells, total)
			tb.AddRow(cells...)
		}
		hours := func(p spam.PhaseRun) float64 {
			return machine.InstrToSec(p.Instr) * spam.LispFactor / 3600
		}
		var totalH float64
		var totalF int
		for _, ph := range in.Phases {
			totalH += hours(ph)
			totalF += ph.Firings
		}
		row("Total CPU Time (hours)", func(p spam.PhaseRun) string {
			return stats.FormatFloat(hours(p))
		}, stats.FormatFloat(totalH))
		row("Total #Firings", func(p spam.PhaseRun) string {
			return fmt.Sprintf("%d", p.Firings)
		}, fmt.Sprintf("%d", totalF))
		row("Effective Productions/Second", func(p spam.PhaseRun) string {
			h := hours(p)
			if h <= 0 {
				return "-"
			}
			return stats.FormatFloat(float64(p.Firings) / (h * 3600))
		}, stats.FormatFloat(float64(totalF)/(totalH*3600)))
		row("Total Hypotheses", func(p spam.PhaseRun) string {
			if p.Phase == "LCC" {
				return "N/A"
			}
			return fmt.Sprintf("%d", p.Hypotheses)
		}, "N/A")
		b.WriteString(tb.String())
		b.WriteString("\n")
	}
	return b.String(), nil
}

// ---------------------------------------------------------------------------
// Table 4: taxonomy (documentation)

// Table4 reprints the paper's taxonomy of task-level parallelism,
// locating SPAM/PSM within it.
func Table4() string {
	tb := stats.Table{
		Title:   "Table 4: Dimensions of task-level parallelism",
		Headers: []string{"Dimensions", "Synchronous :: Distribution", "Asynchronous :: Distribution"},
	}
	tb.AddRow("Implicit", "Ishida & Stolfo :: Rule; Ishida :: Rule; Oshisanwo & Dasiewicz :: Rule", "-")
	tb.AddRow("Explicit", "Soar :: None", "SPAM/PSM :: WME")
	return tb.String()
}

// ---------------------------------------------------------------------------
// Tables 5-7: decomposition-level measurements

// Tables567 reproduces the per-level task statistics (average time,
// standard deviation, coefficient of variance, task count) for each
// dataset, in seconds of the original Lisp system as the paper
// measured them.
func (s *Suite) Tables567() (string, error) {
	var b strings.Builder
	for _, name := range Datasets {
		d, err := s.Dataset(name)
		if err != nil {
			return "", err
		}
		sums, err := core.LevelStatistics(d)
		if err != nil {
			return "", err
		}
		tb := stats.Table{
			Title: fmt.Sprintf("Tables 5-7 row: average, standard deviation and coeff. of variance for %s", name),
			Headers: []string{"Level", "Avg time per task (sec)", "Standard deviation (sec)",
				"Coefficient of variance", "Number of tasks"},
		}
		for _, level := range []spam.Level{spam.Level4, spam.Level3, spam.Level2, spam.Level1} {
			sum := sums[level]
			tb.AddRow(fmt.Sprintf("Level %d", level), sum.Mean, sum.Stddev, sum.CoV, sum.N)
		}
		b.WriteString(tb.String())
		b.WriteString("\n")
	}
	return b.String(), nil
}

// ---------------------------------------------------------------------------
// Table 8: the baseline system

// Table8 reproduces the baseline (single task process) measurements of
// the LCC phase at Levels 2 and 3 on the three datasets: total time,
// task count, average time per task, productions fired and RHS actions.
// Times are in seconds of the optimized C/ParaOPS5 uniprocessor.
func (s *Suite) Table8() (string, error) {
	tb := stats.Table{
		Title: "Table 8: Measurements for baseline system on the datasets (optimized, ParaOPS5-based, uniprocessor)",
		Headers: []string{"Dataset", "Total time (sec)", "Number of tasks",
			"Avg time per task (sec)", "Prods fired", "RHS actions"},
	}
	for _, name := range Datasets {
		for _, level := range []spam.Level{spam.Level3, spam.Level2} {
			m, err := s.Measurement(name, core.LCC, level, false)
			if err != nil {
				return "", err
			}
			sum := m.TaskSummary()
			tb.AddRow(fmt.Sprintf("%s Level %d", name, level),
				machine.InstrToSec(m.BaselineInstr()), sum.N, sum.Mean, m.Firings, m.RHSActions)
		}
	}
	return tb.String(), nil
}

// ---------------------------------------------------------------------------
// Figure 3: ParaOPS5 match parallelism on match-intensive systems

// Fig3 reproduces the match-parallelism speedups of the three
// match-intensive OPS5 systems.
func (s *Suite) Fig3() (string, error) {
	var series []stats.Series
	for _, spec := range []matchbench.Spec{matchbench.Rubik, matchbench.Weaver, matchbench.Tourney} {
		log, _, err := matchbench.Run(spec)
		if err != nil {
			return "", err
		}
		series = append(series, matchbench.SpeedupSeries(spec.Name, log, s.Opt.MaxMatchProcs, pmatch.DefaultModel))
	}
	out := stats.RenderSeries("Figure 3: Speed-ups for OPS5 match parallelism (Rubik / Weaver / Tourney)",
		"match procs", series...)
	out += stats.RenderChart("", "match procs", "speedup", 14, series...)
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 6: LCC task-level speedups

// Fig6 reproduces the LCC task-level-parallelism speedup curves for
// Levels 3 and 2 on the three datasets.
func (s *Suite) Fig6() (string, error) {
	var b strings.Builder
	for _, level := range []spam.Level{spam.Level3, spam.Level2} {
		var series []stats.Series
		for _, name := range Datasets {
			m, err := s.Measurement(name, core.LCC, level, false)
			if err != nil {
				return "", err
			}
			series = append(series, m.TLPSeries(name, s.Opt.MaxTaskProcs))
		}
		b.WriteString(stats.RenderSeries(
			fmt.Sprintf("Figure 6: LCC speedup vs task-level processes (Level %d)", level),
			"task procs", series...))
		b.WriteString(stats.RenderChart("", "task procs", "speedup", 14, series...))
		b.WriteString("\n")
	}
	return b.String(), nil
}

// ---------------------------------------------------------------------------
// Figure 7: LCC match-parallelism speedups

// Fig7 reproduces the LCC match-parallelism speedups (Level 3) with
// their asymptotic (Amdahl) limits.
func (s *Suite) Fig7() (string, error) {
	var series []stats.Series
	var limits []string
	var peaks []string
	for _, name := range Datasets {
		m, err := s.Measurement(name, core.LCC, spam.Level3, true)
		if err != nil {
			return "", err
		}
		ser := m.MatchSeries(name, s.Opt.MaxMatchProcs)
		series = append(series, ser)
		limit := m.AmdahlLimit()
		limits = append(limits, fmt.Sprintf("%s=%.2f", name, limit))
		best, bestAt := 0.0, 0
		for _, p := range ser.Points {
			if p.Y > best {
				best, bestAt = p.Y, int(p.X)
			}
		}
		peaks = append(peaks, fmt.Sprintf("%s peak %.2f @ %d procs (%.0f%% of limit)",
			name, best, bestAt, 100*best/limit))
	}
	out := stats.RenderSeries("Figure 7: LCC speedup vs dedicated match processes (Level 3)",
		"match procs", series...)
	out += stats.RenderChart("", "match procs", "speedup", 12, series...)
	out += fmt.Sprintf("Asymptotic limits: %s\n%s\n", strings.Join(limits, " "), strings.Join(peaks, "; "))
	return out, nil
}

// ---------------------------------------------------------------------------
// Table 9: multiplicative speedups

// Table9 reproduces the combined task × match speedup grid for SF at
// Level 2: achieved speedups with multiplicative predictions in
// parentheses; configurations needing more than the machine's 14
// usable processors are marked with an asterisk.
func (s *Suite) Table9() (string, error) {
	m, err := s.Measurement("SF", core.LCC, spam.Level2, true)
	if err != nil {
		return "", err
	}
	tb := stats.Table{
		Title:   "Table 9: Multiplicative speed-ups in SPAM/PSM for SF Level 2 (predicted in parentheses; * = needs > 14 processors)",
		Headers: []string{"", "Match0", "Match1", "Match2", "Match3", "Match4"},
	}
	for t := 1; t <= 7; t++ {
		cells := []interface{}{fmt.Sprintf("Task%d", t)}
		for mp := 0; mp <= 4; mp++ {
			cfg := machine.Config{TaskProcs: t, MatchProcs: mp}
			if cfg.Processors() > s.Opt.MaxTaskProcs {
				cells = append(cells, "*")
				continue
			}
			achieved, predicted := m.Combined(t, mp)
			if mp == 0 {
				cells = append(cells, fmt.Sprintf("%.2f", achieved))
			} else if t == 1 {
				cells = append(cells, fmt.Sprintf("%.2f", achieved))
			} else {
				cells = append(cells, fmt.Sprintf("%.2f (%.2f)", achieved, predicted))
			}
		}
		tb.AddRow(cells...)
	}
	return tb.String(), nil
}

// ---------------------------------------------------------------------------
// Figure 8: the RTF phase

// Fig8 reproduces the RTF phase's speedups: task-level parallelism and
// match parallelism with its asymptotic limits.
func (s *Suite) Fig8() (string, error) {
	var tlpSeries, matchSeries []stats.Series
	var limits []string
	for _, name := range Datasets {
		m, err := s.Measurement(name, core.RTF, 0, true)
		if err != nil {
			return "", err
		}
		tlpSeries = append(tlpSeries, m.TLPSeries(name, s.Opt.MaxTaskProcs))
		matchSeries = append(matchSeries, m.MatchSeries(name, s.Opt.MaxMatchProcs))
		limits = append(limits, fmt.Sprintf("%s=%.2f", name, m.AmdahlLimit()))
	}
	out := stats.RenderSeries("Figure 8a: RTF speedup vs task-level processes", "task procs", tlpSeries...)
	out += stats.RenderChart("", "task procs", "speedup", 14, tlpSeries...)
	out += "\n"
	out += stats.RenderSeries("Figure 8b: RTF speedup vs dedicated match processes", "match procs", matchSeries...)
	out += stats.RenderChart("", "match procs", "speedup", 12, matchSeries...)
	out += fmt.Sprintf("Asymptotic limits: %s\n", strings.Join(limits, " "))
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 9: shared virtual memory

// Fig9 reproduces the shared-virtual-memory experiment: LCC Level 3 on
// a two-node cluster (13 processes on the first Encore, the rest on
// the second), against the pure task-level-parallelism curve, plus the
// observed translation loss.
func (s *Suite) Fig9() (string, error) {
	m, err := s.Measurement("SF", core.LCC, spam.Level3, false)
	if err != nil {
		return "", err
	}
	cfg := svm.DefaultConfig()
	node0 := 13
	total := 22
	svmSer, pure := m.SVMSeries("SF-L3", node0, total, cfg)
	out := stats.RenderSeries("Figure 9: Speedups with the shared virtual memory server (2nd Encore over 13 processes)",
		"task procs", svmSer, pure)
	out += stats.RenderChart("", "task procs", "speedup", 16, svmSer, pure)
	durs := machine.Durations(m.Exp.Tasks, 0, m.Exp.Model)
	loss := svm.TranslationLoss(durs, svm.Cluster{Node0Procs: node0, RemoteProcs: total - node0},
		cfg, m.Exp.Overheads)
	out += fmt.Sprintf("Translational effect at %d processes: equivalent to the loss of %.1f processors\n",
		total, loss)
	// The false-sharing pathology before data-layout remediation.
	bad := cfg
	bad.FalseSharing = true
	badSpeedup := svm.Speedup(durs, svm.Cluster{Node0Procs: node0, RemoteProcs: 9}, bad, m.Exp.Overheads)
	goodSpeedup := svm.Speedup(durs, svm.Cluster{Node0Procs: node0, RemoteProcs: 9}, cfg, m.Exp.Overheads)
	out += fmt.Sprintf("With false contention (before data-structure reorganization): %.2f vs %.2f after\n",
		badSpeedup, goodSpeedup)
	return out, nil
}

// ---------------------------------------------------------------------------
// Extensions and ablations (beyond the paper's measured experiments)

// ExtLevels is the grain-size ablation behind Section 4's methodology:
// the TLP speedup at every decomposition level on one dataset, showing
// why Levels 2 and 3 were chosen — Level 4's task/processor ratio
// caps its speedup at the class count, and Level 1 pays initialization
// overhead for no additional speedup.
func (s *Suite) ExtLevels() (string, error) {
	tb := stats.Table{
		Title: "Ablation: LCC speedup at 14 task processes by decomposition level (SF)",
		Headers: []string{"Level", "Tasks", "Speedup@14", "Mean task (sec)",
			"CoV", "Total (sec)"},
	}
	// Level 4 is the class-aggregated view of the Level-3 queue: nine
	// big tasks whose speedup is capped by the task/processor ratio.
	m3, err := s.Measurement("SF", core.LCC, spam.Level3, false)
	if err != nil {
		return "", err
	}
	groups := m3.GroupDurations()
	gsecs := make([]float64, len(groups))
	for i, g := range groups {
		gsecs[i] = machine.InstrToSec(g)
	}
	gsum := stats.Summarize(gsecs)
	base := machine.Run(groups, 1, m3.Exp.Overheads).Makespan
	sp4 := base / machine.Run(groups, s.Opt.MaxTaskProcs, m3.Exp.Overheads).Makespan
	tb.AddRow("Level 4", gsum.N, sp4, gsum.Mean, gsum.CoV, gsum.Sum)
	for _, level := range []spam.Level{spam.Level3, spam.Level2, spam.Level1} {
		m, err := s.Measurement("SF", core.LCC, level, false)
		if err != nil {
			return "", err
		}
		sum := m.TaskSummary()
		sp := m.Exp.Speedup(machine.Config{TaskProcs: s.Opt.MaxTaskProcs})
		tb.AddRow(fmt.Sprintf("Level %d", level), sum.N, sp, sum.Mean, sum.CoV,
			machine.InstrToSec(m.BaselineInstr()))
	}
	return tb.String(), nil
}

// ExtSched is the scheduling ablation the paper proposes as future
// work: processing the large tasks at the head of the queue ("a
// separate task queue for the larger tasks ... processed at the
// beginning of the phase") removes the tail-end effect.
func (s *Suite) ExtSched() (string, error) {
	m, err := s.Measurement("SF", core.LCC, spam.Level3, false)
	if err != nil {
		return "", err
	}
	durs := machine.Durations(m.Exp.Tasks, 0, m.Exp.Model)
	base := machine.Run(durs, 1, m.Exp.Overheads).Makespan
	lpt := append([]float64(nil), durs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(lpt)))
	tb := stats.Table{
		Title:   "Ablation: FIFO queue vs largest-task-first (SF Level 3)",
		Headers: []string{"Task procs", "FIFO speedup", "Largest-first speedup", "Gain %"},
	}
	for _, p := range []int{4, 8, 14, 20, 28} {
		fifo := base / machine.Run(durs, p, m.Exp.Overheads).Makespan
		first := base / machine.Run(lpt, p, m.Exp.Overheads).Makespan
		tb.AddRow(p, fifo, first, 100*(first-fifo)/fifo)
	}
	return tb.String(), nil
}

// ExtQueues is the separate-task-queues experiment of Section 7: one
// queue per Encore instead of a shared queue across the SVM. The paper
// reports it "would not change the results".
func (s *Suite) ExtQueues() (string, error) {
	m, err := s.Measurement("SF", core.LCC, spam.Level3, false)
	if err != nil {
		return "", err
	}
	durs := machine.Durations(m.Exp.Tasks, 0, m.Exp.Model)
	base := machine.Run(durs, 1, m.Exp.Overheads).Makespan
	cfg := svm.DefaultConfig()
	tb := stats.Table{
		Title:   "Ablation: shared vs per-Encore task queues on the SVM cluster (SF Level 3)",
		Headers: []string{"Cluster", "Shared-queue speedup", "Split-queue speedup"},
	}
	for _, cl := range []svm.Cluster{
		{Node0Procs: 13, RemoteProcs: 3},
		{Node0Procs: 13, RemoteProcs: 6},
		{Node0Procs: 13, RemoteProcs: 9},
	} {
		shared := base / svm.Run(durs, cl, cfg, m.Exp.Overheads).Makespan
		split := base / svm.RunSplitQueues(durs, cl, cfg, m.Exp.Overheads).Makespan
		tb.AddRow(fmt.Sprintf("13+%d", cl.RemoteProcs), shared, split)
	}
	return tb.String(), nil
}

// ExtSync reproduces the Section 3.2 argument for asynchronous
// production firing (citing Mohan): given a fixed amount of work, a
// synchronous system saturates under task-duration variance while the
// asynchronous system keeps speeding up. Measured on SPAM's actual
// task durations and on a variance-free workload of the same total.
func (s *Suite) ExtSync() (string, error) {
	m, err := s.Measurement("SF", core.LCC, spam.Level3, false)
	if err != nil {
		return "", err
	}
	durs := machine.Durations(m.Exp.Tasks, 0, m.Exp.Model)
	var total float64
	for _, d := range durs {
		total += d
	}
	uniform := make([]float64, len(durs))
	for i := range uniform {
		uniform[i] = total / float64(len(durs))
	}
	base := machine.Run(durs, 1, m.Exp.Overheads).Makespan
	baseU := machine.Run(uniform, 1, m.Exp.Overheads).Makespan
	tb := stats.Table{
		Title: "Ablation: synchronous vs asynchronous firing under task variance (SF Level 3)",
		Headers: []string{"Task procs", "Async (SPAM durations)", "Sync (SPAM durations)",
			"Async (no variance)", "Sync (no variance)"},
	}
	for _, p := range []int{2, 4, 8, 14, 20, 28} {
		tb.AddRow(p,
			base/machine.Run(durs, p, m.Exp.Overheads).Makespan,
			base/machine.RunSynchronous(durs, p, m.Exp.Overheads).Makespan,
			baseU/machine.Run(uniform, p, m.Exp.Overheads).Makespan,
			baseU/machine.RunSynchronous(uniform, p, m.Exp.Overheads).Makespan)
	}
	return tb.String(), nil
}

// ExtSuburban checks that the decomposition methodology generalizes to
// SPAM's second task area: TLP speedups for the suburban-housing
// domain.
func (s *Suite) ExtSuburban() (string, error) {
	d, err := spam.NewSuburbanDataset(scene.SuburbanParams{
		Name: "suburban", Seed: 1990, Blocks: 8, HousesPerBlock: 6, Verts: 12,
	})
	if err != nil {
		return "", err
	}
	m, err := core.NewSystem(d, core.LCC, spam.Level3).Measure(false)
	if err != nil {
		return "", err
	}
	ser := m.TLPSeries("suburban", s.Opt.MaxTaskProcs)
	out := stats.RenderSeries("Extension: suburban-housing LCC speedup vs task processes", "task procs", ser)
	sum := m.TaskSummary()
	out += fmt.Sprintf("%d tasks, mean %.2f s, CoV %.2f\n", sum.N, sum.Mean, sum.CoV)
	return out, nil
}

// ExtScale probes the paper's closing projection — "a potential
// speed-up of 50 to 100 fold may be achievable due to task-level
// parallelism" — by scheduling a 4× SF scene's LCC queue on machines
// far larger than the Encore, under both the FIFO queue and the
// largest-first fix.
func (s *Suite) ExtScale() (string, error) {
	factor := 4.0
	if s.Opt.SubsetScale != 0 {
		factor *= s.Opt.SubsetScale
	}
	p := scene.SF.Scale(factor)
	p.Name = "SF-x4"
	d, err := spam.NewDataset(p)
	if err != nil {
		return "", err
	}
	sys3 := core.NewSystem(d, core.LCC, spam.Level3)
	m3, err := sys3.Measure(false)
	if err != nil {
		return "", err
	}
	// Level 2 splits the outlier objects by constraint, lifting the
	// largest-indivisible-task ceiling the Level-3 queue hits.
	m2, err := core.NewSystem(d, core.LCC, spam.Level2).Measure(false)
	if err != nil {
		return "", err
	}
	tb := stats.Table{
		Title: fmt.Sprintf("Extension: the 50-100x projection — SF x4 (%d / %d tasks at Levels 3 / 2) on large machines",
			m3.NumTasks(), m2.NumTasks()),
		Headers: []string{"Processors", "L3 FIFO", "L3 largest-first", "L2 largest-first"},
	}
	// One common baseline — the Level-3 BASELINE configuration — so the
	// columns are directly comparable (Level 2's own serial run is
	// cheaper: its smaller per-task working memories do less match).
	base := machine.Run(machine.Durations(m3.Exp.Tasks, 0, m3.Exp.Model), 1, m3.Exp.Overheads).Makespan
	speed := func(m *core.Measurement, procs int, sorted bool) float64 {
		durs := machine.Durations(m.Exp.Tasks, 0, m.Exp.Model)
		if sorted {
			durs = append([]float64(nil), durs...)
			sort.Sort(sort.Reverse(sort.Float64Slice(durs)))
		}
		return base / machine.Run(durs, procs, m.Exp.Overheads).Makespan
	}
	for _, procs := range []int{14, 28, 56, 84, 112} {
		tb.AddRow(procs,
			speed(m3, procs, false),
			speed(m3, procs, true),
			speed(m2, procs, true))
	}
	return tb.String(), nil
}

// ExtMsgpass is the Section 9 future-work study: SPAM/PSM's task queue
// on a message-passing multicomputer, comparing static task
// partitioning against dynamic distribution under SPAM's task-duration
// variance.
func (s *Suite) ExtMsgpass() (string, error) {
	m, err := s.Measurement("SF", core.LCC, spam.Level3, false)
	if err != nil {
		return "", err
	}
	durs := machine.Durations(m.Exp.Tasks, 0, m.Exp.Model)
	lpt := append([]float64(nil), durs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(lpt)))
	tb := stats.Table{
		Title: "Extension: task-level parallelism on a message-passing multicomputer (SF Level 3)",
		Headers: []string{"Nodes", "Static round-robin", "Static balanced (oracle)",
			"Dynamic FIFO", "Dynamic largest-first"},
	}
	for _, n := range []int{4, 8, 14, 28, 56} {
		cfg := msgpass.DefaultConfig(n)
		tb.AddRow(n,
			msgpass.Speedup(durs, cfg, msgpass.StaticRoundRobin),
			msgpass.Speedup(durs, cfg, msgpass.StaticBalanced),
			msgpass.Speedup(durs, cfg, msgpass.Dynamic),
			msgpass.Speedup(lpt, cfg, msgpass.Dynamic))
	}
	return tb.String(), nil
}

// ExtFaults is the robustness experiment: what does recovery cost when
// the hardware misbehaves? Table A degrades the paper's 14-processor
// Encore configuration with mid-run processor deaths — the shared task
// queue simply reissues the dead processor's task, so the speedup
// degrades gracefully instead of the run dying. Table B degrades the
// Section 7/9 networks with message loss and timeout-driven
// retransmission. Both are driven by one deterministic fault plan, so
// a fixed -fault-seed reproduces every number.
func (s *Suite) ExtFaults() (string, error) {
	m, err := s.Measurement("SF", core.LCC, spam.Level3, false)
	if err != nil {
		return "", err
	}
	durs := machine.Durations(m.Exp.Tasks, 0, m.Exp.Model)
	ov := m.Exp.Overheads
	base := machine.Run(durs, 1, ov).Makespan
	var useful float64
	for _, d := range durs {
		useful += d
	}
	seed := s.Opt.FaultSeed
	if seed == 0 {
		seed = 1990
	}
	plan := faults.New(faults.Config{Seed: seed, CrashRate: s.Opt.CrashRate})
	procs := s.Opt.MaxTaskProcs
	clean := machine.Run(durs, procs, ov).Makespan

	tbA := stats.Table{
		Title: fmt.Sprintf("Extension: recovery overhead of processor deaths at %d task processes (SF Level 3, seed %d)",
			procs, seed),
		Headers: append([]string{"Deaths", "Speedup", "Overhead %"}, stats.RecoveryHeaders()...),
	}
	// Deaths staggered across the clean run: the k-th death kills
	// processor k at (k+1)/(n+1) of the fault-free makespan.
	for deaths := 0; deaths <= 3; deaths++ {
		var fs []faults.ProcFailure
		for k := 0; k < deaths; k++ {
			fs = append(fs, faults.ProcFailure{Proc: k, At: clean * float64(k+1) / float64(deaths+1)})
		}
		sched, rec := machine.RunWithFailures(durs, procs, ov, fs)
		row := []interface{}{deaths, base / sched.Makespan, rec.OverheadPercent(useful)}
		tbA.AddRow(append(row, rec.Row(machine.MIPS*1e6)...)...)
	}
	if s.Opt.CrashRate > 0 {
		fs := plan.ProcFailures(procs, s.Opt.CrashRate, clean)
		sched, rec := machine.RunWithFailures(durs, procs, ov, fs)
		row := []interface{}{fmt.Sprintf("plan p=%.2f", s.Opt.CrashRate),
			base / sched.Makespan, rec.OverheadPercent(useful)}
		tbA.AddRow(append(row, rec.Row(machine.MIPS*1e6)...)...)
	}

	tbB := stats.Table{
		Title: "Extension: message loss with timeout-and-retransmit on the SVM cluster (13+9) and the message-passing machine (14 nodes, dynamic)",
		Headers: []string{"Loss rate", "SVM speedup", "SVM retransmits", "SVM wasted (sec)",
			"Msgpass speedup", "Msgpass retransmits", "Msgpass wasted (sec)"},
	}
	cl := svm.Cluster{Node0Procs: 13, RemoteProcs: 9}
	svmCfg := svm.DefaultConfig()
	svmCfg.RetryTimeoutInstr = 2 * svmCfg.FaultLatencyInstr
	mpCfg := msgpass.DefaultConfig(14)
	mpCfg.RetransmitTimeoutInstr = 4 * mpCfg.MsgLatencyInstr
	for _, rate := range []float64{0, 0.01, 0.05, 0.10} {
		svmCfg.LossRate, mpCfg.LossRate = rate, rate
		svmCfg.FaultPlan, mpCfg.FaultPlan = plan, plan
		svmSched, svmRec := svm.RunFaulty(durs, cl, svmCfg, ov)
		mpSched, mpRec := msgpass.RunFaulty(durs, mpCfg, msgpass.Dynamic)
		tbB.AddRow(fmt.Sprintf("%.0f%%", 100*rate),
			base/svmSched.Makespan, svmRec.Retransmits, machine.InstrToSec(svmRec.WastedInstr),
			base/mpSched.Makespan, mpRec.Retransmits, machine.InstrToSec(mpRec.WastedInstr))
	}
	return tbA.String() + "\n" + tbB.String(), nil
}

// ---------------------------------------------------------------------------
// dispatch

// Names lists the paper-experiment identifiers in evaluation order.
func Names() []string {
	return []string{"tables123", "table4", "tables567", "table8", "fig3", "fig6", "fig7", "table9", "fig8", "fig9"}
}

// ExtNames lists the extension/ablation experiments beyond the paper.
func ExtNames() []string {
	return []string{"ext-levels", "ext-sched", "ext-sync", "ext-queues", "ext-msgpass", "ext-suburban", "ext-scale", "ext-faults", "ext-memsched", "ext-incremental", "ext-cluster"}
}

// Run executes one experiment by name.
func (s *Suite) Run(name string) (string, error) {
	switch name {
	case "tables123":
		return s.Tables123()
	case "table4":
		return Table4(), nil
	case "tables567":
		return s.Tables567()
	case "table8":
		return s.Table8()
	case "fig3":
		return s.Fig3()
	case "fig6":
		return s.Fig6()
	case "fig7":
		return s.Fig7()
	case "table9":
		return s.Table9()
	case "fig8":
		return s.Fig8()
	case "fig9":
		return s.Fig9()
	case "ext-levels":
		return s.ExtLevels()
	case "ext-sched":
		return s.ExtSched()
	case "ext-sync":
		return s.ExtSync()
	case "ext-queues":
		return s.ExtQueues()
	case "ext-msgpass":
		return s.ExtMsgpass()
	case "ext-suburban":
		return s.ExtSuburban()
	case "ext-scale":
		return s.ExtScale()
	case "ext-faults":
		return s.ExtFaults()
	case "ext-memsched":
		return s.ExtMemsched()
	case "ext-incremental":
		return s.ExtIncremental()
	case "ext-cluster":
		return s.ExtCluster()
	default:
		return "", fmt.Errorf("bench: unknown experiment %q (want one of %s)", name,
			strings.Join(append(Names(), ExtNames()...), ", "))
	}
}

// CSVFor returns the figure experiments' data series as CSV documents,
// keyed by a suggested file name. Table experiments have no series and
// return nothing.
func (s *Suite) CSVFor(name string) (map[string]string, error) {
	out := map[string]string{}
	switch name {
	case "fig3":
		var series []stats.Series
		for _, spec := range []matchbench.Spec{matchbench.Rubik, matchbench.Weaver, matchbench.Tourney} {
			log, _, err := matchbench.Run(spec)
			if err != nil {
				return nil, err
			}
			series = append(series, matchbench.SpeedupSeries(spec.Name, log, s.Opt.MaxMatchProcs, pmatch.DefaultModel))
		}
		out["fig3.csv"] = stats.SeriesCSV("match_procs", series...)
	case "fig6":
		for _, level := range []spam.Level{spam.Level3, spam.Level2} {
			var series []stats.Series
			for _, ds := range Datasets {
				m, err := s.Measurement(ds, core.LCC, level, false)
				if err != nil {
					return nil, err
				}
				series = append(series, m.TLPSeries(ds, s.Opt.MaxTaskProcs))
			}
			out[fmt.Sprintf("fig6_level%d.csv", level)] = stats.SeriesCSV("task_procs", series...)
		}
	case "fig7":
		var series []stats.Series
		for _, ds := range Datasets {
			m, err := s.Measurement(ds, core.LCC, spam.Level3, true)
			if err != nil {
				return nil, err
			}
			series = append(series, m.MatchSeries(ds, s.Opt.MaxMatchProcs))
		}
		out["fig7.csv"] = stats.SeriesCSV("match_procs", series...)
	case "fig8":
		var tlpSeries, matchSeries []stats.Series
		for _, ds := range Datasets {
			m, err := s.Measurement(ds, core.RTF, 0, true)
			if err != nil {
				return nil, err
			}
			tlpSeries = append(tlpSeries, m.TLPSeries(ds, s.Opt.MaxTaskProcs))
			matchSeries = append(matchSeries, m.MatchSeries(ds, s.Opt.MaxMatchProcs))
		}
		out["fig8_tlp.csv"] = stats.SeriesCSV("task_procs", tlpSeries...)
		out["fig8_match.csv"] = stats.SeriesCSV("match_procs", matchSeries...)
	case "fig9":
		m, err := s.Measurement("SF", core.LCC, spam.Level3, false)
		if err != nil {
			return nil, err
		}
		svmSer, pure := m.SVMSeries("SF-L3", 13, 22, svm.DefaultConfig())
		out["fig9.csv"] = stats.SeriesCSV("task_procs", svmSer, pure)
	}
	return out, nil
}

// RunAll executes every paper experiment, then the extensions.
func (s *Suite) RunAll() (string, error) {
	var b strings.Builder
	for _, n := range append(Names(), ExtNames()...) {
		out, err := s.Run(n)
		if err != nil {
			return b.String(), fmt.Errorf("bench %s: %w", n, err)
		}
		fmt.Fprintf(&b, "=== %s ===\n%s\n", n, out)
	}
	return b.String(), nil
}
