// Package core is the public face of SPAM/PSM, the paper's
// contribution: explicit, asynchronous, working-memory-distributed
// task-level parallelism for a production-system vision workload.
//
// A System wraps one dataset and one SPAM phase (RTF or LCC) at a
// chosen decomposition level. It can:
//
//   - build the task queue (the control process's initialization),
//   - execute it for real on a goroutine pool (tlp),
//   - measure it serially and replay the cost logs on the virtual-time
//     multiprocessor (machine) to produce the paper's speedup curves,
//   - compose match parallelism (pmatch) with task-level parallelism,
//   - and run the queue across a simulated two-node shared virtual
//     memory cluster (svm).
package core

import (
	"fmt"
	"sync"

	"spampsm/internal/cluster"
	"spampsm/internal/machine"
	"spampsm/internal/ops5"
	"spampsm/internal/scene"
	"spampsm/internal/spam"
	"spampsm/internal/stats"
	"spampsm/internal/svm"
	"spampsm/internal/tlp"
)

// Phase selects the SPAM phase a System parallelizes. The paper
// parallelizes LCC (constraint satisfaction, the most expensive phase)
// and RTF (heuristic classification, the most OPS5-traditional one).
type Phase string

// Parallelized phases.
const (
	RTF Phase = "RTF"
	LCC Phase = "LCC"
)

// airportShared is the process-wide compiled airport knowledge base:
// rule compilation and Rete template construction happen once, and
// every dataset LoadDataset returns shares them (engine instantiation
// from a shared Program is concurrency-safe and deterministic).
var airportShared struct {
	once  sync.Once
	kb    *spam.KB
	progs *spam.Programs
	err   error
}

// LoadDataset builds one of the three calibrated airport datasets by
// name: "SF", "DC" or "MOFF". The airport rule programs are compiled
// once per process and shared across every returned dataset.
func LoadDataset(name string) (*spam.Dataset, error) {
	var p scene.Params
	switch name {
	case "SF":
		p = scene.SF
	case "DC":
		p = scene.DC
	case "MOFF":
		p = scene.MOFF
	default:
		return nil, fmt.Errorf("core: unknown dataset %q (want SF, DC or MOFF)", name)
	}
	airportShared.once.Do(func() {
		airportShared.kb = spam.AirportKB()
		airportShared.progs, airportShared.err = spam.BuildPrograms(airportShared.kb)
	})
	if airportShared.err != nil {
		return nil, airportShared.err
	}
	return spam.NewDatasetWith(scene.Generate(p), airportShared.kb, airportShared.progs), nil
}

// ClusterSpec returns the shippable dataset spec for one of the named
// airport datasets, so cluster workers regenerate exactly what
// LoadDataset builds locally.
func ClusterSpec(name string) (cluster.DatasetSpec, error) {
	switch name {
	case "SF":
		return cluster.AirportSpec(scene.SF), nil
	case "DC":
		return cluster.AirportSpec(scene.DC), nil
	case "MOFF":
		return cluster.AirportSpec(scene.MOFF), nil
	}
	return cluster.DatasetSpec{}, fmt.Errorf("core: unknown dataset %q (want SF, DC or MOFF)", name)
}

// System is one SPAM/PSM configuration: a dataset, a phase, and a
// decomposition level.
type System struct {
	Dataset *spam.Dataset
	Phase   Phase
	Level   spam.Level // LCC decomposition level; ignored for RTF
	// RTFBatch is the RTF batch size (regions per task).
	RTFBatch int

	frags []*spam.Fragment // cached RTF output for LCC task building
}

// NewSystem builds a System. For LCC, level selects the decomposition
// (the paper's experiments use Levels 2 and 3).
func NewSystem(d *spam.Dataset, phase Phase, level spam.Level) *System {
	return &System{Dataset: d, Phase: phase, Level: level, RTFBatch: 3}
}

// fragments runs (and caches) the RTF phase serially to obtain the
// fragment hypotheses the LCC queue is built from.
func (s *System) fragments() ([]*spam.Fragment, error) {
	if s.frags != nil {
		return s.frags, nil
	}
	tasks := spam.BuildRTFTasks(s.Dataset.KB, s.Dataset.Store, s.Dataset.Progs.RTF, s.RTFBatch, false)
	results, err := tlp.RunSerial(tasks, 0)
	if err != nil {
		return nil, err
	}
	if err := tlp.FirstError(results); err != nil {
		return nil, err
	}
	s.frags = spam.ExtractFragments(results)
	return s.frags, nil
}

// BuildTasks constructs the phase's task queue. With capture enabled
// the tasks record per-activation match forests for the
// match-parallelism simulation.
func (s *System) BuildTasks(capture bool) ([]*tlp.Task, error) {
	switch s.Phase {
	case RTF:
		return spam.BuildRTFTasks(s.Dataset.KB, s.Dataset.Store, s.Dataset.Progs.RTF, s.RTFBatch, capture), nil
	case LCC:
		frags, err := s.fragments()
		if err != nil {
			return nil, err
		}
		level := s.Level
		if level == 0 {
			level = spam.Level3
		}
		return spam.BuildLCCTasks(s.Dataset.KB, s.Dataset.Store, s.Dataset.Progs.LCC, frags, level, capture), nil
	default:
		return nil, fmt.Errorf("core: unknown phase %q", s.Phase)
	}
}

// RunParallel executes the queue for real on a goroutine pool with the
// given number of task processes. Task engines are prebuilt in
// parallel (engine construction is pure instantiation of the dataset's
// shared compiled templates, so overlapping it costs nothing in
// simulated time).
func (s *System) RunParallel(workers int) ([]*tlp.Result, error) {
	tasks, err := s.BuildTasks(false)
	if err != nil {
		return nil, err
	}
	pool := &tlp.Pool{Workers: workers}
	pool.Prebuild(tasks, workers)
	return pool.Run(tasks)
}

// Measurement is a serially-executed queue whose cost logs drive the
// virtual-time parallelism experiments.
type Measurement struct {
	System     *System
	Exp        *machine.Experiment
	Firings    int
	RHSActions int
	TaskTimes  []float64 // per-task serial instructions, in queue order
	TaskGroups []string  // per-task aggregation group (focal class)
}

// Measure executes the queue once on one task process, capturing cost
// logs. This is the paper's BASELINE configuration plus
// instrumentation; all speedups are computed against it.
func (s *System) Measure(capture bool) (*Measurement, error) {
	tasks, err := s.BuildTasks(capture)
	if err != nil {
		return nil, err
	}
	pool := &tlp.Pool{Workers: 1, DropEngines: true}
	results, err := pool.Run(tasks)
	if err != nil {
		return nil, err
	}
	if err := tlp.FirstError(results); err != nil {
		return nil, err
	}
	byID := map[string]string{}
	for _, t := range tasks {
		byID[t.ID] = t.Group
	}
	m := &Measurement{System: s}
	var mtasks []machine.Task
	for _, r := range results {
		mtasks = append(mtasks, machine.Task{ID: r.TaskID, Log: r.Log, Group: byID[r.TaskID]})
		m.Firings += r.Stats.Firings
		m.RHSActions += r.Stats.RHSActions
		m.TaskTimes = append(m.TaskTimes, r.Stats.TotalInstr())
		m.TaskGroups = append(m.TaskGroups, byID[r.TaskID])
		// A measurement only needs cost logs and statistics; releasing
		// each task's engine (its Rete network and working memory) keeps
		// large queues from pinning gigabytes.
		r.Engine = nil
	}
	m.Exp = machine.NewExperiment(mtasks)
	return m, nil
}

// GroupDurations aggregates the per-task instruction durations by task
// group (the focal object's class), in first-appearance order. This is
// the Level-4 view of a Level-3 measurement: the paper's Tables 5-7
// attribute one run's time at several granularities.
func (m *Measurement) GroupDurations() []float64 {
	order := []string{}
	acc := map[string]float64{}
	for i, g := range m.TaskGroups {
		if _, ok := acc[g]; !ok {
			order = append(order, g)
		}
		acc[g] += m.TaskTimes[i]
	}
	out := make([]float64, len(order))
	for i, g := range order {
		out[i] = acc[g]
	}
	return out
}

// NumTasks returns the queue length.
func (m *Measurement) NumTasks() int { return len(m.TaskTimes) }

// BaselineInstr returns the serial execution time in instructions
// (including per-task queue overhead).
func (m *Measurement) BaselineInstr() float64 { return m.Exp.BaselineInstr() }

// TaskSummary returns the per-task duration statistics in simulated
// seconds — the numbers behind Tables 5-8.
func (m *Measurement) TaskSummary() stats.Summary {
	secs := make([]float64, len(m.TaskTimes))
	for i, t := range m.TaskTimes {
		secs[i] = machine.InstrToSec(t)
	}
	return stats.Summarize(secs)
}

// TLPSeries returns the task-level-parallelism speedup curve for
// 1..maxProcs task processes (Figures 6 and 8).
func (m *Measurement) TLPSeries(name string, maxProcs int) stats.Series {
	return m.Exp.TLPSeries(name, maxProcs)
}

// MatchSeries returns the match-parallelism speedup curve for
// 0..maxProcs dedicated match processes (Figures 7 and 8). It requires
// a capture-enabled measurement.
func (m *Measurement) MatchSeries(name string, maxProcs int) stats.Series {
	return m.Exp.MatchSeries(name, maxProcs)
}

// AmdahlLimit returns the theoretical match-parallelism asymptote.
func (m *Measurement) AmdahlLimit() float64 { return m.Exp.AmdahlLimit() }

// MatchFraction returns the workload's match fraction.
func (m *Measurement) MatchFraction() float64 { return m.Exp.MatchFraction() }

// Combined returns the achieved and multiplicatively-predicted speedup
// of a combined (task × match) configuration (Table 9).
func (m *Measurement) Combined(taskProcs, matchProcs int) (achieved, predicted float64) {
	cfg := machine.Config{TaskProcs: taskProcs, MatchProcs: matchProcs}
	return m.Exp.Speedup(cfg), m.Exp.PredictedCombined(cfg)
}

// SVMSeries returns the shared-virtual-memory speedup curve (Figure 9):
// processors 1..node0Max stay on the home Encore; beyond that they are
// placed on the remote node. pure TLP values come from the same logs
// without SVM overheads.
func (m *Measurement) SVMSeries(name string, node0Max, totalMax int, cfg svm.Config) (svmSeries, pure stats.Series) {
	durs := machine.Durations(m.Exp.Tasks, 0, m.Exp.Model)
	base := machine.Run(durs, 1, m.Exp.Overheads).Makespan
	svmSeries = stats.Series{Name: name + "-svm"}
	pure = stats.Series{Name: name + "-pure-tlp"}
	for p := 1; p <= totalMax; p++ {
		cl := svm.Cluster{Node0Procs: p}
		if p > node0Max {
			cl = svm.Cluster{Node0Procs: node0Max, RemoteProcs: p - node0Max}
		}
		t := svm.Run(durs, cl, cfg, m.Exp.Overheads).Makespan
		svmSeries.Add(float64(p), base/t)
		pt := machine.Run(durs, p, m.Exp.Overheads).Makespan
		pure.Add(float64(p), base/pt)
	}
	return svmSeries, pure
}

// LevelStatistics measures the LCC decomposition at every level,
// returning per-level task-duration summaries — the methodology of
// Section 4 (Tables 5-7). Times are reported in simulated seconds of
// the original Lisp system (the paper instrumented the Lisp SPAM).
//
// Levels 1-3 are measured by actually executing their decompositions.
// Level 4 is the per-class aggregation of the Level-3 measurement,
// as in the paper, where one instrumented run was attributed at each
// granularity (executing merged class-wide working memories would
// additionally grow the match cost and break the tables' property
// that every level accounts for the same total time).
func LevelStatistics(d *spam.Dataset) (map[spam.Level]stats.Summary, error) {
	out := map[spam.Level]stats.Summary{}
	toLispSecs := func(instr []float64) []float64 {
		secs := make([]float64, len(instr))
		for i, t := range instr {
			secs[i] = machine.InstrToSec(t) * spam.LispFactor
		}
		return secs
	}
	for _, level := range []spam.Level{Level3, Level2, Level1} {
		sys := NewSystem(d, LCC, level)
		m, err := sys.Measure(false)
		if err != nil {
			return nil, fmt.Errorf("core: level %d: %w", level, err)
		}
		out[level] = stats.Summarize(toLispSecs(m.TaskTimes))
		if level == Level3 {
			out[Level4] = stats.Summarize(toLispSecs(m.GroupDurations()))
		}
	}
	return out, nil
}

// Re-exported decomposition levels for convenience.
const (
	Level1 = spam.Level1
	Level2 = spam.Level2
	Level3 = spam.Level3
	Level4 = spam.Level4
)

// TaskLogsOf extracts the cost logs of a measurement in queue order.
func (m *Measurement) TaskLogsOf() []*ops5.CostLog {
	logs := make([]*ops5.CostLog, 0, len(m.Exp.Tasks))
	for _, t := range m.Exp.Tasks {
		logs = append(logs, t.Log)
	}
	return logs
}
