package core

import (
	"math"
	"testing"

	"spampsm/internal/scene"
	"spampsm/internal/spam"
	"spampsm/internal/svm"
	"spampsm/internal/tlp"
)

// testDataset returns a reduced dataset so core tests stay fast.
func testDataset(t *testing.T) *spam.Dataset {
	t.Helper()
	p := scene.DC.Scale(0.5)
	p.Name = "DC-half"
	d, err := spam.NewDataset(p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLoadDataset(t *testing.T) {
	for _, name := range []string{"SF", "DC", "MOFF"} {
		d, err := LoadDataset(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Name != name {
			t.Errorf("dataset name = %s", d.Name)
		}
	}
	if _, err := LoadDataset("LAX"); err == nil {
		t.Error("unknown dataset must fail")
	}
}

func TestBuildTasksPhases(t *testing.T) {
	d := testDataset(t)
	rtf := NewSystem(d, RTF, 0)
	rtfTasks, err := rtf.BuildTasks(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rtfTasks) < 5 {
		t.Errorf("RTF tasks = %d", len(rtfTasks))
	}
	lcc := NewSystem(d, LCC, spam.Level3)
	lccTasks, err := lcc.BuildTasks(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(lccTasks) < 20 {
		t.Errorf("LCC tasks = %d", len(lccTasks))
	}
	if _, err := NewSystem(d, Phase("FA"), 0).BuildTasks(false); err == nil {
		t.Error("unsupported phase must fail")
	}
}

func TestRunParallelMatchesSerial(t *testing.T) {
	d := testDataset(t)
	sys := NewSystem(d, LCC, spam.Level3)
	serial, err := sys.Measure(false)
	if err != nil {
		t.Fatal(err)
	}
	par, err := sys.RunParallel(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tlp.FirstError(par); err != nil {
		t.Fatal(err)
	}
	firings := 0
	for _, r := range par {
		firings += r.Stats.Firings
	}
	if firings != serial.Firings {
		t.Errorf("parallel firings %d != serial %d", firings, serial.Firings)
	}
}

func TestMeasurementSpeedups(t *testing.T) {
	d := testDataset(t)
	sys := NewSystem(d, LCC, spam.Level3)
	m, err := sys.Measure(true)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTasks() == 0 || m.Firings == 0 || m.BaselineInstr() <= 0 {
		t.Fatalf("degenerate measurement: %+v", m)
	}
	ts := m.TLPSeries("tlp", 14)
	y1, _ := ts.YAt(1)
	if math.Abs(y1-1) > 1e-9 {
		t.Errorf("TLP speedup at 1 = %v", y1)
	}
	y14, _ := ts.YAt(14)
	if y14 < 6 || y14 > 14 {
		t.Errorf("TLP speedup at 14 = %v, want near linear", y14)
	}
	ms := m.MatchSeries("match", 8)
	limit := m.AmdahlLimit()
	if ms.MaxY() > limit {
		t.Errorf("match speedup %v beyond Amdahl limit %v", ms.MaxY(), limit)
	}
	if ms.MaxY() <= 1.02 {
		t.Errorf("match parallelism should help: max %v", ms.MaxY())
	}
	if mf := m.MatchFraction(); mf <= 0 || mf >= 1 {
		t.Errorf("match fraction = %v", mf)
	}
}

func TestCombinedMultiplicative(t *testing.T) {
	d := testDataset(t)
	m, err := NewSystem(d, LCC, spam.Level3).Measure(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range [][2]int{{2, 1}, {4, 2}, {3, 3}} {
		achieved, predicted := m.Combined(cfg[0], cfg[1])
		if predicted <= 0 {
			t.Fatalf("config %v: predicted %v", cfg, predicted)
		}
		rel := math.Abs(achieved-predicted) / predicted
		if rel > 0.2 {
			t.Errorf("config %v: achieved %.2f vs predicted %.2f (%.0f%%)",
				cfg, achieved, predicted, rel*100)
		}
	}
}

func TestSVMSeriesShape(t *testing.T) {
	d := testDataset(t)
	m, err := NewSystem(d, LCC, spam.Level3).Measure(false)
	if err != nil {
		t.Fatal(err)
	}
	sv, pure := m.SVMSeries("L3", 8, 14, svm.DefaultConfig())
	// Identical while on one node.
	for p := 1.0; p <= 8; p++ {
		ys, _ := sv.YAt(p)
		yp, _ := pure.YAt(p)
		if math.Abs(ys-yp) > 1e-9 {
			t.Errorf("p=%v: svm %v != pure %v on single node", p, ys, yp)
		}
	}
	// Beyond the node boundary the SVM curve sits below pure TLP but
	// still rises.
	y9s, _ := sv.YAt(9)
	y9p, _ := pure.YAt(9)
	if y9s >= y9p {
		t.Errorf("crossing nodes should cost something: svm %v vs pure %v", y9s, y9p)
	}
	y14s, _ := sv.YAt(14)
	y10s, _ := sv.YAt(10)
	if y14s <= y10s {
		t.Errorf("remote processors should still help: %v vs %v", y14s, y10s)
	}
}

func TestLevelStatistics(t *testing.T) {
	d := testDataset(t)
	sums, err := LevelStatistics(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range []spam.Level{Level1, Level2, Level3, Level4} {
		if sums[level].N == 0 {
			t.Fatalf("level %d: no tasks", level)
		}
	}
	// The paper's Tables 5-7 structure: task counts grow and mean task
	// time shrinks as the decomposition deepens; Level 4 has ~a task
	// per class; Level 1 is three orders finer than Level 4.
	if !(sums[Level4].N < sums[Level3].N && sums[Level3].N < sums[Level2].N && sums[Level2].N < sums[Level1].N) {
		t.Errorf("task counts: L4=%d L3=%d L2=%d L1=%d", sums[Level4].N, sums[Level3].N, sums[Level2].N, sums[Level1].N)
	}
	if !(sums[Level4].Mean > sums[Level3].Mean && sums[Level3].Mean > sums[Level2].Mean && sums[Level2].Mean > sums[Level1].Mean) {
		t.Errorf("mean times must shrink with level: %v %v %v %v",
			sums[Level4].Mean, sums[Level3].Mean, sums[Level2].Mean, sums[Level1].Mean)
	}
	// Level 1 has a low coefficient of variance (the paper's Tables
	// 5-7: ~0.13-0.16 at Level 1 vs ~0.4-0.7 above). Compare against
	// Level 2, whose CoV is inflated by the infield outlier tasks at
	// any dataset scale.
	if sums[Level1].CoV >= sums[Level2].CoV {
		t.Errorf("L1 CoV %v should be below L2 CoV %v", sums[Level1].CoV, sums[Level2].CoV)
	}
	// Work is conserved across decompositions (within queue overhead
	// noise): total time at each level is within 25% of Level 3's.
	l3Total := sums[Level3].Sum
	for _, level := range []spam.Level{Level1, Level2, Level4} {
		if r := sums[level].Sum / l3Total; r < 0.75 || r > 1.35 {
			t.Errorf("level %d total %v vs L3 %v (ratio %.2f)", level, sums[level].Sum, l3Total, r)
		}
	}
}

func TestRTFMeasurement(t *testing.T) {
	d := testDataset(t)
	m, err := NewSystem(d, RTF, 0).Measure(true)
	if err != nil {
		t.Fatal(err)
	}
	// RTF is more match-intensive than LCC (paper: ~60%).
	lcc, err := NewSystem(d, LCC, spam.Level3).Measure(false)
	if err != nil {
		t.Fatal(err)
	}
	if m.MatchFraction() <= lcc.MatchFraction() {
		t.Errorf("RTF match fraction %.2f should exceed LCC's %.2f",
			m.MatchFraction(), lcc.MatchFraction())
	}
	// And its match-parallelism limit is accordingly higher.
	if m.AmdahlLimit() <= lcc.AmdahlLimit() {
		t.Errorf("RTF limit %.2f should exceed LCC's %.2f", m.AmdahlLimit(), lcc.AmdahlLimit())
	}
}

func TestTaskSummarySeconds(t *testing.T) {
	d := testDataset(t)
	m, err := NewSystem(d, LCC, spam.Level3).Measure(false)
	if err != nil {
		t.Fatal(err)
	}
	sum := m.TaskSummary()
	if sum.N != m.NumTasks() {
		t.Errorf("summary N %d != tasks %d", sum.N, m.NumTasks())
	}
	if sum.Mean <= 0 || sum.Max < sum.Mean {
		t.Errorf("degenerate summary %+v", sum)
	}
}

func TestTaskLogsOf(t *testing.T) {
	d := testDataset(t)
	m, err := NewSystem(d, LCC, spam.Level3).Measure(false)
	if err != nil {
		t.Fatal(err)
	}
	logs := m.TaskLogsOf()
	if len(logs) != m.NumTasks() {
		t.Errorf("logs = %d, tasks = %d", len(logs), m.NumTasks())
	}
	for _, l := range logs {
		if l.TotalInstr() <= 0 {
			t.Error("empty log")
		}
	}
}
