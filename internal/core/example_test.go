package core_test

import (
	"fmt"

	"spampsm/internal/core"
	"spampsm/internal/scene"
	"spampsm/internal/spam"
)

// Example measures a small LCC queue and reports its task-level
// speedup on a simulated 8-processor machine.
func Example() {
	p := scene.DC.Scale(0.4)
	p.Name = "DC-demo"
	d, err := spam.NewDataset(p)
	if err != nil {
		panic(err)
	}
	sys := core.NewSystem(d, core.LCC, spam.Level3)
	m, err := sys.Measure(false)
	if err != nil {
		panic(err)
	}
	series := m.TLPSeries("demo", 8)
	y1, _ := series.YAt(1)
	y8, _ := series.YAt(8)
	fmt.Printf("tasks > 20: %v\n", m.NumTasks() > 20)
	fmt.Printf("speedup at 1 proc: %.1f\n", y1)
	fmt.Printf("speedup at 8 procs within [5,8]: %v\n", y8 >= 5 && y8 <= 8)
	// Output:
	// tasks > 20: true
	// speedup at 1 proc: 1.0
	// speedup at 8 procs within [5,8]: true
}
