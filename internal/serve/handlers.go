package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"spampsm/internal/faults"
	"spampsm/internal/geom"
	"spampsm/internal/scene"
	"spampsm/internal/spam"
	"spampsm/internal/tlp"
)

// maxBodyBytes bounds an /interpret request body.
const maxBodyBytes = 8 << 20

// Request is the /interpret wire format. Exactly one of Scene (a
// named dataset) or Inline (a scene carried in the request) must be
// set.
type Request struct {
	Scene  string       `json:"scene,omitempty"` // SF | DC | MOFF
	Inline *InlineScene `json:"inline,omitempty"`
	Tenant string       `json:"tenant,omitempty"` // or X-Tenant header

	Level    int  `json:"level,omitempty"`    // LCC decomposition level 1..3
	RTFBatch int  `json:"rtfBatch,omitempty"` // regions per RTF task
	ReEntry  bool `json:"reentry,omitempty"`
	// Degraded asks for a partial interpretation instead of an error
	// when some tasks exhaust their retries.
	Degraded bool `json:"degraded,omitempty"`

	DeadlineMs   int `json:"deadlineMs,omitempty"`   // request deadline
	FiringBudget int `json:"firingBudget,omitempty"` // per-task firing cap
	MaxRetries   int `json:"maxRetries,omitempty"`

	// Faults is a per-request deterministic chaos plan (only honored
	// when the server runs with AllowFaults).
	Faults *FaultConfig `json:"faults,omitempty"`
}

// FaultConfig mirrors faults.Config on the wire.
type FaultConfig struct {
	Seed              int64   `json:"seed"`
	BuildFailRate     float64 `json:"buildFailRate,omitempty"`
	PanicRate         float64 `json:"panicRate,omitempty"`
	CrashRate         float64 `json:"crashRate,omitempty"`
	PermanentFraction float64 `json:"permanentFraction,omitempty"`
}

// InlineScene is a scene carried in the request body.
type InlineScene struct {
	Name    string         `json:"name"`
	Domain  string         `json:"domain"` // airport | suburban
	W       float64        `json:"w"`
	H       float64        `json:"h"`
	Regions []InlineRegion `json:"regions"`
}

// InlineRegion is one region of an inline scene.
type InlineRegion struct {
	ID        int          `json:"id"`
	Poly      [][2]float64 `json:"poly"`
	Intensity float64      `json:"intensity"`
	Texture   float64      `json:"texture"`
	Kind      string       `json:"kind,omitempty"` // ground truth (evaluation only)
}

// maxInlineRegions bounds one inline scene.
const maxInlineRegions = 2048

func (is *InlineScene) toScene() (*scene.Scene, error) {
	d := scene.Domain(is.Domain)
	if d == "" {
		d = scene.Airport
	}
	if d != scene.Airport && d != scene.Suburban {
		return nil, fmt.Errorf("serve: unknown domain %q", is.Domain)
	}
	if len(is.Regions) == 0 {
		return nil, errors.New("serve: inline scene has no regions")
	}
	if len(is.Regions) > maxInlineRegions {
		return nil, fmt.Errorf("serve: inline scene has %d regions (max %d)",
			len(is.Regions), maxInlineRegions)
	}
	name := is.Name
	if name == "" {
		name = "inline"
	}
	s := &scene.Scene{Name: name, Domain: d, W: is.W, H: is.H}
	seen := map[int]bool{}
	for _, r := range is.Regions {
		if seen[r.ID] {
			return nil, fmt.Errorf("serve: duplicate region id %d", r.ID)
		}
		seen[r.ID] = true
		reg, err := toRegion(r)
		if err != nil {
			return nil, err
		}
		s.Regions = append(s.Regions, reg)
	}
	return s, nil
}

// toRegion converts one wire region, shared by inline scenes and
// explicit session deltas.
func toRegion(r InlineRegion) (*scene.Region, error) {
	if len(r.Poly) < 3 {
		return nil, fmt.Errorf("serve: region %d: polygon needs >= 3 points", r.ID)
	}
	poly := make(geom.Polygon, len(r.Poly))
	for i, p := range r.Poly {
		poly[i] = geom.Point{X: p[0], Y: p[1]}
	}
	return &scene.Region{
		ID: r.ID, Poly: poly, TrueKind: scene.Kind(r.Kind),
		Intensity: r.Intensity, Texture: r.Texture,
	}, nil
}

// PhaseSummary is one phase of a Response: counts only, all of them
// deterministic for a fixed request (timing never appears here).
type PhaseSummary struct {
	Phase       string `json:"phase"`
	Tasks       int    `json:"tasks"`
	Firings     int    `json:"firings"`
	Hypotheses  int    `json:"hypotheses"`
	Attempts    int    `json:"attempts"`
	Retries     int    `json:"retries"`
	Recovered   int    `json:"recovered"`
	Quarantined int    `json:"quarantined"`
	Cancelled   int    `json:"cancelled"`
	Panics      int    `json:"panics"`
	Injected    int    `json:"injected"`
}

// Response is the /interpret result. Its JSON encoding is a pure
// function of the request (wall-clock time travels in the
// X-Elapsed-Ms header), so concurrent serving can be differentially
// tested against solo runs byte for byte.
type Response struct {
	Dataset      string            `json:"dataset"`
	Degraded     bool              `json:"degraded"` // ran in degraded (partial-tolerant) mode
	Completeness spam.Completeness `json:"completeness"`

	Fragments       int  `json:"fragments"`
	Pairs           int  `json:"pairs"`
	Outcomes        int  `json:"outcomes"`
	FunctionalAreas int  `json:"functionalAreas"`
	Predictions     int  `json:"predictions"`
	ModelFound      bool `json:"modelFound"`
	ModelScore      int  `json:"modelScore"`
	ModelFAs        int  `json:"modelFAs"`

	Phases []PhaseSummary `json:"phases"`
}

// Handler returns the server's HTTP interface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /interpret", s.handleInterpret)
	mux.HandleFunc("POST /session", s.handleSessionOpen)
	mux.HandleFunc("POST /update", s.handleSessionUpdate)
	mux.HandleFunc("DELETE /session/{id}", s.handleSessionClose)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// decodeBody decodes a bounded, strict JSON request body.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) *apiError {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return &apiError{status: 400, msg: "bad request body: " + err.Error()}
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) writeAPIError(w http.ResponseWriter, aerr *apiError) {
	if aerr.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(aerr.retryAfter))
	}
	writeJSON(w, aerr.status, errorBody{Error: aerr.msg})
}

// parseRequest decodes and validates an /interpret body.
func (s *Server) parseRequest(w http.ResponseWriter, r *http.Request) (*Request, *apiError) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, &apiError{status: 400, msg: "bad request body: " + err.Error()}
	}
	if (req.Scene == "") == (req.Inline == nil) {
		return nil, &apiError{status: 400, msg: "exactly one of scene or inline is required"}
	}
	if req.Level < 0 || req.Level > 3 {
		return nil, &apiError{status: 400, msg: "level must be 1..3"}
	}
	if req.Faults != nil && !s.cfg.AllowFaults {
		return nil, &apiError{status: 403, msg: "fault injection is disabled on this server"}
	}
	if req.Tenant == "" {
		req.Tenant = r.Header.Get("X-Tenant")
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	return &req, nil
}

// sharedRunner routes one request's phase queues to the server's
// shared pool under the request's own pool configuration.
type sharedRunner struct {
	sp  *tlp.SharedPool
	cfg *tlp.Pool
}

func (sr *sharedRunner) RunTasks(ctx context.Context, tasks []*tlp.Task) ([]*tlp.Result, error) {
	return sr.sp.Submit(ctx, sr.cfg, tasks)
}

// clusterRunner routes one request's phase queues to the cluster
// backend under the same per-request pool configuration.
type clusterRunner struct {
	cb  ClusterBackend
	cfg *tlp.Pool
}

func (cr *clusterRunner) RunTasks(ctx context.Context, tasks []*tlp.Task) ([]*tlp.Result, error) {
	return cr.cb.RunPool(ctx, cr.cfg, tasks)
}

func (s *Server) handleInterpret(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.requests.Add(1)
	req, aerr := s.parseRequest(w, r)
	if aerr != nil {
		s.rejected.Add(1)
		s.writeAPIError(w, aerr)
		return
	}

	release, aerr := s.admit(r.Context(), req.Tenant)
	if aerr != nil {
		s.writeAPIError(w, aerr)
		return
	}
	defer release()

	// Resolve the dataset only after admission: inline scenes build
	// real state and must not bypass the concurrency budget.
	var (
		ds  *spam.Dataset
		err error
	)
	if req.Scene != "" {
		ds, err = s.cache.namedDataset(req.Scene)
	} else {
		ds, err = s.cache.inlineDataset(req.Inline)
	}
	if err != nil {
		s.rejected.Add(1)
		s.writeAPIError(w, &apiError{status: 400, msg: err.Error()})
		return
	}

	// Request-scoped execution context: client disconnect plus the
	// (clamped) deadline.
	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMs > 0 {
		deadline = time.Duration(req.DeadlineMs) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	var plan *faults.Plan
	if req.Faults != nil {
		plan = faults.New(faults.Config{
			Seed:              req.Faults.Seed,
			BuildFailRate:     req.Faults.BuildFailRate,
			PanicRate:         req.Faults.PanicRate,
			CrashRate:         req.Faults.CrashRate,
			PermanentFraction: req.Faults.PermanentFraction,
		})
	}
	poolCfg := &tlp.Pool{
		Policy:       s.cfg.Sched,
		Faults:       plan,
		MaxRetries:   req.MaxRetries,
		RetryBackoff: s.cfg.RetryBackoff,
		FiringBudget: req.FiringBudget,
	}
	opt := spam.InterpretOptions{
		Level:    spam.Level(req.Level),
		RTFBatch: req.RTFBatch,
		ReEntry:  req.ReEntry,
		Degraded: req.Degraded,
		Runner:   &sharedRunner{sp: s.pool, cfg: poolCfg},
	}
	// Named scenes can ship: the workers regenerate them from the specs
	// registered at startup. Inline scenes exist only in this process,
	// so they stay on the shared pool.
	if s.cfg.Cluster != nil && req.Scene != "" {
		opt.Runner = &clusterRunner{cb: s.cfg.Cluster, cfg: poolCfg}
	}

	in, ierr := ds.InterpretContext(ctx, opt)
	elapsed := time.Since(start)
	status := http.StatusOK
	switch {
	case ierr == nil:
		s.completed.Add(1)
		if !in.Completeness.Complete {
			s.degraded.Add(1)
		}
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		s.timedOut.Add(1)
		status = http.StatusGatewayTimeout
	case ctx.Err() != nil:
		// Client went away; nobody reads this response.
		s.cancelled.Add(1)
		status = http.StatusServiceUnavailable
	default:
		s.failed.Add(1)
		status = http.StatusInternalServerError
	}
	rep := requestReport(s.seq.Add(1), req, in, status, elapsed)
	s.shipped.Add(rep.ShippedBytes)
	s.record(rep)

	w.Header().Set("X-Elapsed-Ms", strconv.FormatFloat(float64(elapsed)/float64(time.Millisecond), 'f', 3, 64))
	if ierr != nil {
		writeJSON(w, status, errorBody{Error: ierr.Error()})
		return
	}
	writeJSON(w, status, buildResponse(req, in))
}

func buildResponse(req *Request, in *spam.Interpretation) *Response {
	resp := &Response{
		Dataset:         in.Dataset.Name,
		Degraded:        req.Degraded,
		Completeness:    in.Completeness,
		Fragments:       len(in.Fragments),
		Pairs:           len(in.Pairs),
		Outcomes:        len(in.Outcomes),
		FunctionalAreas: len(in.FAs),
		Predictions:     len(in.Predictions),
		ModelFound:      in.ModelFound,
	}
	if in.ModelFound {
		resp.ModelScore = in.Model.Score
		resp.ModelFAs = in.Model.NFAs
	}
	for _, p := range in.Phases {
		ps := PhaseSummary{
			Phase:      p.Phase,
			Tasks:      p.Tasks,
			Firings:    p.Firings,
			Hypotheses: p.Hypotheses,
		}
		if rep := p.Report; rep != nil {
			ps.Attempts = rep.Attempts
			ps.Retries = rep.Retries
			ps.Recovered = rep.Recovered
			ps.Quarantined = rep.Quarantined
			ps.Cancelled = rep.Cancelled
			ps.Panics = rep.Panics
			ps.Injected = rep.Injected
		}
		resp.Phases = append(resp.Phases, ps)
	}
	return resp
}

func requestReport(seq int64, req *Request, in *spam.Interpretation, status int, elapsed time.Duration) RequestReport {
	name := req.Scene
	if name == "" && req.Inline != nil {
		name = "inline:" + req.Inline.Name
	}
	rep := RequestReport{
		Seq:       seq,
		Dataset:   name,
		Tenant:    req.Tenant,
		Status:    status,
		ElapsedMs: float64(elapsed) / float64(time.Millisecond),
	}
	if in != nil {
		rep.Complete = in.Completeness.Complete
		rep.Tasks = in.Completeness.Tasks
		rep.Cancelled = in.Completeness.Cancelled
		for _, p := range in.Phases {
			for _, r := range p.Results {
				if r != nil {
					rep.ShippedBytes += int64(r.ShipBytes)
				}
			}
			if p.Report == nil {
				continue
			}
			rep.Attempts += p.Report.Attempts
			rep.Retries += p.Report.Retries
			rep.Panics += p.Report.Panics
			rep.Quarantined += p.Report.Quarantined
		}
	}
	return rep
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.pool.Stats()
	body := map[string]any{
		"status":      "ok",
		"draining":    s.draining.Load(),
		"poolHealthy": s.pool.Healthy(),
		"quarantined": st.Quarantined,
	}
	code := http.StatusOK
	if !s.Healthy() {
		body["status"] = "unhealthy"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
