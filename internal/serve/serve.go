// Package serve implements interpretation-as-a-service: a long-running
// multi-tenant HTTP server that accepts concurrent scene-interpretation
// requests and runs them over shared compiled knowledge — one
// tlp.SharedPool of task processes, one compiled rule Programs per
// knowledge base, and one RegionStore per scene — with per-request
// isolation (context cancellation, deadlines, firing budgets, fault
// plans), admission control with load shedding, per-tenant fairness,
// and a graceful drain. See docs/SERVING.md.
package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"spampsm/internal/cluster"
	"spampsm/internal/tlp"
)


// Config sizes the server. The zero value is usable; withDefaults
// fills every knob.
type Config struct {
	// Workers is the shared pool's task-process count — the only place
	// execution parallelism is configured; per-request worker counts
	// are ignored.
	Workers int
	// QueueDepth bounds the shared pool's task backlog channel.
	QueueDepth int
	// MaxConcurrent is the number of interpretations allowed in flight
	// at once (the admission semaphore).
	MaxConcurrent int
	// MaxQueued bounds how many admitted requests may wait for the
	// semaphore; beyond it new arrivals are shed with 429 + Retry-After.
	MaxQueued int
	// PerTenantMax caps one tenant's in-flight interpretations so no
	// tenant can occupy every slot. 0 = no per-tenant cap.
	PerTenantMax int
	// DefaultDeadline applies when a request names none; MaxDeadline
	// clamps what a request may ask for.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// RetryBackoff is the shared pool's first-retry delay (doubling).
	RetryBackoff time.Duration
	// SceneCacheRegions caps the inline-scene dataset cache by total
	// cached region count (the RegionStore's size driver); least
	// recently used scenes are evicted past it.
	SceneCacheRegions int
	// QuarantineBudget is the shared pool's quarantine tolerance
	// before /healthz degrades. Only live, uninjected runs' quarantines
	// count — cancelled runs and request-supplied fault plans are
	// class-split out. 0 = no budget.
	QuarantineBudget int
	// AllowFaults accepts per-request fault-injection plans (chaos
	// testing and the load generator); off, fault fields are rejected.
	AllowFaults bool
	// RecentReports is how many per-request reports /stats retains.
	RecentReports int
	// MaxSessions bounds the live incremental sessions (POST /session);
	// opening one past the cap evicts the least recently used. Each
	// session retains every task's warm Rete engine, so the cap is the
	// server's main memory lever for the incremental path.
	MaxSessions int
	// Sched orders every submission's task queue (fifo, largest or
	// postorder — the shared policy vocabulary). Per-task results are
	// byte-identical across policies; only interleaving changes.
	Sched tlp.QueuePolicy
	// MemBudget bounds the aggregate modeled footprint of tasks in
	// flight across all requests (simulated bytes; 0 = unbounded),
	// throttling dispatch on the shared pool's memory gate.
	MemBudget float64
	// Cluster, when set, executes named-scene requests across worker
	// processes instead of the shared in-process pool (the cmd layer
	// wires a cluster.Coordinator in; see docs/CLUSTER.md). Inline
	// scenes and sessions always stay on the shared pool: inline state
	// exists only in this process, and sessions retain warm engines.
	Cluster ClusterBackend
}

// ClusterBackend runs one request's task queue under a per-request
// pool configuration on an external worker fleet. Satisfied by
// cluster.(*Coordinator).RunPool.
type ClusterBackend interface {
	RunPool(ctx context.Context, cfg *tlp.Pool, tasks []*tlp.Task) ([]*tlp.Result, error)
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 4
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64 * c.Workers
	}
	if c.MaxConcurrent < 1 {
		c.MaxConcurrent = 2 * c.Workers
	}
	if c.MaxQueued < 1 {
		c.MaxQueued = 4 * c.MaxConcurrent
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 60 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = time.Millisecond
	}
	if c.SceneCacheRegions < 1 {
		c.SceneCacheRegions = 4096
	}
	if c.RecentReports < 1 {
		c.RecentReports = 64
	}
	if c.MaxSessions < 1 {
		c.MaxSessions = 8
	}
	return c
}

// Server is one interpretation service instance.
type Server struct {
	cfg      Config
	pool     *tlp.SharedPool
	cache    *datasetCache
	sessions *sessionStore
	sem      chan struct{}
	queued   atomic.Int64

	draining atomic.Bool
	drainCh  chan struct{}
	inflight sync.WaitGroup

	tenantMu sync.Mutex
	tenants  map[string]int

	seq       atomic.Int64
	requests  atomic.Int64
	shipped   atomic.Int64 // cluster wire bytes across all requests
	completed atomic.Int64
	degraded  atomic.Int64
	failed    atomic.Int64
	timedOut  atomic.Int64
	cancelled atomic.Int64
	shed      atomic.Int64
	rejected  atomic.Int64 // malformed / invalid requests

	recentMu sync.Mutex
	recent   []RequestReport // ring, newest last
}

// New starts a server: shared pool up, caches empty.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	sp := tlp.NewSharedPool(cfg.Workers, cfg.QueueDepth)
	sp.QuarantineBudget = cfg.QuarantineBudget
	sp.MemBudget = cfg.MemBudget
	return &Server{
		cfg:      cfg,
		pool:     sp,
		cache:    newDatasetCache(cfg.SceneCacheRegions),
		sessions: newSessionStore(cfg.MaxSessions),
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		drainCh:  make(chan struct{}),
		tenants:  map[string]int{},
	}
}

// apiError is an admission or validation failure with its HTTP shape.
type apiError struct {
	status     int
	retryAfter int // seconds; 0 = no Retry-After header
	msg        string
}

func (e *apiError) Error() string { return e.msg }

// admit applies admission control for one request: drain state, the
// per-tenant cap, then the concurrency semaphore with a bounded wait
// queue. On success the returned release settles every counter; on
// failure the *apiError says how to answer.
func (s *Server) admit(ctx context.Context, tenant string) (release func(), aerr *apiError) {
	if s.draining.Load() {
		return nil, &apiError{status: 503, retryAfter: 5, msg: "server draining"}
	}
	s.tenantMu.Lock()
	if s.cfg.PerTenantMax > 0 && s.tenants[tenant] >= s.cfg.PerTenantMax {
		s.tenantMu.Unlock()
		s.shed.Add(1)
		return nil, &apiError{status: 429, retryAfter: 1,
			msg: "tenant concurrency limit reached"}
	}
	s.tenants[tenant]++
	s.tenantMu.Unlock()
	s.inflight.Add(1)
	undo := func() {
		s.tenantMu.Lock()
		s.tenants[tenant]--
		if s.tenants[tenant] == 0 {
			delete(s.tenants, tenant)
		}
		s.tenantMu.Unlock()
		s.inflight.Done()
	}

	select {
	case s.sem <- struct{}{}:
	default:
		// No free slot: wait, but only if the wait queue has room.
		if s.queued.Add(1) > int64(s.cfg.MaxQueued) {
			s.queued.Add(-1)
			undo()
			s.shed.Add(1)
			return nil, &apiError{status: 429, retryAfter: 1, msg: "server overloaded"}
		}
		select {
		case s.sem <- struct{}{}:
			s.queued.Add(-1)
		case <-ctx.Done():
			s.queued.Add(-1)
			undo()
			s.cancelled.Add(1)
			return nil, &apiError{status: 503, msg: "client gone while queued"}
		case <-s.drainCh:
			s.queued.Add(-1)
			undo()
			s.shed.Add(1)
			return nil, &apiError{status: 503, retryAfter: 5, msg: "server draining"}
		}
	}
	return func() {
		<-s.sem
		undo()
	}, nil
}

// Drain stops admitting new requests; in-flight ones run to completion.
func (s *Server) Drain() {
	if s.draining.CompareAndSwap(false, true) {
		close(s.drainCh)
	}
}

// Close drains, waits for every in-flight request, and shuts the
// shared pool down.
func (s *Server) Close() {
	s.Drain()
	s.inflight.Wait()
	s.pool.Close()
}

// Healthy reports whether the server should pass health checks:
// accepting requests and the shared pool within its quarantine budget.
func (s *Server) Healthy() bool {
	return !s.draining.Load() && s.pool.Healthy()
}

// RequestReport is the per-request accounting kept for /stats: which
// request, what it ran, how its tasks fared. Wall-clock time lives
// here (and in the X-Elapsed-Ms response header) — never in response
// bodies, which stay byte-deterministic.
type RequestReport struct {
	Seq         int64   `json:"seq"`
	Dataset     string  `json:"dataset"`
	Tenant      string  `json:"tenant"`
	Status      int     `json:"status"`
	Complete    bool    `json:"complete"`
	Tasks       int     `json:"tasks"`
	Attempts    int     `json:"attempts"`
	Retries     int     `json:"retries"`
	Panics      int     `json:"panics"`
	Quarantined int     `json:"quarantined"`
	Cancelled   int     `json:"cancelled"`
	// ShippedBytes is the request's total task+result wire traffic when
	// it ran on the cluster backend (0 for in-process execution).
	ShippedBytes int64   `json:"shippedBytes,omitempty"`
	ElapsedMs    float64 `json:"elapsedMs"`
}

func (s *Server) record(rep RequestReport) {
	s.recentMu.Lock()
	s.recent = append(s.recent, rep)
	if over := len(s.recent) - s.cfg.RecentReports; over > 0 {
		s.recent = append(s.recent[:0], s.recent[over:]...)
	}
	s.recentMu.Unlock()
}

// Stats is the /stats document.
type Stats struct {
	Healthy  bool `json:"healthy"`
	Draining bool `json:"draining"`

	Requests  int64 `json:"requests"`
	Completed int64 `json:"completed"`
	Degraded  int64 `json:"degraded"` // completed with partial results
	Failed    int64 `json:"failed"`
	TimedOut  int64 `json:"timedOut"`
	Cancelled int64 `json:"cancelled"`
	Shed      int64 `json:"shed"`
	Rejected  int64 `json:"rejected"`
	InFlight  int   `json:"inFlight"`
	Queued    int64 `json:"queued"`
	// ShippedBytes totals the cluster backend's wire traffic (0 when
	// serving purely in-process).
	ShippedBytes int64 `json:"shippedBytes"`
	// Cluster is the cluster backend's coordinator accounting — chunk
	// shipping, continuations, steals, and the per-worker breakdown.
	// Nil when serving purely in-process or when the backend exposes
	// no stats.
	Cluster *cluster.Stats `json:"cluster,omitempty"`

	Pool       tlp.Counters    `json:"pool"`
	SceneCache CacheStats      `json:"sceneCache"`
	Sessions   SessionStats    `json:"sessions"`
	Tenants    map[string]int  `json:"tenants,omitempty"`
	Recent     []RequestReport `json:"recent,omitempty"`
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	s.tenantMu.Lock()
	tenants := make(map[string]int, len(s.tenants))
	inFlight := 0
	for t, n := range s.tenants {
		tenants[t] = n
		inFlight += n
	}
	s.tenantMu.Unlock()
	s.recentMu.Lock()
	recent := append([]RequestReport(nil), s.recent...)
	s.recentMu.Unlock()
	// The backend interface is deliberately narrow (RunPool only); the
	// richer coordinator accounting is surfaced when the backend has it.
	var clusterStats *cluster.Stats
	if cs, ok := s.cfg.Cluster.(interface{ Stats() cluster.Stats }); ok {
		st := cs.Stats()
		clusterStats = &st
	}
	return Stats{
		Healthy:    s.Healthy(),
		Draining:   s.draining.Load(),
		Requests:   s.requests.Load(),
		Completed:  s.completed.Load(),
		Degraded:   s.degraded.Load(),
		Failed:     s.failed.Load(),
		TimedOut:   s.timedOut.Load(),
		Cancelled:  s.cancelled.Load(),
		Shed:         s.shed.Load(),
		Rejected:     s.rejected.Load(),
		InFlight:     inFlight,
		Queued:       s.queued.Load(),
		ShippedBytes: s.shipped.Load(),
		Cluster:      clusterStats,
		Pool:       s.pool.Stats(),
		SceneCache: s.cache.stats(),
		Sessions:   s.sessions.stats(),
		Tenants:    tenants,
		Recent:     recent,
	}
}
