// Session serving: long-lived incremental interpretations over HTTP.
//
// POST /session opens a spam.Session over a named or inline scene and
// returns its initial interpretation; POST /update folds a scene delta
// (explicit region lists, or server-generated churn for load drivers)
// into a live session and returns the incrementally updated
// interpretation — byte-identical to interpreting the updated scene
// from scratch, at cost proportional to the churn. DELETE /session/{id}
// closes one explicitly.
//
// Live sessions are LRU-bounded (Config.MaxSessions): opening a
// session past the cap evicts the least recently used one, dropping
// its cached engines. Each session is serialized by its own mutex —
// concurrent updates to one session queue behind each other — while
// distinct sessions update in parallel over the shared pool. A
// cancelled or failed update leaves the session consistent but cold:
// the phases that never ran are swept from the task cache and rebuild
// on the next update.
//
// Response bodies stay byte-deterministic for a fixed request
// sequence: wall-clock time travels in the X-Elapsed-Ms header, and
// the racey predicate-memo counters live in /stats, not in update
// responses.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"spampsm/internal/scene"
	"spampsm/internal/spam"
	"spampsm/internal/tlp"
)

// session is one live incremental interpretation.
type session struct {
	mu     sync.Mutex // serializes Interpret/Update on sess
	id     string
	name   string // dataset name for /stats
	tenant string
	sess   *spam.Session
}

// sessionStore is the server's LRU-bounded live-session table.
type sessionStore struct {
	mu      sync.Mutex
	max     int
	seq     int64
	byID    map[string]*session
	lastUse map[string]int64

	opened  int64
	evicted int64
	closed  int64
	updates int64
}

func newSessionStore(max int) *sessionStore {
	return &sessionStore{max: max, byID: map[string]*session{}, lastUse: map[string]int64{}}
}

// open registers a new session, evicting the least recently used one
// past the cap. Eviction only unlinks the table entry: a request
// mid-update on the evicted session holds its own pointer and
// completes normally; the engines are reclaimed when it finishes.
func (st *sessionStore) open(name, tenant string, sess *spam.Session) *session {
	st.mu.Lock()
	defer st.mu.Unlock()
	for len(st.byID) >= st.max {
		var lruID string
		var lruSeq int64
		for id := range st.byID {
			if u := st.lastUse[id]; lruID == "" || u < lruSeq {
				lruID, lruSeq = id, u
			}
		}
		delete(st.byID, lruID)
		delete(st.lastUse, lruID)
		st.evicted++
	}
	st.seq++
	s := &session{id: fmt.Sprintf("s%d", st.seq), name: name, tenant: tenant, sess: sess}
	st.byID[s.id] = s
	st.lastUse[s.id] = st.seq
	st.opened++
	return s
}

// get looks a session up and marks it most recently used.
func (st *sessionStore) get(id string) *session {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.byID[id]
	if s != nil {
		st.seq++
		st.lastUse[id] = st.seq
	}
	return s
}

func (st *sessionStore) close(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.byID[id]; !ok {
		return false
	}
	delete(st.byID, id)
	delete(st.lastUse, id)
	st.closed++
	return true
}

// SessionStat is one live session's /stats row.
type SessionStat struct {
	ID      string             `json:"id"`
	Dataset string             `json:"dataset"`
	Tenant  string             `json:"tenant"`
	Updates int                `json:"updates"`
	Regions int                `json:"regions"`
	Geo     spam.GeoMemoStats  `json:"geo"`
	Grid    spam.LiveGridStats `json:"grid"`
}

// SessionStats is the /stats session section.
type SessionStats struct {
	Open    int           `json:"open"`
	Opened  int64         `json:"opened"`
	Evicted int64         `json:"evicted"`
	Closed  int64         `json:"closed"`
	Updates int64         `json:"updates"`
	Live    []SessionStat `json:"live,omitempty"`
}

func (st *sessionStore) stats() SessionStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := SessionStats{
		Open:    len(st.byID),
		Opened:  st.opened,
		Evicted: st.evicted,
		Closed:  st.closed,
		Updates: st.updates,
	}
	for _, s := range st.byID {
		// Snapshot without taking s.mu: the store counters are only
		// read here, and a mid-update session's counters are merely a
		// moment older.
		out.Live = append(out.Live, SessionStat{
			ID:      s.id,
			Dataset: s.name,
			Tenant:  s.tenant,
			Updates: s.sess.Updates(),
			Regions: len(s.sess.Scene().Regions),
			Geo:     s.sess.Store().GeoStats(),
			Grid:    s.sess.GridStats(),
		})
	}
	return out
}

// SessionRequest is the POST /session wire format: the scene and
// interpretation options the session is pinned to.
type SessionRequest struct {
	Scene  string       `json:"scene,omitempty"`
	Inline *InlineScene `json:"inline,omitempty"`
	Tenant string       `json:"tenant,omitempty"`

	Level    int  `json:"level,omitempty"`
	RTFBatch int  `json:"rtfBatch,omitempty"`
	ReEntry  bool `json:"reentry,omitempty"`

	DeadlineMs int `json:"deadlineMs,omitempty"`
}

// DeltaRequest is the POST /update wire format. Exactly one of the
// explicit delta (removed/moved/added) or Churn must be present.
type DeltaRequest struct {
	Session string `json:"session"`
	Tenant  string `json:"tenant,omitempty"`

	Removed []int          `json:"removed,omitempty"`
	Moved   []InlineRegion `json:"moved,omitempty"`
	Added   []InlineRegion `json:"added,omitempty"`

	// Churn asks the server to generate the delta deterministically
	// against the session's current scene — the load generator's and
	// smoke tests' path.
	Churn *ChurnRequest `json:"churn,omitempty"`

	DeadlineMs int `json:"deadlineMs,omitempty"`
}

// ChurnRequest mirrors scene.Churn on the wire.
type ChurnRequest struct {
	Seed     uint64  `json:"seed"`
	Fraction float64 `json:"fraction"`
	// Occlusion/MisSeg/Emergent default to the standard update mix
	// (scene.DefaultChurn) when all are zero.
	Occlusion float64 `json:"occlusion,omitempty"`
	MisSeg    float64 `json:"misseg,omitempty"`
	Emergent  float64 `json:"emergent,omitempty"`
}

// UpdateSummary is spam.UpdateReport's deterministic wire subset: no
// wall clock (X-Elapsed-Ms), no concurrency-dependent memo counters
// (/stats).
type UpdateSummary struct {
	Update        int     `json:"update"`
	DeltaSize     int     `json:"deltaSize"`
	Tasks         int     `json:"tasks"`
	Reused        int     `json:"reused"`
	Rerun         int     `json:"rerun"`
	Fresh         int     `json:"fresh"`
	Dropped       int     `json:"dropped"`
	SeedsDiffed   int     `json:"seedsDiffed"`
	DiffInstr     float64 `json:"diffInstr"`
	RetractedWMEs int     `json:"retractedWMEs"`
	UpdateInstr   float64 `json:"updateInstr"`
}

func summarize(rep *spam.UpdateReport) UpdateSummary {
	return UpdateSummary{
		Update:        rep.Update,
		DeltaSize:     rep.DeltaSize,
		Tasks:         rep.Tasks,
		Reused:        rep.Reused,
		Rerun:         rep.Rerun,
		Fresh:         rep.Fresh,
		Dropped:       rep.Dropped,
		SeedsDiffed:   rep.SeedsDiffed,
		DiffInstr:     rep.DiffInstr,
		RetractedWMEs: rep.RetractedWMEs,
		UpdateInstr:   rep.UpdateInstr,
	}
}

// SessionResponse answers both /session and /update: the session
// handle, the incremental accounting, and the interpretation summary.
type SessionResponse struct {
	Session string        `json:"session"`
	Report  UpdateSummary `json:"report"`
	Result  *Response     `json:"result"`
}

func (s *Server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.requests.Add(1)
	var req SessionRequest
	if aerr := decodeBody(w, r, &req); aerr != nil {
		s.rejected.Add(1)
		s.writeAPIError(w, aerr)
		return
	}
	if (req.Scene == "") == (req.Inline == nil) {
		s.rejected.Add(1)
		s.writeAPIError(w, &apiError{status: 400, msg: "exactly one of scene or inline is required"})
		return
	}
	if req.Level < 0 || req.Level > 3 {
		s.rejected.Add(1)
		s.writeAPIError(w, &apiError{status: 400, msg: "level must be 1..3"})
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = r.Header.Get("X-Tenant")
	}
	if tenant == "" {
		tenant = "default"
	}

	release, aerr := s.admit(r.Context(), tenant)
	if aerr != nil {
		s.writeAPIError(w, aerr)
		return
	}
	defer release()

	var (
		ds  *spam.Dataset
		err error
	)
	if req.Scene != "" {
		ds, err = s.cache.namedDataset(req.Scene)
	} else {
		ds, err = s.cache.inlineDataset(req.Inline)
	}
	if err != nil {
		s.rejected.Add(1)
		s.writeAPIError(w, &apiError{status: 400, msg: err.Error()})
		return
	}

	// The session clones the scene, so sharing the cached dataset is
	// safe; its updates never touch the cache's copy. The runner pins
	// the session's task queues to the shared pool for its lifetime.
	opt := spam.InterpretOptions{
		Level:    spam.Level(req.Level),
		RTFBatch: req.RTFBatch,
		ReEntry:  req.ReEntry,
		Runner: &sharedRunner{sp: s.pool, cfg: &tlp.Pool{
			Policy:       s.cfg.Sched,
			RetryBackoff: s.cfg.RetryBackoff,
		}},
	}
	sess := s.sessions.open(datasetName(req.Scene, req.Inline), tenant, spam.NewSession(ds, opt))
	sess.mu.Lock()
	defer sess.mu.Unlock()

	ctx, cancel := s.requestContext(r, req.DeadlineMs)
	defer cancel()
	in, rep, ierr := sess.sess.Interpret(ctx)
	s.finishSessionRun(w, start, sess, in, rep, ierr, ctx.Err() != nil)
}

func (s *Server) handleSessionUpdate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.requests.Add(1)
	var req DeltaRequest
	if aerr := decodeBody(w, r, &req); aerr != nil {
		s.rejected.Add(1)
		s.writeAPIError(w, aerr)
		return
	}
	explicit := len(req.Removed)+len(req.Moved)+len(req.Added) > 0
	if req.Churn != nil && explicit {
		s.rejected.Add(1)
		s.writeAPIError(w, &apiError{status: 400, msg: "churn and an explicit delta are mutually exclusive"})
		return
	}
	sess := s.sessions.get(req.Session)
	if sess == nil {
		s.rejected.Add(1)
		s.writeAPIError(w, &apiError{status: 404, msg: "unknown session (expired or never opened)"})
		return
	}

	release, aerr := s.admit(r.Context(), sess.tenant)
	if aerr != nil {
		s.writeAPIError(w, aerr)
		return
	}
	defer release()

	sess.mu.Lock()
	defer sess.mu.Unlock()

	// The delta is built under the session lock: churn reads the
	// session's current scene, and explicit deltas validate against it
	// (scene.Apply rejects unknown or colliding IDs).
	var delta *scene.Delta
	if req.Churn != nil {
		c := scene.Churn{
			Seed: req.Churn.Seed, Fraction: req.Churn.Fraction,
			Occlusion: req.Churn.Occlusion, MisSeg: req.Churn.MisSeg,
			Emergent: req.Churn.Emergent,
		}
		if c.Occlusion == 0 && c.MisSeg == 0 && c.Emergent == 0 {
			c = scene.DefaultChurn(req.Churn.Seed, req.Churn.Fraction)
		}
		delta = sess.sess.Scene().Churn(c)
	} else {
		var err error
		if delta, err = toDelta(&req); err != nil {
			s.rejected.Add(1)
			s.writeAPIError(w, &apiError{status: 400, msg: err.Error()})
			return
		}
	}

	ctx, cancel := s.requestContext(r, req.DeadlineMs)
	defer cancel()
	in, rep, ierr := sess.sess.Update(ctx, delta)
	if ierr != nil && rep == nil {
		// The delta was rejected before anything ran (unknown or
		// colliding region IDs); the session scene is untouched.
		s.rejected.Add(1)
		s.writeAPIError(w, &apiError{status: 400, msg: ierr.Error()})
		return
	}
	if ierr == nil {
		s.sessions.mu.Lock()
		s.sessions.updates++
		s.sessions.mu.Unlock()
	}
	s.finishSessionRun(w, start, sess, in, rep, ierr, ctx.Err() != nil)
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	id := r.PathValue("id")
	if !s.sessions.close(id) {
		s.rejected.Add(1)
		s.writeAPIError(w, &apiError{status: 404, msg: "unknown session"})
		return
	}
	s.completed.Add(1)
	writeJSON(w, http.StatusOK, map[string]string{"closed": id})
}

// finishSessionRun settles counters and writes the response for one
// session interpretation run (initial or update).
func (s *Server) finishSessionRun(w http.ResponseWriter, start time.Time, sess *session,
	in *spam.Interpretation, rep *spam.UpdateReport, ierr error, ctxDone bool) {
	elapsed := time.Since(start)
	w.Header().Set("X-Elapsed-Ms", strconv.FormatFloat(float64(elapsed)/float64(time.Millisecond), 'f', 3, 64))
	switch {
	case ierr == nil:
		s.completed.Add(1)
	case errors.Is(ierr, context.DeadlineExceeded) || ctxDone:
		s.timedOut.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: ierr.Error()})
		return
	default:
		s.failed.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: ierr.Error()})
		return
	}
	req := &Request{} // session responses never run degraded
	writeJSON(w, http.StatusOK, &SessionResponse{
		Session: sess.id,
		Report:  summarize(rep),
		Result:  buildResponse(req, in),
	})
}

// requestContext derives the run context: client disconnect plus the
// clamped deadline.
func (s *Server) requestContext(r *http.Request, deadlineMs int) (context.Context, context.CancelFunc) {
	deadline := s.cfg.DefaultDeadline
	if deadlineMs > 0 {
		deadline = time.Duration(deadlineMs) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	return context.WithTimeout(r.Context(), deadline)
}

// toDelta converts an explicit wire delta to a scene delta.
func toDelta(req *DeltaRequest) (*scene.Delta, error) {
	d := &scene.Delta{Removed: req.Removed}
	for _, ir := range req.Moved {
		reg, err := toRegion(ir)
		if err != nil {
			return nil, err
		}
		d.Moved = append(d.Moved, reg)
	}
	for _, ir := range req.Added {
		reg, err := toRegion(ir)
		if err != nil {
			return nil, err
		}
		d.Added = append(d.Added, reg)
	}
	return d, nil
}

func datasetName(named string, inline *InlineScene) string {
	if named != "" {
		return named
	}
	if inline != nil {
		return "inline:" + inline.Name
	}
	return "inline"
}
