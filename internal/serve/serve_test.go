package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testServer builds a server plus its httptest front end. Callers own
// Close on both (in that order: HTTP first).
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/interpret", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// tinyScene builds a small inline airport scene: a long thin runway
// strip, some buildings and grass — enough for every phase to do real
// work without the calibrated datasets' cost.
func tinyScene(name string, shift float64) *InlineScene {
	rect := func(id int, x, y, w, h, intensity, texture float64) InlineRegion {
		return InlineRegion{
			ID:        id,
			Poly:      [][2]float64{{x, y}, {x + w, y}, {x + w, y + h}, {x, y + h}},
			Intensity: intensity,
			Texture:   texture,
		}
	}
	return &InlineScene{
		Name:   name,
		Domain: "airport",
		W:      4000, H: 3000,
		Regions: []InlineRegion{
			rect(1, 200+shift, 1400, 3000, 60, 170, 0.05), // runway-shaped
			rect(2, 400+shift, 1250, 900, 40, 160, 0.08),  // taxiway-shaped
			rect(3, 500+shift, 600, 260, 180, 120, 0.25),  // building-shaped
			rect(4, 900+shift, 600, 300, 200, 150, 0.15),  // apron-ish
			rect(5, 1400+shift, 500, 700, 500, 90, 0.55),  // grass-ish
			rect(6, 2300+shift, 700, 240, 160, 125, 0.22), // building-shaped
		},
	}
}

func sceneBody(t *testing.T, is *InlineScene, extra string) string {
	t.Helper()
	b, err := json.Marshal(is)
	if err != nil {
		t.Fatal(err)
	}
	if extra != "" {
		extra = "," + extra
	}
	return fmt.Sprintf(`{"inline":%s%s}`, b, extra)
}

func TestInterpretInlineScene(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL, sceneBody(t, tinyScene("t1", 0), ""))
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, body)
	}
	var out Response
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Completeness.Complete {
		t.Errorf("clean run not complete: %+v", out.Completeness)
	}
	if out.Fragments == 0 {
		t.Error("no fragments hypothesized")
	}
	if len(out.Phases) != 4 {
		t.Errorf("phases = %d, want 4", len(out.Phases))
	}
	if resp.Header.Get("X-Elapsed-Ms") == "" {
		t.Error("missing X-Elapsed-Ms header")
	}
}

// The same scene served twice hits the dataset cache the second time.
func TestInlineSceneCacheHit(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 2})
	body := sceneBody(t, tinyScene("hit", 0), "")
	b1Resp, b1 := postJSON(t, ts.URL, body)
	b2Resp, b2 := postJSON(t, ts.URL, body)
	if b1Resp.StatusCode != 200 || b2Resp.StatusCode != 200 {
		t.Fatalf("status = %d, %d", b1Resp.StatusCode, b2Resp.StatusCode)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("same request, different bodies")
	}
	cs := s.cache.stats()
	if cs.Hits == 0 {
		t.Errorf("no cache hit recorded: %+v", cs)
	}
	if cs.InlineScenes != 1 {
		t.Errorf("inline scenes cached = %d, want 1", cs.InlineScenes)
	}
}

// Satellite 2: the inline-scene cache evicts LRU entries past its
// region cap, and reports evictions.
func TestInlineSceneCacheEviction(t *testing.T) {
	// Each tiny scene has 6 regions; cap at 13 keeps two.
	s, ts := testServer(t, Config{Workers: 2, SceneCacheRegions: 13})
	for i := 0; i < 4; i++ {
		resp, body := postJSON(t, ts.URL, sceneBody(t, tinyScene(fmt.Sprintf("ev%d", i), float64(i)), ""))
		if resp.StatusCode != 200 {
			t.Fatalf("scene %d: status = %d, body = %s", i, resp.StatusCode, body)
		}
	}
	cs := s.cache.stats()
	if cs.Evictions < 2 {
		t.Errorf("evictions = %d, want >= 2", cs.Evictions)
	}
	if cs.Regions > 13 {
		t.Errorf("cached regions = %d, exceeds cap 13", cs.Regions)
	}
	if cs.InlineScenes > 2 {
		t.Errorf("inline scenes cached = %d, want <= 2", cs.InlineScenes)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1}) // AllowFaults off
	cases := []struct {
		name, body string
		status     int
	}{
		{"empty", `{}`, 400},
		{"both", `{"scene":"SF","inline":{"regions":[]}}`, 400},
		{"unknown scene", `{"scene":"LAX"}`, 400},
		{"bad level", `{"scene":"MOFF","level":9}`, 400},
		{"unknown field", `{"scene":"MOFF","bogus":1}`, 400},
		{"faults disabled", `{"scene":"MOFF","faults":{"seed":1}}`, 403},
		{"no regions", `{"inline":{"name":"x","domain":"airport","regions":[]}}`, 400},
		{"bad domain", `{"inline":{"name":"x","domain":"lunar","regions":[{"id":1,"poly":[[0,0],[1,0],[1,1]]}]}}`, 400},
		{"thin poly", `{"inline":{"name":"x","domain":"airport","regions":[{"id":1,"poly":[[0,0],[1,0]]}]}}`, 400},
		{"dup region", `{"inline":{"name":"x","domain":"airport","regions":[
			{"id":1,"poly":[[0,0],[1,0],[1,1]]},{"id":1,"poly":[[2,0],[3,0],[3,1]]}]}}`, 400},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d (body %s)", tc.name, resp.StatusCode, tc.status, body)
		}
	}
}

// Admission: with one slot and no wait queue to spare, concurrent
// arrivals past the bound are shed with 429 + Retry-After.
func TestAdmissionShedsPastQueue(t *testing.T) {
	s := New(Config{Workers: 1, MaxConcurrent: 1, MaxQueued: 1})
	defer s.Close()

	rel1, aerr := s.admit(context.Background(), "a")
	if aerr != nil {
		t.Fatal(aerr)
	}
	// Fills the single wait-queue slot.
	queuedGot := make(chan func(), 1)
	go func() {
		rel2, aerr2 := s.admit(context.Background(), "a")
		if aerr2 != nil {
			t.Error(aerr2)
		}
		queuedGot <- rel2
	}()
	// Wait until the queue slot is actually occupied.
	for i := 0; s.queued.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if _, aerr3 := s.admit(context.Background(), "a"); aerr3 == nil {
		t.Fatal("third admit should shed")
	} else if aerr3.status != 429 || aerr3.retryAfter == 0 {
		t.Fatalf("shed error = %+v, want 429 with Retry-After", aerr3)
	}
	rel1()
	rel2 := <-queuedGot
	rel2()
	if got := s.Stats().Shed; got != 1 {
		t.Errorf("shed = %d, want 1", got)
	}
}

// A queued request whose client disconnects leaves the queue.
func TestAdmissionQueuedClientGone(t *testing.T) {
	s := New(Config{Workers: 1, MaxConcurrent: 1, MaxQueued: 4})
	defer s.Close()
	rel1, aerr := s.admit(context.Background(), "a")
	if aerr != nil {
		t.Fatal(aerr)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan *apiError, 1)
	go func() {
		_, aerr := s.admit(ctx, "a")
		errc <- aerr
	}()
	for i := 0; s.queued.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if aerr := <-errc; aerr == nil || aerr.status != 503 {
		t.Fatalf("queued-then-cancelled admit = %+v, want 503", aerr)
	}
	rel1()
	if s.queued.Load() != 0 {
		t.Error("queue counter leaked")
	}
}

// Per-tenant fairness: one tenant cannot occupy every slot.
func TestPerTenantFairness(t *testing.T) {
	s := New(Config{Workers: 1, MaxConcurrent: 8, PerTenantMax: 2})
	defer s.Close()
	relA1, aerr := s.admit(context.Background(), "a")
	if aerr != nil {
		t.Fatal(aerr)
	}
	relA2, aerr := s.admit(context.Background(), "a")
	if aerr != nil {
		t.Fatal(aerr)
	}
	if _, aerr := s.admit(context.Background(), "a"); aerr == nil || aerr.status != 429 {
		t.Fatalf("third same-tenant admit = %+v, want 429", aerr)
	}
	// A different tenant still gets in.
	relB, aerr := s.admit(context.Background(), "b")
	if aerr != nil {
		t.Fatalf("other tenant blocked: %v", aerr)
	}
	relA1()
	relA2()
	relB()
}

// Drain: new requests are refused, queued ones are released, in-flight
// ones finish, Close returns.
func TestDrain(t *testing.T) {
	s := New(Config{Workers: 1, MaxConcurrent: 1, MaxQueued: 4})
	rel1, aerr := s.admit(context.Background(), "a")
	if aerr != nil {
		t.Fatal(aerr)
	}
	errc := make(chan *apiError, 1)
	go func() {
		_, aerr := s.admit(context.Background(), "a")
		errc <- aerr
	}()
	for i := 0; s.queued.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	s.Drain()
	if aerr := <-errc; aerr == nil || aerr.status != 503 {
		t.Fatalf("queued admit under drain = %+v, want 503", aerr)
	}
	if _, aerr := s.admit(context.Background(), "x"); aerr == nil || aerr.status != 503 {
		t.Fatalf("post-drain admit = %+v, want 503", aerr)
	}
	if s.Healthy() {
		t.Error("draining server reports healthy")
	}
	rel1()
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return after drain")
	}
}

func TestHealthzAndStats(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	postJSON(t, ts.URL, sceneBody(t, tinyScene("st", 0), ""))
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Completed != 1 || !st.Healthy {
		t.Errorf("stats = %+v, want 1 completed, healthy", st)
	}
	if len(st.Recent) != 1 || st.Recent[0].Status != 200 {
		t.Errorf("recent reports = %+v, want one 200", st.Recent)
	}
	if st.Pool.TasksRun == 0 {
		t.Error("pool counters empty after a completed interpretation")
	}
	_ = s
}

// A hopeless deadline yields 504 and leaves the server healthy.
func TestDeadlineExceeded(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL, sceneBody(t, tinyScene("dl", 0), `"deadlineMs":1`))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, body)
	}
	if !s.Healthy() {
		t.Error("deadline-exceeded request left the server unhealthy")
	}
	// The pool must not have charged the abandonment as a quarantine.
	if st := s.pool.Stats(); st.Quarantined != 0 {
		t.Errorf("pool quarantined = %d after a deadline, want 0", st.Quarantined)
	}
}

// Degraded mode with a permanent fault plan returns a valid partial
// interpretation with an explicit completeness record.
func TestDegradedPartialResult(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2, AllowFaults: true})
	extra := `"degraded":true,"maxRetries":1,"faults":{"seed":9,"buildFailRate":0.4,"permanentFraction":1}`
	resp, body := postJSON(t, ts.URL, sceneBody(t, tinyScene("deg", 0), extra))
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, body)
	}
	var out Response
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Completeness.Complete {
		t.Fatalf("permanent faults at 40%% left the run complete: %+v", out.Completeness)
	}
	if out.Completeness.Failed == 0 || len(out.Completeness.FailedTasks) == 0 {
		t.Errorf("degraded run does not name its failed tasks: %+v", out.Completeness)
	}
	// Deterministic: the same degraded request repeats byte-identically.
	resp2, body2 := postJSON(t, ts.URL, sceneBody(t, tinyScene("deg", 0), extra))
	if resp2.StatusCode != 200 || !bytes.Equal(body, body2) {
		t.Error("degraded response not reproducible")
	}
}
