package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// chaosConfig sizes a server so that all chaos requests are admitted
// concurrently (no admission queueing — the test is about execution
// isolation, not shedding).
func chaosConfig() Config {
	return Config{Workers: 4, MaxConcurrent: 16, MaxQueued: 16, AllowFaults: true}
}

// TestChaosConcurrentIsolation is the per-request isolation proof: a
// mixed batch of simultaneous requests — named and inline scenes, one
// with injected faults, one degraded with permanent faults, one
// cancelled mid-flight — runs against one shared server, and every
// surviving request's response body is byte-identical to the same
// request served solo. One request's chaos plan, retries, or
// disappearance must leave no fingerprint on any other request.
func TestChaosConcurrentIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test is not short")
	}
	reqs := []struct {
		name, tenant, body string
	}{
		{"named-moff", "t1", `{"scene":"MOFF"}`},
		{"inline-a", "t1", sceneBody(t, tinyScene("ca", 0), "")},
		{"inline-b", "t2", sceneBody(t, tinyScene("cb", 7), "")},
		{"inline-reentry", "t2", sceneBody(t, tinyScene("cc", 13), `"reentry":true`)},
		{"inline-level2", "t3", sceneBody(t, tinyScene("cd", 19), `"level":2`)},
		{"inline-transient-faults", "t3", sceneBody(t, tinyScene("ce", 23),
			`"maxRetries":3,"faults":{"seed":41,"buildFailRate":0.3,"panicRate":0.1}`)},
		{"inline-degraded-permanent", "t4", sceneBody(t, tinyScene("cf", 29),
			`"degraded":true,"maxRetries":1,"faults":{"seed":9,"buildFailRate":0.4,"permanentFraction":1}`)},
		{"inline-g", "t4", sceneBody(t, tinyScene("cg", 31), "")},
	}

	do := func(ts *httptest.Server, tenant, body string) (int, []byte, error) {
		req, err := http.NewRequest("POST", ts.URL+"/interpret", strings.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", tenant)
		resp, err := ts.Client().Do(req)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp.StatusCode, b, err
	}

	// Solo baselines: a fresh server, each request alone.
	base := make([][]byte, len(reqs))
	{
		s, ts := testServer(t, chaosConfig())
		for i, r := range reqs {
			status, body, err := do(ts, r.tenant, r.body)
			if err != nil {
				t.Fatalf("solo %s: %v", r.name, err)
			}
			if status != 200 {
				t.Fatalf("solo %s: status = %d, body = %s", r.name, status, body)
			}
			base[i] = body
		}
		_ = s
	}

	// The chaos run: everything at once on a second fresh server, plus
	// a heavyweight named request whose client hangs up mid-flight.
	s, ts := testServer(t, chaosConfig())
	type outcome struct {
		status int
		body   []byte
		err    error
	}
	outs := make([]outcome, len(reqs))
	done := make(chan int, len(reqs))
	for i, r := range reqs {
		go func(i int, tenant, body string) {
			st, b, err := do(ts, tenant, body)
			outs[i] = outcome{st, b, err}
			done <- i
		}(i, r.tenant, r.body)
	}
	// The doomed request: DC (a long interpretation), cancelled while
	// its tasks are in flight on the shared pool.
	cancelDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/interpret", strings.NewReader(`{"scene":"DC"}`))
		if err != nil {
			cancelDone <- err
			return
		}
		req.Header.Set("X-Tenant", "doomed")
		time.AfterFunc(30*time.Millisecond, cancel)
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
		cancelDone <- nil
	}()

	for range reqs {
		<-done
	}
	if err := <-cancelDone; err != nil {
		t.Fatal(err)
	}

	for i, r := range reqs {
		o := outs[i]
		if o.err != nil {
			t.Errorf("chaos %s: %v", r.name, o.err)
			continue
		}
		if o.status != 200 {
			t.Errorf("chaos %s: status = %d, body = %s", r.name, o.status, o.body)
			continue
		}
		if !bytes.Equal(o.body, base[i]) {
			t.Errorf("chaos %s: response differs from solo run\nsolo:  %s\nchaos: %s",
				r.name, base[i], o.body)
		}
	}

	// The hangup was absorbed: the server stays healthy, the cancelled
	// request was counted, and nothing it abandoned was quarantined
	// against the pool's budget.
	st := s.Stats()
	if !st.Healthy {
		t.Error("server unhealthy after chaos batch")
	}
	if st.Cancelled != 1 {
		t.Errorf("cancelled requests = %d, want 1", st.Cancelled)
	}
	// Follow-up traffic still serves identically.
	status, body, err := do(ts, "late", reqs[1].body)
	if err != nil || status != 200 {
		t.Fatalf("post-chaos request: status = %d, err = %v", status, err)
	}
	if !bytes.Equal(body, base[1]) {
		t.Error("post-chaos response differs from solo baseline")
	}
}
