package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func postPath(t *testing.T, url, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func openSession(t *testing.T, url, body string) (string, *SessionResponse) {
	t.Helper()
	resp, b := postPath(t, url, "/session", body)
	if resp.StatusCode != 200 {
		t.Fatalf("POST /session: %d %s", resp.StatusCode, b)
	}
	var sr SessionResponse
	if err := json.Unmarshal(b, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Session == "" {
		t.Fatal("no session id in response")
	}
	return sr.Session, &sr
}

func updateSession(t *testing.T, url, body string) (*http.Response, *SessionResponse, []byte) {
	t.Helper()
	resp, b := postPath(t, url, "/update", body)
	var sr SessionResponse
	if resp.StatusCode == 200 {
		if err := json.Unmarshal(b, &sr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, &sr, b
}

// TestServeSessionDifferentialIncremental is the serving layer's
// incremental oracle: after each churn update, the session's response
// must match a fresh /session opened over... nothing — the session's
// own updated scene is server-side state, so instead the oracle
// re-runs the same open+update sequence on a second server and
// compares the two byte streams, then checks that a one-shot
// /interpret of the original scene matches the session's initial
// result. Determinism across servers plus the spam-layer differential
// oracle (which compares against true from-scratch runs) pins the
// serving path.
func TestServeSessionDifferentialIncremental(t *testing.T) {
	cfg := Config{Workers: 4}
	_, ts1 := testServer(t, cfg)
	_, ts2 := testServer(t, cfg)

	open := sessionBody(t, tinyScene("inc", 0), "")
	id1, first1 := openSession(t, ts1.URL, open)
	id2, first2 := openSession(t, ts2.URL, open)
	if !jsonEqual(t, first1.Result, first2.Result) {
		t.Fatal("initial session results differ across identical servers")
	}
	if first1.Report.Fresh != first1.Report.Tasks || first1.Report.Reused != 0 {
		t.Fatalf("initial run not fully fresh: %+v", first1.Report)
	}

	// The one-shot path over the same scene must agree with the
	// session's initial interpretation.
	resp, b := postJSON(t, ts1.URL, sceneBody(t, tinyScene("inc", 0), ""))
	if resp.StatusCode != 200 {
		t.Fatalf("/interpret: %d %s", resp.StatusCode, b)
	}
	var oneShot Response
	if err := json.Unmarshal(b, &oneShot); err != nil {
		t.Fatal(err)
	}
	if !jsonEqual(t, &oneShot, first1.Result) {
		t.Fatalf("one-shot and session-initial results differ:\n%s\nvs session:\n%+v", b, first1.Result)
	}

	for i, frac := range []float64{0.2, 0.4} {
		up1 := fmt.Sprintf(`{"session":%q,"churn":{"seed":%d,"fraction":%g}}`, id1, 90+i, frac)
		up2 := fmt.Sprintf(`{"session":%q,"churn":{"seed":%d,"fraction":%g}}`, id2, 90+i, frac)
		r1, sr1, b1 := updateSession(t, ts1.URL, up1)
		r2, sr2, b2 := updateSession(t, ts2.URL, up2)
		if r1.StatusCode != 200 || r2.StatusCode != 200 {
			t.Fatalf("update %d: %d %s / %d %s", i, r1.StatusCode, b1, r2.StatusCode, b2)
		}
		sr1.Session, sr2.Session = "", ""
		if !jsonEqual(t, sr1, sr2) {
			t.Fatalf("update %d diverged across identical servers:\n%s\nvs\n%s", i, b1, b2)
		}
		if sr1.Report.Update != i+1 {
			t.Fatalf("update %d numbered %d", i, sr1.Report.Update)
		}
	}
}

func jsonEqual(t *testing.T, a, b any) bool {
	t.Helper()
	ab, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(ab) == string(bb)
}

func sessionBody(t *testing.T, is *InlineScene, extra string) string {
	t.Helper()
	b, err := json.Marshal(is)
	if err != nil {
		t.Fatal(err)
	}
	if extra != "" {
		extra = "," + extra
	}
	return fmt.Sprintf(`{"inline":%s%s}`, b, extra)
}

// TestServeSessionUpdateReuse checks the incremental accounting over
// the wire: an empty explicit delta reuses everything; churn reuses
// some and reruns some.
func TestServeSessionUpdateReuse(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})
	id, _ := openSession(t, ts.URL, sessionBody(t, tinyScene("reuse", 0), ""))

	resp, sr, b := updateSession(t, ts.URL, fmt.Sprintf(`{"session":%q}`, id))
	if resp.StatusCode != 200 {
		t.Fatalf("empty update: %d %s", resp.StatusCode, b)
	}
	if sr.Report.Rerun != 0 || sr.Report.Fresh != 0 || sr.Report.Reused != sr.Report.Tasks {
		t.Fatalf("empty update did work: %+v", sr.Report)
	}
	if sr.Report.UpdateInstr != sr.Report.DiffInstr {
		t.Fatalf("empty update charged past the diff: %+v", sr.Report)
	}

	resp, sr, b = updateSession(t, ts.URL,
		fmt.Sprintf(`{"session":%q,"churn":{"seed":5,"fraction":0.34}}`, id))
	if resp.StatusCode != 200 {
		t.Fatalf("churn update: %d %s", resp.StatusCode, b)
	}
	if sr.Report.DeltaSize == 0 {
		t.Fatalf("churn produced no delta: %+v", sr.Report)
	}
	if sr.Report.Rerun+sr.Report.Fresh == 0 {
		t.Fatalf("churn update ran nothing: %+v", sr.Report)
	}
}

// TestServeSessionExplicitDelta drives /update with explicit region
// lists and checks validation errors surface as 400s.
func TestServeSessionExplicitDelta(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})
	id, _ := openSession(t, ts.URL, sessionBody(t, tinyScene("expl", 0), ""))

	// Remove region 6, add region 100 (a grass-ish blob).
	add := InlineRegion{
		ID:        100,
		Poly:      [][2]float64{{3000, 2000}, {3400, 2000}, {3400, 2400}, {3000, 2400}},
		Intensity: 88, Texture: 0.5,
	}
	ab, _ := json.Marshal(add)
	resp, sr, b := updateSession(t, ts.URL,
		fmt.Sprintf(`{"session":%q,"removed":[6],"added":[%s]}`, id, ab))
	if resp.StatusCode != 200 {
		t.Fatalf("explicit delta: %d %s", resp.StatusCode, b)
	}
	if sr.Report.DeltaSize != 2 {
		t.Fatalf("delta size %d, want 2", sr.Report.DeltaSize)
	}
	if sr.Report.Dropped == 0 {
		t.Fatalf("removal dropped no tasks: %+v", sr.Report)
	}

	// Removing an unknown region is a 400 and leaves the session usable.
	resp, _, _ = updateSession(t, ts.URL, fmt.Sprintf(`{"session":%q,"removed":[999]}`, id))
	if resp.StatusCode != 400 {
		t.Fatalf("unknown removal: %d, want 400", resp.StatusCode)
	}
	resp, _, b = updateSession(t, ts.URL, fmt.Sprintf(`{"session":%q}`, id))
	if resp.StatusCode != 200 {
		t.Fatalf("session unusable after bad delta: %d %s", resp.StatusCode, b)
	}

	// Churn plus an explicit delta is rejected.
	resp, _, _ = updateSession(t, ts.URL,
		fmt.Sprintf(`{"session":%q,"removed":[1],"churn":{"seed":1,"fraction":0.1}}`, id))
	if resp.StatusCode != 400 {
		t.Fatalf("churn+explicit: %d, want 400", resp.StatusCode)
	}
}

// TestServeSessionLRU proves the live-session cap: opening past
// MaxSessions evicts the least recently used, later updates to it 404,
// and /stats counts the eviction.
func TestServeSessionLRU(t *testing.T) {
	srv, ts := testServer(t, Config{Workers: 2, MaxSessions: 2})
	id1, _ := openSession(t, ts.URL, sessionBody(t, tinyScene("a", 0), ""))
	id2, _ := openSession(t, ts.URL, sessionBody(t, tinyScene("b", 40), ""))

	// Touch id1 so id2 is the LRU victim.
	if resp, _, b := updateSession(t, ts.URL, fmt.Sprintf(`{"session":%q}`, id1)); resp.StatusCode != 200 {
		t.Fatalf("touch: %d %s", resp.StatusCode, b)
	}
	id3, _ := openSession(t, ts.URL, sessionBody(t, tinyScene("c", 80), ""))

	if resp, _, _ := updateSession(t, ts.URL, fmt.Sprintf(`{"session":%q}`, id2)); resp.StatusCode != 404 {
		t.Fatalf("evicted session answered %d, want 404", resp.StatusCode)
	}
	for _, id := range []string{id1, id3} {
		if resp, _, b := updateSession(t, ts.URL, fmt.Sprintf(`{"session":%q}`, id)); resp.StatusCode != 200 {
			t.Fatalf("surviving session %s: %d %s", id, resp.StatusCode, b)
		}
	}

	st := srv.Stats()
	if st.Sessions.Open != 2 || st.Sessions.Evicted != 1 || st.Sessions.Opened != 3 {
		t.Fatalf("session stats: %+v", st.Sessions)
	}
	if len(st.Sessions.Live) != 2 {
		t.Fatalf("live sessions: %+v", st.Sessions.Live)
	}

	// Explicit close.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/session/"+id3, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("DELETE: %d", resp.StatusCode)
	}
	if resp, _, _ := updateSession(t, ts.URL, fmt.Sprintf(`{"session":%q}`, id3)); resp.StatusCode != 404 {
		t.Fatalf("closed session answered %d, want 404", resp.StatusCode)
	}
	if st := srv.Stats(); st.Sessions.Closed != 1 || st.Sessions.Open != 1 {
		t.Fatalf("after close: %+v", st.Sessions)
	}
}

// TestServeSessionConcurrentUpdates hammers several sessions from
// concurrent clients (run under -race via the oracle target): distinct
// sessions update in parallel, same-session updates serialize on the
// session mutex, and every response is well-formed.
func TestServeSessionConcurrentUpdates(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 4, MaxSessions: 4})
	var ids []string
	for i := 0; i < 3; i++ {
		id, _ := openSession(t, ts.URL, sessionBody(t, tinyScene(fmt.Sprintf("cc%d", i), float64(i*30)), ""))
		ids = append(ids, id)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for c := 0; c < 2; c++ {
		for i, id := range ids {
			wg.Add(1)
			go func(c, i int, id string) {
				defer wg.Done()
				for k := 0; k < 3; k++ {
					body := fmt.Sprintf(`{"session":%q,"churn":{"seed":%d,"fraction":0.25}}`, id, 7*c+k)
					resp, err := http.Post(ts.URL+"/update", "application/json", strings.NewReader(body))
					if err != nil {
						errs <- err.Error()
						return
					}
					b, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != 200 {
						errs <- fmt.Sprintf("session %s: %d %s", id, resp.StatusCode, b)
						return
					}
					var sr SessionResponse
					if err := json.Unmarshal(b, &sr); err != nil {
						errs <- err.Error()
						return
					}
					if sr.Report.Tasks == 0 {
						errs <- fmt.Sprintf("session %s: empty report %s", id, b)
						return
					}
				}
			}(c, i, id)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
