package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"spampsm/internal/scene"
	"spampsm/internal/spam"
)

// domainProgs is one knowledge base compiled once: every dataset of
// the domain — named or inline, across every request — shares these
// compiled rule programs and their Rete templates.
type domainProgs struct {
	once  sync.Once
	kb    *spam.KB
	progs *spam.Programs
	err   error
}

func (d *domainProgs) get(build func() *spam.KB) (*spam.KB, *spam.Programs, error) {
	d.once.Do(func() {
		d.kb = build()
		d.progs, d.err = spam.BuildPrograms(d.kb)
	})
	return d.kb, d.progs, d.err
}

// datasetCache shares interpretation state across requests at the two
// levels that dominate request setup cost:
//
//   - compiled Programs per knowledge base (airport, suburban),
//   - a *spam.Dataset (RegionStore: derived geometry, seed-WM and
//     geometry memo caches) per scene.
//
// Named scenes (SF/DC/MOFF) are pinned for the server's lifetime.
// Inline scenes land in an LRU bounded by total cached region count,
// so a client spamming distinct scenes cannot grow server memory
// without bound — past the cap, least recently used scenes are
// evicted (and rebuilt on re-arrival). Eviction counts surface in
// /stats.
type datasetCache struct {
	airport  domainProgs
	suburban domainProgs

	mu         sync.Mutex
	named      map[string]*spam.Dataset
	lru        *list.List // of *cacheEntry; front = most recent
	byKey      map[string]*list.Element
	regions    int // total regions across cached inline scenes
	capRegions int

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheEntry struct {
	key     string
	ds      *spam.Dataset
	regions int
}

func newDatasetCache(capRegions int) *datasetCache {
	return &datasetCache{
		named:      map[string]*spam.Dataset{},
		lru:        list.New(),
		byKey:      map[string]*list.Element{},
		capRegions: capRegions,
	}
}

// programs returns the domain's shared KB and compiled programs.
func (c *datasetCache) programs(d scene.Domain) (*spam.KB, *spam.Programs, error) {
	switch d {
	case scene.Airport:
		return c.airport.get(spam.AirportKB)
	case scene.Suburban:
		return c.suburban.get(spam.SuburbanKB)
	default:
		return nil, nil, fmt.Errorf("serve: unknown domain %q", d)
	}
}

// namedDataset returns the pinned dataset for SF, DC or MOFF,
// building it (over the shared airport programs) on first use.
func (c *datasetCache) namedDataset(name string) (*spam.Dataset, error) {
	c.mu.Lock()
	if ds, ok := c.named[name]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return ds, nil
	}
	c.mu.Unlock()

	var p scene.Params
	switch name {
	case "SF":
		p = scene.SF
	case "DC":
		p = scene.DC
	case "MOFF":
		p = scene.MOFF
	default:
		return nil, fmt.Errorf("serve: unknown dataset %q (want SF, DC or MOFF)", name)
	}
	kb, progs, err := c.programs(scene.Airport)
	if err != nil {
		return nil, err
	}
	c.misses.Add(1)
	ds := spam.NewDatasetWith(scene.Generate(p), kb, progs)

	c.mu.Lock()
	defer c.mu.Unlock()
	// Two requests may have built concurrently; first write pins.
	if prior, ok := c.named[name]; ok {
		return prior, nil
	}
	c.named[name] = ds
	return ds, nil
}

// inlineKey is the cache identity of an inline scene: a digest of its
// canonical JSON form, so byte-different requests describing the same
// scene share one dataset.
func inlineKey(is *InlineScene) string {
	b, _ := json.Marshal(is)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// inlineDataset returns (building and caching as needed) the dataset
// of an inline scene.
func (c *datasetCache) inlineDataset(is *InlineScene) (*spam.Dataset, error) {
	key := inlineKey(is)
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		ds := el.Value.(*cacheEntry).ds
		c.mu.Unlock()
		c.hits.Add(1)
		return ds, nil
	}
	c.mu.Unlock()

	s, err := is.toScene()
	if err != nil {
		return nil, err
	}
	kb, progs, err := c.programs(s.Domain)
	if err != nil {
		return nil, err
	}
	c.misses.Add(1)
	ds := spam.NewDatasetWith(s, kb, progs)

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		// Lost a build race; adopt the cached copy.
		c.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).ds, nil
	}
	n := len(s.Regions)
	if n > c.capRegions {
		// Bigger than the whole cache: serve it, never cache it.
		return ds, nil
	}
	for c.regions+n > c.capRegions {
		back := c.lru.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.byKey, ev.key)
		c.regions -= ev.regions
		c.evictions.Add(1)
	}
	c.byKey[key] = c.lru.PushFront(&cacheEntry{key: key, ds: ds, regions: n})
	c.regions += n
	return ds, nil
}

// CacheStats is the /stats view of the dataset cache.
type CacheStats struct {
	NamedScenes  int   `json:"namedScenes"`
	InlineScenes int   `json:"inlineScenes"`
	Regions      int   `json:"regions"` // cached inline regions (the size cap's unit)
	CapRegions   int   `json:"capRegions"`
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Evictions    int64 `json:"evictions"`
}

func (c *datasetCache) stats() CacheStats {
	c.mu.Lock()
	st := CacheStats{
		NamedScenes:  len(c.named),
		InlineScenes: c.lru.Len(),
		Regions:      c.regions,
		CapRegions:   c.capRegions,
	}
	c.mu.Unlock()
	st.Hits = c.hits.Load()
	st.Misses = c.misses.Load()
	st.Evictions = c.evictions.Load()
	return st
}
