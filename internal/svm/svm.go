// Package svm simulates the shared virtual memory (network shared
// memory) system of the paper's Section 7: the Mach netmemory server
// joining two 16-processor Encore Multimaxes into one address space,
// with ~50 ms page-fault service latency across the network, 8 KB
// pages, optional 64-byte segment shipping, and the false-contention
// pathology the authors had to engineer around.
//
// The simulator extends the machine package's queue-scheduling model:
// processors live on nodes; the task queue and dataset pages live on
// node 0; remote processors pay page-fault service time to fetch tasks
// and write results, and — once the cluster spans nodes — the queue
// page bounces between nodes on every fetch.
package svm

import (
	"container/heap"

	"spampsm/internal/faults"
	"spampsm/internal/machine"
	"spampsm/internal/stats"
)

// Config parameterizes the shared virtual memory system.
type Config struct {
	// FaultLatencyInstr is the service time of one cross-network page
	// fault in simulated instructions. The paper reports ~50 ms latency;
	// at 1.5 MIPS that is 75,000 instructions.
	FaultLatencyInstr float64
	// PageSize is the page size in bytes (8 KB on the Encores).
	PageSize int
	// TaskFetchFaults is the number of cross-network faults a *remote*
	// task process takes to pull one task's working memory.
	TaskFetchFaults float64
	// ResultFaults is the number of faults to write a task's results
	// back to the home node.
	ResultFaults float64
	// QueueBounceFaults is charged on every task fetch (local or
	// remote) once any remote process exists: the queue page's ownership
	// ping-pongs between the Encores.
	QueueBounceFaults float64
	// SegmentShipping enables the netmemory-server optimization the
	// designers added for SPAM/PSM: ship only modified 64-byte segments
	// instead of whole 8 KB pages, cutting fault service cost.
	SegmentShipping bool
	// FalseSharing models the system before data-structure layout was
	// fixed: unrelated objects share pages, so remote execution faults
	// continuously and initialization effectively stalls.
	FalseSharing bool

	// LossRate is the probability that one cross-network page-fault
	// service round is lost and must be retransmitted — the paper's
	// Section 7 network is exactly where real deployments fail. 0
	// models a reliable network.
	LossRate float64
	// RetryTimeoutInstr is the detection timeout before a lost service
	// round is retried, in simulated instructions (a timeout is
	// necessarily longer than the ~50 ms service time it guards).
	RetryTimeoutInstr float64
	// FaultPlan drives the deterministic loss draws; nil disables loss
	// regardless of LossRate, keeping chaos runs reproducible.
	FaultPlan *faults.Plan
}

// lossOverhead returns the retransmission cost charged to task i, and
// the number of retransmitted rounds.
func (c Config) lossOverhead(i int) (float64, int) {
	if c.FaultPlan == nil || c.LossRate <= 0 {
		return 0, 0
	}
	n := c.FaultPlan.LossCount("svm", i, c.LossRate, 8)
	return float64(n) * (c.RetryTimeoutInstr + c.faultCost()), n
}

// DefaultConfig reflects the paper's measured system after the false
// contention was engineered away and segment shipping was in place.
func DefaultConfig() Config {
	return Config{
		FaultLatencyInstr: machine.SecToInstr(0.050),
		PageSize:          8192,
		TaskFetchFaults:   6,
		ResultFaults:      2,
		QueueBounceFaults: 2,
		SegmentShipping:   true,
	}
}

// faultCost returns the effective cost of one fault under the config.
func (c Config) faultCost() float64 {
	cost := c.FaultLatencyInstr
	if !c.SegmentShipping {
		// Whole-page shipping roughly doubles effective service time for
		// SPAM's access patterns (transfer plus the extra invalidations
		// of unmodified data).
		cost *= 2
	}
	return cost
}

// falseSharingFactor inflates remote execution when unrelated objects
// share pages: the paper reports this "brought our system to a halt
// just during initialization".
const falseSharingFactor = 40.0

// Cluster describes the processor placement: Node0Procs task processes
// on the home Encore and RemoteProcs on the second Encore.
type Cluster struct {
	Node0Procs  int
	RemoteProcs int
}

// Total returns the total number of task processes.
func (cl Cluster) Total() int { return cl.Node0Procs + cl.RemoteProcs }

type svmProc struct {
	free   float64
	idx    int
	remote bool
}
type svmHeap []svmProc

func (h svmHeap) Len() int { return len(h) }
func (h svmHeap) Less(i, j int) bool {
	if h[i].free != h[j].free {
		return h[i].free < h[j].free
	}
	return h[i].idx < h[j].idx
}
func (h svmHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *svmHeap) Push(x interface{}) { *h = append(*h, x.(svmProc)) }
func (h *svmHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Run schedules the task durations over the cluster. Tasks are pulled
// from the shared queue in order by whichever task process frees first,
// exactly as in machine.Run, but with the SVM overheads applied.
func Run(durations []float64, cl Cluster, cfg Config, ov machine.Overheads) machine.Schedule {
	sched, _ := RunFaulty(durations, cl, cfg, ov)
	return sched
}

// RunFaulty is Run with recovery accounting: when the config carries a
// loss rate and fault plan, lost page-fault service rounds cost a
// timeout plus a retransmission, and the recovery columns report how
// much of the makespan they consumed.
func RunFaulty(durations []float64, cl Cluster, cfg Config, ov machine.Overheads) (machine.Schedule, stats.Recovery) {
	var rec stats.Recovery
	n := cl.Total()
	if n < 1 {
		n = 1
	}
	h := make(svmHeap, 0, n)
	busy := make([]float64, n)
	for i := 0; i < n; i++ {
		heap.Push(&h, svmProc{free: ov.Fork, idx: i, remote: i >= cl.Node0Procs})
	}
	clusterActive := cl.RemoteProcs > 0
	f := cfg.faultCost()
	per := make([]float64, len(durations))
	var makespan float64
	for i, d := range durations {
		p := heap.Pop(&h).(svmProc)
		cost := d + ov.QueuePerTask
		networked := false
		if clusterActive {
			cost += cfg.QueueBounceFaults * f
			networked = true
		}
		if p.remote {
			cost += (cfg.TaskFetchFaults + cfg.ResultFaults) * f
			networked = true
			if cfg.FalseSharing {
				cost += d * (falseSharingFactor - 1)
			}
		}
		// Message loss strikes only traffic that crosses the network.
		if networked {
			extra, lost := cfg.lossOverhead(i)
			cost += extra
			rec.Retransmits += lost
			rec.WastedInstr += extra
		}
		p.free += cost
		busy[p.idx] += cost
		per[i] = p.free
		if p.free > makespan {
			makespan = p.free
		}
		heap.Push(&h, p)
	}
	return machine.Schedule{Makespan: makespan, Busy: busy, PerTask: per}, rec
}

// RunSplitQueues schedules with one task queue per node instead of the
// single shared queue: tasks are dealt to the two queues proportionally
// to each node's processor count, queue pages stop bouncing between
// Encores, but the nodes can no longer balance load dynamically across
// the split. The paper reports separate experiments showing this
// "would not change the results" — the queue-contention savings and
// the load-balance loss roughly cancel at SPAM's task granularity.
func RunSplitQueues(durations []float64, cl Cluster, cfg Config, ov machine.Overheads) machine.Schedule {
	if cl.RemoteProcs == 0 {
		return Run(durations, cl, cfg, ov)
	}
	total := cl.Total()
	// Deal tasks proportionally to node processor counts, preserving
	// queue order within each node.
	var local, remote []float64
	acc := 0
	for _, d := range durations {
		acc += cl.Node0Procs
		if acc >= total {
			acc -= total
			local = append(local, d)
		} else {
			remote = append(remote, d)
		}
	}
	f := cfg.faultCost()
	// Local node: plain queue, no cross-network costs.
	sLocal := machine.Run(local, cl.Node0Procs, ov)
	// Remote node: local queue (no bounce), but the dataset still lives
	// on node 0, so every task pays the fetch/result faults.
	remCosted := make([]float64, len(remote))
	for i, d := range remote {
		extra, _ := cfg.lossOverhead(i)
		remCosted[i] = d + (cfg.TaskFetchFaults+cfg.ResultFaults)*f + extra
	}
	sRemote := machine.Run(remCosted, cl.RemoteProcs, ov)
	makespan := sLocal.Makespan
	if sRemote.Makespan > makespan {
		makespan = sRemote.Makespan
	}
	busy := append(append([]float64{}, sLocal.Busy...), sRemote.Busy...)
	per := append(append([]float64{}, sLocal.PerTask...), sRemote.PerTask...)
	return machine.Schedule{Makespan: makespan, Busy: busy, PerTask: per}
}

// Speedup returns the baseline (one local task process, no SVM
// overheads) time divided by the cluster's time.
func Speedup(durations []float64, cl Cluster, cfg Config, ov machine.Overheads) float64 {
	base := machine.Run(durations, 1, ov).Makespan
	t := Run(durations, cl, cfg, ov).Makespan
	if t <= 0 {
		return 0
	}
	return base / t
}

// TranslationLoss estimates the paper's "loss of about 1.5 processors":
// for a cluster spanning nodes, it finds how many pure-TLP processors
// give the same makespan, and returns total processors minus that
// equivalent. The search is over fractional processors by linear
// interpolation between integer points.
func TranslationLoss(durations []float64, cl Cluster, cfg Config, ov machine.Overheads) float64 {
	if cl.RemoteProcs == 0 {
		return 0
	}
	target := Run(durations, cl, cfg, ov).Makespan
	total := cl.Total()
	// Pure-TLP makespans at integer processor counts.
	prev := machine.Run(durations, 1, ov).Makespan
	if target >= prev {
		return float64(total) - 1
	}
	for p := 2; p <= total; p++ {
		cur := machine.Run(durations, p, ov).Makespan
		if cur <= target {
			// Equivalent lies in (p-1, p]; interpolate on 1/makespan
			// (throughput is roughly linear in processors here).
			den := 1/cur - 1/prev
			frac := 1.0
			if den > 0 {
				frac = (1/target - 1/prev) / den
			}
			equiv := float64(p-1) + frac
			return float64(total) - equiv
		}
		prev = cur
	}
	return 0
}
