package svm

import (
	"fmt"
	"testing"

	"spampsm/internal/machine"
)

// uniform returns n task durations of d instructions each.
func uniform(n int, d float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d
	}
	return out
}

// varied returns n task durations averaging d with realistic spread
// (CoV ≈ 0.4, like the paper's Level 2/3 measurements). Uniform
// durations quantize the makespan and hide small overheads.
func varied(n int, d float64) []float64 {
	out := make([]float64, n)
	s := uint64(12345)
	for i := range out {
		s = s*6364136223846793005 + 1442695040888963407
		frac := float64(s>>11) / float64(1<<53) // [0,1)
		out[i] = d * (0.3 + 1.4*frac)
	}
	return out
}

// taskInstr is a representative LCC task duration: ~5 simulated
// seconds, as in the paper's Level 3 measurements.
var taskInstr = machine.SecToInstr(5)

func TestLocalOnlyMatchesMachine(t *testing.T) {
	durs := uniform(40, taskInstr)
	ov := machine.Overheads{QueuePerTask: 1000}
	s1 := Run(durs, Cluster{Node0Procs: 6}, DefaultConfig(), ov)
	s2 := machine.Run(durs, 6, ov)
	if s1.Makespan != s2.Makespan {
		t.Errorf("local-only SVM (%v) must equal pure machine (%v)", s1.Makespan, s2.Makespan)
	}
}

func TestRemoteProcsPayOverheads(t *testing.T) {
	durs := uniform(60, taskInstr)
	ov := machine.Overheads{QueuePerTask: 1000}
	cfg := DefaultConfig()
	local := Run(durs, Cluster{Node0Procs: 8}, cfg, ov)
	split := Run(durs, Cluster{Node0Procs: 4, RemoteProcs: 4}, cfg, ov)
	if split.Makespan <= local.Makespan {
		t.Errorf("cross-node run (%v) should be slower than same-size local run (%v)",
			split.Makespan, local.Makespan)
	}
}

func TestSpeedupStillRealAcrossNodes(t *testing.T) {
	// The paper's headline SVM result: real speedups are possible with
	// the shared virtual memory system — more remote processors still
	// help, despite the translation.
	durs := uniform(200, taskInstr)
	ov := machine.Overheads{QueuePerTask: 1000}
	cfg := DefaultConfig()
	s13 := Speedup(durs, Cluster{Node0Procs: 13}, cfg, ov)
	s17 := Speedup(durs, Cluster{Node0Procs: 13, RemoteProcs: 4}, cfg, ov)
	s22 := Speedup(durs, Cluster{Node0Procs: 13, RemoteProcs: 9}, cfg, ov)
	if s17 <= s13 {
		t.Errorf("4 remote procs should beat 13 local alone: %v vs %v", s17, s13)
	}
	if s22 <= s17 {
		t.Errorf("more remote procs should keep helping: %v vs %v", s22, s17)
	}
	if s22 > 22 {
		t.Errorf("speedup %v cannot exceed processor count", s22)
	}
}

func TestTranslationLossAbout1ToTwoProcs(t *testing.T) {
	// The observed "translational effect ... equivalent to the loss of
	// about 1.5 processors".
	durs := varied(400, taskInstr)
	ov := machine.Overheads{QueuePerTask: 1000}
	cfg := DefaultConfig()
	for _, remote := range []int{3, 6, 9} {
		loss := TranslationLoss(durs, Cluster{Node0Procs: 13, RemoteProcs: remote}, cfg, ov)
		if loss < 0.5 || loss > 3.0 {
			t.Errorf("remote=%d: translation loss = %.2f processors, want ~1.5", remote, loss)
		}
	}
	if got := TranslationLoss(durs, Cluster{Node0Procs: 5}, cfg, ov); got != 0 {
		t.Errorf("no remote procs → loss 0, got %v", got)
	}
}

func TestFalseSharingStalls(t *testing.T) {
	durs := uniform(60, taskInstr)
	ov := machine.Overheads{QueuePerTask: 1000}
	good := DefaultConfig()
	bad := good
	bad.FalseSharing = true
	cl := Cluster{Node0Procs: 13, RemoteProcs: 5}
	sGood := Speedup(durs, cl, good, ov)
	sBad := Speedup(durs, cl, bad, ov)
	if sBad >= sGood/2 {
		t.Errorf("false sharing should be ruinous: good %v, bad %v", sGood, sBad)
	}
	// Before the fix, spanning nodes is worse than staying local.
	sLocal := Speedup(durs, Cluster{Node0Procs: 13}, good, ov)
	if sBad >= sLocal {
		t.Errorf("false sharing across nodes (%v) should lose to 13 local procs (%v)", sBad, sLocal)
	}
}

func TestSegmentShippingHelps(t *testing.T) {
	durs := uniform(120, taskInstr)
	ov := machine.Overheads{QueuePerTask: 1000}
	with := DefaultConfig()
	without := with
	without.SegmentShipping = false
	cl := Cluster{Node0Procs: 13, RemoteProcs: 6}
	sWith := Speedup(durs, cl, with, ov)
	sWithout := Speedup(durs, cl, without, ov)
	if sWith <= sWithout {
		t.Errorf("segment shipping should improve speedup: with %v, without %v", sWith, sWithout)
	}
}

func TestClusterTotal(t *testing.T) {
	if (Cluster{Node0Procs: 13, RemoteProcs: 9}).Total() != 22 {
		t.Error("total = 22")
	}
}

func TestAbruptChangeAtNodeBoundary(t *testing.T) {
	// Figure 9's shape: the curve changes abruptly when the first
	// remote process is added — speedup(14 procs split) is close to or
	// below speedup(13 local), then grows again.
	durs := uniform(400, taskInstr)
	ov := machine.Overheads{QueuePerTask: 1000}
	cfg := DefaultConfig()
	s13 := Speedup(durs, Cluster{Node0Procs: 13}, cfg, ov)
	s14 := Speedup(durs, Cluster{Node0Procs: 13, RemoteProcs: 1}, cfg, ov)
	s15 := Speedup(durs, Cluster{Node0Procs: 13, RemoteProcs: 2}, cfg, ov)
	gainAcross := s14 - s13
	gainLocal := Speedup(durs, Cluster{Node0Procs: 13}, cfg, ov) -
		Speedup(durs, Cluster{Node0Procs: 12}, cfg, ov)
	if gainAcross >= gainLocal {
		t.Errorf("first remote proc gain (%v) should be well below a local proc gain (%v)",
			gainAcross, gainLocal)
	}
	if s15 <= s14 {
		t.Errorf("second remote proc should still help: %v vs %v", s15, s14)
	}
}

func TestSplitQueuesComparable(t *testing.T) {
	// The paper's separate-queues experiment: per-Encore task queues
	// do not change the results materially.
	durs := varied(400, taskInstr)
	ov := machine.Overheads{QueuePerTask: 1000}
	cfg := DefaultConfig()
	cl := Cluster{Node0Procs: 13, RemoteProcs: 9}
	shared := Run(durs, cl, cfg, ov).Makespan
	split := RunSplitQueues(durs, cl, cfg, ov).Makespan
	ratio := split / shared
	if ratio < 0.9 || ratio > 1.15 {
		t.Errorf("split queues should be within ~10%% of shared: ratio %.3f", ratio)
	}
	// All tasks accounted for.
	if got := len(RunSplitQueues(durs, cl, cfg, ov).PerTask); got != len(durs) {
		t.Errorf("per-task records = %d, want %d", got, len(durs))
	}
	// With no remote processes, split falls back to shared.
	one := Cluster{Node0Procs: 8}
	if RunSplitQueues(durs, one, cfg, ov).Makespan != Run(durs, one, cfg, ov).Makespan {
		t.Error("single-node split must equal shared")
	}
}

func TestRunDeterministic(t *testing.T) {
	durs := uniform(50, taskInstr)
	cl := Cluster{Node0Procs: 7, RemoteProcs: 3}
	cfg := DefaultConfig()
	ov := machine.Overheads{QueuePerTask: 500}
	a := Run(durs, cl, cfg, ov)
	b := Run(durs, cl, cfg, ov)
	if a.Makespan != b.Makespan || fmt.Sprint(a.Busy) != fmt.Sprint(b.Busy) {
		t.Error("SVM schedule must be deterministic")
	}
}
