package svm

import (
	"fmt"
	"math"
	"testing"

	"spampsm/internal/faults"
	"spampsm/internal/machine"
)

// uniform returns n task durations of d instructions each.
func uniform(n int, d float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d
	}
	return out
}

// varied returns n task durations averaging d with realistic spread
// (CoV ≈ 0.4, like the paper's Level 2/3 measurements). Uniform
// durations quantize the makespan and hide small overheads.
func varied(n int, d float64) []float64 {
	out := make([]float64, n)
	s := uint64(12345)
	for i := range out {
		s = s*6364136223846793005 + 1442695040888963407
		frac := float64(s>>11) / float64(1<<53) // [0,1)
		out[i] = d * (0.3 + 1.4*frac)
	}
	return out
}

// taskInstr is a representative LCC task duration: ~5 simulated
// seconds, as in the paper's Level 3 measurements.
var taskInstr = machine.SecToInstr(5)

func TestLocalOnlyMatchesMachine(t *testing.T) {
	durs := uniform(40, taskInstr)
	ov := machine.Overheads{QueuePerTask: 1000}
	s1 := Run(durs, Cluster{Node0Procs: 6}, DefaultConfig(), ov)
	s2 := machine.Run(durs, 6, ov)
	if s1.Makespan != s2.Makespan {
		t.Errorf("local-only SVM (%v) must equal pure machine (%v)", s1.Makespan, s2.Makespan)
	}
}

func TestRemoteProcsPayOverheads(t *testing.T) {
	durs := uniform(60, taskInstr)
	ov := machine.Overheads{QueuePerTask: 1000}
	cfg := DefaultConfig()
	local := Run(durs, Cluster{Node0Procs: 8}, cfg, ov)
	split := Run(durs, Cluster{Node0Procs: 4, RemoteProcs: 4}, cfg, ov)
	if split.Makespan <= local.Makespan {
		t.Errorf("cross-node run (%v) should be slower than same-size local run (%v)",
			split.Makespan, local.Makespan)
	}
}

func TestSpeedupStillRealAcrossNodes(t *testing.T) {
	// The paper's headline SVM result: real speedups are possible with
	// the shared virtual memory system — more remote processors still
	// help, despite the translation.
	durs := uniform(200, taskInstr)
	ov := machine.Overheads{QueuePerTask: 1000}
	cfg := DefaultConfig()
	s13 := Speedup(durs, Cluster{Node0Procs: 13}, cfg, ov)
	s17 := Speedup(durs, Cluster{Node0Procs: 13, RemoteProcs: 4}, cfg, ov)
	s22 := Speedup(durs, Cluster{Node0Procs: 13, RemoteProcs: 9}, cfg, ov)
	if s17 <= s13 {
		t.Errorf("4 remote procs should beat 13 local alone: %v vs %v", s17, s13)
	}
	if s22 <= s17 {
		t.Errorf("more remote procs should keep helping: %v vs %v", s22, s17)
	}
	if s22 > 22 {
		t.Errorf("speedup %v cannot exceed processor count", s22)
	}
}

func TestTranslationLossAbout1ToTwoProcs(t *testing.T) {
	// The observed "translational effect ... equivalent to the loss of
	// about 1.5 processors".
	durs := varied(400, taskInstr)
	ov := machine.Overheads{QueuePerTask: 1000}
	cfg := DefaultConfig()
	for _, remote := range []int{3, 6, 9} {
		loss := TranslationLoss(durs, Cluster{Node0Procs: 13, RemoteProcs: remote}, cfg, ov)
		if loss < 0.5 || loss > 3.0 {
			t.Errorf("remote=%d: translation loss = %.2f processors, want ~1.5", remote, loss)
		}
	}
	if got := TranslationLoss(durs, Cluster{Node0Procs: 5}, cfg, ov); got != 0 {
		t.Errorf("no remote procs → loss 0, got %v", got)
	}
}

func TestFalseSharingStalls(t *testing.T) {
	durs := uniform(60, taskInstr)
	ov := machine.Overheads{QueuePerTask: 1000}
	good := DefaultConfig()
	bad := good
	bad.FalseSharing = true
	cl := Cluster{Node0Procs: 13, RemoteProcs: 5}
	sGood := Speedup(durs, cl, good, ov)
	sBad := Speedup(durs, cl, bad, ov)
	if sBad >= sGood/2 {
		t.Errorf("false sharing should be ruinous: good %v, bad %v", sGood, sBad)
	}
	// Before the fix, spanning nodes is worse than staying local.
	sLocal := Speedup(durs, Cluster{Node0Procs: 13}, good, ov)
	if sBad >= sLocal {
		t.Errorf("false sharing across nodes (%v) should lose to 13 local procs (%v)", sBad, sLocal)
	}
}

func TestSegmentShippingHelps(t *testing.T) {
	durs := uniform(120, taskInstr)
	ov := machine.Overheads{QueuePerTask: 1000}
	with := DefaultConfig()
	without := with
	without.SegmentShipping = false
	cl := Cluster{Node0Procs: 13, RemoteProcs: 6}
	sWith := Speedup(durs, cl, with, ov)
	sWithout := Speedup(durs, cl, without, ov)
	if sWith <= sWithout {
		t.Errorf("segment shipping should improve speedup: with %v, without %v", sWith, sWithout)
	}
}

func TestClusterTotal(t *testing.T) {
	if (Cluster{Node0Procs: 13, RemoteProcs: 9}).Total() != 22 {
		t.Error("total = 22")
	}
}

func TestAbruptChangeAtNodeBoundary(t *testing.T) {
	// Figure 9's shape: the curve changes abruptly when the first
	// remote process is added — speedup(14 procs split) is close to or
	// below speedup(13 local), then grows again.
	durs := uniform(400, taskInstr)
	ov := machine.Overheads{QueuePerTask: 1000}
	cfg := DefaultConfig()
	s13 := Speedup(durs, Cluster{Node0Procs: 13}, cfg, ov)
	s14 := Speedup(durs, Cluster{Node0Procs: 13, RemoteProcs: 1}, cfg, ov)
	s15 := Speedup(durs, Cluster{Node0Procs: 13, RemoteProcs: 2}, cfg, ov)
	gainAcross := s14 - s13
	gainLocal := Speedup(durs, Cluster{Node0Procs: 13}, cfg, ov) -
		Speedup(durs, Cluster{Node0Procs: 12}, cfg, ov)
	if gainAcross >= gainLocal {
		t.Errorf("first remote proc gain (%v) should be well below a local proc gain (%v)",
			gainAcross, gainLocal)
	}
	if s15 <= s14 {
		t.Errorf("second remote proc should still help: %v vs %v", s15, s14)
	}
}

func TestSplitQueuesComparable(t *testing.T) {
	// The paper's separate-queues experiment: per-Encore task queues
	// do not change the results materially.
	durs := varied(400, taskInstr)
	ov := machine.Overheads{QueuePerTask: 1000}
	cfg := DefaultConfig()
	cl := Cluster{Node0Procs: 13, RemoteProcs: 9}
	shared := Run(durs, cl, cfg, ov).Makespan
	split := RunSplitQueues(durs, cl, cfg, ov).Makespan
	ratio := split / shared
	if ratio < 0.9 || ratio > 1.15 {
		t.Errorf("split queues should be within ~10%% of shared: ratio %.3f", ratio)
	}
	// All tasks accounted for.
	if got := len(RunSplitQueues(durs, cl, cfg, ov).PerTask); got != len(durs) {
		t.Errorf("per-task records = %d, want %d", got, len(durs))
	}
	// With no remote processes, split falls back to shared.
	one := Cluster{Node0Procs: 8}
	if RunSplitQueues(durs, one, cfg, ov).Makespan != Run(durs, one, cfg, ov).Makespan {
		t.Error("single-node split must equal shared")
	}
}

func TestRunDeterministic(t *testing.T) {
	durs := uniform(50, taskInstr)
	cl := Cluster{Node0Procs: 7, RemoteProcs: 3}
	cfg := DefaultConfig()
	ov := machine.Overheads{QueuePerTask: 500}
	a := Run(durs, cl, cfg, ov)
	b := Run(durs, cl, cfg, ov)
	if a.Makespan != b.Makespan || fmt.Sprint(a.Busy) != fmt.Sprint(b.Busy) {
		t.Error("SVM schedule must be deterministic")
	}
}

func TestMessageLossOverheadAndDeterminism(t *testing.T) {
	durs := varied(120, taskInstr)
	cl := Cluster{Node0Procs: 13, RemoteProcs: 9}
	ov := machine.Overheads{QueuePerTask: 500}
	reliable := DefaultConfig()
	lossy := reliable
	lossy.LossRate = 0.10
	lossy.RetryTimeoutInstr = 2 * lossy.FaultLatencyInstr
	lossy.FaultPlan = faults.New(faults.Config{Seed: 1990})

	clean := Run(durs, cl, reliable, ov)
	s1, r1 := RunFaulty(durs, cl, lossy, ov)
	s2, r2 := RunFaulty(durs, cl, lossy, ov)
	if s1.Makespan != s2.Makespan || r1 != r2 {
		t.Error("lossy SVM schedule must be deterministic")
	}
	if r1.Retransmits == 0 || r1.WastedInstr <= 0 {
		t.Errorf("retransmissions not accounted: %+v", r1)
	}
	// With remote processors every task fetch crosses the network, so
	// the accounted waste must equal the plan's per-task loss overheads
	// exactly. (The makespan itself may shift either way under
	// list-scheduling anomalies, so it is not asserted.)
	var wantWaste float64
	wantLost := 0
	for i := range durs {
		extra, lost := lossy.lossOverhead(i)
		wantWaste += extra
		wantLost += lost
	}
	if math.Abs(r1.WastedInstr-wantWaste) > 1 || r1.Retransmits != wantLost {
		t.Errorf("accounted %v instr / %d lost, want %v / %d", r1.WastedInstr, r1.Retransmits, wantWaste, wantLost)
	}
	if sum(s1.Busy) <= sum(clean.Busy) {
		t.Error("retransmissions must show up as extra busy time")
	}

	// LossRate without a plan (or a plan with rate 0) is inert.
	noPlan := lossy
	noPlan.FaultPlan = nil
	if Run(durs, cl, noPlan, ov).Makespan != clean.Makespan {
		t.Error("loss without a fault plan must be disabled")
	}
	zero := lossy
	zero.LossRate = 0
	if Run(durs, cl, zero, ov).Makespan != clean.Makespan {
		t.Error("zero loss rate must match the reliable network")
	}
}

func TestMessageLossOnlyStrikesNetworkTraffic(t *testing.T) {
	// A single-node cluster has no cross-network traffic, so loss
	// cannot cost anything.
	durs := varied(60, taskInstr)
	ov := machine.Overheads{QueuePerTask: 500}
	cfg := DefaultConfig()
	lossy := cfg
	lossy.LossRate = 0.5
	lossy.RetryTimeoutInstr = 3 * cfg.FaultLatencyInstr
	lossy.FaultPlan = faults.New(faults.Config{Seed: 7})
	cl := Cluster{Node0Procs: 8}
	if got, want := Run(durs, cl, lossy, ov).Makespan, Run(durs, cl, cfg, ov).Makespan; got != want {
		t.Errorf("local-only cluster paid for message loss: %v vs %v", got, want)
	}
}

func TestSplitQueueLossCharged(t *testing.T) {
	durs := varied(120, taskInstr)
	cl := Cluster{Node0Procs: 13, RemoteProcs: 9}
	ov := machine.Overheads{QueuePerTask: 500}
	lossy := DefaultConfig()
	lossy.LossRate = 0.2
	lossy.RetryTimeoutInstr = 2 * lossy.FaultLatencyInstr
	lossy.FaultPlan = faults.New(faults.Config{Seed: 3})
	clean := DefaultConfig()
	sl := RunSplitQueues(durs, cl, lossy, ov)
	sc := RunSplitQueues(durs, cl, clean, ov)
	if sum(sl.Busy) <= sum(sc.Busy) {
		t.Error("split-queue remote fetches must pay for loss")
	}
}

func sum(xs []float64) float64 {
	var t float64
	for _, x := range xs {
		t += x
	}
	return t
}
