package faults

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

func TestNilPlanInjectsNothing(t *testing.T) {
	var p *Plan
	if f := p.TaskFault("t1", 1); f.Kind != None {
		t.Errorf("nil plan injected %v", f)
	}
	if n := p.LossCount("msg", 0, 0.99, 8); n != 0 {
		t.Errorf("nil plan lost %d messages", n)
	}
	if fs := p.ProcFailures(14, 0.99, 1e9); fs != nil {
		t.Errorf("nil plan failed processors: %v", fs)
	}
	if d := p.Draw("x"); d != 1 {
		t.Errorf("nil plan draw = %v, want 1", d)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, BuildFailRate: 0.1, PanicRate: 0.1, CrashRate: 0.1, PermanentFraction: 0.3}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("task-%d", i)
		for attempt := 1; attempt <= 3; attempt++ {
			if a.TaskFault(id, attempt) != b.TaskFault(id, attempt) {
				t.Fatalf("plans disagree on %s attempt %d", id, attempt)
			}
		}
		if a.LossCount("svm", i, 0.2, 8) != b.LossCount("svm", i, 0.2, 8) {
			t.Fatalf("plans disagree on loss count %d", i)
		}
	}
	fa := a.ProcFailures(14, 0.5, 1e8)
	fb := b.ProcFailures(14, 0.5, 1e8)
	if len(fa) != len(fb) {
		t.Fatalf("proc failures differ: %v vs %v", fa, fb)
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("proc failure %d differs: %v vs %v", i, fa[i], fb[i])
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(Config{Seed: 1, CrashRate: 0.5})
	b := New(Config{Seed: 2, CrashRate: 0.5})
	same := 0
	for i := 0; i < 256; i++ {
		id := fmt.Sprintf("t%d", i)
		if a.TaskFault(id, 1) == b.TaskFault(id, 1) {
			same++
		}
	}
	if same == 256 {
		t.Error("different seeds produced identical plans")
	}
}

func TestRateCalibration(t *testing.T) {
	p := New(Config{Seed: 7, BuildFailRate: 0.05, PanicRate: 0.05, CrashRate: 0.10})
	n := 20000
	hit := map[Kind]int{}
	for i := 0; i < n; i++ {
		f := p.TaskFault(fmt.Sprintf("task-%d", i), 1)
		hit[f.Kind]++
	}
	frac := func(k Kind) float64 { return float64(hit[k]) / float64(n) }
	for k, want := range map[Kind]float64{BuildFail: 0.05, Panic: 0.05, Crash: 0.10} {
		if got := frac(k); math.Abs(got-want) > 0.01 {
			t.Errorf("%v rate = %.3f, want ~%.2f", k, got, want)
		}
	}
	if got := frac(None); math.Abs(got-0.80) > 0.02 {
		t.Errorf("clean rate = %.3f, want ~0.80", got)
	}
}

func TestTransientStrikesFirstAttemptOnly(t *testing.T) {
	p := New(Config{Seed: 3, CrashRate: 1.0}) // PermanentFraction 0: all transient
	f := p.TaskFault("t", 1)
	if f.Kind != Crash || f.Class != Transient {
		t.Fatalf("attempt 1 fault = %+v", f)
	}
	if f2 := p.TaskFault("t", 2); f2.Kind != None {
		t.Errorf("transient fault recurred on attempt 2: %+v", f2)
	}
}

func TestPermanentStrikesEveryAttempt(t *testing.T) {
	p := New(Config{Seed: 3, PanicRate: 1.0, PermanentFraction: 1.0})
	for attempt := 1; attempt <= 5; attempt++ {
		f := p.TaskFault("poison", attempt)
		if f.Kind != Panic || f.Class != Permanent {
			t.Fatalf("attempt %d fault = %+v, want permanent panic", attempt, f)
		}
	}
}

func TestFaultErrMarkers(t *testing.T) {
	tr := Fault{Kind: Crash, Class: Transient}.Err("boom")
	if !errors.Is(tr, ErrInjected) || errors.Is(tr, ErrPermanent) {
		t.Errorf("transient error markers wrong: %v", tr)
	}
	pe := Fault{Kind: Panic, Class: Permanent}.Err("boom")
	if !errors.Is(pe, ErrInjected) || !errors.Is(pe, ErrPermanent) {
		t.Errorf("permanent error markers wrong: %v", pe)
	}
}

func TestCrashAfterFiringsBounds(t *testing.T) {
	p := New(Config{Seed: 11, CrashRate: 1})
	for i := 0; i < 100; i++ {
		n := p.CrashAfterFirings(fmt.Sprintf("t%d", i), 8)
		if n < 1 || n > 8 {
			t.Fatalf("crash firings %d out of [1,8]", n)
		}
	}
}

func TestLossCountCapAndRate(t *testing.T) {
	p := New(Config{Seed: 5})
	if n := p.LossCount("m", 0, 1.0, 4); n != 4 {
		t.Errorf("loss count at rate 1 = %d, want cap 4", n)
	}
	total := 0
	n := 20000
	for i := 0; i < n; i++ {
		total += p.LossCount("m", i, 0.25, 8)
	}
	// Mean of a geometric with p=0.25 is 1/3 retransmissions.
	mean := float64(total) / float64(n)
	if math.Abs(mean-1.0/3) > 0.02 {
		t.Errorf("mean loss count = %.3f, want ~0.333", mean)
	}
}

func TestProcFailuresWithinHorizon(t *testing.T) {
	p := New(Config{Seed: 9})
	fs := p.ProcFailures(100, 0.3, 5e7)
	if len(fs) == 0 {
		t.Fatal("expected some failures at rate 0.3")
	}
	for _, f := range fs {
		if f.At <= 0 || f.At > 5e7 {
			t.Errorf("failure time %v outside (0, horizon]", f.At)
		}
		if f.Proc < 0 || f.Proc >= 100 {
			t.Errorf("failure proc %d out of range", f.Proc)
		}
	}
}
