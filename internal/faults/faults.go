// Package faults is the deterministic fault-injection plan shared by
// the real task-level-parallelism runtime (internal/tlp) and the
// virtual-time simulators (internal/machine, internal/svm,
// internal/msgpass).
//
// The property that makes SPAM/PSM recoverable is the paper's central
// one: tasks are fully independent OPS5 engines that never synchronize
// with each other, only with the queue. A crashed task process loses
// only its own working memory; rebuilding the engine (Task.Build) and
// re-running the task is idempotent by construction. This package
// decides *where* the faults land; the runtimes decide how to recover.
//
// Every decision is a pure function of (seed, key): the same plan asked
// the same question always answers identically, regardless of worker
// count, goroutine interleaving, or execution order. Chaos runs are
// therefore reproducible — two runs with the same fault seed produce
// byte-identical reports.
package faults

import (
	"errors"
	"fmt"
)

// ErrInjected marks an error as an injected fault (as opposed to a
// genuine failure of the code under test). errors.Is(err, ErrInjected)
// identifies chaos-run failures in reports.
var ErrInjected = errors.New("injected fault")

// ErrPermanent marks a fault as permanent: retrying the task cannot
// succeed, so the runtime quarantines it immediately instead of
// burning its retry budget.
var ErrPermanent = errors.New("permanent fault")

// Kind enumerates the fault kinds the plan can inject into a task.
type Kind uint8

const (
	// None means the task executes cleanly.
	None Kind = iota
	// BuildFail fails the task's engine construction (Task.Build).
	BuildFail
	// Panic panics inside the task's run, as a bug in a production's
	// RHS or an external function would.
	Panic
	// Crash kills the worker mid-task after some firings: the partial
	// work is wasted and the task must be rebuilt from scratch.
	Crash
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case BuildFail:
		return "build-fail"
	case Panic:
		return "panic"
	case Crash:
		return "crash"
	}
	return "unknown"
}

// Class separates transient faults (a retry succeeds: the machine
// rebooted, the message was retransmitted) from permanent ones (the
// task is poison: every attempt fails).
type Class uint8

const (
	// Transient faults strike one attempt; the retry runs clean.
	Transient Class = iota
	// Permanent faults strike every attempt of the task.
	Permanent
)

func (c Class) String() string {
	if c == Permanent {
		return "permanent"
	}
	return "transient"
}

// Fault is one injection decision.
type Fault struct {
	Kind  Kind
	Class Class
}

// Err wraps msg into an error carrying the fault's markers: always
// ErrInjected, plus ErrPermanent for permanent faults.
func (f Fault) Err(msg string) error {
	if f.Class == Permanent {
		return fmt.Errorf("%s: %w (%w)", msg, ErrInjected, ErrPermanent)
	}
	return fmt.Errorf("%s: %w", msg, ErrInjected)
}

// Config parameterizes a plan. All rates are probabilities in [0, 1];
// their sum is the per-task injection probability and must not exceed 1.
type Config struct {
	// Seed drives every decision; two plans with equal configs are
	// indistinguishable.
	Seed int64
	// BuildFailRate is the probability a task's Build fails.
	BuildFailRate float64
	// PanicRate is the probability a task panics mid-run.
	PanicRate float64
	// CrashRate is the probability the task's worker crashes mid-task.
	CrashRate float64
	// PermanentFraction is the fraction of injected faults that are
	// permanent (poison tasks) rather than transient.
	PermanentFraction float64
}

// Rate returns the total per-task injection probability.
func (c Config) Rate() float64 { return c.BuildFailRate + c.PanicRate + c.CrashRate }

// Plan answers injection questions deterministically. A nil *Plan is
// valid and injects nothing, so runtimes can carry one unconditionally.
type Plan struct {
	cfg Config
}

// New builds a plan. A zero config injects nothing.
func New(cfg Config) *Plan { return &Plan{cfg: cfg} }

// Config returns the plan's configuration (zero for a nil plan).
func (p *Plan) Config() Config {
	if p == nil {
		return Config{}
	}
	return p.cfg
}

// splitmix64 is the finalizer of the SplitMix64 generator: a strong
// 64-bit mix used here to turn hashed keys into uniform draws.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash folds the seed and a key into one 64-bit value (FNV-1a over the
// key bytes, then mixed with the seed).
func (p *Plan) hash(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return splitmix64(h ^ splitmix64(uint64(p.cfg.Seed)))
}

// Draw returns a uniform value in [0, 1) for the key. Equal keys on
// equal plans always draw the same value. A nil plan draws 1 (never
// below any rate).
func (p *Plan) Draw(key string) float64 {
	if p == nil {
		return 1
	}
	return float64(p.hash(key)>>11) / (1 << 53)
}

// drawf is Draw over a formatted key.
func (p *Plan) drawf(format string, args ...interface{}) float64 {
	if p == nil {
		return 1
	}
	return p.Draw(fmt.Sprintf(format, args...))
}

// TaskFault decides whether the given attempt (1-based) of a task is
// struck by a fault. The fault kind and class are properties of the
// task (so a permanent fault recurs identically on every attempt);
// transient faults strike only the first attempt — the rebuilt,
// re-executed task runs clean, which is exactly the recoverability the
// paper's no-synchronization design buys.
func (p *Plan) TaskFault(taskID string, attempt int) Fault {
	if p == nil || p.cfg.Rate() <= 0 {
		return Fault{}
	}
	u := p.drawf("task/%s", taskID)
	var kind Kind
	switch {
	case u < p.cfg.BuildFailRate:
		kind = BuildFail
	case u < p.cfg.BuildFailRate+p.cfg.PanicRate:
		kind = Panic
	case u < p.cfg.Rate():
		kind = Crash
	default:
		return Fault{}
	}
	class := Transient
	if p.drawf("class/%s", taskID) < p.cfg.PermanentFraction {
		class = Permanent
	}
	if class == Transient && attempt > 1 {
		return Fault{}
	}
	return Fault{Kind: kind, Class: class}
}

// CrashAfterFirings returns the deterministic number of production
// firings a crash-struck task completes before its worker dies (at
// least 1, at most max; max <= 0 defaults to 8).
func (p *Plan) CrashAfterFirings(taskID string, max int) int {
	if max <= 0 {
		max = 8
	}
	return 1 + int(p.drawf("crash-at/%s", taskID)*float64(max-1)+0.5)
}

// LossCount returns the number of consecutive times the message (or
// page-fault service round) identified by label/idx is lost before
// getting through, given a per-transmission loss probability. The
// count is capped (cap <= 0 defaults to 8) so pathological rates
// cannot stall a simulation.
func (p *Plan) LossCount(label string, idx int, rate float64, capN int) int {
	if p == nil || rate <= 0 {
		return 0
	}
	if capN <= 0 {
		capN = 8
	}
	n := 0
	for n < capN && p.drawf("loss/%s/%d/%d", label, idx, n) < rate {
		n++
	}
	return n
}

// ProcFailure schedules the death of one simulated processor at a
// virtual time.
type ProcFailure struct {
	Proc int     // processor index
	At   float64 // virtual time of death, in simulated instructions
}

// ProcFailures draws which of procs processors die within the horizon
// (a virtual-time upper bound, e.g. the failure-free makespan), each
// with probability rate, at a uniform time in (0, horizon). Results
// are ordered by processor index.
func (p *Plan) ProcFailures(procs int, rate, horizon float64) []ProcFailure {
	if p == nil || rate <= 0 || horizon <= 0 {
		return nil
	}
	var out []ProcFailure
	for i := 0; i < procs; i++ {
		if p.drawf("procfail/%d", i) < rate {
			at := p.drawf("procfail-at/%d", i) * horizon
			if at <= 0 {
				at = horizon / 2
			}
			out = append(out, ProcFailure{Proc: i, At: at})
		}
	}
	return out
}
