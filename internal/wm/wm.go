// Package wm implements OPS5 working memory: element classes declared
// with literalize, working memory elements (WMEs) as attribute-value
// records, and timetags.
//
// Vector attributes are not supported (SPAM's knowledge base uses
// scalar attributes only); literalize declares a fixed set of scalar
// attributes per class.
package wm

import (
	"fmt"
	"sort"
	"strings"

	"spampsm/internal/symtab"
)

// ClassDef describes an element class: its name and attribute names in
// declaration order.
type ClassDef struct {
	Name  string
	Attrs []string
	index map[string]int
}

// NewClassDef builds a class definition. Attribute names must be unique.
func NewClassDef(name string, attrs ...string) (*ClassDef, error) {
	c := &ClassDef{Name: name, Attrs: attrs, index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if _, dup := c.index[a]; dup {
			return nil, fmt.Errorf("wm: class %s: duplicate attribute %s", name, a)
		}
		c.index[a] = i
	}
	return c, nil
}

// AttrIndex returns the slot index of an attribute, or -1 if the class
// has no such attribute.
func (c *ClassDef) AttrIndex(attr string) int {
	if i, ok := c.index[attr]; ok {
		return i
	}
	return -1
}

// NumAttrs returns the number of declared attributes.
func (c *ClassDef) NumAttrs() int { return len(c.Attrs) }

// Classes is a registry of element classes.
type Classes struct {
	byName map[string]*ClassDef
}

// NewClasses returns an empty registry.
func NewClasses() *Classes { return &Classes{byName: make(map[string]*ClassDef)} }

// Declare registers a class (the literalize declaration). Re-declaring
// an existing class name is an error.
func (cs *Classes) Declare(name string, attrs ...string) (*ClassDef, error) {
	if _, dup := cs.byName[name]; dup {
		return nil, fmt.Errorf("wm: class %s already declared", name)
	}
	c, err := NewClassDef(name, attrs...)
	if err != nil {
		return nil, err
	}
	cs.byName[name] = c
	return c, nil
}

// Lookup returns the class with the given name, or nil.
func (cs *Classes) Lookup(name string) *ClassDef { return cs.byName[name] }

// Names returns all declared class names, sorted.
func (cs *Classes) Names() []string {
	out := make([]string, 0, len(cs.byName))
	for n := range cs.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WME is a working memory element: an instance of a class with one
// value per declared attribute and a creation timetag. WMEs are
// immutable once asserted; OPS5 modify is remove-then-make.
type WME struct {
	Class   *ClassDef
	Vals    []symtab.Value
	TimeTag int
}

// Get returns the value of the named attribute (Nil for undeclared or
// unset attributes).
func (w *WME) Get(attr string) symtab.Value {
	i := w.Class.AttrIndex(attr)
	if i < 0 {
		return symtab.Nil
	}
	return w.Vals[i]
}

// GetAt returns the value at slot index i.
func (w *WME) GetAt(i int) symtab.Value {
	if i < 0 || i >= len(w.Vals) {
		return symtab.Nil
	}
	return w.Vals[i]
}

// String renders the WME in OPS5 display form.
func (w *WME) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(%s", w.Class.Name)
	for i, a := range w.Class.Attrs {
		if !w.Vals[i].IsNil() {
			fmt.Fprintf(&b, " ^%s %s", a, w.Vals[i])
		}
	}
	b.WriteString(")")
	return b.String()
}

// Modeled WME memory footprint, in simulated bytes. Like the NS32332
// instruction costs in internal/rete, these are round model constants,
// not Go heap measurements: a WME record (class pointer, timetag,
// value-vector header) plus one slot per declared attribute. They only
// need to be consistent across tasks and policies — scheduling compares
// footprints, it never allocates them.
const (
	// WMEBaseBytes is the fixed per-WME record overhead.
	WMEBaseBytes = 64
	// SlotBytes is the cost of one attribute slot.
	SlotBytes = 16
)

// WMEBytes returns the modeled footprint of a WME with n attribute
// slots.
func WMEBytes(n int) float64 { return float64(WMEBaseBytes + n*SlotBytes) }

// Memory is a working memory: the live set of WMEs keyed by timetag.
type Memory struct {
	classes *Classes
	byTag   map[int]*WME
	nextTag int

	// Peak-occupancy accounting for the memory-aware scheduler: the
	// high-water mark of live WMEs and of their modeled footprint.
	// Asserts and retracts are sequential within one engine, so plain
	// fields suffice.
	liveBytes float64
	peakBytes float64
	peakSize  int
}

// NewMemory returns an empty working memory over the given classes.
func NewMemory(classes *Classes) *Memory {
	return &Memory{classes: classes, byTag: make(map[int]*WME), nextTag: 1}
}

// Classes returns the registry the memory was built over.
func (m *Memory) Classes() *Classes { return m.classes }

// Make asserts a new WME of the named class. Unset attributes are Nil.
func (m *Memory) Make(class string, sets map[string]symtab.Value) (*WME, error) {
	c := m.classes.Lookup(class)
	if c == nil {
		return nil, fmt.Errorf("wm: make of undeclared class %s", class)
	}
	w := &WME{Class: c, Vals: make([]symtab.Value, c.NumAttrs()), TimeTag: m.nextTag}
	for a, v := range sets {
		i := c.AttrIndex(a)
		if i < 0 {
			return nil, fmt.Errorf("wm: class %s has no attribute %s", class, a)
		}
		w.Vals[i] = v
	}
	m.nextTag++
	m.byTag[w.TimeTag] = w
	m.grew(len(w.Vals))
	return w, nil
}

// MakeVals asserts a new WME of the named class from a slot-ordered
// value vector, adopting vals without copying. The caller must never
// mutate vals afterwards — WMEs are immutable (a modify is remove +
// make), so one vector may safely back WMEs in any number of memories;
// that sharing is what makes batched seed distribution cheap.
func (m *Memory) MakeVals(class string, vals []symtab.Value) (*WME, error) {
	c := m.classes.Lookup(class)
	if c == nil {
		return nil, fmt.Errorf("wm: make of undeclared class %s", class)
	}
	if len(vals) != c.NumAttrs() {
		return nil, fmt.Errorf("wm: class %s has %d attributes, got %d values",
			class, c.NumAttrs(), len(vals))
	}
	w := &WME{Class: c, Vals: vals, TimeTag: m.nextTag}
	m.nextTag++
	m.byTag[w.TimeTag] = w
	m.grew(len(w.Vals))
	return w, nil
}

// grew records one asserted WME with n slots against the high-water
// marks.
func (m *Memory) grew(n int) {
	m.liveBytes += WMEBytes(n)
	if m.liveBytes > m.peakBytes {
		m.peakBytes = m.liveBytes
	}
	if len(m.byTag) > m.peakSize {
		m.peakSize = len(m.byTag)
	}
}

// Remove retracts a WME. Removing a WME not in memory is an error
// (OPS5 signals this too).
func (m *Memory) Remove(w *WME) error {
	if _, ok := m.byTag[w.TimeTag]; !ok {
		return fmt.Errorf("wm: remove of absent wme (timetag %d)", w.TimeTag)
	}
	delete(m.byTag, w.TimeTag)
	m.liveBytes -= WMEBytes(len(w.Vals))
	return nil
}

// Size returns the number of live WMEs.
func (m *Memory) Size() int { return len(m.byTag) }

// PeakSize returns the high-water mark of live WMEs.
func (m *Memory) PeakSize() int { return m.peakSize }

// PeakBytes returns the high-water mark of the modeled WME footprint
// (WMEBytes summed over the largest simultaneously-live set).
func (m *Memory) PeakBytes() float64 { return m.peakBytes }

// ResetPeaks restarts the high-water marks from the current live
// population, so a retained memory's next run records its own peak
// rather than inheriting the previous run's.
func (m *Memory) ResetPeaks() {
	m.peakBytes = m.liveBytes
	m.peakSize = len(m.byTag)
}

// Snapshot returns the live WMEs ordered by timetag.
func (m *Memory) Snapshot() []*WME {
	out := make([]*WME, 0, len(m.byTag))
	for _, w := range m.byTag {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TimeTag < out[j].TimeTag })
	return out
}

// OfClass returns the live WMEs of a class, ordered by timetag.
func (m *Memory) OfClass(class string) []*WME {
	var out []*WME
	for _, w := range m.byTag {
		if w.Class.Name == class {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TimeTag < out[j].TimeTag })
	return out
}
