package wm

import (
	"strings"
	"testing"

	"spampsm/internal/symtab"
)

func TestDeclareAndLookup(t *testing.T) {
	cs := NewClasses()
	c, err := cs.Declare("fragment", "id", "type", "confidence")
	if err != nil {
		t.Fatal(err)
	}
	if cs.Lookup("fragment") != c {
		t.Error("lookup should return the declared class")
	}
	if cs.Lookup("nope") != nil {
		t.Error("lookup of undeclared class should be nil")
	}
	if _, err := cs.Declare("fragment", "x"); err == nil {
		t.Error("redeclaration must fail")
	}
	if _, err := cs.Declare("bad", "a", "a"); err == nil {
		t.Error("duplicate attribute must fail")
	}
}

func TestAttrIndex(t *testing.T) {
	c, _ := NewClassDef("region", "id", "area", "class")
	if c.AttrIndex("id") != 0 || c.AttrIndex("area") != 1 || c.AttrIndex("class") != 2 {
		t.Error("attribute indices wrong")
	}
	if c.AttrIndex("absent") != -1 {
		t.Error("absent attribute must index -1")
	}
	if c.NumAttrs() != 3 {
		t.Error("NumAttrs wrong")
	}
}

func TestMakeRemove(t *testing.T) {
	cs := NewClasses()
	if _, err := cs.Declare("goal", "phase", "status"); err != nil {
		t.Fatal(err)
	}
	m := NewMemory(cs)
	w1, err := m.Make("goal", map[string]symtab.Value{"phase": symtab.Sym("lcc")})
	if err != nil {
		t.Fatal(err)
	}
	if w1.TimeTag != 1 {
		t.Errorf("first timetag = %d", w1.TimeTag)
	}
	if got := w1.Get("phase"); !got.Equal(symtab.Sym("lcc")) {
		t.Errorf("phase = %v", got)
	}
	if !w1.Get("status").IsNil() {
		t.Error("unset attribute must be Nil")
	}
	w2, _ := m.Make("goal", nil)
	if w2.TimeTag != 2 {
		t.Errorf("second timetag = %d", w2.TimeTag)
	}
	if m.Size() != 2 {
		t.Errorf("size = %d", m.Size())
	}
	if err := m.Remove(w1); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove(w1); err == nil {
		t.Error("double remove must fail")
	}
	if m.Size() != 1 {
		t.Errorf("size after remove = %d", m.Size())
	}
}

func TestMakeErrors(t *testing.T) {
	cs := NewClasses()
	cs.Declare("goal", "phase")
	m := NewMemory(cs)
	if _, err := m.Make("nothere", nil); err == nil {
		t.Error("make of undeclared class must fail")
	}
	if _, err := m.Make("goal", map[string]symtab.Value{"zap": symtab.Int(1)}); err == nil {
		t.Error("make with undeclared attribute must fail")
	}
}

func TestSnapshotAndOfClass(t *testing.T) {
	cs := NewClasses()
	cs.Declare("a", "x")
	cs.Declare("b", "y")
	m := NewMemory(cs)
	m.Make("a", map[string]symtab.Value{"x": symtab.Int(1)})
	m.Make("b", map[string]symtab.Value{"y": symtab.Int(2)})
	m.Make("a", map[string]symtab.Value{"x": symtab.Int(3)})
	snap := m.Snapshot()
	if len(snap) != 3 || snap[0].TimeTag != 1 || snap[2].TimeTag != 3 {
		t.Errorf("snapshot = %v", snap)
	}
	as := m.OfClass("a")
	if len(as) != 2 || !as[1].Get("x").Equal(symtab.Int(3)) {
		t.Errorf("OfClass(a) = %v", as)
	}
	if len(m.OfClass("zzz")) != 0 {
		t.Error("OfClass of unknown class must be empty")
	}
}

func TestWMEString(t *testing.T) {
	cs := NewClasses()
	cs.Declare("frag", "id", "type")
	m := NewMemory(cs)
	w, _ := m.Make("frag", map[string]symtab.Value{
		"id": symtab.Int(7), "type": symtab.Sym("runway"),
	})
	s := w.String()
	for _, want := range []string{"frag", "^id 7", "^type runway"} {
		if !strings.Contains(s, want) {
			t.Errorf("WME string %q missing %q", s, want)
		}
	}
}

func TestGetAt(t *testing.T) {
	cs := NewClasses()
	cs.Declare("frag", "id")
	m := NewMemory(cs)
	w, _ := m.Make("frag", map[string]symtab.Value{"id": symtab.Int(4)})
	if !w.GetAt(0).Equal(symtab.Int(4)) {
		t.Error("GetAt(0) wrong")
	}
	if !w.GetAt(5).IsNil() || !w.GetAt(-1).IsNil() {
		t.Error("out-of-range GetAt must be Nil")
	}
}

func TestClassNamesSorted(t *testing.T) {
	cs := NewClasses()
	cs.Declare("zebra")
	cs.Declare("alpha", "x")
	names := cs.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zebra" {
		t.Errorf("names = %v", names)
	}
}
