// Seed-load fast path: memoized alpha routing and batched WME
// insertion.
//
// A task runtime instantiates dozens of engines from one frozen
// Template and loads each with a seed working memory drawn from a
// shared scene — the same fragment WMEs reappear in many overlapping
// tasks. Routing such a WME through the template's constant-test alpha
// network is a pure function of (class, attribute values): the set of
// alpha memories that accept it never varies across instances of the
// template. The template therefore memoizes each distinct seed's
// acceptance set, keyed by a canonical value digest, and InsertBatch
// replays the memo into any instance without re-evaluating a single
// filter closure.
//
// The simulated cost model is unaffected. Every skipped constant test
// is charged arithmetically — CostAlphaScan + filterCost per alpha
// memory of the class, plus CostAlphaMemOp per acceptance — exactly
// the amounts Add would have charged by running the filters, the same
// discipline chargeSkippedJoinTests established for the hash indexes.
// The differential oracle (seed_test.go) proves byte-identical
// Counters, conflict sets and captured activation forests against the
// per-WME Add path.
//
// InsertBatch deliberately keeps Add's sequential activation
// discipline: each WME is inserted into an accepting alpha memory and
// that memory's successors are right-activated before the next memory
// — or the next WME — sees it. Inserting the whole batch into the
// alpha memories up front would let a beta cascade triggered by an
// early WME find later WMEs already present, duplicating pairings (see
// the note on Add). The batch path wins by separating WME construction
// from match propagation, not by reordering the propagation itself.
package rete

import (
	"encoding/binary"
	"math"

	"spampsm/internal/symtab"
	"spampsm/internal/wm"
)

// RouteDigest returns the canonical routing key of a seed WME: two
// value vectors of the same class share a digest if and only if every
// attribute pair satisfies symtab.Value.Equal. Numbers collapse to
// their float64 image (with -0.0 folded into +0.0) because OPS5
// equality compares numerically across the integer/float
// representations — the same canonicalization keyOf applies to index
// buckets. All components are length-delimited, so no two distinct
// vectors can collide by concatenation.
func RouteDigest(class string, vals []symtab.Value) string {
	b := make([]byte, 0, 16+len(class)+16*len(vals))
	b = binary.AppendUvarint(b, uint64(len(class)))
	b = append(b, class...)
	for _, v := range vals {
		switch {
		case v.IsNil():
			b = append(b, 'n')
		case v.Kind() == symtab.KindSym:
			s := v.SymVal()
			b = append(b, 's')
			b = binary.AppendUvarint(b, uint64(len(s)))
			b = append(b, s...)
		default:
			f := v.FloatVal()
			if f == 0 {
				f = 0 // fold -0.0 into +0.0: they compare Equal
			}
			b = append(b, 'f')
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
		}
	}
	return string(b)
}

// classRoutes memoizes the alpha routing of one class's seed WMEs:
// the class's alpha memories (the template's byClass slice, stable
// once frozen), the aggregate constant-test sweep cost Add would
// charge for any WME of the class, and the acceptance set per distinct
// value digest.
type classRoutes struct {
	mems     []*alphaMem
	scanCost float64            // Σ (CostAlphaScan + filterCost) over mems
	accepted map[string][]int32 // digest -> accepting positions in mems
}

// route returns the memoized routing of w, computing and caching the
// acceptance set on first sight of the digest. The digest must equal
// RouteDigest(w.Class.Name, w.Vals); callers that precomputed it pass
// it in, "" computes it here. Safe for concurrent use from any number
// of network instances of the template: filters are immutable template
// closures and are evaluated outside the lock (a racing miss computes
// the same set twice; the first store wins).
func (t *Template) route(w *wm.WME, digest string) (*classRoutes, []int32) {
	mems := t.byClass[w.Class.Name]
	if len(mems) == 0 {
		return nil, nil
	}
	if digest == "" {
		digest = RouteDigest(w.Class.Name, w.Vals)
	}
	t.routeMu.RLock()
	cr := t.routes[w.Class.Name]
	var acc []int32
	hit := false
	if cr != nil {
		acc, hit = cr.accepted[digest]
	}
	t.routeMu.RUnlock()
	if hit {
		return cr, acc
	}
	acc = make([]int32, 0, len(mems))
	for i, am := range mems {
		if am.filter == nil || am.filter(w) {
			acc = append(acc, int32(i))
		}
	}
	t.routeMu.Lock()
	if t.routes == nil {
		t.routes = map[string]*classRoutes{}
	}
	cr = t.routes[w.Class.Name]
	if cr == nil {
		cr = &classRoutes{mems: mems, accepted: map[string][]int32{}}
		for _, am := range mems {
			cr.scanCost += CostAlphaScan + am.filterCost
		}
		t.routes[w.Class.Name] = cr
	}
	if prev, ok := cr.accepted[digest]; ok {
		acc = prev
	} else {
		cr.accepted[digest] = acc
	}
	t.routeMu.Unlock()
	return cr, acc
}

// SetSeedRouting enables or disables the template's memoized alpha
// routing for this instance's InsertBatch calls (default on). With
// routing off, InsertBatch degrades to per-WME Add — the reference
// path the seed-load differential oracle compares against.
func (n *Network) SetSeedRouting(on bool) { n.noSeedRouting = !on }

// InsertBatch asserts a seed set, semantically identical to calling
// Add on each WME in order: same memory contents, same conflict set,
// same Counters, same captured activation forests. digests may be nil;
// otherwise it is parallel to wmes and a non-empty entry — which must
// equal RouteDigest over the WME's class and values — marks the WME as
// shared across engines and routes it through the template's memo.
// WMEs with no digest (values unique to this task) take the plain Add
// path and never populate the cache.
func (n *Network) InsertBatch(wmes []*wm.WME, digests []string) {
	n.frozen = true
	for i, w := range wmes {
		d := ""
		if digests != nil {
			d = digests[i]
		}
		if d == "" || n.noSeedRouting {
			n.Add(w)
			continue
		}
		cr, acc := n.tmpl.route(w, d)
		if cr == nil {
			continue // class feeds no alpha memory; Add would no-op too
		}
		n.replayRoute(w, cr, acc)
	}
}

// replayRoute inserts w along its memoized route. With capture on it
// reproduces Add's per-memory activation structure (identical forests);
// with capture off the constant-test sweep is charged in one arithmetic
// step and only the accepting memories are touched. Either way the
// per-memory discipline holds: insert, then right-activate the
// memory's successors in reverse order, before any later memory sees w.
func (n *Network) replayRoute(w *wm.WME, cr *classRoutes, acc []int32) {
	if n.capturing {
		k := 0
		for i, am := range cr.mems {
			n.beginBase("alpha:"+am.signature, CostAlphaScan)
			n.charge(am.filterCost)
			n.totals.ConstTests++
			ok := k < len(acc) && int(acc[k]) == i
			if ok {
				n.charge(CostAlphaMemOp)
				st := n.state(w)
				st.alphaRefs = append(st.alphaRefs, am.insert(w, n))
			}
			n.end()
			if ok {
				k++
				for j := len(am.successors) - 1; j >= 0; j-- {
					am.successors[j].rightActivate(w, n)
				}
			}
		}
		return
	}
	// One arithmetic charge for the whole sweep. Every network charge
	// is an integer number of simulated instructions, so float64 sums
	// are exact and order-independent: the aggregate equals Add's
	// incremental charging byte-for-byte.
	n.totals.Activations += len(cr.mems)
	n.totals.ConstTests += len(cr.mems)
	n.totals.Cost += cr.scanCost + float64(len(acc))*CostAlphaMemOp
	for _, idx := range acc {
		am := cr.mems[idx]
		st := n.state(w)
		st.alphaRefs = append(st.alphaRefs, am.insert(w, n))
		for j := len(am.successors) - 1; j >= 0; j-- {
			am.successors[j].rightActivate(w, n)
		}
	}
}
