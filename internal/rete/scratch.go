// Scratch: reusable allocation pools that outlive a single network
// instance. A task runtime that builds, runs and discards one engine
// per task (tlp.Pool with DropEngines) hands each worker a Scratch;
// the free lists a network accumulated — recycled tokens and list
// entries — seed the next network built on the same worker instead of
// being garbage.
package rete

// Scratch holds the recyclable allocations of discarded network
// instances. A Scratch is single-owner: it may be handed to one
// network at a time (NewNetworkScratch empties it into the instance;
// Reclaim refills it), and is not safe for concurrent use.
type Scratch struct {
	tokens       []*Token
	wmeEntries   []*wmeEntry
	tokenEntries []*tokenEntry
}

// adoptScratch seeds the network's free lists from s, emptying s.
func (n *Network) adoptScratch(s *Scratch) {
	n.tokenPool = s.tokens
	n.wmeEntryPool = s.wmeEntries
	n.tokenEntryPool = s.tokenEntries
	s.tokens = nil
	s.wmeEntries = nil
	s.tokenEntries = nil
}

// Reclaim moves the network's free lists (including any tokens still
// resting in the graveyard) into s for reuse by the next instance.
// The network must not be used again afterwards: call it only when
// discarding an engine that has finished running normally. Engines
// that panicked or were abandoned mid-operation must not be reclaimed
// — their pools may alias live structures.
func (n *Network) Reclaim(s *Scratch) {
	for _, tok := range n.graveyard {
		tok.reset()
		n.tokenPool = append(n.tokenPool, tok)
	}
	n.graveyard = n.graveyard[:0]
	s.tokens = append(s.tokens, n.tokenPool...)
	s.wmeEntries = append(s.wmeEntries, n.wmeEntryPool...)
	s.tokenEntries = append(s.tokenEntries, n.tokenEntryPool...)
	n.tokenPool, n.wmeEntryPool, n.tokenEntryPool = nil, nil, nil
}
