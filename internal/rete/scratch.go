// Scratch: reusable allocation pools that outlive a single network
// instance. A task runtime that builds, runs and discards one engine
// per task (tlp.Pool with DropEngines) hands each worker a Scratch;
// the free lists a network accumulated — recycled tokens and list
// entries — seed the next network built on the same worker instead of
// being garbage.
package rete

import "spampsm/internal/wm"

// Scratch holds the recyclable allocations of discarded network
// instances. A Scratch is single-owner: it may be handed to one
// network at a time (NewNetworkScratch empties it into the instance;
// Reclaim refills it), and is not safe for concurrent use.
type Scratch struct {
	tokens       []*Token
	wmeEntries   []*wmeEntry
	tokenEntries []*tokenEntry

	// Seed-batch staging buffers (ops5.AssertBatch): reused across the
	// engines a worker builds so batched seed loading allocates its
	// WME/digest slices once per worker, not once per task.
	seedWMEs    []*wm.WME
	seedDigests []string
}

// Pooled reports how many recycled objects the scratch currently
// holds. Observability for pool-accounting tests: a leak shows up as a
// scratch that stays empty after an engine should have been reclaimed
// into it.
func (s *Scratch) Pooled() int {
	return len(s.tokens) + len(s.wmeEntries) + len(s.tokenEntries)
}

// TakeSeedBuffers hands the scratch's seed-batch staging slices to a
// new engine (emptied of contents, capacity preserved).
func (s *Scratch) TakeSeedBuffers() ([]*wm.WME, []string) {
	w, d := s.seedWMEs[:0], s.seedDigests[:0]
	s.seedWMEs, s.seedDigests = nil, nil
	return w, d
}

// PutSeedBuffers returns staging slices taken by TakeSeedBuffers,
// clearing their elements so the scratch does not retain the dead
// engine's WMEs.
func (s *Scratch) PutSeedBuffers(wmes []*wm.WME, digests []string) {
	clear(wmes[:cap(wmes)])
	clear(digests[:cap(digests)])
	s.seedWMEs = wmes[:0]
	s.seedDigests = digests[:0]
}

// adoptScratch seeds the network's free lists from s, emptying s.
func (n *Network) adoptScratch(s *Scratch) {
	n.tokenPool = s.tokens
	n.wmeEntryPool = s.wmeEntries
	n.tokenEntryPool = s.tokenEntries
	s.tokens = nil
	s.wmeEntries = nil
	s.tokenEntries = nil
}

// Reclaim moves the network's free lists (including any tokens still
// resting in the graveyard) into s for reuse by the next instance.
// The network must not be used again afterwards: call it only when
// discarding an engine that has finished running normally. Engines
// that panicked or were abandoned mid-operation must not be reclaimed
// — their pools may alias live structures.
func (n *Network) Reclaim(s *Scratch) {
	for _, tok := range n.graveyard {
		tok.reset()
		n.tokenPool = append(n.tokenPool, tok)
	}
	n.graveyard = n.graveyard[:0]
	s.tokens = append(s.tokens, n.tokenPool...)
	s.wmeEntries = append(s.wmeEntries, n.wmeEntryPool...)
	s.tokenEntries = append(s.tokenEntries, n.tokenEntryPool...)
	n.tokenPool, n.wmeEntryPool, n.tokenEntryPool = nil, nil, nil
}
