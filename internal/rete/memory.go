// Memory structures of the Rete network: insertion-ordered WME and
// token lists with O(1) unlink, and the equality hash indexes that let
// join and negative nodes activate only the bucket of a memory that
// can possibly pass their first variable-consistency test (Doorenbos,
// "Production Matching for Large Learning Systems", ch. 2.3).
//
// The template/instance split puts the *declarations* (which
// attributes and (level, attr) locations are indexed) on the template
// nodes in rete.go and the *contents* (item lists, bucket maps) in the
// per-instance state structs here: alphaState for alpha memories,
// storeInst for token stores. Template nodes reach their state through
// the Network's state arrays, indexed by the dense ids assigned at
// compile time.
//
// Two invariants govern everything in this file:
//
//  1. Iteration order is insertion order, always. The network's
//     activation order — and through it the conflict set's tie-breaking
//     sequence and every captured activation forest — must be
//     reproducible across runs, which rules out Go map iteration over
//     memory contents. Bucket lists are appended on insert, so a bucket
//     walk visits its members in the same relative order a full memory
//     scan would.
//
//  2. Indexing must not perturb the simulated cost model. The paper's
//     curves are calibrated to the 1990 interpreted matcher, so the
//     pairs an index lets us skip are still charged: each skipped pair
//     would have failed the node's first equality test after exactly
//     one CostJoinTest, and the activation charges that amount
//     arithmetically from |memory| − |bucket| without iterating.
package rete

import (
	"math"

	"spampsm/internal/symtab"
	"spampsm/internal/wm"
)

// indexKey is the canonical hash key of an attribute value. Two values
// map to the same key if and only if symtab.Value.Equal holds (with the
// single exception of NaN, which is never Equal to anything, including
// itself; NaN bucket members are rejected by the join test like any
// other non-matching pair). Numbers collapse to their float64 image
// because OPS5 equality compares numerically across the integer/float
// representations.
type indexKey struct {
	kind uint8 // 0 = nil, 1 = symbol, 2 = number
	sym  string
	bits uint64
}

// keyOf computes the canonical index key of a value.
func keyOf(v symtab.Value) indexKey {
	switch {
	case v.IsNil():
		return indexKey{kind: 0}
	case v.Kind() == symtab.KindSym:
		return indexKey{kind: 1, sym: v.SymVal()}
	default:
		f := v.FloatVal()
		if f == 0 {
			f = 0 // fold -0.0 into +0.0: they compare Equal
		}
		return indexKey{kind: 2, bits: math.Float64bits(f)}
	}
}

// ---------------------------------------------------------------------------
// WME lists and alpha-memory state

// wmeEntry is one membership of a WME in a wmeList.
type wmeEntry struct {
	w          *wm.WME
	prev, next *wmeEntry
	list       *wmeList
}

// wmeList is an insertion-ordered list of WMEs with O(1) unlink.
type wmeList struct {
	head, tail *wmeEntry
	size       int
}

func (l *wmeList) pushBack(w *wm.WME, n *Network) *wmeEntry {
	e := n.getWMEEntry()
	e.w = w
	e.list = l
	e.prev = l.tail
	e.next = nil
	if l.tail != nil {
		l.tail.next = e
	} else {
		l.head = e
	}
	l.tail = e
	l.size++
	return e
}

func (l *wmeList) unlink(e *wmeEntry, n *Network) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	l.size--
	n.putWMEEntry(e)
}

// wmeIndex is the per-instance half of one alpha-memory equality
// index: the bucket map over one attribute's values. Indexes are
// materialized lazily: until the first bucket lookup, inserts skip the
// index entirely (built=false), so memories whose indexed side never
// activates — e.g. feeding a join whose opposite memory stays empty —
// pay nothing for registration. The first lookup backfills from the
// insertion-ordered item list, which preserves the
// bucket-order-equals-insertion-order invariant.
type wmeIndex struct {
	attr    int
	built   bool
	buckets map[indexKey]*wmeList
}

// alphaState is the per-instance contents of one alpha memory: the
// insertion-ordered WME list and the bucket maps of the registered
// indexes (parallel to the template's indexAttrs).
type alphaState struct {
	items   wmeList
	indexes []wmeIndex
}

// alphaRef records one WME's membership in an alpha memory: its entry
// in the ordered item list plus its entry in each registered index
// bucket (parallel to the memory's index list).
type alphaRef struct {
	am      *alphaMem
	entry   *wmeEntry
	buckets []*wmeEntry
}

// insert adds a WME to the memory's item list and every built index,
// and returns the membership record for later O(1) removal. Bucket
// slots of unbuilt indexes stay nil until buildIndex patches them.
func (am *alphaMem) insert(w *wm.WME, n *Network) alphaRef {
	st := am.state(n)
	ref := alphaRef{am: am, entry: st.items.pushBack(w, n)}
	if len(st.indexes) > 0 {
		ref.buckets = make([]*wmeEntry, len(st.indexes))
		for i := range st.indexes {
			if st.indexes[i].built {
				ref.buckets[i] = st.indexes[i].push(w, n)
			}
		}
	}
	return ref
}

// push adds one WME to its bucket and returns the bucket entry.
func (ix *wmeIndex) push(w *wm.WME, n *Network) *wmeEntry {
	k := keyOf(w.GetAt(ix.attr))
	if ix.buckets == nil {
		ix.buckets = map[indexKey]*wmeList{}
	}
	b := ix.buckets[k]
	if b == nil {
		b = &wmeList{}
		ix.buckets[k] = b
	}
	return b.pushBack(w, n)
}

// removeRef unlinks one WME membership (item list and all buckets).
// Emptied bucket lists stay in their index map: attribute values recur,
// and reusing the list beats a delete-and-reallocate cycle.
func (am *alphaMem) removeRef(ref alphaRef, n *Network) {
	am.state(n).items.unlink(ref.entry, n)
	for _, be := range ref.buckets {
		if be != nil { // nil: index not yet materialized at insert time
			be.list.unlink(be, n)
		}
	}
}

// bucket returns the WMEs whose indexed attribute equals the key
// (nil when the bucket is empty), materializing the index on first
// use.
func (am *alphaMem) bucket(idx int, k indexKey, n *Network) *wmeList {
	st := am.state(n)
	ix := &st.indexes[idx]
	if !ix.built {
		am.buildIndex(idx, ix, st, n)
	}
	return ix.buckets[k]
}

// buildIndex backfills a lazily-registered index from the item list,
// patching each member's membership record (held in its wmeState's
// alphaRef for this memory) so removal stays O(1).
func (am *alphaMem) buildIndex(idx int, ix *wmeIndex, st *alphaState, n *Network) {
	ix.built = true
	for e := st.items.head; e != nil; e = e.next {
		be := ix.push(e.w, n)
		ws := n.states[e.w]
		for i := range ws.alphaRefs {
			if ws.alphaRefs[i].am == am {
				if ws.alphaRefs[i].buckets == nil {
					ws.alphaRefs[i].buckets = make([]*wmeEntry, len(st.indexes))
				}
				ws.alphaRefs[i].buckets[idx] = be
				break
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Token lists and store state

// tokenEntry is one membership of a token in a tokenList.
type tokenEntry struct {
	t          *Token
	prev, next *tokenEntry
	list       *tokenList
}

// tokenList is an insertion-ordered list of tokens with O(1) unlink.
type tokenList struct {
	head, tail *tokenEntry
	size       int
}

func (l *tokenList) pushBack(t *Token, n *Network) *tokenEntry {
	e := n.getTokenEntry()
	e.t = t
	e.list = l
	e.prev = l.tail
	e.next = nil
	if l.tail != nil {
		l.tail.next = e
	} else {
		l.head = e
	}
	l.tail = e
	l.size++
	return e
}

func (l *tokenList) unlink(e *tokenEntry, n *Network) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	l.size--
	n.putTokenEntry(e)
}

// levelAttr identifies one (condition-element level, attribute slot)
// binding a token index hashes on.
type levelAttr struct{ level, attr int }

// tokenIndex is the per-instance half of one token-store equality
// index: the bucket map over the value tokens bind at one (level,
// attr) location. Tokens with no WME at that level (the level belongs
// to a negated CE, or the token is the dummy) appear in the item list
// but in no bucket: they can never pass an equality test against that
// location, so a bucket walk correctly treats them as first-test
// failures.
//
// Like wmeIndex, token indexes are materialized lazily on the first
// bucket lookup, except in eager stores (built is preset at
// instantiation from the template's eager flag).
type tokenIndex struct {
	at      levelAttr
	built   bool
	buckets map[indexKey]*tokenList
}

// storeInst is the per-instance contents of one token store (beta
// memory, negative node or production node): the ordered token list
// plus the bucket maps of any equality indexes registered by the join
// work that iterates the store.
type storeInst struct {
	items   tokenList
	indexes []tokenIndex
}

// insert adds a token to the item list and every index bucket whose
// (level, attr) location the token binds, returning the membership
// records. The bucket slice is parallel to the index list; entries are
// nil for locations the token does not bind. The caller provides the
// bucket slice to fill (so the token's own storage can be reused).
func (s *storeInst) insert(t *Token, buckets []*tokenEntry, n *Network) (*tokenEntry, []*tokenEntry) {
	entry := s.items.pushBack(t, n)
	for i := range s.indexes {
		var be *tokenEntry
		if s.indexes[i].built {
			be = s.indexes[i].push(t, n)
		}
		buckets = append(buckets, be)
	}
	return entry, buckets
}

// push adds one token to its bucket (none when the token binds no WME
// at the indexed level) and returns the bucket entry.
func (ix *tokenIndex) push(t *Token, n *Network) *tokenEntry {
	bound := t.WMEAt(ix.at.level)
	if bound == nil {
		return nil
	}
	k := keyOf(bound.GetAt(ix.at.attr))
	if ix.buckets == nil {
		ix.buckets = map[indexKey]*tokenList{}
	}
	b := ix.buckets[k]
	if b == nil {
		b = &tokenList{}
		ix.buckets[k] = b
	}
	return b.pushBack(t, n)
}

// removeEntries unlinks one token membership (item entry plus bucket
// entries) from the store's lists.
func (s *storeInst) removeEntries(entry *tokenEntry, buckets []*tokenEntry, n *Network) {
	s.items.unlink(entry, n)
	for _, be := range buckets {
		if be != nil {
			be.list.unlink(be, n)
		}
	}
}

// bucket returns the tokens whose bound value at the index's location
// equals the key (nil when the bucket is empty), materializing the
// index on first use.
func (s *storeInst) bucket(idx int, k indexKey, n *Network) *tokenList {
	ix := &s.indexes[idx]
	if !ix.built {
		s.buildIndex(idx, ix, n)
	}
	return ix.buckets[k]
}

// buildIndex backfills a lazily-registered index from the item list,
// patching each member token's storeBuckets record so removal stays
// O(1). Only node-owned memberships can exist in a lazy store (eager
// stores never reach here), so storeBuckets is always the right
// record to patch.
func (s *storeInst) buildIndex(idx int, ix *tokenIndex, n *Network) {
	ix.built = true
	for e := s.items.head; e != nil; e = e.next {
		if be := ix.push(e.t, n); be != nil {
			e.t.storeBuckets[idx] = be
		}
	}
}

// ---------------------------------------------------------------------------
// Entry free lists

func (n *Network) getWMEEntry() *wmeEntry {
	if len(n.wmeEntryPool) > 0 {
		e := n.wmeEntryPool[len(n.wmeEntryPool)-1]
		n.wmeEntryPool = n.wmeEntryPool[:len(n.wmeEntryPool)-1]
		return e
	}
	return &wmeEntry{}
}

func (n *Network) putWMEEntry(e *wmeEntry) {
	*e = wmeEntry{}
	n.wmeEntryPool = append(n.wmeEntryPool, e)
}

func (n *Network) getTokenEntry() *tokenEntry {
	if len(n.tokenEntryPool) > 0 {
		e := n.tokenEntryPool[len(n.tokenEntryPool)-1]
		n.tokenEntryPool = n.tokenEntryPool[:len(n.tokenEntryPool)-1]
		return e
	}
	return &tokenEntry{}
}

func (n *Network) putTokenEntry(e *tokenEntry) {
	*e = tokenEntry{}
	n.tokenEntryPool = append(n.tokenEntryPool, e)
}
