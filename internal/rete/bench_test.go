package rete

import (
	"fmt"
	"testing"

	"spampsm/internal/symtab"
	"spampsm/internal/wm"
)

// Network-level join benchmarks: assert/retract churn against
// join-heavy productions, run under the indexed (default) and naive
// matchers. The naive variant is the pre-indexing matcher, so the
// indexed/naive ratio is the optimisation's wall-clock win at
// identical simulated cost (see differential_test.go).

// benchAgenda is a no-op agenda so the benchmark measures the network,
// not conflict resolution.
type benchAgenda struct{}

func (benchAgenda) Activate(p *PNode, t *Token)   {}
func (benchAgenda) Deactivate(p *PNode, t *Token) {}

// buildJoinBenchNet builds a network with group-joined productions:
// for each of eight focal groups, a 3-CE chain production whose CEs
// join on ^group equality and discriminate on ^id. Equality-first
// test lists make every join indexable.
func buildJoinBenchNet(b *testing.B, indexed bool) (*Network, *wm.Classes) {
	b.Helper()
	cs := wm.NewClasses()
	if _, err := cs.Declare("item", "id", "group", "val"); err != nil {
		b.Fatal(err)
	}
	net := New(benchAgenda{})
	net.SetIndexing(indexed)
	gt := func(a, o symtab.Value) bool { return a.FloatVal() > o.FloatVal() }
	for p := 0; p < 8; p++ {
		pats := []Pattern{
			{Class: "item", Signature: "item*"},
			{Class: "item", Signature: "item*", Tests: []JoinTest{
				{OwnAttr: 1, TokenLevel: 0, TokenAttr: 1, Pred: eqPred, Eq: true},
				{OwnAttr: 0, TokenLevel: 0, TokenAttr: 0, Pred: gt},
			}},
			{Class: "item", Signature: "item*", Tests: []JoinTest{
				{OwnAttr: 1, TokenLevel: 1, TokenAttr: 1, Pred: eqPred, Eq: true},
				{OwnAttr: 0, TokenLevel: 1, TokenAttr: 0, Pred: gt},
			}},
		}
		if _, err := net.AddProduction(fmt.Sprintf("chain%d", p), pats, nil); err != nil {
			b.Fatal(err)
		}
	}
	return net, cs
}

func benchJoinChurn(b *testing.B, indexed bool) {
	const items, groups = 384, 64
	net, cs := buildJoinBenchNet(b, indexed)
	mem := wm.NewMemory(cs)
	wmes := make([]*wm.WME, 0, items)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.StartBatch()
		wmes = wmes[:0]
		for j := 0; j < items; j++ {
			w, err := mem.Make("item", map[string]symtab.Value{
				"id":    symtab.Int(int64(j)),
				"group": symtab.Int(int64(j % groups)),
				"val":   symtab.Int(int64(-j)),
			})
			if err != nil {
				b.Fatal(err)
			}
			net.Add(w)
			wmes = append(wmes, w)
		}
		for _, w := range wmes {
			if err := mem.Remove(w); err != nil {
				b.Fatal(err)
			}
			net.Remove(w)
		}
	}
	b.StopTimer()
	tot := net.Totals()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(tot.TokensCreated+tot.TokensDeleted)/sec, "tokens/s")
	}
}

// BenchmarkJoinChurn measures assert/retract churn over 8 three-CE
// group-joined productions and 384 WMEs in 64 groups.
func BenchmarkJoinChurn(b *testing.B) {
	b.Run("indexed", func(b *testing.B) { benchJoinChurn(b, true) })
	b.Run("naive", func(b *testing.B) { benchJoinChurn(b, false) })
}

func benchWideEqJoin(b *testing.B, indexed bool) {
	// One wide equality join: every asserted item pairs with the items
	// of its group. Bucket size stays small while the memory is large,
	// so the naive right-activation scan dominates its runtime.
	cs := wm.NewClasses()
	if _, err := cs.Declare("item", "id", "group", "val"); err != nil {
		b.Fatal(err)
	}
	net := New(benchAgenda{})
	net.SetIndexing(indexed)
	pats := []Pattern{
		{Class: "item", Signature: "item*"},
		{Class: "item", Signature: "item*", Tests: []JoinTest{
			{OwnAttr: 1, TokenLevel: 0, TokenAttr: 1, Pred: eqPred, Eq: true},
		}},
	}
	if _, err := net.AddProduction("pairs", pats, nil); err != nil {
		b.Fatal(err)
	}
	const items, groups = 1024, 128
	mem := wm.NewMemory(cs)
	wmes := make([]*wm.WME, 0, items)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.StartBatch()
		wmes = wmes[:0]
		for j := 0; j < items; j++ {
			w, err := mem.Make("item", map[string]symtab.Value{
				"id":    symtab.Int(int64(j)),
				"group": symtab.Int(int64(j % groups)),
			})
			if err != nil {
				b.Fatal(err)
			}
			net.Add(w)
			wmes = append(wmes, w)
		}
		for _, w := range wmes {
			if err := mem.Remove(w); err != nil {
				b.Fatal(err)
			}
			net.Remove(w)
		}
	}
	b.StopTimer()
	tot := net.Totals()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(tot.TokensCreated+tot.TokensDeleted)/sec, "tokens/s")
	}
}

// BenchmarkWideEqJoin measures a single two-CE equality join over 1024
// WMEs in 128 groups — the purest index-vs-scan comparison.
func BenchmarkWideEqJoin(b *testing.B) {
	b.Run("indexed", func(b *testing.B) { benchWideEqJoin(b, true) })
	b.Run("naive", func(b *testing.B) { benchWideEqJoin(b, false) })
}
