package rete

import (
	"fmt"
	"strings"
	"testing"

	"spampsm/internal/symtab"
	"spampsm/internal/wm"
)

// The differential oracle: every scenario is run through the indexed
// matcher (the default) and the naive full-scan matcher
// (SetIndexing(false)), and the two must agree byte-for-byte on
//
//   - the conflict-set event sequence (activation/deactivation order,
//     production, and WME timetags of every instantiation),
//   - the aggregate Counters (the simulated NS32332 cost model), and
//   - the captured activation forests (labels, per-node costs, tree
//     shape).
//
// This is the invariant that keeps the paper's calibrated cost curves
// valid: indexing changes wall-clock, never accounting.

// seqRecorder is an agenda that logs conflict-set events in order,
// identifying instantiations by production name and WME timetags so
// logs are comparable across distinct Network instances.
type seqRecorder struct {
	events []string
}

func instKey(p *PNode, t *Token) string {
	var sb strings.Builder
	sb.WriteString(p.Name)
	for _, w := range t.WMEs() {
		fmt.Fprintf(&sb, ",%d", w.TimeTag)
	}
	return sb.String()
}

func (r *seqRecorder) Activate(p *PNode, t *Token)   { r.events = append(r.events, "+"+instKey(p, t)) }
func (r *seqRecorder) Deactivate(p *PNode, t *Token) { r.events = append(r.events, "-"+instKey(p, t)) }

// renderForest serializes an activation forest: labels, costs and tree
// shape, in order.
func renderForest(batch []*Activation, sb *strings.Builder) {
	for _, a := range batch {
		fmt.Fprintf(sb, "%s(%g)", a.Label, a.Cost)
		if len(a.Children) > 0 {
			sb.WriteString("[")
			renderForest(a.Children, sb)
			sb.WriteString("]")
		}
		sb.WriteString(";")
	}
}

// diffScript is one generated scenario: productions plus a WM mutation
// sequence, replayable against any Network configuration.
type diffScript struct {
	classes *wm.Classes
	defs    []*wm.ClassDef
	prods   [][]Pattern
	// steps: step >= 0 asserts makes[step]; step < 0 removes the live
	// WME at index ^step.
	steps []int
	makes []map[string]symtab.Value
	mkCls []string
}

func genScript(seed uint64) *diffScript {
	rng := &oracleRng{s: seed * 10007}
	cs := wm.NewClasses()
	ca, _ := cs.Declare("alpha", "x", "y")
	cb, _ := cs.Declare("beta", "u", "v", "w")
	s := &diffScript{classes: cs, defs: []*wm.ClassDef{ca, cb}}
	nProds := 3 + rng.intn(4)
	for pi := 0; pi < nProds; pi++ {
		nCEs := 1 + rng.intn(4)
		var pats []Pattern
		for ci := 0; ci < nCEs; ci++ {
			negated := ci > 0 && rng.intn(4) == 0
			pat, _ := genPattern(rng, s.defs, ci, negated)
			pats = append(pats, pat)
		}
		s.prods = append(s.prods, pats)
	}
	live := 0
	for step := 0; step < 80; step++ {
		if live == 0 || rng.intn(3) > 0 {
			cd := s.defs[rng.intn(len(s.defs))]
			sets := map[string]symtab.Value{}
			for _, a := range cd.Attrs {
				sets[a] = symtab.Int(int64(rng.intn(3)))
			}
			s.steps = append(s.steps, len(s.makes))
			s.makes = append(s.makes, sets)
			s.mkCls = append(s.mkCls, cd.Name)
			live++
		} else {
			s.steps = append(s.steps, ^rng.intn(live))
			live--
		}
	}
	return s
}

// diffRun is one replay of a script: the event log, the per-step
// counters, and the serialized activation forests.
type diffRun struct {
	events   []string
	counters []Counters
	forests  string
}

// replay runs the script on a fresh owned network (New +
// AddProduction). Each step is one batch so captured forests line up
// step-for-step.
func (s *diffScript) replay(t *testing.T, indexed bool) *diffRun {
	t.Helper()
	rec := &seqRecorder{}
	net := New(rec)
	net.SetIndexing(indexed)
	for pi, pats := range s.prods {
		if _, err := net.AddProduction(fmt.Sprintf("p%d", pi), pats, nil); err != nil {
			t.Fatal(err)
		}
	}
	return s.replayOn(t, net, rec)
}

// template compiles the script's productions into a shared Template.
func (s *diffScript) template(t *testing.T, indexed bool) *Template {
	t.Helper()
	tmpl := NewTemplate()
	tmpl.SetIndexing(indexed)
	for pi, pats := range s.prods {
		if _, err := tmpl.AddProduction(fmt.Sprintf("p%d", pi), pats, nil); err != nil {
			t.Fatal(err)
		}
	}
	return tmpl
}

// replayOn runs the script on an already-compiled network whose agenda
// is rec.
func (s *diffScript) replayOn(t *testing.T, net *Network, rec *seqRecorder) *diffRun {
	t.Helper()
	net.SetCapture(true)
	mem := wm.NewMemory(s.classes)
	var live []*wm.WME
	run := &diffRun{}
	var forests strings.Builder
	record := func(step int) {
		run.events = append(run.events, fmt.Sprintf("#%d", step))
		run.counters = append(run.counters, net.Totals())
		fmt.Fprintf(&forests, "#%d:", step)
		renderForest(net.TakeBatch(), &forests)
	}
	for i, step := range s.steps {
		net.StartBatch()
		if step >= 0 {
			w, err := mem.Make(s.mkCls[step], s.makes[step])
			if err != nil {
				t.Fatal(err)
			}
			net.Add(w)
			live = append(live, w)
		} else {
			k := ^step
			w := live[k]
			if err := mem.Remove(w); err != nil {
				t.Fatal(err)
			}
			net.Remove(w)
			live = append(live[:k], live[k+1:]...)
		}
		run.events = append(run.events, rec.events...)
		rec.events = rec.events[:0]
		record(i)
	}
	// Drain.
	for len(live) > 0 {
		net.StartBatch()
		w := live[len(live)-1]
		live = live[:len(live)-1]
		if err := mem.Remove(w); err != nil {
			t.Fatal(err)
		}
		net.Remove(w)
		run.events = append(run.events, rec.events...)
		rec.events = rec.events[:0]
		record(-1)
	}
	run.forests = forests.String()
	return run
}

func diffRunsEqual(t *testing.T, seed uint64, a, b *diffRun, aName, bName string) {
	t.Helper()
	if len(a.events) != len(b.events) {
		t.Fatalf("seed %d: event count %s=%d %s=%d", seed, aName, len(a.events), bName, len(b.events))
	}
	for i := range a.events {
		if a.events[i] != b.events[i] {
			t.Fatalf("seed %d: event %d: %s=%q %s=%q", seed, i, aName, a.events[i], bName, b.events[i])
		}
	}
	for i := range a.counters {
		if a.counters[i] != b.counters[i] {
			t.Fatalf("seed %d: counters after step %d differ:\n %s: %+v\n %s: %+v",
				seed, i, aName, a.counters[i], bName, b.counters[i])
		}
	}
	if a.forests != b.forests {
		t.Fatalf("seed %d: activation forests differ between %s and %s", seed, aName, bName)
	}
}

// TestDifferentialIndexedVsNaive replays randomized scenarios through
// the indexed and naive matchers and requires identical conflict-set
// event sequences, byte-identical Counters after every step, and
// identical captured activation forests.
func TestDifferentialIndexedVsNaive(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		s := genScript(seed)
		indexed := s.replay(t, true)
		naive := s.replay(t, false)
		diffRunsEqual(t, seed, indexed, naive, "indexed", "naive")
	}
}

// TestDeterministicActivationForests replays the same scenario twice
// through the default (indexed) matcher and requires the two captured
// runs to be identical — memory iteration order is insertion order,
// never map order, so activation forests are reproducible.
func TestDeterministicActivationForests(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		s := genScript(seed * 31)
		run1 := s.replay(t, true)
		run2 := s.replay(t, true)
		diffRunsEqual(t, seed, run1, run2, "run1", "run2")
	}
}

// TestIndexedIsDefault pins the default matcher mode: indexing must be
// on unless explicitly disabled.
func TestIndexedIsDefault(t *testing.T) {
	n := New(&seqRecorder{})
	if !n.Indexing() {
		t.Fatal("indexed matching must be the default")
	}
}
