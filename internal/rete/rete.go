// Package rete implements the Rete match network used by the OPS5
// engine: a constant-test alpha network with shared alpha memories, a
// beta network of join and negative nodes with variable-consistency
// tests, production nodes feeding a conflict-set agenda, and tree-based
// token deletion (after Doorenbos, "Production Matching for Large
// Learning Systems").
//
// The network also accounts for match cost at the granularity ParaOPS5
// parallelizes: every node activation (an alpha-memory delta arriving
// at a join/negative node, or a token arriving at a node) is recorded
// as an Activation with its instruction cost and its child activations.
// The per-cycle forest of activations is the schedulable workload for
// the match-parallelism studies.
package rete

import (
	"fmt"

	"spampsm/internal/symtab"
	"spampsm/internal/wm"
)

// Instruction costs of the primitive match operations, in simulated
// NS32332 instructions (the Encore Multimax processor of the paper).
// The constants reflect the interpreted OPS5 match of the era (symbol
// dereferencing, tag checks, list traversal), calibrated so that one
// node activation lands near the ~100-instruction subtask granularity
// ParaOPS5 reports.
const (
	CostAlphaFilterTerm = 60  // one constant test in the alpha network
	CostAlphaMemOp      = 100 // insert/remove in an alpha memory
	CostJoinTest        = 160 // one variable consistency test
	CostTokenOp         = 260 // token create/delete incl. memory insert
	CostNegJoinResult   = 190 // negative-node join result bookkeeping
	CostAgendaOp        = 300 // conflict-set insert/remove
	CostActivationBase  = 120 // scheduling overhead of one node activation
	// CostAlphaScan is the (small) dispatch cost of testing one alpha
	// memory during the constant-test sweep of a WME change; the sweep
	// is cheap relative to the beta activations it triggers.
	CostAlphaScan = 20
)

// Activation records one node activation: its label, instruction cost,
// and the child activations it spawned. ParaOPS5 executes each node
// activation as an independent ~100-instruction subtask; the forest of
// activations per recognize-act cycle is what match parallelism
// schedules.
type Activation struct {
	Label    string
	Cost     float64 // instructions
	Children []*Activation
}

// TotalCost returns the cost of the activation and all descendants.
func (a *Activation) TotalCost() float64 {
	t := a.Cost
	for _, c := range a.Children {
		t += c.TotalCost()
	}
	return t
}

// Count returns the number of activations in the tree rooted at a.
func (a *Activation) Count() int {
	n := 1
	for _, c := range a.Children {
		n += c.Count()
	}
	return n
}

// PredFn evaluates a join-test predicate over (wme value, token value).
type PredFn func(own, bound symtab.Value) bool

// JoinTest is one variable-consistency test of a join or negative node:
// the new WME's attribute OwnAttr is compared against attribute
// TokenAttr of the WME bound at condition-element index TokenLevel.
type JoinTest struct {
	OwnAttr    int
	TokenLevel int
	TokenAttr  int
	Pred       PredFn
}

// Pattern is the compiled form of one condition element.
type Pattern struct {
	Negated bool
	Class   string
	// Signature identifies the alpha test so equivalent patterns share
	// one alpha memory.
	Signature string
	// Filter applies the CE's constant and intra-element tests.
	Filter func(*wm.WME) bool
	// FilterCost is the instruction cost of one Filter evaluation.
	FilterCost float64
	// Tests are the inter-element variable consistency tests.
	Tests []JoinTest
}

// Token is a partial instantiation: a chain of WMEs, one level per
// condition element (negated CEs and production nodes hold nil WMEs).
type Token struct {
	parent   *Token
	W        *wm.WME
	level    int // condition-element index; -1 for the dummy token
	node     tokenHolder
	children []*Token
	// joinResults, for tokens owned by negative nodes: the WMEs
	// currently blocking the negated condition.
	joinResults []*negJoinResult
	// adapters: bridge memories the token is currently a member of
	// (tokens of negative nodes flow into an adapter memory that feeds
	// the next join level).
	adapters []*betaMemory
}

// WMEAt returns the WME bound at condition-element level k (nil for
// negated levels).
func (t *Token) WMEAt(k int) *wm.WME {
	for tok := t; tok != nil; tok = tok.parent {
		if tok.level == k {
			return tok.W
		}
	}
	return nil
}

// WMEs returns the positive-CE WMEs of the token in CE order.
func (t *Token) WMEs() []*wm.WME {
	var rev []*wm.WME
	for tok := t; tok != nil && tok.level >= 0; tok = tok.parent {
		if tok.W != nil {
			rev = append(rev, tok.W)
		}
	}
	out := make([]*wm.WME, len(rev))
	for i, w := range rev {
		out[len(rev)-1-i] = w
	}
	return out
}

type negJoinResult struct {
	owner *Token
	wme   *wm.WME
}

// wmeState tracks the network's per-WME bookkeeping.
type wmeState struct {
	alphaMems      []*alphaMem
	tokens         []*Token
	negJoinResults []*negJoinResult
}

// tokenHolder is any node that stores tokens.
type tokenHolder interface {
	removeToken(t *Token)
}

// tokenChild receives a bare token from a memory-ish parent.
type tokenChild interface {
	leftActivateToken(t *Token, n *Network)
}

// rightChild receives alpha-memory deltas.
type rightChild interface {
	rightActivate(w *wm.WME, n *Network)
	rightRetract(w *wm.WME, n *Network)
}

// alphaMem stores the WMEs passing one CE's constant tests.
type alphaMem struct {
	signature  string
	class      string
	filter     func(*wm.WME) bool
	filterCost float64
	items      map[*wm.WME]bool
	successors []rightChild
}

// betaMemory stores the tokens matching a prefix of positive CEs.
type betaMemory struct {
	items    map[*Token]bool
	children []tokenChild
	label    string
}

func (m *betaMemory) removeToken(t *Token) { delete(m.items, t) }

func (m *betaMemory) leftActivatePair(t *Token, w *wm.WME, level int, n *Network) {
	tok := n.newToken(m, t, w, level)
	m.items[tok] = true
	for _, c := range m.children {
		c.leftActivateToken(tok, n)
	}
}

// joinNode joins a parent beta memory with an alpha memory.
type joinNode struct {
	parent *betaMemory
	amem   *alphaMem
	tests  []JoinTest
	child  joinTarget
	level  int
	label  string
}

// joinTarget is what a join node feeds: the next beta memory, a
// negative node does not appear here (negatives hang off memories),
// or a production node.
type joinTarget interface {
	leftActivatePair(t *Token, w *wm.WME, level int, n *Network)
}

func (j *joinNode) passes(t *Token, w *wm.WME, n *Network) bool {
	for _, ts := range j.tests {
		n.charge(CostJoinTest)
		n.totals.JoinTests++
		bound := t.WMEAt(ts.TokenLevel)
		if bound == nil {
			return false
		}
		if !ts.Pred(w.GetAt(ts.OwnAttr), bound.GetAt(ts.TokenAttr)) {
			return false
		}
	}
	return true
}

func (j *joinNode) leftActivateToken(t *Token, n *Network) {
	n.begin("join:" + j.label)
	defer n.end()
	for w := range j.amem.items {
		if j.passes(t, w, n) {
			j.child.leftActivatePair(t, w, j.level, n)
		}
	}
}

func (j *joinNode) rightActivate(w *wm.WME, n *Network) {
	n.begin("join:" + j.label)
	defer n.end()
	for t := range j.parent.items {
		if j.passes(t, w, n) {
			j.child.leftActivatePair(t, w, j.level, n)
		}
	}
}

func (j *joinNode) rightRetract(w *wm.WME, n *Network) {
	// Tokens referencing w are deleted through the WME's token list;
	// nothing to do on the join node itself.
}

// negativeNode implements a negated CE. It stores the tokens that have
// passed the prefix and, for each, the set of WMEs currently matching
// the negated condition (join results). A token flows on to the
// children only while its join-result set is empty.
type negativeNode struct {
	parent   *betaMemory
	amem     *alphaMem
	tests    []JoinTest
	children []tokenChild
	items    map[*Token]bool
	level    int
	label    string
}

func (g *negativeNode) removeToken(t *Token) { delete(g.items, t) }

func (g *negativeNode) passes(t *Token, w *wm.WME, n *Network) bool {
	for _, ts := range g.tests {
		n.charge(CostJoinTest)
		n.totals.JoinTests++
		bound := t.WMEAt(ts.TokenLevel)
		if bound == nil {
			return false
		}
		if !ts.Pred(w.GetAt(ts.OwnAttr), bound.GetAt(ts.TokenAttr)) {
			return false
		}
	}
	return true
}

func (g *negativeNode) leftActivateToken(t *Token, n *Network) {
	n.begin("neg:" + g.label)
	tok := n.newToken(g, t, nil, g.level)
	g.items[tok] = true
	for w := range g.amem.items {
		if g.passes(tok, w, n) {
			n.charge(CostNegJoinResult)
			jr := &negJoinResult{owner: tok, wme: w}
			tok.joinResults = append(tok.joinResults, jr)
			st := n.state(w)
			st.negJoinResults = append(st.negJoinResults, jr)
		}
	}
	n.end()
	if len(tok.joinResults) == 0 {
		for _, c := range g.children {
			c.leftActivateToken(tok, n)
		}
	}
}

func (g *negativeNode) rightActivate(w *wm.WME, n *Network) {
	n.begin("neg:" + g.label)
	defer n.end()
	for tok := range g.items {
		if g.passes(tok, w, n) {
			n.charge(CostNegJoinResult)
			if len(tok.joinResults) == 0 {
				// The negation just became false: retract downstream and
				// withdraw the token from the bridge memories feeding the
				// next join level.
				for len(tok.children) > 0 {
					n.deleteToken(tok.children[len(tok.children)-1])
				}
				for _, ad := range tok.adapters {
					delete(ad.items, tok)
				}
				tok.adapters = nil
			}
			jr := &negJoinResult{owner: tok, wme: w}
			tok.joinResults = append(tok.joinResults, jr)
			st := n.state(w)
			st.negJoinResults = append(st.negJoinResults, jr)
		}
	}
}

func (g *negativeNode) rightRetract(w *wm.WME, n *Network) {
	// Handled via the WME's negJoinResults list in Network.Remove.
}

// PNode is a production node: its tokens are the instantiations of one
// production currently in the conflict set.
type PNode struct {
	Name string
	// Data carries the production object of the owning engine.
	Data  interface{}
	items map[*Token]bool
	level int
}

func (p *PNode) removeToken(t *Token) { delete(p.items, t) }

func (p *PNode) leftActivatePair(t *Token, w *wm.WME, level int, n *Network) {
	n.begin("p:" + p.Name)
	tok := n.newToken(p, t, w, level)
	p.items[tok] = true
	n.charge(CostAgendaOp)
	n.end()
	n.agenda.Activate(p, tok)
}

func (p *PNode) leftActivateToken(t *Token, n *Network) {
	p.leftActivatePair(t, nil, p.level, n)
}

// Agenda receives conflict-set activations and deactivations.
type Agenda interface {
	Activate(p *PNode, t *Token)
	Deactivate(p *PNode, t *Token)
}

// Counters aggregates network-wide match statistics.
type Counters struct {
	ConstTests    int
	JoinTests     int
	TokensCreated int
	TokensDeleted int
	Activations   int
	Cost          float64 // instructions
}

// Network is one Rete network instance. A Network is not safe for
// concurrent mutation; each SPAM/PSM task process owns its own network
// (that is the point of working-memory distribution).
type Network struct {
	agenda    Agenda
	amems     map[string]*alphaMem
	byClass   map[string][]*alphaMem
	dummyTop  *betaMemory
	dummyTok  *Token
	states    map[*wm.WME]*wmeState
	frozen    bool
	prods     []*PNode
	totals    Counters
	batch     []*Activation
	stack     []*Activation
	capturing bool
}

// New builds an empty network reporting to the given agenda.
func New(agenda Agenda) *Network {
	n := &Network{
		agenda:  agenda,
		amems:   map[string]*alphaMem{},
		byClass: map[string][]*alphaMem{},
		states:  map[*wm.WME]*wmeState{},
	}
	n.dummyTop = &betaMemory{items: map[*Token]bool{}, label: "top"}
	n.dummyTok = &Token{level: -1, node: n.dummyTop}
	n.dummyTop.items[n.dummyTok] = true
	return n
}

// Totals returns the aggregate match counters.
func (n *Network) Totals() Counters { return n.totals }

// NumAlphaMems returns the number of distinct alpha memories, which is
// less than the number of condition elements when patterns share
// signatures.
func (n *Network) NumAlphaMems() int { return len(n.amems) }

// SetCapture enables or disables per-activation tree capture. With
// capture off only the aggregate counters are maintained, which keeps
// long runs (hundreds of thousands of firings) cheap.
func (n *Network) SetCapture(on bool) { n.capturing = on }

// StartBatch clears the pending activation forest; the activations
// produced by subsequent Add/Remove calls accumulate until TakeBatch.
func (n *Network) StartBatch() { n.batch = n.batch[:0]; n.stack = n.stack[:0] }

// TakeBatch returns the activation forest accumulated since StartBatch.
func (n *Network) TakeBatch() []*Activation {
	out := n.batch
	n.batch = nil
	n.stack = n.stack[:0]
	return out
}

func (n *Network) begin(label string) { n.beginBase(label, CostActivationBase) }

// beginBase opens an activation with an explicit dispatch cost.
func (n *Network) beginBase(label string, base float64) {
	n.totals.Activations++
	n.totals.Cost += base
	if !n.capturing {
		return
	}
	a := &Activation{Label: label, Cost: base}
	if len(n.stack) == 0 {
		n.batch = append(n.batch, a)
	} else {
		p := n.stack[len(n.stack)-1]
		p.Children = append(p.Children, a)
	}
	n.stack = append(n.stack, a)
}

func (n *Network) end() {
	if !n.capturing || len(n.stack) == 0 {
		return
	}
	n.stack = n.stack[:len(n.stack)-1]
}

func (n *Network) charge(cost float64) {
	n.totals.Cost += cost
	if n.capturing && len(n.stack) > 0 {
		n.stack[len(n.stack)-1].Cost += cost
	}
}

func (n *Network) state(w *wm.WME) *wmeState {
	st := n.states[w]
	if st == nil {
		st = &wmeState{}
		n.states[w] = st
	}
	return st
}

func (n *Network) newToken(holder tokenHolder, parent *Token, w *wm.WME, level int) *Token {
	n.charge(CostTokenOp)
	n.totals.TokensCreated++
	tok := &Token{parent: parent, W: w, level: level, node: holder}
	if parent != nil {
		parent.children = append(parent.children, tok)
	}
	if w != nil {
		st := n.state(w)
		st.tokens = append(st.tokens, tok)
	}
	return tok
}

// AddProduction compiles a production's patterns into the network.
// All productions must be added before the first WME is asserted.
func (n *Network) AddProduction(name string, pats []Pattern, data interface{}) (*PNode, error) {
	if n.frozen {
		return nil, fmt.Errorf("rete: AddProduction(%s) after working memory was populated", name)
	}
	if len(pats) == 0 {
		return nil, fmt.Errorf("rete: production %s has no patterns", name)
	}
	if pats[0].Negated {
		return nil, fmt.Errorf("rete: production %s: first pattern may not be negated", name)
	}
	mem := n.dummyTop
	for i, pat := range pats {
		am := n.alpha(pat)
		last := i == len(pats)-1
		if pat.Negated {
			neg := &negativeNode{
				parent: mem, amem: am, tests: pat.Tests,
				items: map[*Token]bool{}, level: i,
				label: fmt.Sprintf("%s/%d", name, i+1),
			}
			mem.children = append(mem.children, neg)
			// Prepend: when one alpha memory feeds several levels of the
			// same chain, descendants must be right-activated before
			// ancestors or new-WME pairings are produced twice.
			am.successors = append([]rightChild{neg}, am.successors...)
			if last {
				p := &PNode{Name: name, Data: data, items: map[*Token]bool{}, level: i + 1}
				neg.children = append(neg.children, p)
				n.prods = append(n.prods, p)
				return p, nil
			}
			// The negative node acts as the memory for the next level,
			// via a bridge memory that holds its unblocked tokens.
			mem = negAdapter(neg)
			continue
		}
		j := &joinNode{parent: mem, amem: am, tests: pat.Tests, level: i,
			label: fmt.Sprintf("%s/%d", name, i+1)}
		mem.children = append(mem.children, j)
		// Prepend so descendants right-activate before ancestors (see the
		// negative-node case above).
		am.successors = append([]rightChild{j}, am.successors...)
		if last {
			p := &PNode{Name: name, Data: data, items: map[*Token]bool{}, level: i + 1}
			j.child = p
			n.prods = append(n.prods, p)
			return p, nil
		}
		next := &betaMemory{items: map[*Token]bool{}, label: fmt.Sprintf("%s/%d", name, i+1)}
		j.child = next
		mem = next
	}
	return nil, fmt.Errorf("rete: production %s: unreachable", name)
}

// negAdapter makes a negative node usable as the parent memory of the
// next join level: the join iterates the negative node's unblocked
// tokens and receives new tokens via leftActivateToken.
func negAdapter(g *negativeNode) *betaMemory {
	// A thin real memory fed by the negative node keeps join-node logic
	// uniform: tokens whose negation holds are copied into it.
	m := &betaMemory{items: map[*Token]bool{}, label: g.label + "/adapter"}
	g.children = append(g.children, (*negBridge)(m))
	return m
}

// negBridge forwards a token from a negative node into its adapter
// memory without adding a token level.
type negBridge betaMemory

func (b *negBridge) leftActivateToken(t *Token, n *Network) {
	m := (*betaMemory)(b)
	// Reuse the token itself: store and fan out. The token's holder
	// remains the negative node; the adapter tracks membership only.
	m.items[t] = true
	t.adapters = append(t.adapters, m)
	for _, c := range m.children {
		c.leftActivateToken(t, n)
	}
}

func (n *Network) alpha(pat Pattern) *alphaMem {
	if am, ok := n.amems[pat.Signature]; ok {
		return am
	}
	am := &alphaMem{
		signature:  pat.Signature,
		class:      pat.Class,
		filter:     pat.Filter,
		filterCost: pat.FilterCost,
		items:      map[*wm.WME]bool{},
	}
	n.amems[pat.Signature] = am
	n.byClass[pat.Class] = append(n.byClass[pat.Class], am)
	return am
}

// Add asserts a WME into the network. Each alpha memory is activated
// completely — insert, then right-activate its successors — before the
// next alpha memory sees the WME. The discipline matters: if the WME
// were inserted into every memory first, a beta cascade triggered by
// an earlier condition element would find the WME already present in a
// later element's memory and the later memory's own right activation
// would pair it a second time, duplicating instantiations.
func (n *Network) Add(w *wm.WME) {
	n.frozen = true
	for _, am := range n.byClass[w.Class.Name] {
		n.beginBase("alpha:"+am.signature, CostAlphaScan)
		n.charge(am.filterCost)
		n.totals.ConstTests++
		ok := am.filter == nil || am.filter(w)
		if ok {
			n.charge(CostAlphaMemOp)
			am.items[w] = true
			st := n.state(w)
			st.alphaMems = append(st.alphaMems, am)
		}
		n.end()
		if ok {
			// Right-activate before the next alpha memory sees w (see
			// the duplicate-pairing note above); the cascades are
			// independent root activations for the match scheduler.
			for _, s := range am.successors {
				s.rightActivate(w, n)
			}
		}
	}
}

// Remove retracts a WME from the network.
func (n *Network) Remove(w *wm.WME) {
	st := n.states[w]
	if st == nil {
		return
	}
	n.begin("retract:" + w.Class.Name)
	for _, am := range st.alphaMems {
		n.charge(CostAlphaMemOp)
		delete(am.items, w)
	}
	n.end()
	// Delete tokens referencing w (the token trees rooted at each).
	// Each root deletion is a schedulable node activation: ParaOPS5
	// parallelizes retraction the same way as assertion.
	for len(st.tokens) > 0 {
		tok := st.tokens[len(st.tokens)-1]
		n.begin("retract-tok:" + w.Class.Name)
		n.deleteToken(tok)
		n.end()
	}
	// Negative join results: conditions that were blocked by w may now
	// succeed.
	for _, jr := range st.negJoinResults {
		owner := jr.owner
		for i, r := range owner.joinResults {
			if r == jr {
				owner.joinResults = append(owner.joinResults[:i], owner.joinResults[i+1:]...)
				break
			}
		}
		n.begin("neg-unblock:" + w.Class.Name)
		n.charge(CostNegJoinResult)
		if len(owner.joinResults) == 0 {
			if g, ok := owner.node.(*negativeNode); ok {
				for _, c := range g.children {
					c.leftActivateToken(owner, n)
				}
			}
		}
		n.end()
	}
	delete(n.states, w)
}

func (n *Network) deleteToken(tok *Token) {
	for len(tok.children) > 0 {
		n.deleteToken(tok.children[len(tok.children)-1])
	}
	n.charge(CostTokenOp)
	n.totals.TokensDeleted++
	if p, ok := tok.node.(*PNode); ok {
		n.charge(CostAgendaOp)
		n.agenda.Deactivate(p, tok)
	}
	tok.node.removeToken(tok)
	for _, ad := range tok.adapters {
		delete(ad.items, tok)
	}
	tok.adapters = nil
	if tok.W != nil {
		st := n.states[tok.W]
		if st != nil {
			for i, t := range st.tokens {
				if t == tok {
					st.tokens = append(st.tokens[:i], st.tokens[i+1:]...)
					break
				}
			}
		}
	}
	if _, ok := tok.node.(*negativeNode); ok {
		for _, jr := range tok.joinResults {
			st := n.states[jr.wme]
			if st != nil {
				for i, r := range st.negJoinResults {
					if r == jr {
						st.negJoinResults = append(st.negJoinResults[:i], st.negJoinResults[i+1:]...)
						break
					}
				}
			}
		}
		tok.joinResults = nil
	}
	if tok.parent != nil {
		for i, c := range tok.parent.children {
			if c == tok {
				tok.parent.children = append(tok.parent.children[:i], tok.parent.children[i+1:]...)
				break
			}
		}
	}
}
