// Package rete implements the Rete match network used by the OPS5
// engine: a constant-test alpha network with shared alpha memories, a
// beta network of join and negative nodes with variable-consistency
// tests, production nodes feeding a conflict-set agenda, and tree-based
// token deletion (after Doorenbos, "Production Matching for Large
// Learning Systems").
//
// The network also accounts for match cost at the granularity ParaOPS5
// parallelizes: every node activation (an alpha-memory delta arriving
// at a join/negative node, or a token arriving at a node) is recorded
// as an Activation with its instruction cost and its child activations.
// The per-cycle forest of activations is the schedulable workload for
// the match-parallelism studies.
//
// Memories are equality-indexed (memory.go): when a join or negative
// node's first variable-consistency test is an equality, activations
// walk only the hash bucket that can pass it. The simulated cost model
// is unaffected — skipped pairs are charged arithmetically, and the
// differential oracle (differential_test.go) proves the indexed and
// unindexed matchers produce byte-identical Counters and identical
// firing sequences. See docs/PERFORMANCE.md.
//
// The network is split into an immutable compiled Template (node
// topology, test lists, production data — built once per rule set) and
// lightweight per-engine instances (Network: memories, hash indexes,
// counters, capture state). Template.NewNetwork instantiates a shared
// template in O(nodes) pointer setup, so a task runtime spawning
// hundreds of engines over one rule set compiles it exactly once; the
// template/instance differential oracle (template_test.go) proves
// instantiated networks byte-identical to fresh-compiled ones.
package rete

import (
	"fmt"
	"sync"

	"spampsm/internal/symtab"
	"spampsm/internal/wm"
)

// Instruction costs of the primitive match operations, in simulated
// NS32332 instructions (the Encore Multimax processor of the paper).
// The constants reflect the interpreted OPS5 match of the era (symbol
// dereferencing, tag checks, list traversal), calibrated so that one
// node activation lands near the ~100-instruction subtask granularity
// ParaOPS5 reports.
const (
	CostAlphaFilterTerm = 60  // one constant test in the alpha network
	CostAlphaMemOp      = 100 // insert/remove in an alpha memory
	CostJoinTest        = 160 // one variable consistency test
	CostTokenOp         = 260 // token create/delete incl. memory insert
	CostNegJoinResult   = 190 // negative-node join result bookkeeping
	CostAgendaOp        = 300 // conflict-set insert/remove
	CostActivationBase  = 120 // scheduling overhead of one node activation
	// CostAlphaScan is the (small) dispatch cost of testing one alpha
	// memory during the constant-test sweep of a WME change; the sweep
	// is cheap relative to the beta activations it triggers.
	CostAlphaScan = 20
)

// Activation records one node activation: its label, instruction cost,
// and the child activations it spawned. ParaOPS5 executes each node
// activation as an independent ~100-instruction subtask; the forest of
// activations per recognize-act cycle is what match parallelism
// schedules.
type Activation struct {
	Label    string
	Cost     float64 // instructions
	Children []*Activation
}

// TotalCost returns the cost of the activation and all descendants.
func (a *Activation) TotalCost() float64 {
	t := a.Cost
	for _, c := range a.Children {
		t += c.TotalCost()
	}
	return t
}

// Count returns the number of activations in the tree rooted at a.
func (a *Activation) Count() int {
	n := 1
	for _, c := range a.Children {
		n += c.Count()
	}
	return n
}

// PredFn evaluates a join-test predicate over (wme value, token value).
type PredFn func(own, bound symtab.Value) bool

// JoinTest is one variable-consistency test of a join or negative node:
// the new WME's attribute OwnAttr is compared against attribute
// TokenAttr of the WME bound at condition-element index TokenLevel.
type JoinTest struct {
	OwnAttr    int
	TokenLevel int
	TokenAttr  int
	Pred       PredFn
	// Eq declares that Pred implements OPS5 value equality
	// (symtab.Value.Equal semantics). A node whose test list begins
	// with an equality test activates through hash-indexed memories
	// instead of full scans. Setting Eq on any other predicate
	// produces wrong matches; leaving it unset merely loses the
	// speedup.
	Eq bool
}

// Pattern is the compiled form of one condition element.
type Pattern struct {
	Negated bool
	Class   string
	// Signature identifies the alpha test so equivalent patterns share
	// one alpha memory.
	Signature string
	// Filter applies the CE's constant and intra-element tests.
	Filter func(*wm.WME) bool
	// FilterCost is the instruction cost of one Filter evaluation.
	FilterCost float64
	// Tests are the inter-element variable consistency tests.
	Tests []JoinTest
}

// Token is a partial instantiation: a chain of WMEs, one level per
// condition element (negated CEs and production nodes hold nil WMEs).
//
// Tokens carry intrusive links for every list they belong to, so that
// deletion — the retraction hot path — is O(1) per membership instead
// of a linear scan: the sibling list of their parent token, the token
// list of the WME they bind, and the membership records of their
// holder's store and any bridge (adapter) memories. Deleted tokens are
// recycled through the network's free list; recycling is deferred to
// the next StartBatch so that an engine firing a production can still
// read the (already retracted) instantiation token's bindings.
type Token struct {
	parent *Token
	W      *wm.WME
	level  int // condition-element index; -1 for the dummy token
	node   tokenHolder

	// Intrusive child list; children are deleted newest-first, which
	// preserves the deletion order of the original slice-based
	// implementation.
	firstChild, lastChild *Token
	prevSib, nextSib      *Token

	// Intrusive membership of the binding WME's token list.
	wmePrev, wmeNext *Token

	// Membership records in the holder's token store (memory.go).
	storeEntry   *tokenEntry
	storeBuckets []*tokenEntry

	// adapterRefs: bridge memories the token is currently a member of
	// (tokens of negative nodes flow into an adapter memory that feeds
	// the next join level), with their membership records.
	adapterRefs []tokenRef

	// Join results, for tokens owned by negative nodes: the intrusive
	// list of WMEs currently blocking the negated condition.
	jrHead, jrTail *negJoinResult
	nJoinResults   int
}

// tokenRef is one token membership in a bridge memory.
type tokenRef struct {
	mem     *betaMemory
	entry   *tokenEntry
	buckets []*tokenEntry
}

// WMEAt returns the WME bound at condition-element level k (nil for
// negated levels).
func (t *Token) WMEAt(k int) *wm.WME {
	for tok := t; tok != nil; tok = tok.parent {
		if tok.level == k {
			return tok.W
		}
	}
	return nil
}

// WMEs returns the positive-CE WMEs of the token in CE order.
func (t *Token) WMEs() []*wm.WME {
	var rev []*wm.WME
	for tok := t; tok != nil && tok.level >= 0; tok = tok.parent {
		if tok.W != nil {
			rev = append(rev, tok.W)
		}
	}
	out := make([]*wm.WME, len(rev))
	for i, w := range rev {
		out[len(rev)-1-i] = w
	}
	return out
}

func (t *Token) appendChild(c *Token) {
	c.prevSib = t.lastChild
	c.nextSib = nil
	if t.lastChild != nil {
		t.lastChild.nextSib = c
	} else {
		t.firstChild = c
	}
	t.lastChild = c
}

func (t *Token) removeChild(c *Token) {
	if c.prevSib != nil {
		c.prevSib.nextSib = c.nextSib
	} else {
		t.firstChild = c.nextSib
	}
	if c.nextSib != nil {
		c.nextSib.prevSib = c.prevSib
	} else {
		t.lastChild = c.prevSib
	}
	c.prevSib, c.nextSib = nil, nil
}

func (t *Token) pushJR(jr *negJoinResult) {
	jr.ownerPrev = t.jrTail
	jr.ownerNext = nil
	if t.jrTail != nil {
		t.jrTail.ownerNext = jr
	} else {
		t.jrHead = jr
	}
	t.jrTail = jr
	t.nJoinResults++
}

func (t *Token) unlinkJR(jr *negJoinResult) {
	if jr.ownerPrev != nil {
		jr.ownerPrev.ownerNext = jr.ownerNext
	} else {
		t.jrHead = jr.ownerNext
	}
	if jr.ownerNext != nil {
		jr.ownerNext.ownerPrev = jr.ownerPrev
	} else {
		t.jrTail = jr.ownerPrev
	}
	jr.ownerPrev, jr.ownerNext = nil, nil
	t.nJoinResults--
}

// reset clears a recycled token, keeping slice capacity.
func (t *Token) reset() {
	adapterRefs := t.adapterRefs[:0]
	storeBuckets := t.storeBuckets[:0]
	*t = Token{adapterRefs: adapterRefs, storeBuckets: storeBuckets}
}

// negJoinResult records one WME blocking one negative-node token. It
// is a member of two intrusive lists: the owner token's join-result
// list and the blocking WME's per-state list.
type negJoinResult struct {
	owner                *Token
	wme                  *wm.WME
	ownerPrev, ownerNext *negJoinResult
	wmePrev, wmeNext     *negJoinResult
}

// wmeState tracks the network's per-WME bookkeeping: the WME's alpha
// memory memberships, the tokens binding it (intrusive list), and the
// negative join results it blocks (intrusive list).
type wmeState struct {
	alphaRefs        []alphaRef
	tokHead, tokTail *Token
	jrHead, jrTail   *negJoinResult
}

func (st *wmeState) pushToken(t *Token) {
	t.wmePrev = st.tokTail
	t.wmeNext = nil
	if st.tokTail != nil {
		st.tokTail.wmeNext = t
	} else {
		st.tokHead = t
	}
	st.tokTail = t
}

func (st *wmeState) unlinkToken(t *Token) {
	if t.wmePrev != nil {
		t.wmePrev.wmeNext = t.wmeNext
	} else {
		st.tokHead = t.wmeNext
	}
	if t.wmeNext != nil {
		t.wmeNext.wmePrev = t.wmePrev
	} else {
		st.tokTail = t.wmePrev
	}
	t.wmePrev, t.wmeNext = nil, nil
}

func (st *wmeState) pushJR(jr *negJoinResult) {
	jr.wmePrev = st.jrTail
	jr.wmeNext = nil
	if st.jrTail != nil {
		st.jrTail.wmeNext = jr
	} else {
		st.jrHead = jr
	}
	st.jrTail = jr
}

func (st *wmeState) unlinkJR(jr *negJoinResult) {
	if jr.wmePrev != nil {
		jr.wmePrev.wmeNext = jr.wmeNext
	} else {
		st.jrHead = jr.wmeNext
	}
	if jr.wmeNext != nil {
		jr.wmeNext.wmePrev = jr.wmePrev
	} else {
		st.jrTail = jr.wmePrev
	}
	jr.wmePrev, jr.wmeNext = nil, nil
}

// tokenHolder is any node that stores tokens. Nodes are immutable
// template objects; the instance the token lives in is passed in.
type tokenHolder interface {
	removeToken(t *Token, n *Network)
}

// tokenChild receives a bare token from a memory-ish parent.
type tokenChild interface {
	leftActivateToken(t *Token, n *Network)
}

// rightChild receives alpha-memory deltas.
type rightChild interface {
	rightActivate(w *wm.WME, n *Network)
}

// alphaMem is the compiled (template) form of one alpha memory: the
// constant-test filter shared by equivalent condition elements, the
// attributes its successor nodes registered equality indexes on, and
// the successor list. Per-instance contents (the WME list and the
// index buckets) live in the Network's alphaState slot at id.
type alphaMem struct {
	signature  string
	class      string
	filter     func(*wm.WME) bool
	filterCost float64
	indexAttrs []int // registered equality-index attributes
	successors []rightChild
	id         int // index into Network.alphaStates
}

func (am *alphaMem) state(n *Network) *alphaState { return &n.alphaStates[am.id] }

// registerIndex ensures the template maintains a bucket index over the
// given attribute and returns its position in the index list. Indexes
// are registered during production compilation, before any instance
// holds a WME, so instances never need backfill at registration time.
func (am *alphaMem) registerIndex(attr int) int {
	for i, a := range am.indexAttrs {
		if a == attr {
			return i
		}
	}
	am.indexAttrs = append(am.indexAttrs, attr)
	return len(am.indexAttrs) - 1
}

// storeT is the compiled (template) half of a token store: which
// (level, attr) equality indexes the join work iterating the store
// registered, and whether indexes must be maintained eagerly. The
// per-instance half (the token list and buckets) is the Network's
// storeInst slot at sid.
//
// eager forces indexes to be maintained from instantiation. It is set
// on negative-node adapter memories, whose membership records live in
// the token's adapterRefs and so cannot be patched by a lazy backfill
// (the node-owned membership of ordinary stores is reachable through
// Token.storeBuckets, which backfill patches in place).
type storeT struct {
	sid      int // index into Network.stores
	indexAts []levelAttr
	eager    bool
}

func (s *storeT) store(n *Network) *storeInst { return &n.stores[s.sid] }

// registerIndex ensures the store maintains a bucket index over the
// token value bound at (level, attr) and returns its position in the
// index list. Registration happens during production compilation,
// before instances exist; instance index slots (and the dummy token's
// parallel bucket records) are synchronized at instantiation.
func (s *storeT) registerIndex(level, attr int) int {
	at := levelAttr{level, attr}
	for i, a := range s.indexAts {
		if a == at {
			return i
		}
	}
	s.indexAts = append(s.indexAts, at)
	return len(s.indexAts) - 1
}

// betaMemory stores the tokens matching a prefix of positive CEs.
type betaMemory struct {
	storeT
	children []tokenChild
	label    string
}

func (m *betaMemory) removeToken(t *Token, n *Network) {
	m.store(n).removeEntries(t.storeEntry, t.storeBuckets, n)
}

func (m *betaMemory) leftActivatePair(t *Token, w *wm.WME, level int, n *Network) {
	tok := n.newToken(m, t, w, level)
	tok.storeEntry, tok.storeBuckets = m.store(n).insert(tok, tok.storeBuckets[:0], n)
	for _, c := range m.children {
		c.leftActivateToken(tok, n)
	}
}

// joinNode joins a parent beta memory with an alpha memory. It is
// fully immutable and shared across instances.
type joinNode struct {
	parent *betaMemory
	amem   *alphaMem
	tests  []JoinTest
	child  joinTarget
	level  int
	label  string
	// pidx/aidx are the positions of the equality index the node's
	// first test registered on the parent memory and the alpha memory,
	// or -1 when the node activates by full scan (no tests, first test
	// not an equality, or indexing disabled).
	pidx, aidx int
}

// joinTarget is what a join node feeds: the next beta memory, a
// negative node does not appear here (negatives hang off memories),
// or a production node.
type joinTarget interface {
	leftActivatePair(t *Token, w *wm.WME, level int, n *Network)
}

func (j *joinNode) passes(t *Token, w *wm.WME, n *Network) bool {
	for _, ts := range j.tests {
		n.charge(CostJoinTest)
		n.totals.JoinTests++
		bound := t.WMEAt(ts.TokenLevel)
		if bound == nil {
			return false
		}
		if !ts.Pred(w.GetAt(ts.OwnAttr), bound.GetAt(ts.TokenAttr)) {
			return false
		}
	}
	return true
}

func (j *joinNode) leftActivateToken(t *Token, n *Network) {
	n.begin("join:" + j.label)
	defer n.end()
	ast := j.amem.state(n)
	if j.aidx >= 0 {
		if ast.items.size == 0 {
			return // no pairs, no misses: nothing to charge
		}
		ts := &j.tests[0]
		bound := t.WMEAt(ts.TokenLevel)
		if bound == nil {
			// The referenced level binds no WME: every pair fails the
			// first test; charge them without iterating.
			n.chargeSkippedJoinTests(ast.items.size)
			return
		}
		bucket := j.amem.bucket(j.aidx, keyOf(bound.GetAt(ts.TokenAttr)), n)
		n.chargeSkippedJoinTests(ast.items.size - wmeBucketSize(bucket))
		if bucket == nil {
			return
		}
		for e := bucket.head; e != nil; e = e.next {
			if j.passes(t, e.w, n) {
				j.child.leftActivatePair(t, e.w, j.level, n)
			}
		}
		return
	}
	for e := ast.items.head; e != nil; e = e.next {
		if j.passes(t, e.w, n) {
			j.child.leftActivatePair(t, e.w, j.level, n)
		}
	}
}

func (j *joinNode) rightActivate(w *wm.WME, n *Network) {
	n.begin("join:" + j.label)
	defer n.end()
	pst := j.parent.store(n)
	if j.pidx >= 0 {
		if pst.items.size == 0 {
			return // no pairs, no misses: nothing to charge
		}
		bucket := j.parent.store(n).bucket(j.pidx, keyOf(w.GetAt(j.tests[0].OwnAttr)), n)
		n.chargeSkippedJoinTests(pst.items.size - tokenBucketSize(bucket))
		if bucket == nil {
			return
		}
		for e := bucket.head; e != nil; e = e.next {
			if j.passes(e.t, w, n) {
				j.child.leftActivatePair(e.t, w, j.level, n)
			}
		}
		return
	}
	for e := pst.items.head; e != nil; e = e.next {
		if j.passes(e.t, w, n) {
			j.child.leftActivatePair(e.t, w, j.level, n)
		}
	}
}

func wmeBucketSize(l *wmeList) int {
	if l == nil {
		return 0
	}
	return l.size
}

func tokenBucketSize(l *tokenList) int {
	if l == nil {
		return 0
	}
	return l.size
}

// negativeNode implements a negated CE. It stores the tokens that have
// passed the prefix and, for each, the set of WMEs currently matching
// the negated condition (join results). A token flows on to the
// children only while its join-result set is empty.
type negativeNode struct {
	storeT
	amem     *alphaMem
	tests    []JoinTest
	children []tokenChild
	level    int
	label    string
	// sidx/aidx are the equality index positions on the node's own
	// token store and its alpha memory, or -1 (see joinNode).
	sidx, aidx int
}

func (g *negativeNode) removeToken(t *Token, n *Network) {
	g.store(n).removeEntries(t.storeEntry, t.storeBuckets, n)
}

func (g *negativeNode) passes(t *Token, w *wm.WME, n *Network) bool {
	for _, ts := range g.tests {
		n.charge(CostJoinTest)
		n.totals.JoinTests++
		bound := t.WMEAt(ts.TokenLevel)
		if bound == nil {
			return false
		}
		if !ts.Pred(w.GetAt(ts.OwnAttr), bound.GetAt(ts.TokenAttr)) {
			return false
		}
	}
	return true
}

// block records w as a join result blocking tok.
func (g *negativeNode) block(tok *Token, w *wm.WME, n *Network) {
	jr := &negJoinResult{owner: tok, wme: w}
	tok.pushJR(jr)
	n.state(w).pushJR(jr)
}

func (g *negativeNode) leftActivateToken(t *Token, n *Network) {
	n.begin("neg:" + g.label)
	tok := n.newToken(g, t, nil, g.level)
	tok.storeEntry, tok.storeBuckets = g.store(n).insert(tok, tok.storeBuckets[:0], n)
	ast := g.amem.state(n)
	if g.aidx >= 0 && ast.items.size > 0 {
		ts := &g.tests[0]
		bound := tok.WMEAt(ts.TokenLevel)
		if bound == nil {
			n.chargeSkippedJoinTests(ast.items.size)
		} else {
			bucket := g.amem.bucket(g.aidx, keyOf(bound.GetAt(ts.TokenAttr)), n)
			n.chargeSkippedJoinTests(ast.items.size - wmeBucketSize(bucket))
			if bucket != nil {
				for e := bucket.head; e != nil; e = e.next {
					if g.passes(tok, e.w, n) {
						n.charge(CostNegJoinResult)
						g.block(tok, e.w, n)
					}
				}
			}
		}
	} else if g.aidx < 0 {
		for e := ast.items.head; e != nil; e = e.next {
			if g.passes(tok, e.w, n) {
				n.charge(CostNegJoinResult)
				g.block(tok, e.w, n)
			}
		}
	}
	n.end()
	if tok.nJoinResults == 0 {
		for _, c := range g.children {
			c.leftActivateToken(tok, n)
		}
	}
}

func (g *negativeNode) rightActivate(w *wm.WME, n *Network) {
	n.begin("neg:" + g.label)
	defer n.end()
	st := g.store(n)
	if g.sidx >= 0 {
		if st.items.size == 0 {
			return // no pairs, no misses: nothing to charge
		}
		bucket := st.bucket(g.sidx, keyOf(w.GetAt(g.tests[0].OwnAttr)), n)
		n.chargeSkippedJoinTests(st.items.size - tokenBucketSize(bucket))
		if bucket == nil {
			return
		}
		for e := bucket.head; e != nil; e = e.next {
			g.rightPair(e.t, w, n)
		}
		return
	}
	for e := st.items.head; e != nil; e = e.next {
		g.rightPair(e.t, w, n)
	}
}

// rightPair applies one (stored token, new WME) pair of a negative
// node's right activation.
func (g *negativeNode) rightPair(tok *Token, w *wm.WME, n *Network) {
	if !g.passes(tok, w, n) {
		return
	}
	n.charge(CostNegJoinResult)
	if tok.nJoinResults == 0 {
		// The negation just became false: retract downstream and
		// withdraw the token from the bridge memories feeding the
		// next join level.
		for tok.lastChild != nil {
			n.deleteToken(tok.lastChild)
		}
		for _, ar := range tok.adapterRefs {
			ar.mem.store(n).removeEntries(ar.entry, ar.buckets, n)
		}
		tok.adapterRefs = tok.adapterRefs[:0]
	}
	g.block(tok, w, n)
}

// PNode is a production node: its tokens (held in the instance's store
// slot) are the instantiations of one production currently in the
// conflict set. PNodes are template objects shared by every instance;
// Name, Data and the store id are immutable after compilation.
type PNode struct {
	Name string
	// Data carries the production object of the owning rule compiler.
	Data interface{}
	storeT
	level int
}

func (p *PNode) removeToken(t *Token, n *Network) {
	p.store(n).removeEntries(t.storeEntry, t.storeBuckets, n)
}

func (p *PNode) leftActivatePair(t *Token, w *wm.WME, level int, n *Network) {
	n.begin("p:" + p.Name)
	tok := n.newToken(p, t, w, level)
	tok.storeEntry, tok.storeBuckets = p.store(n).insert(tok, tok.storeBuckets[:0], n)
	n.charge(CostAgendaOp)
	n.end()
	n.agenda.Activate(p, tok)
}

func (p *PNode) leftActivateToken(t *Token, n *Network) {
	p.leftActivatePair(t, nil, p.level, n)
}

// Agenda receives conflict-set activations and deactivations.
type Agenda interface {
	Activate(p *PNode, t *Token)
	Deactivate(p *PNode, t *Token)
}

// Counters aggregates network-wide match statistics. The differential
// oracle requires these to be byte-identical between the indexed and
// naive matchers: wall-clock optimisations must never perturb the
// simulated-instruction accounting.
type Counters struct {
	ConstTests    int
	JoinTests     int
	TokensCreated int
	TokensDeleted int
	Activations   int
	Cost          float64 // instructions
}

// Template is the immutable compiled form of a Rete network: alpha
// memories with their filters and successor lists, the beta topology
// of join/negative/production nodes, and the registered equality
// indexes. A Template is built once (AddProduction per production),
// then instantiated any number of times with NewNetwork; after the
// first instantiation it is frozen and safe for concurrent
// instantiation from multiple goroutines.
type Template struct {
	amems    map[string]*alphaMem
	byClass  map[string][]*alphaMem
	alphas   []*alphaMem // in id order
	stores   []*storeT   // every token store, in sid order
	dummyTop *betaMemory
	prods    []*PNode
	indexing bool
	frozen   bool

	// Memoized seed routing (seed.go): per class, the acceptance set of
	// each distinct seed WME digest under this template's constant
	// tests. Lazily populated by InsertBatch; guarded because many
	// engine instances route seeds concurrently during Prebuild.
	routeMu sync.RWMutex
	routes  map[string]*classRoutes
}

// NewTemplate returns an empty template with indexed matching enabled.
func NewTemplate() *Template {
	t := &Template{
		amems:    map[string]*alphaMem{},
		byClass:  map[string][]*alphaMem{},
		indexing: true,
	}
	t.dummyTop = &betaMemory{label: "top"}
	t.registerStore(&t.dummyTop.storeT, false)
	return t
}

// registerStore assigns the next store id to a node's store half.
func (t *Template) registerStore(s *storeT, eager bool) {
	s.sid = len(t.stores)
	s.eager = eager
	t.stores = append(t.stores, s)
}

// SetIndexing enables or disables equality-indexed memory activation.
// It must be called before AddProduction — nodes choose their
// activation strategy at compile time. The unindexed mode is the
// reference matcher: the differential oracle runs every scenario
// through both and requires byte-identical Counters and firing
// sequences.
func (t *Template) SetIndexing(on bool) { t.indexing = on }

// Indexing reports whether equality-indexed activation is enabled.
func (t *Template) Indexing() bool { return t.indexing }

// NumAlphaMems returns the number of distinct alpha memories, which is
// less than the number of condition elements when patterns share
// signatures.
func (t *Template) NumAlphaMems() int { return len(t.amems) }

// NumNodes returns the number of stateful nodes (alpha memories plus
// token stores) an instance allocates state slots for.
func (t *Template) NumNodes() int { return len(t.alphas) + len(t.stores) }

// Productions returns the compiled production nodes in addition order.
func (t *Template) Productions() []*PNode { return t.prods }

// AddProduction compiles a production's patterns into the template.
// All productions must be added before the first instantiation.
func (t *Template) AddProduction(name string, pats []Pattern, data interface{}) (*PNode, error) {
	if t.frozen {
		return nil, fmt.Errorf("rete: AddProduction(%s) after the template was instantiated", name)
	}
	if len(pats) == 0 {
		return nil, fmt.Errorf("rete: production %s has no patterns", name)
	}
	if pats[0].Negated {
		return nil, fmt.Errorf("rete: production %s: first pattern may not be negated", name)
	}
	mem := t.dummyTop
	for i, pat := range pats {
		am := t.alpha(pat)
		last := i == len(pats)-1
		// The node is index-accelerated when its first test is an
		// equality: the token-side store buckets on the (level, attr)
		// the test reads, the alpha memory on the WME attribute.
		indexable := t.indexing && len(pat.Tests) > 0 && pat.Tests[0].Eq
		if pat.Negated {
			neg := &negativeNode{
				amem: am, tests: pat.Tests, level: i,
				label: fmt.Sprintf("%s/%d", name, i+1),
				sidx:  -1, aidx: -1,
			}
			t.registerStore(&neg.storeT, false)
			if indexable {
				neg.sidx = neg.registerIndex(pat.Tests[0].TokenLevel, pat.Tests[0].TokenAttr)
				neg.aidx = am.registerIndex(pat.Tests[0].OwnAttr)
			}
			mem.children = append(mem.children, neg)
			// Successors append in ancestor-before-descendant order per
			// chain; Add right-activates them in reverse, so descendants
			// run first (required when one alpha memory feeds several
			// levels of the same chain, or new-WME pairings double).
			am.successors = append(am.successors, neg)
			if last {
				p := &PNode{Name: name, Data: data, level: i + 1}
				t.registerStore(&p.storeT, false)
				neg.children = append(neg.children, p)
				t.prods = append(t.prods, p)
				return p, nil
			}
			// The negative node acts as the memory for the next level,
			// via a bridge memory that holds its unblocked tokens.
			mem = t.negAdapter(neg)
			continue
		}
		j := &joinNode{parent: mem, amem: am, tests: pat.Tests, level: i,
			label: fmt.Sprintf("%s/%d", name, i+1), pidx: -1, aidx: -1}
		if indexable {
			j.pidx = mem.registerIndex(pat.Tests[0].TokenLevel, pat.Tests[0].TokenAttr)
			j.aidx = am.registerIndex(pat.Tests[0].OwnAttr)
		}
		mem.children = append(mem.children, j)
		am.successors = append(am.successors, j)
		if last {
			p := &PNode{Name: name, Data: data, level: i + 1}
			t.registerStore(&p.storeT, false)
			j.child = p
			t.prods = append(t.prods, p)
			return p, nil
		}
		next := &betaMemory{label: fmt.Sprintf("%s/%d", name, i+1)}
		t.registerStore(&next.storeT, false)
		j.child = next
		mem = next
	}
	return nil, fmt.Errorf("rete: production %s: unreachable", name)
}

// negAdapter makes a negative node usable as the parent memory of the
// next join level: the join iterates the negative node's unblocked
// tokens and receives new tokens via leftActivateToken.
func (t *Template) negAdapter(g *negativeNode) *betaMemory {
	// A thin real memory fed by the negative node keeps join-node logic
	// uniform: tokens whose negation holds are copied into it.
	m := &betaMemory{label: g.label + "/adapter"}
	// adapterRefs records cannot be patched by lazy backfill.
	t.registerStore(&m.storeT, true)
	g.children = append(g.children, (*negBridge)(m))
	return m
}

// negBridge forwards a token from a negative node into its adapter
// memory without adding a token level.
type negBridge betaMemory

func (b *negBridge) leftActivateToken(t *Token, n *Network) {
	m := (*betaMemory)(b)
	// Reuse the token itself: store and fan out. The token's holder
	// remains the negative node; the adapter tracks membership only.
	entry, buckets := m.store(n).insert(t, nil, n)
	t.adapterRefs = append(t.adapterRefs, tokenRef{mem: m, entry: entry, buckets: buckets})
	for _, c := range m.children {
		c.leftActivateToken(t, n)
	}
}

func (t *Template) alpha(pat Pattern) *alphaMem {
	if am, ok := t.amems[pat.Signature]; ok {
		return am
	}
	am := &alphaMem{
		signature:  pat.Signature,
		class:      pat.Class,
		filter:     pat.Filter,
		filterCost: pat.FilterCost,
		id:         len(t.alphas),
	}
	t.amems[pat.Signature] = am
	t.byClass[pat.Class] = append(t.byClass[pat.Class], am)
	t.alphas = append(t.alphas, am)
	return am
}

// Freeze marks the template complete: no further AddProduction. It is
// idempotent; call it once after compilation, before the template is
// shared across goroutines (instantiation also freezes, but a
// concurrent *first* instantiation of a never-frozen template races on
// the flag).
func (t *Template) Freeze() { t.frozen = true }

// NewNetwork instantiates the template: O(nodes) state-slot setup with
// no recompilation. The template is frozen by the first instantiation;
// concurrent NewNetwork calls on a frozen template are safe.
func (t *Template) NewNetwork(agenda Agenda) *Network {
	return t.NewNetworkScratch(agenda, nil)
}

// NewNetworkScratch is NewNetwork drawing the instance's free lists
// from a Scratch (see scratch.go); s may be nil.
func (t *Template) NewNetworkScratch(agenda Agenda, s *Scratch) *Network {
	if !t.frozen {
		t.frozen = true
	}
	n := &Network{
		tmpl:   t,
		agenda: agenda,
		states: map[*wm.WME]*wmeState{},
	}
	if s != nil {
		n.adoptScratch(s)
	}
	n.instantiate()
	return n
}

// instantiate sizes the per-instance state arrays and installs the
// dummy token.
func (n *Network) instantiate() {
	t := n.tmpl
	n.alphaStates = make([]alphaState, len(t.alphas))
	n.stores = make([]storeInst, len(t.stores))
	n.syncState()
	n.dummyTok = &Token{level: -1, node: t.dummyTop}
	n.dummyTok.storeEntry, n.dummyTok.storeBuckets = t.dummyTop.store(n).insert(n.dummyTok, nil, n)
}

// syncState brings the instance's state arrays (and the dummy token's
// bucket records) up to date with the template. For instances of a
// frozen template this runs exactly once; owned networks (New) call it
// again after each AddProduction, before any WME exists.
func (n *Network) syncState() {
	t := n.tmpl
	for len(n.alphaStates) < len(t.alphas) {
		n.alphaStates = append(n.alphaStates, alphaState{})
	}
	for i, am := range t.alphas {
		st := &n.alphaStates[i]
		for len(st.indexes) < len(am.indexAttrs) {
			st.indexes = append(st.indexes, wmeIndex{attr: am.indexAttrs[len(st.indexes)]})
		}
	}
	for len(n.stores) < len(t.stores) {
		n.stores = append(n.stores, storeInst{})
	}
	for i, s := range t.stores {
		st := &n.stores[i]
		for len(st.indexes) < len(s.indexAts) {
			st.indexes = append(st.indexes, tokenIndex{at: s.indexAts[len(st.indexes)], built: s.eager})
		}
	}
	if n.dummyTok != nil {
		// The dummy token's bucket records must stay parallel with the
		// top store's index list; it binds no WME, so every slot is nil.
		top := &n.stores[t.dummyTop.sid]
		for len(n.dummyTok.storeBuckets) < len(top.indexes) {
			n.dummyTok.storeBuckets = append(n.dummyTok.storeBuckets, nil)
		}
	}
}

// Network is one Rete network instance over a compiled template:
// per-instance memories, hash indexes, counters and capture state. A
// Network is not safe for concurrent mutation; each SPAM/PSM task
// process owns its own network (that is the point of working-memory
// distribution). Instances of one shared template are independent —
// creating and running them from different goroutines is safe.
type Network struct {
	tmpl   *Template
	agenda Agenda
	// owned marks a network built by New, which owns a private mutable
	// template (the pre-split API: AddProduction directly on the
	// network). Template-instantiated networks reject AddProduction.
	owned bool

	alphaStates []alphaState
	stores      []storeInst
	dummyTok    *Token
	states      map[*wm.WME]*wmeState
	frozen      bool
	totals      Counters
	batch       []*Activation
	stack       []*Activation
	capturing   bool
	// noSeedRouting disables the template route memo for InsertBatch
	// (SetSeedRouting): the differential-oracle escape hatch.
	noSeedRouting bool

	// Free lists. Deleted tokens rest in the graveyard until the next
	// StartBatch: an engine may read a fired instantiation's (already
	// retracted) token until its recognize-act cycle ends.
	tokenPool      []*Token
	graveyard      []*Token
	wmeEntryPool   []*wmeEntry
	tokenEntryPool []*tokenEntry

	// Token occupancy for the memory model: live tokens and their
	// high-water mark. Purely observational — Counters and charges are
	// untouched, so the simulated cost model stays byte-identical. The
	// create/delete sequence is already proven identical between the
	// indexed and naive matchers, so the peaks are too.
	liveTokens int
	peakTokens int
}

// TokenBytes is the modeled footprint of one beta-memory token, in
// simulated bytes — a round model constant like the NS32332 instruction
// costs, sized for the token record plus its intrusive list links.
const TokenBytes = 96

// New builds an empty network with its own private template, reporting
// to the given agenda. Productions are added directly with
// Network.AddProduction; use NewTemplate + Template.NewNetwork to
// compile once and instantiate many times.
func New(agenda Agenda) *Network {
	t := NewTemplate()
	n := &Network{
		tmpl:   t,
		agenda: agenda,
		owned:  true,
		states: map[*wm.WME]*wmeState{},
	}
	n.instantiate()
	return n
}

// SetIndexing enables or disables equality-indexed memory activation
// on the network's private template. It must be called before
// AddProduction — nodes choose their activation strategy at compile
// time.
func (n *Network) SetIndexing(on bool) { n.tmpl.SetIndexing(on) }

// Indexing reports whether equality-indexed activation is enabled.
func (n *Network) Indexing() bool { return n.tmpl.indexing }

// Template returns the compiled template this network instantiates.
// Engines built from one shared template return the same pointer.
func (n *Network) Template() *Template { return n.tmpl }

// Totals returns the aggregate match counters.
func (n *Network) Totals() Counters { return n.totals }

// PeakTokens returns the high-water mark of simultaneously-live beta
// tokens (the dummy top token included).
func (n *Network) PeakTokens() int { return n.peakTokens }

// NumAlphaMems returns the number of distinct alpha memories, which is
// less than the number of condition elements when patterns share
// signatures.
func (n *Network) NumAlphaMems() int { return n.tmpl.NumAlphaMems() }

// SetCapture enables or disables per-activation tree capture. With
// capture off only the aggregate counters are maintained, which keeps
// long runs (hundreds of thousands of firings) cheap.
func (n *Network) SetCapture(on bool) { n.capturing = on }

// AddProduction compiles a production into the network's private
// template. All productions must be added before the first WME is
// asserted; networks instantiated from a shared Template reject
// AddProduction (the template is compiled once, elsewhere).
func (n *Network) AddProduction(name string, pats []Pattern, data interface{}) (*PNode, error) {
	if !n.owned {
		return nil, fmt.Errorf("rete: AddProduction(%s) on a template-instantiated network", name)
	}
	if n.frozen {
		return nil, fmt.Errorf("rete: AddProduction(%s) after working memory was populated", name)
	}
	p, err := n.tmpl.AddProduction(name, pats, data)
	if err != nil {
		return nil, err
	}
	n.syncState()
	return p, nil
}

// StartBatch clears the pending activation forest; the activations
// produced by subsequent Add/Remove calls accumulate until TakeBatch.
// It is also the recycling point: tokens deleted since the previous
// batch return to the free list, so a caller holding a retracted
// token (the engine reading a fired instantiation's bindings) must
// not keep it across StartBatch.
func (n *Network) StartBatch() {
	n.batch = n.batch[:0]
	n.stack = n.stack[:0]
	n.RecycleGraveyard()
}

// RecycleGraveyard returns every token deleted since the previous
// recycling point to the free list. StartBatch does this once per
// recognize-act cycle; bulk retraction outside Run (an incremental
// update retracting a task's whole seed WM) must call it explicitly,
// or the entire deleted token population stays stranded in the
// graveyard until the next Run's first cycle. Callers must not hold
// retracted tokens (e.g. a fired instantiation's bindings) across this
// call.
func (n *Network) RecycleGraveyard() {
	for _, tok := range n.graveyard {
		tok.reset()
		n.tokenPool = append(n.tokenPool, tok)
	}
	n.graveyard = n.graveyard[:0]
}

// ResetPeaks restarts the token high-water mark from the current live
// population, so a retained engine's next run records its own peak
// rather than inheriting the previous run's. Observational only — it
// never affects Counters or match behaviour.
func (n *Network) ResetPeaks() { n.peakTokens = n.liveTokens }

// TakeBatch returns the activation forest accumulated since StartBatch.
func (n *Network) TakeBatch() []*Activation {
	out := n.batch
	n.batch = nil
	n.stack = n.stack[:0]
	return out
}

func (n *Network) begin(label string) { n.beginBase(label, CostActivationBase) }

// beginBase opens an activation with an explicit dispatch cost.
func (n *Network) beginBase(label string, base float64) {
	n.totals.Activations++
	n.totals.Cost += base
	if !n.capturing {
		return
	}
	a := &Activation{Label: label, Cost: base}
	if len(n.stack) == 0 {
		n.batch = append(n.batch, a)
	} else {
		p := n.stack[len(n.stack)-1]
		p.Children = append(p.Children, a)
	}
	n.stack = append(n.stack, a)
}

func (n *Network) end() {
	if !n.capturing || len(n.stack) == 0 {
		return
	}
	n.stack = n.stack[:len(n.stack)-1]
}

func (n *Network) charge(cost float64) {
	n.totals.Cost += cost
	if n.capturing && len(n.stack) > 0 {
		n.stack[len(n.stack)-1].Cost += cost
	}
}

// chargeSkippedJoinTests accounts for the pairs an index walk skips:
// in the unindexed matcher each of them would have been offered to the
// node, failed its first equality test, and cost exactly one
// CostJoinTest. The charge is computed arithmetically from the skip
// count — never by iterating — which is what makes indexed activation
// faster at byte-identical simulated cost.
func (n *Network) chargeSkippedJoinTests(skipped int) {
	if skipped <= 0 {
		return
	}
	n.charge(CostJoinTest * float64(skipped))
	n.totals.JoinTests += skipped
}

func (n *Network) state(w *wm.WME) *wmeState {
	st := n.states[w]
	if st == nil {
		st = &wmeState{}
		n.states[w] = st
	}
	return st
}

func (n *Network) newToken(holder tokenHolder, parent *Token, w *wm.WME, level int) *Token {
	n.charge(CostTokenOp)
	n.totals.TokensCreated++
	n.liveTokens++
	if n.liveTokens > n.peakTokens {
		n.peakTokens = n.liveTokens
	}
	var tok *Token
	if k := len(n.tokenPool); k > 0 {
		tok = n.tokenPool[k-1]
		n.tokenPool = n.tokenPool[:k-1]
	} else {
		tok = &Token{}
	}
	tok.parent = parent
	tok.W = w
	tok.level = level
	tok.node = holder
	if parent != nil {
		parent.appendChild(tok)
	}
	if w != nil {
		n.state(w).pushToken(tok)
	}
	return tok
}

// Add asserts a WME into the network. Each alpha memory is activated
// completely — insert, then right-activate its successors — before the
// next alpha memory sees the WME. The discipline matters: if the WME
// were inserted into every memory first, a beta cascade triggered by
// an earlier condition element would find the WME already present in a
// later element's memory and the later memory's own right activation
// would pair it a second time, duplicating instantiations.
func (n *Network) Add(w *wm.WME) {
	n.frozen = true
	for _, am := range n.tmpl.byClass[w.Class.Name] {
		n.beginBase("alpha:"+am.signature, CostAlphaScan)
		n.charge(am.filterCost)
		n.totals.ConstTests++
		ok := am.filter == nil || am.filter(w)
		if ok {
			n.charge(CostAlphaMemOp)
			st := n.state(w)
			st.alphaRefs = append(st.alphaRefs, am.insert(w, n))
		}
		n.end()
		if ok {
			// Right-activate before the next alpha memory sees w (see
			// the duplicate-pairing note above); the cascades are
			// independent root activations for the match scheduler.
			// Successors run newest-first so that within a chain
			// descendants right-activate before ancestors (see
			// AddProduction).
			for i := len(am.successors) - 1; i >= 0; i-- {
				am.successors[i].rightActivate(w, n)
			}
		}
	}
}

// Remove retracts a WME from the network.
func (n *Network) Remove(w *wm.WME) {
	st := n.states[w]
	if st == nil {
		return
	}
	n.begin("retract:" + w.Class.Name)
	for _, ref := range st.alphaRefs {
		n.charge(CostAlphaMemOp)
		ref.am.removeRef(ref, n)
	}
	n.end()
	// Delete tokens referencing w (the token trees rooted at each).
	// Each root deletion is a schedulable node activation: ParaOPS5
	// parallelizes retraction the same way as assertion.
	for st.tokTail != nil {
		tok := st.tokTail
		n.begin("retract-tok:" + w.Class.Name)
		n.deleteToken(tok)
		n.end()
	}
	// Negative join results: conditions that were blocked by w may now
	// succeed. No join result can be added to w here (it is gone from
	// every alpha memory) and the unblock cascades only create tokens,
	// so walking the intrusive list is safe.
	for jr := st.jrHead; jr != nil; jr = jr.wmeNext {
		owner := jr.owner
		owner.unlinkJR(jr)
		n.begin("neg-unblock:" + w.Class.Name)
		n.charge(CostNegJoinResult)
		if owner.nJoinResults == 0 {
			if g, ok := owner.node.(*negativeNode); ok {
				for _, c := range g.children {
					c.leftActivateToken(owner, n)
				}
			}
		}
		n.end()
	}
	delete(n.states, w)
}

func (n *Network) deleteToken(tok *Token) {
	for tok.lastChild != nil {
		n.deleteToken(tok.lastChild)
	}
	n.charge(CostTokenOp)
	n.totals.TokensDeleted++
	n.liveTokens--
	if p, ok := tok.node.(*PNode); ok {
		n.charge(CostAgendaOp)
		n.agenda.Deactivate(p, tok)
	}
	tok.node.removeToken(tok, n)
	for _, ar := range tok.adapterRefs {
		ar.mem.store(n).removeEntries(ar.entry, ar.buckets, n)
	}
	tok.adapterRefs = tok.adapterRefs[:0]
	if tok.W != nil {
		if st := n.states[tok.W]; st != nil {
			st.unlinkToken(tok)
		}
	}
	if _, ok := tok.node.(*negativeNode); ok {
		for jr := tok.jrHead; jr != nil; {
			next := jr.ownerNext
			if st := n.states[jr.wme]; st != nil {
				st.unlinkJR(jr)
			}
			jr = next
		}
		tok.jrHead, tok.jrTail, tok.nJoinResults = nil, nil, 0
	}
	if tok.parent != nil {
		tok.parent.removeChild(tok)
	}
	// Rest in the graveyard until the next StartBatch: the engine may
	// still read this (fired) instantiation's bindings while its RHS
	// executes.
	n.graveyard = append(n.graveyard, tok)
}
