package rete

import (
	"testing"

	"spampsm/internal/symtab"
	"spampsm/internal/wm"
)

// recorder is a test agenda that tracks live instantiations.
type recorder struct {
	live map[*PNode]map[*Token]bool
	adds int
	dels int
}

func newRecorder() *recorder { return &recorder{live: map[*PNode]map[*Token]bool{}} }

func (r *recorder) Activate(p *PNode, t *Token) {
	if r.live[p] == nil {
		r.live[p] = map[*Token]bool{}
	}
	r.live[p][t] = true
	r.adds++
}

func (r *recorder) Deactivate(p *PNode, t *Token) {
	delete(r.live[p], t)
	r.dels++
}

func (r *recorder) count(p *PNode) int { return len(r.live[p]) }

func classEq(attr int, v symtab.Value) func(*wm.WME) bool {
	return func(w *wm.WME) bool { return w.GetAt(attr).Equal(v) }
}

func eqPred(a, b symtab.Value) bool { return a.Equal(b) }

type fixture struct {
	classes *wm.Classes
	mem     *wm.Memory
	net     *Network
	rec     *recorder
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	cs := wm.NewClasses()
	if _, err := cs.Declare("block", "id", "color", "on"); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Declare("goal", "want"); err != nil {
		t.Fatal(err)
	}
	rec := newRecorder()
	return &fixture{classes: cs, mem: wm.NewMemory(cs), net: New(rec), rec: rec}
}

func (f *fixture) add(t *testing.T, class string, sets map[string]symtab.Value) *wm.WME {
	t.Helper()
	w, err := f.mem.Make(class, sets)
	if err != nil {
		t.Fatal(err)
	}
	f.net.Add(w)
	return w
}

func (f *fixture) remove(t *testing.T, w *wm.WME) {
	t.Helper()
	if err := f.mem.Remove(w); err != nil {
		t.Fatal(err)
	}
	f.net.Remove(w)
}

func TestSingleCE(t *testing.T) {
	f := newFixture(t)
	p, err := f.net.AddProduction("find-red", []Pattern{{
		Class:      "block",
		Signature:  "block^color=red",
		Filter:     classEq(1, symtab.Sym("red")),
		FilterCost: CostAlphaFilterTerm,
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	w1 := f.add(t, "block", map[string]symtab.Value{"id": symtab.Int(1), "color": symtab.Sym("red")})
	f.add(t, "block", map[string]symtab.Value{"id": symtab.Int(2), "color": symtab.Sym("blue")})
	if f.rec.count(p) != 1 {
		t.Fatalf("instantiations = %d, want 1", f.rec.count(p))
	}
	f.remove(t, w1)
	if f.rec.count(p) != 0 {
		t.Fatalf("after removal, instantiations = %d, want 0", f.rec.count(p))
	}
}

func TestTwoCEJoin(t *testing.T) {
	f := newFixture(t)
	// (goal ^want <c>) (block ^color <c>)
	p, err := f.net.AddProduction("want-block", []Pattern{
		{Class: "goal", Signature: "goal*"},
		{Class: "block", Signature: "block*",
			Tests: []JoinTest{{OwnAttr: 1 /*color*/, TokenLevel: 0, TokenAttr: 0 /*want*/, Pred: eqPred, Eq: true}}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := f.add(t, "goal", map[string]symtab.Value{"want": symtab.Sym("red")})
	f.add(t, "block", map[string]symtab.Value{"id": symtab.Int(1), "color": symtab.Sym("red")})
	f.add(t, "block", map[string]symtab.Value{"id": symtab.Int(2), "color": symtab.Sym("blue")})
	if f.rec.count(p) != 1 {
		t.Fatalf("instantiations = %d, want 1", f.rec.count(p))
	}
	// A second red block joins too.
	w3 := f.add(t, "block", map[string]symtab.Value{"id": symtab.Int(3), "color": symtab.Sym("red")})
	if f.rec.count(p) != 2 {
		t.Fatalf("instantiations = %d, want 2", f.rec.count(p))
	}
	// Removing the goal retracts everything.
	f.remove(t, g)
	if f.rec.count(p) != 0 {
		t.Fatalf("after goal removal, instantiations = %d, want 0", f.rec.count(p))
	}
	// Re-adding the goal re-derives both instantiations.
	f.add(t, "goal", map[string]symtab.Value{"want": symtab.Sym("red")})
	if f.rec.count(p) != 2 {
		t.Fatalf("after goal re-add, instantiations = %d, want 2", f.rec.count(p))
	}
	f.remove(t, w3)
	if f.rec.count(p) != 1 {
		t.Fatalf("after block removal, instantiations = %d, want 1", f.rec.count(p))
	}
}

func TestTokenWMEs(t *testing.T) {
	f := newFixture(t)
	var got *Token
	p, _ := f.net.AddProduction("pair", []Pattern{
		{Class: "goal", Signature: "goal*"},
		{Class: "block", Signature: "block*"},
	}, nil)
	g := f.add(t, "goal", map[string]symtab.Value{"want": symtab.Sym("x")})
	b := f.add(t, "block", map[string]symtab.Value{"id": symtab.Int(9)})
	for tok := range f.rec.live[p] {
		got = tok
	}
	if got == nil {
		t.Fatal("no instantiation")
	}
	ws := got.WMEs()
	if len(ws) != 2 || ws[0] != g || ws[1] != b {
		t.Fatalf("token WMEs = %v", ws)
	}
	if got.WMEAt(0) != g || got.WMEAt(1) != b || got.WMEAt(5) != nil {
		t.Error("WMEAt lookup wrong")
	}
}

func TestNegativeLastCE(t *testing.T) {
	f := newFixture(t)
	// (goal) - (block ^color red): fires while no red block exists.
	p, err := f.net.AddProduction("no-red", []Pattern{
		{Class: "goal", Signature: "goal*"},
		{Negated: true, Class: "block", Signature: "block^color=red",
			Filter: classEq(1, symtab.Sym("red")), FilterCost: CostAlphaFilterTerm},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.add(t, "goal", map[string]symtab.Value{"want": symtab.Sym("z")})
	if f.rec.count(p) != 1 {
		t.Fatalf("negation should hold initially: %d", f.rec.count(p))
	}
	red := f.add(t, "block", map[string]symtab.Value{"id": symtab.Int(1), "color": symtab.Sym("red")})
	if f.rec.count(p) != 0 {
		t.Fatalf("red block must block the negation: %d", f.rec.count(p))
	}
	f.add(t, "block", map[string]symtab.Value{"id": symtab.Int(2), "color": symtab.Sym("blue")})
	if f.rec.count(p) != 0 {
		t.Fatalf("blue block must not unblock: %d", f.rec.count(p))
	}
	f.remove(t, red)
	if f.rec.count(p) != 1 {
		t.Fatalf("removing the red block must unblock: %d", f.rec.count(p))
	}
}

func TestNegativeMiddleCE(t *testing.T) {
	f := newFixture(t)
	// (goal ^want <c>) - (block ^color <c> ^on table) (block ^color <c>):
	// a red goal fires for each red block while no red block is on the table.
	p, err := f.net.AddProduction("neg-middle", []Pattern{
		{Class: "goal", Signature: "goal*"},
		{Negated: true, Class: "block", Signature: "block^on=table",
			Filter: classEq(2, symtab.Sym("table")), FilterCost: CostAlphaFilterTerm,
			Tests: []JoinTest{{OwnAttr: 1, TokenLevel: 0, TokenAttr: 0, Pred: eqPred, Eq: true}}},
		{Class: "block", Signature: "block*",
			Tests: []JoinTest{{OwnAttr: 1, TokenLevel: 0, TokenAttr: 0, Pred: eqPred, Eq: true}}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.add(t, "goal", map[string]symtab.Value{"want": symtab.Sym("red")})
	f.add(t, "block", map[string]symtab.Value{"id": symtab.Int(1), "color": symtab.Sym("red"), "on": symtab.Sym("floor")})
	if f.rec.count(p) != 1 {
		t.Fatalf("want 1 instantiation, got %d", f.rec.count(p))
	}
	blocker := f.add(t, "block", map[string]symtab.Value{"id": symtab.Int(2), "color": symtab.Sym("red"), "on": symtab.Sym("table")})
	// The blocker blocks the negation — but it also matches CE3, so when
	// unblocked there would be 2 instantiations. While blocked: 0.
	if f.rec.count(p) != 0 {
		t.Fatalf("blocked: want 0 instantiations, got %d", f.rec.count(p))
	}
	f.remove(t, blocker)
	if f.rec.count(p) != 1 {
		t.Fatalf("unblocked again: want 1, got %d", f.rec.count(p))
	}
	// Blocker of a different color does not block.
	f.add(t, "block", map[string]symtab.Value{"id": symtab.Int(3), "color": symtab.Sym("blue"), "on": symtab.Sym("table")})
	if f.rec.count(p) != 1 {
		t.Fatalf("blue table block must not block red goal: got %d", f.rec.count(p))
	}
}

func TestAlphaSharing(t *testing.T) {
	f := newFixture(t)
	pat := Pattern{Class: "block", Signature: "block^color=red",
		Filter: classEq(1, symtab.Sym("red")), FilterCost: CostAlphaFilterTerm}
	if _, err := f.net.AddProduction("p1", []Pattern{pat}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.net.AddProduction("p2", []Pattern{pat}, nil); err != nil {
		t.Fatal(err)
	}
	if got := f.net.NumAlphaMems(); got != 1 {
		t.Errorf("alpha memories = %d, want 1 (shared)", got)
	}
	f.add(t, "block", map[string]symtab.Value{"color": symtab.Sym("red")})
	if f.rec.adds != 2 {
		t.Errorf("both productions should activate; adds = %d", f.rec.adds)
	}
}

func TestFrozenAfterFirstWME(t *testing.T) {
	f := newFixture(t)
	if _, err := f.net.AddProduction("p1", []Pattern{{Class: "block", Signature: "b*"}}, nil); err != nil {
		t.Fatal(err)
	}
	f.add(t, "block", nil)
	if _, err := f.net.AddProduction("late", []Pattern{{Class: "block", Signature: "b*"}}, nil); err == nil {
		t.Error("AddProduction after WM population must fail")
	}
}

func TestFirstPatternNegatedRejected(t *testing.T) {
	f := newFixture(t)
	if _, err := f.net.AddProduction("bad", []Pattern{{Negated: true, Class: "block", Signature: "b*"}}, nil); err == nil {
		t.Error("negated first pattern must be rejected")
	}
	if _, err := f.net.AddProduction("empty", nil, nil); err == nil {
		t.Error("empty pattern list must be rejected")
	}
}

func TestActivationCapture(t *testing.T) {
	f := newFixture(t)
	f.net.SetCapture(true)
	if _, err := f.net.AddProduction("p", []Pattern{
		{Class: "goal", Signature: "goal*"},
		{Class: "block", Signature: "block*"},
	}, nil); err != nil {
		t.Fatal(err)
	}
	f.net.StartBatch()
	f.add(t, "goal", nil)
	f.add(t, "block", nil)
	batch := f.net.TakeBatch()
	if len(batch) == 0 {
		t.Fatal("expected captured activations")
	}
	var total float64
	var count int
	for _, a := range batch {
		total += a.TotalCost()
		count += a.Count()
	}
	if total <= 0 || count < 2 {
		t.Errorf("activation totals: cost %v, count %d", total, count)
	}
	// Counters must accumulate regardless of capture.
	if f.net.Totals().Cost <= 0 || f.net.Totals().TokensCreated == 0 {
		t.Error("counters should be nonzero")
	}
}

func TestCountersWithoutCapture(t *testing.T) {
	f := newFixture(t)
	if _, err := f.net.AddProduction("p", []Pattern{
		{Class: "goal", Signature: "goal*"},
		{Class: "block", Signature: "block*"},
	}, nil); err != nil {
		t.Fatal(err)
	}
	f.net.StartBatch()
	f.add(t, "goal", nil)
	f.add(t, "block", nil)
	if got := f.net.TakeBatch(); len(got) != 0 {
		t.Errorf("capture off: batch should be empty, got %d", len(got))
	}
	if f.net.Totals().Activations == 0 {
		t.Error("activations counter should still count")
	}
}

func TestRemoveUnknownWMENoop(t *testing.T) {
	f := newFixture(t)
	w, _ := f.mem.Make("block", nil)
	f.net.Remove(w) // never added; must not panic
}

func TestJoinWithPredicate(t *testing.T) {
	f := newFixture(t)
	gt := func(a, b symtab.Value) bool { c, ok := a.Compare(b); return ok && c > 0 }
	// (goal ^want <n>) (block ^id > <n>)
	p, _ := f.net.AddProduction("bigger", []Pattern{
		{Class: "goal", Signature: "goal*"},
		{Class: "block", Signature: "block*",
			Tests: []JoinTest{{OwnAttr: 0, TokenLevel: 0, TokenAttr: 0, Pred: gt}}},
	}, nil)
	f.add(t, "goal", map[string]symtab.Value{"want": symtab.Int(5)})
	f.add(t, "block", map[string]symtab.Value{"id": symtab.Int(3)})
	f.add(t, "block", map[string]symtab.Value{"id": symtab.Int(7)})
	f.add(t, "block", map[string]symtab.Value{"id": symtab.Int(9)})
	if f.rec.count(p) != 2 {
		t.Errorf("instantiations = %d, want 2 (ids 7 and 9)", f.rec.count(p))
	}
}

func TestDeepChainRetraction(t *testing.T) {
	f := newFixture(t)
	// 4-CE chain joined on color.
	pats := []Pattern{{Class: "goal", Signature: "goal*"}}
	for i := 0; i < 3; i++ {
		pats = append(pats, Pattern{Class: "block", Signature: "block*",
			Tests: []JoinTest{{OwnAttr: 1, TokenLevel: 0, TokenAttr: 0, Pred: eqPred, Eq: true}}})
	}
	p, err := f.net.AddProduction("chain", pats, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.add(t, "goal", map[string]symtab.Value{"want": symtab.Sym("red")})
	var blocks []*wm.WME
	for i := 0; i < 3; i++ {
		blocks = append(blocks, f.add(t, "block",
			map[string]symtab.Value{"id": symtab.Int(int64(i)), "color": symtab.Sym("red")}))
	}
	// 3 blocks in each of 3 CE positions = 27 instantiations.
	if f.rec.count(p) != 27 {
		t.Fatalf("instantiations = %d, want 27", f.rec.count(p))
	}
	f.remove(t, blocks[0])
	// 2^3 = 8 remain.
	if f.rec.count(p) != 8 {
		t.Fatalf("after removal, instantiations = %d, want 8", f.rec.count(p))
	}
	tc := f.net.Totals()
	if tc.TokensDeleted == 0 || tc.TokensCreated <= tc.TokensDeleted {
		t.Errorf("token accounting odd: %+v", tc)
	}
}

func TestNegationReblocking(t *testing.T) {
	f := newFixture(t)
	p, _ := f.net.AddProduction("nb", []Pattern{
		{Class: "goal", Signature: "goal*"},
		{Negated: true, Class: "block", Signature: "block*"},
	}, nil)
	f.add(t, "goal", nil)
	if f.rec.count(p) != 1 {
		t.Fatal("should fire with no blocks")
	}
	b1 := f.add(t, "block", nil)
	b2 := f.add(t, "block", nil)
	if f.rec.count(p) != 0 {
		t.Fatal("two blockers")
	}
	f.remove(t, b1)
	if f.rec.count(p) != 0 {
		t.Fatal("one blocker remains; negation still false")
	}
	f.remove(t, b2)
	if f.rec.count(p) != 1 {
		t.Fatal("all blockers gone; negation true again")
	}
}
