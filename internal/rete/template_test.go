package rete

import (
	"sync"
	"testing"
)

// The template/instance differential oracle: networks instantiated
// from a shared compiled Template must be byte-identical — conflict-set
// event sequences, simulated Counters after every step, captured
// activation forests — to networks compiled freshly with New +
// AddProduction, for both the indexed and the naive matcher. O(nodes)
// instantiation changes construction cost, never match behavior.

func TestTemplateDifferentialVsFreshCompile(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		s := genScript(seed)
		for _, indexed := range []bool{true, false} {
			fresh := s.replay(t, indexed)
			tmpl := s.template(t, indexed)
			// Two successive instances of the same template: both must
			// match the fresh compile (the first instance must not
			// perturb shared state read by the second).
			for i := 0; i < 2; i++ {
				rec := &seqRecorder{}
				inst := s.replayOn(t, tmpl.NewNetwork(rec), rec)
				diffRunsEqual(t, seed, fresh, inst, "fresh", "template-instance")
			}
		}
	}
}

// TestTemplateInstanceIsolation runs the same script on two instances
// of one template in interleaved steps via independent replays, then
// verifies a third, untouched instance saw nothing: instances share
// topology only, never memories or counters.
func TestTemplateInstanceIsolation(t *testing.T) {
	s := genScript(7)
	tmpl := s.template(t, true)
	recIdle := &seqRecorder{}
	idle := tmpl.NewNetwork(recIdle)

	recA := &seqRecorder{}
	runA := s.replayOn(t, tmpl.NewNetwork(recA), recA)
	recB := &seqRecorder{}
	runB := s.replayOn(t, tmpl.NewNetwork(recB), recB)
	diffRunsEqual(t, 7, runA, runB, "instanceA", "instanceB")

	if got := idle.Totals(); got != (Counters{}) {
		t.Fatalf("idle instance accumulated counters: %+v", got)
	}
	if len(recIdle.events) != 0 {
		t.Fatalf("idle instance saw %d conflict-set events", len(recIdle.events))
	}
}

// TestTemplateConcurrentInstantiation instantiates and runs many
// networks from one frozen template concurrently; meaningful under
// -race. Every run must equal the fresh-compiled reference.
func TestTemplateConcurrentInstantiation(t *testing.T) {
	s := genScript(11)
	fresh := s.replay(t, true)
	tmpl := s.template(t, true)
	// Freeze before fanning out, as CompiledProgram does.
	tmpl.NewNetwork(&seqRecorder{})

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := &seqRecorder{}
			run := s.replayOn(t, tmpl.NewNetwork(rec), rec)
			if len(run.events) != len(fresh.events) || run.forests != fresh.forests {
				errs <- "concurrent instance diverged from fresh compile"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestTemplateFreeze pins the compile-once contract: no production may
// be added after the first instantiation, and template-instantiated
// networks reject AddProduction outright.
func TestTemplateFreeze(t *testing.T) {
	s := genScript(3)
	tmpl := s.template(t, true)
	net := tmpl.NewNetwork(&seqRecorder{})
	if _, err := tmpl.AddProduction("late", s.prods[0], nil); err == nil {
		t.Fatal("AddProduction on a frozen template must fail")
	}
	if _, err := net.AddProduction("late", s.prods[0], nil); err == nil {
		t.Fatal("AddProduction on a template-instantiated network must fail")
	}
}

// TestScratchReuseDeterminism replays a script on successive instances
// sharing one Scratch: recycled tokens and list entries must not
// perturb events, counters or forests.
func TestScratchReuseDeterminism(t *testing.T) {
	s := genScript(5)
	fresh := s.replay(t, true)
	tmpl := s.template(t, true)
	scratch := &Scratch{}
	for i := 0; i < 3; i++ {
		rec := &seqRecorder{}
		net := tmpl.NewNetworkScratch(rec, scratch)
		run := s.replayOn(t, net, rec)
		diffRunsEqual(t, 5, fresh, run, "fresh", "scratch-instance")
		net.Reclaim(scratch)
		if i > 0 && len(scratch.tokens) == 0 {
			t.Fatal("Reclaim recovered no tokens; scratch reuse is not engaged")
		}
	}
}
