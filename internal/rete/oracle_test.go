package rete

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"spampsm/internal/symtab"
	"spampsm/internal/wm"
)

// This file checks the Rete network against a brute-force oracle: a
// naive matcher that recomputes the full instantiation set from
// scratch after every working-memory change. Random productions and
// random add/remove sequences must produce identical conflict sets.

// oraclePattern mirrors Pattern for the naive matcher.
type oraclePattern struct {
	negated bool
	class   string
	filter  func(*wm.WME) bool
	tests   []JoinTest
}

// naiveMatch enumerates all instantiations of a pattern chain over the
// live WMEs, as timetag tuples of the positive CEs.
func naiveMatch(pats []oraclePattern, live []*wm.WME) []string {
	var out []string
	bound := make([]*wm.WME, len(pats))
	var rec func(i int)
	rec = func(i int) {
		if i == len(pats) {
			var tags []string
			for j, w := range bound {
				if !pats[j].negated {
					tags = append(tags, fmt.Sprintf("%d", w.TimeTag))
				}
			}
			out = append(out, strings.Join(tags, ","))
			return
		}
		p := pats[i]
		candidateOK := func(w *wm.WME) bool {
			if w.Class.Name != p.class {
				return false
			}
			if p.filter != nil && !p.filter(w) {
				return false
			}
			for _, ts := range p.tests {
				b := bound[ts.TokenLevel]
				if b == nil {
					return false
				}
				if !ts.Pred(w.GetAt(ts.OwnAttr), b.GetAt(ts.TokenAttr)) {
					return false
				}
			}
			return true
		}
		if p.negated {
			for _, w := range live {
				if candidateOK(w) {
					return // negation blocked
				}
			}
			bound[i] = nil
			rec(i + 1)
			return
		}
		for _, w := range live {
			if candidateOK(w) {
				bound[i] = w
				rec(i + 1)
			}
		}
		bound[i] = nil
	}
	rec(0)
	sort.Strings(out)
	return out
}

// reteInstantiations extracts the live instantiation tag tuples of one
// production from the recorder.
func reteInstantiations(rec *recorder, p *PNode) []string {
	var out []string
	for tok := range rec.live[p] {
		var tags []string
		for _, w := range tok.WMEs() {
			tags = append(tags, fmt.Sprintf("%d", w.TimeTag))
		}
		out = append(out, strings.Join(tags, ","))
	}
	sort.Strings(out)
	return out
}

// oracleRng is a deterministic generator for the stress test.
type oracleRng struct{ s uint64 }

func (r *oracleRng) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 11
}
func (r *oracleRng) intn(n int) int { return int(r.next() % uint64(n)) }

// genPattern builds a random pattern over the test classes. Values are
// drawn from a tiny domain so joins and negations collide often.
func genPattern(rng *oracleRng, classes []*wm.ClassDef, level int, negated bool) (Pattern, oraclePattern) {
	cd := classes[rng.intn(len(classes))]
	nAttrs := cd.NumAttrs()
	var filter func(*wm.WME) bool
	sig := cd.Name
	if rng.intn(2) == 0 {
		attr := rng.intn(nAttrs)
		val := symtab.Int(int64(rng.intn(3)))
		filter = func(w *wm.WME) bool { return w.GetAt(attr).Equal(val) }
		sig = fmt.Sprintf("%s^%d=%s", cd.Name, attr, val)
	}
	var tests []JoinTest
	if level > 0 && rng.intn(3) > 0 {
		n := 1 + rng.intn(2)
		for k := 0; k < n; k++ {
			tl := rng.intn(level)
			jt := JoinTest{
				OwnAttr:    rng.intn(nAttrs),
				TokenLevel: tl,
				TokenAttr:  rng.intn(2), // test classes have >= 2 attrs
			}
			if rng.intn(4) == 0 {
				jt.Pred = func(a, b symtab.Value) bool { return !a.Equal(b) }
			} else {
				jt.Pred = func(a, b symtab.Value) bool { return a.Equal(b) }
				jt.Eq = true
			}
			tests = append(tests, jt)
		}
	}
	pat := Pattern{
		Negated:    negated,
		Class:      cd.Name,
		Signature:  fmt.Sprintf("%s/%d", sig, rng.intn(1000000)), // unshared: joins differ
		Filter:     filter,
		FilterCost: CostAlphaFilterTerm,
		Tests:      tests,
	}
	op := oraclePattern{negated: negated, class: cd.Name, filter: filter, tests: tests}
	return pat, op
}

func TestOracleRandomizedConflictSets(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := &oracleRng{s: seed * 977}
			cs := wm.NewClasses()
			ca, _ := cs.Declare("alpha", "x", "y")
			cb, _ := cs.Declare("beta", "u", "v", "w")
			classes := []*wm.ClassDef{ca, cb}
			mem := wm.NewMemory(cs)
			rec := newRecorder()
			net := New(rec)

			// 3-6 random productions of 1-4 CEs each.
			nProds := 3 + rng.intn(4)
			prods := make([]*PNode, 0, nProds)
			oracles := make([][]oraclePattern, 0, nProds)
			for pi := 0; pi < nProds; pi++ {
				nCEs := 1 + rng.intn(4)
				var pats []Pattern
				var ops []oraclePattern
				for ci := 0; ci < nCEs; ci++ {
					negated := ci > 0 && rng.intn(4) == 0
					pat, op := genPattern(rng, classes, ci, negated)
					pats = append(pats, pat)
					ops = append(ops, op)
				}
				p, err := net.AddProduction(fmt.Sprintf("p%d", pi), pats, nil)
				if err != nil {
					t.Fatal(err)
				}
				prods = append(prods, p)
				oracles = append(oracles, ops)
			}

			// Random WM mutation sequence.
			var liveWMEs []*wm.WME
			check := func(step int) {
				t.Helper()
				for pi, p := range prods {
					want := naiveMatch(oracles[pi], liveWMEs)
					got := reteInstantiations(rec, p)
					if strings.Join(want, ";") != strings.Join(got, ";") {
						t.Fatalf("step %d, production p%d:\n oracle: %v\n rete:   %v",
							step, pi, want, got)
					}
				}
			}
			for step := 0; step < 60; step++ {
				if len(liveWMEs) == 0 || rng.intn(3) > 0 {
					cd := classes[rng.intn(len(classes))]
					sets := map[string]symtab.Value{}
					for _, a := range cd.Attrs {
						sets[a] = symtab.Int(int64(rng.intn(3)))
					}
					w, err := mem.Make(cd.Name, sets)
					if err != nil {
						t.Fatal(err)
					}
					net.Add(w)
					liveWMEs = append(liveWMEs, w)
				} else {
					i := rng.intn(len(liveWMEs))
					w := liveWMEs[i]
					if err := mem.Remove(w); err != nil {
						t.Fatal(err)
					}
					net.Remove(w)
					liveWMEs = append(liveWMEs[:i], liveWMEs[i+1:]...)
				}
				check(step)
			}
			// Drain: remove everything; all instantiations must retract.
			for len(liveWMEs) > 0 {
				w := liveWMEs[len(liveWMEs)-1]
				liveWMEs = liveWMEs[:len(liveWMEs)-1]
				if err := mem.Remove(w); err != nil {
					t.Fatal(err)
				}
				net.Remove(w)
			}
			check(-1)
			for _, p := range prods {
				if rec.count(p) != 0 {
					t.Errorf("instantiations remain after draining WM")
				}
			}
		})
	}
}
