package rete

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"spampsm/internal/wm"
)

// The seed-load differential oracle: InsertBatch — with the memoized
// route cache, with routing disabled, cold cache or warm — must be
// observably identical to per-WME Add: same conflict-set event
// sequence, byte-identical Counters after every step, identical
// captured activation forests.

// seedMode selects the insertion path of one seedReplay.
type seedMode int

const (
	seedPerWME   seedMode = iota // Add per WME: the reference
	seedBatched                  // InsertBatch with memoized routing
	seedUnrouted                 // InsertBatch with SetSeedRouting(false)
)

// seedReplay runs a script on a fresh instance of tmpl, grouping each
// run of consecutive makes into one batch step (the shape of task
// seed-loading); removals are replayed singly in between. All WMEs of
// a group are made before any is inserted, in both modes, so timetags
// align; every WME carries its routing digest, so the batched modes
// exercise the route memo on the full value space.
func seedReplay(t *testing.T, tmpl *Template, s *diffScript, mode seedMode, capture bool) *diffRun {
	t.Helper()
	rec := &seqRecorder{}
	net := tmpl.NewNetwork(rec)
	net.SetCapture(capture)
	if mode == seedUnrouted {
		net.SetSeedRouting(false)
	}
	mem := wm.NewMemory(s.classes)
	var live []*wm.WME
	run := &diffRun{}
	var forests strings.Builder
	record := func(step int) {
		run.events = append(run.events, rec.events...)
		rec.events = rec.events[:0]
		run.events = append(run.events, fmt.Sprintf("#%d", step))
		run.counters = append(run.counters, net.Totals())
		fmt.Fprintf(&forests, "#%d:", step)
		renderForest(net.TakeBatch(), &forests)
	}
	flush := func(group []int, step int) {
		if len(group) == 0 {
			return
		}
		net.StartBatch()
		wmes := make([]*wm.WME, len(group))
		digests := make([]string, len(group))
		for i, k := range group {
			w, err := mem.Make(s.mkCls[k], s.makes[k])
			if err != nil {
				t.Fatal(err)
			}
			wmes[i] = w
			digests[i] = RouteDigest(w.Class.Name, w.Vals)
			live = append(live, w)
		}
		if mode == seedPerWME {
			for _, w := range wmes {
				net.Add(w)
			}
		} else {
			net.InsertBatch(wmes, digests)
		}
		record(step)
	}
	var group []int
	for i, step := range s.steps {
		if step >= 0 {
			group = append(group, step)
			continue
		}
		flush(group, i)
		group = group[:0]
		net.StartBatch()
		k := ^step
		w := live[k]
		if err := mem.Remove(w); err != nil {
			t.Fatal(err)
		}
		net.Remove(w)
		live = append(live[:k], live[k+1:]...)
		record(i)
	}
	flush(group, len(s.steps))
	run.forests = forests.String()
	return run
}

// TestDifferentialBatchedSeedVsPerWME replays randomized scenarios
// through per-WME Add and batched InsertBatch — routed cold, routed
// warm (second instance of the same template, served from the memo),
// and with routing disabled — and requires byte-identical event
// sequences, Counters, and captured activation forests.
func TestDifferentialBatchedSeedVsPerWME(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		s := genScript(seed)
		tmpl := s.template(t, true)
		ref := seedReplay(t, tmpl, s, seedPerWME, true)
		cold := seedReplay(t, tmpl, s, seedBatched, true)
		diffRunsEqual(t, seed, ref, cold, "per-wme", "batched-cold")
		warm := seedReplay(t, tmpl, s, seedBatched, true)
		diffRunsEqual(t, seed, ref, warm, "per-wme", "batched-warm")
		unrouted := seedReplay(t, tmpl, s, seedUnrouted, true)
		diffRunsEqual(t, seed, ref, unrouted, "per-wme", "batched-unrouted")
	}
}

// TestDifferentialBatchedSeedAggregateCounters covers the capture-off
// replay path, where the constant-test sweep is charged in one
// arithmetic step: Counters and event sequences must still match the
// per-WME reference exactly.
func TestDifferentialBatchedSeedAggregateCounters(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		s := genScript(seed)
		tmpl := s.template(t, true)
		ref := seedReplay(t, tmpl, s, seedPerWME, false)
		got := seedReplay(t, tmpl, s, seedBatched, false)
		diffRunsEqual(t, seed, ref, got, "per-wme", "batched")
	}
}

// TestDifferentialBatchedSeedNaiveMatcher crosses the seed path with
// the unindexed matcher: the route memo lives above the join layer and
// must be equally exact there.
func TestDifferentialBatchedSeedNaiveMatcher(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		s := genScript(seed * 13)
		tmpl := s.template(t, false)
		ref := seedReplay(t, tmpl, s, seedPerWME, true)
		got := seedReplay(t, tmpl, s, seedBatched, true)
		diffRunsEqual(t, seed, ref, got, "per-wme-naive", "batched-naive")
	}
}

// TestConcurrentBatchedSeedLoad loads many instances of one template
// with the same shared seed set from concurrent goroutines — the
// Prebuild shape — and requires every instance to agree with a
// sequential reference run. Run under -race this also proves the route
// memo's locking.
func TestConcurrentBatchedSeedLoad(t *testing.T) {
	s := genScript(7)
	tmpl := s.template(t, true)
	ref := seedReplay(t, tmpl, s, seedPerWME, true)

	const workers = 16
	runs := make([]*diffRun, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runs[i] = seedReplay(t, tmpl, s, seedBatched, true)
		}(i)
	}
	wg.Wait()
	for i, run := range runs {
		diffRunsEqual(t, uint64(i), ref, run, "per-wme", "concurrent-batched")
	}
}
