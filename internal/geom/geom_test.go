package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func square(x, y, side float64) Polygon {
	return Polygon{{x, y}, {x + side, y}, {x + side, y + side}, {x, y + side}}
}

func TestAreaPerimeterCentroid(t *testing.T) {
	sq := square(0, 0, 10)
	if a := sq.Area(); math.Abs(a-100) > 1e-9 {
		t.Errorf("area = %v", a)
	}
	if p := sq.Perimeter(); math.Abs(p-40) > 1e-9 {
		t.Errorf("perimeter = %v", p)
	}
	c := sq.Centroid()
	if math.Abs(c.X-5) > 1e-9 || math.Abs(c.Y-5) > 1e-9 {
		t.Errorf("centroid = %v", c)
	}
}

func TestSignedAreaWinding(t *testing.T) {
	ccw := Polygon{{0, 0}, {4, 0}, {4, 4}, {0, 4}}
	cw := Polygon{{0, 0}, {0, 4}, {4, 4}, {4, 0}}
	if ccw.SignedArea() <= 0 {
		t.Error("CCW polygon should have positive signed area")
	}
	if cw.SignedArea() >= 0 {
		t.Error("CW polygon should have negative signed area")
	}
	if math.Abs(ccw.Area()-cw.Area()) > 1e-9 {
		t.Error("abs area must be winding-independent")
	}
}

func TestBBox(t *testing.T) {
	pg := Polygon{{1, 2}, {5, -1}, {3, 7}}
	r := pg.BBox()
	if r.Min.X != 1 || r.Min.Y != -1 || r.Max.X != 5 || r.Max.Y != 7 {
		t.Errorf("bbox = %+v", r)
	}
	if r.W() != 4 || r.H() != 8 {
		t.Errorf("W/H = %v/%v", r.W(), r.H())
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{Point{0, 0}, Point{2, 2}}
	b := Rect{Point{1, 1}, Point{3, 3}}
	c := Rect{Point{5, 5}, Point{6, 6}}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("overlapping rects must intersect")
	}
	if a.Intersects(c) {
		t.Error("disjoint rects must not intersect")
	}
	touch := Rect{Point{2, 0}, Point{4, 2}}
	if !a.Intersects(touch) {
		t.Error("edge-touching rects intersect (closed semantics)")
	}
}

func TestContainsPoint(t *testing.T) {
	sq := square(0, 0, 10)
	if !sq.Contains(Point{5, 5}) {
		t.Error("center must be inside")
	}
	if sq.Contains(Point{15, 5}) {
		t.Error("outside point must not be inside")
	}
	if !sq.Contains(Point{0, 5}) {
		t.Error("boundary counts as inside")
	}
	// Concave polygon: a C shape.
	c := Polygon{{0, 0}, {10, 0}, {10, 2}, {2, 2}, {2, 8}, {10, 8}, {10, 10}, {0, 10}}
	if !c.Contains(Point{1, 5}) {
		t.Error("inside the C spine")
	}
	if c.Contains(Point{6, 5}) {
		t.Error("inside the C notch is outside the polygon")
	}
}

func TestPolygonIntersects(t *testing.T) {
	a := square(0, 0, 10)
	b := square(5, 5, 10)
	if !a.Intersects(b) {
		t.Error("overlapping squares intersect")
	}
	far := square(100, 100, 3)
	if a.Intersects(far) {
		t.Error("distant squares don't intersect")
	}
	inner := square(2, 2, 3)
	if !a.Intersects(inner) {
		t.Error("containment counts as intersection")
	}
	if !inner.Intersects(a) {
		t.Error("containment is symmetric for Intersects")
	}
	touching := square(10, 0, 5)
	if !a.Intersects(touching) {
		t.Error("edge-touching polygons intersect")
	}
}

func TestContainsPoly(t *testing.T) {
	outer := square(0, 0, 10)
	inner := square(2, 2, 3)
	if !outer.ContainsPoly(inner) {
		t.Error("outer contains inner")
	}
	if inner.ContainsPoly(outer) {
		t.Error("inner does not contain outer")
	}
	overlap := square(8, 8, 5)
	if outer.ContainsPoly(overlap) {
		t.Error("partial overlap is not containment")
	}
}

func TestDistanceAdjacent(t *testing.T) {
	a := square(0, 0, 10)
	b := square(13, 0, 5)
	d := a.Distance(b)
	if math.Abs(d-3) > 1e-9 {
		t.Errorf("distance = %v, want 3", d)
	}
	if a.Distance(square(5, 5, 2)) != 0 {
		t.Error("intersecting polygons have distance 0")
	}
	if !a.Adjacent(b, 3.5) {
		t.Error("within eps is adjacent")
	}
	if a.Adjacent(b, 2) {
		t.Error("beyond eps is not adjacent")
	}
}

func TestElongationOrientation(t *testing.T) {
	runway := RectPoly(Point{0, 0}, 100, 5, 0)
	if e := runway.Elongation(); e < 10 {
		t.Errorf("runway elongation = %v, want >> 1", e)
	}
	sq := square(0, 0, 10)
	if e := sq.Elongation(); e > 1.2 {
		t.Errorf("square elongation = %v, want ~1", e)
	}
	if o := runway.Orientation(); math.Abs(o) > 0.01 && math.Abs(o-math.Pi) > 0.01 {
		t.Errorf("horizontal runway orientation = %v", o)
	}
	vertical := RectPoly(Point{0, 0}, 100, 5, math.Pi/2)
	if o := vertical.Orientation(); math.Abs(o-math.Pi/2) > 0.01 {
		t.Errorf("vertical runway orientation = %v", o)
	}
}

func TestParallelPerpendicular(t *testing.T) {
	h1 := RectPoly(Point{0, 0}, 50, 4, 0)
	h2 := RectPoly(Point{0, 20}, 60, 4, 0.02)
	v := RectPoly(Point{30, 0}, 50, 4, math.Pi/2)
	if !h1.ParallelTo(h2, 0.1) {
		t.Error("nearly-parallel strips should be ParallelTo")
	}
	if h1.ParallelTo(v, 0.1) {
		t.Error("perpendicular strips are not parallel")
	}
	if !h1.PerpendicularTo(v, 0.1) {
		t.Error("perpendicular strips should be PerpendicularTo")
	}
	// Orientation is mod π: a strip at angle π-0.02 is parallel to one at 0.
	almostPi := RectPoly(Point{0, 40}, 50, 4, math.Pi-0.02)
	if !h1.ParallelTo(almostPi, 0.1) {
		t.Error("orientation must wrap mod π")
	}
}

func TestAlignedWith(t *testing.T) {
	base := RectPoly(Point{0, 0}, 100, 6, 0)
	colinear := RectPoly(Point{150, 1}, 60, 6, 0)
	offAxis := RectPoly(Point{150, 60}, 60, 6, 0)
	if !base.AlignedWith(colinear, 10) {
		t.Error("colinear fragment should align")
	}
	if base.AlignedWith(offAxis, 10) {
		t.Error("laterally offset fragment should not align")
	}
}

func TestCompactness(t *testing.T) {
	sq := square(0, 0, 10)
	strip := RectPoly(Point{0, 0}, 100, 2, 0)
	cs, cst := sq.Compactness(), strip.Compactness()
	if cs <= cst {
		t.Errorf("square (%v) should be more compact than strip (%v)", cs, cst)
	}
	blob := Blob(Point{0, 0}, 10, 32, 0.05, 7)
	if cb := blob.Compactness(); cb < cs {
		t.Errorf("near-circular blob (%v) should beat square (%v)", cb, cs)
	}
}

func TestConvexHull(t *testing.T) {
	pts := Polygon{{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}, {1, 1}} // interior points must vanish
	hull := pts.ConvexHull()
	if len(hull) != 4 {
		t.Fatalf("hull size = %d, want 4", len(hull))
	}
	if hull.SignedArea() <= 0 {
		t.Error("hull must be CCW")
	}
	if math.Abs(hull.Area()-16) > 1e-9 {
		t.Errorf("hull area = %v", hull.Area())
	}
}

func TestRectPoly(t *testing.T) {
	r := RectPoly(Point{10, 10}, 20, 4, 0)
	if math.Abs(r.Area()-80) > 1e-6 {
		t.Errorf("area = %v", r.Area())
	}
	c := r.Centroid()
	if math.Abs(c.X-10) > 1e-9 || math.Abs(c.Y-10) > 1e-9 {
		t.Errorf("centroid = %v", c)
	}
}

func TestBlobDeterminism(t *testing.T) {
	a := Blob(Point{5, 5}, 10, 16, 0.3, 42)
	b := Blob(Point{5, 5}, 10, 16, 0.3, 42)
	c := Blob(Point{5, 5}, 10, 16, 0.3, 43)
	if len(a) != 16 {
		t.Fatalf("blob size = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical blobs")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestValid(t *testing.T) {
	if (Polygon{{0, 0}, {1, 1}}).Valid() {
		t.Error("2 points are not a valid polygon")
	}
	if (Polygon{{0, 0}, {1, 1}, {2, 2}}).Valid() {
		t.Error("collinear points have zero area")
	}
	if !square(0, 0, 1).Valid() {
		t.Error("unit square is valid")
	}
}

func TestQuickHullContainsAll(t *testing.T) {
	f := func(seed uint64) bool {
		pg := Blob(Point{0, 0}, 50, 24, 0.8, seed)
		hull := pg.ConvexHull()
		if len(hull) < 3 {
			return false
		}
		for _, p := range pg {
			if !hull.Contains(p) {
				return false
			}
		}
		return hull.Area() >= pg.Area()-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectsSymmetric(t *testing.T) {
	f := func(seedA, seedB uint64, dx int8) bool {
		a := Blob(Point{0, 0}, 30, 12, 0.4, seedA)
		b := Blob(Point{float64(dx), 10}, 30, 12, 0.4, seedB)
		return a.Intersects(b) == b.Intersects(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickDistanceZeroIffIntersect(t *testing.T) {
	f := func(seed uint64, dx uint8) bool {
		a := Blob(Point{0, 0}, 20, 10, 0.3, seed)
		b := Blob(Point{float64(dx) * 2, 0}, 20, 10, 0.3, seed+1)
		d := a.Distance(b)
		if a.Intersects(b) {
			return d == 0
		}
		return d > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickAreaTranslationInvariant(t *testing.T) {
	f := func(seed uint64, dx, dy int16) bool {
		a := Blob(Point{0, 0}, 25, 14, 0.5, seed)
		b := make(Polygon, len(a))
		for i, p := range a {
			b[i] = p.Add(Point{float64(dx), float64(dy)})
		}
		return math.Abs(a.Area()-b.Area()) < 1e-6 &&
			math.Abs(a.Perimeter()-b.Perimeter()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
