package geom

import (
	"math"
	"testing"
)

// fastpathCorpus builds a deterministic polygon corpus spanning the
// regimes the decisive-bound predicates must handle: overlapping
// pairs, touching pairs, pairs separated by much more than any
// threshold, and pairs straddling the uncertain band.
func fastpathCorpus() []Polygon {
	var ps []Polygon
	// Jittered blobs at a spread of positions and sizes.
	for i := 0; i < 12; i++ {
		c := Point{float64(i%4) * 900, float64(i/4) * 700}
		ps = append(ps, Blob(c, 180+40*float64(i%5), 6+i%7, 0.35, uint64(i+1)))
	}
	// Oriented rectangles: runway/road-like strips.
	for i := 0; i < 8; i++ {
		c := Point{float64(i) * 450, float64(i%3) * 1100}
		ps = append(ps, RectPoly(c, 1200, 60+10*float64(i), float64(i)*0.4))
	}
	// Degenerates: tiny triangle, collinear-ish sliver.
	ps = append(ps,
		Polygon{{0, 0}, {1e-6, 0}, {0, 1e-6}},
		Polygon{{5000, 5000}, {6000, 5000.001}, {5500, 5000.0005}},
	)
	return ps
}

// exactDistance computes the reference distance through the exact-only
// escape hatch.
func exactDistance(a, b Polygon) float64 {
	UseExactOnly(true)
	defer UseExactOnly(false)
	return a.Distance(b)
}

// TestDifferentialDistanceFastVsExact holds the squared-arithmetic
// distance kernel to the exact Hypot formula over the corpus: the two
// may differ only by float rounding far below the decisive-bound
// guard band.
func TestDifferentialDistanceFastVsExact(t *testing.T) {
	ps := fastpathCorpus()
	pairs := 0
	for i := range ps {
		for j := range ps {
			fast := ps[i].Distance(ps[j])
			exact := exactDistance(ps[i], ps[j])
			if fast == exact {
				pairs++
				continue
			}
			denom := math.Max(exact, 1)
			if math.Abs(fast-exact)/denom > 1e-12 {
				t.Fatalf("pair (%d,%d): fast %v exact %v", i, j, fast, exact)
			}
			// Zero-iff-intersects must be preserved exactly.
			if (fast == 0) != (exact == 0) {
				t.Fatalf("pair (%d,%d): zero disagreement fast %v exact %v", i, j, fast, exact)
			}
			pairs++
		}
	}
	if pairs == 0 {
		t.Fatal("empty corpus")
	}
}

// TestDifferentialThresholdPredicates asserts boolean identity of
// every threshold-aware predicate against the exact formula, with
// adversarial epsilons placed on, just inside, and just outside the
// exact distance of each pair — the uncertain band where the bounds
// are not decisive and the fast path must fall back.
func TestDifferentialThresholdPredicates(t *testing.T) {
	ps := fastpathCorpus()
	for i := range ps {
		for j := range ps {
			exact := exactDistance(ps[i], ps[j])
			epss := []float64{-1, 0, 50, 900, exact, exact / 2, exact * 2,
				exact - 1e-6, exact + 1e-6, exact - 1e-12, exact + 1e-12,
				math.Nextafter(exact, 0), math.Nextafter(exact, math.Inf(1))}
			for _, eps := range epss {
				want := exact <= eps
				if got := ps[i].WithinDistance(ps[j], eps); got != want {
					t.Fatalf("pair (%d,%d) eps %v: WithinDistance %v want %v (exact %v)",
						i, j, eps, got, want, exact)
				}
				if got := ps[i].DistanceLE(ps[j], eps); got != want {
					t.Fatalf("pair (%d,%d) eps %v: DistanceLE %v want %v", i, j, eps, got, want)
				}
				if eps >= 0 {
					// Adjacent keeps its historical bbox pre-filter, which
					// can reject at exact-equality boundaries where the
					// expanded-box sum rounds; the fast path must match
					// that composite boolean, not raw distance≤eps.
					wantAdj := ps[i].BBox().Expand(eps).Intersects(ps[j].BBox()) && want
					if got := ps[i].Adjacent(ps[j], eps); got != wantAdj {
						t.Fatalf("pair (%d,%d) eps %v: Adjacent %v want %v (exact %v)",
							i, j, eps, got, wantAdj, exact)
					}
				}
			}
		}
	}
}

// TestDifferentialDerivedPredicates asserts that the derived-geometry
// predicate variants match the per-call Polygon methods bitwise: the
// cached fields are the same floats, so the booleans must be equal on
// every input, thresholds included.
func TestDifferentialDerivedPredicates(t *testing.T) {
	ps := fastpathCorpus()
	ds := make([]*Derived, len(ps))
	for i := range ps {
		ds[i] = Derive(ps[i])
	}
	for i := range ps {
		for j := range ps {
			a, b, da, db := ps[i], ps[j], ds[i], ds[j]
			if got, want := IntersectsD(a, da, b, db), a.Intersects(b); got != want {
				t.Fatalf("pair (%d,%d): IntersectsD %v want %v", i, j, got, want)
			}
			exact := exactDistance(a, b)
			for _, eps := range []float64{0, 100, exact, exact - 1e-9, exact + 1e-9, exact * 2} {
				if got, want := WithinDistanceD(a, da, b, db, eps), exact <= eps; got != want {
					t.Fatalf("pair (%d,%d) eps %v: WithinDistanceD %v want %v (exact %v)",
						i, j, eps, got, want, exact)
				}
			}
			for _, tol := range []float64{0.05, 0.15, 0.5} {
				if got, want := ParallelD(da, db, tol), a.ParallelTo(b, tol); got != want {
					t.Fatalf("pair (%d,%d) tol %v: ParallelD %v want %v", i, j, tol, got, want)
				}
			}
			for _, tol := range []float64{10, 300, 1e4} {
				if got, want := AlignedD(da, db, tol), a.AlignedWith(b, tol); got != want {
					t.Fatalf("pair (%d,%d) tol %v: AlignedD %v want %v", i, j, tol, got, want)
				}
			}
		}
	}
}

// TestDifferentialDeriveIdentity asserts bitwise equality of every
// Derived field against the direct Polygon computation.
func TestDifferentialDeriveIdentity(t *testing.T) {
	for i, pg := range fastpathCorpus() {
		d := Derive(pg)
		if d.BBox != pg.BBox() {
			t.Fatalf("poly %d: BBox %v want %v", i, d.BBox, pg.BBox())
		}
		if d.Centroid != pg.Centroid() {
			t.Fatalf("poly %d: Centroid %v want %v", i, d.Centroid, pg.Centroid())
		}
		if d.Area != pg.Area() {
			t.Fatalf("poly %d: Area %v want %v", i, d.Area, pg.Area())
		}
		if d.Compact != pg.Compactness() {
			t.Fatalf("poly %d: Compact %v want %v", i, d.Compact, pg.Compactness())
		}
		if e := pg.Elongation(); d.Elong != e && !(math.IsInf(d.Elong, 1) && math.IsInf(e, 1)) {
			t.Fatalf("poly %d: Elong %v want %v", i, d.Elong, e)
		}
		if d.Orient != pg.Orientation() {
			t.Fatalf("poly %d: Orient %v want %v", i, d.Orient, pg.Orientation())
		}
		dir, o := pg.MajorAxis()
		if d.MajorDir != dir || d.Orient != o {
			t.Fatalf("poly %d: MajorAxis (%v,%v) want (%v,%v)", i, d.MajorDir, d.Orient, dir, o)
		}
		// Bounding circle: every vertex within Radius of the centroid.
		for _, p := range pg {
			if p.Dist(d.Centroid) > d.Radius {
				t.Fatalf("poly %d: vertex %v outside bounding circle r=%v", i, p, d.Radius)
			}
		}
		if len(d.Edges) != len(pg) {
			t.Fatalf("poly %d: %d edges want %d", i, len(d.Edges), len(pg))
		}
		for k := range pg {
			if want := pg[(k+1)%len(pg)].Sub(pg[k]); d.Edges[k] != want {
				t.Fatalf("poly %d edge %d: %v want %v", i, k, d.Edges[k], want)
			}
		}
	}
}

// TestDifferentialPredicateSymmetry pins the memo-canonicalization
// assumption: intersects, boundary distance (hence within-distance)
// and axis parallelism are invariant under operand swap on computed
// floats, not just in theory.
func TestDifferentialPredicateSymmetry(t *testing.T) {
	ps := fastpathCorpus()
	for i := range ps {
		for j := range ps {
			a, b := ps[i], ps[j]
			if a.Intersects(b) != b.Intersects(a) {
				t.Fatalf("pair (%d,%d): Intersects asymmetric", i, j)
			}
			if a.Distance(b) != b.Distance(a) {
				t.Fatalf("pair (%d,%d): Distance asymmetric", i, j)
			}
			for _, eps := range []float64{0, 100, 900} {
				if a.WithinDistance(b, eps) != b.WithinDistance(a, eps) {
					t.Fatalf("pair (%d,%d) eps %v: WithinDistance asymmetric", i, j, eps)
				}
				if a.Adjacent(b, eps) != b.Adjacent(a, eps) {
					t.Fatalf("pair (%d,%d) eps %v: Adjacent asymmetric", i, j, eps)
				}
			}
			if a.ParallelTo(b, 0.15) != b.ParallelTo(a, 0.15) {
				t.Fatalf("pair (%d,%d): ParallelTo asymmetric", i, j)
			}
		}
	}
}

// BenchmarkGeomPredicates measures the threshold predicate against the
// exact-distance formula over a mixed-separation corpus — the ≥5×
// acceptance number of the fast-path work.
func BenchmarkGeomPredicates(b *testing.B) {
	ps := fastpathCorpus()
	epss := []float64{0, 120, 900}
	run := func(b *testing.B, exact bool) {
		UseExactOnly(exact)
		defer UseExactOnly(false)
		b.ReportAllocs()
		b.ResetTimer()
		n := 0
		for k := 0; k < b.N; k++ {
			for i := range ps {
				for j := range ps {
					for _, eps := range epss {
						if ps[i].WithinDistance(ps[j], eps) {
							n++
						}
					}
				}
			}
		}
		if n < 0 {
			b.Fatal("unreachable")
		}
	}
	b.Run("exact", func(b *testing.B) { run(b, true) })
	b.Run("fast", func(b *testing.B) { run(b, false) })
}
