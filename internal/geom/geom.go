// Package geom is the 2-D computational-geometry substrate for SPAM's
// task-related RHS computation. SPAM spends 50-70% of its time outside
// the match, evaluating spatial predicates over image regions; every
// predicate SPAM's knowledge base needs (intersection, adjacency,
// containment, parallelism, proximity, alignment, elongation, …) is
// implemented here from scratch.
//
// All polygons are simple (non-self-intersecting) with vertices in
// either winding order; operations normalize as needed.
package geom

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// exactOnly routes every distance predicate through the reference
// Hypot-chain kernel (see UseExactOnly).
var exactOnly atomic.Bool

// UseExactOnly switches the package between the squared-distance fast
// paths (the default) and the reference per-candidate Hypot kernel.
// The two produce identical predicate booleans — the fast paths answer
// only when a conservative bound is decisive and fall back to the
// exact kernel in the uncertain band — so the toggle exists for the
// differential oracles and for benchmarking the fast paths' win.
// Process-global because the SPAM external functions run on worker
// pools that share polygons across engines.
func UseExactOnly(on bool) { exactOnly.Store(on) }

// ExactOnly reports whether the reference kernel is selected.
func ExactOnly() bool { return exactOnly.Load() }

// boundSlack is the relative guard band of the decisive-bound rule: a
// conservative bound may answer a threshold predicate only when it
// clears the threshold by this factor. Floating-point evaluation of
// the bounds and of the exact kernel differs from the real-valued
// distance by a few ULPs (~1e-16 relative); a 1e-9 band is six orders
// of magnitude wider, so a bound that clears it can never disagree
// with the exact kernel. Thresholds inside the band fall through to
// the exact kernel.
const boundSlack = 1e-9

// Point is a 2-D point in image coordinates (pixels).
type Point struct {
	X, Y float64
}

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product p · q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// Rect is an axis-aligned rectangle.
type Rect struct {
	Min, Max Point
}

// W returns the rectangle's width.
func (r Rect) W() float64 { return r.Max.X - r.Min.X }

// H returns the rectangle's height.
func (r Rect) H() float64 { return r.Max.Y - r.Min.Y }

// Center returns the rectangle's center point.
func (r Rect) Center() Point { return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2} }

// Intersects reports whether two rectangles overlap (closed intervals).
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Expand returns r grown by d on every side.
func (r Rect) Expand(d float64) Rect {
	return Rect{Point{r.Min.X - d, r.Min.Y - d}, Point{r.Max.X + d, r.Max.Y + d}}
}

// Contains reports whether p lies inside r (closed).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Polygon is a simple polygon given by its vertex ring (no repeated
// closing vertex).
type Polygon []Point

// Clone returns a deep copy of the polygon.
func (pg Polygon) Clone() Polygon { return append(Polygon(nil), pg...) }

// Valid reports whether the polygon has at least 3 vertices and
// non-zero area.
func (pg Polygon) Valid() bool { return len(pg) >= 3 && math.Abs(pg.SignedArea()) > 1e-9 }

// SignedArea returns the signed area (positive for counter-clockwise
// winding in a Y-up frame).
func (pg Polygon) SignedArea() float64 {
	var a float64
	n := len(pg)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		a += pg[i].Cross(pg[j])
	}
	return a / 2
}

// Area returns the absolute area of the polygon.
func (pg Polygon) Area() float64 { return math.Abs(pg.SignedArea()) }

// Perimeter returns the length of the polygon boundary.
func (pg Polygon) Perimeter() float64 {
	var s float64
	n := len(pg)
	for i := 0; i < n; i++ {
		s += pg[i].Dist(pg[(i+1)%n])
	}
	return s
}

// Centroid returns the area centroid of the polygon.
func (pg Polygon) Centroid() Point {
	var cx, cy, a float64
	n := len(pg)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		cr := pg[i].Cross(pg[j])
		cx += (pg[i].X + pg[j].X) * cr
		cy += (pg[i].Y + pg[j].Y) * cr
		a += cr
	}
	if math.Abs(a) < 1e-12 {
		// Degenerate: fall back to the vertex mean.
		var m Point
		for _, p := range pg {
			m = m.Add(p)
		}
		return m.Scale(1 / float64(len(pg)))
	}
	return Point{cx / (3 * a), cy / (3 * a)}
}

// BBox returns the axis-aligned bounding box.
func (pg Polygon) BBox() Rect {
	if len(pg) == 0 {
		return Rect{}
	}
	r := Rect{pg[0], pg[0]}
	for _, p := range pg[1:] {
		if p.X < r.Min.X {
			r.Min.X = p.X
		}
		if p.Y < r.Min.Y {
			r.Min.Y = p.Y
		}
		if p.X > r.Max.X {
			r.Max.X = p.X
		}
		if p.Y > r.Max.Y {
			r.Max.Y = p.Y
		}
	}
	return r
}

// principalAxes returns the eigenvalues (major, minor) and major-axis
// direction of the vertex covariance matrix. SPAM uses this for
// elongation and orientation measurements of image regions.
func (pg Polygon) principalAxes() (major, minor float64, dir Point) {
	n := float64(len(pg))
	if n == 0 {
		return 0, 0, Point{1, 0}
	}
	var mean Point
	for _, p := range pg {
		mean = mean.Add(p)
	}
	mean = mean.Scale(1 / n)
	var sxx, syy, sxy float64
	for _, p := range pg {
		d := p.Sub(mean)
		sxx += d.X * d.X
		syy += d.Y * d.Y
		sxy += d.X * d.Y
	}
	sxx, syy, sxy = sxx/n, syy/n, sxy/n
	tr := sxx + syy
	det := sxx*syy - sxy*sxy
	disc := math.Sqrt(math.Max(0, tr*tr/4-det))
	l1 := tr/2 + disc
	l2 := tr/2 - disc
	var d Point
	if math.Abs(sxy) > 1e-12 {
		d = Point{l1 - syy, sxy}
	} else if sxx >= syy {
		d = Point{1, 0}
	} else {
		d = Point{0, 1}
	}
	if norm := d.Norm(); norm > 0 {
		d = d.Scale(1 / norm)
	}
	return l1, l2, d
}

// Elongation returns the ratio of the major to minor principal extents
// (>= 1). Long thin regions (runways, roads) have high elongation.
func (pg Polygon) Elongation() float64 {
	major, minor, _ := pg.principalAxes()
	if minor <= 1e-12 {
		return math.Inf(1)
	}
	return math.Sqrt(major / minor)
}

// Orientation returns the major-axis orientation in radians in [0, π).
func (pg Polygon) Orientation() float64 {
	_, _, d := pg.principalAxes()
	a := math.Atan2(d.Y, d.X)
	if a < 0 {
		a += math.Pi
	}
	if a >= math.Pi {
		a -= math.Pi
	}
	return a
}

// Compactness returns 4πA/P² in (0, 1]; 1 is a circle. Compact blobs
// (terminal buildings) score high, elongated strips low.
func (pg Polygon) Compactness() float64 {
	p := pg.Perimeter()
	if p <= 0 {
		return 0
	}
	return 4 * math.Pi * pg.Area() / (p * p)
}

// Contains reports whether pt is strictly inside the polygon
// (even-odd rule; boundary points count as inside).
func (pg Polygon) Contains(pt Point) bool {
	n := len(pg)
	if n < 3 {
		return false
	}
	inside := false
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		pi, pj := pg[i], pg[j]
		// On-edge check.
		if distPointSegment(pt, pi, pj) < 1e-9 {
			return true
		}
		if (pi.Y > pt.Y) != (pj.Y > pt.Y) {
			xCross := pi.X + (pt.Y-pi.Y)/(pj.Y-pi.Y)*(pj.X-pi.X)
			if pt.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// segIntersect reports whether segments ab and cd intersect (including
// endpoint touching and collinear overlap).
func segIntersect(a, b, c, d Point) bool {
	d1 := orient(c, d, a)
	d2 := orient(c, d, b)
	d3 := orient(a, b, c)
	d4 := orient(a, b, d)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	return (d1 == 0 && onSegment(c, d, a)) ||
		(d2 == 0 && onSegment(c, d, b)) ||
		(d3 == 0 && onSegment(a, b, c)) ||
		(d4 == 0 && onSegment(a, b, d))
}

func orient(a, b, c Point) float64 {
	v := b.Sub(a).Cross(c.Sub(a))
	if math.Abs(v) < 1e-12 {
		return 0
	}
	return v
}

func onSegment(a, b, p Point) bool {
	return math.Min(a.X, b.X)-1e-12 <= p.X && p.X <= math.Max(a.X, b.X)+1e-12 &&
		math.Min(a.Y, b.Y)-1e-12 <= p.Y && p.Y <= math.Max(a.Y, b.Y)+1e-12
}

// Intersects reports whether two polygons share any point (boundary or
// interior). O(n·m) edge test with an O(1) bounding-box reject — this
// is the dominant LCC constraint kernel.
func (pg Polygon) Intersects(other Polygon) bool {
	return pg.intersectsBB(pg.BBox(), other, other.BBox())
}

// intersectsBB is Intersects with caller-precomputed bounding boxes;
// the boxes only gate the reject, so the boolean is identical.
func (pg Polygon) intersectsBB(bb Rect, other Polygon, obb Rect) bool {
	if len(pg) < 3 || len(other) < 3 {
		return false
	}
	if !bb.Intersects(obb) {
		return false
	}
	n, m := len(pg), len(other)
	for i := 0; i < n; i++ {
		a, b := pg[i], pg[(i+1)%n]
		for j := 0; j < m; j++ {
			c, d := other[j], other[(j+1)%m]
			if segIntersect(a, b, c, d) {
				return true
			}
		}
	}
	// No edge crossings: one may contain the other entirely.
	return pg.Contains(other[0]) || other.Contains(pg[0])
}

// ContainsPoly reports whether pg fully contains other.
func (pg Polygon) ContainsPoly(other Polygon) bool {
	if len(pg) < 3 || len(other) < 3 {
		return false
	}
	for _, p := range other {
		if !pg.Contains(p) {
			return false
		}
	}
	// All vertices inside; ensure no edge of other crosses pg's boundary
	// out and back (possible with concave pg).
	n, m := len(pg), len(other)
	for i := 0; i < n; i++ {
		a, b := pg[i], pg[(i+1)%n]
		for j := 0; j < m; j++ {
			c, d := other[j], other[(j+1)%m]
			if orient(a, b, c) != 0 && orient(a, b, d) != 0 && segIntersect(a, b, c, d) {
				return false
			}
		}
	}
	return true
}

func distPointSegment(p, a, b Point) float64 {
	ab := b.Sub(a)
	l2 := ab.Dot(ab)
	if l2 == 0 {
		return p.Dist(a)
	}
	t := p.Sub(a).Dot(ab) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	proj := a.Add(ab.Scale(t))
	return p.Dist(proj)
}

// distPointSegmentSq is the squared-distance kernel: the same
// projection as distPointSegment but returning dx²+dy² with no Hypot
// call. Candidate minima are compared in squared space and a single
// Sqrt recovers the distance at the end.
func distPointSegmentSq(p, a, b Point) float64 {
	abx, aby := b.X-a.X, b.Y-a.Y
	px, py := p.X-a.X, p.Y-a.Y
	l2 := abx*abx + aby*aby
	if l2 != 0 {
		t := (px*abx + py*aby) / l2
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
		px -= t * abx
		py -= t * aby
	}
	return px*px + py*py
}

// segPairDistSq returns the squared distance between segments ab and
// cd: the minimum of the four point-segment candidates, compared
// directly (no intermediate slice).
func segPairDistSq(a, b, c, d Point) float64 {
	best := distPointSegmentSq(a, c, d)
	if v := distPointSegmentSq(b, c, d); v < best {
		best = v
	}
	if v := distPointSegmentSq(c, a, b); v < best {
		best = v
	}
	if v := distPointSegmentSq(d, a, b); v < best {
		best = v
	}
	return best
}

// boundaryDistSq returns the squared minimum boundary distance (the
// min of distPointSegmentSq over all segment pairs), assuming the
// polygons do not intersect.
func (pg Polygon) boundaryDistSq(other Polygon) float64 {
	best := math.Inf(1)
	n, m := len(pg), len(other)
	for i := 0; i < n; i++ {
		a, b := pg[i], pg[(i+1)%n]
		for j := 0; j < m; j++ {
			if v := segPairDistSq(a, b, other[j], other[(j+1)%m]); v < best {
				best = v
			}
		}
	}
	return best
}

// distanceExactScan is the reference boundary-distance kernel: one
// Hypot-based distPointSegment per candidate, min over all candidates.
func (pg Polygon) distanceExactScan(other Polygon) float64 {
	best := math.Inf(1)
	n, m := len(pg), len(other)
	for i := 0; i < n; i++ {
		a, b := pg[i], pg[(i+1)%n]
		for j := 0; j < m; j++ {
			c, d := other[j], other[(j+1)%m]
			if v := distPointSegment(a, c, d); v < best {
				best = v
			}
			if v := distPointSegment(b, c, d); v < best {
				best = v
			}
			if v := distPointSegment(c, a, b); v < best {
				best = v
			}
			if v := distPointSegment(d, a, b); v < best {
				best = v
			}
		}
	}
	return best
}

func (pg Polygon) distanceExact(other Polygon) float64 {
	if pg.Intersects(other) {
		return 0
	}
	return pg.distanceExactScan(other)
}

// Distance returns the minimum distance between the boundaries of two
// polygons; 0 if they intersect. The default kernel minimises in
// squared space and takes one Sqrt at the end; UseExactOnly selects
// the reference per-candidate Hypot kernel (values may differ in the
// last ULP; every threshold predicate is boolean-identical regardless,
// see WithinDistance).
func (pg Polygon) Distance(other Polygon) float64 {
	if exactOnly.Load() {
		return pg.distanceExact(other)
	}
	if pg.Intersects(other) {
		return 0
	}
	return math.Sqrt(pg.boundaryDistSq(other))
}

// RectGapSq returns the squared separation between two axis-aligned
// rectangles (0 if they overlap). It lower-bounds the distance between
// any two point sets the rectangles bound.
func RectGapSq(a, b Rect) float64 {
	var dx, dy float64
	if d := b.Min.X - a.Max.X; d > 0 {
		dx = d
	} else if d := a.Min.X - b.Max.X; d > 0 {
		dx = d
	}
	if d := b.Min.Y - a.Max.Y; d > 0 {
		dy = d
	} else if d := a.Min.Y - b.Max.Y; d > 0 {
		dy = d
	}
	return dx*dx + dy*dy
}

// WithinDistance reports whether Distance(other) <= eps, with
// threshold-aware early exits: a conservative bounding-box separation
// bound rejects decisively-far pairs before any boundary scan, the
// scan itself runs in squared space and returns as soon as a candidate
// is decisively within eps, and only thresholds inside the guard band
// (see boundSlack) fall back to the exact Hypot kernel — so the
// boolean is identical to the exact path by construction.
func (pg Polygon) WithinDistance(other Polygon, eps float64) bool {
	if exactOnly.Load() {
		return pg.distanceExact(other) <= eps
	}
	return withinDistance(pg, pg.BBox(), other, other.BBox(), eps)
}

// DistanceLE is a synonym of WithinDistance, reading as the comparison
// it replaces: pg.Distance(other) <= eps.
func (pg Polygon) DistanceLE(other Polygon, eps float64) bool {
	return pg.WithinDistance(other, eps)
}

// withinDistance is the shared threshold kernel; abb and obb are the
// polygons' bounding boxes (precomputed by derived-geometry callers).
func withinDistance(pg Polygon, abb Rect, other Polygon, obb Rect, eps float64) bool {
	if eps < 0 {
		return false // distances are never negative
	}
	hi := eps * (1 + boundSlack)
	lo := eps * (1 - boundSlack)
	hi2, lo2 := hi*hi, lo*lo
	if RectGapSq(abb, obb) > hi2 {
		return false // decisively separated: skip the edge scans entirely
	}
	if pg.intersectsBB(abb, other, obb) {
		return true // distance 0
	}
	best := math.Inf(1)
	n, m := len(pg), len(other)
	for i := 0; i < n; i++ {
		a, b := pg[i], pg[(i+1)%n]
		for j := 0; j < m; j++ {
			v := segPairDistSq(a, b, other[j], other[(j+1)%m])
			if v <= lo2 {
				return true // decisively within eps
			}
			if v < best {
				best = v
			}
		}
	}
	if best > hi2 {
		return false
	}
	// Uncertain band: the minimum landed within the guard band of eps.
	// Recompute with the exact kernel so the boolean matches it.
	return pg.distanceExactScan(other) <= eps
}

// Adjacent reports whether the two polygons are within eps of touching.
func (pg Polygon) Adjacent(other Polygon, eps float64) bool {
	if !pg.BBox().Expand(eps).Intersects(other.BBox()) {
		return false
	}
	return pg.WithinDistance(other, eps)
}

// AngleDeltaModPi returns |a-b| folded into [0, π/2] — the axis-angle
// difference used by the parallelism predicates (orientations live in
// [0, π), so the fold makes the delta winding-independent).
func AngleDeltaModPi(a, b float64) float64 {
	da := math.Abs(a - b)
	if da > math.Pi/2 {
		da = math.Pi - da
	}
	return da
}

// LateralOffset returns the perpendicular distance from target to the
// line through origin in direction dir (dir unit length) — the
// alignment measure of AlignedWith.
func LateralOffset(origin, dir, target Point) float64 {
	return math.Abs(target.Sub(origin).Cross(dir))
}

// ParallelTo reports whether the major axes of the two polygons are
// within tol radians of parallel (mod π).
func (pg Polygon) ParallelTo(other Polygon, tol float64) bool {
	return AngleDeltaModPi(pg.Orientation(), other.Orientation()) <= tol
}

// PerpendicularTo reports whether the major axes are within tol radians
// of perpendicular.
func (pg Polygon) PerpendicularTo(other Polygon, tol float64) bool {
	da := AngleDeltaModPi(pg.Orientation(), other.Orientation())
	return math.Abs(da-math.Pi/2) <= tol
}

// AlignedWith reports whether other lies roughly along pg's major axis:
// the line through pg's centroid in its major direction passes within
// lateralTol of other's centroid. SPAM's RTF phase uses linear
// alignment to chain collinear runway fragments.
func (pg Polygon) AlignedWith(other Polygon, lateralTol float64) bool {
	_, _, dir := pg.principalAxes()
	return LateralOffset(pg.Centroid(), dir, other.Centroid()) <= lateralTol
}

// MajorAxis returns the major-axis direction and its orientation in
// [0, π) in one principal-axes computation, for derived-geometry
// caching.
func (pg Polygon) MajorAxis() (dir Point, orientation float64) {
	_, _, d := pg.principalAxes()
	a := math.Atan2(d.Y, d.X)
	if a < 0 {
		a += math.Pi
	}
	if a >= math.Pi {
		a -= math.Pi
	}
	return d, a
}

// Derived is per-polygon geometry computed once and reused across
// predicate evaluations: the LCC hot loop re-tests the same regions
// against overlapping partner sets thousands of times, and every value
// here is a pure function of the vertex ring, so caching it is
// bit-identical to recomputation.
type Derived struct {
	BBox     Rect
	Centroid Point
	// Radius is the bounding-circle radius about the centroid: every
	// boundary point is within Radius of Centroid, so
	// |ca−cb| − ra − rb lower-bounds the boundary distance.
	Radius   float64
	Area     float64
	Compact  float64
	Elong    float64
	MajorDir Point
	Orient   float64
	// Edges[i] is vertex i+1 minus vertex i (wrapping), precomputed for
	// edge-walking callers.
	Edges []Point
}

// Derive computes the derived geometry of a polygon. Each field equals
// the corresponding Polygon method's result exactly (same operations
// on the same inputs).
func Derive(pg Polygon) *Derived {
	dir, orient := pg.MajorAxis()
	d := &Derived{
		BBox:     pg.BBox(),
		Centroid: pg.Centroid(),
		Area:     pg.Area(),
		Compact:  pg.Compactness(),
		Elong:    pg.Elongation(),
		MajorDir: dir,
		Orient:   orient,
		Edges:    make([]Point, len(pg)),
	}
	n := len(pg)
	for i := 0; i < n; i++ {
		d.Edges[i] = pg[(i+1)%n].Sub(pg[i])
		if r := pg[i].Dist(d.Centroid); r > d.Radius {
			d.Radius = r
		}
	}
	return d
}

// IntersectsD is Intersects over cached bounding boxes — identical
// boolean, no per-call BBox recomputation.
func IntersectsD(a Polygon, da *Derived, b Polygon, db *Derived) bool {
	return a.intersectsBB(da.BBox, b, db.BBox)
}

// WithinDistanceD is WithinDistance over cached derived geometry: the
// bounding-box bound uses the cached boxes and a bounding-circle
// separation bound rejects decisively-far pairs whose boxes overlap
// diagonally. Boolean-identical to the exact path by the same
// decisive-bound rule.
func WithinDistanceD(a Polygon, da *Derived, b Polygon, db *Derived, eps float64) bool {
	if exactOnly.Load() {
		return a.distanceExact(b) <= eps
	}
	if eps >= 0 {
		// Bounding-circle reject: g lower-bounds the boundary distance.
		if g := da.Centroid.Dist(db.Centroid) - da.Radius - db.Radius; g > eps*(1+boundSlack) {
			return false
		}
	}
	return withinDistance(a, da.BBox, b, db.BBox, eps)
}

// ParallelD is ParallelTo over cached orientations.
func ParallelD(da, db *Derived, tol float64) bool {
	return AngleDeltaModPi(da.Orient, db.Orient) <= tol
}

// AlignedD is AlignedWith over cached centroids and major axes: does
// the line through a's centroid along a's major axis pass within
// lateralTol of b's centroid?
func AlignedD(da, db *Derived, lateralTol float64) bool {
	return LateralOffset(da.Centroid, da.MajorDir, db.Centroid) <= lateralTol
}

// ConvexHull returns the convex hull of the polygon's vertices in
// counter-clockwise order (Andrew's monotone chain).
func (pg Polygon) ConvexHull() Polygon {
	pts := append([]Point(nil), pg...)
	if len(pts) < 3 {
		return Polygon(pts)
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Y < pts[j].Y
	})
	var hull []Point
	// Lower hull.
	for _, p := range pts {
		for len(hull) >= 2 && hull[len(hull)-1].Sub(hull[len(hull)-2]).Cross(p.Sub(hull[len(hull)-2])) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := len(pts) - 2; i >= 0; i-- {
		p := pts[i]
		for len(hull) >= lower && hull[len(hull)-1].Sub(hull[len(hull)-2]).Cross(p.Sub(hull[len(hull)-2])) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return Polygon(hull[:len(hull)-1])
}

// RectPoly builds a rectangle polygon centered at c with the given
// length along angle theta and the given width across it.
func RectPoly(c Point, length, width, theta float64) Polygon {
	u := Point{math.Cos(theta), math.Sin(theta)}.Scale(length / 2)
	v := Point{-math.Sin(theta), math.Cos(theta)}.Scale(width / 2)
	return Polygon{
		c.Add(u).Add(v),
		c.Sub(u).Add(v),
		c.Sub(u).Sub(v),
		c.Add(u).Sub(v),
	}
}

// Blob builds an irregular n-gon around center c with mean radius r;
// jitter in [0,1) perturbs each vertex radius deterministically from
// the seed, producing natural-looking region outlines.
func Blob(c Point, r float64, n int, jitter float64, seed uint64) Polygon {
	if n < 3 {
		n = 3
	}
	pg := make(Polygon, n)
	s := seed
	for i := 0; i < n; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		frac := float64(s>>11) / float64(1<<53)
		rad := r * (1 + jitter*(frac*2-1))
		a := 2 * math.Pi * float64(i) / float64(n)
		pg[i] = Point{c.X + rad*math.Cos(a), c.Y + rad*math.Sin(a)}
	}
	return pg
}

// String renders the polygon compactly for diagnostics.
func (pg Polygon) String() string {
	return fmt.Sprintf("poly[%d pts, area %.0f]", len(pg), pg.Area())
}
