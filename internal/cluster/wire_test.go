package cluster

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"spampsm/internal/ops5"
	"spampsm/internal/spam"
	"spampsm/internal/symtab"
	"spampsm/internal/tlp"
)

// corpusTasks builds real task messages from the three airports' RTF
// queues plus DC's full LCC/FA/model pipeline — every wire-spec phase
// the coordinator actually ships.
func corpusTasks(t testing.TB) []*TaskMsg {
	t.Helper()
	var queue []*tlp.Task
	pipeline := func(name string, d *spam.Dataset) {
		rtf := spam.BuildRTFTasks(d.KB, d.Store, d.Progs.RTF, 3, false)
		queue = append(queue, rtf...)
		if name != "DC" {
			return
		}
		pool := &tlp.Pool{Workers: 2}
		rtfResults, err := pool.Run(rtf)
		if err != nil {
			t.Fatalf("%s: rtf: %v", name, err)
		}
		frags := spam.ExtractFragments(rtfResults)
		lcc := spam.BuildLCCTasks(d.KB, d.Store, d.Progs.LCC, frags, spam.Level3, false)
		queue = append(queue, lcc...)
		lccResults, err := pool.Run(lcc)
		if err != nil {
			t.Fatalf("%s: lcc: %v", name, err)
		}
		pairs, outs := spam.ExtractLCC(lccResults)
		fa := spam.BuildFATasks(d.KB, d.Store, d.Progs.FA, frags, pairs, outs, false)
		queue = append(queue, fa...)
		faResults, err := pool.Run(fa)
		if err != nil {
			t.Fatalf("%s: fa: %v", name, err)
		}
		fas, _ := spam.ExtractFA(faResults)
		queue = append(queue, spam.BuildModelTask(d.KB, d.Store, d.Progs.Model, frags, fas, false))
	}
	for _, name := range []string{"SF", "DC", "MOFF"} {
		d, err := spam.NewDataset(airportParams(name))
		if err != nil {
			t.Fatalf("%s: dataset: %v", name, err)
		}
		pipeline(name, d)
	}

	cfg := RunConfig{
		MaxFirings: 5000, FiringBudget: 120000, MaxRetries: 2,
		TaskTimeout: 250 * time.Millisecond, RetryBackoff: time.Millisecond,
	}
	var out []*TaskMsg
	for i, task := range queue {
		if task.Wire == nil {
			t.Fatalf("task %s has no wire spec", task.ID)
		}
		spec, err := task.Wire()
		if err != nil {
			t.Fatalf("task %s: wire: %v", task.ID, err)
		}
		out = append(out, &TaskMsg{
			RunID: uint64(i + 1), Seq: i, StartAttempt: 1 + i%3,
			ID: task.ID, Label: task.Label, Group: task.Group,
			EstSize: task.EstSize, MemEst: task.MemEst,
			Config: cfg, Spec: *spec,
		})
	}
	if len(out) == 0 {
		t.Fatal("empty wire corpus")
	}
	return out
}

func sampleResults() []*ResultMsg {
	return []*ResultMsg{
		{RunID: 3, Seq: 9, TaskID: "rtf-004", Worker: 1, Attempts: 2,
			Stats: ops5.RunStats{Firings: 41, Cycles: 44, RHSActions: 90,
				MatchInstr: 1234.5, ResolveInstr: 17, ActInstr: 90, InitInstr: 400, Halted: true},
			HasLog: true,
			Mem: ops5.MemStats{SeedWMEs: 12, SeedBytes: 480, RetractedWMEs: 3, RetractedBytes: 96,
				PeakWMEs: 60, PeakTokens: 140, PeakBytes: 9000},
			Snapshot: []SnapClass{{Name: "fragment", Attrs: []string{"id", "kind", "score"},
				Rows: [][]symtab.Value{
					{symtab.Sym("f1"), symtab.Sym("runway"), symtab.Float(0.9)},
					{symtab.Int(2), symtab.Nil, symtab.Float(-1.25)},
				}}},
		},
		{RunID: 1, Seq: 0, TaskID: "lcc-000", Attempts: 3, Quarantined: true,
			Err: &WireError{Msg: "tlp: task lcc-000: injected build failure", Marks: tlp.MarkInjected},
			AttemptErrs: []WireError{
				{Msg: "tlp: task lcc-000: worker crash", Marks: tlp.MarkCrash | tlp.MarkInjected},
				{Msg: "tlp: task lcc-000: injected build failure", Marks: tlp.MarkInjected},
			},
		},
		{RunID: 2, Seq: 5, TaskID: "fa-001", Attempts: 1, Cancelled: true,
			Err: &WireError{Msg: "tlp: task fa-001: cancelled", Marks: tlp.MarkCancelled}},
	}
}

// TestWireRoundTripTasks checks full structural identity —
// decode(encode(m)) == m — over the real airport task corpus and
// representative results.
func TestWireRoundTripTasks(t *testing.T) {
	for _, m := range corpusTasks(t) {
		got, err := DecodeTask(EncodeTask(m))
		if err != nil {
			t.Fatalf("task %s: decode: %v", m.ID, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("task %s: round trip changed message:\nin:  %+v\nout: %+v", m.ID, m, got)
		}
	}
	for _, r := range sampleResults() {
		got, err := DecodeResult(EncodeResult(r))
		if err != nil {
			t.Fatalf("result %s: decode: %v", r.TaskID, err)
		}
		if !reflect.DeepEqual(r, got) {
			t.Errorf("result %s: round trip changed message:\nin:  %+v\nout: %+v", r.TaskID, r, got)
		}
	}
}

// FuzzWireRoundTrip fuzzes both codec directions with the invariant
// that any payload the decoder accepts re-encodes to the same bytes
// after a second decode (canonical-form fixed point — NaN-safe where
// DeepEqual is not). The first corpus byte selects the codec.
func FuzzWireRoundTrip(f *testing.F) {
	for _, m := range corpusTasks(f) {
		f.Add(append([]byte{0}, EncodeTask(m)...))
	}
	for _, r := range sampleResults() {
		f.Add(append([]byte{1}, EncodeResult(r)...))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		kind, payload := data[0], data[1:]
		switch kind % 2 {
		case 0:
			m, err := DecodeTask(payload)
			if err != nil {
				return
			}
			enc := EncodeTask(m)
			m2, err := DecodeTask(enc)
			if err != nil {
				t.Fatalf("re-decode rejected own encoding: %v", err)
			}
			if !bytes.Equal(enc, EncodeTask(m2)) {
				t.Fatalf("task encoding not canonical:\n%x\nvs\n%x", enc, EncodeTask(m2))
			}
		case 1:
			r, err := DecodeResult(payload)
			if err != nil {
				return
			}
			enc := EncodeResult(r)
			r2, err := DecodeResult(enc)
			if err != nil {
				t.Fatalf("re-decode rejected own encoding: %v", err)
			}
			if !bytes.Equal(enc, EncodeResult(r2)) {
				t.Fatalf("result encoding not canonical:\n%x\nvs\n%x", enc, EncodeResult(r2))
			}
		}
	})
}
