package cluster

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"spampsm/internal/ops5"
	"spampsm/internal/spam"
	"spampsm/internal/symtab"
	"spampsm/internal/tlp"
)

// corpusTasks builds real task messages from the three airports' RTF
// queues plus DC's full LCC/FA/model pipeline — every wire-spec phase
// the coordinator actually ships.
func corpusTasks(t testing.TB) []*TaskMsg {
	t.Helper()
	var queue []*tlp.Task
	pipeline := func(name string, d *spam.Dataset) {
		rtf := spam.BuildRTFTasks(d.KB, d.Store, d.Progs.RTF, 3, false)
		queue = append(queue, rtf...)
		if name != "DC" {
			return
		}
		pool := &tlp.Pool{Workers: 2}
		rtfResults, err := pool.Run(rtf)
		if err != nil {
			t.Fatalf("%s: rtf: %v", name, err)
		}
		frags := spam.ExtractFragments(rtfResults)
		lcc := spam.BuildLCCTasks(d.KB, d.Store, d.Progs.LCC, frags, spam.Level3, false)
		queue = append(queue, lcc...)
		lccResults, err := pool.Run(lcc)
		if err != nil {
			t.Fatalf("%s: lcc: %v", name, err)
		}
		pairs, outs := spam.ExtractLCC(lccResults)
		fa := spam.BuildFATasks(d.KB, d.Store, d.Progs.FA, frags, pairs, outs, false)
		queue = append(queue, fa...)
		faResults, err := pool.Run(fa)
		if err != nil {
			t.Fatalf("%s: fa: %v", name, err)
		}
		fas, _ := spam.ExtractFA(faResults)
		queue = append(queue, spam.BuildModelTask(d.KB, d.Store, d.Progs.Model, frags, fas, false))
	}
	for _, name := range []string{"SF", "DC", "MOFF"} {
		d, err := spam.NewDataset(airportParams(name))
		if err != nil {
			t.Fatalf("%s: dataset: %v", name, err)
		}
		pipeline(name, d)
	}

	cfg := RunConfig{
		MaxFirings: 5000, FiringBudget: 120000, MaxRetries: 2,
		TaskTimeout: 250 * time.Millisecond, RetryBackoff: time.Millisecond,
	}
	var out []*TaskMsg
	for i, task := range queue {
		if task.Wire == nil {
			t.Fatalf("task %s has no wire spec", task.ID)
		}
		spec, err := task.Wire()
		if err != nil {
			t.Fatalf("task %s: wire: %v", task.ID, err)
		}
		out = append(out, &TaskMsg{
			RunID: uint64(i + 1), Seq: i, StartAttempt: 1 + i%3,
			ID: task.ID, Label: task.Label, Group: task.Group,
			EstSize: task.EstSize, MemEst: task.MemEst,
			Config: cfg, Spec: *spec,
		})
	}
	if len(out) == 0 {
		t.Fatal("empty wire corpus")
	}
	return out
}

func sampleResults() []*ResultMsg {
	return []*ResultMsg{
		{RunID: 3, Seq: 9, TaskID: "rtf-004", Worker: 1, Attempts: 2,
			Stats: ops5.RunStats{Firings: 41, Cycles: 44, RHSActions: 90,
				MatchInstr: 1234.5, ResolveInstr: 17, ActInstr: 90, InitInstr: 400, Halted: true},
			HasLog: true,
			Mem: ops5.MemStats{SeedWMEs: 12, SeedBytes: 480, RetractedWMEs: 3, RetractedBytes: 96,
				PeakWMEs: 60, PeakTokens: 140, PeakBytes: 9000},
			Snapshot: []SnapClass{{Name: "fragment", Attrs: []string{"id", "kind", "score"},
				Rows: [][]symtab.Value{
					{symtab.Sym("f1"), symtab.Sym("runway"), symtab.Float(0.9)},
					{symtab.Int(2), symtab.Nil, symtab.Float(-1.25)},
				}}},
		},
		{RunID: 1, Seq: 0, TaskID: "lcc-000", Attempts: 3, Quarantined: true,
			Err: &WireError{Msg: "tlp: task lcc-000: injected build failure", Marks: tlp.MarkInjected},
			AttemptErrs: []WireError{
				{Msg: "tlp: task lcc-000: worker crash", Marks: tlp.MarkCrash | tlp.MarkInjected},
				{Msg: "tlp: task lcc-000: injected build failure", Marks: tlp.MarkInjected},
			},
		},
		{RunID: 2, Seq: 5, TaskID: "fa-001", Attempts: 1, Cancelled: true,
			Err: &WireError{Msg: "tlp: task fa-001: cancelled", Marks: tlp.MarkCancelled}},
	}
}

// TestWireRoundTripTasks checks full structural identity —
// decode(encode(m)) == m — over the real airport task corpus and
// representative results.
func TestWireRoundTripTasks(t *testing.T) {
	for _, m := range corpusTasks(t) {
		got, err := DecodeTask(EncodeTask(m))
		if err != nil {
			t.Fatalf("task %s: decode: %v", m.ID, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("task %s: round trip changed message:\nin:  %+v\nout: %+v", m.ID, m, got)
		}
	}
	for _, r := range sampleResults() {
		got, err := DecodeResult(EncodeResult(r))
		if err != nil {
			t.Fatalf("result %s: decode: %v", r.TaskID, err)
		}
		if !reflect.DeepEqual(r, got) {
			t.Errorf("result %s: round trip changed message:\nin:  %+v\nout: %+v", r.TaskID, r, got)
		}
	}
}

// chunkRefsFor models the coordinator's chunk plan for one task in
// isolation: every shared (digest-carrying) seed becomes a chunk,
// assigning ids in seed order from the given table.
func chunkRefsFor(m *TaskMsg, resident map[string]uint64, next *uint64) ([]int64, []uint64, []ops5.Seed) {
	refs := make([]int64, len(m.Spec.Seeds))
	var newIDs []uint64
	var newSeeds []ops5.Seed
	for i, s := range m.Spec.Seeds {
		refs[i] = -1
		if s.Digest == "" {
			continue
		}
		id, ok := resident[s.Digest]
		if !ok {
			id = *next
			*next++
			resident[s.Digest] = id
			newIDs = append(newIDs, id)
			newSeeds = append(newSeeds, s)
		}
		refs[i] = int64(id)
	}
	return refs, newIDs, newSeeds
}

// TestWireRoundTripTasksV2 checks structural identity for the v2
// codec over the same corpus: every task both fully inline and with
// its shared seeds resolved through chunk frames, sharing one intern
// table pair across the whole stream — exactly one connection's
// lifetime. Spawned marks and the v2 result codec's dropped TaskID are
// covered too.
func TestWireRoundTripTasksV2(t *testing.T) {
	enc, dec := NewEncTab(), &DecTab{}
	for i, m := range corpusTasks(t) {
		m.Spawned = i%3 == 0
		got, refs, err := DecodeTaskV2(dec, EncodeTaskV2(enc, m, nil), func(uint64) (ops5.Seed, bool) {
			return ops5.Seed{}, false
		})
		if err != nil {
			t.Fatalf("task %s: inline decode: %v", m.ID, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("task %s: inline round trip changed message:\nin:  %+v\nout: %+v", m.ID, m, got)
		}
		for _, r := range refs {
			if r != -1 {
				t.Fatalf("task %s: inline frame decoded chunk ref %d", m.ID, r)
			}
		}
	}

	encC, decC := NewEncTab(), &DecTab{}
	resident := map[string]uint64{}
	workerChunks := map[uint64]ops5.Seed{}
	var next uint64
	for _, m := range corpusTasks(t) {
		refs, newIDs, newSeeds := chunkRefsFor(m, resident, &next)
		for i, id := range newIDs {
			gotID, seed, err := DecodeChunk(decC, EncodeChunk(encC, id, newSeeds[i]))
			if err != nil {
				t.Fatalf("chunk %d: decode: %v", id, err)
			}
			if gotID != id || !reflect.DeepEqual(seed, newSeeds[i]) {
				t.Fatalf("chunk %d: round trip changed chunk: got id %d seed %+v", id, gotID, seed)
			}
			workerChunks[gotID] = seed
		}
		got, gotRefs, err := DecodeTaskV2(decC, EncodeTaskV2(encC, m, refs), func(id uint64) (ops5.Seed, bool) {
			s, ok := workerChunks[id]
			return s, ok
		})
		if err != nil {
			t.Fatalf("task %s: chunked decode: %v", m.ID, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("task %s: chunked round trip changed message:\nin:  %+v\nout: %+v", m.ID, m, got)
		}
		if !reflect.DeepEqual(refs, gotRefs) {
			t.Errorf("task %s: refs changed: in %v out %v", m.ID, refs, gotRefs)
		}
	}

	encR, decR := NewEncTab(), &DecTab{}
	for _, r := range sampleResults() {
		r.Spawned = r.Seq%2 == 1
		got, err := DecodeResultV2(decR, EncodeResultV2(encR, r))
		if err != nil {
			t.Fatalf("result %s: decode: %v", r.TaskID, err)
		}
		want := *r
		want.TaskID = "" // v2 result frames carry no task ID
		if !reflect.DeepEqual(&want, got) {
			t.Errorf("result %s: round trip changed message:\nin:  %+v\nout: %+v", r.TaskID, &want, got)
		}
	}
}

// TestWireV2InternSharing pins the point of the stateful codec: the
// second frame carrying the same strings is strictly smaller than the
// first, and a reference never leaks across connections (fresh tables
// decode only their own stream).
func TestWireV2InternSharing(t *testing.T) {
	tasks := corpusTasks(t)
	m := tasks[0]
	enc := NewEncTab()
	first := EncodeTaskV2(enc, m, nil)
	second := EncodeTaskV2(enc, m, nil)
	if len(second) >= len(first) {
		t.Fatalf("repeat frame did not shrink: first %d bytes, second %d", len(first), len(second))
	}
	dec := &DecTab{}
	noResolve := func(uint64) (ops5.Seed, bool) { return ops5.Seed{}, false }
	if _, _, err := DecodeTaskV2(dec, first, noResolve); err != nil {
		t.Fatalf("first frame: %v", err)
	}
	got, _, err := DecodeTaskV2(dec, second, noResolve)
	if err != nil {
		t.Fatalf("second frame: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("second frame decoded differently:\nin:  %+v\nout: %+v", m, got)
	}
	// A fresh connection must reject the reference-bearing second frame.
	if _, _, err := DecodeTaskV2(&DecTab{}, second, noResolve); err == nil {
		t.Fatal("fresh table accepted a frame with dangling intern references")
	}
}

// fuzzResolve synthesizes a deterministic seed for any chunk id, so
// arbitrary fuzzed reference frames decode and re-encode stably.
func fuzzResolve(id uint64) (ops5.Seed, bool) {
	return ops5.Seed{Class: "chunk", Vals: []symtab.Value{symtab.Int(int64(id))}}, true
}

// FuzzWireRoundTrip fuzzes every binary codec with the invariant that
// any payload the decoder accepts re-encodes to the same bytes after a
// second decode (canonical-form fixed point — NaN-safe where DeepEqual
// is not). The first corpus byte selects the codec; the v2 codecs run
// against fresh intern tables per frame, so the invariant is the
// single-frame canonical form (cross-frame table state is pinned by
// TestWireV2InternSharing).
func FuzzWireRoundTrip(f *testing.F) {
	for _, m := range corpusTasks(f) {
		f.Add(append([]byte{0}, EncodeTask(m)...))
		f.Add(append([]byte{2}, EncodeTaskV2(NewEncTab(), m, nil)...))
		resident := map[string]uint64{}
		var next uint64
		refs, ids, seeds := chunkRefsFor(m, resident, &next)
		enc := NewEncTab()
		for i, id := range ids {
			f.Add(append([]byte{3}, EncodeChunk(NewEncTab(), id, seeds[i])...))
			EncodeChunk(enc, id, seeds[i]) // advance the table like a real stream
		}
		f.Add(append([]byte{2}, EncodeTaskV2(enc, m, refs)...))
	}
	for _, r := range sampleResults() {
		f.Add(append([]byte{1}, EncodeResult(r)...))
		f.Add(append([]byte{5}, EncodeResultV2(NewEncTab(), r)...))
	}
	f.Add(append([]byte{4}, EncodeChunkFree([]uint64{0, 7, 130})...))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		kind, payload := data[0], data[1:]
		switch kind % 6 {
		case 0:
			m, err := DecodeTask(payload)
			if err != nil {
				return
			}
			enc := EncodeTask(m)
			m2, err := DecodeTask(enc)
			if err != nil {
				t.Fatalf("re-decode rejected own encoding: %v", err)
			}
			if !bytes.Equal(enc, EncodeTask(m2)) {
				t.Fatalf("task encoding not canonical:\n%x\nvs\n%x", enc, EncodeTask(m2))
			}
		case 1:
			r, err := DecodeResult(payload)
			if err != nil {
				return
			}
			enc := EncodeResult(r)
			r2, err := DecodeResult(enc)
			if err != nil {
				t.Fatalf("re-decode rejected own encoding: %v", err)
			}
			if !bytes.Equal(enc, EncodeResult(r2)) {
				t.Fatalf("result encoding not canonical:\n%x\nvs\n%x", enc, EncodeResult(r2))
			}
		case 2:
			m, refs, err := DecodeTaskV2(&DecTab{}, payload, fuzzResolve)
			if err != nil {
				return
			}
			enc := EncodeTaskV2(NewEncTab(), m, refs)
			m2, refs2, err := DecodeTaskV2(&DecTab{}, enc, fuzzResolve)
			if err != nil {
				t.Fatalf("re-decode rejected own encoding: %v", err)
			}
			if !bytes.Equal(enc, EncodeTaskV2(NewEncTab(), m2, refs2)) {
				t.Fatalf("task v2 encoding not canonical")
			}
		case 3:
			id, s, err := DecodeChunk(&DecTab{}, payload)
			if err != nil {
				return
			}
			enc := EncodeChunk(NewEncTab(), id, s)
			id2, s2, err := DecodeChunk(&DecTab{}, enc)
			if err != nil {
				t.Fatalf("re-decode rejected own encoding: %v", err)
			}
			if !bytes.Equal(enc, EncodeChunk(NewEncTab(), id2, s2)) {
				t.Fatalf("chunk encoding not canonical")
			}
		case 4:
			ids, err := DecodeChunkFree(payload)
			if err != nil {
				return
			}
			enc := EncodeChunkFree(ids)
			ids2, err := DecodeChunkFree(enc)
			if err != nil {
				t.Fatalf("re-decode rejected own encoding: %v", err)
			}
			if !bytes.Equal(enc, EncodeChunkFree(ids2)) {
				t.Fatalf("chunk-free encoding not canonical")
			}
		case 5:
			r, err := DecodeResultV2(&DecTab{}, payload)
			if err != nil {
				return
			}
			enc := EncodeResultV2(NewEncTab(), r)
			r2, err := DecodeResultV2(&DecTab{}, enc)
			if err != nil {
				t.Fatalf("re-decode rejected own encoding: %v", err)
			}
			if !bytes.Equal(enc, EncodeResultV2(NewEncTab(), r2)) {
				t.Fatalf("result v2 encoding not canonical")
			}
		}
	})
}
