package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"syscall"

	"spampsm/internal/faults"
	"spampsm/internal/geom"
	"spampsm/internal/ops5"
	"spampsm/internal/spam"
	"spampsm/internal/tlp"
	"spampsm/internal/wm"
)

// WorkerEnv is the environment variable that flips a binary into
// cluster-worker mode: "network|address" of the coordinator's
// listener. The coordinator sets it on the processes it spawns; every
// cmd main (and the test binaries) call MaybeWorker first, so the
// same executable serves as both coordinator and worker.
const WorkerEnv = "SPAMPSM_CLUSTER_WORKER"

// MaybeWorker turns the current process into a cluster worker when
// WorkerEnv is set: it connects back to the coordinator, serves tasks
// until the connection shuts down, and exits the process. A normal
// invocation (variable unset) returns immediately.
func MaybeWorker() {
	spec := os.Getenv(WorkerEnv)
	if spec == "" {
		return
	}
	network, addr, ok := strings.Cut(spec, "|")
	if !ok {
		fmt.Fprintf(os.Stderr, "cluster worker: malformed %s=%q\n", WorkerEnv, spec)
		os.Exit(1)
	}
	c, err := net.Dial(network, addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cluster worker: dial: %v\n", err)
		os.Exit(1)
	}
	if err := ServeWorker(c); err != nil {
		fmt.Fprintf(os.Stderr, "cluster worker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// worker is one connection's serving state.
type worker struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	init     InitMsg
	procPlan *faults.Plan

	// chunks is the resident content-addressed seed table (wire v2):
	// chunk frames install entries, chunk-free frames drop them, and
	// chunk-ref task frames resolve against it at decode time. Only the
	// read loop touches it, so it needs no lock — and because refs
	// resolve into the TaskMsg before the task is handed to an
	// executor, a later eviction cannot break an earlier task.
	chunks map[uint64]ops5.Seed

	// dec/enc are the per-direction v2 intern tables: dec mirrors the
	// coordinator's sender state (read loop only), enc is this worker's
	// result-stream state (guarded by writeMu, like the stream itself).
	dec *DecTab
	enc *EncTab

	datasets map[string]*spam.Dataset
	// pools caches one tlp.Pool per distinct RunConfig. Pools carry the
	// retry/quarantine machinery and the shared memory gate, so tasks
	// of one run share a gate exactly as they would in-process.
	pools map[RunConfig]*tlp.Pool

	writeMu sync.Mutex
}

// ServeWorker runs the worker side of one coordinator connection
// until the coordinator sends Shutdown or the connection drops.
// Exported for the in-process tests; production workers enter through
// MaybeWorker.
func ServeWorker(c net.Conn) error {
	w := &worker{
		conn:     c,
		br:       bufio.NewReaderSize(c, 1<<16),
		bw:       bufio.NewWriterSize(c, 1<<16),
		chunks:   map[uint64]ops5.Seed{},
		datasets: map[string]*spam.Dataset{},
		pools:    map[RunConfig]*tlp.Pool{},
	}
	defer c.Close()

	typ, payload, err := readFrame(w.br)
	if err != nil {
		return fmt.Errorf("handshake read: %w", err)
	}
	if typ != frameInit {
		return fmt.Errorf("handshake: got frame type %d, want init", typ)
	}
	if err := decodeJSON(payload, &w.init); err != nil {
		return fmt.Errorf("handshake: %w", err)
	}
	if w.init.Magic != Magic || w.init.Version < MinVersion || w.init.Version > Version {
		return fmt.Errorf("handshake: protocol %q v%d, want %q v%d..v%d",
			w.init.Magic, w.init.Version, Magic, MinVersion, Version)
	}
	if w.init.LocalWorkers < 1 {
		w.init.LocalWorkers = 1
	}
	if w.init.Version >= 2 {
		w.dec = &DecTab{}
		w.enc = NewEncTab()
	}
	// Replay the coordinator's observational-equivalence toggles so
	// every engine built here walks the same code path as its
	// single-process twin.
	spam.UseNaiveMatch(w.init.Toggles.NaiveMatch)
	spam.UseFreshCompile(w.init.Toggles.FreshCompile)
	spam.UseUnbatchedSeed(w.init.Toggles.UnbatchedSeed)
	spam.UseUncachedGeo(w.init.Toggles.UncachedGeo)
	geom.UseExactOnly(w.init.Toggles.ExactGeom)
	if w.init.ProcFaults != (faults.Config{}) {
		w.procPlan = faults.New(w.init.ProcFaults)
	}

	// LocalWorkers executors drain the task channel; the reader
	// goroutine below is the only frame reader, executors the only
	// (mutex-serialized) frame writers.
	tasks := make(chan *TaskMsg, w.init.LocalWorkers)
	var wg sync.WaitGroup
	for i := 0; i < w.init.LocalWorkers; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			for m := range tasks {
				w.runTask(idx, m)
			}
		}(i)
	}

	var loopErr error
loop:
	for {
		typ, payload, err := readFrame(w.br)
		if err != nil {
			loopErr = fmt.Errorf("read: %w", err)
			break
		}
		switch typ {
		case frameDataset:
			var spec DatasetSpec
			if err := decodeJSON(payload, &spec); err != nil {
				loopErr = err
			} else {
				loopErr = w.addDataset(spec)
			}
		case frameTask:
			m, err := DecodeTask(payload)
			if err != nil {
				loopErr = err
				break loop
			}
			w.admit(m)
			tasks <- m
		case frameTaskV2:
			if w.init.Version < 2 {
				loopErr = fmt.Errorf("v2 task frame on a v%d connection", w.init.Version)
				break loop
			}
			m, _, err := DecodeTaskV2(w.dec, payload, func(id uint64) (ops5.Seed, bool) {
				s, ok := w.chunks[id]
				return s, ok
			})
			if err != nil {
				loopErr = err
				break loop
			}
			w.admit(m)
			tasks <- m
		case frameChunk:
			if w.init.Version < 2 {
				loopErr = fmt.Errorf("chunk frame on a v%d connection", w.init.Version)
				break loop
			}
			id, s, err := DecodeChunk(w.dec, payload)
			if err != nil {
				loopErr = err
				break loop
			}
			w.chunks[id] = s
		case frameChunkFree:
			if w.init.Version < 2 {
				loopErr = fmt.Errorf("chunk-free frame on a v%d connection", w.init.Version)
				break loop
			}
			ids, err := DecodeChunkFree(payload)
			if err != nil {
				loopErr = err
				break loop
			}
			for _, id := range ids {
				delete(w.chunks, id)
			}
		case frameShutdown:
			break loop
		default:
			loopErr = fmt.Errorf("unexpected frame type %d", typ)
		}
		if loopErr != nil {
			break
		}
	}
	close(tasks)
	wg.Wait()
	if loopErr != nil && !isClosedConn(loopErr) {
		return loopErr
	}
	return nil
}

// admit applies the process-level chaos draw to a freshly-decoded
// task. A Crash draw for this (task, attempt) kills the worker process
// outright — no goodbye frame, the coordinator sees only the dropped
// connection. Deterministic in (task ID, attempt), and because
// transient faults strike only the first attempt, the task's
// redelivery (startAttempt 2) survives. Spawned continuation tasks go
// through the same draw, so the chaos tests exercise mid-run SIGKILL
// requeue of spawned tasks too.
func (w *worker) admit(m *TaskMsg) {
	if w.procPlan != nil && w.procPlan.TaskFault(m.ID, m.StartAttempt).Kind == faults.Crash {
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
	}
}

func isClosedConn(err error) bool {
	s := err.Error()
	return strings.Contains(s, "EOF") || strings.Contains(s, "use of closed network connection") ||
		strings.Contains(s, "connection reset")
}

func decodeJSON(payload []byte, v interface{}) error {
	return json.Unmarshal(payload, v)
}

// addDataset regenerates a dataset from its shipped parameters.
// Generation is deterministic, so the result is byte-identical to the
// coordinator's copy.
func (w *worker) addDataset(spec DatasetSpec) error {
	if _, ok := w.datasets[spec.Name]; ok {
		return nil
	}
	var (
		d   *spam.Dataset
		err error
	)
	switch spec.Domain {
	case "airport":
		d, err = spam.NewDataset(spec.Airport)
	case "suburban":
		d, err = spam.NewSuburbanDataset(spec.Suburban)
	default:
		return fmt.Errorf("cluster: dataset %q: unknown domain %q", spec.Name, spec.Domain)
	}
	if err != nil {
		return fmt.Errorf("cluster: dataset %q: %w", spec.Name, err)
	}
	w.datasets[spec.Name] = d
	return nil
}

// poolFor returns (building if needed) the local pool matching a
// run's configuration.
func (w *worker) poolFor(cfg RunConfig) *tlp.Pool {
	if p, ok := w.pools[cfg]; ok {
		return p
	}
	p := &tlp.Pool{
		Workers:      w.init.LocalWorkers,
		MaxFirings:   cfg.MaxFirings,
		FiringBudget: cfg.FiringBudget,
		MaxRetries:   cfg.MaxRetries,
		TaskTimeout:  cfg.TaskTimeout,
		RetryBackoff: cfg.RetryBackoff,
		MemBudget:    w.init.MemBudget,
	}
	if cfg.Faults != (faults.Config{}) {
		p.Faults = faults.New(cfg.Faults)
	}
	w.pools[cfg] = p
	return p
}

// runTask executes one shipped task on executor idx and writes its
// result frame. On a v2 connection the encoding happens under writeMu
// too: the result codec interns against the connection's shared table,
// so encode order must match stream order.
func (w *worker) runTask(idx int, m *TaskMsg) {
	res := w.execute(idx, m)
	w.writeMu.Lock()
	defer w.writeMu.Unlock()
	var payload []byte
	if w.enc != nil {
		payload = EncodeResultV2(w.enc, res)
	} else {
		payload = EncodeResult(res)
	}
	if _, err := writeFrame(w.bw, frameResult, payload); err != nil {
		return
	}
	w.bw.Flush()
}

// execute runs the task through the local pool and flattens the
// Result for the wire.
func (w *worker) execute(idx int, m *TaskMsg) *ResultMsg {
	out := &ResultMsg{RunID: m.RunID, Seq: m.Seq, TaskID: m.ID, Worker: idx, Attempts: m.StartAttempt, Spawned: m.Spawned}
	d, ok := w.datasets[m.Spec.Dataset]
	if !ok {
		out.Err = &WireError{Msg: fmt.Sprintf("cluster: task %s: dataset %q not registered", m.ID, m.Spec.Dataset)}
		out.AttemptErrs = []WireError{*out.Err}
		out.Quarantined = true
		return out
	}
	builder, err := d.WireBuild(&m.Spec, m.Config.Capture)
	if err != nil {
		out.Err = &WireError{Msg: err.Error()}
		out.AttemptErrs = []WireError{*out.Err}
		out.Quarantined = true
		return out
	}
	task := &tlp.Task{
		ID: m.ID, Label: m.Label, Group: m.Group,
		EstSize: m.EstSize, MemEst: m.MemEst,
		Build:     func() (*ops5.Engine, error) { return builder(nil) },
		BuildWith: builder,
	}
	pool := w.poolFor(m.Config)
	if w.init.Prebuild {
		pool.Prebuild([]*tlp.Task{task}, 1)
	}
	r := pool.RunOne(context.Background(), task, idx, m.Seq, m.StartAttempt)

	out.Attempts = r.Attempts
	out.Stats = r.Stats
	if r.Log != nil {
		out.HasLog = true
		out.Mem = r.Log.Mem
	}
	out.Quarantined = r.Quarantined
	out.Cancelled = r.Cancelled
	if r.Err != nil {
		out.Err = &WireError{Msg: r.Err.Error(), Marks: tlp.ErrorMarks(r.Err)}
	}
	for _, ae := range r.AttemptErrs {
		out.AttemptErrs = append(out.AttemptErrs, WireError{Msg: ae.Error(), Marks: tlp.ErrorMarks(ae)})
	}
	if r.Err == nil && r.Engine != nil {
		out.Snapshot = snapshot(r.Engine, m.Spec.Extract)
	}
	return out
}

// snapshot extracts the requested classes' final WMEs — the only
// engine state result extraction reads — so the engine itself never
// crosses the wire and is dropped right here.
func snapshot(e *ops5.Engine, classes []string) []SnapClass {
	var out []SnapClass
	for _, class := range classes {
		wmes := e.WMEs(class)
		sc := SnapClass{Name: class}
		for _, x := range wmes {
			if sc.Attrs == nil {
				sc.Attrs = x.Class.Attrs
			}
			sc.Rows = append(sc.Rows, x.Vals)
		}
		out = append(out, sc)
	}
	return out
}

// rebuildSnapshot converts shipped rows back into a tlp.Snapshot of
// real WMEs, one shared ClassDef per class. TimeTags restart from 1
// per class — extraction reads values in slice order, never tags.
func rebuildSnapshot(classes []SnapClass) (tlp.Snapshot, error) {
	if len(classes) == 0 {
		return nil, nil
	}
	snap := tlp.Snapshot{}
	for _, sc := range classes {
		if len(sc.Rows) == 0 {
			snap[sc.Name] = nil
			continue
		}
		cd, err := wm.NewClassDef(sc.Name, sc.Attrs...)
		if err != nil {
			return nil, fmt.Errorf("cluster: snapshot class %q: %w", sc.Name, err)
		}
		wmes := make([]*wm.WME, 0, len(sc.Rows))
		for i, row := range sc.Rows {
			wmes = append(wmes, &wm.WME{Class: cd, Vals: row, TimeTag: i + 1})
		}
		snap[sc.Name] = wmes
	}
	return snap, nil
}
