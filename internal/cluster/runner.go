package cluster

import (
	"context"

	"spampsm/internal/scene"
	"spampsm/internal/spam"
	"spampsm/internal/tlp"
)

// AirportSpec wraps airport generator parameters as a shippable
// dataset spec.
func AirportSpec(p scene.Params) DatasetSpec {
	return DatasetSpec{Name: p.Name, Domain: "airport", Airport: p}
}

// SuburbanSpec wraps suburban generator parameters as a shippable
// dataset spec.
func SuburbanSpec(p scene.SuburbanParams) DatasetSpec {
	return DatasetSpec{Name: p.Name, Domain: "suburban", Suburban: p}
}

// RunConfigFor lifts an interpretation's fault-tolerance and budget
// options into the per-run wire configuration, so a cluster-backed
// run replays exactly the knobs a private tlp.Pool would.
func RunConfigFor(opt spam.InterpretOptions) RunConfig {
	return RunConfig{
		FiringBudget: opt.FiringBudget,
		MaxRetries:   opt.MaxRetries,
		TaskTimeout:  opt.TaskTimeout,
		RetryBackoff: opt.RetryBackoff,
		Capture:      opt.Capture,
		Faults:       opt.Faults.Config(),
	}
}

// Runner adapts a Coordinator to spam.InterpretOptions.Runner: every
// phase's task queue ships across the worker processes instead of a
// private in-process pool.
type Runner struct {
	C      *Coordinator
	Policy tlp.QueuePolicy
	Cfg    RunConfig
}

// NewRunner builds the phase runner for an interpretation's options.
func NewRunner(co *Coordinator, opt spam.InterpretOptions) *Runner {
	return &Runner{C: co, Policy: opt.Sched, Cfg: RunConfigFor(opt)}
}

// RunTasks implements spam.Runner.
func (r *Runner) RunTasks(ctx context.Context, tasks []*tlp.Task) ([]*tlp.Result, error) {
	return r.C.RunTasks(ctx, r.Policy, r.Cfg, tasks)
}

// RunPool runs a queue under a per-request tlp.Pool configuration —
// the adapter behind the serving layer's cluster backend, which
// carries request knobs in a pool config rather than
// InterpretOptions.
func (co *Coordinator) RunPool(ctx context.Context, cfg *tlp.Pool, tasks []*tlp.Task) ([]*tlp.Result, error) {
	rc := RunConfig{
		MaxFirings:   cfg.MaxFirings,
		FiringBudget: cfg.FiringBudget,
		MaxRetries:   cfg.MaxRetries,
		TaskTimeout:  cfg.TaskTimeout,
		RetryBackoff: cfg.RetryBackoff,
		Faults:       cfg.Faults.Config(),
	}
	return co.RunTasks(ctx, cfg.Policy, rc, tasks)
}
