package cluster

import (
	"bufio"
	"container/list"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"spampsm/internal/faults"
	"spampsm/internal/ops5"
	"spampsm/internal/tlp"
)

// Config configures a Coordinator.
type Config struct {
	// Workers is the number of worker processes to spawn (default 2).
	Workers int
	// LocalWorkers is each worker process's tlp.Pool size (default 1).
	LocalWorkers int
	// MemBudget is each worker pool's modeled memory budget (simulated
	// bytes; 0 = unbounded), the cluster analogue of -mem-budget.
	MemBudget float64
	// Prebuild overlaps each shipped task's engine construction with
	// execution on the worker, the cluster analogue of -prebuild.
	Prebuild bool
	// Toggles replays the coordinator process's observational-
	// equivalence switches on every worker.
	Toggles Toggles
	// ProcFaults seeds process-level chaos: a Crash draw for a shipped
	// (task, attempt) SIGKILLs the receiving worker process.
	ProcFaults faults.Config
	// Network/Addr select the transport: "unix" (default, socket in a
	// private temp dir) or "tcp" with an explicit listen address —
	// multi-host is one flag away (see docs/CLUSTER.md).
	Network string
	Addr    string
	// MaxRespawns bounds worker-process respawns after connection loss
	// (default 1, the bounded-restart discipline of the pool's retry
	// budget lifted to processes). Negative disables respawn.
	MaxRespawns int
	// ShipWindow is the per-worker in-flight task cap (default
	// 2×LocalWorkers): enough to overlap shipping with execution,
	// small enough to bound what a worker death requeues.
	ShipWindow int
	// WireVersion selects the protocol spoken to workers (default the
	// newest Version). 1 disables content-addressed chunk shipping and
	// worker-side continuations — the compatibility mode behind
	// spamrun's -cluster-wire-v1.
	WireVersion int
	// ChunkBudget bounds each worker's resident-chunk table in encoded
	// bytes (default 32 MiB); the LRU tail is evicted past it. Negative
	// disables eviction.
	ChunkBudget int64
	// ConnectTimeout bounds how long Start waits for the spawned
	// workers to connect back (default 30s).
	ConnectTimeout time.Duration
	// Exe is the worker executable (default: this binary, which flips
	// into worker mode through WorkerEnv — see MaybeWorker).
	Exe string
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 2
	}
	if c.LocalWorkers < 1 {
		c.LocalWorkers = 1
	}
	if c.Network == "" {
		c.Network = "unix"
	}
	if c.MaxRespawns == 0 {
		c.MaxRespawns = 1
	}
	if c.ShipWindow < 1 {
		c.ShipWindow = 2 * c.LocalWorkers
	}
	if c.WireVersion == 0 {
		c.WireVersion = Version
	}
	if c.ChunkBudget == 0 {
		c.ChunkBudget = 32 << 20
	}
	if c.ConnectTimeout <= 0 {
		c.ConnectTimeout = 30 * time.Second
	}
	return c
}

// Stats is the coordinator's cumulative accounting.
type Stats struct {
	Workers        int   // configured worker processes
	WireVersion    int   // protocol version spoken to workers
	TasksShipped   int   // task frames sent (including re-ships)
	TasksCompleted int   // results merged (including synthesized)
	ShippedBytes   int64 // task + chunk + result frame bytes on the wire
	ResultBytes    int64 // result-frame share of ShippedBytes
	// V1TaskBytes is the counterfactual: what the task frames would
	// have cost under wire v1 (every seed inline, no chunk reuse).
	// Zero on v1 runs — there ShippedBytes already is the v1 cost.
	V1TaskBytes     int64
	ChunksShipped   int   // chunk frames sent
	ChunkBytes      int64 // chunk-frame share of ShippedBytes
	ChunkHits       int64 // seed refs resolved against resident chunks
	ChunkSavedBytes int64 // encoded seed bytes the hits avoided re-shipping
	Evictions       int   // chunks dropped under ChunkBudget
	// ContinuationTasks counts tasks entering RunTasks with the
	// Continues mark; Continuations counts how many of them were pushed
	// straight to the chunk-resident worker (the rest fell back to the
	// shard queue — v1 runs, or no live v2 worker at push time).
	ContinuationTasks int
	Continuations     int
	SpawnedRequeued   int // spawned continuations requeued after a worker loss
	Steals            int // tasks claimed from another shard's deque
	Requeued          int // in-flight tasks recovered from dead workers
	WorkerDeaths      int // connections lost mid-run
	Respawns          int // replacement processes spawned
	// PerWorker breaks shipping down by worker slot. Stragglers that
	// outlive a respawn share slot 0's row, like its shard.
	PerWorker []WorkerStats
}

// WorkerStats is one worker slot's share of the accounting.
type WorkerStats struct {
	Slot           int
	Tasks          int   // results merged from this slot
	ShippedBytes   int64 // task + chunk + result bytes through this slot
	Steals         int
	Continuations  int
	ChunkHits      int64
	ResidentChunks int   // resident-chunk table size after the last ship
	ResidentBytes  int64 // its encoded-byte footprint
	Evictions      int
}

// task states within a run.
const (
	statePending = iota
	stateInflight
	stateDone
)

// run is one RunTasks invocation in flight: the ordered queue, its
// shard deques, and the merge state. Several runs can be active at
// once (the serving path); workers drain them in creation order.
type run struct {
	id     uint64
	cfg    RunConfig
	tasks  []*tlp.Task
	specs  []*tlp.WireSpec
	state  []uint8
	// startAttempt is the global attempt number the task's next
	// delivery resumes from; it advances when a worker dies holding
	// the task, charging the loss against the task's retry budget.
	startAttempt []int
	// priorErrs accumulates the process-loss errors charged to a task
	// before its final result, prepended to the result's AttemptErrs
	// so RunReport sees the full attempt history.
	priorErrs [][]error
	shipBytes []int
	results   []*tlp.Result
	remaining int
	shards    [][]int // per-slot pending deques of queue indices
	overflow  []int   // requeued work, served before shard work
	failed    error
	cancelled bool
	// Wire-v2 chunk plan, nil on v1 runs: per task, the shared seeds
	// grouped into content-addressed chunks (chunks) and the inline
	// bytes the task ships regardless of destination (inline). Sizes are
	// the canonical stateless encoding — the cost model's currency —
	// independent of any connection's intern state.
	chunks [][]chunkRef
	inline []int
	// spawned marks tasks pushed as worker-side continuations; reset
	// when a worker loss requeues them through the ordinary overflow
	// path.
	spawned []bool
}

// chunkRef is one shared seed of one task, resolved to its
// content-addressed chunk: the seed's index in the task's WireSpec,
// the chunk digest, and its encoded size.
type chunkRef struct {
	seed   int
	digest string
	size   int
}

// chunkTable is the coordinator's model of one worker's resident
// chunks. Guarded by co.mu.
type chunkTable struct {
	next    uint64 // next chunk id to assign
	tick    uint64 // ship generation, pins this ship's chunks against eviction
	entries map[string]*chunkEntry
	lru     *list.List // front = most recently shipped/referenced
	bytes   int64      // resident encoded bytes
}

type chunkEntry struct {
	id     uint64
	digest string
	size   int64
	tick   uint64
	elem   *list.Element
}

func newChunkTable() *chunkTable {
	return &chunkTable{entries: map[string]*chunkEntry{}, lru: list.New()}
}

type flightKey struct {
	runID uint64
	seq   int
}

// wconn is one live worker connection.
type wconn struct {
	c        net.Conn
	bw       *bufio.Writer
	writeMu  sync.Mutex
	slot     int
	dead     bool
	inflight map[flightKey]*run
	// ver is the wire version spoken on this connection; chunks is the
	// resident-chunk model (v2 only) and ws the worker's slot row in
	// the coordinator's per-worker stats. All guarded by co.mu except
	// ver, which is immutable after register, and enc — the
	// coordinator→worker intern table, guarded by writeMu like the
	// stream it mirrors.
	ver    int
	chunks *chunkTable
	enc    *EncTab
	ws     *WorkerStats
}

type proc struct {
	cmd  *exec.Cmd
	done chan struct{}
}

// Coordinator shards task queues across worker processes. Create with
// Start, submit with RunTasks (any number of concurrent runs), and
// release the processes with Close.
type Coordinator struct {
	cfg  Config
	addr string
	ln   net.Listener
	dir  string // private socket dir (unix transport)

	mu            sync.Mutex
	cond          *sync.Cond
	conns         []*wconn
	slots         []*wconn
	datasets      []DatasetSpec
	dsNames       map[string]bool
	runs          []*run
	runSeq        uint64
	respawnsLeft  int
	pendingSpawns int
	spawnFailed   error
	closed        bool
	stats         Stats
	perWorker     []WorkerStats

	procMu sync.Mutex
	procs  []*proc
}

// Start listens, spawns the worker processes, and waits for all of
// them to connect.
func Start(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if cfg.WireVersion < MinVersion || cfg.WireVersion > Version {
		return nil, fmt.Errorf("cluster: wire version %d outside supported range %d..%d",
			cfg.WireVersion, MinVersion, Version)
	}
	co := &Coordinator{
		cfg:          cfg,
		dsNames:      map[string]bool{},
		slots:        make([]*wconn, cfg.Workers),
		perWorker:    make([]WorkerStats, cfg.Workers),
		respawnsLeft: cfg.MaxRespawns,
		runSeq:       1,
	}
	if co.respawnsLeft < 0 {
		co.respawnsLeft = 0
	}
	co.cond = sync.NewCond(&co.mu)
	co.stats.Workers = cfg.Workers
	co.stats.WireVersion = cfg.WireVersion
	for i := range co.perWorker {
		co.perWorker[i].Slot = i
	}

	addr := cfg.Addr
	if cfg.Network == "unix" && addr == "" {
		dir, err := os.MkdirTemp("", "spamclu")
		if err != nil {
			return nil, fmt.Errorf("cluster: socket dir: %w", err)
		}
		co.dir = dir
		addr = filepath.Join(dir, "coord.sock")
	}
	ln, err := net.Listen(cfg.Network, addr)
	if err != nil {
		co.cleanupDir()
		return nil, fmt.Errorf("cluster: listen %s %s: %w", cfg.Network, addr, err)
	}
	co.ln = ln
	co.addr = ln.Addr().String()
	go co.acceptLoop()

	for i := 0; i < cfg.Workers; i++ {
		if err := co.spawn(); err != nil {
			co.Close()
			return nil, err
		}
	}
	if err := co.waitConnected(cfg.Workers, cfg.ConnectTimeout); err != nil {
		co.Close()
		return nil, err
	}
	return co, nil
}

func (co *Coordinator) cleanupDir() {
	if co.dir != "" {
		os.RemoveAll(co.dir)
	}
}

// Addr returns the coordinator's listen address (workers on other
// hosts dial it when the transport is tcp).
func (co *Coordinator) Addr() string { return co.addr }

// Stats returns a snapshot of the coordinator's accounting.
func (co *Coordinator) Stats() Stats {
	co.mu.Lock()
	defer co.mu.Unlock()
	s := co.stats
	s.PerWorker = append([]WorkerStats(nil), co.perWorker...)
	return s
}

// waitConnected blocks until n workers are live (or a spawn failed,
// or the deadline passes).
func (co *Coordinator) waitConnected(n int, timeout time.Duration) error {
	deadline := time.AfterFunc(timeout, func() {
		co.mu.Lock()
		if co.spawnFailed == nil && len(co.conns) < n {
			co.spawnFailed = fmt.Errorf("cluster: %d/%d workers connected before timeout", len(co.conns), n)
		}
		co.cond.Broadcast()
		co.mu.Unlock()
	})
	defer deadline.Stop()
	co.mu.Lock()
	defer co.mu.Unlock()
	for len(co.conns) < n && co.spawnFailed == nil && !co.closed {
		co.cond.Wait()
	}
	return co.spawnFailed
}

// spawn launches one worker process pointed back at the listener.
func (co *Coordinator) spawn() error {
	exe := co.cfg.Exe
	if exe == "" {
		var err error
		exe, err = os.Executable()
		if err != nil {
			return fmt.Errorf("cluster: worker executable: %w", err)
		}
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), WorkerEnv+"="+co.cfg.Network+"|"+co.addr)
	cmd.Stderr = os.Stderr
	co.mu.Lock()
	co.pendingSpawns++
	co.mu.Unlock()
	if err := cmd.Start(); err != nil {
		co.mu.Lock()
		co.pendingSpawns--
		co.spawnFailed = fmt.Errorf("cluster: spawn worker: %w", err)
		co.cond.Broadcast()
		co.mu.Unlock()
		return co.spawnFailed
	}
	p := &proc{cmd: cmd, done: make(chan struct{})}
	co.procMu.Lock()
	co.procs = append(co.procs, p)
	co.procMu.Unlock()
	go func() {
		cmd.Wait()
		close(p.done)
	}()
	return nil
}

func (co *Coordinator) acceptLoop() {
	for {
		c, err := co.ln.Accept()
		if err != nil {
			return
		}
		go co.register(c)
	}
}

// register handshakes a fresh worker connection: Init, dataset
// replay, slot assignment, then the reader and feeder goroutines.
func (co *Coordinator) register(c net.Conn) {
	w := &wconn{c: c, bw: bufio.NewWriterSize(c, 1<<16), inflight: map[flightKey]*run{}, ver: co.cfg.WireVersion}
	if w.ver >= 2 {
		w.chunks = newChunkTable()
		w.enc = NewEncTab()
	}
	// Holding writeMu across the handshake makes dataset ordering
	// airtight: once the conn is listed, a concurrent RegisterDataset
	// blocks here until Init and the replayed specs are on the wire.
	w.writeMu.Lock()
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		w.writeMu.Unlock()
		c.Close()
		return
	}
	slot := -1
	for i, s := range co.slots {
		if s == nil {
			slot = i
			break
		}
	}
	if slot < 0 {
		// More connections than slots (e.g. a straggler after respawn):
		// share slot 0's shard; stealing keeps it busy.
		slot = 0
	} else {
		co.slots[slot] = w
	}
	w.slot = slot
	w.ws = &co.perWorker[slot]
	co.conns = append(co.conns, w)
	if co.pendingSpawns > 0 {
		co.pendingSpawns--
	}
	init := InitMsg{
		Magic: Magic, Version: co.cfg.WireVersion,
		LocalWorkers: co.cfg.LocalWorkers,
		MemBudget:    co.cfg.MemBudget,
		Prebuild:     co.cfg.Prebuild,
		Toggles:      co.cfg.Toggles,
		ProcFaults:   co.cfg.ProcFaults,
	}
	specs := append([]DatasetSpec(nil), co.datasets...)
	co.cond.Broadcast()
	co.mu.Unlock()

	ok := true
	if _, err := writeJSONFrame(w.bw, frameInit, init); err != nil {
		ok = false
	}
	for _, spec := range specs {
		if !ok {
			break
		}
		if _, err := writeJSONFrame(w.bw, frameDataset, spec); err != nil {
			ok = false
		}
	}
	if ok && w.bw.Flush() != nil {
		ok = false
	}
	w.writeMu.Unlock()
	if !ok {
		c.Close()
		co.workerLost(w)
		return
	}
	go co.reader(w)
	go co.feeder(w)
}

// RegisterDataset ships a dataset's generator parameters to every
// worker (and replays them to workers that join later). Idempotent by
// name.
func (co *Coordinator) RegisterDataset(spec DatasetSpec) error {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return errors.New("cluster: coordinator closed")
	}
	if co.dsNames[spec.Name] {
		co.mu.Unlock()
		return nil
	}
	co.dsNames[spec.Name] = true
	co.datasets = append(co.datasets, spec)
	conns := append([]*wconn(nil), co.conns...)
	co.mu.Unlock()
	for _, w := range conns {
		w.writeMu.Lock()
		_, err := writeJSONFrame(w.bw, frameDataset, spec)
		if err == nil {
			err = w.bw.Flush()
		}
		w.writeMu.Unlock()
		if err != nil {
			// The reader will notice the dead connection; dataset replay
			// covers any respawn.
			w.c.Close()
		}
	}
	return nil
}

// RunTasks ships the ordered queue across the workers and returns
// merged results in queue order — the cluster equivalent of
// tlp.Pool.RunContext, with identical result, report and
// cancellation semantics. Concurrent runs multiplex onto the same
// worker set.
func (co *Coordinator) RunTasks(ctx context.Context, policy tlp.QueuePolicy, cfg RunConfig, tasks []*tlp.Task) ([]*tlp.Result, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("tlp: empty task queue")
	}
	ordered := tlp.OrderTasks(policy, tasks)
	specs := make([]*tlp.WireSpec, len(ordered))
	for i, t := range ordered {
		if t.Wire == nil {
			return nil, fmt.Errorf("cluster: task %s has no wire spec (not cluster-executable)", t.ID)
		}
		spec, err := t.Wire()
		if err != nil {
			return nil, fmt.Errorf("cluster: task %s: %w", t.ID, err)
		}
		specs[i] = spec
	}

	// Wire-v2 chunk plan: group each task's shared (digest-carrying)
	// seeds into content-addressed chunks and size each distinct chunk
	// once in the canonical stateless encoding (the actual chunk frames
	// encode at ship time against each connection's intern table). Pure
	// computation — no locks, no connection state.
	var (
		chunkPlans  [][]chunkRef
		inlineBytes []int
	)
	if co.cfg.WireVersion >= 2 {
		sizes := map[string]int{}
		chunkPlans = make([][]chunkRef, len(specs))
		inlineBytes = make([]int, len(specs))
		var scratch []byte
		for i, spec := range specs {
			shared := spec.SharedSeedIndexes()
			si := 0
			for j, s := range spec.Seeds {
				if si < len(shared) && shared[si] == j {
					si++
					size, ok := sizes[s.Digest]
					if !ok {
						size = len(appendSeed(scratch[:0], s))
						sizes[s.Digest] = size
					}
					chunkPlans[i] = append(chunkPlans[i], chunkRef{seed: j, digest: s.Digest, size: size})
					continue
				}
				scratch = appendSeed(scratch[:0], s)
				inlineBytes[i] += len(scratch)
			}
		}
	}

	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return nil, errors.New("cluster: coordinator closed")
	}
	if len(co.conns) == 0 && co.pendingSpawns == 0 && co.respawnsLeft == 0 {
		// The recovery path fails runs that were active when the last
		// worker died; a run submitted after that would wait forever.
		co.mu.Unlock()
		return nil, errors.New("cluster: no live worker processes")
	}
	n := len(ordered)
	rn := &run{
		id: co.runSeq, cfg: cfg, tasks: ordered, specs: specs,
		state:        make([]uint8, n),
		startAttempt: make([]int, n),
		priorErrs:    make([][]error, n),
		shipBytes:    make([]int, n),
		results:      make([]*tlp.Result, n),
		remaining:    n,
		shards:       make([][]int, len(co.slots)),
		chunks:       chunkPlans,
		inline:       inlineBytes,
		spawned:      make([]bool, n),
	}
	co.runSeq++
	for i := range rn.startAttempt {
		rn.startAttempt[i] = 1
	}
	// Worker-side phase continuation: a Continues-marked task (LCC
	// re-entry over fragments an earlier phase already shipped) skips
	// the shard queue entirely — it is pushed straight to the worker
	// holding the most of its chunks, saving both the scheduling
	// round-trip and the re-ship of its working set. Assignment happens
	// here under mu (marked in-flight before the striping below can
	// hand the index out); the frames go out after mu is released.
	type push struct {
		w   *wconn
		idx int
	}
	var pushes []push
	pushed := make([]bool, n)
	for i, t := range rn.tasks {
		if !t.Continues {
			continue
		}
		co.stats.ContinuationTasks++
		w := co.continuationTarget(rn, i)
		if w == nil {
			continue // no live v2 worker: fall back to the shard queue
		}
		rn.state[i] = stateInflight
		rn.spawned[i] = true
		w.inflight[flightKey{rn.id, i}] = rn
		co.stats.Continuations++
		w.ws.Continuations++
		pushed[i] = true
		pushes = append(pushes, push{w, i})
	}
	// Contiguous striping: shard s owns queue indices [s·n/S, (s+1)·n/S),
	// so FIFO order within a shard tracks global queue order and a
	// drained worker steals from the back of the fullest shard.
	s := len(co.slots)
	for sh := 0; sh < s; sh++ {
		lo, hi := sh*n/s, (sh+1)*n/s
		for i := lo; i < hi; i++ {
			if !pushed[i] {
				rn.shards[sh] = append(rn.shards[sh], i)
			}
		}
	}
	co.runs = append(co.runs, rn)
	co.cond.Broadcast()
	co.mu.Unlock()

	for _, p := range pushes {
		if !co.ship(p.w, rn, p.idx) {
			// Write failure: the closed connection's workerLost path
			// requeues the task through overflow, exactly once.
			p.w.c.Close()
		}
	}

	stop := context.AfterFunc(ctx, func() {
		co.mu.Lock()
		if rn.remaining > 0 {
			rn.cancelled = true
			co.cond.Broadcast()
		}
		co.mu.Unlock()
	})
	defer stop()

	co.mu.Lock()
	for rn.remaining > 0 && rn.failed == nil && !rn.cancelled {
		co.cond.Wait()
	}
	if rn.cancelled && rn.remaining > 0 {
		// Mirror tlp's cancellation contract: every unfinished task gets
		// a Result wrapping ErrCancelled (same message bytes as
		// tlp.cancelledResult); shipped tasks keep running remotely but
		// their late frames are dropped.
		cause := ctx.Err()
		if cause == nil {
			cause = context.Canceled
		}
		for i, t := range rn.tasks {
			if rn.state[i] == stateDone {
				continue
			}
			// Drop pending deque entries lazily: feeders skip runs that
			// are cancelled.
			err := fmt.Errorf("tlp: task %s: %w: %w", t.ID, tlp.ErrCancelled, cause)
			rn.results[i] = &tlp.Result{
				TaskID: t.ID, SeqInQ: i, Err: err, Cancelled: true,
				Attempts:    rn.startAttempt[i] - 1,
				AttemptErrs: append(append([]error(nil), rn.priorErrs[i]...), err),
				ShipBytes:   rn.shipBytes[i],
			}
			rn.state[i] = stateDone
			rn.remaining--
			co.stats.TasksCompleted++
		}
	}
	co.removeRun(rn)
	failed := rn.failed
	results := rn.results
	co.mu.Unlock()
	if failed != nil {
		return nil, failed
	}
	return results, nil
}

// removeRun drops a finished run from the active list. Caller holds mu.
func (co *Coordinator) removeRun(rn *run) {
	for i, r := range co.runs {
		if r == rn {
			co.runs = append(co.runs[:i], co.runs[i+1:]...)
			return
		}
	}
}

// continuationTarget picks the live v2 connection holding the most of
// task idx's chunks (by resident encoded bytes), ties broken by lowest
// slot so two identical runs pick identically. Caller holds mu.
func (co *Coordinator) continuationTarget(rn *run, idx int) *wconn {
	var best *wconn
	var bestBytes int64 = -1
	for _, w := range co.conns {
		if w.dead || w.ver < 2 || w.chunks == nil {
			continue
		}
		var resident int64
		for _, cr := range rn.chunks[idx] {
			if e, ok := w.chunks.entries[cr.digest]; ok {
				resident += e.size
			}
		}
		if resident > bestBytes || (resident == bestBytes && best != nil && w.slot < best.slot) {
			best, bestBytes = w, resident
		}
	}
	return best
}

// stealCost is the bytes a steal of task idx would newly ship to the
// thief: its inline seeds plus every chunk not already resident there.
// v1 runs and connections have no chunk model and cost zero — the
// steal heuristic then degrades to the fullest-shard rule. Caller
// holds mu.
func (co *Coordinator) stealCost(w *wconn, rn *run, idx int) int64 {
	if rn.chunks == nil || w.chunks == nil {
		return 0
	}
	cost := int64(rn.inline[idx])
	for _, cr := range rn.chunks[idx] {
		if _, ok := w.chunks.entries[cr.digest]; !ok {
			cost += int64(cr.size)
		}
	}
	return cost
}

// pick claims the next queue index for a worker: requeued overflow
// first, then the worker's own shard in order, then a steal. Stealing
// is locality-aware: each candidate shard offers the back of its
// deque, and the thief takes the one that would newly ship the fewest
// bytes (ties go to the fullest shard, then the first — which is
// exactly the old blind rule when every cost is zero, i.e. on v1
// runs). Caller holds mu.
func (co *Coordinator) pick(w *wconn) (*run, int, bool) {
	for _, rn := range co.runs {
		if rn.failed != nil || rn.cancelled {
			continue
		}
		if len(rn.overflow) > 0 {
			idx := rn.overflow[0]
			rn.overflow = rn.overflow[1:]
			return rn, idx, true
		}
		if dq := rn.shards[w.slot]; len(dq) > 0 {
			rn.shards[w.slot] = dq[1:]
			return rn, dq[0], true
		}
		best, bl := -1, 0
		var bestCost int64
		for s, dq := range rn.shards {
			if len(dq) == 0 {
				continue
			}
			cost := co.stealCost(w, rn, dq[len(dq)-1])
			if best < 0 || cost < bestCost || (cost == bestCost && len(dq) > bl) {
				best, bl, bestCost = s, len(dq), cost
			}
		}
		if best >= 0 {
			dq := rn.shards[best]
			idx := dq[len(dq)-1]
			rn.shards[best] = dq[:len(dq)-1]
			co.stats.Steals++
			w.ws.Steals++
			return rn, idx, true
		}
	}
	return nil, 0, false
}

// claim blocks until the worker has window room and work exists
// (ok=false when the worker died or the coordinator closed). The
// claimed task is marked in-flight; the caller must ship it.
func (co *Coordinator) claim(w *wconn) (*run, int, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	for {
		if w.dead || co.closed {
			return nil, 0, false
		}
		if len(w.inflight) < co.cfg.ShipWindow {
			if rn, idx, ok := co.pick(w); ok {
				rn.state[idx] = stateInflight
				w.inflight[flightKey{rn.id, idx}] = rn
				return rn, idx, true
			}
		}
		co.cond.Wait()
	}
}

// ship encodes and writes one claimed task to a connection, preceded
// by the chunk frames it needs (v2). It returns false on a write
// error — the caller closes the connection and workerLost requeues
// everything in flight there, including this task.
//
// Lock order is writeMu→mu, the same as register: holding writeMu
// across the chunk-table update and the frame writes makes the
// chunk-before-reference ordering airtight when the feeder and a
// continuation push race for one connection.
func (co *Coordinator) ship(w *wconn, rn *run, idx int) bool {
	w.writeMu.Lock()
	defer w.writeMu.Unlock()

	type newChunk struct {
		id   uint64
		seed ops5.Seed
	}
	var (
		newChunks []newChunk
		frees     []uint64
		refs      []int64
	)
	co.mu.Lock()
	if w.dead || co.closed {
		// The connection died between claim and ship; workerLost owns
		// the requeue of everything in flight here.
		co.mu.Unlock()
		return !w.dead
	}
	if rn.state[idx] != stateInflight || w.inflight[flightKey{rn.id, idx}] != rn {
		// The run was cancelled between claim and ship (its result is
		// already synthesized): nothing to send, free the window slot.
		delete(w.inflight, flightKey{rn.id, idx})
		co.cond.Broadcast()
		co.mu.Unlock()
		return true
	}
	t := rn.tasks[idx]
	m := &TaskMsg{
		RunID: rn.id, Seq: idx, StartAttempt: rn.startAttempt[idx],
		ID: t.ID, Label: t.Label, Group: t.Group,
		EstSize: t.EstSize, MemEst: t.MemEst,
		Config: rn.cfg, Spec: *rn.specs[idx],
		Spawned: rn.spawned[idx],
	}
	if w.ver >= 2 && rn.chunks != nil {
		ct := w.chunks
		ct.tick++
		refs = make([]int64, len(m.Spec.Seeds))
		for i := range refs {
			refs[i] = -1
		}
		for _, cr := range rn.chunks[idx] {
			e, ok := ct.entries[cr.digest]
			if ok {
				e.tick = ct.tick
				ct.lru.MoveToFront(e.elem)
				co.stats.ChunkHits++
				co.stats.ChunkSavedBytes += int64(cr.size)
				w.ws.ChunkHits++
			} else {
				e = &chunkEntry{id: ct.next, digest: cr.digest, size: int64(cr.size), tick: ct.tick}
				ct.next++
				e.elem = ct.lru.PushFront(e)
				ct.entries[cr.digest] = e
				ct.bytes += e.size
				newChunks = append(newChunks, newChunk{id: e.id, seed: m.Spec.Seeds[cr.seed]})
			}
			refs[cr.seed] = int64(e.id)
		}
		// LRU eviction under the budget — but never a chunk this very
		// ship references (tick-pinned).
		if co.cfg.ChunkBudget > 0 {
			for ct.bytes > co.cfg.ChunkBudget {
				back := ct.lru.Back()
				if back == nil {
					break
				}
				e := back.Value.(*chunkEntry)
				if e.tick == ct.tick {
					break
				}
				ct.lru.Remove(back)
				delete(ct.entries, e.digest)
				ct.bytes -= e.size
				frees = append(frees, e.id)
				co.stats.Evictions++
				w.ws.Evictions++
			}
		}
		w.ws.ResidentChunks = len(ct.entries)
		w.ws.ResidentBytes = ct.bytes
	}
	co.mu.Unlock()

	// Encode and write outside mu — only writeMu is held across the
	// (possibly blocking) socket writes, so result delivery never
	// stalls behind a slow ship. The encoders intern against w.enc,
	// which writeMu guards along with the stream order it depends on.
	wired := 0
	var chunkBytes int64
	var err error
	if len(frees) > 0 {
		var n int
		n, err = writeFrame(w.bw, frameChunkFree, EncodeChunkFree(frees))
		wired += n
	}
	for _, nc := range newChunks {
		if err != nil {
			break
		}
		var n int
		n, err = writeFrame(w.bw, frameChunk, EncodeChunk(w.enc, nc.id, nc.seed))
		wired += n
		chunkBytes += int64(n)
	}
	var v1Bytes int64
	if err == nil {
		var n int
		if w.ver >= 2 {
			n, err = writeFrame(w.bw, frameTaskV2, EncodeTaskV2(w.enc, m, refs))
			v1Bytes = int64(frameLen(len(EncodeTask(m))))
		} else {
			n, err = writeFrame(w.bw, frameTask, EncodeTask(m))
		}
		wired += n
	}
	if err == nil {
		err = w.bw.Flush()
	}

	co.mu.Lock()
	if err == nil {
		rn.shipBytes[idx] += wired
		co.stats.TasksShipped++
		co.stats.ShippedBytes += int64(wired)
		co.stats.ChunksShipped += len(newChunks)
		co.stats.ChunkBytes += chunkBytes
		co.stats.V1TaskBytes += v1Bytes
		w.ws.ShippedBytes += int64(wired)
	}
	co.mu.Unlock()
	return err == nil
}

// feeder is a connection's writer loop: claim, then ship.
func (co *Coordinator) feeder(w *wconn) {
	for {
		rn, idx, ok := co.claim(w)
		if !ok {
			return
		}
		if !co.ship(w, rn, idx) {
			// Write failure: close the connection and let the reader's
			// workerLost path requeue everything in flight here —
			// including this task — exactly once.
			w.c.Close()
			return
		}
	}
}

// reader is a connection's read loop: merge result frames until the
// connection drops, then run the process-death recovery. It owns the
// worker→coordinator intern table (v2): one reader per connection,
// decoding in stream order.
func (co *Coordinator) reader(w *wconn) {
	br := bufio.NewReaderSize(w.c, 1<<16)
	dec := &DecTab{}
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			break
		}
		if typ != frameResult {
			break
		}
		var m *ResultMsg
		if w.ver >= 2 {
			m, err = DecodeResultV2(dec, payload)
		} else {
			m, err = DecodeResult(payload)
		}
		if err != nil {
			break
		}
		co.deliver(w, m, frameLen(len(payload)))
	}
	w.c.Close()
	co.workerLost(w)
}

// deliver merges one result frame. wireBytes is the result frame's
// size for ship-overhead accounting.
func (co *Coordinator) deliver(w *wconn, m *ResultMsg, wireBytes int) {
	snap, snapErr := rebuildSnapshot(m.Snapshot)
	co.mu.Lock()
	defer co.mu.Unlock()
	key := flightKey{m.RunID, m.Seq}
	rn, ok := w.inflight[key]
	if !ok {
		return // stale frame for a requeued or unknown task
	}
	delete(w.inflight, key)
	co.cond.Broadcast() // window freed
	if rn.state[m.Seq] != stateInflight {
		return // run cancelled meanwhile; result already synthesized
	}
	r := &tlp.Result{
		// v2 result frames carry no task ID; the run state does.
		TaskID: rn.tasks[m.Seq].ID, SeqInQ: m.Seq, Worker: m.Worker,
		Attempts: m.Attempts, Stats: m.Stats,
		Quarantined: m.Quarantined, Cancelled: m.Cancelled,
	}
	if m.HasLog {
		r.Log = &ops5.CostLog{Mem: m.Mem}
	}
	if m.Err != nil {
		r.Err = &tlp.RemoteError{Msg: m.Err.Msg, Marks: m.Err.Marks}
	}
	for _, ae := range m.AttemptErrs {
		r.AttemptErrs = append(r.AttemptErrs, &tlp.RemoteError{Msg: ae.Msg, Marks: ae.Marks})
	}
	if prior := rn.priorErrs[m.Seq]; len(prior) > 0 {
		r.AttemptErrs = append(append([]error(nil), prior...), r.AttemptErrs...)
	}
	if snapErr != nil {
		r.Err = &tlp.RemoteError{Msg: snapErr.Error()}
		r.AttemptErrs = append(r.AttemptErrs, r.Err)
	} else {
		r.Snapshot = snap
	}
	rn.shipBytes[m.Seq] += wireBytes
	r.ShipBytes = rn.shipBytes[m.Seq]
	rn.results[m.Seq] = r
	rn.state[m.Seq] = stateDone
	rn.remaining--
	co.stats.TasksCompleted++
	co.stats.ShippedBytes += int64(wireBytes)
	co.stats.ResultBytes += int64(wireBytes)
	w.ws.Tasks++
	w.ws.ShippedBytes += int64(wireBytes)
}

// workerLost runs the process-level recovery for a dropped
// connection: requeue its in-flight tasks with the loss charged
// against their retry budgets, quarantine the exhausted ones, and
// respawn a replacement within the bounded budget.
func (co *Coordinator) workerLost(w *wconn) {
	co.mu.Lock()
	if w.dead {
		co.mu.Unlock()
		return
	}
	w.dead = true
	for i, c := range co.conns {
		if c == w {
			co.conns = append(co.conns[:i], co.conns[i+1:]...)
			break
		}
	}
	if co.slots[w.slot] == w {
		co.slots[w.slot] = nil
	}
	if !co.closed {
		co.stats.WorkerDeaths++
	}

	// Deterministic requeue order: (runID, seq) ascending, so two
	// identical chaos runs rebuild identical overflow queues.
	keys := make([]flightKey, 0, len(w.inflight))
	for k := range w.inflight {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].runID != keys[j].runID {
			return keys[i].runID < keys[j].runID
		}
		return keys[i].seq < keys[j].seq
	})
	for _, k := range keys {
		rn := w.inflight[k]
		delete(w.inflight, k)
		idx := k.seq
		if rn.state[idx] != stateInflight {
			continue
		}
		t := rn.tasks[idx]
		// The loss is an attempt that crashed: same classification as
		// the pool's simulated worker crash, deterministic message (no
		// pids, no timestamps).
		crashErr := fmt.Errorf("tlp: task %s: %w (worker process lost)", t.ID, tlp.ErrWorkerCrash)
		rn.priorErrs[idx] = append(rn.priorErrs[idx], crashErr)
		rn.startAttempt[idx]++
		if rn.spawned[idx] {
			// A spawned continuation lost with its worker rejoins the
			// ordinary overflow path: its Spawned mark is cleared so the
			// redelivery is a plain queued task — the locality it was
			// pushed for died with the chunk table.
			rn.spawned[idx] = false
			co.stats.SpawnedRequeued++
		}
		maxAttempts := 1 + rn.cfg.MaxRetries
		if charged := rn.startAttempt[idx] - 1; charged >= maxAttempts {
			rn.results[idx] = &tlp.Result{
				TaskID: t.ID, SeqInQ: idx, Err: crashErr,
				Attempts:    charged,
				AttemptErrs: append([]error(nil), rn.priorErrs[idx]...),
				Quarantined: true,
				ShipBytes:   rn.shipBytes[idx],
			}
			rn.state[idx] = stateDone
			rn.remaining--
			co.stats.TasksCompleted++
		} else {
			rn.state[idx] = statePending
			rn.overflow = append(rn.overflow, idx)
			co.stats.Requeued++
		}
	}

	respawn := false
	if !co.closed && co.respawnsLeft > 0 {
		co.respawnsLeft--
		respawn = true
		co.stats.Respawns++
	} else if !co.closed && len(co.conns) == 0 && co.pendingSpawns == 0 {
		// No survivors and no replacements: active runs cannot finish.
		err := errors.New("cluster: all worker processes lost and respawn budget exhausted")
		for _, rn := range co.runs {
			if rn.remaining > 0 && rn.failed == nil {
				rn.failed = err
			}
		}
	}
	co.cond.Broadcast()
	co.mu.Unlock()
	if respawn {
		co.spawn()
	}
}

// Close shuts the cluster down: shutdown frames, closed connections
// and listener, and a bounded wait for the worker processes to exit
// (stragglers are killed).
func (co *Coordinator) Close() error {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return nil
	}
	co.closed = true
	conns := append([]*wconn(nil), co.conns...)
	co.cond.Broadcast()
	co.mu.Unlock()

	for _, w := range conns {
		w.writeMu.Lock()
		if _, err := writeFrame(w.bw, frameShutdown, nil); err == nil {
			w.bw.Flush()
		}
		w.writeMu.Unlock()
	}
	if co.ln != nil {
		co.ln.Close()
	}
	for _, w := range conns {
		w.c.Close()
	}

	co.procMu.Lock()
	procs := append([]*proc(nil), co.procs...)
	co.procMu.Unlock()
	deadline := time.After(3 * time.Second)
	for _, p := range procs {
		select {
		case <-p.done:
		case <-deadline:
			p.cmd.Process.Kill()
			<-p.done
		}
	}
	co.cleanupDir()
	return nil
}
