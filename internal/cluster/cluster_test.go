package cluster

import (
	"context"
	"fmt"
	"os"
	"strings"
	"testing"

	"spampsm/internal/faults"
	"spampsm/internal/scene"
	"spampsm/internal/spam"
	"spampsm/internal/tlp"
)

// TestMain flips the re-executed test binary into worker mode: the
// coordinator spawns os.Executable() — this binary — with WorkerEnv
// set, so MaybeWorker serves tasks and exits before any test runs.
func TestMain(m *testing.M) {
	MaybeWorker()
	os.Exit(m.Run())
}

// oracleScale keeps the differential runs fast while preserving every
// phase's task structure (the same subset-scale discipline the bench
// smoke suite uses).
const oracleScale = 0.4

func airportParams(name string) scene.Params {
	var p scene.Params
	switch name {
	case "SF":
		p = scene.SF
	case "DC":
		p = scene.DC
	case "MOFF":
		p = scene.MOFF
	}
	p = p.Scale(oracleScale)
	p.Name = name
	return p
}

// phaseFingerprint flattens everything a phase run reports — task
// counts, firings, instruction charges, modeled memory, and the full
// fault-handling report — into comparable bytes.
func phaseFingerprint(in *spam.Interpretation) string {
	var b strings.Builder
	for _, p := range in.Phases {
		fmt.Fprintf(&b, "%s tasks=%d firings=%d rhs=%d instr=%.6f match=%.6f peak=%.3f seedbytes=%.3f\n",
			p.Phase, p.Tasks, p.Firings, p.RHSActions, p.Instr, p.MatchInstr, p.PeakTaskBytes, p.SeedBytes)
		b.WriteString(p.Report.String())
	}
	return b.String()
}

// TestDifferentialClusterInterpret is the cluster differential
// oracle: a full interpretation executed across two worker processes
// must be byte-identical — outputs, per-phase statistics, and
// RunReports — to the single-process tlp.Pool run, for all three
// airport scenes.
func TestDifferentialClusterInterpret(t *testing.T) {
	co, err := Start(Config{Workers: 2, LocalWorkers: 2})
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	defer co.Close()

	for _, name := range []string{"SF", "DC", "MOFF"} {
		p := airportParams(name)
		if err := co.RegisterDataset(AirportSpec(p)); err != nil {
			t.Fatalf("%s: register: %v", name, err)
		}
		d, err := spam.NewDataset(p)
		if err != nil {
			t.Fatalf("%s: dataset: %v", name, err)
		}
		opt := spam.InterpretOptions{Workers: 2, ReEntry: true}
		local, err := d.Interpret(opt)
		if err != nil {
			t.Fatalf("%s: local interpret: %v", name, err)
		}
		clusterOpt := opt
		clusterOpt.Runner = NewRunner(co, opt)
		remote, err := d.Interpret(clusterOpt)
		if err != nil {
			t.Fatalf("%s: cluster interpret: %v", name, err)
		}
		if !spam.SameOutputs(local, remote) {
			t.Errorf("%s: cluster outputs differ from single-process run", name)
		}
		lf, rf := phaseFingerprint(local), phaseFingerprint(remote)
		if lf != rf {
			t.Errorf("%s: phase statistics differ:\nlocal:\n%s\ncluster:\n%s", name, lf, rf)
		}
		st := co.Stats()
		if st.ShippedBytes <= 0 || st.TasksShipped <= 0 {
			t.Errorf("%s: no shipping accounted: %+v", name, st)
		}
		for _, ph := range remote.Phases {
			for _, r := range ph.Results {
				if r == nil {
					t.Fatalf("%s: nil result in phase %s", name, ph.Phase)
				}
				if r.ShipBytes <= 0 {
					t.Errorf("%s: task %s shipped for free", name, r.TaskID)
				}
			}
		}
	}
}

// chaosRun executes one cluster interpretation under a process-kill
// plan and returns its reproducibility fingerprint plus the observed
// worker deaths.
func chaosRun(t *testing.T) (string, Stats) {
	t.Helper()
	p := airportParams("DC")
	co, err := Start(Config{
		Workers: 2, LocalWorkers: 1, ShipWindow: 1, MaxRespawns: 8,
		ProcFaults: faults.Config{Seed: 7, CrashRate: 0.05},
	})
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	defer co.Close()
	if err := co.RegisterDataset(AirportSpec(p)); err != nil {
		t.Fatalf("register: %v", err)
	}
	d, err := spam.NewDataset(p)
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	opt := spam.InterpretOptions{Workers: 2, MaxRetries: 2}
	clusterOpt := opt
	clusterOpt.Runner = NewRunner(co, opt)
	in, err := d.Interpret(clusterOpt)
	if err != nil {
		t.Fatalf("cluster interpret under chaos: %v", err)
	}
	// Exactly-once: every phase's merged results carry each task once —
	// no nils (lost), no duplicate IDs (double delivery).
	for _, ph := range in.Phases {
		seen := map[string]bool{}
		for _, r := range ph.Results {
			if r == nil {
				t.Fatalf("phase %s: lost task result", ph.Phase)
			}
			if seen[r.TaskID] {
				t.Fatalf("phase %s: task %s delivered twice", ph.Phase, r.TaskID)
			}
			seen[r.TaskID] = true
		}
		if len(seen) != ph.Tasks {
			t.Fatalf("phase %s: %d distinct results for %d tasks", ph.Phase, len(seen), ph.Tasks)
		}
	}
	return phaseFingerprint(in), co.Stats()
}

// TestClusterChaosKillReproducible SIGKILLs worker processes mid-run
// (deterministically, via the shipped fault plan) and asserts the
// merged RunReport accounting is byte-reproducible across two
// identical runs, with every task delivered exactly once.
func TestClusterChaosKillReproducible(t *testing.T) {
	f1, s1 := chaosRun(t)
	f2, s2 := chaosRun(t)
	if s1.WorkerDeaths < 1 {
		t.Fatalf("chaos plan killed no workers (stats %+v); raise the rate or change the seed", s1)
	}
	if f1 != f2 {
		t.Errorf("chaos run not reproducible:\nrun 1:\n%s\nrun 2:\n%s", f1, f2)
	}
	if s1.WorkerDeaths != s2.WorkerDeaths || s1.Requeued != s2.Requeued {
		t.Errorf("recovery accounting differs: run 1 %+v, run 2 %+v", s1, s2)
	}
	if !strings.Contains(f1, "worker process lost") {
		t.Errorf("report does not show the process loss:\n%s", f1)
	}
}

// TestClusterCancelledRun checks the cancellation contract: a
// cancelled run returns a Result wrapping ErrCancelled for every
// unfinished task, without error.
func TestClusterCancelledRun(t *testing.T) {
	co, err := Start(Config{Workers: 1, LocalWorkers: 1})
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	defer co.Close()
	p := airportParams("DC")
	if err := co.RegisterDataset(AirportSpec(p)); err != nil {
		t.Fatalf("register: %v", err)
	}
	d, err := spam.NewDataset(p)
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	tasks := spam.BuildRTFTasks(d.KB, d.Store, d.Progs.RTF, 3, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := co.RunTasks(ctx, tlp.FIFO, RunConfig{}, tasks)
	if err != nil {
		t.Fatalf("cancelled run errored: %v", err)
	}
	if len(results) != len(tasks) {
		t.Fatalf("got %d results for %d tasks", len(results), len(tasks))
	}
	rep := tlp.Report(results)
	if rep.Cancelled == 0 {
		t.Errorf("no task accounted as cancelled:\n%s", rep)
	}
}
