package cluster

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"spampsm/internal/faults"
	"spampsm/internal/scene"
	"spampsm/internal/spam"
	"spampsm/internal/tlp"
)

// TestMain flips the re-executed test binary into worker mode: the
// coordinator spawns os.Executable() — this binary — with WorkerEnv
// set, so MaybeWorker serves tasks and exits before any test runs.
func TestMain(m *testing.M) {
	MaybeWorker()
	os.Exit(m.Run())
}

// oracleScale keeps the differential runs fast while preserving every
// phase's task structure (the same subset-scale discipline the bench
// smoke suite uses).
const oracleScale = 0.4

func airportParams(name string) scene.Params {
	var p scene.Params
	switch name {
	case "SF":
		p = scene.SF
	case "DC":
		p = scene.DC
	case "MOFF":
		p = scene.MOFF
	}
	p = p.Scale(oracleScale)
	p.Name = name
	return p
}

// phaseFingerprint flattens everything a phase run reports — task
// counts, firings, instruction charges, modeled memory, and the full
// fault-handling report — into comparable bytes.
func phaseFingerprint(in *spam.Interpretation) string {
	var b strings.Builder
	for _, p := range in.Phases {
		fmt.Fprintf(&b, "%s tasks=%d firings=%d rhs=%d instr=%.6f match=%.6f peak=%.3f seedbytes=%.3f\n",
			p.Phase, p.Tasks, p.Firings, p.RHSActions, p.Instr, p.MatchInstr, p.PeakTaskBytes, p.SeedBytes)
		b.WriteString(p.Report.String())
	}
	return b.String()
}

// TestDifferentialClusterInterpret is the cluster differential
// oracle: a full interpretation executed across two worker processes
// must be byte-identical — outputs, per-phase statistics, and
// RunReports — to the single-process tlp.Pool run, for all three
// airport scenes.
func TestDifferentialClusterInterpret(t *testing.T) {
	co, err := Start(Config{Workers: 2, LocalWorkers: 2})
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	defer co.Close()

	for _, name := range []string{"SF", "DC", "MOFF"} {
		p := airportParams(name)
		if err := co.RegisterDataset(AirportSpec(p)); err != nil {
			t.Fatalf("%s: register: %v", name, err)
		}
		d, err := spam.NewDataset(p)
		if err != nil {
			t.Fatalf("%s: dataset: %v", name, err)
		}
		opt := spam.InterpretOptions{Workers: 2, ReEntry: true}
		local, err := d.Interpret(opt)
		if err != nil {
			t.Fatalf("%s: local interpret: %v", name, err)
		}
		clusterOpt := opt
		clusterOpt.Runner = NewRunner(co, opt)
		remote, err := d.Interpret(clusterOpt)
		if err != nil {
			t.Fatalf("%s: cluster interpret: %v", name, err)
		}
		if !spam.SameOutputs(local, remote) {
			t.Errorf("%s: cluster outputs differ from single-process run", name)
		}
		lf, rf := phaseFingerprint(local), phaseFingerprint(remote)
		if lf != rf {
			t.Errorf("%s: phase statistics differ:\nlocal:\n%s\ncluster:\n%s", name, lf, rf)
		}
		st := co.Stats()
		if st.ShippedBytes <= 0 || st.TasksShipped <= 0 {
			t.Errorf("%s: no shipping accounted: %+v", name, st)
		}
		for _, ph := range remote.Phases {
			for _, r := range ph.Results {
				if r == nil {
					t.Fatalf("%s: nil result in phase %s", name, ph.Phase)
				}
				if r.ShipBytes <= 0 {
					t.Errorf("%s: task %s shipped for free", name, r.TaskID)
				}
			}
		}
	}

	// Wire-v2 locality accounting: the run must have reused resident
	// chunks, run its LCC re-entry tasks as worker-side continuations
	// (>= 90%), and beaten the v1 counterfactual task-frame cost.
	st := co.Stats()
	if st.WireVersion != Version {
		t.Errorf("stats report wire v%d, want v%d", st.WireVersion, Version)
	}
	if st.ChunksShipped <= 0 || st.ChunkHits <= 0 || st.ChunkSavedBytes <= 0 {
		t.Errorf("no chunk reuse accounted: %+v", st)
	}
	if st.ContinuationTasks <= 0 {
		t.Error("re-entry produced no continuation-marked tasks")
	}
	if 10*st.Continuations < 9*st.ContinuationTasks {
		t.Errorf("only %d/%d continuations ran worker-side, want >= 90%%",
			st.Continuations, st.ContinuationTasks)
	}
	taskBytes := st.ShippedBytes - st.ResultBytes
	if st.V1TaskBytes <= taskBytes {
		t.Errorf("v2 task frames (%d bytes) did not beat the v1 counterfactual (%d bytes)",
			taskBytes, st.V1TaskBytes)
	}
	var perWorkerShipped int64
	for _, ws := range st.PerWorker {
		perWorkerShipped += ws.ShippedBytes
	}
	if perWorkerShipped != st.ShippedBytes {
		t.Errorf("per-worker shipped bytes (%d) do not add up to the total (%d)",
			perWorkerShipped, st.ShippedBytes)
	}
}

// TestClusterWireV1Compat pins version negotiation end to end: a
// coordinator restricted to wire v1 must still produce byte-identical
// interpretations (no chunks, no continuations — every seed inline),
// because a v2-built worker told to speak v1 never sees a v2 frame.
func TestClusterWireV1Compat(t *testing.T) {
	co, err := Start(Config{Workers: 2, LocalWorkers: 2, WireVersion: 1})
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	defer co.Close()
	p := airportParams("DC")
	if err := co.RegisterDataset(AirportSpec(p)); err != nil {
		t.Fatalf("register: %v", err)
	}
	d, err := spam.NewDataset(p)
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	opt := spam.InterpretOptions{Workers: 2, ReEntry: true}
	local, err := d.Interpret(opt)
	if err != nil {
		t.Fatalf("local interpret: %v", err)
	}
	clusterOpt := opt
	clusterOpt.Runner = NewRunner(co, opt)
	remote, err := d.Interpret(clusterOpt)
	if err != nil {
		t.Fatalf("cluster interpret: %v", err)
	}
	if !spam.SameOutputs(local, remote) {
		t.Error("v1 cluster outputs differ from single-process run")
	}
	if lf, rf := phaseFingerprint(local), phaseFingerprint(remote); lf != rf {
		t.Errorf("v1 phase statistics differ:\nlocal:\n%s\ncluster:\n%s", lf, rf)
	}
	st := co.Stats()
	if st.WireVersion != 1 {
		t.Errorf("stats report wire v%d, want v1", st.WireVersion)
	}
	if st.ChunksShipped != 0 || st.ChunkHits != 0 || st.Continuations != 0 || st.V1TaskBytes != 0 {
		t.Errorf("v1 run used v2 machinery: %+v", st)
	}
	if st.ContinuationTasks <= 0 {
		t.Error("re-entry tasks not accounted on the v1 path")
	}
}

// TestWorkerRejectsBadHandshake drives ServeWorker directly over a
// pipe: out-of-range versions and a wrong magic must fail the
// handshake before any task can arrive.
func TestWorkerRejectsBadHandshake(t *testing.T) {
	cases := []struct {
		name string
		init InitMsg
	}{
		{"version too old", InitMsg{Magic: Magic, Version: 0}},
		{"version too new", InitMsg{Magic: Magic, Version: Version + 1}},
		{"wrong magic", InitMsg{Magic: "BOGUS", Version: Version}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			coord, work := net.Pipe()
			errc := make(chan error, 1)
			go func() { errc <- ServeWorker(work) }()
			if _, err := writeJSONFrame(coord, frameInit, tc.init); err != nil {
				t.Fatalf("write init: %v", err)
			}
			err := <-errc
			coord.Close()
			if err == nil || !strings.Contains(err.Error(), "protocol") {
				t.Fatalf("handshake accepted %+v (err=%v)", tc.init, err)
			}
		})
	}
}

// TestClusterChunkEviction squeezes the resident-chunk budget down to
// a few hundred bytes so the LRU must evict mid-run, and asserts the
// interpretation stays byte-identical — a re-shipped chunk is the same
// content under a fresh id.
func TestClusterChunkEviction(t *testing.T) {
	co, err := Start(Config{Workers: 2, LocalWorkers: 2, ChunkBudget: 512})
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	defer co.Close()
	p := airportParams("DC")
	if err := co.RegisterDataset(AirportSpec(p)); err != nil {
		t.Fatalf("register: %v", err)
	}
	d, err := spam.NewDataset(p)
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	opt := spam.InterpretOptions{Workers: 2, ReEntry: true}
	local, err := d.Interpret(opt)
	if err != nil {
		t.Fatalf("local interpret: %v", err)
	}
	clusterOpt := opt
	clusterOpt.Runner = NewRunner(co, opt)
	remote, err := d.Interpret(clusterOpt)
	if err != nil {
		t.Fatalf("cluster interpret: %v", err)
	}
	if !spam.SameOutputs(local, remote) {
		t.Error("outputs differ under chunk eviction")
	}
	if lf, rf := phaseFingerprint(local), phaseFingerprint(remote); lf != rf {
		t.Errorf("phase statistics differ under chunk eviction:\nlocal:\n%s\ncluster:\n%s", lf, rf)
	}
	st := co.Stats()
	if st.Evictions <= 0 {
		t.Errorf("512-byte chunk budget forced no evictions: %+v", st)
	}
	// Residency may exceed the budget by one task's pinned working set
	// (chunks a ship references are exempt from that ship's eviction
	// pass), but it must stay bounded — within budget plus the largest
	// task's chunk bytes, far below the unevicted total.
	if st.ChunkBytes <= 512 {
		t.Fatalf("eviction run shipped too few chunk bytes to exercise the budget: %+v", st)
	}
	for _, ws := range st.PerWorker {
		if ws.ResidentBytes >= st.ChunkBytes {
			t.Errorf("worker %d evicted nothing: resident %d of %d shipped chunk bytes",
				ws.Slot, ws.ResidentBytes, st.ChunkBytes)
		}
	}
}

// TestClusterStartFailureCleanup pins Start's failure path: when the
// spawned workers never connect, Start must reap the worker processes
// and remove its private socket directory — no leaked temp dirs, no
// orphan processes.
func TestClusterStartFailureCleanup(t *testing.T) {
	dir := t.TempDir()
	pidFile := filepath.Join(dir, "worker.pid")
	exe := filepath.Join(dir, "sleeper.sh")
	script := "#!/bin/sh\necho $$ > " + pidFile + "\nsleep 60\n"
	if err := os.WriteFile(exe, []byte(script), 0o755); err != nil {
		t.Fatalf("write sleeper: %v", err)
	}
	canary := filepath.Join(dir, "canary-tmp")
	if err := os.Mkdir(canary, 0o755); err != nil {
		t.Fatalf("mkdir canary: %v", err)
	}
	t.Setenv("TMPDIR", canary) // Start's socket dir lands here

	co, err := Start(Config{Workers: 1, Exe: exe, ConnectTimeout: 500 * time.Millisecond})
	if err == nil {
		co.Close()
		t.Fatal("Start succeeded with a worker that never connects")
	}
	if !strings.Contains(err.Error(), "workers connected before timeout") {
		t.Fatalf("unexpected Start error: %v", err)
	}

	entries, readErr := os.ReadDir(canary)
	if readErr != nil {
		t.Fatalf("read canary: %v", readErr)
	}
	if len(entries) != 0 {
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("socket dir leaked into %s: %v", canary, names)
	}

	pidBytes, readErr := os.ReadFile(pidFile)
	if readErr != nil {
		t.Fatalf("sleeper never started (no pid file): %v", readErr)
	}
	pid, convErr := strconv.Atoi(strings.TrimSpace(string(pidBytes)))
	if convErr != nil {
		t.Fatalf("bad pid file %q: %v", pidBytes, convErr)
	}
	// Close (run by the failed Start) must have killed and reaped the
	// sleeper: signal 0 probes existence without touching anything.
	if killErr := syscall.Kill(pid, 0); killErr != syscall.ESRCH {
		syscall.Kill(pid, syscall.SIGKILL)
		t.Errorf("sleeper pid %d still alive after failed Start (kill 0 => %v)", pid, killErr)
	}
}

// chaosRun executes one cluster interpretation under a process-kill
// plan and returns its reproducibility fingerprint plus the observed
// worker deaths.
func chaosRun(t *testing.T) (string, Stats) {
	t.Helper()
	p := airportParams("DC")
	co, err := Start(Config{
		Workers: 2, LocalWorkers: 1, ShipWindow: 1, MaxRespawns: 8,
		ProcFaults: faults.Config{Seed: 7, CrashRate: 0.05},
	})
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	defer co.Close()
	if err := co.RegisterDataset(AirportSpec(p)); err != nil {
		t.Fatalf("register: %v", err)
	}
	d, err := spam.NewDataset(p)
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	opt := spam.InterpretOptions{Workers: 2, MaxRetries: 2}
	clusterOpt := opt
	clusterOpt.Runner = NewRunner(co, opt)
	in, err := d.Interpret(clusterOpt)
	if err != nil {
		t.Fatalf("cluster interpret under chaos: %v", err)
	}
	// Exactly-once: every phase's merged results carry each task once —
	// no nils (lost), no duplicate IDs (double delivery).
	for _, ph := range in.Phases {
		seen := map[string]bool{}
		for _, r := range ph.Results {
			if r == nil {
				t.Fatalf("phase %s: lost task result", ph.Phase)
			}
			if seen[r.TaskID] {
				t.Fatalf("phase %s: task %s delivered twice", ph.Phase, r.TaskID)
			}
			seen[r.TaskID] = true
		}
		if len(seen) != ph.Tasks {
			t.Fatalf("phase %s: %d distinct results for %d tasks", ph.Phase, len(seen), ph.Tasks)
		}
	}
	return phaseFingerprint(in), co.Stats()
}

// TestClusterChaosKillReproducible SIGKILLs worker processes mid-run
// (deterministically, via the shipped fault plan) and asserts the
// merged RunReport accounting is byte-reproducible across two
// identical runs, with every task delivered exactly once.
func TestClusterChaosKillReproducible(t *testing.T) {
	f1, s1 := chaosRun(t)
	f2, s2 := chaosRun(t)
	if s1.WorkerDeaths < 1 {
		t.Fatalf("chaos plan killed no workers (stats %+v); raise the rate or change the seed", s1)
	}
	if f1 != f2 {
		t.Errorf("chaos run not reproducible:\nrun 1:\n%s\nrun 2:\n%s", f1, f2)
	}
	if s1.WorkerDeaths != s2.WorkerDeaths || s1.Requeued != s2.Requeued {
		t.Errorf("recovery accounting differs: run 1 %+v, run 2 %+v", s1, s2)
	}
	if !strings.Contains(f1, "worker process lost") {
		t.Errorf("report does not show the process loss:\n%s", f1)
	}
}

// TestClusterCancelledRun checks the cancellation contract: a
// cancelled run returns a Result wrapping ErrCancelled for every
// unfinished task, without error.
func TestClusterCancelledRun(t *testing.T) {
	co, err := Start(Config{Workers: 1, LocalWorkers: 1})
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	defer co.Close()
	p := airportParams("DC")
	if err := co.RegisterDataset(AirportSpec(p)); err != nil {
		t.Fatalf("register: %v", err)
	}
	d, err := spam.NewDataset(p)
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	tasks := spam.BuildRTFTasks(d.KB, d.Store, d.Progs.RTF, 3, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := co.RunTasks(ctx, tlp.FIFO, RunConfig{}, tasks)
	if err != nil {
		t.Fatalf("cancelled run errored: %v", err)
	}
	if len(results) != len(tasks) {
		t.Fatalf("got %d results for %d tasks", len(results), len(tasks))
	}
	rep := tlp.Report(results)
	if rep.Cancelled == 0 {
		t.Errorf("no task accounted as cancelled:\n%s", rep)
	}
}
