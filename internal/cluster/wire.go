// Package cluster is the multi-process scale-out runtime of SPAM/PSM:
// a coordinator process that shards each phase's task queue across N
// worker processes and merges their tlp.Result-equivalent replies.
// It promotes the message-passing execution model the repository so
// far only simulated (internal/msgpass, internal/svm) to real
// processes, following the layered design of Or-parallel cluster
// systems: every worker hosts a local tlp.Pool (a single-machine
// worker team), and the cluster layer is a scheduler of pools that
// ships tasks, steals work across shards, and applies the pool's
// retry/quarantine semantics at process granularity — a lost worker
// connection requeues its in-flight tasks on the survivors, with
// bounded respawn.
//
// Results are byte-identical to a single-process tlp.Pool run: tasks
// ship as seed working memories (the same rete.RouteDigest shared-seed
// discipline the in-process path uses), workers rebuild engines from
// the identically-generated dataset, and the differential oracle in
// this package's tests proves the identity for SF/DC/MOFF. See
// docs/CLUSTER.md.
package cluster

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"spampsm/internal/faults"
	"spampsm/internal/ops5"
	"spampsm/internal/rete"
	"spampsm/internal/scene"
	"spampsm/internal/symtab"
	"spampsm/internal/tlp"
)

// Wire protocol version. The Init frame carries magic and version;
// a worker refuses a coordinator speaking anything else. Bump the
// version on any change to the frame layouts below.
const (
	Magic   = "SPAMCLU1"
	Version = 1
)

// Frame types. Every frame is [type byte][uvarint payload length]
// [payload]; Init and DatasetAdd payloads are JSON (sent once per
// connection / dataset — robustness over compactness), Task and
// Result payloads are the compact binary encoding (the per-task hot
// path, fuzz-tested for decode(encode(x)) identity).
const (
	frameInit     = 1 // coordinator→worker: InitMsg (JSON)
	frameDataset  = 2 // coordinator→worker: DatasetSpec (JSON)
	frameTask     = 3 // coordinator→worker: TaskMsg (binary)
	frameResult   = 4 // worker→coordinator: ResultMsg (binary)
	frameShutdown = 5 // coordinator→worker: empty
)

// maxFrame bounds a frame payload; a decoder never allocates past it,
// so a corrupt or adversarial length prefix cannot balloon memory.
const maxFrame = 64 << 20

// frameLen is the on-wire size of a frame with the given payload
// length: type byte, uvarint length prefix, payload.
func frameLen(payloadLen int) int {
	n := 1 + payloadLen
	v := uint64(payloadLen)
	for {
		n++
		v >>= 7
		if v == 0 {
			return n
		}
	}
}

// Toggles mirrors the process-global observational-equivalence
// switches of internal/spam and internal/geom. They are plain values
// here because the toggles expose no getters: the coordinator's owner
// passes the flag values it set, and every worker process replays
// them before building engines, keeping cluster and local engines on
// identical code paths.
type Toggles struct {
	NaiveMatch    bool
	FreshCompile  bool
	UnbatchedSeed bool
	UncachedGeo   bool
	ExactGeom     bool
}

// InitMsg is the first frame of every connection: protocol handshake
// plus the per-process worker configuration (the knobs a worker's
// local tlp.Pool inherits from the coordinator's flags).
type InitMsg struct {
	Magic        string
	Version      int
	LocalWorkers int
	MemBudget    float64
	Prebuild     bool
	Toggles      Toggles
	// ProcFaults seeds the worker's process-level chaos plan: a task
	// whose fault draw is a Crash kills the worker process itself
	// (SIGKILL, no goodbye) instead of simulating a crash in-pool.
	// Deterministic in (task ID, attempt), like every faults.Plan.
	ProcFaults faults.Config
}

// DatasetSpec names a dataset and carries the generator parameters to
// rebuild it from scratch. Scenes are deterministic functions of
// their parameters, so shipping the parameters — a few dozen bytes —
// gives every worker a byte-identical dataset without shipping the
// scene itself.
type DatasetSpec struct {
	Name     string
	Domain   string // "airport" | "suburban"
	Airport  scene.Params
	Suburban scene.SuburbanParams
}

// RunConfig is the per-run execution configuration shipped with each
// task: the tlp.Pool fault-tolerance and budget knobs the worker's
// pool must replay for byte-identical retry/quarantine behavior.
type RunConfig struct {
	MaxFirings   int
	FiringBudget int
	MaxRetries   int
	TaskTimeout  time.Duration
	RetryBackoff time.Duration
	Capture      bool
	Faults       faults.Config
}

// TaskMsg is one shipped task: identity and scheduler estimates, the
// attempt number to resume from (>1 after the coordinator charged
// earlier attempts to a lost worker), the run configuration, and the
// task's WireSpec (seed working memory and extraction classes).
type TaskMsg struct {
	RunID        uint64
	Seq          int
	StartAttempt int
	ID           string
	Label        string
	Group        string
	EstSize      float64
	MemEst       float64
	Config       RunConfig
	Spec         tlp.WireSpec
}

// WireError is an error flattened for shipping: message plus
// tlp classification marks (see tlp.ErrorMarks).
type WireError struct {
	Msg   string
	Marks uint32
}

// SnapClass is one class's rows in a result's working-memory
// snapshot: the class layout plus the value vectors, in timetag
// order.
type SnapClass struct {
	Name  string
	Attrs []string
	Rows  [][]symtab.Value
}

// ResultMsg is one task's outcome crossing back: the final attempt's
// statistics, the flattened errors, and the snapshot of the extracted
// working-memory classes.
type ResultMsg struct {
	RunID       uint64
	Seq         int
	TaskID      string
	Worker      int
	Attempts    int
	Stats       ops5.RunStats
	Mem         ops5.MemStats
	HasLog      bool
	Err         *WireError
	AttemptErrs []WireError
	Quarantined bool
	Cancelled   bool
	Snapshot    []SnapClass
}

// ---------------------------------------------------------------------------
// Framing

// writeFrame emits one frame on w.
func writeFrame(w io.Writer, typ byte, payload []byte) (int, error) {
	if len(payload) > maxFrame {
		return 0, fmt.Errorf("cluster: frame payload %d exceeds limit", len(payload))
	}
	hdr := make([]byte, 1, 1+binary.MaxVarintLen64)
	hdr[0] = typ
	hdr = binary.AppendUvarint(hdr, uint64(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return len(hdr) + len(payload), nil
}

// readFrame reads one frame from r.
func readFrame(r *bufio.Reader) (byte, []byte, error) {
	typ, err := r.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, nil, err
	}
	if n > maxFrame {
		return 0, nil, fmt.Errorf("cluster: frame payload %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return typ, payload, nil
}

func writeJSONFrame(w io.Writer, typ byte, v interface{}) (int, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	return writeFrame(w, typ, payload)
}

// ---------------------------------------------------------------------------
// Binary encoding primitives

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendFloat(b []byte, f float64) []byte {
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], math.Float64bits(f))
	return append(b, t[:]...)
}

func appendInt(b []byte, i int64) []byte {
	return binary.AppendVarint(b, i)
}

func appendUint(b []byte, u uint64) []byte {
	return binary.AppendUvarint(b, u)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// decoder walks a frame payload. Malformed input flips err and makes
// every further read return a zero value; decode entry points check
// err once at the end. Length prefixes are validated against the
// remaining payload before any allocation, so a hostile frame cannot
// make the decoder allocate more than it received.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("cluster: truncated or malformed %s", what)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail("byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) float() float64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail("float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.b)) {
		d.fail("string")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *decoder) bool() bool { return d.byte() != 0 }

// count reads an item count and bounds it by the remaining payload
// (each item encodes to at least one byte).
func (d *decoder) count(what string) int {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.b)) {
		d.fail(what + " count")
		return 0
	}
	return int(n)
}

// ---------------------------------------------------------------------------
// Values and seeds

const (
	valNil = iota
	valSym
	valInt
	valFloat
)

func appendValue(b []byte, v symtab.Value) []byte {
	switch v.Kind() {
	case symtab.KindSym:
		b = append(b, valSym)
		return appendString(b, v.SymVal())
	case symtab.KindInt:
		b = append(b, valInt)
		return appendInt(b, v.IntVal())
	case symtab.KindFloat:
		b = append(b, valFloat)
		return appendFloat(b, v.FloatVal())
	default:
		return append(b, valNil)
	}
}

func (d *decoder) value() symtab.Value {
	switch d.byte() {
	case valSym:
		return symtab.Sym(d.string())
	case valInt:
		return symtab.Int(d.varint())
	case valFloat:
		return symtab.Float(d.float())
	default:
		return symtab.Nil
	}
}

func (d *decoder) values() []symtab.Value {
	n := d.count("value")
	if n == 0 {
		return nil
	}
	vals := make([]symtab.Value, 0, n)
	for i := 0; i < n; i++ {
		vals = append(vals, d.value())
	}
	return vals
}

func appendValues(b []byte, vals []symtab.Value) []byte {
	b = appendUint(b, uint64(len(vals)))
	for _, v := range vals {
		b = appendValue(b, v)
	}
	return b
}

// appendSeed ships a seed as class + shared flag + values. The digest
// string itself never crosses the wire: a shared seed's digest is a
// pure function of (class, values), so the decoder recomputes it with
// the same rete.RouteDigest the coordinator used — identical string,
// identical alpha-routing memoization, identical Init charges.
func appendSeed(b []byte, s ops5.Seed) []byte {
	b = appendString(b, s.Class)
	b = appendBool(b, s.Digest != "")
	return appendValues(b, s.Vals)
}

func (d *decoder) seed() ops5.Seed {
	s := ops5.Seed{Class: d.string()}
	shared := d.bool()
	s.Vals = d.values()
	if shared && d.err == nil {
		s.Digest = rete.RouteDigest(s.Class, s.Vals)
	}
	return s
}

// ---------------------------------------------------------------------------
// Task frames

func appendRunConfig(b []byte, c RunConfig) []byte {
	b = appendInt(b, int64(c.MaxFirings))
	b = appendInt(b, int64(c.FiringBudget))
	b = appendInt(b, int64(c.MaxRetries))
	b = appendInt(b, int64(c.TaskTimeout))
	b = appendInt(b, int64(c.RetryBackoff))
	b = appendBool(b, c.Capture)
	b = appendInt(b, c.Faults.Seed)
	b = appendFloat(b, c.Faults.BuildFailRate)
	b = appendFloat(b, c.Faults.PanicRate)
	b = appendFloat(b, c.Faults.CrashRate)
	b = appendFloat(b, c.Faults.PermanentFraction)
	return b
}

func (d *decoder) runConfig() RunConfig {
	var c RunConfig
	c.MaxFirings = int(d.varint())
	c.FiringBudget = int(d.varint())
	c.MaxRetries = int(d.varint())
	c.TaskTimeout = time.Duration(d.varint())
	c.RetryBackoff = time.Duration(d.varint())
	c.Capture = d.bool()
	c.Faults.Seed = d.varint()
	c.Faults.BuildFailRate = d.float()
	c.Faults.PanicRate = d.float()
	c.Faults.CrashRate = d.float()
	c.Faults.PermanentFraction = d.float()
	return c
}

// EncodeTask serializes a task frame payload.
func EncodeTask(m *TaskMsg) []byte {
	b := make([]byte, 0, 256)
	b = appendUint(b, m.RunID)
	b = appendUint(b, uint64(m.Seq))
	b = appendUint(b, uint64(m.StartAttempt))
	b = appendString(b, m.ID)
	b = appendString(b, m.Label)
	b = appendString(b, m.Group)
	b = appendFloat(b, m.EstSize)
	b = appendFloat(b, m.MemEst)
	b = appendRunConfig(b, m.Config)
	b = appendString(b, m.Spec.Dataset)
	b = appendString(b, m.Spec.Phase)
	b = appendUint(b, uint64(len(m.Spec.Extract)))
	for _, c := range m.Spec.Extract {
		b = appendString(b, c)
	}
	b = appendUint(b, uint64(len(m.Spec.Seeds)))
	for _, s := range m.Spec.Seeds {
		b = appendSeed(b, s)
	}
	return b
}

// DecodeTask parses a task frame payload.
func DecodeTask(payload []byte) (*TaskMsg, error) {
	d := &decoder{b: payload}
	m := &TaskMsg{}
	m.RunID = d.uvarint()
	m.Seq = int(d.uvarint())
	m.StartAttempt = int(d.uvarint())
	m.ID = d.string()
	m.Label = d.string()
	m.Group = d.string()
	m.EstSize = d.float()
	m.MemEst = d.float()
	m.Config = d.runConfig()
	m.Spec.Dataset = d.string()
	m.Spec.Phase = d.string()
	if n := d.count("extract"); n > 0 {
		m.Spec.Extract = make([]string, 0, n)
		for i := 0; i < n; i++ {
			m.Spec.Extract = append(m.Spec.Extract, d.string())
		}
	}
	if n := d.count("seed"); n > 0 {
		m.Spec.Seeds = make([]ops5.Seed, 0, n)
		for i := 0; i < n; i++ {
			m.Spec.Seeds = append(m.Spec.Seeds, d.seed())
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("cluster: %d trailing bytes after task frame", len(d.b))
	}
	return m, nil
}

// ---------------------------------------------------------------------------
// Result frames

const (
	rfErr = 1 << iota
	rfQuarantined
	rfCancelled
	rfHalted
	rfLog
)

func appendWireError(b []byte, e WireError) []byte {
	b = appendString(b, e.Msg)
	return appendUint(b, uint64(e.Marks))
}

func (d *decoder) wireError() WireError {
	return WireError{Msg: d.string(), Marks: uint32(d.uvarint())}
}

// EncodeResult serializes a result frame payload.
func EncodeResult(m *ResultMsg) []byte {
	b := make([]byte, 0, 256)
	b = appendUint(b, m.RunID)
	b = appendUint(b, uint64(m.Seq))
	b = appendString(b, m.TaskID)
	b = appendUint(b, uint64(m.Worker))
	b = appendUint(b, uint64(m.Attempts))
	var flags byte
	if m.Err != nil {
		flags |= rfErr
	}
	if m.Quarantined {
		flags |= rfQuarantined
	}
	if m.Cancelled {
		flags |= rfCancelled
	}
	if m.Stats.Halted {
		flags |= rfHalted
	}
	if m.HasLog {
		flags |= rfLog
	}
	b = append(b, flags)
	b = appendUint(b, uint64(m.Stats.Firings))
	b = appendUint(b, uint64(m.Stats.Cycles))
	b = appendUint(b, uint64(m.Stats.RHSActions))
	b = appendFloat(b, m.Stats.MatchInstr)
	b = appendFloat(b, m.Stats.ResolveInstr)
	b = appendFloat(b, m.Stats.ActInstr)
	b = appendFloat(b, m.Stats.InitInstr)
	b = appendUint(b, uint64(m.Mem.SeedWMEs))
	b = appendFloat(b, m.Mem.SeedBytes)
	b = appendUint(b, uint64(m.Mem.RetractedWMEs))
	b = appendFloat(b, m.Mem.RetractedBytes)
	b = appendUint(b, uint64(m.Mem.PeakWMEs))
	b = appendUint(b, uint64(m.Mem.PeakTokens))
	b = appendFloat(b, m.Mem.PeakBytes)
	if m.Err != nil {
		b = appendWireError(b, *m.Err)
	}
	b = appendUint(b, uint64(len(m.AttemptErrs)))
	for _, e := range m.AttemptErrs {
		b = appendWireError(b, e)
	}
	b = appendUint(b, uint64(len(m.Snapshot)))
	for _, sc := range m.Snapshot {
		b = appendString(b, sc.Name)
		b = appendUint(b, uint64(len(sc.Attrs)))
		for _, a := range sc.Attrs {
			b = appendString(b, a)
		}
		b = appendUint(b, uint64(len(sc.Rows)))
		for _, row := range sc.Rows {
			b = appendValues(b, row)
		}
	}
	return b
}

// DecodeResult parses a result frame payload.
func DecodeResult(payload []byte) (*ResultMsg, error) {
	d := &decoder{b: payload}
	m := &ResultMsg{}
	m.RunID = d.uvarint()
	m.Seq = int(d.uvarint())
	m.TaskID = d.string()
	m.Worker = int(d.uvarint())
	m.Attempts = int(d.uvarint())
	flags := d.byte()
	m.Quarantined = flags&rfQuarantined != 0
	m.Cancelled = flags&rfCancelled != 0
	m.HasLog = flags&rfLog != 0
	m.Stats.Firings = int(d.uvarint())
	m.Stats.Cycles = int(d.uvarint())
	m.Stats.RHSActions = int(d.uvarint())
	m.Stats.MatchInstr = d.float()
	m.Stats.ResolveInstr = d.float()
	m.Stats.ActInstr = d.float()
	m.Stats.InitInstr = d.float()
	m.Stats.Halted = flags&rfHalted != 0
	m.Mem.SeedWMEs = int(d.uvarint())
	m.Mem.SeedBytes = d.float()
	m.Mem.RetractedWMEs = int(d.uvarint())
	m.Mem.RetractedBytes = d.float()
	m.Mem.PeakWMEs = int(d.uvarint())
	m.Mem.PeakTokens = int(d.uvarint())
	m.Mem.PeakBytes = d.float()
	if flags&rfErr != 0 {
		e := d.wireError()
		m.Err = &e
	}
	if n := d.count("attempt error"); n > 0 {
		m.AttemptErrs = make([]WireError, 0, n)
		for i := 0; i < n; i++ {
			m.AttemptErrs = append(m.AttemptErrs, d.wireError())
		}
	}
	if n := d.count("snapshot class"); n > 0 {
		m.Snapshot = make([]SnapClass, 0, n)
		for i := 0; i < n; i++ {
			sc := SnapClass{Name: d.string()}
			if na := d.count("snapshot attr"); na > 0 {
				sc.Attrs = make([]string, 0, na)
				for j := 0; j < na; j++ {
					sc.Attrs = append(sc.Attrs, d.string())
				}
			}
			if nr := d.count("snapshot row"); nr > 0 {
				sc.Rows = make([][]symtab.Value, 0, nr)
				for j := 0; j < nr; j++ {
					sc.Rows = append(sc.Rows, d.values())
				}
			}
			m.Snapshot = append(m.Snapshot, sc)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("cluster: %d trailing bytes after result frame", len(d.b))
	}
	return m, nil
}
