// Package cluster is the multi-process scale-out runtime of SPAM/PSM:
// a coordinator process that shards each phase's task queue across N
// worker processes and merges their tlp.Result-equivalent replies.
// It promotes the message-passing execution model the repository so
// far only simulated (internal/msgpass, internal/svm) to real
// processes, following the layered design of Or-parallel cluster
// systems: every worker hosts a local tlp.Pool (a single-machine
// worker team), and the cluster layer is a scheduler of pools that
// ships tasks, steals work across shards, and applies the pool's
// retry/quarantine semantics at process granularity — a lost worker
// connection requeues its in-flight tasks on the survivors, with
// bounded respawn.
//
// Results are byte-identical to a single-process tlp.Pool run: tasks
// ship as seed working memories (the same rete.RouteDigest shared-seed
// discipline the in-process path uses), workers rebuild engines from
// the identically-generated dataset, and the differential oracle in
// this package's tests proves the identity for SF/DC/MOFF. See
// docs/CLUSTER.md.
package cluster

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"spampsm/internal/faults"
	"spampsm/internal/ops5"
	"spampsm/internal/rete"
	"spampsm/internal/scene"
	"spampsm/internal/symtab"
	"spampsm/internal/tlp"
)

// Wire protocol versions. The Init frame carries magic and version;
// the coordinator picks the version it will speak (Config.WireVersion)
// and a worker accepts anything in [MinVersion, Version] — the version
// is descending-compatible because v2 only adds frames, so a v2-built
// worker told to speak v1 simply never sees them. Bump Version on any
// change to the frame layouts below.
//
// v1: Task frames carry every seed inline.
// v2: adds content-addressed seed shipping (frameChunk + chunk-ref
// task frames) and worker-side phase continuation (Spawned task and
// result marks); see docs/CLUSTER.md.
const (
	Magic      = "SPAMCLU1"
	Version    = 2
	MinVersion = 1
)

// Frame types. Every frame is [type byte][uvarint payload length]
// [payload]; Init and DatasetAdd payloads are JSON (sent once per
// connection / dataset — robustness over compactness), Task, Result
// and the v2 chunk frames are the compact binary encoding (the
// per-task hot path, fuzz-tested for decode(encode(x)) identity).
const (
	frameInit      = 1 // coordinator→worker: InitMsg (JSON)
	frameDataset   = 2 // coordinator→worker: DatasetSpec (JSON)
	frameTask      = 3 // coordinator→worker: TaskMsg (binary, v1: all seeds inline)
	frameResult    = 4 // worker→coordinator: ResultMsg (binary)
	frameShutdown  = 5 // coordinator→worker: empty
	frameChunk     = 6 // coordinator→worker (v2): one content-addressed seed chunk
	frameTaskV2    = 7 // coordinator→worker (v2): TaskMsg with chunk refs
	frameChunkFree = 8 // coordinator→worker (v2): evicted chunk ids
)

// maxFrame bounds a frame payload; a decoder never allocates past it,
// so a corrupt or adversarial length prefix cannot balloon memory.
const maxFrame = 64 << 20

// frameLen is the on-wire size of a frame with the given payload
// length: type byte, uvarint length prefix, payload.
func frameLen(payloadLen int) int {
	n := 1 + payloadLen
	v := uint64(payloadLen)
	for {
		n++
		v >>= 7
		if v == 0 {
			return n
		}
	}
}

// Toggles mirrors the process-global observational-equivalence
// switches of internal/spam and internal/geom. They are plain values
// here because the toggles expose no getters: the coordinator's owner
// passes the flag values it set, and every worker process replays
// them before building engines, keeping cluster and local engines on
// identical code paths.
type Toggles struct {
	NaiveMatch    bool
	FreshCompile  bool
	UnbatchedSeed bool
	UncachedGeo   bool
	ExactGeom     bool
}

// InitMsg is the first frame of every connection: protocol handshake
// plus the per-process worker configuration (the knobs a worker's
// local tlp.Pool inherits from the coordinator's flags).
type InitMsg struct {
	Magic        string
	Version      int
	LocalWorkers int
	MemBudget    float64
	Prebuild     bool
	Toggles      Toggles
	// ProcFaults seeds the worker's process-level chaos plan: a task
	// whose fault draw is a Crash kills the worker process itself
	// (SIGKILL, no goodbye) instead of simulating a crash in-pool.
	// Deterministic in (task ID, attempt), like every faults.Plan.
	ProcFaults faults.Config
}

// DatasetSpec names a dataset and carries the generator parameters to
// rebuild it from scratch. Scenes are deterministic functions of
// their parameters, so shipping the parameters — a few dozen bytes —
// gives every worker a byte-identical dataset without shipping the
// scene itself.
type DatasetSpec struct {
	Name     string
	Domain   string // "airport" | "suburban"
	Airport  scene.Params
	Suburban scene.SuburbanParams
}

// RunConfig is the per-run execution configuration shipped with each
// task: the tlp.Pool fault-tolerance and budget knobs the worker's
// pool must replay for byte-identical retry/quarantine behavior.
type RunConfig struct {
	MaxFirings   int
	FiringBudget int
	MaxRetries   int
	TaskTimeout  time.Duration
	RetryBackoff time.Duration
	Capture      bool
	Faults       faults.Config
}

// TaskMsg is one shipped task: identity and scheduler estimates, the
// attempt number to resume from (>1 after the coordinator charged
// earlier attempts to a lost worker), the run configuration, and the
// task's WireSpec (seed working memory and extraction classes).
type TaskMsg struct {
	RunID        uint64
	Seq          int
	StartAttempt int
	ID           string
	Label        string
	Group        string
	EstSize      float64
	MemEst       float64
	Config       RunConfig
	Spec         tlp.WireSpec
	// Spawned marks a worker-side phase continuation (v2): the
	// coordinator pushed this task straight to the worker already
	// holding its chunks instead of queueing it through the shard
	// striping. Workers echo the mark in the ResultMsg so spawn
	// accounting survives the round trip.
	Spawned bool
}

// WireError is an error flattened for shipping: message plus
// tlp classification marks (see tlp.ErrorMarks).
type WireError struct {
	Msg   string
	Marks uint32
}

// SnapClass is one class's rows in a result's working-memory
// snapshot: the class layout plus the value vectors, in timetag
// order.
type SnapClass struct {
	Name  string
	Attrs []string
	Rows  [][]symtab.Value
}

// ResultMsg is one task's outcome crossing back: the final attempt's
// statistics, the flattened errors, and the snapshot of the extracted
// working-memory classes.
type ResultMsg struct {
	RunID       uint64
	Seq         int
	TaskID      string
	Worker      int
	Attempts    int
	Stats       ops5.RunStats
	Mem         ops5.MemStats
	HasLog      bool
	Err         *WireError
	AttemptErrs []WireError
	Quarantined bool
	Cancelled   bool
	// Spawned echoes TaskMsg.Spawned: this result completes a
	// worker-side phase continuation. The coordinator uses the echo to
	// keep exactly-once merge accounting deterministic for spawned
	// tasks (including ones requeued after a mid-run worker loss).
	Spawned  bool
	Snapshot []SnapClass
}

// ---------------------------------------------------------------------------
// Framing

// writeFrame emits one frame on w.
func writeFrame(w io.Writer, typ byte, payload []byte) (int, error) {
	if len(payload) > maxFrame {
		return 0, fmt.Errorf("cluster: frame payload %d exceeds limit", len(payload))
	}
	hdr := make([]byte, 1, 1+binary.MaxVarintLen64)
	hdr[0] = typ
	hdr = binary.AppendUvarint(hdr, uint64(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return len(hdr) + len(payload), nil
}

// readFrame reads one frame from r.
func readFrame(r *bufio.Reader) (byte, []byte, error) {
	typ, err := r.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, nil, err
	}
	if n > maxFrame {
		return 0, nil, fmt.Errorf("cluster: frame payload %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return typ, payload, nil
}

func writeJSONFrame(w io.Writer, typ byte, v interface{}) (int, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	return writeFrame(w, typ, payload)
}

// ---------------------------------------------------------------------------
// Binary encoding primitives

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendFloat(b []byte, f float64) []byte {
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], math.Float64bits(f))
	return append(b, t[:]...)
}

func appendInt(b []byte, i int64) []byte {
	return binary.AppendVarint(b, i)
}

func appendUint(b []byte, u uint64) []byte {
	return binary.AppendUvarint(b, u)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// decoder walks a frame payload. Malformed input flips err and makes
// every further read return a zero value; decode entry points check
// err once at the end. Length prefixes are validated against the
// remaining payload before any allocation, so a hostile frame cannot
// make the decoder allocate more than it received.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("cluster: truncated or malformed %s", what)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail("byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) float() float64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail("float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.b)) {
		d.fail("string")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *decoder) bool() bool { return d.byte() != 0 }

// count reads an item count and bounds it by the remaining payload
// (each item encodes to at least one byte).
func (d *decoder) count(what string) int {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.b)) {
		d.fail(what + " count")
		return 0
	}
	return int(n)
}

// ---------------------------------------------------------------------------
// Values and seeds

const (
	valNil = iota
	valSym
	valInt
	valFloat
)

func appendValue(b []byte, v symtab.Value) []byte {
	switch v.Kind() {
	case symtab.KindSym:
		b = append(b, valSym)
		return appendString(b, v.SymVal())
	case symtab.KindInt:
		b = append(b, valInt)
		return appendInt(b, v.IntVal())
	case symtab.KindFloat:
		b = append(b, valFloat)
		return appendFloat(b, v.FloatVal())
	default:
		return append(b, valNil)
	}
}

func (d *decoder) value() symtab.Value {
	switch d.byte() {
	case valSym:
		return symtab.Sym(d.string())
	case valInt:
		return symtab.Int(d.varint())
	case valFloat:
		return symtab.Float(d.float())
	default:
		return symtab.Nil
	}
}

func (d *decoder) values() []symtab.Value {
	n := d.count("value")
	if n == 0 {
		return nil
	}
	vals := make([]symtab.Value, 0, n)
	for i := 0; i < n; i++ {
		vals = append(vals, d.value())
	}
	return vals
}

func appendValues(b []byte, vals []symtab.Value) []byte {
	b = appendUint(b, uint64(len(vals)))
	for _, v := range vals {
		b = appendValue(b, v)
	}
	return b
}

// appendSeed ships a seed as class + shared flag + values. The digest
// string itself never crosses the wire: a shared seed's digest is a
// pure function of (class, values), so the decoder recomputes it with
// the same rete.RouteDigest the coordinator used — identical string,
// identical alpha-routing memoization, identical Init charges.
func appendSeed(b []byte, s ops5.Seed) []byte {
	b = appendString(b, s.Class)
	b = appendBool(b, s.Digest != "")
	return appendValues(b, s.Vals)
}

func (d *decoder) seed() ops5.Seed {
	s := ops5.Seed{Class: d.string()}
	shared := d.bool()
	s.Vals = d.values()
	if shared && d.err == nil {
		s.Digest = rete.RouteDigest(s.Class, s.Vals)
	}
	return s
}

// ---------------------------------------------------------------------------
// Task frames

func appendRunConfig(b []byte, c RunConfig) []byte {
	b = appendInt(b, int64(c.MaxFirings))
	b = appendInt(b, int64(c.FiringBudget))
	b = appendInt(b, int64(c.MaxRetries))
	b = appendInt(b, int64(c.TaskTimeout))
	b = appendInt(b, int64(c.RetryBackoff))
	b = appendBool(b, c.Capture)
	b = appendInt(b, c.Faults.Seed)
	b = appendFloat(b, c.Faults.BuildFailRate)
	b = appendFloat(b, c.Faults.PanicRate)
	b = appendFloat(b, c.Faults.CrashRate)
	b = appendFloat(b, c.Faults.PermanentFraction)
	return b
}

func (d *decoder) runConfig() RunConfig {
	var c RunConfig
	c.MaxFirings = int(d.varint())
	c.FiringBudget = int(d.varint())
	c.MaxRetries = int(d.varint())
	c.TaskTimeout = time.Duration(d.varint())
	c.RetryBackoff = time.Duration(d.varint())
	c.Capture = d.bool()
	c.Faults.Seed = d.varint()
	c.Faults.BuildFailRate = d.float()
	c.Faults.PanicRate = d.float()
	c.Faults.CrashRate = d.float()
	c.Faults.PermanentFraction = d.float()
	return c
}

// EncodeTask serializes a task frame payload.
func EncodeTask(m *TaskMsg) []byte {
	b := make([]byte, 0, 256)
	b = appendUint(b, m.RunID)
	b = appendUint(b, uint64(m.Seq))
	b = appendUint(b, uint64(m.StartAttempt))
	b = appendString(b, m.ID)
	b = appendString(b, m.Label)
	b = appendString(b, m.Group)
	b = appendFloat(b, m.EstSize)
	b = appendFloat(b, m.MemEst)
	b = appendRunConfig(b, m.Config)
	b = appendString(b, m.Spec.Dataset)
	b = appendString(b, m.Spec.Phase)
	b = appendUint(b, uint64(len(m.Spec.Extract)))
	for _, c := range m.Spec.Extract {
		b = appendString(b, c)
	}
	b = appendUint(b, uint64(len(m.Spec.Seeds)))
	for _, s := range m.Spec.Seeds {
		b = appendSeed(b, s)
	}
	return b
}

// DecodeTask parses a task frame payload.
func DecodeTask(payload []byte) (*TaskMsg, error) {
	d := &decoder{b: payload}
	m := &TaskMsg{}
	m.RunID = d.uvarint()
	m.Seq = int(d.uvarint())
	m.StartAttempt = int(d.uvarint())
	m.ID = d.string()
	m.Label = d.string()
	m.Group = d.string()
	m.EstSize = d.float()
	m.MemEst = d.float()
	m.Config = d.runConfig()
	m.Spec.Dataset = d.string()
	m.Spec.Phase = d.string()
	if n := d.count("extract"); n > 0 {
		m.Spec.Extract = make([]string, 0, n)
		for i := 0; i < n; i++ {
			m.Spec.Extract = append(m.Spec.Extract, d.string())
		}
	}
	if n := d.count("seed"); n > 0 {
		m.Spec.Seeds = make([]ops5.Seed, 0, n)
		for i := 0; i < n; i++ {
			m.Spec.Seeds = append(m.Spec.Seeds, d.seed())
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("cluster: %d trailing bytes after task frame", len(d.b))
	}
	return m, nil
}

// ---------------------------------------------------------------------------
// v2: per-connection interning

// The v2 codec is stateful per connection and per direction: each
// side's single frame-writer interns the strings (class names, symbol
// values, attribute names, labels) and run configurations it sends, so
// a value crosses a given connection once and every later use is a
// 1-2 byte reference. The stream is self-describing — a reference
// always points at a literal sent earlier on the same connection — and
// each direction has exactly one writer (the coordinator's writeMu,
// the worker's writeMu) and one reader, so the tables need no locks of
// their own.

// EncTab is the sender half of one direction's intern state.
type EncTab struct {
	strs map[string]uint64
	cfgs map[RunConfig]uint64
}

// NewEncTab returns an empty sender intern table.
func NewEncTab() *EncTab {
	return &EncTab{strs: map[string]uint64{}, cfgs: map[RunConfig]uint64{}}
}

// DecTab is the receiver half of one direction's intern state.
type DecTab struct {
	strs []string
	cfgs []RunConfig
}

// str appends an interned string: uvarint 0 plus the literal on first
// use (registering it), a 1-based table reference afterwards.
func (t *EncTab) str(b []byte, s string) []byte {
	if id, ok := t.strs[s]; ok {
		return appendUint(b, id+1)
	}
	t.strs[s] = uint64(len(t.strs))
	b = append(b, 0)
	return appendString(b, s)
}

func (d *decoder) str(t *DecTab) string {
	k := d.uvarint()
	if k == 0 {
		s := d.string()
		if d.err == nil {
			t.strs = append(t.strs, s)
		}
		return s
	}
	if k > uint64(len(t.strs)) {
		d.fail("string ref")
		return ""
	}
	return t.strs[k-1]
}

// Compact floats: modeled costs and sizes are overwhelmingly
// integral-valued float64s, which a varint ships in 2-4 bytes instead
// of 8. Non-integral (or -0.0, or out-of-range) values ship raw.
const (
	fltRaw = 0
	fltInt = 1
)

func appendFloatC(b []byte, f float64) []byte {
	if f == math.Trunc(f) && f >= -(1<<53) && f <= 1<<53 && !(f == 0 && math.Signbit(f)) {
		b = append(b, fltInt)
		return appendInt(b, int64(f))
	}
	b = append(b, fltRaw)
	return appendFloat(b, f)
}

func (d *decoder) floatC() float64 {
	switch d.byte() {
	case fltInt:
		return float64(d.varint())
	case fltRaw:
		return d.float()
	default:
		d.fail("float tag")
		return 0
	}
}

// v2 values merge the kind tag and the symbol reference into one
// uvarint — a repeated symbol costs its table reference alone, and a
// float costs one tag for both the kind and the compact/raw choice:
// 0 nil, 1 int, 2 raw float, 3 integral float (varint), 4 symbol
// literal (registering it), k >= 5 a reference to symbol table
// entry k-5.
const (
	v2Nil       = 0
	v2Int       = 1
	v2FloatRaw  = 2
	v2FloatInt  = 3
	v2SymNew    = 4
	v2SymRef    = 5 // + table index
)

func (t *EncTab) value(b []byte, v symtab.Value) []byte {
	switch v.Kind() {
	case symtab.KindSym:
		s := v.SymVal()
		if id, ok := t.strs[s]; ok {
			return appendUint(b, v2SymRef+id)
		}
		t.strs[s] = uint64(len(t.strs))
		b = append(b, v2SymNew)
		return appendString(b, s)
	case symtab.KindInt:
		b = append(b, v2Int)
		return appendInt(b, v.IntVal())
	case symtab.KindFloat:
		f := v.FloatVal()
		if f == math.Trunc(f) && f >= -(1<<53) && f <= 1<<53 && !(f == 0 && math.Signbit(f)) {
			b = append(b, v2FloatInt)
			return appendInt(b, int64(f))
		}
		b = append(b, v2FloatRaw)
		return appendFloat(b, f)
	default:
		return append(b, v2Nil)
	}
}

func (d *decoder) valueT(t *DecTab) symtab.Value {
	switch tag := d.uvarint(); tag {
	case v2Nil:
		return symtab.Nil
	case v2Int:
		return symtab.Int(d.varint())
	case v2FloatRaw:
		return symtab.Float(d.float())
	case v2FloatInt:
		return symtab.Float(float64(d.varint()))
	case v2SymNew:
		s := d.string()
		if d.err == nil {
			t.strs = append(t.strs, s)
		}
		return symtab.Sym(s)
	default:
		if tag-v2SymRef >= uint64(len(t.strs)) {
			d.fail("symbol ref")
			return symtab.Nil
		}
		return symtab.Sym(t.strs[tag-v2SymRef])
	}
}

func (t *EncTab) values(b []byte, vals []symtab.Value) []byte {
	b = appendUint(b, uint64(len(vals)))
	for _, v := range vals {
		b = t.value(b, v)
	}
	return b
}

func (d *decoder) valuesT(t *DecTab) []symtab.Value {
	n := d.count("value")
	if n == 0 {
		return nil
	}
	vals := make([]symtab.Value, 0, n)
	for i := 0; i < n; i++ {
		vals = append(vals, d.valueT(t))
	}
	return vals
}

// seed is appendSeed under interning: same digest discipline, shared
// class names and symbols.
func (t *EncTab) seed(b []byte, s ops5.Seed) []byte {
	b = t.str(b, s.Class)
	b = appendBool(b, s.Digest != "")
	return t.values(b, s.Vals)
}

func (d *decoder) seedT(t *DecTab) ops5.Seed {
	s := ops5.Seed{Class: d.str(t)}
	shared := d.bool()
	s.Vals = d.valuesT(t)
	if shared && d.err == nil {
		s.Digest = rete.RouteDigest(s.Class, s.Vals)
	}
	return s
}

// runConfig interns the whole RunConfig by value: one run's tasks all
// carry the same configuration, so it crosses each connection once.
func (t *EncTab) runConfig(b []byte, c RunConfig) []byte {
	if id, ok := t.cfgs[c]; ok {
		return appendUint(b, id+1)
	}
	t.cfgs[c] = uint64(len(t.cfgs))
	b = append(b, 0)
	return appendRunConfig(b, c)
}

func (d *decoder) runConfigT(t *DecTab) RunConfig {
	k := d.uvarint()
	if k == 0 {
		c := d.runConfig()
		if d.err == nil {
			t.cfgs = append(t.cfgs, c)
		}
		return c
	}
	if k > uint64(len(t.cfgs)) {
		d.fail("config ref")
		return RunConfig{}
	}
	return t.cfgs[k-1]
}

// ---------------------------------------------------------------------------
// v2: content-addressed chunks and chunk-ref task frames

// A v2 task frame ships each seed as one uvarint tag: 0 means the
// seed follows inline, k > 0 references resident chunk id k-1.

// EncodeChunk serializes one content-addressed seed chunk: the
// coordinator-assigned resident id plus the seed. A chunk ships to a
// given worker at most once; later tasks reference it by id.
func EncodeChunk(t *EncTab, id uint64, s ops5.Seed) []byte {
	b := make([]byte, 0, 64)
	b = appendUint(b, id)
	return t.seed(b, s)
}

// DecodeChunk parses a chunk frame payload.
func DecodeChunk(t *DecTab, payload []byte) (uint64, ops5.Seed, error) {
	d := &decoder{b: payload}
	id := d.uvarint()
	s := d.seedT(t)
	if d.err != nil {
		return 0, ops5.Seed{}, d.err
	}
	if len(d.b) != 0 {
		return 0, ops5.Seed{}, fmt.Errorf("cluster: %d trailing bytes after chunk frame", len(d.b))
	}
	return id, s, nil
}

// EncodeChunkFree serializes an eviction notice: chunk ids the
// coordinator dropped from the worker's resident table under its LRU
// budget. The worker frees them before any later frame can reference
// them again (a re-shipped chunk gets a fresh id).
func EncodeChunkFree(ids []uint64) []byte {
	b := make([]byte, 0, 16)
	b = appendUint(b, uint64(len(ids)))
	for _, id := range ids {
		b = appendUint(b, id)
	}
	return b
}

// DecodeChunkFree parses an eviction-notice payload.
func DecodeChunkFree(payload []byte) ([]uint64, error) {
	d := &decoder{b: payload}
	n := d.count("chunk free")
	var ids []uint64
	if n > 0 {
		ids = make([]uint64, 0, n)
		for i := 0; i < n; i++ {
			ids = append(ids, d.uvarint())
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("cluster: %d trailing bytes after chunk-free frame", len(d.b))
	}
	return ids, nil
}

// EncodeTaskV2 serializes a v2 task frame payload against the
// connection's sender intern table. refs runs parallel to
// m.Spec.Seeds: refs[i] >= 0 ships seed i as a reference to that
// resident chunk id, refs[i] < 0 ships it inline. A nil refs ships
// every seed inline (still a valid v2 frame). Task IDs stay literal —
// they are unique per run, so interning them would only grow the
// table.
func EncodeTaskV2(t *EncTab, m *TaskMsg, refs []int64) []byte {
	b := make([]byte, 0, 256)
	b = appendUint(b, m.RunID)
	b = appendUint(b, uint64(m.Seq))
	b = appendUint(b, uint64(m.StartAttempt))
	var flags byte
	if m.Spawned {
		flags |= 1
	}
	b = append(b, flags)
	b = appendString(b, m.ID)
	b = t.str(b, m.Label)
	b = t.str(b, m.Group)
	b = appendFloatC(b, m.EstSize)
	b = appendFloatC(b, m.MemEst)
	b = t.runConfig(b, m.Config)
	b = t.str(b, m.Spec.Dataset)
	b = t.str(b, m.Spec.Phase)
	b = appendUint(b, uint64(len(m.Spec.Extract)))
	for _, c := range m.Spec.Extract {
		b = t.str(b, c)
	}
	b = appendUint(b, uint64(len(m.Spec.Seeds)))
	for i, s := range m.Spec.Seeds {
		if i < len(refs) && refs[i] >= 0 {
			b = appendUint(b, uint64(refs[i])+1)
			continue
		}
		b = append(b, 0)
		b = t.seed(b, s)
	}
	return b
}

// DecodeTaskV2 parses a v2 task frame payload against the
// connection's receiver intern table, resolving chunk references
// through resolve (the worker's resident-chunk table). The returned
// refs slice mirrors the wire encoding — refs[i] is the chunk id seed
// i arrived as, or -1 for inline — so EncodeTaskV2(t, m, refs) with
// equivalent intern state reproduces the payload byte for byte (the
// fuzz round-trip invariant). An id resolve does not know is a
// protocol error: chunks always precede the first frame referencing
// them on a connection.
func DecodeTaskV2(t *DecTab, payload []byte, resolve func(uint64) (ops5.Seed, bool)) (*TaskMsg, []int64, error) {
	d := &decoder{b: payload}
	m := &TaskMsg{}
	m.RunID = d.uvarint()
	m.Seq = int(d.uvarint())
	m.StartAttempt = int(d.uvarint())
	flags := d.byte()
	m.Spawned = flags&1 != 0
	m.ID = d.string()
	m.Label = d.str(t)
	m.Group = d.str(t)
	m.EstSize = d.floatC()
	m.MemEst = d.floatC()
	m.Config = d.runConfigT(t)
	m.Spec.Dataset = d.str(t)
	m.Spec.Phase = d.str(t)
	if n := d.count("extract"); n > 0 {
		m.Spec.Extract = make([]string, 0, n)
		for i := 0; i < n; i++ {
			m.Spec.Extract = append(m.Spec.Extract, d.str(t))
		}
	}
	var refs []int64
	if n := d.count("seed"); n > 0 {
		m.Spec.Seeds = make([]ops5.Seed, 0, n)
		refs = make([]int64, 0, n)
		for i := 0; i < n; i++ {
			tag := d.uvarint()
			if d.err != nil {
				break
			}
			if tag == 0 {
				m.Spec.Seeds = append(m.Spec.Seeds, d.seedT(t))
				refs = append(refs, -1)
			} else {
				id := tag - 1
				s, ok := resolve(id)
				if !ok {
					return nil, nil, fmt.Errorf("cluster: task %s references unknown chunk %d", m.ID, id)
				}
				m.Spec.Seeds = append(m.Spec.Seeds, s)
				refs = append(refs, int64(id))
			}
			if d.err != nil {
				break
			}
		}
	}
	if d.err != nil {
		return nil, nil, d.err
	}
	if len(d.b) != 0 {
		return nil, nil, fmt.Errorf("cluster: %d trailing bytes after task frame", len(d.b))
	}
	return m, refs, nil
}

// ---------------------------------------------------------------------------
// Result frames

const (
	rfErr = 1 << iota
	rfQuarantined
	rfCancelled
	rfHalted
	rfLog
	rfSpawned
)

func appendWireError(b []byte, e WireError) []byte {
	b = appendString(b, e.Msg)
	return appendUint(b, uint64(e.Marks))
}

func (d *decoder) wireError() WireError {
	return WireError{Msg: d.string(), Marks: uint32(d.uvarint())}
}

// EncodeResult serializes a result frame payload.
func EncodeResult(m *ResultMsg) []byte {
	b := make([]byte, 0, 256)
	b = appendUint(b, m.RunID)
	b = appendUint(b, uint64(m.Seq))
	b = appendString(b, m.TaskID)
	b = appendUint(b, uint64(m.Worker))
	b = appendUint(b, uint64(m.Attempts))
	var flags byte
	if m.Err != nil {
		flags |= rfErr
	}
	if m.Quarantined {
		flags |= rfQuarantined
	}
	if m.Cancelled {
		flags |= rfCancelled
	}
	if m.Stats.Halted {
		flags |= rfHalted
	}
	if m.HasLog {
		flags |= rfLog
	}
	if m.Spawned {
		flags |= rfSpawned
	}
	b = append(b, flags)
	b = appendUint(b, uint64(m.Stats.Firings))
	b = appendUint(b, uint64(m.Stats.Cycles))
	b = appendUint(b, uint64(m.Stats.RHSActions))
	b = appendFloat(b, m.Stats.MatchInstr)
	b = appendFloat(b, m.Stats.ResolveInstr)
	b = appendFloat(b, m.Stats.ActInstr)
	b = appendFloat(b, m.Stats.InitInstr)
	b = appendUint(b, uint64(m.Mem.SeedWMEs))
	b = appendFloat(b, m.Mem.SeedBytes)
	b = appendUint(b, uint64(m.Mem.RetractedWMEs))
	b = appendFloat(b, m.Mem.RetractedBytes)
	b = appendUint(b, uint64(m.Mem.PeakWMEs))
	b = appendUint(b, uint64(m.Mem.PeakTokens))
	b = appendFloat(b, m.Mem.PeakBytes)
	if m.Err != nil {
		b = appendWireError(b, *m.Err)
	}
	b = appendUint(b, uint64(len(m.AttemptErrs)))
	for _, e := range m.AttemptErrs {
		b = appendWireError(b, e)
	}
	b = appendUint(b, uint64(len(m.Snapshot)))
	for _, sc := range m.Snapshot {
		b = appendString(b, sc.Name)
		b = appendUint(b, uint64(len(sc.Attrs)))
		for _, a := range sc.Attrs {
			b = appendString(b, a)
		}
		b = appendUint(b, uint64(len(sc.Rows)))
		for _, row := range sc.Rows {
			b = appendValues(b, row)
		}
	}
	return b
}

// DecodeResult parses a result frame payload.
func DecodeResult(payload []byte) (*ResultMsg, error) {
	d := &decoder{b: payload}
	m := &ResultMsg{}
	m.RunID = d.uvarint()
	m.Seq = int(d.uvarint())
	m.TaskID = d.string()
	m.Worker = int(d.uvarint())
	m.Attempts = int(d.uvarint())
	flags := d.byte()
	m.Quarantined = flags&rfQuarantined != 0
	m.Cancelled = flags&rfCancelled != 0
	m.HasLog = flags&rfLog != 0
	m.Spawned = flags&rfSpawned != 0
	m.Stats.Firings = int(d.uvarint())
	m.Stats.Cycles = int(d.uvarint())
	m.Stats.RHSActions = int(d.uvarint())
	m.Stats.MatchInstr = d.float()
	m.Stats.ResolveInstr = d.float()
	m.Stats.ActInstr = d.float()
	m.Stats.InitInstr = d.float()
	m.Stats.Halted = flags&rfHalted != 0
	m.Mem.SeedWMEs = int(d.uvarint())
	m.Mem.SeedBytes = d.float()
	m.Mem.RetractedWMEs = int(d.uvarint())
	m.Mem.RetractedBytes = d.float()
	m.Mem.PeakWMEs = int(d.uvarint())
	m.Mem.PeakTokens = int(d.uvarint())
	m.Mem.PeakBytes = d.float()
	if flags&rfErr != 0 {
		e := d.wireError()
		m.Err = &e
	}
	if n := d.count("attempt error"); n > 0 {
		m.AttemptErrs = make([]WireError, 0, n)
		for i := 0; i < n; i++ {
			m.AttemptErrs = append(m.AttemptErrs, d.wireError())
		}
	}
	if n := d.count("snapshot class"); n > 0 {
		m.Snapshot = make([]SnapClass, 0, n)
		for i := 0; i < n; i++ {
			sc := SnapClass{Name: d.string()}
			if na := d.count("snapshot attr"); na > 0 {
				sc.Attrs = make([]string, 0, na)
				for j := 0; j < na; j++ {
					sc.Attrs = append(sc.Attrs, d.string())
				}
			}
			if nr := d.count("snapshot row"); nr > 0 {
				sc.Rows = make([][]symtab.Value, 0, nr)
				for j := 0; j < nr; j++ {
					sc.Rows = append(sc.Rows, d.values())
				}
			}
			m.Snapshot = append(m.Snapshot, sc)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("cluster: %d trailing bytes after result frame", len(d.b))
	}
	return m, nil
}

// EncodeResultV2 serializes a result frame payload against the
// worker→coordinator intern table: snapshot class names, attribute
// names and symbol values intern (the dominant repeated content of a
// phase's results), modeled-cost floats ship compact, and the task ID
// stays off the wire entirely — (RunID, Seq) already names the task,
// and the coordinator restores the ID from its own run state. Error
// messages stay literal.
func EncodeResultV2(t *EncTab, m *ResultMsg) []byte {
	b := make([]byte, 0, 256)
	b = appendUint(b, m.RunID)
	b = appendUint(b, uint64(m.Seq))
	b = appendUint(b, uint64(m.Worker))
	b = appendUint(b, uint64(m.Attempts))
	var flags byte
	if m.Err != nil {
		flags |= rfErr
	}
	if m.Quarantined {
		flags |= rfQuarantined
	}
	if m.Cancelled {
		flags |= rfCancelled
	}
	if m.Stats.Halted {
		flags |= rfHalted
	}
	if m.HasLog {
		flags |= rfLog
	}
	if m.Spawned {
		flags |= rfSpawned
	}
	b = append(b, flags)
	b = appendUint(b, uint64(m.Stats.Firings))
	b = appendUint(b, uint64(m.Stats.Cycles))
	b = appendUint(b, uint64(m.Stats.RHSActions))
	b = appendFloatC(b, m.Stats.MatchInstr)
	b = appendFloatC(b, m.Stats.ResolveInstr)
	b = appendFloatC(b, m.Stats.ActInstr)
	b = appendFloatC(b, m.Stats.InitInstr)
	b = appendUint(b, uint64(m.Mem.SeedWMEs))
	b = appendFloatC(b, m.Mem.SeedBytes)
	b = appendUint(b, uint64(m.Mem.RetractedWMEs))
	b = appendFloatC(b, m.Mem.RetractedBytes)
	b = appendUint(b, uint64(m.Mem.PeakWMEs))
	b = appendUint(b, uint64(m.Mem.PeakTokens))
	b = appendFloatC(b, m.Mem.PeakBytes)
	if m.Err != nil {
		b = appendWireError(b, *m.Err)
	}
	b = appendUint(b, uint64(len(m.AttemptErrs)))
	for _, e := range m.AttemptErrs {
		b = appendWireError(b, e)
	}
	b = appendUint(b, uint64(len(m.Snapshot)))
	for _, sc := range m.Snapshot {
		b = t.str(b, sc.Name)
		b = appendUint(b, uint64(len(sc.Attrs)))
		for _, a := range sc.Attrs {
			b = t.str(b, a)
		}
		b = appendUint(b, uint64(len(sc.Rows)))
		for _, row := range sc.Rows {
			b = t.values(b, row)
		}
	}
	return b
}

// DecodeResultV2 parses a v2 result frame payload against the
// connection's receiver intern table. The returned message has an
// empty TaskID — v2 result frames do not carry it.
func DecodeResultV2(t *DecTab, payload []byte) (*ResultMsg, error) {
	d := &decoder{b: payload}
	m := &ResultMsg{}
	m.RunID = d.uvarint()
	m.Seq = int(d.uvarint())
	m.Worker = int(d.uvarint())
	m.Attempts = int(d.uvarint())
	flags := d.byte()
	m.Quarantined = flags&rfQuarantined != 0
	m.Cancelled = flags&rfCancelled != 0
	m.HasLog = flags&rfLog != 0
	m.Spawned = flags&rfSpawned != 0
	m.Stats.Firings = int(d.uvarint())
	m.Stats.Cycles = int(d.uvarint())
	m.Stats.RHSActions = int(d.uvarint())
	m.Stats.MatchInstr = d.floatC()
	m.Stats.ResolveInstr = d.floatC()
	m.Stats.ActInstr = d.floatC()
	m.Stats.InitInstr = d.floatC()
	m.Stats.Halted = flags&rfHalted != 0
	m.Mem.SeedWMEs = int(d.uvarint())
	m.Mem.SeedBytes = d.floatC()
	m.Mem.RetractedWMEs = int(d.uvarint())
	m.Mem.RetractedBytes = d.floatC()
	m.Mem.PeakWMEs = int(d.uvarint())
	m.Mem.PeakTokens = int(d.uvarint())
	m.Mem.PeakBytes = d.floatC()
	if flags&rfErr != 0 {
		e := d.wireError()
		m.Err = &e
	}
	if n := d.count("attempt error"); n > 0 {
		m.AttemptErrs = make([]WireError, 0, n)
		for i := 0; i < n; i++ {
			m.AttemptErrs = append(m.AttemptErrs, d.wireError())
		}
	}
	if n := d.count("snapshot class"); n > 0 {
		m.Snapshot = make([]SnapClass, 0, n)
		for i := 0; i < n; i++ {
			sc := SnapClass{Name: d.str(t)}
			if na := d.count("snapshot attr"); na > 0 {
				sc.Attrs = make([]string, 0, na)
				for j := 0; j < na; j++ {
					sc.Attrs = append(sc.Attrs, d.str(t))
				}
			}
			if nr := d.count("snapshot row"); nr > 0 {
				sc.Rows = make([][]symtab.Value, 0, nr)
				for j := 0; j < nr; j++ {
					sc.Rows = append(sc.Rows, d.valuesT(t))
				}
			}
			m.Snapshot = append(m.Snapshot, sc)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("cluster: %d trailing bytes after result frame", len(d.b))
	}
	return m, nil
}
