// Package symtab provides the value currency of the OPS5 engine:
// symbols, integers and floating-point numbers, with the comparison
// semantics required by OPS5 predicate tests.
//
// OPS5 attribute values are dynamically typed scalars. Symbols compare
// only for (in)equality; numbers compare numerically regardless of
// integer/float representation; the <=> predicate tests whether two
// values are of the same type.
package symtab

import (
	"fmt"
	"strconv"
)

// Kind discriminates the representation of a Value.
type Kind uint8

const (
	// KindNil is the zero Value; it matches nothing and compares equal
	// only to itself. Unbound attributes hold KindNil.
	KindNil Kind = iota
	// KindSym is a symbolic atom.
	KindSym
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit float.
	KindFloat
)

func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindSym:
		return "symbol"
	case KindInt:
		return "integer"
	case KindFloat:
		return "float"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a scalar OPS5 value. The zero Value is the nil value.
type Value struct {
	kind Kind
	sym  string
	num  int64   // integer payload
	flt  float64 // float payload
}

// Nil is the nil (absent) value.
var Nil = Value{}

// Sym returns a symbol value.
func Sym(s string) Value { return Value{kind: KindSym, sym: s} }

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, num: i} }

// Float returns a float value.
func Float(f float64) Value { return Value{kind: KindFloat, flt: f} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNil reports whether v is the nil value.
func (v Value) IsNil() bool { return v.kind == KindNil }

// IsNumber reports whether v is an integer or a float.
func (v Value) IsNumber() bool { return v.kind == KindInt || v.kind == KindFloat }

// SymVal returns the symbol payload; it is "" for non-symbols.
func (v Value) SymVal() string {
	if v.kind != KindSym {
		return ""
	}
	return v.sym
}

// IntVal returns the value as an int64, truncating floats.
func (v Value) IntVal() int64 {
	switch v.kind {
	case KindInt:
		return v.num
	case KindFloat:
		return int64(v.flt)
	}
	return 0
}

// FloatVal returns the value as a float64.
func (v Value) FloatVal() float64 {
	switch v.kind {
	case KindInt:
		return float64(v.num)
	case KindFloat:
		return v.flt
	}
	return 0
}

// Equal reports OPS5 value equality: symbols equal by name, numbers
// equal numerically across integer/float representations.
func (v Value) Equal(w Value) bool {
	switch {
	case v.kind == KindSym || w.kind == KindSym:
		return v.kind == w.kind && v.sym == w.sym
	case v.kind == KindNil || w.kind == KindNil:
		return v.kind == w.kind
	default:
		return v.FloatVal() == w.FloatVal()
	}
}

// SameType reports whether v and w have the same type in the OPS5
// <=> sense (symbol vs number; integers and floats are distinct).
func (v Value) SameType(w Value) bool { return v.kind == w.kind }

// Compare orders two numeric values: -1, 0, or +1. The boolean result
// is false when either value is non-numeric (OPS5 relational tests
// fail, rather than error, on non-numbers).
func (v Value) Compare(w Value) (int, bool) {
	if !v.IsNumber() || !w.IsNumber() {
		return 0, false
	}
	a, b := v.FloatVal(), w.FloatVal()
	switch {
	case a < b:
		return -1, true
	case a > b:
		return 1, true
	}
	return 0, true
}

// String renders the value as OPS5 source text.
func (v Value) String() string {
	switch v.kind {
	case KindNil:
		return "nil"
	case KindSym:
		return v.sym
	case KindInt:
		return strconv.FormatInt(v.num, 10)
	case KindFloat:
		return strconv.FormatFloat(v.flt, 'g', -1, 64)
	}
	return "?"
}

// Parse converts a token of OPS5 source text to a Value: integers and
// floats parse as numbers, everything else is a symbol.
func Parse(tok string) Value {
	if tok == "" {
		return Nil
	}
	if i, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return Float(f)
	}
	return Sym(tok)
}

// Hash returns a stable hash of the value, for use in memory indexes.
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	// Numeric kinds share a tag so Int(2) and Float(2), which are Equal,
	// hash identically.
	tag := byte(v.kind)
	if v.IsNumber() {
		tag = 0xfe
	}
	mix(tag)
	switch v.kind {
	case KindSym:
		for i := 0; i < len(v.sym); i++ {
			mix(v.sym[i])
		}
	case KindInt, KindFloat:
		// Hash the numeric value so Int(2) and Float(2) collide into
		// the same bucket (they are Equal, so they must).
		bits := uint64(int64(v.FloatVal()*4096 + 0.5))
		for i := 0; i < 8; i++ {
			mix(byte(bits >> (8 * i)))
		}
	}
	return h
}
