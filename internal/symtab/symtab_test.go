package symtab

import (
	"testing"
	"testing/quick"
)

func TestParseKinds(t *testing.T) {
	cases := []struct {
		in   string
		kind Kind
	}{
		{"runway", KindSym},
		{"42", KindInt},
		{"-7", KindInt},
		{"3.5", KindFloat},
		{"-0.25", KindFloat},
		{"1e3", KindFloat},
		{"r-17", KindSym},
		{"", KindNil},
		{"<x>", KindSym},
	}
	for _, c := range cases {
		if got := Parse(c.in).Kind(); got != c.kind {
			t.Errorf("Parse(%q).Kind() = %v, want %v", c.in, got, c.kind)
		}
	}
}

func TestEqualCrossNumeric(t *testing.T) {
	if !Int(2).Equal(Float(2.0)) {
		t.Error("Int(2) should equal Float(2.0)")
	}
	if Int(2).Equal(Float(2.5)) {
		t.Error("Int(2) should not equal Float(2.5)")
	}
	if Int(2).Equal(Sym("2")) {
		t.Error("Int(2) should not equal Sym(\"2\")")
	}
	if !Sym("abc").Equal(Sym("abc")) {
		t.Error("identical symbols should be equal")
	}
	if Sym("abc").Equal(Sym("abd")) {
		t.Error("distinct symbols should not be equal")
	}
	if !Nil.Equal(Nil) {
		t.Error("nil equals nil")
	}
	if Nil.Equal(Int(0)) {
		t.Error("nil should not equal 0")
	}
}

func TestSameType(t *testing.T) {
	if !Int(1).SameType(Int(9)) || !Float(1).SameType(Float(2)) || !Sym("a").SameType(Sym("b")) {
		t.Error("same-kind values must be SameType")
	}
	if Int(1).SameType(Float(1)) {
		t.Error("int and float are distinct types under <=>")
	}
	if Sym("1").SameType(Int(1)) {
		t.Error("symbol and int are distinct types")
	}
}

func TestCompare(t *testing.T) {
	if c, ok := Int(1).Compare(Float(2)); !ok || c != -1 {
		t.Errorf("1 vs 2.0: got (%d,%v)", c, ok)
	}
	if c, ok := Float(3).Compare(Int(3)); !ok || c != 0 {
		t.Errorf("3.0 vs 3: got (%d,%v)", c, ok)
	}
	if c, ok := Int(5).Compare(Int(4)); !ok || c != 1 {
		t.Errorf("5 vs 4: got (%d,%v)", c, ok)
	}
	if _, ok := Sym("a").Compare(Int(4)); ok {
		t.Error("symbol comparison must report !ok")
	}
	if _, ok := Int(4).Compare(Nil); ok {
		t.Error("nil comparison must report !ok")
	}
}

func TestAccessors(t *testing.T) {
	if Sym("x").SymVal() != "x" || Int(3).SymVal() != "" {
		t.Error("SymVal payloads wrong")
	}
	if Int(7).IntVal() != 7 || Float(7.9).IntVal() != 7 {
		t.Error("IntVal payloads wrong")
	}
	if Int(7).FloatVal() != 7.0 || Float(2.5).FloatVal() != 2.5 {
		t.Error("FloatVal payloads wrong")
	}
	if !Nil.IsNil() || Int(0).IsNil() {
		t.Error("IsNil wrong")
	}
	if !Int(0).IsNumber() || !Float(0).IsNumber() || Sym("0").IsNumber() {
		t.Error("IsNumber wrong")
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, v := range []Value{Sym("terminal-building"), Int(-12), Float(0.75), Nil} {
		got := Parse(v.String())
		if v.IsNil() {
			// "nil" parses as a symbol; the nil value is not produced by
			// source text, only by unbound attributes.
			continue
		}
		if !got.Equal(v) || !got.SameType(v) {
			t.Errorf("round trip of %v gave %v", v, got)
		}
	}
}

func TestHashEqualityConsistency(t *testing.T) {
	// Equal values must hash identically, including across numeric kinds.
	pairs := [][2]Value{
		{Int(2), Float(2)},
		{Sym("apron"), Sym("apron")},
		{Float(-1.5), Float(-1.5)},
		{Int(0), Int(0)},
	}
	for _, p := range pairs {
		if !p[0].Equal(p[1]) {
			t.Fatalf("test pair %v not Equal", p)
		}
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("equal values %v and %v hash differently", p[0], p[1])
		}
	}
}

func TestHashSpreads(t *testing.T) {
	seen := map[uint64]Value{}
	vals := []Value{Sym("a"), Sym("b"), Sym("ab"), Int(1), Int(2), Int(100), Float(1.5), Nil}
	for _, v := range vals {
		h := v.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("hash collision between %v and %v", prev, v)
		}
		seen[h] = v
	}
}

func TestQuickCompareAntisymmetry(t *testing.T) {
	f := func(a, b int64) bool {
		c1, ok1 := Int(a).Compare(Int(b))
		c2, ok2 := Int(b).Compare(Int(a))
		return ok1 && ok2 && c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickEqualReflexiveSymmetric(t *testing.T) {
	f := func(a int64, s string, useSym bool) bool {
		var v Value
		if useSym {
			v = Sym(s)
		} else {
			v = Int(a)
		}
		return v.Equal(v) && (!v.Equal(Sym(s+"x")) || useSym && s == s+"x")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickParseNumbersNumeric(t *testing.T) {
	f := func(n int64) bool {
		v := Parse(Int(n).String())
		return v.Kind() == KindInt && v.IntVal() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
